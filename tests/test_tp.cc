#include <gtest/gtest.h>

#include <memory>

#include "mem/memory_controller.hh"
#include "sched/tp.hh"

using namespace memsec;
using namespace memsec::mem;
using namespace memsec::sched;

namespace {

class TpTest : public ::testing::Test, public MemClient
{
  protected:
    void
    build(unsigned turn, Partition part = Partition::Bank)
    {
        map = std::make_unique<AddressMap>(dram::Geometry{}, part,
                                           Interleave::ClosePage, 4);
        MemoryController::Params p;
        p.numDomains = 4;
        p.queueCapacity = 16;
        mc = std::make_unique<MemoryController>("mc", p, *map);
        auto s = std::make_unique<TpScheduler>(
            *mc, TpScheduler::Params{turn, 0});
        tp = s.get();
        mc->setScheduler(std::move(s));
    }

    void memResponse(const MemRequest &req) override
    {
        done.push_back({req.domain, req.completed});
    }

    void
    inject(DomainId d, Addr a, Cycle now, ReqType t = ReqType::Read)
    {
        auto r = std::make_unique<MemRequest>();
        r->domain = d;
        r->type = t;
        r->addr = a;
        r->client = this;
        mc->access(std::move(r), now);
    }

    void
    runTo(Cycle end)
    {
        for (; now < end; ++now)
            mc->tick(now);
    }

    std::unique_ptr<AddressMap> map;
    std::unique_ptr<MemoryController> mc;
    TpScheduler *tp = nullptr;
    std::vector<std::pair<DomainId, Cycle>> done;
    Cycle now = 0;
};

} // namespace

TEST_F(TpTest, TurnAssignmentRoundRobin)
{
    build(60);
    EXPECT_EQ(tp->activeDomain(0), 0u);
    EXPECT_EQ(tp->activeDomain(59), 0u);
    EXPECT_EQ(tp->activeDomain(60), 1u);
    EXPECT_EQ(tp->activeDomain(239), 3u);
    EXPECT_EQ(tp->activeDomain(240), 0u);
    EXPECT_EQ(tp->turnEnd(0), 60u);
    EXPECT_EQ(tp->turnEnd(60), 120u);
}

TEST_F(TpTest, InTurnPipelineMatchesPaper)
{
    // Bank-partitioned TP issues at the l = 15 fixed-service spacing
    // (Section 4.2: "theoretical peak bandwidth of 27%").
    build(60);
    EXPECT_EQ(tp->slotSpacing(), 15u);
    // Unpartitioned TP uses the 43-cycle pipeline (9% peak).
    build(172, Partition::None);
    EXPECT_EQ(tp->slotSpacing(), 43u);
}

TEST_F(TpTest, FootprintsDeriveDeadTime)
{
    build(60);
    // Bank-partitioned: read = tRCD+tCAS+tBURST+tRTRS = 28, write =
    // tRCD+wr2rd = 26 -> the last usable write slot leaves a ~11-26
    // cycle dead tail (the paper's ~12 ns).
    EXPECT_EQ(tp->readFootprint(), 28u);
    EXPECT_EQ(tp->writeFootprint(), 26u);

    build(172, Partition::None);
    // Shared banks: reads must re-precharge (tRC bound, 39); writes
    // need tRCD+tCWD+tBURST+tWR+tRP = 43 (the paper's ~65 ns dead
    // time covers exactly this).
    EXPECT_EQ(tp->readFootprint(), 39u);
    EXPECT_EQ(tp->writeFootprint(), 43u);
}

TEST_F(TpTest, OnlyActiveDomainServed)
{
    build(60);
    inject(0, 0x1000, 0);
    inject(1, 0x1000, 0);
    // During domain 0's turn only domain 0 completes.
    runTo(60);
    ASSERT_EQ(done.size(), 1u);
    EXPECT_EQ(done[0].first, 0u);
    // Domain 1 completes in its own turn.
    runTo(130);
    ASSERT_EQ(done.size(), 2u);
    EXPECT_EQ(done[1].first, 1u);
    EXPECT_GE(done[1].second, 60u);
}

TEST_F(TpTest, WaitingForDistantTurnCostsFullRotation)
{
    build(60);
    // Inject for domain 3 just after its turn ended.
    runTo(240); // domain 3's first turn is [180, 240)
    inject(3, 0x1000, now);
    runTo(500);
    ASSERT_EQ(done.size(), 1u);
    // Served in the next domain-3 turn: [420, 480).
    EXPECT_GE(done[0].second, 420u);
    EXPECT_LT(done[0].second, 480u);
}

TEST_F(TpTest, LateArrivalsMissTheLastSlot)
{
    build(60);
    // readFootprint = 28: the slot at offset 45 cannot start a read
    // (45 + 28 > 60), so a request arriving at offset 40 waits for
    // the next rotation.
    inject(0, 0x1000, 0);
    runTo(40);
    EXPECT_EQ(done.size(), 1u);
    inject(0, 0x2000, 40);
    runTo(480);
    ASSERT_EQ(done.size(), 2u);
    EXPECT_GE(done[1].second, 240u);
}

TEST_F(TpTest, ThreeSlotsPerBankPartitionedTurn)
{
    // Turn 60, l = 15: slots at 0/15/30 fit a read (28 <= 60-30);
    // the slot at 45 does not. Saturating one domain with
    // bank-striped reads must serve exactly 3 per turn.
    build(60);
    for (int i = 0; i < 12; ++i)
        inject(0, 0x4000 + i * 64ull, 0);
    runTo(60);
    size_t inFirstTurn = 0;
    for (const auto &e : done)
        inFirstTurn += e.second <= 60;
    EXPECT_EQ(inFirstTurn, 3u);
}

TEST_F(TpTest, SameBankReuseSerialisedInTurn)
{
    // Requests to different rows of one bank cannot use consecutive
    // 15-cycle slots (43-cycle reuse): at most 2 complete per turn.
    build(60);
    for (int i = 0; i < 6; ++i)
        inject(0, 0x100000ull * i, 0); // same bank, different rows
    runTo(60);
    EXPECT_LE(done.size(), 2u);
    runTo(2000);
    EXPECT_EQ(done.size(), 6u);
}

TEST_F(TpTest, TurnCounterAdvances)
{
    build(60);
    runTo(600);
    StatGroup g;
    tp->registerStats(g);
    EXPECT_DOUBLE_EQ(g.lookup("turns"), 10.0);
    EXPECT_GT(g.lookup("idle_slots"), 0.0);
}

TEST_F(TpTest, InvalidParamsFatal)
{
    map = std::make_unique<AddressMap>(dram::Geometry{},
                                       Partition::Bank,
                                       Interleave::ClosePage, 4);
    MemoryController::Params p;
    p.numDomains = 4;
    mc = std::make_unique<MemoryController>("mc", p, *map);
    EXPECT_EXIT(TpScheduler(*mc, TpScheduler::Params{0, 0}),
                ::testing::ExitedWithCode(1), "turn length");
    EXPECT_EXIT(TpScheduler(*mc, TpScheduler::Params{20, 0}),
                ::testing::ExitedWithCode(1), "footprint");
}

TEST_F(TpTest, MixedTrafficDrainsConflictFree)
{
    build(60);
    for (int i = 0; i < 8; ++i) {
        for (DomainId d = 0; d < 4; ++d)
            inject(d, 0x1000 + i * 64ull, 0,
                   i % 2 ? ReqType::Write : ReqType::Read);
    }
    // The DRAM model panics on any timing violation.
    runTo(3000);
    EXPECT_EQ(mc->queue(0).size(), 0u);
    EXPECT_EQ(mc->queue(3).size(), 0u);
}

TEST_F(TpTest, UnpartitionedTurnsConflictFree)
{
    build(172, Partition::None);
    for (int i = 0; i < 8; ++i) {
        for (DomainId d = 0; d < 4; ++d)
            inject(d, 0x2000 + i * 64ull, 0,
                   i % 3 == 0 ? ReqType::Write : ReqType::Read);
    }
    runTo(6000);
    EXPECT_EQ(mc->queue(0).size(), 0u);
    EXPECT_EQ(mc->queue(2).size(), 0u);
}
