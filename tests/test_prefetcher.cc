#include <gtest/gtest.h>

#include <algorithm>

#include "cpu/prefetcher.hh"
#include "util/random.hh"

using namespace memsec;
using namespace memsec::cpu;

TEST(Prefetcher, NoPrefetchesBeforePromotion)
{
    SandboxPrefetcher pf;
    // Fewer misses than an evaluation period: nothing promoted yet.
    for (int i = 0; i < 100; ++i)
        EXPECT_TRUE(pf.onMiss(i * kLineBytes).empty());
}

TEST(Prefetcher, SequentialStreamPromotesPlusOne)
{
    SandboxPrefetcher pf;
    for (int i = 0; i < 600; ++i)
        pf.onMiss(i * kLineBytes);
    const auto &active = pf.activeOffsets();
    ASSERT_FALSE(active.empty());
    EXPECT_NE(std::find(active.begin(), active.end(), 1), active.end());
}

TEST(Prefetcher, PromotedOffsetsGenerateCandidates)
{
    SandboxPrefetcher pf;
    for (int i = 0; i < 600; ++i)
        pf.onMiss(i * kLineBytes);
    const auto out = pf.onMiss(1000 * kLineBytes);
    ASSERT_FALSE(out.empty());
    // +1 must be among the candidates.
    EXPECT_NE(std::find(out.begin(), out.end(), 1001 * kLineBytes),
              out.end());
}

TEST(Prefetcher, ReverseStreamPromotesMinusOne)
{
    SandboxPrefetcher pf;
    for (int i = 2000; i > 1200; --i)
        pf.onMiss(static_cast<Addr>(i) * kLineBytes);
    const auto &active = pf.activeOffsets();
    ASSERT_FALSE(active.empty());
    EXPECT_NE(std::find(active.begin(), active.end(), -1),
              active.end());
}

TEST(Prefetcher, RandomStreamPromotesNothing)
{
    SandboxPrefetcher pf;
    Rng rng(5);
    for (int i = 0; i < 2000; ++i)
        pf.onMiss(rng.below(1 << 24) * kLineBytes);
    EXPECT_TRUE(pf.activeOffsets().empty());
}

TEST(Prefetcher, StridedStreamPromotesStride)
{
    SandboxPrefetcher pf;
    for (int i = 0; i < 600; ++i)
        pf.onMiss(static_cast<Addr>(i) * 2 * kLineBytes);
    const auto &active = pf.activeOffsets();
    ASSERT_FALSE(active.empty());
    EXPECT_NE(std::find(active.begin(), active.end(), 2), active.end());
}

TEST(Prefetcher, DegreeBoundsCandidates)
{
    SandboxPrefetcher::Params p;
    p.degree = 2;
    SandboxPrefetcher pf(p);
    for (int i = 0; i < 600; ++i)
        pf.onMiss(i * kLineBytes);
    EXPECT_LE(pf.onMiss(5000 * kLineBytes).size(), 2u);
}

TEST(Prefetcher, NegativeAddressesSkipped)
{
    SandboxPrefetcher pf;
    for (int i = 2000; i > 1200; --i)
        pf.onMiss(static_cast<Addr>(i) * kLineBytes);
    // Miss at line 0 with a promoted negative offset: no underflow.
    const auto out = pf.onMiss(0);
    for (Addr a : out)
        EXPECT_LT(a, 1ull << 40);
}

TEST(Prefetcher, EmptyCandidateListFatal)
{
    SandboxPrefetcher::Params p;
    p.candidateOffsets = {};
    EXPECT_EXIT(SandboxPrefetcher pf(p),
                ::testing::ExitedWithCode(1), "candidate offsets");
}
