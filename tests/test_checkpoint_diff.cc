/**
 * @file
 * Differential proof that checkpoints are invisible: every scheduler
 * x partitioning combination is run twice from identical seeds — once
 * uninterrupted, once chopped into chunks with the full system state
 * serialized at each boundary and restored into a freshly constructed
 * ExperimentSystem — and the full-precision result digests must
 * compare equal byte for byte. Any component whose saveState() misses
 * a unit of mutable state, or whose restoreState() rebinds a pointer
 * wrongly, shows up here as a digest mismatch.
 *
 * Also covers the runExperiment()-level snapshot lifecycle (ckpt.dir
 * + ckpt.interval_cycles: periodic atomic writes, resume from a
 * .snap file, cleanup on completion) and the four durability fault
 * kinds, each of which must surface as a structured recoverable
 * SimError — never as a silently wrong digest.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "harness/campaign.hh"
#include "harness/experiment.hh"
#include "util/serialize.hh"

using namespace memsec;
using namespace memsec::harness;

namespace {

Config
diffConfig(const std::string &scheme, const std::string &workload,
           uint64_t seed)
{
    Config c = defaultConfig();
    c.merge(schemeConfig(scheme));
    c.set("workload", workload);
    c.set("cores", 4);
    c.set("seed", seed);
    c.set("sim.warmup", 1500);
    c.set("sim.measure", 12000);
    // Audit one core so the digest covers the noninterference
    // timeline (per-request service + progress checkpoints), not
    // just the aggregate metrics.
    c.set("audit.core", 0);
    c.set("audit.progress_interval", 1000);
    return c;
}

/** Fresh unique directory for journal/snapshot files. */
std::string
makeTempDir()
{
    std::string tmpl = ::testing::TempDir() + "memsec-ckpt-XXXXXX";
    std::vector<char> buf(tmpl.begin(), tmpl.end());
    buf.push_back('\0');
    const char *dir = mkdtemp(buf.data());
    EXPECT_NE(dir, nullptr) << "mkdtemp failed for " << tmpl;
    return std::string(buf.data());
}

bool
fileExists(const std::string &path)
{
    std::string bytes;
    return readFileBytes(path, bytes);
}

/**
 * Run to completion, but every `chunk` cycles serialize the complete
 * system state and carry on in a brand-new ExperimentSystem restored
 * from those bytes. Each restore crosses a full construct/restore
 * boundary, exactly what a killed-and-resumed process does.
 */
ExperimentResult
runWithRestores(const Config &cfg, unsigned snapshots)
{
    auto sys = std::make_unique<ExperimentSystem>(cfg);
    const Cycle total =
        cfg.getUint("sim.warmup") + cfg.getUint("sim.measure");
    const Cycle chunk = total / (snapshots + 1) + 1;
    unsigned restores = 0;
    while (!sys->done()) {
        sys->step(chunk);
        if (sys->done())
            break;
        Serializer s;
        sys->saveState(s);
        auto fresh = std::make_unique<ExperimentSystem>(cfg);
        Deserializer d(s.data());
        fresh->restoreState(d);
        sys = std::move(fresh);
        ++restores;
    }
    EXPECT_GT(restores, 0u)
        << "run finished before any snapshot boundary; the "
           "comparison proves nothing";
    return sys->finish();
}

void
expectIdentical(const Config &cfg, const std::string &what)
{
    const ExperimentResult plain = runExperiment(cfg);
    const ExperimentResult restored = runWithRestores(cfg, 3);
    EXPECT_EQ(resultDigest(plain), resultDigest(restored)) << what;
}

void
expectIdentical(const std::string &scheme, const std::string &workload,
                uint64_t seed)
{
    expectIdentical(diffConfig(scheme, workload, seed),
                    scheme + "/" + workload +
                        " seed=" + std::to_string(seed));
}

} // namespace

// -- FS (fixed service) across all three partitioning modes --------

TEST(CheckpointDiff, FsRankPartition)
{
    expectIdentical("fs_rp", "mcf", 1);
    expectIdentical("fs_rp", "libquantum", 42);
}

TEST(CheckpointDiff, FsBankPartition)
{
    expectIdentical("fs_bp", "milc", 7);
}

TEST(CheckpointDiff, FsNoPartition)
{
    expectIdentical("fs_np", "mcf", 1);
}

// The energy variants exercise ACT suppression and precharge
// power-down, whose rank residency counters must survive a restore.
TEST(CheckpointDiff, FsEnergyVariants)
{
    expectIdentical("fs_rp_powerdown", "mcf", 1);
}

TEST(CheckpointDiff, FsWithPrefetch)
{
    expectIdentical("fs_rp_prefetch", "libquantum", 1);
}

// -- FS-reordered across two partitioning modes --------------------

TEST(CheckpointDiff, FsReorderedBankPartition)
{
    expectIdentical("fs_reordered_bp", "mcf", 1);
}

TEST(CheckpointDiff, FsReorderedRankPartition)
{
    Config c = diffConfig("fs_reordered_bp", "milc", 42);
    c.set("map.partition", "rank");
    expectIdentical(c, "fs_reordered + rank partition");
}

// -- Temporal partitioning across both partitioning modes ----------

TEST(CheckpointDiff, TpBankPartition)
{
    expectIdentical("tp_bp", "mcf", 1);
    expectIdentical("tp_bp", "astar", 42);
}

TEST(CheckpointDiff, TpNoPartition)
{
    expectIdentical("tp_np", "xalancbmk", 7);
}

// -- FRFCFS baseline: no partition and channel partition -----------

TEST(CheckpointDiff, FrFcfsBaseline)
{
    expectIdentical("baseline", "mcf", 1);
    expectIdentical("baseline_prefetch", "mcf", 1);
}

TEST(CheckpointDiff, FrFcfsChannelPartition)
{
    expectIdentical("channel_part", "mcf", 1);
}

// -- Fault injection: injector PRNG state must survive a restore ---

TEST(CheckpointDiff, FaultInjectionStateSurvivesRestore)
{
    Config c = diffConfig("fs_rp", "mcf", 1);
    c.set("fault.kind", "slot-skew");
    expectIdentical(c, "fs_rp with slot-skew injector");
}

// -- Three-way: naive, fast-forward, and restored-with-fast-forward
//    must all land on the same digest --------------------------------

TEST(CheckpointDiff, ThreeWayNaiveFastForwardRestored)
{
    Config c = diffConfig("fs_np", "mcf", 1);
    c.set("sim.fastforward", false);
    const ExperimentResult naive = runExperiment(c);
    c.set("sim.fastforward", true);
    const ExperimentResult fast = runExperiment(c);
    const ExperimentResult restored = runWithRestores(c, 4);
    EXPECT_EQ(resultDigest(naive), resultDigest(fast));
    EXPECT_EQ(resultDigest(naive), resultDigest(restored));
    // The restored run must still exercise the fast path, or the
    // fast-forward arm of this three-way proves nothing.
    EXPECT_GT(restored.cyclesSkipped, 0u);
}

// -- Compiled replay (sim.compiled) across checkpoint boundaries ---
//
// Checkpoints serialize only the planned-operation deque; the replay
// event ring and the compiled-energy intervals are derived state,
// rebuilt in restoreState(). These tests prove the rebuild is exact:
// chunked compiled runs and cross-mode restores land on the naive
// interpreted digest byte for byte.

TEST(CheckpointDiff, CompiledReplaySurvivesRestores)
{
    for (const char *scheme : {"fs_rp", "tp_bp", "fs_reordered_bp"}) {
        Config naive = diffConfig(scheme, "mcf", 1);
        naive.set("sim.fastforward", false);
        const ExperimentResult plain = runExperiment(naive);

        Config compiled = diffConfig(scheme, "mcf", 1);
        compiled.set("sim.compiled", "on");
        const ExperimentResult restored = runWithRestores(compiled, 3);
        EXPECT_EQ(resultDigest(plain), resultDigest(restored)) << scheme;
        EXPECT_GT(restored.compiledCommands, 0u) << scheme;
    }
}

// Save under the interpreted path, restore into a compiled-replay
// system: the restored scheduler must adopt the mid-flight plan into
// its freshly built event ring and continue digest-identically. (The
// reverse direction — save under `on`, restore under off/verify — is
// unsupported: the dynamic TimingChecker's shadow state was never fed
// while replay skipped it; see docs/CHECKPOINT.md.)
TEST(CheckpointDiff, CrossModeInterpretedSaveCompiledRestore)
{
    for (const char *scheme : {"fs_rp", "tp_bp", "fs_reordered_bp"}) {
        const Config interp = diffConfig(scheme, "mcf", 1);
        Config compiled = interp;
        compiled.set("sim.compiled", "on");

        const ExperimentResult plain = runExperiment(interp);

        ExperimentSystem saver(interp);
        saver.step(5000);
        ASSERT_FALSE(saver.done());
        Serializer s;
        saver.saveState(s);

        ExperimentSystem resumer(compiled);
        Deserializer d(s.data());
        resumer.restoreState(d);
        while (!resumer.done())
            resumer.step(4000);
        const ExperimentResult res = resumer.finish();
        EXPECT_EQ(resultDigest(plain), resultDigest(res)) << scheme;
        EXPECT_GT(res.compiledCommands, 0u)
            << scheme << ": restored run never replayed";
    }
}

// -- runExperiment()-level snapshot lifecycle ----------------------

// Periodic snapshot writes must not perturb the run, and the .snap
// file must be cleaned up once the run completes.
TEST(CheckpointDiff, PeriodicSnapshotsAreInvisible)
{
    const Config base = diffConfig("fs_rp", "mcf", 1);
    const ExperimentResult plain = runExperiment(base);

    const std::string dir = makeTempDir();
    Config c = base;
    c.set("ckpt.dir", dir);
    c.set("ckpt.interval_cycles", 3000);
    const ExperimentResult snapped = runExperiment(c);

    EXPECT_EQ(resultDigest(plain), resultDigest(snapped));
    EXPECT_FALSE(snapped.resumedFromSnapshot);
    const std::string snapPath =
        dir + "/" + Campaign::fingerprint(base) + ".snap";
    EXPECT_FALSE(fileExists(snapPath))
        << "completed run left its mid-run snapshot behind";
}

// A pre-existing .snap file (a killed run's last checkpoint) must be
// picked up, flagged as a resume, and produce the uninterrupted
// run's exact digest.
TEST(CheckpointDiff, ResumeFromSnapshotFileIsByteIdentical)
{
    const Config base = diffConfig("tp_bp", "mcf", 1);
    const ExperimentResult plain = runExperiment(base);

    const std::string dir = makeTempDir();
    const std::string fp = Campaign::fingerprint(base);
    {
        ExperimentSystem sys(base);
        sys.step(5000);
        ASSERT_FALSE(sys.done());
        Serializer s;
        sys.saveState(s);
        ASSERT_TRUE(writeFileAtomic(dir + "/" + fp + ".snap",
                                    encodeSnapshot(fp, s.data())));
    }
    Config c = base;
    c.set("ckpt.dir", dir);
    const ExperimentResult resumed = runExperiment(c);
    EXPECT_TRUE(resumed.resumedFromSnapshot);
    EXPECT_EQ(resultDigest(plain), resultDigest(resumed));
}

// -- Durability faults: every corruption is detected and reported --

namespace {

/**
 * Seed ckpt.dir with a valid mid-run snapshot, then run with a
 * snapshot-corrupting fault kind armed. The load must reject the
 * damaged bytes with the expected structured category, fall back to
 * a clean from-scratch run, and still produce the uninterrupted
 * run's observables.
 */
void
expectCorruptionDetected(const std::string &kind,
                         const std::string &category)
{
    const Config base = diffConfig("fs_rp", "mcf", 1);
    const ExperimentResult clean = runExperiment(base);

    const std::string dir = makeTempDir();
    Config c = base;
    c.set("ckpt.dir", dir);
    c.set("fault.kind", kind);
    c.set("fault.seed", 99);
    // fault.* keys are part of the run's identity (only ckpt.*/crash.*
    // are stripped), so the seeded snapshot is keyed by the faulted
    // config's fingerprint.
    const std::string fp = Campaign::fingerprint(c);
    {
        ExperimentSystem sys(base);
        sys.step(5000);
        Serializer s;
        sys.saveState(s);
        ASSERT_TRUE(writeFileAtomic(dir + "/" + fp + ".snap",
                                    encodeSnapshot(fp, s.data())));
    }
    const ExperimentResult res = runExperiment(c);

    ASSERT_FALSE(res.simErrors.empty())
        << kind << ": corruption was not reported";
    EXPECT_EQ(res.simErrors.front().category, category) << kind;
    EXPECT_FALSE(res.resumedFromSnapshot)
        << kind << ": restored from corrupt bytes";
    EXPECT_EQ(res.faultsInjected, 1u) << kind;
    // Recovery means a correct from-scratch run, not a wrong one.
    EXPECT_EQ(res.cyclesRun, clean.cyclesRun) << kind;
    EXPECT_EQ(res.ipc, clean.ipc) << kind;
    EXPECT_EQ(res.meanReadLatency, clean.meanReadLatency) << kind;
    EXPECT_EQ(res.effectiveBandwidth, clean.effectiveBandwidth) << kind;
}

} // namespace

TEST(CheckpointDiff, TruncatedSnapshotDetected)
{
    expectCorruptionDetected("snapshot-truncate", "snapshot-truncate");
}

TEST(CheckpointDiff, BitFlippedSnapshotCaughtByCrc)
{
    expectCorruptionDetected("snapshot-bitflip", "snapshot-corrupt");
}

TEST(CheckpointDiff, VersionMismatchDetected)
{
    expectCorruptionDetected("snapshot-version", "snapshot-version");
}

TEST(CheckpointDiff, StaleFingerprintDetected)
{
    expectCorruptionDetected("journal-stale", "snapshot-stale");
}
