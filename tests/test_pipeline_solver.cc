/**
 * @file
 * The paper's mathematical results as executable assertions: every
 * derived pipeline constant in Sections 3 and 4 must fall out of the
 * general solver, and every solution must be conflict-free when
 * expanded into a concrete schedule.
 */

#include <gtest/gtest.h>

#include "core/pipeline_solver.hh"
#include "core/slot_schedule.hh"

using namespace memsec;
using core::PartitionLevel;
using core::PeriodicRef;
using core::PipelineSolver;

namespace {

PipelineSolver
paperSolver()
{
    return PipelineSolver(dram::TimingParams::ddr3_1600_4gb());
}

} // namespace

TEST(PipelineSolver, RankPartitionFixedDataGivesSeven)
{
    // Section 3.1: the minimum l satisfying Equations 1a-1f is 7.
    const auto sol = paperSolver().solve(PeriodicRef::Data,
                                         PartitionLevel::Rank);
    ASSERT_TRUE(sol.feasible);
    EXPECT_EQ(sol.l, 7u);
}

TEST(PipelineSolver, RankPartitionSixIsInfeasible)
{
    // l = 6 violates equation 1a/1f ((k - k')l != 6).
    std::string why;
    EXPECT_FALSE(paperSolver().feasible(PeriodicRef::Data,
                                        PartitionLevel::Rank, 6, &why));
    EXPECT_FALSE(why.empty());
}

TEST(PipelineSolver, RankPartitionForbiddenGaps)
{
    // The six non-trivial inequalities forbid gaps {5, 6, 11, 17}.
    const PipelineSolver s = paperSolver();
    for (unsigned l : {5u, 6u, 11u, 17u}) {
        EXPECT_FALSE(
            s.feasible(PeriodicRef::Data, PartitionLevel::Rank, l))
            << "l=" << l << " should collide on the command bus";
    }
}

TEST(PipelineSolver, RankPartitionFixedRasGivesTwelve)
{
    // Section 3.1: "we would have arrived at an l = 12".
    const auto sol = paperSolver().solve(PeriodicRef::Ras,
                                         PartitionLevel::Rank);
    ASSERT_TRUE(sol.feasible);
    EXPECT_EQ(sol.l, 12u);
}

TEST(PipelineSolver, RankPartitionFixedCasGivesTwelve)
{
    const auto sol = paperSolver().solve(PeriodicRef::Cas,
                                         PartitionLevel::Rank);
    ASSERT_TRUE(sol.feasible);
    EXPECT_EQ(sol.l, 12u);
}

TEST(PipelineSolver, BestRankPipelineIsFixedData)
{
    const auto sol = paperSolver().solveBest(PartitionLevel::Rank);
    ASSERT_TRUE(sol.feasible);
    EXPECT_EQ(sol.l, 7u);
    EXPECT_EQ(sol.ref, PeriodicRef::Data);
    // Peak utilisation tBURST / l = 4/7 = 57%.
    EXPECT_NEAR(sol.peakUtilisation(4), 0.571, 0.001);
}

TEST(PipelineSolver, BankPartitionFixedRasGivesFifteen)
{
    // Section 4.2: fixed periodic RAS yields l = 15 (tWTR-bound).
    const auto sol = paperSolver().solve(PeriodicRef::Ras,
                                         PartitionLevel::Bank);
    ASSERT_TRUE(sol.feasible);
    EXPECT_EQ(sol.l, 15u);
}

TEST(PipelineSolver, BankPartitionFixedDataNeedsTwentyOne)
{
    // Section 4.2, Equation 4b: l >= 21 with fixed periodic data.
    const auto sol = paperSolver().solve(PeriodicRef::Data,
                                         PartitionLevel::Bank);
    ASSERT_TRUE(sol.feasible);
    EXPECT_EQ(sol.l, 21u);
}

TEST(PipelineSolver, BestBankPipelineQAndUtilisation)
{
    const auto sol = paperSolver().solveBest(PartitionLevel::Bank);
    ASSERT_TRUE(sol.feasible);
    EXPECT_EQ(sol.l, 15u);
    // Q = 15 * 8 = 120 cycles; peak bus utilisation ~27%.
    EXPECT_EQ(sol.intervalQ(8), 120u);
    EXPECT_NEAR(sol.peakUtilisation(4), 0.267, 0.001);
}

TEST(PipelineSolver, NoPartitionGivesFortyThree)
{
    // Section 4.3: write-then-read to different rows of one bank
    // binds the unpartitioned pipeline at l = 43.
    const auto sol = paperSolver().solveBest(PartitionLevel::None);
    ASSERT_TRUE(sol.feasible);
    EXPECT_EQ(sol.l, 43u);
    EXPECT_EQ(sol.ref, PeriodicRef::Ras);
    // Q = 344 for 8 threads, ~9% utilisation.
    EXPECT_EQ(sol.intervalQ(8), 344u);
    EXPECT_NEAR(sol.peakUtilisation(4), 0.093, 0.001);
}

TEST(PipelineSolver, SameBankReuseConstantIsFortyThree)
{
    const auto tp = dram::TimingParams::ddr3_1600_4gb();
    // tRCD + tCWD + tBURST + tWR + tRP = 11+5+4+12+11.
    EXPECT_EQ(tp.actToActWrA(), 43u);
    EXPECT_EQ(tp.actToActRdA(), 39u); // == tRC for this part
}

TEST(PipelineSolver, ReorderedBankPartitionMatchesPaper)
{
    // Section 4.2: spacing 6, Q = 63 for 8 threads, ~51% utilisation.
    const auto r = paperSolver().solveReordered(8);
    EXPECT_EQ(r.spacing, 6u);
    EXPECT_EQ(r.endGap, 21u);
    EXPECT_EQ(r.q, 63u);
    EXPECT_NEAR(r.peakUtilisation, 0.508, 0.001);
}

TEST(PipelineSolver, ReorderedScalesWithThreads)
{
    const PipelineSolver s = paperSolver();
    for (unsigned n : {1u, 2u, 4u, 16u}) {
        const auto r = s.solveReordered(n);
        EXPECT_EQ(r.q, (n - 1) * r.spacing + r.endGap);
        EXPECT_GT(r.peakUtilisation, 0.0);
    }
}

TEST(PipelineSolver, TripleAlternationFactorIsThree)
{
    // ceil(43 / 15) = 3: the paper's triple alternation.
    EXPECT_EQ(paperSolver().alternationFactor(), 3u);
}

TEST(PipelineSolver, RankPartSameBankHazardBoundary)
{
    // Section 7: with <= 6 threads/ranks a thread's back-to-back
    // same-rank transactions can violate the 43-cycle reuse bound.
    const PipelineSolver s = paperSolver();
    for (unsigned n = 1; n <= 6; ++n)
        EXPECT_TRUE(s.rankPartSameBankHazard(n, 7)) << n;
    for (unsigned n = 7; n <= 16; ++n)
        EXPECT_FALSE(s.rankPartSameBankHazard(n, 7)) << n;
}

TEST(PipelineSolver, OffsetsMatchPaperTimingDiagram)
{
    // Figure 1: Column-Rd 11 cycles before data, Column-Wr 5 before,
    // Activates tRCD = 11 before their column commands.
    const auto off = paperSolver().offsets(PeriodicRef::Data);
    EXPECT_EQ(off.casRead, -11);
    EXPECT_EQ(off.casWrite, -5);
    EXPECT_EQ(off.actRead, -22);
    EXPECT_EQ(off.actWrite, -16);
    EXPECT_EQ(off.dataRead, 0);
    EXPECT_EQ(off.dataWrite, 0);
}

TEST(PipelineSolver, InfeasibleWhenMaxLTooSmall)
{
    const auto sol =
        paperSolver().solve(PeriodicRef::Ras, PartitionLevel::None, 10);
    EXPECT_FALSE(sol.feasible);
}

// ---- Generalisation: the solver must produce valid (conflict-free)
// pipelines for other DRAM parts, not just the paper's DDR3-1600. ----

struct SolverSweepParam
{
    const char *partName;
    dram::TimingParams (*make)();
    PeriodicRef ref;
    PartitionLevel level;
};

class SolverSweep : public ::testing::TestWithParam<SolverSweepParam>
{
};

TEST_P(SolverSweep, SolutionExistsAndScheduleIsConflictFree)
{
    const auto &p = GetParam();
    const dram::TimingParams tp = p.make();
    const PipelineSolver solver(tp);
    const auto sol = solver.solve(p.ref, p.level, 512);
    ASSERT_TRUE(sol.feasible)
        << p.partName << " " << core::periodicRefName(p.ref) << " "
        << core::partitionLevelName(p.level);

    // Expand 96 slots under adversarial read/write mixes and check
    // pairwise conflict freedom.
    const core::SlotSchedule sched(sol, 8, tp);
    for (uint64_t mask :
         {0x0ull, ~0x0ull, 0xAAAAAAAAAAAAAAAAull, 0x0F0F0F0F0F0F0F0Full,
          0x123456789ABCDEF0ull, 0xFFFF0000FFFF0000ull}) {
        EXPECT_EQ(sched.verifyWindow(96, mask), "")
            << p.partName << " mask=" << std::hex << mask;
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllPartsRefsLevels, SolverSweep,
    ::testing::Values(
        SolverSweepParam{"ddr3_1600", &dram::TimingParams::ddr3_1600_4gb,
                         PeriodicRef::Data, PartitionLevel::Rank},
        SolverSweepParam{"ddr3_1600", &dram::TimingParams::ddr3_1600_4gb,
                         PeriodicRef::Ras, PartitionLevel::Rank},
        SolverSweepParam{"ddr3_1600", &dram::TimingParams::ddr3_1600_4gb,
                         PeriodicRef::Cas, PartitionLevel::Rank},
        SolverSweepParam{"ddr3_1600", &dram::TimingParams::ddr3_1600_4gb,
                         PeriodicRef::Data, PartitionLevel::Bank},
        SolverSweepParam{"ddr3_1600", &dram::TimingParams::ddr3_1600_4gb,
                         PeriodicRef::Ras, PartitionLevel::Bank},
        SolverSweepParam{"ddr3_1600", &dram::TimingParams::ddr3_1600_4gb,
                         PeriodicRef::Ras, PartitionLevel::None},
        SolverSweepParam{"ddr3_2133", &dram::TimingParams::ddr3_2133,
                         PeriodicRef::Data, PartitionLevel::Rank},
        SolverSweepParam{"ddr3_2133", &dram::TimingParams::ddr3_2133,
                         PeriodicRef::Ras, PartitionLevel::Bank},
        SolverSweepParam{"ddr3_2133", &dram::TimingParams::ddr3_2133,
                         PeriodicRef::Ras, PartitionLevel::None},
        SolverSweepParam{"ddr4_2400", &dram::TimingParams::ddr4_2400,
                         PeriodicRef::Data, PartitionLevel::Rank},
        SolverSweepParam{"ddr4_2400", &dram::TimingParams::ddr4_2400,
                         PeriodicRef::Ras, PartitionLevel::Bank},
        SolverSweepParam{"ddr4_2400", &dram::TimingParams::ddr4_2400,
                         PeriodicRef::Ras, PartitionLevel::None}));

// ---- Property: the reported minimum really is minimal — every
// smaller l is infeasible. ----

class MinimalitySweep
    : public ::testing::TestWithParam<std::pair<int, int>>
{
};

TEST_P(MinimalitySweep, NoSmallerFeasibleL)
{
    const auto ref = static_cast<PeriodicRef>(GetParam().first);
    const auto level = static_cast<PartitionLevel>(GetParam().second);
    const PipelineSolver s = paperSolver();
    const auto sol = s.solve(ref, level);
    ASSERT_TRUE(sol.feasible);
    for (unsigned l = 1; l < sol.l; ++l)
        EXPECT_FALSE(s.feasible(ref, level, l)) << "l=" << l;
}

INSTANTIATE_TEST_SUITE_P(
    AllRefLevelCombos, MinimalitySweep,
    ::testing::Values(std::make_pair(0, 0), std::make_pair(1, 0),
                      std::make_pair(2, 0), std::make_pair(0, 1),
                      std::make_pair(1, 1), std::make_pair(2, 1),
                      std::make_pair(0, 2), std::make_pair(1, 2),
                      std::make_pair(2, 2)));
