#include <gtest/gtest.h>

#include <stdexcept>

#include "dram/channel.hh"

using namespace memsec;
using namespace memsec::dram;

namespace {
const TimingParams tp = TimingParams::ddr3_1600_4gb();
}

TEST(Channel, OneCommandPerCycle)
{
    ChannelBuses ch(tp);
    EXPECT_TRUE(ch.cmdBusFree(5));
    ch.useCmdBus(5);
    EXPECT_FALSE(ch.cmdBusFree(5));
    EXPECT_TRUE(ch.cmdBusFree(6));
    EXPECT_THROW(ch.useCmdBus(5), std::logic_error);
}

TEST(Channel, CommandTimeMonotone)
{
    ChannelBuses ch(tp);
    ch.useCmdBus(10);
    EXPECT_THROW(ch.useCmdBus(9), std::logic_error);
}

TEST(Channel, SameRankBurstsGapless)
{
    ChannelBuses ch(tp);
    ch.reserveData(100, 3);
    // Same rank can follow immediately after the burst.
    EXPECT_EQ(ch.earliestDataStart(3), 100 + tp.burst);
    ch.reserveData(104, 3);
}

TEST(Channel, RankSwitchNeedsTrtrs)
{
    ChannelBuses ch(tp);
    ch.reserveData(100, 3);
    EXPECT_EQ(ch.earliestDataStart(4), 100 + tp.burst + tp.rtrs);
    EXPECT_FALSE(ch.dataBusFree(104, 4));
    EXPECT_TRUE(ch.dataBusFree(106, 4));
    EXPECT_THROW(ch.reserveData(105, 4), std::logic_error);
}

TEST(Channel, OverlapPanics)
{
    ChannelBuses ch(tp);
    ch.reserveData(100, 0);
    EXPECT_THROW(ch.reserveData(102, 0), std::logic_error);
}

TEST(Channel, FirstBurstUnconstrained)
{
    ChannelBuses ch(tp);
    EXPECT_EQ(ch.earliestDataStart(7), 0u);
}

TEST(Channel, UtilisationCounters)
{
    ChannelBuses ch(tp);
    ch.reserveData(0, 0);
    ch.reserveData(10, 1);
    EXPECT_EQ(ch.dataBusyCycles(), 2ull * tp.burst);
    ch.useCmdBus(0);
    ch.useCmdBus(1);
    EXPECT_EQ(ch.commandCount(), 2u);
}
