/**
 * @file
 * Refresh support — the paper's interval analysis ignores refresh; a
 * deployable controller cannot. The baseline refreshes each rank on a
 * staggered tREFI deadline; FS pauses its pipeline at wall-clock-
 * deterministic epochs so the refresh schedule cannot carry any
 * domain's information.
 */

#include <gtest/gtest.h>

#include "core/noninterference.hh"
#include "harness/experiment.hh"
#include "mem/memory_controller.hh"
#include "sched/frfcfs.hh"
#include "sched/fs.hh"
#include "sim/simulator.hh"

using namespace memsec;
using namespace memsec::mem;
using namespace memsec::sched;

namespace {

struct FsRig
{
    explicit FsRig(bool refresh)
        : map(dram::Geometry{}, Partition::Rank, Interleave::ClosePage,
              8)
    {
        MemoryController::Params p;
        p.numDomains = 8;
        mc = std::make_unique<MemoryController>("mc", p, map);
        FsScheduler::Params fp;
        fp.mode = FsMode::RankPart;
        fp.refresh = refresh;
        auto s = std::make_unique<FsScheduler>(*mc, fp);
        fs = s.get();
        mc->setScheduler(std::move(s));
    }

    void
    run(Cycle cycles)
    {
        for (Cycle t = 0; t < cycles; ++t)
            mc->tick(t);
    }

    AddressMap map;
    std::unique_ptr<MemoryController> mc;
    FsScheduler *fs = nullptr;
};

} // namespace

TEST(RefreshFs, EveryRankRefreshedEachEpoch)
{
    FsRig rig(true);
    const auto &tp = rig.mc->dram().timing();
    rig.run(3 * tp.refi + 1000);
    for (unsigned r = 0; r < 8; ++r) {
        EXPECT_EQ(rig.mc->dram().rank(r).energy().refreshes, 3u)
            << "rank " << r;
    }
}

TEST(RefreshFs, NoRefreshWithoutFlag)
{
    FsRig rig(false);
    rig.run(10000);
    EXPECT_EQ(rig.mc->dram().rank(0).energy().refreshes, 0u);
}

TEST(RefreshFs, EpochStealsBoundedSlots)
{
    FsRig rig(true);
    const auto &tp = rig.mc->dram().timing();
    rig.run(tp.refi + 1500);
    StatGroup g;
    rig.fs->registerStats(g);
    // The blackout is margin + pause ~ (65 + 216) cycles = ~40 slots.
    EXPECT_GT(g.lookup("skipped_slots"), 20.0);
    EXPECT_LT(g.lookup("skipped_slots"), 80.0);
}

TEST(RefreshFs, ConflictFreeUnderLoad)
{
    // Saturate all domains across multiple epochs; the DRAM model
    // panics on any violation (e.g. a slot overlapping the epoch).
    Config c = harness::defaultConfig();
    c.merge(harness::schemeConfig("fs_rp"));
    c.set("dram.refresh", true);
    c.set("workload", "lbm");
    c.set("sim.warmup", 1000);
    c.set("sim.measure", 15000);
    const auto r = harness::runExperiment(c);
    EXPECT_GT(r.demandReads, 0u);
}

TEST(RefreshFs, NonInterferenceHolds)
{
    auto run = [](const std::string &co) {
        Config c = harness::defaultConfig();
        c.merge(harness::schemeConfig("fs_rp"));
        c.set("dram.refresh", true);
        c.set("workload", "mcf," + co + "," + co + "," + co + "," + co +
                              "," + co + "," + co + "," + co);
        c.set("sim.warmup", 0);
        c.set("sim.measure", 20000);
        c.set("audit.core", 0);
        return harness::runExperiment(c).timelines.at(0);
    };
    const auto audit = core::compareTimelines(run("idle"), run("hog"));
    EXPECT_TRUE(audit.identical) << audit.detail;
}

TEST(RefreshBaseline, StaggeredRefreshMeetsDeadlines)
{
    AddressMap map(dram::Geometry{}, Partition::None,
                   Interleave::OpenPage, 4);
    MemoryController::Params p;
    p.numDomains = 4;
    MemoryController mc("mc", p, map);
    auto s = std::make_unique<FrFcfsScheduler>(mc, false, true);
    auto *fr = s.get();
    mc.setScheduler(std::move(s));
    const auto &tp = mc.dram().timing();
    // Deadlines are staggered at (r+1)/8 * tREFI: after ~2.3 tREFI
    // every rank has refreshed 2-3 times, early ranks one more than
    // late ones.
    for (Cycle t = 0; t < 2 * tp.refi + 2000; ++t)
        mc.tick(t);
    EXPECT_GE(fr->refreshes(), 16u);
    EXPECT_LE(fr->refreshes(), 24u);
    for (unsigned r = 0; r < 8; ++r) {
        EXPECT_GE(mc.dram().rank(r).energy().refreshes, 2u) << r;
        EXPECT_LE(mc.dram().rank(r).energy().refreshes, 3u) << r;
    }
}

TEST(RefreshBaseline, RefreshDrainsOpenRowsFirst)
{
    AddressMap map(dram::Geometry{}, Partition::None,
                   Interleave::OpenPage, 1);
    MemoryController::Params p;
    p.numDomains = 1;
    MemoryController mc("mc", p, map);
    auto s = std::make_unique<FrFcfsScheduler>(mc, false, true);
    mc.setScheduler(std::move(s));
    // Keep rows open continuously with demand traffic.
    struct Sink : MemClient
    {
        void memResponse(const MemRequest &) override {}
    } sink;
    const auto &tp = mc.dram().timing();
    uint64_t i = 0;
    for (Cycle t = 0; t < tp.refi + 2000; ++t) {
        if (mc.canAccept(0) && t % 3 == 0) {
            auto r = std::make_unique<MemRequest>();
            r->domain = 0;
            r->type = ReqType::Read;
            r->addr = (i++ % 4096) * kLineBytes;
            r->client = &sink;
            mc.access(std::move(r), t);
        }
        mc.tick(t); // panics if REF issued over an open row
    }
    EXPECT_GE(mc.dram().rank(0).energy().refreshes, 1u);
}

TEST(RefreshBaseline, PerformanceCostIsSmall)
{
    auto run = [](bool refresh) {
        Config c = harness::defaultConfig();
        c.merge(harness::schemeConfig("baseline"));
        c.set("dram.refresh", refresh);
        c.set("workload", "milc");
        c.set("sim.warmup", 2000);
        c.set("sim.measure", 30000);
        double sum = 0;
        for (double v : harness::runExperiment(c).ipc)
            sum += v;
        return sum;
    };
    const double off = run(false);
    const double on = run(true);
    // tRFC/tREFI ~ 3.3% per rank, staggered: a few percent at most.
    EXPECT_GT(on, 0.85 * off);
}
