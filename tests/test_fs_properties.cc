/**
 * @file
 * Property tests over the FS scheduler family, swept across modes and
 * random traffic seeds:
 *
 *  1. Service guarantee — any single request completes within a small
 *     constant number of frames of its arrival (the paper's "a thread
 *     is guaranteed service of its next memory request" claims).
 *  2. Slot alignment — every read completion lands on the same cycle
 *     residue modulo the slot spacing: the externally visible service
 *     grid is rigid, which is the essence of fixed service.
 *  3. Under random mixed traffic the independent timing checker never
 *     fires (conflict freedom under adversarial patterns).
 */

#include <gtest/gtest.h>

#include <memory>
#include <tuple>

#include "mem/memory_controller.hh"
#include "sched/fs.hh"
#include "util/random.hh"

using namespace memsec;
using namespace memsec::mem;
using namespace memsec::sched;

namespace {

struct Rig : MemClient
{
    Rig(FsMode mode, unsigned domains)
        : map(dram::Geometry{},
              mode == FsMode::RankPart
                  ? Partition::Rank
                  : (mode == FsMode::BankPart ? Partition::Bank
                                              : Partition::None),
              Interleave::ClosePage, domains)
    {
        MemoryController::Params p;
        p.numDomains = domains;
        p.queueCapacity = 16;
        mc = std::make_unique<MemoryController>("mc", p, map);
        FsScheduler::Params fp;
        fp.mode = mode;
        auto s = std::make_unique<FsScheduler>(*mc, fp);
        fs = s.get();
        mc->setScheduler(std::move(s));
    }

    void memResponse(const MemRequest &req) override
    {
        completions.push_back({req.arrival, req.completed});
    }

    void
    inject(DomainId d, Addr a, ReqType t)
    {
        auto r = std::make_unique<MemRequest>();
        r->domain = d;
        r->type = t;
        r->addr = a;
        r->client = this;
        mc->access(std::move(r), now);
    }

    void
    runTo(Cycle end)
    {
        for (; now < end; ++now)
            mc->tick(now);
    }

    AddressMap map;
    std::unique_ptr<MemoryController> mc;
    FsScheduler *fs = nullptr;
    std::vector<std::pair<Cycle, Cycle>> completions;
    Cycle now = 0;
};

} // namespace

class FsPropertySweep
    : public ::testing::TestWithParam<std::tuple<int, uint64_t>>
{
  protected:
    FsMode mode() const
    {
        return static_cast<FsMode>(std::get<0>(GetParam()));
    }
    uint64_t seed() const { return std::get<1>(GetParam()); }
};

TEST_P(FsPropertySweep, RandomTrafficIsConflictFreeAndBounded)
{
    Rig rig(mode(), 8);
    Rng rng(seed());
    const Cycle frame = rig.fs->frameLength();
    // Triple alternation may need up to `groups` frames for a head
    // whose bank group is out of rotation, plus queueing behind up to
    // 15 earlier same-domain requests.
    const Cycle perReqBound = 4 * frame + 64;

    uint64_t injected = 0;
    for (; rig.now < 40 * frame;) {
        rig.runTo(rig.now + 1 + rng.below(frame / 2));
        const DomainId d = static_cast<DomainId>(rng.below(8));
        if (rig.mc->canAccept(d) &&
            rig.mc->queue(d).readCount() < 4) {
            rig.inject(d, rng.below(1u << 26) * kLineBytes,
                       rng.chance(0.3) ? ReqType::Write
                                       : ReqType::Read);
            ++injected;
        }
    }
    rig.runTo(rig.now + 8 * frame);

    ASSERT_GT(injected, 20u);
    // Low backlog at injection time: each request must complete
    // within the per-request bound (service guarantee).
    ASSERT_GE(rig.completions.size(), injected * 6 / 10);
    for (const auto &[arrival, completed] : rig.completions) {
        EXPECT_LE(completed - arrival, 5 * perReqBound)
            << "arrival " << arrival;
    }
    // Zero violations recorded by the independent auditor.
    EXPECT_TRUE(rig.mc->dram().checker().violations().empty());
}

TEST_P(FsPropertySweep, ReadCompletionsShareOneSlotResidue)
{
    Rig rig(mode(), 8);
    Rng rng(seed() ^ 0xFACE);
    for (; rig.now < 3000;) {
        rig.runTo(rig.now + 1 + rng.below(20));
        const DomainId d = static_cast<DomainId>(rng.below(8));
        if (rig.mc->canAccept(d))
            rig.inject(d, rng.below(1u << 22) * kLineBytes,
                       ReqType::Read);
    }
    rig.runTo(rig.now + 2000);
    ASSERT_GT(rig.completions.size(), 30u);
    const Cycle l = rig.fs->slotSpacing();
    const Cycle residue = rig.completions.front().second % l;
    for (const auto &[arrival, completed] : rig.completions) {
        (void)arrival;
        EXPECT_EQ(completed % l, residue)
            << "completion " << completed << " off the service grid";
    }
}

namespace {

// Outside the macro: commas inside braced initialisers confuse the
// INSTANTIATE macro's argument splitting.
std::string
sweepName(const ::testing::TestParamInfo<std::tuple<int, uint64_t>>
              &info)
{
    static const char *names[4] = {"rank", "bank", "nopart", "triple"};
    return std::string(names[std::get<0>(info.param)]) + "_s" +
           std::to_string(std::get<1>(info.param));
}

} // namespace

INSTANTIATE_TEST_SUITE_P(
    ModesAndSeeds, FsPropertySweep,
    ::testing::Combine(::testing::Values(0, 1, 2, 3), // FsMode values
                       ::testing::Values(11ull, 22ull, 33ull)),
    sweepName);
