#include <gtest/gtest.h>

#include <stdexcept>

#include "dram/rank.hh"

using namespace memsec;
using namespace memsec::dram;

namespace {
const TimingParams tp = TimingParams::ddr3_1600_4gb();
}

TEST(Rank, TrrdBetweenActivates)
{
    Rank r(8, tp);
    r.recordActivate(0);
    EXPECT_EQ(r.nextActRankLimit(), tp.rrd);
    EXPECT_THROW(r.recordActivate(tp.rrd - 1), std::logic_error);
}

TEST(Rank, TfawLimitsFourActivates)
{
    Rank r(8, tp);
    // Four ACTs at the tRRD floor: 0, 5, 10, 15.
    for (Cycle t = 0; t < 4 * tp.rrd; t += tp.rrd)
        r.recordActivate(t);
    // The fifth must wait until 0 + tFAW = 24, not 20.
    EXPECT_EQ(r.nextActRankLimit(), tp.faw);
    EXPECT_THROW(r.recordActivate(20), std::logic_error);
    r.recordActivate(tp.faw);
}

TEST(Rank, CasTurnaroundWindows)
{
    Rank r(8, tp);
    r.recordRead(100);
    EXPECT_EQ(r.nextRead(), 100 + tp.ccd);
    EXPECT_EQ(r.nextWrite(), 100 + tp.rd2wr());
    r.recordWrite(100 + tp.rd2wr());
    EXPECT_EQ(r.nextRead(), 100 + tp.rd2wr() + tp.wr2rd());
}

TEST(Rank, EarlyCasPanics)
{
    Rank r(8, tp);
    r.recordRead(0);
    EXPECT_THROW(r.recordRead(tp.ccd - 1), std::logic_error);
    Rank r2(8, tp);
    r2.recordWrite(0);
    EXPECT_THROW(r2.recordRead(tp.wr2rd() - 1), std::logic_error);
}

TEST(Rank, RefreshBlocksBanks)
{
    Rank r(8, tp);
    r.startRefresh(10);
    EXPECT_EQ(r.refreshEndsAt(), 10 + tp.rfc);
    for (unsigned b = 0; b < 8; ++b)
        EXPECT_GE(r.bank(b).nextAct(), 10 + tp.rfc);
    EXPECT_EQ(r.energy().refreshes, 1u);
}

TEST(Rank, RefreshWithOpenRowPanics)
{
    Rank r(8, tp);
    r.bank(0).doActivate(0, 1, tp);
    EXPECT_THROW(r.startRefresh(50), std::logic_error);
}

TEST(Rank, PowerDownLifecycle)
{
    Rank r(8, tp);
    EXPECT_FALSE(r.isPoweredDown());
    r.enterPowerDown(100);
    EXPECT_TRUE(r.isPoweredDown());
    EXPECT_EQ(r.earliestPdExit(), 100 + tp.cke);
    EXPECT_THROW(r.exitPowerDown(100 + tp.cke - 1), std::logic_error);
    r.exitPowerDown(100 + tp.cke);
    EXPECT_FALSE(r.isPoweredDown());
    // Commands blocked until tXP after exit.
    EXPECT_GE(r.bank(0).nextAct(), 100 + tp.cke + tp.xp);
}

TEST(Rank, PowerDownWithOpenRowPanics)
{
    Rank r(8, tp);
    r.bank(0).doActivate(0, 1, tp);
    EXPECT_THROW(r.enterPowerDown(50), std::logic_error);
}

TEST(Rank, DoublePowerDownPanics)
{
    Rank r(8, tp);
    r.enterPowerDown(0);
    EXPECT_THROW(r.enterPowerDown(10), std::logic_error);
}

TEST(Rank, PowerStateClassification)
{
    Rank r(8, tp);
    EXPECT_EQ(r.powerState(0), PowerState::PrechargeStandby);
    r.bank(2).doActivate(0, 1, tp);
    EXPECT_EQ(r.powerState(5), PowerState::ActiveStandby);
    r.bank(2).doPrecharge(tp.ras, tp);
    EXPECT_EQ(r.powerState(tp.ras + 1), PowerState::PrechargeStandby);
    r.startRefresh(100);
    EXPECT_EQ(r.powerState(150), PowerState::Refreshing);
    EXPECT_EQ(r.powerState(100 + tp.rfc), PowerState::PrechargeStandby);
}

TEST(Rank, EnergyTickAccumulatesByState)
{
    Rank r(8, tp);
    for (Cycle t = 0; t < 10; ++t)
        r.tickEnergy(t);
    EXPECT_EQ(r.energy().cyclesPrecharge, 10u);
    r.bank(0).doActivate(10, 1, tp);
    for (Cycle t = 10; t < 15; ++t)
        r.tickEnergy(t);
    EXPECT_EQ(r.energy().cyclesActive, 5u);
}

TEST(Rank, SuppressedActivateNotCharged)
{
    Rank r(8, tp);
    r.recordActivate(0, true);
    EXPECT_EQ(r.energy().activates, 0u);
    EXPECT_EQ(r.energy().suppressedActs, 1u);
    // Timing windows still advance.
    EXPECT_EQ(r.nextActRankLimit(), tp.rrd);
}

TEST(Rank, AllBanksIdleBy)
{
    Rank r(8, tp);
    EXPECT_TRUE(r.allBanksIdleBy(0));
    r.bank(3).doActivate(0, 1, tp);
    EXPECT_FALSE(r.allBanksIdleBy(100));
    r.bank(3).doPrecharge(tp.ras, tp);
    EXPECT_FALSE(r.allBanksIdleBy(tp.ras + tp.rp - 1));
    EXPECT_TRUE(r.allBanksIdleBy(tp.rc));
}
