#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <stdexcept>
#include <string>
#include <vector>

#include "dram/dram_system.hh"

using namespace memsec;
using namespace memsec::dram;

namespace {

class DramSystemTest : public ::testing::Test
{
  protected:
    DramSystemTest()
        : sys(TimingParams::ddr3_1600_4gb(), Geometry{})
    {
    }

    Command
    mk(CmdType t, unsigned rank, unsigned bank, unsigned row = 0)
    {
        return Command{t, rank, bank, row, 0, false};
    }

    DramSystem sys;
};

} // namespace

TEST_F(DramSystemTest, ReadTransactionReturnsDataWindow)
{
    const auto &tp = sys.timing();
    sys.issue(mk(CmdType::Act, 0, 0, 9), 0);
    const IssueResult r = sys.issue(mk(CmdType::RdA, 0, 0, 9), tp.rcd);
    EXPECT_EQ(r.dataStart, tp.rcd + tp.cas);
    EXPECT_EQ(r.dataEnd, tp.rcd + tp.cas + tp.burst);
}

TEST_F(DramSystemTest, WriteTransactionDataWindow)
{
    const auto &tp = sys.timing();
    sys.issue(mk(CmdType::Act, 0, 0, 9), 0);
    const IssueResult r = sys.issue(mk(CmdType::WrA, 0, 0, 9), tp.rcd);
    EXPECT_EQ(r.dataStart, tp.rcd + tp.cwd);
    EXPECT_EQ(r.dataEnd, tp.rcd + tp.cwd + tp.burst);
}

TEST_F(DramSystemTest, CanIssueReportsBlockingRule)
{
    std::string why;
    EXPECT_FALSE(sys.canIssue(mk(CmdType::Rd, 0, 0, 9), 0, &why));
    EXPECT_EQ(why, "row not open");

    sys.issue(mk(CmdType::Act, 0, 0, 9), 0);
    EXPECT_FALSE(sys.canIssue(mk(CmdType::Act, 0, 1, 9), 2, &why));
    EXPECT_EQ(why, "rank tRRD/tFAW");
}

TEST_F(DramSystemTest, IllegalIssuePanics)
{
    EXPECT_THROW(sys.issue(mk(CmdType::Rd, 0, 0, 9), 0),
                 std::logic_error);
}

TEST_F(DramSystemTest, CommandBusSharedAcrossRanks)
{
    sys.issue(mk(CmdType::Act, 0, 0, 9), 0);
    std::string why;
    EXPECT_FALSE(sys.canIssue(mk(CmdType::Act, 5, 0, 9), 0, &why));
    EXPECT_EQ(why, "command bus busy");
    EXPECT_TRUE(sys.canIssue(mk(CmdType::Act, 5, 0, 9), 1, &why));
}

TEST_F(DramSystemTest, EnergyCountersTrackCommands)
{
    const auto &tp = sys.timing();
    sys.issue(mk(CmdType::Act, 2, 3, 9), 0);
    sys.issue(mk(CmdType::RdA, 2, 3, 9), tp.rcd);
    EXPECT_EQ(sys.rank(2).energy().activates, 1u);
    EXPECT_EQ(sys.rank(2).energy().reads, 1u);
    EXPECT_EQ(sys.rank(2).energy().writes, 0u);
}

TEST_F(DramSystemTest, SuppressedCommandsNotCharged)
{
    const auto &tp = sys.timing();
    Command a = mk(CmdType::Act, 1, 0, 9);
    a.suppressed = true;
    sys.issue(a, 0);
    Command r = mk(CmdType::RdA, 1, 0, 9);
    r.suppressed = true;
    sys.issue(r, tp.rcd);
    EXPECT_EQ(sys.rank(1).energy().activates, 0u);
    EXPECT_EQ(sys.rank(1).energy().reads, 0u);
    EXPECT_EQ(sys.rank(1).energy().suppressedActs, 1u);
    EXPECT_EQ(sys.rank(1).energy().suppressedCas, 1u);
}

TEST_F(DramSystemTest, CheckerSeesEveryCommand)
{
    const auto &tp = sys.timing();
    sys.issue(mk(CmdType::Act, 0, 0, 9), 0);
    sys.issue(mk(CmdType::RdA, 0, 0, 9), tp.rcd);
    EXPECT_EQ(sys.checker().observed(), 2u);
    EXPECT_EQ(sys.commandsIssued(), 2u);
}

TEST_F(DramSystemTest, RefreshBlocksRank)
{
    const auto &tp = sys.timing();
    sys.issue(mk(CmdType::Ref, 4, 0), 0);
    std::string why;
    EXPECT_FALSE(sys.canIssue(mk(CmdType::Act, 4, 0, 1), tp.rfc - 1,
                              &why));
    EXPECT_EQ(why, "rank refreshing");
    EXPECT_TRUE(sys.canIssue(mk(CmdType::Act, 4, 0, 1), tp.rfc, &why));
}

TEST_F(DramSystemTest, PowerDownRoundTrip)
{
    const auto &tp = sys.timing();
    sys.issue(mk(CmdType::PdEnter, 3, 0), 0);
    EXPECT_TRUE(sys.rank(3).isPoweredDown());
    std::string why;
    EXPECT_FALSE(sys.canIssue(mk(CmdType::Act, 3, 0, 1), 2, &why));
    sys.issue(mk(CmdType::PdExit, 3, 0), tp.cke);
    EXPECT_FALSE(sys.rank(3).isPoweredDown());
    EXPECT_FALSE(sys.canIssue(mk(CmdType::Act, 3, 0, 1),
                              tp.cke + tp.xp - 1, &why));
    EXPECT_TRUE(
        sys.canIssue(mk(CmdType::Act, 3, 0, 1), tp.cke + tp.xp, &why));
}

TEST_F(DramSystemTest, TickAccumulatesEnergyResidency)
{
    for (Cycle t = 0; t < 100; ++t)
        sys.tick(t);
    EXPECT_EQ(sys.rank(0).energy().cyclesPrecharge, 100u);
}

TEST_F(DramSystemTest, DataBusUtilisationCounted)
{
    const auto &tp = sys.timing();
    sys.issue(mk(CmdType::Act, 0, 0, 9), 0);
    sys.issue(mk(CmdType::RdA, 0, 0, 9), tp.rcd);
    EXPECT_EQ(sys.buses().dataBusyCycles(), tp.burst);
}

// Crash handlers are a process-wide registry, so one panic dumps the
// command log of EVERY live DramSystem. Two systems sharing a crash
// dir and fingerprint tag (e.g. a retried run in a parallel campaign)
// must still land in distinct files — the process-wide dump counter
// suffixes each path.
TEST(DramSystemCrashDump, ConcurrentDumpsGetDistinctPaths)
{
    std::string tmpl = ::testing::TempDir() + "memsec-crash-XXXXXX";
    std::vector<char> buf(tmpl.begin(), tmpl.end());
    buf.push_back('\0');
    ASSERT_NE(mkdtemp(buf.data()), nullptr);
    const std::string dir(buf.data());

    DramSystem a(TimingParams::ddr3_1600_4gb(), Geometry{});
    DramSystem b(TimingParams::ddr3_1600_4gb(), Geometry{});
    a.setCrashDumpDir(dir, "sametag");
    b.setCrashDumpDir(dir, "sametag");
    a.issue(Command{CmdType::Act, 0, 0, 9, 0, false}, 0);
    // Illegal issue: panics, and the panic path runs both systems'
    // dump handlers against the same dir/tag.
    EXPECT_THROW(a.issue(Command{CmdType::Rd, 0, 1, 9, 0, false}, 0),
                 std::logic_error);

    std::vector<std::string> dumps;
    for (const auto &ent : std::filesystem::directory_iterator(dir)) {
        const std::string name = ent.path().filename().string();
        if (name.rfind("cmdlog-sametag-", 0) == 0)
            dumps.push_back(name);
    }
    ASSERT_EQ(dumps.size(), 2u)
        << "expected one uniquely named dump per live DramSystem";
    EXPECT_NE(dumps[0], dumps[1]);
}
