/**
 * @file
 * ThreadPool unit tests: every submitted job runs exactly once,
 * wait() is a real barrier, the pool survives reuse after a wait,
 * and destruction drains the queue.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <set>
#include <thread>
#include <vector>

#include "util/thread_pool.hh"

using namespace memsec;

TEST(ThreadPool, RunsEveryJobExactlyOnce)
{
    ThreadPool pool(4);
    constexpr int kJobs = 200;
    std::vector<std::atomic<int>> hits(kJobs);
    for (auto &h : hits)
        h = 0;
    for (int i = 0; i < kJobs; ++i)
        pool.submit([&hits, i] { ++hits[i]; });
    pool.wait();
    for (int i = 0; i < kJobs; ++i)
        EXPECT_EQ(hits[i].load(), 1) << "job " << i;
    EXPECT_EQ(pool.submitted(), static_cast<uint64_t>(kJobs));
}

TEST(ThreadPool, WaitIsABarrier)
{
    ThreadPool pool(3);
    std::atomic<int> done{0};
    for (int i = 0; i < 24; ++i) {
        pool.submit([&done] {
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
            ++done;
        });
    }
    pool.wait();
    EXPECT_EQ(done.load(), 24);
}

TEST(ThreadPool, ReusableAfterWait)
{
    ThreadPool pool(2);
    std::atomic<int> count{0};
    pool.submit([&count] { ++count; });
    pool.wait();
    EXPECT_EQ(count.load(), 1);
    // A drained pool accepts and runs further batches.
    for (int i = 0; i < 10; ++i)
        pool.submit([&count] { ++count; });
    pool.wait();
    EXPECT_EQ(count.load(), 11);
}

TEST(ThreadPool, WaitWithNoJobsReturnsImmediately)
{
    ThreadPool pool(2);
    pool.wait(); // must not hang
    EXPECT_EQ(pool.submitted(), 0u);
}

TEST(ThreadPool, ZeroWorkersClampsToOne)
{
    ThreadPool pool(0);
    EXPECT_EQ(pool.workers(), 1u);
    std::atomic<int> count{0};
    pool.submit([&count] { ++count; });
    pool.wait();
    EXPECT_EQ(count.load(), 1);
}

TEST(ThreadPool, DestructorDrainsPendingJobs)
{
    std::atomic<int> count{0};
    {
        ThreadPool pool(2);
        for (int i = 0; i < 50; ++i)
            pool.submit([&count] { ++count; });
        // no wait(): the destructor must finish the queue itself
    }
    EXPECT_EQ(count.load(), 50);
}

TEST(ThreadPool, JobsActuallyRunOffThePoolThreads)
{
    ThreadPool pool(2);
    std::set<std::thread::id> ids;
    std::mutex m;
    for (int i = 0; i < 16; ++i) {
        pool.submit([&] {
            std::lock_guard<std::mutex> lock(m);
            ids.insert(std::this_thread::get_id());
        });
    }
    pool.wait();
    EXPECT_GE(ids.size(), 1u);
    EXPECT_EQ(ids.count(std::this_thread::get_id()), 0u)
        << "submitting thread must never execute jobs";
}

TEST(ThreadPool, DefaultWorkersIsAtLeastOne)
{
    EXPECT_GE(ThreadPool::defaultWorkers(), 1u);
}
