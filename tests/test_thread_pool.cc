/**
 * @file
 * ThreadPool unit tests: every submitted job runs exactly once,
 * wait() is a real barrier, the pool survives reuse after a wait,
 * and destruction drains the queue.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "util/thread_pool.hh"

using namespace memsec;

TEST(ThreadPool, RunsEveryJobExactlyOnce)
{
    ThreadPool pool(4);
    constexpr int kJobs = 200;
    std::vector<std::atomic<int>> hits(kJobs);
    for (auto &h : hits)
        h = 0;
    for (int i = 0; i < kJobs; ++i)
        pool.submit([&hits, i] { ++hits[i]; });
    pool.wait();
    for (int i = 0; i < kJobs; ++i)
        EXPECT_EQ(hits[i].load(), 1) << "job " << i;
    EXPECT_EQ(pool.submitted(), static_cast<uint64_t>(kJobs));
}

TEST(ThreadPool, WaitIsABarrier)
{
    ThreadPool pool(3);
    std::atomic<int> done{0};
    for (int i = 0; i < 24; ++i) {
        pool.submit([&done] {
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
            ++done;
        });
    }
    pool.wait();
    EXPECT_EQ(done.load(), 24);
}

TEST(ThreadPool, ReusableAfterWait)
{
    ThreadPool pool(2);
    std::atomic<int> count{0};
    pool.submit([&count] { ++count; });
    pool.wait();
    EXPECT_EQ(count.load(), 1);
    // A drained pool accepts and runs further batches.
    for (int i = 0; i < 10; ++i)
        pool.submit([&count] { ++count; });
    pool.wait();
    EXPECT_EQ(count.load(), 11);
}

TEST(ThreadPool, WaitWithNoJobsReturnsImmediately)
{
    ThreadPool pool(2);
    pool.wait(); // must not hang
    EXPECT_EQ(pool.submitted(), 0u);
}

TEST(ThreadPool, ZeroWorkersClampsToOne)
{
    ThreadPool pool(0);
    EXPECT_EQ(pool.workers(), 1u);
    std::atomic<int> count{0};
    pool.submit([&count] { ++count; });
    pool.wait();
    EXPECT_EQ(count.load(), 1);
}

TEST(ThreadPool, DestructorDrainsPendingJobs)
{
    std::atomic<int> count{0};
    {
        ThreadPool pool(2);
        for (int i = 0; i < 50; ++i)
            pool.submit([&count] { ++count; });
        // no wait(): the destructor must finish the queue itself
    }
    EXPECT_EQ(count.load(), 50);
}

TEST(ThreadPool, JobsActuallyRunOffThePoolThreads)
{
    ThreadPool pool(2);
    std::set<std::thread::id> ids;
    std::mutex m;
    for (int i = 0; i < 16; ++i) {
        pool.submit([&] {
            std::lock_guard<std::mutex> lock(m);
            ids.insert(std::this_thread::get_id());
        });
    }
    pool.wait();
    EXPECT_GE(ids.size(), 1u);
    EXPECT_EQ(ids.count(std::this_thread::get_id()), 0u)
        << "submitting thread must never execute jobs";
}

TEST(ThreadPool, DefaultWorkersIsAtLeastOne)
{
    EXPECT_GE(ThreadPool::defaultWorkers(), 1u);
}

// -- exception propagation -----------------------------------------
//
// Regression: a throwing job used to unwind through workerLoop() and
// std::terminate the whole process (a worker thread has no handler).
// The worker now captures the exception and wait() rethrows it on
// the submitting thread.

TEST(ThreadPool, ThrowingJobSurfacesAtWait)
{
    ThreadPool pool(2);
    pool.submit([] { throw std::runtime_error("job failed"); });
    EXPECT_THROW(pool.wait(), std::runtime_error);
}

TEST(ThreadPool, SiblingJobsStillRunWhenOneThrows)
{
    ThreadPool pool(2);
    std::atomic<int> done{0};
    for (int i = 0; i < 20; ++i) {
        pool.submit([&done, i] {
            if (i == 7)
                throw std::runtime_error("one bad job");
            ++done;
        });
    }
    EXPECT_THROW(pool.wait(), std::runtime_error);
    EXPECT_EQ(done.load(), 19) << "siblings must run to completion";
}

TEST(ThreadPool, FirstOfSeveralExceptionsWins)
{
    // Deterministic single-worker pool: jobs run in FIFO order, so
    // the first throw is well defined and later ones are dropped.
    ThreadPool pool(1);
    pool.submit([] { throw std::runtime_error("first"); });
    pool.submit([] { throw std::logic_error("second"); });
    try {
        pool.wait();
        FAIL() << "wait() must rethrow";
    } catch (const std::runtime_error &e) {
        EXPECT_STREQ(e.what(), "first");
    }
}

TEST(ThreadPool, PoolIsReusableAfterARethrow)
{
    ThreadPool pool(2);
    pool.submit([] { throw std::runtime_error("boom"); });
    EXPECT_THROW(pool.wait(), std::runtime_error);
    // The error is cleared: the next batch runs and waits cleanly.
    std::atomic<int> count{0};
    for (int i = 0; i < 8; ++i)
        pool.submit([&count] { ++count; });
    pool.wait(); // must not throw
    EXPECT_EQ(count.load(), 8);
}

TEST(ThreadPool, DestructorSwallowsAPendingException)
{
    // No wait() after a throwing job: the destructor must drain and
    // join without rethrowing (a throwing destructor would terminate).
    ThreadPool pool(2);
    pool.submit([] { throw std::runtime_error("unobserved"); });
}
