#include <gtest/gtest.h>

#include <memory>

#include "cpu/core_model.hh"
#include "cpu/workload.hh"
#include "sched/frfcfs.hh"
#include "sim/simulator.hh"

using namespace memsec;
using namespace memsec::cpu;

namespace {

struct Rig
{
    explicit Rig(const WorkloadProfile &prof,
                 CoreModel::Params cp = CoreModel::Params{})
        : map(dram::Geometry{}, mem::Partition::None,
              mem::Interleave::ClosePage, 1)
    {
        mem::MemoryController::Params p;
        p.numDomains = 1;
        p.queueCapacity = 16;
        mc = std::make_unique<mem::MemoryController>("mc", p, map);
        mc->setScheduler(std::make_unique<sched::FrFcfsScheduler>(
            *mc, cp.prefetchEnabled));
        core = std::make_unique<CoreModel>("c0", 0, cp, prof, 42, *mc);
        sim.add(core.get());
        sim.add(mc.get());
    }

    mem::AddressMap map;
    std::unique_ptr<mem::MemoryController> mc;
    std::unique_ptr<CoreModel> core;
    Simulator sim;
};

WorkloadProfile
computeBound()
{
    WorkloadProfile p;
    p.name = "compute";
    p.memRatio = 0.001; // one mem op per ~1000 instructions
    p.storeFraction = 0.0;
    p.footprintLines = 64;
    p.reuseFraction = 0.99;
    p.streamFraction = 0.0;
    return p;
}

WorkloadProfile
memoryBound()
{
    WorkloadProfile p;
    p.name = "membound";
    p.memRatio = 1.0; // every instruction is a memory op
    p.storeFraction = 0.0;
    p.footprintLines = 1 << 22; // never fits
    p.reuseFraction = 0.0;
    p.streamFraction = 0.0;
    p.mshrs = 1; // fully serialised misses
    return p;
}

} // namespace

TEST(CoreModel, ComputeBoundReachesRetireWidth)
{
    Rig rig(computeBound());
    rig.sim.run(20000);
    // 4-wide retirement with (almost) no memory stalls.
    EXPECT_GT(rig.core->ipc(), 3.5);
}

TEST(CoreModel, SerialisedMissesBoundedByLatency)
{
    Rig rig(memoryBound());
    rig.sim.run(20000);
    // One outstanding miss at a time, ~30+ memory cycles each
    // (~120+ CPU cycles): IPC far below 0.1.
    EXPECT_LT(rig.core->ipc(), 0.1);
    EXPECT_GT(rig.core->retired(), 0u);
}

TEST(CoreModel, MlpScalesThroughput)
{
    WorkloadProfile narrow = memoryBound();
    WorkloadProfile wide = memoryBound();
    wide.mshrs = 16;
    Rig a(narrow);
    Rig b(wide);
    a.sim.run(20000);
    b.sim.run(20000);
    EXPECT_GT(b.core->ipc(), a.core->ipc() * 2.0);
}

TEST(CoreModel, WritebacksFlowToController)
{
    WorkloadProfile p = memoryBound();
    p.storeFraction = 0.5;
    p.mshrs = 8;
    p.footprintLines = 1 << 16;
    Rig rig(p);
    rig.sim.run(50000);
    EXPECT_GT(rig.mc->stats().writes.value(), 0u);
}

TEST(CoreModel, FunctionalWarmupFillsLlc)
{
    WorkloadProfile p = computeBound();
    p.footprintLines = 1024;
    p.reuseFraction = 0.0;
    p.memRatio = 0.5;
    CoreModel::Params cp;
    cp.functionalWarmupRecords = 10000;
    Rig rig(p, cp);
    const uint64_t warmMisses = rig.core->llc().misses().value();
    EXPECT_GE(warmMisses, 1024u); // cold fill happened pre-timing
    rig.sim.run(5000);
    // Steady state: footprint resident, nearly everything hits.
    EXPECT_LT(rig.core->llc().misses().value() - warmMisses, 100u);
}

TEST(CoreModel, ProgressCheckpointsMonotone)
{
    WorkloadProfile p = computeBound();
    CoreModel::Params cp;
    cp.progressInterval = 1000;
    Rig rig(p, cp);
    rig.sim.run(5000);
    const auto &prog = rig.core->timeline().progress;
    ASSERT_GT(prog.size(), 3u);
    for (size_t i = 1; i < prog.size(); ++i)
        EXPECT_GT(prog[i], prog[i - 1]);
}

TEST(CoreModel, TimelineCapturesServiceEvents)
{
    WorkloadProfile p = memoryBound();
    p.mshrs = 4;
    CoreModel::Params cp;
    cp.captureTimeline = true;
    Rig rig(p, cp);
    rig.sim.run(10000);
    const auto &svc = rig.core->timeline().service;
    ASSERT_GT(svc.size(), 10u);
    for (const auto &e : svc)
        EXPECT_GE(e.completed, e.arrival);
}

TEST(CoreModel, BeginMeasurementResetsIpcWindow)
{
    Rig rig(computeBound());
    rig.sim.run(1000);
    rig.core->beginMeasurement();
    const double ipcAtStart = rig.core->ipc();
    EXPECT_DOUBLE_EQ(ipcAtStart, 0.0);
    rig.sim.run(1000);
    EXPECT_GT(rig.core->ipc(), 3.0);
}

TEST(CoreModel, StatsRegistered)
{
    Rig rig(computeBound());
    rig.sim.run(2000);
    StatGroup g;
    rig.core->registerStats(g);
    EXPECT_GT(g.lookup("loads"), 0.0);
    EXPECT_GE(g.lookup("ipc"), 0.0);
}

TEST(CoreModel, PrefetcherReducesDemandLatencyOnStreams)
{
    // A compute-bound sequential stream: inter-miss distance exceeds
    // the memory latency, so a timely prefetcher converts nearly
    // every miss into a hit while an unassisted core stalls its
    // (small) ROB on every one.
    WorkloadProfile p;
    p.name = "stream";
    p.memRatio = 0.005;
    p.storeFraction = 0.0;
    p.footprintLines = 1 << 20;
    p.streamFraction = 1.0;
    p.numStreams = 1;
    p.strideLines = 1;
    p.reuseFraction = 0.0;
    p.mshrs = 8;

    CoreModel::Params off;
    CoreModel::Params on;
    on.prefetchEnabled = true;
    Rig a(p, off);
    Rig b(p, on);
    a.sim.run(50000);
    b.sim.run(50000);
    EXPECT_GT(b.core->prefetchIssued(), 0u);
    EXPECT_GT(b.core->prefetchUseful(), 0u);
    EXPECT_GT(b.core->ipc(), a.core->ipc());
}
