/**
 * @file
 * Cross-cutting system properties checked over full-system runs:
 * accounting consistency, determinism, and the relationships the
 * paper's analysis predicts between schemes.
 */

#include <gtest/gtest.h>

#include "harness/experiment.hh"

using namespace memsec;
using namespace memsec::harness;

namespace {

Config
cfg(const std::string &scheme, const std::string &workload,
    unsigned cores = 8)
{
    Config c = defaultConfig();
    c.merge(schemeConfig(scheme));
    c.set("workload", workload);
    c.set("cores", cores);
    c.set("sim.warmup", 2000);
    c.set("sim.measure", 40000);
    return c;
}

double
sumIpc(const ExperimentResult &r)
{
    double s = 0;
    for (double v : r.ipc)
        s += v;
    return s;
}

} // namespace

TEST(Properties, FsBandwidthSharedEquallyWhenSaturated)
{
    // Rate mode with the stationary saturating profile: per-core IPC
    // must be (nearly) identical — FS gives every domain exactly one
    // slot per frame. (The SPEC-like profiles are phased, so their
    // cores sit in different phases over a short window.)
    const auto r = runExperiment(cfg("fs_rp", "hog"));
    double lo = 1e9;
    double hi = 0.0;
    for (double v : r.ipc) {
        lo = std::min(lo, v);
        hi = std::max(hi, v);
    }
    // Allow some spread: each copy runs a different trace phase, so
    // LLC behaviour (and hence demand) differs slightly.
    EXPECT_LT((hi - lo) / hi, 0.15);
}

TEST(Properties, RankPartitioningBeatsBankBeatsNone)
{
    // Figure 3's ordering of the FS design points.
    const double rp = sumIpc(runExperiment(cfg("fs_rp", "milc")));
    const double rbp =
        sumIpc(runExperiment(cfg("fs_reordered_bp", "milc")));
    const double bp = sumIpc(runExperiment(cfg("fs_bp", "milc")));
    const double np = sumIpc(runExperiment(cfg("fs_np", "milc")));
    const double triple =
        sumIpc(runExperiment(cfg("fs_np_triple", "milc")));
    EXPECT_GT(rp, rbp);
    EXPECT_GT(rbp, bp);
    EXPECT_GT(bp, np);
    EXPECT_GT(triple, np);
}

TEST(Properties, TripleAlternationRoughlyTriplesNoPartitioning)
{
    const double np =
        sumIpc(runExperiment(cfg("fs_np", "libquantum")));
    const double triple =
        sumIpc(runExperiment(cfg("fs_np_triple", "libquantum")));
    EXPECT_GT(triple, 1.8 * np);
}

TEST(Properties, LightWorkloadsLoseLessUnderFs)
{
    // xalancbmk barely uses memory: FS costs it far less than the
    // memory-bound lbm (the per-workload spread in Figure 6).
    const double baseX =
        sumIpc(runExperiment(cfg("baseline", "xalancbmk")));
    const double fsX =
        sumIpc(runExperiment(cfg("fs_rp", "xalancbmk")));
    const double baseL = sumIpc(runExperiment(cfg("baseline", "lbm")));
    const double fsL = sumIpc(runExperiment(cfg("fs_rp", "lbm")));
    EXPECT_GT(fsX / baseX, fsL / baseL);
}

TEST(Properties, DummyFractionTracksIntensity)
{
    const auto light = runExperiment(cfg("fs_rp", "xalancbmk"));
    const auto heavy = runExperiment(cfg("fs_rp", "libquantum"));
    EXPECT_GT(light.dummyFraction, heavy.dummyFraction + 0.1);
    EXPECT_LT(heavy.dummyFraction, 0.2);
}

TEST(Properties, FsLatencyLowerThanTp)
{
    // Paper Section 7: best TP_BP mean latency ~683 cycles vs FS ~288.
    const auto fs = runExperiment(cfg("fs_rp", "mcf"));
    const auto tp = runExperiment(cfg("tp_bp", "mcf"));
    EXPECT_LT(fs.meanReadLatency, tp.meanReadLatency);
}

TEST(Properties, SeedChangesWorkloadButNotStructure)
{
    Config a = cfg("fs_rp", "milc");
    Config b = cfg("fs_rp", "milc");
    b.set("seed", 1234);
    const auto ra = runExperiment(a);
    const auto rb = runExperiment(b);
    // Different seeds shift IPC slightly but not wildly.
    EXPECT_NEAR(sumIpc(ra), sumIpc(rb), 0.25 * sumIpc(ra));
}

TEST(Properties, EnergyBaselineCheapestFsBeatsTp)
{
    // Figure 8's ordering on a memory-intensive workload, normalised
    // per serviced request is implied; totals over equal wall-clock:
    // baseline < FS (more dummies) and FS < TP is on *energy* only
    // after normalising by work. Here we check the paper's coarser
    // claim: FS_RP energy is within ~2x of baseline while TP_BP
    // serves far fewer requests for similar background energy.
    const auto base = runExperiment(cfg("baseline", "milc"));
    const auto fs = runExperiment(cfg("fs_rp", "milc"));
    const auto tp = runExperiment(cfg("tp_bp", "milc"));
    const double basePerReq =
        base.energy.totalNj() / static_cast<double>(base.demandReads);
    const double fsPerReq =
        fs.energy.totalNj() / static_cast<double>(fs.demandReads);
    const double tpPerReq =
        tp.energy.totalNj() / static_cast<double>(tp.demandReads);
    EXPECT_LT(basePerReq, fsPerReq);
    EXPECT_LT(fsPerReq, tpPerReq);
}

TEST(Properties, AccountingConsistency)
{
    const auto r = runExperiment(cfg("fs_rp", "mix2"));
    // Bandwidth fractions and dummy fraction are probabilities.
    EXPECT_GE(r.dummyFraction, 0.0);
    EXPECT_LE(r.dummyFraction, 1.0);
    EXPECT_GE(r.effectiveBandwidth, 0.0);
    // Demand reads were actually served.
    EXPECT_GT(r.demandReads, 0u);
}

TEST(Properties, MorePagePolicySensitivityAtLowCoreCounts)
{
    // Section 1 claims page mapping policies matter for FS. At 2
    // cores (Q = 14 < 43) open-page row-major mapping concentrates a
    // thread's consecutive requests in one bank and forces deferrals;
    // close-page striping avoids them.
    Config open = cfg("fs_rp", "libquantum", 2);
    open.set("map.interleave", "open");
    Config close = cfg("fs_rp", "libquantum", 2);
    close.set("map.interleave", "close");
    const double openIpc = sumIpc(runExperiment(open));
    const double closeIpc = sumIpc(runExperiment(close));
    EXPECT_GT(closeIpc, openIpc);
}
