/**
 * @file
 * Seeded fuzz test for the codec round-trip: encode a random secret
 * under random code parameters, push the symbol stream through a
 * synthetic noisy channel, decode with both the hard-decision codec
 * decoder and the scalar matched filter, and assert the decoded BER
 * never exceeds what the channel's noise level admits.
 *
 * The bound is the analytic repetition-coded matched-filter BER,
 * Q(snr * sqrt(R_eff)) with R_eff the number of windows soft-combined
 * per bit, plus a 4-sigma binomial allowance — i.e. "the decoder is
 * within noise of the optimum", not a loose smoke ceiling. Every
 * draw is from one seeded Rng, so a failure reproduces exactly.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "leakage/codec.hh"
#include "util/random.hh"

using namespace memsec;
using namespace memsec::leakage;

namespace {

double
gauss(Rng &rng)
{
    const double u1 = 1.0 - rng.uniform();
    const double u2 = rng.uniform();
    return std::sqrt(-2.0 * std::log(u1)) *
           std::cos(2.0 * 3.14159265358979323846 * u2);
}

double
qfunc(double x)
{
    return 0.5 * std::erfc(x / std::sqrt(2.0));
}

} // namespace

TEST(CodecFuzz, RoundTripBerStaysUnderTheAnalyticBound)
{
    Rng rng(0xF422E11);
    size_t totalBits = 0;
    for (int iter = 0; iter < 200; ++iter) {
        CodeParams p;
        p.scheme = (rng.next() & 1) ? CodeParams::Scheme::Manchester
                                    : CodeParams::Scheme::OnOff;
        const size_t preambles[] = {0, 4, 8, 16};
        p.preambleSymbols = preambles[rng.below(4)];
        p.repeat = 1 + static_cast<unsigned>(rng.below(4));
        const size_t nbits = 8 + rng.below(57); // 8..64
        const size_t frames = 1 + rng.below(3);
        const double snr = 1.0 + rng.uniform() * 3.0; // 1..4

        std::vector<uint8_t> secret;
        for (size_t i = 0; i < nbits; ++i)
            secret.push_back(static_cast<uint8_t>(rng.next() & 1u));
        const SymbolFrame f = encodeFrame(secret, p);

        // Noisy antipodal observations over `frames` full frames.
        std::vector<double> obs;
        std::vector<uint8_t> hard;
        for (size_t w = 0; w < frames * f.length(); ++w) {
            const double x =
                (f.symbolAt(w) ? snr : -snr) + gauss(rng);
            obs.push_back(x);
            hard.push_back(x > 0.0 ? 1 : 0);
        }

        // Every window carrying a bit is soft-combined: Manchester
        // halves, the repeat group, and the cyclic frame repetition.
        const unsigned halves =
            p.scheme == CodeParams::Scheme::Manchester ? 2u : 1u;
        const double combined = static_cast<double>(
            p.repeat * halves * frames);
        const double softBer = qfunc(snr * std::sqrt(combined));
        // Hard majority voting is weaker than soft combining; bound
        // it by the majority-vote error of independent Q(snr) flips
        // (ties decode to 0, so count >= half as potentially wrong).
        const double perWindow = qfunc(snr);
        const size_t votes = static_cast<size_t>(combined);
        double hardBer = 0.0;
        for (size_t k = (votes + 1) / 2; k <= votes; ++k) {
            // C(votes, k) p^k (1-p)^(votes-k)
            double term = 1.0;
            for (size_t j = 0; j < k; ++j)
                term *= perWindow * static_cast<double>(votes - j) /
                        static_cast<double>(j + 1);
            for (size_t j = 0; j < votes - k; ++j)
                term *= 1.0 - perWindow;
            hardBer += term;
        }

        const CodecDecodeResult out = decodeHard(hard, f);
        size_t errors = 0;
        for (size_t b = 0; b < nbits; ++b) {
            ASSERT_EQ(out.observed[b], 1u);
            errors += out.bits[b] != secret[b];
        }
        totalBits += nbits;
        const double ber = static_cast<double>(errors) /
                           static_cast<double>(nbits);
        const double tol =
            4.0 * std::sqrt(hardBer * (1.0 - hardBer) /
                                static_cast<double>(nbits) +
                            1e-6);
        EXPECT_LE(ber, hardBer + tol)
            << "iter " << iter << " scheme "
            << schemeName(p.scheme) << " preamble "
            << p.preambleSymbols << " repeat " << p.repeat
            << " frames " << frames << " snr " << snr
            << " (analytic " << hardBer << ", soft " << softBer
            << ")";
    }
    // The fuzz loop must have actually exercised the decoder.
    EXPECT_GT(totalBits, 4000u);
}

TEST(CodecFuzz, NoiselessRoundTripIsExactForAllParameters)
{
    Rng rng(0xF422E12);
    for (int iter = 0; iter < 200; ++iter) {
        CodeParams p;
        p.scheme = (rng.next() & 1) ? CodeParams::Scheme::Manchester
                                    : CodeParams::Scheme::OnOff;
        p.preambleSymbols = rng.below(20);
        p.repeat = 1 + static_cast<unsigned>(rng.below(5));
        const size_t nbits = 1 + rng.below(64);
        std::vector<uint8_t> secret;
        for (size_t i = 0; i < nbits; ++i)
            secret.push_back(static_cast<uint8_t>(rng.next() & 1u));
        const SymbolFrame f = encodeFrame(secret, p);

        // Arbitrary starting phase, whole number of frames: the
        // cyclic role map must still land every window on its bit.
        const size_t firstWindow = rng.below(3 * f.length());
        std::vector<uint8_t> decisions;
        for (size_t i = 0; i < 2 * f.length(); ++i)
            decisions.push_back(f.symbolAt(firstWindow + i));
        const CodecDecodeResult out =
            decodeHard(decisions, f, firstWindow);
        for (size_t b = 0; b < nbits; ++b) {
            ASSERT_EQ(out.observed[b], 1u) << "iter " << iter;
            EXPECT_EQ(out.bits[b], secret[b]) << "iter " << iter;
        }
    }
}
