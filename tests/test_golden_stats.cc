/**
 * @file
 * Golden-stats regression tests: scaled-down versions of the fig03
 * and fig06 campaigns and the tab_solver analytics are digested and
 * compared byte-for-byte against committed files under
 * tests/golden/. A mismatch means a simulated observable moved —
 * deliberate changes regenerate the files with
 *
 *     MEMSEC_REGEN_GOLDEN=1 ./build/tests/test_golden_stats
 *
 * (or tools/regen_golden.sh, which wraps exactly that) and commit
 * the diff, which shows precisely which metric changed.
 *
 * Digest text is hexfloat throughout (via resultDigest), so equality
 * is bit-equality of every double; the repo's determinism guarantees
 * make that stable across runs, thread counts, and the idle-skip
 * fast path.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/pipeline_solver.hh"
#include "dram/timing.hh"
#include "harness/campaign.hh"
#include "harness/experiment.hh"
#include "leakage/channel.hh"

using namespace memsec;
using namespace memsec::harness;

namespace {

std::string
goldenPath(const std::string &name)
{
    return std::string(MEMSEC_SOURCE_DIR) + "/tests/golden/" + name;
}

bool
regenRequested()
{
    const char *env = std::getenv("MEMSEC_REGEN_GOLDEN");
    return env != nullptr && env[0] != '\0' &&
           std::string(env) != "0";
}

void
compareOrRegen(const std::string &name, const std::string &actual)
{
    const std::string path = goldenPath(name);
    if (regenRequested()) {
        std::ofstream out(path, std::ios::binary | std::ios::trunc);
        ASSERT_TRUE(out.good()) << "cannot write " << path;
        out << actual;
        SUCCEED() << "regenerated " << path;
        return;
    }
    std::ifstream in(path, std::ios::binary);
    ASSERT_TRUE(in.good())
        << path << " missing — regenerate with MEMSEC_REGEN_GOLDEN=1 "
        << "(see tools/regen_golden.sh)";
    std::string expected((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
    EXPECT_EQ(expected, actual)
        << "golden stats drifted for " << name
        << "; if the change is intended, run tools/regen_golden.sh "
        << "and commit the diff";
}

/** Scaled-down campaign over a figure's scheme list. */
std::string
campaignDigest(const std::vector<std::string> &schemes,
               const std::vector<std::string> &workloads)
{
    Campaign campaign;
    std::vector<std::string> labels;
    for (const auto &s : schemes) {
        for (const auto &w : workloads) {
            Config c = defaultConfig();
            c.merge(schemeConfig(s));
            c.set("workload", w);
            c.set("cores", 4);
            c.set("sim.warmup", 1500);
            c.set("sim.measure", 12000);
            labels.push_back(s + "/" + w);
            campaign.add(labels.back(), c);
        }
    }
    CampaignOptions opts;
    opts.jobs = 4; // the runner guarantees serial-identical results
    campaign.run(opts);

    std::ostringstream os;
    for (size_t i = 0; i < campaign.size(); ++i) {
        os << "== " << labels[i] << " ==\n"
           << resultDigest(campaign.result(i));
    }
    return os.str();
}

/** The tab_solver analytics for one DRAM part, hexfloat-exact. */
void
solverDigest(std::ostream &os, const char *label,
             const dram::TimingParams &tp)
{
    using core::PartitionLevel;
    using core::PeriodicRef;
    core::PipelineSolver solver(tp);
    os << "== " << label << " (" << tp.toString() << ") ==\n";
    os << std::hexfloat;
    for (PartitionLevel level :
         {PartitionLevel::Rank, PartitionLevel::Bank,
          PartitionLevel::None}) {
        for (PeriodicRef ref :
             {PeriodicRef::Data, PeriodicRef::Ras,
              PeriodicRef::Cas}) {
            const auto sol = solver.solve(ref, level);
            os << core::partitionLevelName(level) << "/"
               << core::periodicRefName(ref) << ":";
            if (!sol.feasible) {
                os << " infeasible\n";
                continue;
            }
            os << " l=" << sol.l << " Q8=" << sol.intervalQ(8)
               << " util=" << sol.peakUtilisation(tp.burst) << "\n";
        }
    }
    const auto re = solver.solveReordered(8);
    os << "reordered: spacing=" << re.spacing
       << " endGap=" << re.endGap << " Q=" << re.q
       << " util=" << re.peakUtilisation << "\n";
    os << "alternation=" << solver.alternationFactor() << "\n";
}

} // namespace

TEST(GoldenStats, Fig03DesignPointCampaign)
{
    compareOrRegen(
        "fig03.digest",
        campaignDigest({"channel_part", "fs_rp", "fs_reordered_bp",
                        "tp_bp", "fs_np", "fs_np_triple", "tp_np"},
                       {"mcf", "libquantum"}));
}

TEST(GoldenStats, Fig06PerformanceCampaign)
{
    compareOrRegen(
        "fig06.digest",
        campaignDigest({"fs_rp", "fs_reordered_bp", "tp_bp",
                        "fs_np_triple", "tp_np"},
                       {"milc", "astar"}));
}

TEST(GoldenStats, FigLeakageCampaign)
{
    // Scaled-down covert-channel sweep: one leaking and two closed
    // points. The digest pins both the run's simulated observables
    // (resultDigest, timeline included) and every metric of the
    // leakage analysis (leakageDigest, hexfloat throughout), so any
    // drift in the attack harness, the extractor, the MI estimator,
    // or the decoder shows up as a byte diff.
    Campaign campaign;
    const std::vector<std::string> schemes = {"baseline", "fs_rp",
                                              "tp_bp"};
    for (const auto &s : schemes) {
        Config c = defaultConfig();
        c.merge(schemeConfig(s));
        c.set("workload", "probe,modsender,modsender,modsender");
        c.set("cores", 4);
        c.set("sim.warmup", 0);
        c.set("sim.measure", 45000);
        c.set("audit.core", 0);
        c.set("leak.window", 1500);
        c.set("leak.secret_seed", 0xC0FFEE);
        c.set("leak.secret_bits", 16);
        c.set("leak.skip_windows", 2);
        // Pilot preamble turns on the trained attacker, so the
        // digest also pins every attacker.* metric (timing score,
        // chosen guard, pilot separation, ML BER, LLR MI, strength
        // inputs). 7 + 16 = 23 frame windows, prime as in
        // bench/fig_leakage.
        c.set("leak.code.preamble", 7);
        campaign.add(s, c);
    }
    CampaignOptions opts;
    opts.jobs = 3; // the runner guarantees serial-identical results
    campaign.run(opts);

    std::ostringstream os;
    for (size_t i = 0; i < schemes.size(); ++i) {
        const auto &res = campaign.result(i);
        const auto params = leakage::ChannelParams::fromConfig(
            campaign.outcome(i).config);
        os << "== " << schemes[i] << " ==\n"
           << leakage::leakageDigest(
                  leakage::analyzeLeakage(res.timelines.at(0), params))
           << resultDigest(res);
    }
    compareOrRegen("fig_leakage.digest", os.str());
}

TEST(GoldenStats, TabSolverAnalytics)
{
    std::ostringstream os;
    solverDigest(os, "DDR3-1600 4Gb",
                 dram::TimingParams::ddr3_1600_4gb());
    solverDigest(os, "DDR3-2133", dram::TimingParams::ddr3_2133());
    solverDigest(os, "DDR4-2400", dram::TimingParams::ddr4_2400());
    compareOrRegen("tab_solver.digest", os.str());
}
