#include <gtest/gtest.h>

#include "core/noninterference.hh"

using namespace memsec;
using namespace memsec::core;

namespace {

VictimTimeline
sampleTimeline()
{
    VictimTimeline t;
    t.recordService(10, 40);
    t.recordService(70, 96);
    t.progress = {100, 220, 350};
    return t;
}

} // namespace

TEST(Noninterference, IdenticalTimelinesPass)
{
    const auto a = sampleTimeline();
    const auto b = sampleTimeline();
    const AuditResult r = compareTimelines(a, b);
    EXPECT_TRUE(r.identical);
    EXPECT_TRUE(r.detail.empty());
}

TEST(Noninterference, ServiceDivergenceDetected)
{
    auto a = sampleTimeline();
    auto b = sampleTimeline();
    b.service[1].completed += 1;
    const AuditResult r = compareTimelines(a, b);
    EXPECT_FALSE(r.identical);
    EXPECT_NE(r.detail.find("service event 1"), std::string::npos);
}

TEST(Noninterference, ServiceCountMismatchDetected)
{
    auto a = sampleTimeline();
    auto b = sampleTimeline();
    b.recordService(120, 150);
    const AuditResult r = compareTimelines(a, b);
    EXPECT_FALSE(r.identical);
    EXPECT_NE(r.detail.find("counts differ"), std::string::npos);
}

TEST(Noninterference, ProgressDivergenceMeasured)
{
    auto a = sampleTimeline();
    auto b = sampleTimeline();
    b.progress[2] = 385; // slower at the third checkpoint
    const AuditResult r = compareTimelines(a, b);
    EXPECT_FALSE(r.identical);
    // Normalised by the larger checkpoint: |350-385|/385.
    EXPECT_NEAR(r.maxProgressSkewPct, 100.0 * 35.0 / 385.0, 0.01);
}

TEST(Noninterference, ProgressSkewIsCommutative)
{
    // Regression: the skew denominator used only a.progress[i], so
    // compareTimelines(a, b) and compareTimelines(b, a) reported
    // different percentages for the same divergence.
    auto a = sampleTimeline();
    auto b = sampleTimeline();
    b.progress[1] = 440; // exactly 2x a's checkpoint
    const AuditResult ab = compareTimelines(a, b);
    const AuditResult ba = compareTimelines(b, a);
    EXPECT_DOUBLE_EQ(ab.maxProgressSkewPct, ba.maxProgressSkewPct);
    // Normalised by the larger checkpoint: |220-440|/440 = 50%.
    EXPECT_NEAR(ab.maxProgressSkewPct, 50.0, 1e-9);
    EXPECT_EQ(ab.identical, ba.identical);
}

TEST(Noninterference, OrdinalsAssignedSequentially)
{
    VictimTimeline t;
    t.recordService(1, 2);
    t.recordService(3, 4);
    EXPECT_EQ(t.service[0].ordinal, 0u);
    EXPECT_EQ(t.service[1].ordinal, 1u);
}

TEST(Noninterference, EmptyTimelinesIdentical)
{
    const AuditResult r = compareTimelines({}, {});
    EXPECT_TRUE(r.identical);
}
