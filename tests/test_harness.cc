#include <gtest/gtest.h>

#include <fstream>

#include "harness/experiment.hh"
#include "util/logging.hh"

using namespace memsec;
using namespace memsec::harness;

namespace {

Config
tinyConfig(const std::string &scheme, const std::string &workload)
{
    Config c = defaultConfig();
    c.merge(schemeConfig(scheme));
    c.set("workload", workload);
    c.set("cores", 4);
    c.set("sim.warmup", 2000);
    c.set("sim.measure", 20000);
    return c;
}

} // namespace

TEST(Harness, DefaultConfigMatchesTable1)
{
    const Config c = defaultConfig();
    EXPECT_EQ(c.getUint("cores"), 8u);
    EXPECT_EQ(c.getUint("dram.ranks"), 8u);
    EXPECT_EQ(c.getUint("dram.banks"), 8u);
    EXPECT_EQ(c.getUint("core.rob"), 64u);
    EXPECT_EQ(c.getUint("core.retire_width"), 4u);
    EXPECT_EQ(c.getUint("core.cpu_mult"), 4u);
    EXPECT_EQ(c.getUint("core.llc_kb"), 512u); // 4 MB / 8 cores
}

TEST(Harness, AllSchemesHaveConfigs)
{
    for (const auto &s : allSchemes())
        EXPECT_NO_FATAL_FAILURE(schemeConfig(s)) << s;
    EXPECT_EXIT(schemeConfig("bogus"), ::testing::ExitedWithCode(1),
                "unknown scheme");
}

TEST(Harness, BaselineRunProducesSaneResults)
{
    const auto r = runExperiment(tinyConfig("baseline", "mcf"));
    EXPECT_EQ(r.cores, 4u);
    ASSERT_EQ(r.ipc.size(), 4u);
    for (double v : r.ipc) {
        EXPECT_GT(v, 0.0);
        EXPECT_LE(v, 4.0);
    }
    EXPECT_GT(r.meanReadLatency, 20.0);
    EXPECT_GT(r.effectiveBandwidth, 0.0);
    EXPECT_LE(r.effectiveBandwidth, 1.0);
    EXPECT_GT(r.energy.totalNj(), 0.0);
    EXPECT_GT(r.rowHitRate, 0.0);
}

TEST(Harness, FsRunRespectsTheoreticalPeak)
{
    const auto r = runExperiment(tinyConfig("fs_rp", "libquantum"));
    // 4 threads, l=7: peak = 4/(7*...)*... data bursts occupy at most
    // tBURST/l of the bus.
    EXPECT_LE(r.effectiveBandwidth, 4.0 / 7.0 + 0.01);
    EXPECT_EQ(r.scheme, "fs_rp");
}

TEST(Harness, WeightedIpcAgainstSelfIsCoreCount)
{
    const auto r = runExperiment(tinyConfig("baseline", "astar"));
    EXPECT_NEAR(r.weightedIpc(r.ipc), 4.0, 1e-9);
}

TEST(Harness, WeightedIpcSizeMismatchPanics)
{
    const auto r = runExperiment(tinyConfig("baseline", "astar"));
    EXPECT_THROW(r.weightedIpc({1.0}), std::logic_error);
}

TEST(Harness, BaselineIpcHelper)
{
    Config base = defaultConfig();
    base.set("cores", 2);
    base.set("sim.warmup", 1000);
    base.set("sim.measure", 10000);
    const auto ipc = baselineIpc("xalancbmk", base);
    ASSERT_EQ(ipc.size(), 2u);
    EXPECT_GT(ipc[0], 0.0);
}

TEST(Harness, DeterministicAcrossRuns)
{
    const auto a = runExperiment(tinyConfig("fs_rp", "milc"));
    const auto b = runExperiment(tinyConfig("fs_rp", "milc"));
    ASSERT_EQ(a.ipc.size(), b.ipc.size());
    for (size_t i = 0; i < a.ipc.size(); ++i)
        EXPECT_DOUBLE_EQ(a.ipc[i], b.ipc[i]);
    EXPECT_DOUBLE_EQ(a.energy.totalNj(), b.energy.totalNj());
    EXPECT_EQ(a.demandReads, b.demandReads);
}

TEST(Harness, DummyFractionOnlyForFs)
{
    const auto base = runExperiment(tinyConfig("baseline", "mcf"));
    EXPECT_DOUBLE_EQ(base.dummyFraction, 0.0);
    const auto fs = runExperiment(tinyConfig("fs_rp", "xalancbmk"));
    EXPECT_GT(fs.dummyFraction, 0.0);
}

TEST(Harness, AuditCoreCapturesTimeline)
{
    Config c = tinyConfig("fs_rp", "mcf");
    c.set("audit.core", 0);
    c.set("audit.progress_interval", 1000);
    const auto r = runExperiment(c);
    ASSERT_FALSE(r.timelines.empty());
    EXPECT_FALSE(r.timelines[0].service.empty());
    EXPECT_FALSE(r.timelines[0].progress.empty());
}

TEST(Harness, SchemeConfigsPairSchedulerAndPartition)
{
    EXPECT_EQ(schemeConfig("fs_rp").getString("map.partition"), "rank");
    EXPECT_EQ(schemeConfig("fs_bp").getString("map.partition"), "bank");
    EXPECT_EQ(schemeConfig("tp_np").getString("map.partition"), "none");
    EXPECT_EQ(schemeConfig("fs_np_triple").getString("fs.mode"),
              "triple");
    EXPECT_TRUE(schemeConfig("fs_rp_powerdown").getBool("fs.suppress"));
}

TEST(Harness, StatsDumpWritesFile)
{
    Config c = tinyConfig("fs_rp", "milc");
    const std::string path = ::testing::TempDir() + "memsec_stats.txt";
    c.set("stats.dump", path);
    runExperiment(c);
    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::string text((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    EXPECT_NE(text.find("mc0.demand_reads"), std::string::npos);
    EXPECT_NE(text.find("mc0.sched.dummy_ops"), std::string::npos);
    EXPECT_NE(text.find("core0.ipc"), std::string::npos);
}
