#include <gtest/gtest.h>

#include "dram/timing.hh"

using namespace memsec::dram;

TEST(Timing, Table1Values)
{
    // The paper's Table 1, verbatim.
    const TimingParams t = TimingParams::ddr3_1600_4gb();
    EXPECT_EQ(t.rc, 39u);
    EXPECT_EQ(t.rcd, 11u);
    EXPECT_EQ(t.ras, 28u);
    EXPECT_EQ(t.faw, 24u);
    EXPECT_EQ(t.wr, 12u);
    EXPECT_EQ(t.rp, 11u);
    EXPECT_EQ(t.rtrs, 2u);
    EXPECT_EQ(t.cas, 11u);
    EXPECT_EQ(t.rtp, 6u);
    EXPECT_EQ(t.burst, 4u);
    EXPECT_EQ(t.ccd, 4u);
    EXPECT_EQ(t.wtr, 6u);
    EXPECT_EQ(t.rrd, 5u);
    EXPECT_EQ(t.rfc, 208u);  // 260 ns at 1.25 ns/cycle
    EXPECT_EQ(t.refi, 6240u); // 7.8 us
}

TEST(Timing, DerivedTurnarounds)
{
    const TimingParams t = TimingParams::ddr3_1600_4gb();
    // Section 4.2: Rd2Wr = tCAS + tBURST - tCWD = 10.
    EXPECT_EQ(t.rd2wr(), 10u);
    // Wr2Rd = tCWD + tBURST + tWTR = 15.
    EXPECT_EQ(t.wr2rd(), 15u);
    EXPECT_EQ(t.actToActWrA(), 43u);
    EXPECT_EQ(t.actToActRdA(), 39u);
}

TEST(Timing, ValidatePassesForPresets)
{
    TimingParams::ddr3_1600_4gb().validate();
    TimingParams::ddr3_2133().validate();
    TimingParams::ddr4_2400().validate();
}

TEST(Timing, ValidateRejectsNonsense)
{
    TimingParams t = TimingParams::ddr3_1600_4gb();
    t.burst = 0;
    EXPECT_EXIT(t.validate(), ::testing::ExitedWithCode(1), "tBURST");

    TimingParams t2 = TimingParams::ddr3_1600_4gb();
    t2.ccd = 2; // below burst
    EXPECT_EXIT(t2.validate(), ::testing::ExitedWithCode(1), "tCCD");

    TimingParams t3 = TimingParams::ddr3_1600_4gb();
    t3.cas = 3; // below cwd
    EXPECT_EXIT(t3.validate(), ::testing::ExitedWithCode(1), "tCAS");
}

TEST(Timing, ToStringMentionsKeyParams)
{
    const std::string s = TimingParams::ddr3_1600_4gb().toString();
    EXPECT_NE(s.find("tRC=39"), std::string::npos);
    EXPECT_NE(s.find("tFAW=24"), std::string::npos);
}

TEST(Timing, GeometryDefaults)
{
    Geometry g;
    g.validate();
    EXPECT_EQ(g.ranksTotal(), 8u);
    EXPECT_EQ(g.banksTotal(), 64u);
    // 64 banks * 32768 rows * 128 lines = 256M lines = 16 GB.
    EXPECT_EQ(g.lineCapacity(), 64ull * 32768 * 128);
}

TEST(Timing, GeometryRejectsNonPowerOf2)
{
    Geometry g;
    g.banksPerRank = 6;
    EXPECT_EXIT(g.validate(), ::testing::ExitedWithCode(1), "power");
}

TEST(Timing, GeometryRejectsZeroFields)
{
    Geometry g;
    g.rowsPerBank = 0;
    EXPECT_EXIT(g.validate(), ::testing::ExitedWithCode(1), "nonzero");
}
