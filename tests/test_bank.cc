#include <gtest/gtest.h>

#include <stdexcept>

#include "dram/bank.hh"

using namespace memsec;
using namespace memsec::dram;

namespace {
const TimingParams tp = TimingParams::ddr3_1600_4gb();
}

TEST(Bank, StartsClosed)
{
    Bank b;
    EXPECT_FALSE(b.isOpen());
    EXPECT_EQ(b.openRow(), Bank::kNoRow);
    EXPECT_EQ(b.nextAct(), 0u);
}

TEST(Bank, ActivateOpensRowAndSetsWindows)
{
    Bank b;
    b.doActivate(100, 42, tp);
    EXPECT_TRUE(b.isOpen());
    EXPECT_EQ(b.openRow(), 42u);
    EXPECT_EQ(b.nextRead(), 100 + tp.rcd);
    EXPECT_EQ(b.nextWrite(), 100 + tp.rcd);
    EXPECT_EQ(b.nextPre(), 100 + tp.ras);
    EXPECT_EQ(b.nextAct(), 100 + tp.rc);
}

TEST(Bank, ActivateWhileOpenPanics)
{
    Bank b;
    b.doActivate(0, 1, tp);
    EXPECT_THROW(b.doActivate(100, 2, tp), std::logic_error);
}

TEST(Bank, EarlyActivatePanics)
{
    Bank b;
    b.doActivate(0, 1, tp);
    b.doPrecharge(tp.ras, tp);
    EXPECT_THROW(b.doActivate(tp.ras + tp.rp - 1, 2, tp),
                 std::logic_error);
}

TEST(Bank, ReadWithAutoPrechargeClosesRow)
{
    Bank b;
    b.doActivate(0, 5, tp);
    b.doRead(tp.rcd, true, tp);
    EXPECT_FALSE(b.isOpen());
    // RDA next-ACT is bounded below by tRC for this part.
    EXPECT_EQ(b.nextAct(), tp.rc);
}

TEST(Bank, WriteWithAutoPrechargeGivesFortyThree)
{
    Bank b;
    b.doActivate(0, 5, tp);
    b.doWrite(tp.rcd, true, tp);
    EXPECT_FALSE(b.isOpen());
    // The unpartitioned FS pipeline's binding constant.
    EXPECT_EQ(b.nextAct(), 43u);
}

TEST(Bank, OpenPageReadKeepsRow)
{
    Bank b;
    b.doActivate(0, 5, tp);
    b.doRead(tp.rcd, false, tp);
    EXPECT_TRUE(b.isOpen());
    // tRTP pushes the earliest precharge out.
    EXPECT_GE(b.nextPre(), tp.rcd + tp.rtp);
}

TEST(Bank, ReadOnClosedBankPanics)
{
    Bank b;
    EXPECT_THROW(b.doRead(50, false, tp), std::logic_error);
}

TEST(Bank, EarlyReadPanics)
{
    Bank b;
    b.doActivate(0, 5, tp);
    EXPECT_THROW(b.doRead(tp.rcd - 1, false, tp), std::logic_error);
}

TEST(Bank, PrechargeBeforeTRasPanics)
{
    Bank b;
    b.doActivate(0, 5, tp);
    EXPECT_THROW(b.doPrecharge(tp.ras - 1, tp), std::logic_error);
}

TEST(Bank, WriteRecoveryDelaysPrecharge)
{
    Bank b;
    b.doActivate(0, 5, tp);
    b.doWrite(tp.rcd, false, tp);
    // PRE must wait tCWD + tBURST + tWR after the write CAS.
    EXPECT_EQ(b.nextPre(), tp.rcd + tp.cwd + tp.burst + tp.wr);
}

TEST(Bank, BlockUntilPushesAllWindows)
{
    Bank b;
    b.blockUntil(500);
    EXPECT_EQ(b.nextAct(), 500u);
    EXPECT_EQ(b.nextRead(), 500u);
    EXPECT_EQ(b.nextWrite(), 500u);
    EXPECT_EQ(b.nextPre(), 500u);
}

TEST(Bank, ResetRestoresPowerOnState)
{
    Bank b;
    b.doActivate(0, 5, tp);
    b.reset();
    EXPECT_FALSE(b.isOpen());
    EXPECT_EQ(b.nextAct(), 0u);
}
