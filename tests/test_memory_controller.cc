#include <gtest/gtest.h>

#include "mem/memory_controller.hh"
#include "sched/frfcfs.hh"

using namespace memsec;
using namespace memsec::mem;

namespace {

class McTest : public ::testing::Test, public MemClient
{
  protected:
    McTest()
        : map(dram::Geometry{}, Partition::None, Interleave::ClosePage,
              4)
    {
        MemoryController::Params p;
        p.numDomains = 4;
        p.queueCapacity = 8;
        mc = std::make_unique<MemoryController>("mc", p, map);
        mc->setScheduler(std::make_unique<sched::FrFcfsScheduler>(*mc));
    }

    void memResponse(const MemRequest &req) override
    {
        responses.push_back(req.id);
        lastCompleted = req.completed;
    }

    std::unique_ptr<MemRequest>
    mk(DomainId d, ReqType t, Addr a, ReqId id = 0)
    {
        auto r = std::make_unique<MemRequest>();
        r->id = id;
        r->domain = d;
        r->type = t;
        r->addr = a;
        r->client = this;
        return r;
    }

    AddressMap map;
    std::unique_ptr<MemoryController> mc;
    std::vector<ReqId> responses;
    Cycle lastCompleted = 0;
};

} // namespace

TEST_F(McTest, AccessDecodesAndQueues)
{
    mc->access(mk(1, ReqType::Read, 0x4000), 5);
    const TransactionQueue &q = mc->queue(1);
    ASSERT_EQ(q.size(), 1u);
    EXPECT_EQ(q.head()->arrival, 5u);
    EXPECT_NE(q.head()->id, 0u); // id allocated
    EXPECT_EQ(mc->stats().demandReads.value(), 1u);
}

TEST_F(McTest, StoreToLoadForwarding)
{
    mc->access(mk(2, ReqType::Write, 0x8000), 0);
    mc->access(mk(2, ReqType::Read, 0x8000), 3);
    // The read was served instantly from the queued write.
    ASSERT_EQ(responses.size(), 1u);
    EXPECT_EQ(lastCompleted, 3u);
    EXPECT_EQ(mc->stats().forwarded.value(), 1u);
    EXPECT_EQ(mc->queue(2).size(), 1u); // only the write remains
}

TEST_F(McTest, WriteMerging)
{
    mc->access(mk(0, ReqType::Write, 0xC000), 0);
    mc->access(mk(0, ReqType::Write, 0xC020), 1); // same line
    EXPECT_EQ(mc->queue(0).size(), 1u);
    EXPECT_EQ(mc->stats().mergedWrites.value(), 1u);
}

TEST_F(McTest, PrefetchGoesToSideQueue)
{
    mc->access(mk(3, ReqType::Prefetch, 0x1000), 0);
    EXPECT_EQ(mc->queue(3).size(), 0u);
    EXPECT_EQ(mc->prefetchQueue(3).size(), 1u);
    EXPECT_EQ(mc->stats().prefetches.value(), 1u);
}

TEST_F(McTest, PrefetchQueueBounded)
{
    for (int i = 0; i < 20; ++i)
        mc->access(mk(3, ReqType::Prefetch, 0x1000 + i * 64ull), 0);
    EXPECT_LE(mc->prefetchQueue(3).size(), 8u);
}

TEST_F(McTest, DuplicatePrefetchDropped)
{
    mc->access(mk(3, ReqType::Read, 0x1000), 0);
    mc->access(mk(3, ReqType::Prefetch, 0x1000), 1);
    EXPECT_EQ(mc->prefetchQueue(3).size(), 0u);
}

TEST_F(McTest, CanAcceptTracksCapacity)
{
    for (int i = 0; i < 8; ++i) {
        EXPECT_TRUE(mc->canAccept(0));
        mc->access(mk(0, ReqType::Read, 0x10000 + i * 64ull), 0);
    }
    EXPECT_FALSE(mc->canAccept(0));
    EXPECT_TRUE(mc->canAccept(1));
}

TEST_F(McTest, EndToEndReadCompletes)
{
    mc->access(mk(1, ReqType::Read, 0x4000), 0);
    for (Cycle t = 0; t < 100 && responses.empty(); ++t)
        mc->tick(t);
    ASSERT_EQ(responses.size(), 1u);
    // ACT + tRCD + tCAS + tBURST ~ 26 cycles minimum.
    EXPECT_GE(lastCompleted, 26u);
    EXPECT_LT(lastCompleted, 60u);
    EXPECT_GT(mc->stats().readLatency.mean(), 0.0);
}

TEST_F(McTest, CompletionOrderStableForSameCycle)
{
    mc->access(mk(0, ReqType::Read, 0x4000), 0);
    mc->access(mk(1, ReqType::Read, 0x14000), 0);
    for (Cycle t = 0; t < 200 && responses.size() < 2; ++t)
        mc->tick(t);
    ASSERT_EQ(responses.size(), 2u);
}

TEST_F(McTest, EffectiveBandwidthCountsRealBursts)
{
    mc->access(mk(1, ReqType::Read, 0x4000), 0);
    for (Cycle t = 0; t < 100; ++t)
        mc->tick(t);
    EXPECT_NEAR(mc->effectiveBandwidth(100), 4.0 / 100.0, 1e-9);
}

TEST_F(McTest, RegisterStatsExposesCounters)
{
    StatGroup g;
    mc->registerStats(g);
    mc->access(mk(1, ReqType::Read, 0x4000), 0);
    EXPECT_DOUBLE_EQ(g.lookup("demand_reads"), 1.0);
}
