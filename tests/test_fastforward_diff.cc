/**
 * @file
 * Differential proof that the idle-skip kernel is invisible: every
 * scheduler x partitioning combination is run twice from identical
 * seeds — once with the naive per-cycle tick loop, once with
 * fast-forward enabled — and the full-precision result digests
 * (hexfloat metrics, noninterference timelines, per-rule
 * TimingChecker totals, recorded SimErrors) must compare equal
 * byte for byte. Any hint that skips an observable cycle, or any
 * fastForward() that misses a unit of per-cycle accounting, shows
 * up here as a digest mismatch.
 */

#include <gtest/gtest.h>

#include <string>

#include "harness/campaign.hh"
#include "harness/experiment.hh"

using namespace memsec;
using namespace memsec::harness;

namespace {

Config
diffConfig(const std::string &scheme, const std::string &workload,
           uint64_t seed)
{
    Config c = defaultConfig();
    c.merge(schemeConfig(scheme));
    c.set("workload", workload);
    c.set("cores", 4);
    c.set("seed", seed);
    c.set("sim.warmup", 1500);
    c.set("sim.measure", 12000);
    // Audit one core so the digest covers the noninterference
    // timeline (per-request service + progress checkpoints), not
    // just the aggregate metrics.
    c.set("audit.core", 0);
    c.set("audit.progress_interval", 1000);
    return c;
}

struct DiffOutcome
{
    ExperimentResult naive;
    ExperimentResult fast;
};

DiffOutcome
runBothModes(Config cfg)
{
    DiffOutcome out;
    cfg.set("sim.fastforward", false);
    out.naive = runExperiment(cfg);
    cfg.set("sim.fastforward", true);
    out.fast = runExperiment(cfg);
    return out;
}

void
expectIdentical(const std::string &scheme, const std::string &workload,
                uint64_t seed)
{
    const DiffOutcome o =
        runBothModes(diffConfig(scheme, workload, seed));
    EXPECT_EQ(resultDigest(o.naive), resultDigest(o.fast))
        << scheme << "/" << workload << " seed=" << seed;
    // The naive run must not have skipped anything, or the
    // comparison proves nothing.
    EXPECT_EQ(o.naive.cyclesSkipped, 0u) << scheme << "/" << workload;
}

} // namespace

// -- FS (fixed service) across all three partitioning modes --------

TEST(FastForwardDiff, FsRankPartition)
{
    expectIdentical("fs_rp", "mcf", 1);
    expectIdentical("fs_rp", "libquantum", 42);
}

TEST(FastForwardDiff, FsBankPartition)
{
    expectIdentical("fs_bp", "mcf", 1);
    expectIdentical("fs_bp", "milc", 7);
}

TEST(FastForwardDiff, FsNoPartition)
{
    expectIdentical("fs_np", "mcf", 1);
    expectIdentical("fs_np", "xalancbmk", 42);
    // The perf harness's headline idle-heavy point (bench/perf_e2e).
    expectIdentical("fs_np", "hog", 1);
}

TEST(FastForwardDiff, FsTripleAlternation)
{
    expectIdentical("fs_np_triple", "mcf", 3);
}

// The energy-optimisation variants exercise ACT suppression and
// precharge power-down, the two paths where Rank::accountEnergySpan
// must agree with per-cycle tickEnergy() residency accounting.
TEST(FastForwardDiff, FsEnergyVariants)
{
    expectIdentical("fs_rp_suppress", "mcf", 1);
    expectIdentical("fs_rp_powerdown", "mcf", 1);
    expectIdentical("fs_rp_powerdown", "astar", 42);
}

TEST(FastForwardDiff, FsWithPrefetch)
{
    expectIdentical("fs_rp_prefetch", "libquantum", 1);
}

// -- FS-reordered (the queued/reordered variant, bank partition) ---

TEST(FastForwardDiff, FsReordered)
{
    expectIdentical("fs_reordered_bp", "mcf", 1);
    expectIdentical("fs_reordered_bp", "milc", 42);
}

// -- Temporal partitioning across both partitioning modes ----------

TEST(FastForwardDiff, TpBankPartition)
{
    expectIdentical("tp_bp", "mcf", 1);
    expectIdentical("tp_bp", "astar", 42);
}

TEST(FastForwardDiff, TpNoPartition)
{
    expectIdentical("tp_np", "mcf", 1);
    expectIdentical("tp_np", "xalancbmk", 7);
}

// -- FRFCFS baseline (no partition), with and without prefetch -----

TEST(FastForwardDiff, FrFcfsBaseline)
{
    expectIdentical("baseline", "mcf", 1);
    expectIdentical("baseline", "libquantum", 42);
}

TEST(FastForwardDiff, FrFcfsWithPrefetchPromotion)
{
    expectIdentical("baseline_prefetch", "mcf", 1);
}

// -- Channel partitioning (multi-controller registration order) ----

TEST(FastForwardDiff, ChannelPartition)
{
    expectIdentical("channel_part", "mcf", 1);
}

// -- Fault injection: per-rule TimingChecker totals in the digest --
//
// With an injector attached the controller hint goes conservative
// (every cycle ticks), but the cores still skip; the shadow
// checker's per-rule violation counts and recorded SimErrors must
// come out identical.

TEST(FastForwardDiff, FaultInjectionRuleTotals)
{
    Config c = diffConfig("fs_rp", "mcf", 1);
    c.set("fault.kind", "slot-skew");
    const DiffOutcome o = runBothModes(c);
    EXPECT_EQ(resultDigest(o.naive), resultDigest(o.fast));
    EXPECT_EQ(o.naive.violationRules, o.fast.violationRules);
    EXPECT_EQ(o.naive.timingViolations, o.fast.timingViolations);
}

// -- Covert-channel sender: cycle-keyed trace modulation -----------
//
// The modulated sender keys its memory intensity on the simulated
// bus cycle via TraceGenerator::observeCycle(), which only executed
// ticks deliver. This is safe because ticks that dispatch records
// are never skippable — and this test is the proof: if fast-forward
// ever skipped past a modulation window edge, the sender's waveform
// (and with it the receiver's audited timeline) would shift.

TEST(FastForwardDiff, ModulatedSenderWaveformIdentical)
{
    for (const char *scheme : {"baseline", "fs_rp", "tp_bp"}) {
        Config c = diffConfig(scheme, "probe,modsender,modsender,"
                                      "modsender", 1);
        c.set("leak.window", 500);
        c.set("leak.secret_bits", 16);
        const DiffOutcome o = runBothModes(c);
        EXPECT_EQ(resultDigest(o.naive), resultDigest(o.fast))
            << scheme << " with modulated sender";
        EXPECT_EQ(o.naive.cyclesSkipped, 0u);
    }
}

// -- Sanity: the fast path actually fires where it should ----------
//
// A differential test that never skips proves nothing. The fixed
// service schedule on a memory-bound workload has long statically
// dead stretches between slot events; require a real skip ratio so
// a silently-disabled fast path fails loudly.

TEST(FastForwardDiff, FastPathActuallySkips)
{
    const DiffOutcome o = runBothModes(diffConfig("fs_np", "mcf", 1));
    EXPECT_GT(o.fast.cyclesSkipped, 0u);
    EXPECT_GT(o.fast.cyclesSkipped, o.fast.cyclesExecuted / 4)
        << "fast-forward skipped too little on an idle-heavy "
           "fixed-service schedule";
    EXPECT_EQ(o.naive.cyclesExecuted,
              o.fast.cyclesExecuted + o.fast.cyclesSkipped);
}

// ==================================================================
// Compiled-schedule replay (sim.compiled, docs/PERF.md): the same
// differential contract, third arm. A naive interpreted run and a
// table-driven replay run (fast-forward + compiled) must produce
// byte-identical result digests; the replay run must additionally
// prove it actually engaged (compiledCommands > 0), or the
// comparison proves nothing.
// ==================================================================

namespace {

void
expectCompiledIdentical(const std::string &scheme,
                        const std::string &workload, uint64_t seed,
                        const std::string &mode = "on")
{
    Config cfg = diffConfig(scheme, workload, seed);
    cfg.set("sim.fastforward", false);
    const ExperimentResult naive = runExperiment(cfg);
    cfg.set("sim.fastforward", true);
    cfg.set("sim.compiled", mode);
    const ExperimentResult compiled = runExperiment(cfg);
    EXPECT_EQ(resultDigest(naive), resultDigest(compiled))
        << scheme << "/" << workload << " seed=" << seed
        << " sim.compiled=" << mode;
    EXPECT_GT(compiled.compiledCommands, 0u)
        << scheme << "/" << workload
        << ": replay never engaged, differential is vacuous";
    EXPECT_EQ(compiled.compiledFallbacks, 0u)
        << scheme << "/" << workload;
    EXPECT_EQ(naive.compiledCommands, 0u);
}

} // namespace

TEST(CompiledDiff, FsRankPartition)
{
    expectCompiledIdentical("fs_rp", "mcf", 1);
    expectCompiledIdentical("fs_rp", "libquantum", 42);
}

TEST(CompiledDiff, FsBankPartition)
{
    expectCompiledIdentical("fs_bp", "mcf", 1);
}

TEST(CompiledDiff, FsNoPartition)
{
    expectCompiledIdentical("fs_np", "mcf", 1);
    // The perf harness's headline idle-heavy point (bench/perf_e2e).
    expectCompiledIdentical("fs_np", "hog", 1);
}

TEST(CompiledDiff, FsTripleAlternation)
{
    expectCompiledIdentical("fs_np_triple", "mcf", 3);
}

TEST(CompiledDiff, FsSlaWeights)
{
    // Weighted slot tables exercise the structural-frame cross-check
    // between the scheduler's table and the verifier's unroll.
    Config cfg = diffConfig("fs_rp", "mcf", 1);
    cfg.set("fs.slot_weights", "2,1,1,1");
    cfg.set("sim.fastforward", false);
    const ExperimentResult naive = runExperiment(cfg);
    cfg.set("sim.fastforward", true);
    cfg.set("sim.compiled", "on");
    const ExperimentResult compiled = runExperiment(cfg);
    EXPECT_EQ(resultDigest(naive), resultDigest(compiled));
    EXPECT_GT(compiled.compiledCommands, 0u);
}

TEST(CompiledDiff, FsReordered)
{
    expectCompiledIdentical("fs_reordered_bp", "mcf", 1);
    expectCompiledIdentical("fs_reordered_bp", "milc", 42);
}

TEST(CompiledDiff, TpBankPartition)
{
    expectCompiledIdentical("tp_bp", "mcf", 1);
}

TEST(CompiledDiff, TpNoPartition)
{
    expectCompiledIdentical("tp_np", "mcf", 1);
}

// Verify mode replays from the table while keeping the dynamic
// TimingChecker and the completion-prediction cross-check armed; it
// must also be digest-identical (and catches a table that only
// "works" because the checker stopped looking).
TEST(CompiledDiff, VerifyModeIdentical)
{
    expectCompiledIdentical("fs_rp", "mcf", 1, "verify");
    expectCompiledIdentical("fs_np", "hog", 1, "verify");
    expectCompiledIdentical("tp_bp", "mcf", 1, "verify");
    expectCompiledIdentical("fs_reordered_bp", "mcf", 1, "verify");
}

// Policies that cannot prove their template must decline and run
// interpreted — with the refresh extension enabled the digest still
// matches naive and no command is ever replayed.
TEST(CompiledDiff, RefreshDeclinesToInterpreted)
{
    Config cfg = diffConfig("fs_rp", "mcf", 1);
    cfg.set("dram.refresh", true);
    cfg.set("sim.fastforward", false);
    const ExperimentResult naive = runExperiment(cfg);
    cfg.set("sim.fastforward", true);
    cfg.set("sim.compiled", "on");
    const ExperimentResult compiled = runExperiment(cfg);
    EXPECT_EQ(resultDigest(naive), resultDigest(compiled));
    EXPECT_EQ(compiled.compiledCommands, 0u);
}

// Slot-skew injection invalidates the fixed template outright: the
// harness keeps injection runs interpreted, and the digest (including
// per-rule violation totals) must match the naive injection run.
TEST(CompiledDiff, SlotSkewFaultStaysInterpreted)
{
    Config cfg = diffConfig("fs_rp", "mcf", 1);
    cfg.set("fault.kind", "slot-skew");
    cfg.set("sim.fastforward", false);
    const ExperimentResult naive = runExperiment(cfg);
    cfg.set("sim.fastforward", true);
    cfg.set("sim.compiled", "on");
    const ExperimentResult compiled = runExperiment(cfg);
    EXPECT_EQ(resultDigest(naive), resultDigest(compiled));
    EXPECT_EQ(naive.violationRules, compiled.violationRules);
    EXPECT_EQ(compiled.compiledCommands, 0u)
        << "an injection run must never trust the compiled table";
}

// Ring exhaustion mid-run: replay drops back to the interpreted path
// as a structured, digest-invisible event — observables still match
// the naive run and the fallback is accounted, not silent.
TEST(CompiledDiff, RingOverflowFallsBackLosslessly)
{
    // fs_rp's l = 7 pipeline keeps several ops in flight (each op is
    // two ring events), so a 3-entry ring must spill.
    Config cfg = diffConfig("fs_rp", "mcf", 1);
    cfg.set("sim.fastforward", false);
    const ExperimentResult naive = runExperiment(cfg);
    cfg.set("sim.fastforward", true);
    cfg.set("sim.compiled", "on");
    cfg.set("sim.compiled_ring", 3);
    const ExperimentResult compiled = runExperiment(cfg);
    EXPECT_EQ(resultDigest(naive), resultDigest(compiled));
    EXPECT_GE(compiled.compiledFallbacks, 1u)
        << "a 3-entry ring must overflow on a loaded schedule";
}
