/**
 * @file
 * Unit tests for the empirical leakage meter (src/leakage/): the
 * secret bitstring, the shuffle-corrected MI estimator, the window
 * observation extractor, and the threshold/majority-vote decoder.
 * Calibration tests pin the estimator's two anchor points: a perfect
 * 1-bit channel measures ~1 bit and an independent channel measures
 * ~0 bits *after* shuffle correction.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <thread>
#include <utility>
#include <vector>

#include "core/noninterference.hh"
#include "leakage/channel.hh"
#include "leakage/mi.hh"
#include "leakage/secret.hh"
#include "sim/config.hh"
#include "util/random.hh"

using namespace memsec;
using namespace memsec::leakage;

// -- secret bitstrings ---------------------------------------------

TEST(Secret, DeterministicGivenSeed)
{
    const auto a = secretBits(42, 128);
    const auto b = secretBits(42, 128);
    EXPECT_EQ(a, b);
    ASSERT_EQ(a.size(), 128u);
    for (const auto bit : a)
        EXPECT_LE(bit, 1u);
}

TEST(Secret, SeedsProduceDifferentStrings)
{
    EXPECT_NE(secretBits(1, 64), secretBits(2, 64));
}

TEST(Secret, RoughlyBalanced)
{
    // The decoder's BER floor and the MI estimate both assume the two
    // symbols occur with comparable frequency.
    for (uint64_t seed : {1ull, 7ull, 0xC0FFEEull}) {
        const auto bits = secretBits(seed, 256);
        size_t ones = 0;
        for (const auto b : bits)
            ones += b;
        EXPECT_GT(ones, 256u * 3 / 10) << "seed " << seed;
        EXPECT_LT(ones, 256u * 7 / 10) << "seed " << seed;
    }
}

TEST(Secret, ZeroBitsPanics)
{
    EXPECT_THROW(secretBits(1, 0), std::logic_error);
}

// -- mutual-information estimator ----------------------------------

TEST(MutualInformation, PerfectOneBitChannelMeasuresOneBit)
{
    // Observation is a deterministic function of the bit: I(B;O) must
    // be the full entropy of the (balanced) bit, ~1 bit, and the
    // shuffle floor must not eat it.
    std::vector<uint8_t> bits;
    std::vector<double> obs;
    Rng rng(7);
    for (int i = 0; i < 400; ++i) {
        const uint8_t b = static_cast<uint8_t>(rng.next() & 1u);
        bits.push_back(b);
        obs.push_back(b ? 200.0 : 100.0);
    }
    const MiEstimate est = mutualInformationBits(bits, obs);
    EXPECT_NEAR(est.pluginBits, 1.0, 0.02);
    EXPECT_NEAR(est.correctedBits, 1.0, 0.05);
    EXPECT_LT(est.shuffleMeanBits, 0.05);
    EXPECT_EQ(est.samples, 400u);
}

TEST(MutualInformation, IndependentStreamsMeasureZeroAfterCorrection)
{
    // Observations independent of the bits: the plug-in estimate is
    // biased upward on finite samples, but the shuffle baseline has
    // the same bias, so the corrected estimate sits at ~0.
    std::vector<uint8_t> bits;
    std::vector<double> obs;
    Rng rng(11);
    for (int i = 0; i < 400; ++i) {
        bits.push_back(static_cast<uint8_t>(rng.next() & 1u));
        obs.push_back(static_cast<double>(rng.below(1000)));
    }
    const MiEstimate est = mutualInformationBits(bits, obs);
    EXPECT_GT(est.pluginBits, 0.0); // the bias is real...
    EXPECT_LT(est.correctedBits, 0.02); // ...and the correction works
}

TEST(MutualInformation, ConstantObservationsCarryNothing)
{
    std::vector<uint8_t> bits = {0, 1, 0, 1, 1, 0, 1, 0};
    std::vector<double> obs(bits.size(), 55.0);
    const MiEstimate est = mutualInformationBits(bits, obs);
    EXPECT_EQ(est.pluginBits, 0.0);
    EXPECT_EQ(est.correctedBits, 0.0);
}

TEST(MutualInformation, DeterministicGivenInputs)
{
    std::vector<uint8_t> bits;
    std::vector<double> obs;
    Rng rng(3);
    for (int i = 0; i < 100; ++i) {
        bits.push_back(static_cast<uint8_t>(rng.next() & 1u));
        obs.push_back(static_cast<double>(rng.below(50)));
    }
    const MiEstimate a = mutualInformationBits(bits, obs);
    const MiEstimate b = mutualInformationBits(bits, obs);
    EXPECT_EQ(a.pluginBits, b.pluginBits);
    EXPECT_EQ(a.shuffleMeanBits, b.shuffleMeanBits);
    EXPECT_EQ(a.correctedBits, b.correctedBits);
}

TEST(MutualInformation, EmptyInputReturnsZeros)
{
    const MiEstimate est = mutualInformationBits({}, {});
    EXPECT_EQ(est.pluginBits, 0.0);
    EXPECT_EQ(est.correctedBits, 0.0);
    EXPECT_EQ(est.samples, 0u);
}

TEST(MutualInformation, MismatchedSizesPanic)
{
    EXPECT_THROW(
        mutualInformationBits({0, 1}, {1.0}), std::logic_error);
}

// -- observation extraction ----------------------------------------

namespace {

ChannelParams
testParams()
{
    ChannelParams p;
    p.windowCycles = 100;
    p.secretSeed = 5;
    p.secretBits = 8;
    p.skipWindows = 0;
    p.guardFraction = 0.0;
    return p;
}

} // namespace

TEST(ExtractObservations, BinsByArrivalWindow)
{
    core::VictimTimeline tl;
    tl.recordService(10, 50);   // window 0, latency 40
    tl.recordService(30, 90);   // window 0, latency 60
    tl.recordService(150, 170); // window 1, latency 20
    tl.recordService(210, 230); // window 2 (truncated -> dropped)
    const auto obs = extractObservations(tl, testParams());
    const auto secret = secretBits(5, 8);
    ASSERT_EQ(obs.size(), 2u);
    EXPECT_EQ(obs[0].window, 0u);
    EXPECT_EQ(obs[0].samples, 2u);
    EXPECT_DOUBLE_EQ(obs[0].meanLatency, 50.0);
    EXPECT_EQ(obs[0].bit, secret[0]);
    EXPECT_EQ(obs[1].window, 1u);
    EXPECT_DOUBLE_EQ(obs[1].meanLatency, 20.0);
    EXPECT_EQ(obs[1].bit, secret[1]);
}

TEST(ExtractObservations, SkipsWarmupAndEmptyWindows)
{
    core::VictimTimeline tl;
    tl.recordService(10, 20);  // window 0: skipped (cold start)
    tl.recordService(110, 130); // window 1
    // window 2 empty
    tl.recordService(310, 330); // window 3
    tl.recordService(410, 420); // window 4 (truncated -> dropped)
    ChannelParams p = testParams();
    p.skipWindows = 1;
    const auto obs = extractObservations(tl, p);
    ASSERT_EQ(obs.size(), 2u);
    EXPECT_EQ(obs[0].window, 1u);
    EXPECT_EQ(obs[1].window, 3u);
}

TEST(ExtractObservations, GuardBandDropsWindowHead)
{
    core::VictimTimeline tl;
    tl.recordService(10, 20);  // first 25% of window 0 -> guarded out
    tl.recordService(60, 100); // kept, latency 40
    tl.recordService(120, 150); // window 1 head -> guarded out
    tl.recordService(250, 280); // window 2 (truncated -> dropped)
    ChannelParams p = testParams();
    p.guardFraction = 0.25;
    const auto obs = extractObservations(tl, p);
    ASSERT_EQ(obs.size(), 1u);
    EXPECT_EQ(obs[0].window, 0u);
    EXPECT_EQ(obs[0].samples, 1u);
    EXPECT_DOUBLE_EQ(obs[0].meanLatency, 40.0);
}

TEST(ExtractObservations, SecretRepeatsCyclically)
{
    core::VictimTimeline tl;
    for (Cycle w = 0; w < 20; ++w)
        tl.recordService(w * 100 + 50, w * 100 + 60);
    const auto obs = extractObservations(tl, testParams());
    const auto secret = secretBits(5, 8);
    ASSERT_EQ(obs.size(), 19u); // truncated final window dropped
    for (const auto &o : obs)
        EXPECT_EQ(o.bit, secret[o.window % 8]) << o.window;
}

// -- decoder / full meter ------------------------------------------

TEST(AnalyzeLeakage, PerfectChannelDecodesAtZeroBer)
{
    // Window means track the secret exactly: ON windows at 200
    // cycles, OFF windows at 100. The blind median threshold lands
    // between them, so every window decodes correctly.
    ChannelParams p = testParams();
    const auto secret = secretBits(p.secretSeed, p.secretBits);
    core::VictimTimeline tl;
    for (Cycle w = 0; w < 64; ++w) {
        const Cycle lat = secret[w % 8] ? 200 : 100;
        tl.recordService(w * 100 + 40, w * 100 + 40 + lat);
        tl.recordService(w * 100 + 70, w * 100 + 70 + lat);
    }
    const LeakageReport rep = analyzeLeakage(tl, p);
    EXPECT_EQ(rep.windows, 63u);
    EXPECT_EQ(rep.rawErrors, 0u);
    EXPECT_EQ(rep.rawBer, 0.0);
    EXPECT_EQ(rep.votedErrors, 0u);
    EXPECT_EQ(rep.votedBits, 8u);
    // A noiseless channel transfers the full entropy of the secret
    // bit — which is below 1 bit when the 8-bit secret is unbalanced.
    size_t ones = 0;
    for (Cycle w = 0; w < 63; ++w)
        ones += secret[w % 8];
    const double p1 = static_cast<double>(ones) / 63.0;
    const double entropy =
        -p1 * std::log2(p1) - (1.0 - p1) * std::log2(1.0 - p1);
    EXPECT_NEAR(rep.mi.correctedBits, entropy, 0.05);
    EXPECT_GT(rep.bitsPerSecond, 0.0);
}

TEST(AnalyzeLeakage, FlatChannelDecodesAtChance)
{
    // A leak-free scheduler gives identical window means: every
    // window decodes to 0, so the BER is exactly the fraction of
    // 1-bits in the observed windows, and the MI is zero.
    ChannelParams p = testParams();
    const auto secret = secretBits(p.secretSeed, p.secretBits);
    core::VictimTimeline tl;
    size_t ones = 0;
    for (Cycle w = 0; w < 64; ++w)
        tl.recordService(w * 100 + 40, w * 100 + 90);
    const LeakageReport rep = analyzeLeakage(tl, p);
    for (Cycle w = 0; w < 63; ++w)
        ones += secret[w % 8];
    EXPECT_EQ(rep.mi.pluginBits, 0.0);
    EXPECT_EQ(rep.mi.correctedBits, 0.0);
    EXPECT_DOUBLE_EQ(
        rep.rawBer,
        static_cast<double>(ones) / static_cast<double>(rep.rawBits));
    EXPECT_EQ(rep.bitsPerSecond, 0.0);
}

TEST(AnalyzeLeakage, DigestIsFullPrecisionAndDeterministic)
{
    ChannelParams p = testParams();
    core::VictimTimeline tl;
    for (Cycle w = 0; w < 32; ++w)
        tl.recordService(w * 100 + 40, w * 100 + 90 + (w % 3));
    const LeakageReport a = analyzeLeakage(tl, p);
    const LeakageReport b = analyzeLeakage(tl, p);
    EXPECT_EQ(leakageDigest(a), leakageDigest(b));
    // hexfloat rendering, so bit-equality is what's compared.
    EXPECT_NE(leakageDigest(a).find("0x"), std::string::npos);
}

TEST(ChannelParams, FromConfigReadsEveryKey)
{
    Config c;
    c.set("leak.window", 2000);
    c.set("leak.secret_seed", 99);
    c.set("leak.secret_bits", 16);
    c.set("leak.skip_windows", 3);
    c.set("leak.guard", 0.125);
    c.set("leak.off_factor", 0.05);
    c.set("leak.mi_bins", 4);
    c.set("leak.mi_shuffles", 16);
    c.set("leak.shuffle_seed", 777);
    const ChannelParams p = ChannelParams::fromConfig(c);
    EXPECT_EQ(p.windowCycles, 2000u);
    EXPECT_EQ(p.secretSeed, 99u);
    EXPECT_EQ(p.secretBits, 16u);
    EXPECT_EQ(p.skipWindows, 3u);
    EXPECT_DOUBLE_EQ(p.guardFraction, 0.125);
    EXPECT_DOUBLE_EQ(p.offFactor, 0.05);
    EXPECT_EQ(p.mi.bins, 4u);
    EXPECT_EQ(p.mi.shuffles, 16u);
    EXPECT_EQ(p.mi.shuffleSeed, 777u);
}

TEST(ChannelParams, FromConfigReadsAttackerKeys)
{
    Config c;
    c.set("leak.mi_binning", "quantile");
    c.set("leak.code.scheme", "manchester");
    c.set("leak.code.preamble", 9);
    c.set("leak.code.repeat", 3);
    c.set("leak.code.adapt_timing", false);
    c.set("leak.code.timing_span", 0.1);
    c.set("leak.code.timing_steps", 11);
    c.set("leak.code.adapt_guard", false);
    c.set("leak.code.min_separation", 1.25);
    c.set("leak.code.mi_bins", 6);
    const ChannelParams p = ChannelParams::fromConfig(c);
    EXPECT_EQ(p.mi.binning, MiBinning::Quantile);
    EXPECT_EQ(p.code.scheme, CodeParams::Scheme::Manchester);
    EXPECT_EQ(p.code.preambleSymbols, 9u);
    EXPECT_EQ(p.code.repeat, 3u);
    EXPECT_FALSE(p.adaptTiming);
    EXPECT_DOUBLE_EQ(p.timingSpan, 0.1);
    EXPECT_EQ(p.timingSteps, 11u);
    EXPECT_FALSE(p.adaptGuard);
    EXPECT_DOUBLE_EQ(p.minSeparation, 1.25);
    EXPECT_EQ(p.llrMiBins, 6u);
}

// -- MI estimator properties ---------------------------------------

namespace {

/** Random (labels, observations) pair from a seeded Rng: labels are
 *  fair bits, observations mix a label-dependent shift with noise so
 *  the dependence strength varies across draws. */
std::pair<std::vector<uint8_t>, std::vector<double>>
randomChannel(uint64_t seed, size_t n)
{
    Rng rng(seed);
    const double shift =
        static_cast<double>(rng.below(200)); // 0 = independent
    std::vector<uint8_t> bits;
    std::vector<double> obs;
    for (size_t i = 0; i < n; ++i) {
        const uint8_t b = static_cast<uint8_t>(rng.next() & 1u);
        bits.push_back(b);
        obs.push_back(static_cast<double>(rng.below(100)) +
                      (b ? shift : 0.0));
    }
    return {bits, obs};
}

} // namespace

TEST(MiProperties, ShuffleCorrectionNeverNegative)
{
    // Property: for any input and either binning, the corrected
    // estimate is clamped into [0, plugin].
    for (uint64_t seed = 1; seed <= 24; ++seed) {
        const auto [bits, obs] = randomChannel(seed, 150 + seed * 17);
        for (const MiBinning binning :
             {MiBinning::Width, MiBinning::Quantile}) {
            MiOptions opts;
            opts.binning = binning;
            opts.shuffles = 16;
            const MiEstimate est =
                mutualInformationBits(bits, obs, opts);
            EXPECT_GE(est.correctedBits, 0.0) << "seed " << seed;
            EXPECT_LE(est.correctedBits, est.pluginBits)
                << "seed " << seed;
            EXPECT_GE(est.pluginBits, 0.0) << "seed " << seed;
        }
    }
}

TEST(MiProperties, InvariantUnderBinPermutation)
{
    // MI depends on the observation axis only through the partition
    // it induces, never through bin order or label values. Remapping
    // k equal-count levels through a permutation must leave plugin,
    // shuffle floor, and corrected estimates bit-identical.
    std::vector<uint8_t> bits;
    std::vector<double> obs, permuted;
    const double level[4] = {10.0, 20.0, 30.0, 40.0};
    const double remap[4] = {40.0, 10.0, 30.0, 20.0};
    // Exactly 100 samples per level, so each level is one quantile
    // bin in both encodings and the remap is a pure bin permutation.
    // (Unequal level counts would move the order-statistic edges and
    // change the partition itself — a different estimator question.)
    for (int i = 0; i < 400; ++i) {
        const size_t lvl = static_cast<size_t>(i) % 4;
        bits.push_back(lvl / 2 ? 1 : 0);
        obs.push_back(level[lvl]);
        permuted.push_back(remap[lvl]);
    }
    MiOptions opts;
    opts.bins = 4;
    opts.binning = MiBinning::Quantile;
    const MiEstimate a = mutualInformationBits(bits, obs, opts);
    const MiEstimate b = mutualInformationBits(bits, permuted, opts);
    // Permuting bins reorders the MI summation, so equality is up to
    // floating-point associativity, not bitwise.
    EXPECT_NEAR(a.pluginBits, b.pluginBits, 1e-12);
    EXPECT_NEAR(a.shuffleMeanBits, b.shuffleMeanBits, 1e-12);
    EXPECT_NEAR(a.shuffleMaxBits, b.shuffleMaxBits, 1e-12);
    EXPECT_NEAR(a.correctedBits, b.correctedBits, 1e-12);
    EXPECT_GT(a.correctedBits, 0.5); // the channel is real
}

TEST(MiProperties, MonotoneUnderBinRefinement)
{
    // Quantile edges for k and 2k bins nest (order statistics at
    // i*n/k are a subset of those at j*n/2k), and equal-width bins
    // split exactly in two — so refining the partition can only
    // preserve or increase the plug-in MI.
    for (uint64_t seed : {3ull, 11ull, 99ull}) {
        const auto [bits, obs] = randomChannel(seed, 600);
        for (const MiBinning binning :
             {MiBinning::Width, MiBinning::Quantile}) {
            double prev = -1.0;
            for (const size_t k : {2u, 4u, 8u, 16u}) {
                MiOptions opts;
                opts.bins = k;
                opts.binning = binning;
                opts.shuffles = 0; // plugin only: the monotone term
                const MiEstimate est =
                    mutualInformationBits(bits, obs, opts);
                EXPECT_GE(est.pluginBits, prev - 1e-12)
                    << "seed " << seed << " bins " << k;
                prev = est.pluginBits;
            }
        }
    }
}

TEST(MiProperties, QuantileBinningSurvivesHeavyTails)
{
    // A single extreme outlier swallows nearly the whole range of an
    // equal-width discretisation (everything lands in one bin); the
    // equal-count partition keeps resolving the real signal.
    Rng rng(0x7A11);
    std::vector<uint8_t> bits;
    std::vector<double> obs;
    for (int i = 0; i < 500; ++i) {
        const uint8_t b = static_cast<uint8_t>(rng.next() & 1u);
        bits.push_back(b);
        obs.push_back((b ? 200.0 : 100.0) +
                      static_cast<double>(rng.below(20)));
    }
    obs[13] = 1e9; // one queueing excursion
    MiOptions width;
    width.bins = 8;
    MiOptions quantile;
    quantile.bins = 8;
    quantile.binning = MiBinning::Quantile;
    const double w =
        mutualInformationBits(bits, obs, width).correctedBits;
    const double q =
        mutualInformationBits(bits, obs, quantile).correctedBits;
    EXPECT_LT(w, 0.1); // width binning collapsed
    EXPECT_GT(q, 0.8); // quantile binning still sees ~1 bit
}

TEST(MiProperties, DeterministicAcrossConcurrentEstimates)
{
    // The estimator owns all of its randomness (a seeded Rng per
    // call), so concurrent estimates — as a --jobs N campaign runs
    // them — are bit-identical to the serial ones.
    const auto [bits, obs] = randomChannel(0x5EED, 500);
    MiOptions opts;
    opts.binning = MiBinning::Quantile;
    const MiEstimate serial = mutualInformationBits(bits, obs, opts);
    std::vector<MiEstimate> out(8);
    {
        std::vector<std::thread> threads;
        for (size_t t = 0; t < out.size(); ++t)
            threads.emplace_back(
                [&, t] {
                    out[t] = mutualInformationBits(bits, obs, opts);
                });
        for (auto &th : threads)
            th.join();
    }
    for (const auto &est : out) {
        EXPECT_EQ(est.pluginBits, serial.pluginBits);
        EXPECT_EQ(est.shuffleMeanBits, serial.shuffleMeanBits);
        EXPECT_EQ(est.shuffleMaxBits, serial.shuffleMaxBits);
        EXPECT_EQ(est.correctedBits, serial.correctedBits);
    }
}
