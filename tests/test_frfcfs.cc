#include <gtest/gtest.h>

#include <memory>

#include "mem/memory_controller.hh"
#include "sched/frfcfs.hh"

using namespace memsec;
using namespace memsec::mem;
using namespace memsec::sched;

namespace {

class FrFcfsTest : public ::testing::Test, public MemClient
{
  protected:
    FrFcfsTest()
        : map(dram::Geometry{}, Partition::None, Interleave::OpenPage, 2)
    {
        MemoryController::Params p;
        p.numDomains = 2;
        p.queueCapacity = 16;
        mc = std::make_unique<MemoryController>("mc", p, map);
        auto sched = std::make_unique<FrFcfsScheduler>(*mc);
        schedPtr = sched.get();
        mc->setScheduler(std::move(sched));
    }

    void memResponse(const MemRequest &req) override
    {
        done.push_back({req.id, req.completed});
    }

    void
    inject(DomainId d, ReqType t, Addr a, Cycle now, ReqId id)
    {
        auto r = std::make_unique<MemRequest>();
        r->id = id;
        r->domain = d;
        r->type = t;
        r->addr = a;
        r->client = this;
        mc->access(std::move(r), now);
    }

    void
    runTo(Cycle end)
    {
        for (; now < end; ++now)
            mc->tick(now);
    }

    AddressMap map;
    std::unique_ptr<MemoryController> mc;
    FrFcfsScheduler *schedPtr = nullptr;
    std::vector<std::pair<ReqId, Cycle>> done;
    Cycle now = 0;
};

} // namespace

TEST_F(FrFcfsTest, SingleReadMinimalLatency)
{
    inject(0, ReqType::Read, 0x1000, 0, 1);
    runTo(100);
    ASSERT_EQ(done.size(), 1u);
    const auto &tp = mc->dram().timing();
    // ACT at 0, CAS at tRCD, data ends tCAS + tBURST later.
    EXPECT_EQ(done[0].second, tp.rcd + tp.cas + tp.burst);
}

TEST_F(FrFcfsTest, RowHitServedBeforeOlderMiss)
{
    // Two same-row reads and one conflicting-row read, same bank.
    inject(0, ReqType::Read, 0, 0, 1);
    runTo(12); // ACT for req 1 issued, row open
    // Same row (consecutive line) vs different row of the same bank.
    inject(0, ReqType::Read, 64, 12, 2);
    runTo(60);
    EXPECT_EQ(schedPtr->engine().rowHits(), 1u);
}

TEST_F(FrFcfsTest, OpenPageKeepsRowForHits)
{
    inject(0, ReqType::Read, 0, 0, 1);
    inject(0, ReqType::Read, 64, 0, 2);
    inject(0, ReqType::Read, 128, 0, 3);
    runTo(120);
    ASSERT_EQ(done.size(), 3u);
    // One activate serves all three CASes.
    EXPECT_EQ(mc->dram().rank(0).energy().activates, 1u);
}

TEST_F(FrFcfsTest, WritesDrainWhenNoReads)
{
    inject(0, ReqType::Write, 0x2000, 0, 1);
    runTo(100);
    EXPECT_EQ(mc->queue(0).size(), 0u);
    EXPECT_EQ(mc->stats().realBursts.value(), 1u);
}

TEST_F(FrFcfsTest, ReadsPrioritisedOverFewWrites)
{
    for (int i = 0; i < 4; ++i)
        inject(0, ReqType::Write, 0x40000 + i * 8192ull, 0, 10 + i);
    inject(1, ReqType::Read, 0x1000, 0, 1);
    runTo(60);
    // The read completed although the writes arrived first.
    ASSERT_FALSE(done.empty());
    EXPECT_EQ(done[0].first, 1u);
}

TEST_F(FrFcfsTest, ConflictingRowGetsPrecharged)
{
    inject(0, ReqType::Read, 0, 0, 1);
    runTo(30);
    // Different row, same bank: with open-page interleave a bank's
    // row spans colsPerRow lines and banks stripe above that, so the
    // same bank recurs every colsPerRow * nslots lines.
    const Addr sameBankNextRow = 128ull * 64 * 64;
    inject(0, ReqType::Read, sameBankNextRow, 30, 2);
    runTo(150);
    ASSERT_EQ(done.size(), 2u);
    EXPECT_GE(schedPtr->engine().rowConflicts(), 1u);
}

TEST_F(FrFcfsTest, AllRequestsEventuallyComplete)
{
    for (int i = 0; i < 16; ++i) {
        inject(i % 2, i % 3 == 0 ? ReqType::Write : ReqType::Read,
               0x1000 + i * 4096ull, 0, 100 + i);
    }
    runTo(2000);
    // Every request (reads and writes) responds to its client.
    EXPECT_EQ(done.size(), 16u);
    EXPECT_EQ(mc->queue(0).size(), 0u);
    EXPECT_EQ(mc->queue(1).size(), 0u);
}

TEST_F(FrFcfsTest, StatsGroupHasRowCounters)
{
    StatGroup g;
    schedPtr->registerStats(g);
    EXPECT_GE(g.lookup("row_hits"), 0.0);
    EXPECT_GE(g.lookup("row_conflicts"), 0.0);
}
