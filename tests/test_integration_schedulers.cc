/**
 * @file
 * Scheme x workload sweep. The independent TimingChecker panics on
 * any JEDEC violation, so simply completing each run proves that
 * every scheduler — including every FS pipeline — is conflict-free
 * under realistic traffic. On top of that we assert the scheme's
 * structural invariants (bandwidth ceilings, dummy behaviour).
 */

#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "harness/experiment.hh"

using namespace memsec;
using namespace memsec::harness;

namespace {

ExperimentResult
run(const std::string &scheme, const std::string &workload,
    unsigned cores = 8)
{
    Config c = defaultConfig();
    c.merge(schemeConfig(scheme));
    c.set("workload", workload);
    c.set("cores", cores);
    c.set("sim.warmup", 3000);
    c.set("sim.measure", 30000);
    return runExperiment(c);
}

} // namespace

class SchemeWorkloadSweep
    : public ::testing::TestWithParam<
          std::tuple<std::string, std::string>>
{
};

TEST_P(SchemeWorkloadSweep, RunsCleanAndWithinBandwidthCeiling)
{
    const auto [scheme, workload] = GetParam();
    const ExperimentResult r = run(scheme, workload);

    ASSERT_EQ(r.ipc.size(), 8u);
    double total = 0.0;
    for (double v : r.ipc) {
        EXPECT_GE(v, 0.0);
        EXPECT_LE(v, 4.0);
        total += v;
    }
    EXPECT_GT(total, 0.0);
    EXPECT_LE(r.effectiveBandwidth, 1.0);

    // Scheme-specific theoretical ceilings (Sections 3-4).
    if (scheme == "fs_rp") {
        EXPECT_LE(r.effectiveBandwidth, 4.0 / 7 + 0.01);
    } else if (scheme == "fs_bp") {
        EXPECT_LE(r.effectiveBandwidth, 4.0 / 15 + 0.01);
    } else if (scheme == "fs_reordered_bp") {
        EXPECT_LE(r.effectiveBandwidth, 32.0 / 63 + 0.01);
    } else if (scheme == "fs_np") {
        EXPECT_LE(r.effectiveBandwidth, 4.0 / 43 + 0.01);
    } else if (scheme == "fs_np_triple") {
        EXPECT_LE(r.effectiveBandwidth, 4.0 / 15 + 0.01);
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllSchemes, SchemeWorkloadSweep,
    ::testing::Combine(
        ::testing::Values("baseline", "fs_rp", "fs_reordered_bp",
                          "fs_bp", "fs_np", "fs_np_triple", "tp_bp",
                          "tp_np"),
        ::testing::Values("libquantum", "mcf", "xalancbmk", "mix1")),
    [](const auto &info) {
        return std::get<0>(info.param) + "_" +
               std::get<1>(info.param);
    });

class EnergyOptSweep : public ::testing::TestWithParam<std::string>
{
};

TEST_P(EnergyOptSweep, OptimisationRunsClean)
{
    const ExperimentResult r = run(GetParam(), "zeusmp");
    EXPECT_GT(r.energy.totalNj(), 0.0);
}

INSTANTIATE_TEST_SUITE_P(FsEnergyVariants, EnergyOptSweep,
                         ::testing::Values("fs_rp_suppress",
                                           "fs_rp_boost",
                                           "fs_rp_powerdown",
                                           "fs_rp_prefetch",
                                           "baseline_prefetch"));

TEST(IntegrationSchedulers, CoreCountScaling)
{
    // Figure 10's axis: the schemes must run at 2/4/8 cores.
    for (unsigned cores : {2u, 4u, 8u}) {
        for (const char *s : {"fs_rp", "fs_reordered_bp", "tp_bp"}) {
            const auto r = run(s, "mcf", cores);
            EXPECT_EQ(r.ipc.size(), cores) << s << "@" << cores;
        }
    }
}

TEST(IntegrationSchedulers, EnergyOrderingOnIdleWorkload)
{
    // With mostly-dummy traffic the energy optimisations must strictly
    // reduce FS energy: suppress > boost > power-down, paper Figure 9.
    const double fs = run("fs_rp", "idle").energy.totalNj();
    const double sup = run("fs_rp_suppress", "idle").energy.totalNj();
    const double pd =
        run("fs_rp_powerdown", "idle").energy.totalNj();
    EXPECT_LT(sup, fs);
    EXPECT_LT(pd, sup);
}

TEST(IntegrationSchedulers, SecureSchemesSlowerThanBaselineOnAverage)
{
    // Sanity on the headline ordering for a memory-bound workload.
    const auto base = run("baseline", "lbm");
    const auto fsRp = run("fs_rp", "lbm");
    const auto tpBp = run("tp_bp", "lbm");
    auto sum = [](const ExperimentResult &r) {
        double s = 0;
        for (double v : r.ipc)
            s += v;
        return s;
    };
    EXPECT_GT(sum(base), sum(fsRp));
    EXPECT_GT(sum(fsRp), sum(tpBp));
}
