/**
 * @file
 * Each isolint information-flow rule must fire on a minimal synthetic
 * reproduction, stay quiet on the isolation-safe equivalent, and
 * honour the allowlist's mandatory-justification format. The gate
 * tests then run the real linter over the real src/sched tree with
 * the real checked-in allowlist: the tier-1 suite itself enforces
 * that every cross-domain flow in the schedulers is argued.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>

#include "isolint.hh"

using namespace memsec::isolint;

namespace {

bool
hasRule(const std::vector<Finding> &fs, const std::string &rule)
{
    return std::any_of(fs.begin(), fs.end(), [&](const Finding &f) {
        return f.rule == rule;
    });
}

unsigned
lineOf(const std::vector<Finding> &fs, const std::string &rule)
{
    for (const Finding &f : fs)
        if (f.rule == rule)
            return f.line;
    return 0;
}

} // namespace

TEST(Isolint, CrossDomainScanFlagsNumDomainsLoop)
{
    const std::string src = R"(
void S::pick() {
    for (DomainId d = 0; d < mc_.numDomains(); ++d) {
        total += mc_.queue(d).size();
    }
}
)";
    const auto fs = lintSource("x.cc", src);
    ASSERT_TRUE(hasRule(fs, "cross-domain-scan"));
    EXPECT_EQ(lineOf(fs, "cross-domain-scan"), 4u);
}

TEST(Isolint, CrossDomainScanFlagsRangeForOverDomains)
{
    const std::string src = R"(
void S::wake() {
    for (DomainId d : allDomains_)
        if (!mc_.queue(d).empty())
            return;
}
)";
    EXPECT_TRUE(hasRule(lintSource("x.cc", src), "cross-domain-scan"));
}

TEST(Isolint, CrossDomainScanFlagsLoopOverBoundName)
{
    // The domain count laundered through a local must still count as
    // a domain loop.
    const std::string src = R"(
void S::survey() {
    const unsigned n = mc_.numDomains();
    for (DomainId d = 0; d < n; ++d) {
        const MemRequest *head = mc_.queue(d).head();
        use(head);
    }
}
)";
    const auto fs = lintSource("x.cc", src);
    ASSERT_TRUE(hasRule(fs, "cross-domain-scan"));
    EXPECT_EQ(lineOf(fs, "cross-domain-scan"), 5u);
}

TEST(Isolint, CrossDomainScanFlagsPrefetchQueue)
{
    const std::string src = R"(
void S::sweep() {
    for (DomainId d = 0; d < mc_.numDomains(); ++d) {
        for (const auto &p : mc_.prefetchQueue(d))
            use(p);
    }
}
)";
    EXPECT_TRUE(hasRule(lintSource("x.cc", src), "cross-domain-scan"));
}

TEST(Isolint, OwnDomainAccessIsClean)
{
    // Reading only the deciding slot's own queue is the secure
    // pattern: no domain loop, no finding.
    const std::string src = R"(
void S::decideSlot(DomainId domain) {
    mem::TransactionQueue &q = mc_.queue(domain);
    if (!q.empty())
        issue(q.take());
}
)";
    EXPECT_FALSE(hasRule(lintSource("x.cc", src),
                         "cross-domain-scan"));
}

TEST(Isolint, NonDomainLoopWithQueueIsClean)
{
    // A loop over something other than the domain set (here: retry
    // attempts) touching the caller's own queue must not fire.
    const std::string src = R"(
void S::retry(DomainId domain) {
    for (unsigned i = 0; i < kMaxRetries; ++i) {
        if (mc_.queue(domain).full())
            break;
    }
}
)";
    EXPECT_FALSE(hasRule(lintSource("x.cc", src),
                         "cross-domain-scan"));
}

TEST(Isolint, DomainLoopWithoutQueueReadIsClean)
{
    // Iterating the domain set for bookkeeping (slot table fill) is
    // fine as long as no per-domain demand state is read.
    const std::string src = R"(
S::S(mem::MemoryController &mc) {
    for (DomainId d = 0; d < mc.numDomains(); ++d)
        slotTable_.push_back(d);
}
)";
    EXPECT_FALSE(hasRule(lintSource("x.cc", src),
                         "cross-domain-scan"));
}

TEST(Isolint, OccupancyToTimingFlagsTaintedSink)
{
    const std::string src = R"(
void S::plan(Op &op) {
    uint64_t foreign = 0;
    for (DomainId d = 0; d < mc_.numDomains(); ++d)
        foreign += mc_.queue(d).size();
    op.actAt += injector_->couplingSkew(op.actAt, foreign);
}
)";
    const auto fs = lintSource("x.cc", src);
    ASSERT_TRUE(hasRule(fs, "occupancy-to-timing"));
    EXPECT_EQ(lineOf(fs, "occupancy-to-timing"), 6u);
}

TEST(Isolint, OccupancyWithoutTimingSinkIsClean)
{
    // Occupancy feeding statistics (not command cycles) is fine.
    const std::string src = R"(
void S::stats() {
    const uint64_t depth = mc_.queue(0).size();
    stats_.maxDepth = std::max(stats_.maxDepth, depth);
}
)";
    EXPECT_FALSE(hasRule(lintSource("x.cc", src),
                         "occupancy-to-timing"));
}

TEST(Isolint, TimingSinkWithoutTaintIsClean)
{
    // Command cycles computed from the fixed schedule alone.
    const std::string src = R"(
void S::plan(Op &op, uint64_t slot) {
    op.actAt = slot * params_.l;
    op.casAt = op.actAt + tRCD;
}
)";
    EXPECT_FALSE(hasRule(lintSource("x.cc", src),
                         "occupancy-to-timing"));
}

TEST(Isolint, TimingPerturbationFlagsInjectorHooks)
{
    const auto fs = lintSource(
        "x.cc", "op.actAt += injector_->slotSkew(op.actAt);\n");
    ASSERT_TRUE(hasRule(fs, "timing-perturbation"));
    EXPECT_EQ(lineOf(fs, "timing-perturbation"), 1u);
    EXPECT_TRUE(hasRule(
        lintSource("x.cc", "skew = injector_->couplingSkew(t, b);\n"),
        "timing-perturbation"));
}

TEST(Isolint, CommentsAndStringsNeverFire)
{
    const std::string src = R"(
// for (DomainId d = 0; d < mc_.numDomains(); ++d) — prose
/* foreign += mc_.queue(d).size(); in a block comment */
const char *msg = "slotSkew( inside a string literal";
)";
    EXPECT_TRUE(lintSource("x.cc", src).empty());
}

TEST(Isolint, FindingsSortedAndFormatted)
{
    const std::string src =
        "a = injector_->slotSkew(t);\n"
        "b = injector_->couplingSkew(t, n);\n";
    const auto fs = lintSource("x.cc", src);
    ASSERT_EQ(fs.size(), 2u);
    EXPECT_LE(fs[0].line, fs[1].line);
    EXPECT_NE(fs[0].toString().find("x.cc:1: [timing-perturbation]"),
              std::string::npos);
}

// ---- Allowlist semantics. ----

TEST(IsolintAllowlist, SuppressesByPathRuleAndSubstring)
{
    const Allowlist al = Allowlist::fromString(
        "sched/frfcfs.cc:cross-domain-scan:queue(d)  # baseline\n");
    Finding hit{"/repo/src/sched/frfcfs.cc", 102, "cross-domain-scan",
                "const mem::TransactionQueue &q = mc_.queue(d);"};
    EXPECT_TRUE(al.allows(hit));

    Finding wrongRule = hit;
    wrongRule.rule = "occupancy-to-timing";
    EXPECT_FALSE(al.allows(wrongRule));

    Finding wrongFile = hit;
    wrongFile.file = "/repo/src/sched/fs.cc";
    EXPECT_FALSE(al.allows(wrongFile));

    Finding wrongExcerpt = hit;
    wrongExcerpt.excerpt = "slotTable_.push_back(d);";
    EXPECT_FALSE(al.allows(wrongExcerpt));
}

TEST(IsolintAllowlist, JustificationIsMandatory)
{
    EXPECT_THROW(
        Allowlist::fromString("a.cc:cross-domain-scan\n"),
        std::runtime_error);
    EXPECT_THROW(
        Allowlist::fromString("a.cc:cross-domain-scan   #  \n"),
        std::runtime_error);
}

TEST(IsolintAllowlist, UnknownRuleRejected)
{
    EXPECT_THROW(
        Allowlist::fromString("a.cc:no-such-rule  # oops\n"),
        std::runtime_error);
}

// ---- The real gate: src/sched is argued flow-by-flow. ----

TEST(IsolintGate, SchedTreeCleanUnderCheckedInAllowlist)
{
    const std::string root = MEMSEC_SOURCE_DIR;
    const Allowlist al =
        Allowlist::fromFile(root + "/tools/isolint/allowlist.txt");
    const auto fs = lintTree(root + "/src/sched", al);
    for (const Finding &f : fs)
        ADD_FAILURE() << f.toString();
    EXPECT_TRUE(fs.empty());
}

TEST(IsolintGate, AllowlistEntriesAreLoadBearing)
{
    // Without the allowlist the schedulers must NOT be clean: the
    // FR-FCFS baseline's global scan is a real, documented flow. If
    // this fails the checked-in entries are stale.
    const std::string root = MEMSEC_SOURCE_DIR;
    const auto fs = lintTree(root + "/src/sched", Allowlist());
    EXPECT_FALSE(fs.empty());
    EXPECT_TRUE(hasRule(fs, "cross-domain-scan"));
    EXPECT_TRUE(hasRule(fs, "timing-perturbation"));
    EXPECT_TRUE(hasRule(fs, "occupancy-to-timing"));
    // The baseline specifically must be among the flagged files.
    EXPECT_TRUE(std::any_of(fs.begin(), fs.end(), [](const Finding &f) {
        return f.file.find("frfcfs.cc") != std::string::npos &&
               f.rule == "cross-domain-scan";
    }));
}
