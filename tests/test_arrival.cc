/**
 * @file
 * Open-loop arrival generator (cpu/arrival.*): statistical sanity of
 * the Poisson and MMPP processes, determinism, mid-burst checkpoint
 * byte-identity, the end-to-end per-domain percentile path, and —
 * because the generator feeds the same cores the leakage harness
 * audits — a noise-floor gate proving open-loop background load does
 * not reopen the covert channel under a fixed-service scheduler.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "cpu/arrival.hh"
#include "cpu/workload.hh"
#include "harness/campaign.hh"
#include "harness/experiment.hh"
#include "leakage/channel.hh"
#include "util/serialize.hh"

using namespace memsec;
using namespace memsec::cpu;
using namespace memsec::harness;

namespace {

WorkloadProfile
openLoopProfile(const std::string &process, double rate,
                unsigned clients)
{
    WorkloadProfile p = profileByName("cloud");
    p.trafficProcess = process;
    p.trafficRate = rate;
    p.trafficClients = clients;
    return p;
}

struct PullStats
{
    uint64_t arrivals = 0;
    std::vector<uint64_t> windowCounts;
    std::vector<Cycle> stamps;
};

/** Drive the generator the way a core does: observe each bus cycle,
 *  then pull until it hands back a filler (issueAt == kNoCycle). */
PullStats
pull(ArrivalTraceGenerator &g, Cycle cycles, Cycle window)
{
    PullStats st;
    st.windowCounts.assign(cycles / window, 0);
    for (Cycle c = 0; c < cycles; ++c) {
        g.observeCycle(c);
        for (;;) {
            const TraceRecord r = g.next();
            if (r.issueAt == kNoCycle)
                break;
            EXPECT_EQ(r.gap, 0u);
            EXPECT_LE(r.issueAt, c);
            ++st.arrivals;
            st.stamps.push_back(r.issueAt);
            if (r.issueAt / window < st.windowCounts.size())
                ++st.windowCounts[r.issueAt / window];
        }
    }
    return st;
}

double
dispersionIndex(const std::vector<uint64_t> &counts)
{
    double mean = 0.0;
    for (uint64_t c : counts)
        mean += static_cast<double>(c);
    mean /= static_cast<double>(counts.size());
    double var = 0.0;
    for (uint64_t c : counts) {
        const double d = static_cast<double>(c) - mean;
        var += d * d;
    }
    var /= static_cast<double>(counts.size() - 1);
    return mean > 0.0 ? var / mean : 0.0;
}

} // namespace

// -- process statistics --------------------------------------------

TEST(Arrival, PoissonMeanAndDispersion)
{
    // rate is per 1000 bus cycles: 8/1000 over 200k cycles -> 1600
    // expected (sd = 40; the bound is ~6 sigma, and the draw is
    // deterministic for a fixed seed anyway).
    ArrivalTraceGenerator g(openLoopProfile("poisson", 8.0, 32), 12345);
    const PullStats st = pull(g, 200000, 1000);
    EXPECT_NEAR(static_cast<double>(st.arrivals), 1600.0, 240.0);
    EXPECT_EQ(st.arrivals, g.arrivalsEmitted());
    // A Poisson count process has unit variance-to-mean ratio.
    const double d = dispersionIndex(st.windowCounts);
    EXPECT_GT(d, 0.6);
    EXPECT_LT(d, 1.5);
}

TEST(Arrival, MmppMeanMatchesRateAndOverdisperses)
{
    // The burst/idle factors shape burstiness around the configured
    // mean, they must not scale it: 8/1000 over 400k cycles -> 3200
    // expected, but with strongly overdispersed window counts.
    WorkloadProfile p = openLoopProfile("mmpp", 8.0, 4);
    ArrivalTraceGenerator g(p, 999);
    const PullStats st = pull(g, 400000, 1000);
    EXPECT_NEAR(static_cast<double>(st.arrivals), 3200.0, 900.0);
    EXPECT_GT(dispersionIndex(st.windowCounts), 2.0)
        << "MMPP windows should be visibly burstier than Poisson";
}

TEST(Arrival, DiurnalEnvelopePreservesTheMean)
{
    WorkloadProfile p = openLoopProfile("poisson", 8.0, 32);
    p.trafficDiurnalPeriod = 50000.0;
    p.trafficDiurnalAmp = 0.8;
    ArrivalTraceGenerator g(p, 7);
    // Eight whole periods, over which the sinusoid integrates to 0.
    const PullStats st = pull(g, 400000, 1000);
    EXPECT_NEAR(static_cast<double>(st.arrivals), 3200.0, 480.0);
}

TEST(Arrival, StampsAreMonotoneAndExactlyCounted)
{
    ArrivalTraceGenerator g(openLoopProfile("mmpp", 12.0, 8), 42);
    const PullStats st = pull(g, 50000, 1000);
    ASSERT_GT(st.arrivals, 100u);
    for (size_t i = 1; i < st.stamps.size(); ++i)
        EXPECT_GE(st.stamps[i], st.stamps[i - 1]);
}

TEST(Arrival, SeedDeterminism)
{
    const WorkloadProfile p = openLoopProfile("mmpp", 8.0, 4);
    ArrivalTraceGenerator a(p, 1), b(p, 1), c(p, 2);
    const PullStats sa = pull(a, 60000, 1000);
    const PullStats sb = pull(b, 60000, 1000);
    const PullStats sc = pull(c, 60000, 1000);
    EXPECT_EQ(sa.stamps, sb.stamps);
    EXPECT_NE(sa.stamps, sc.stamps);
}

TEST(Arrival, RejectsNonsenseConfiguration)
{
    WorkloadProfile p = openLoopProfile("uniform", 8.0, 1);
    EXPECT_EXIT(ArrivalTraceGenerator(p, 1),
                ::testing::ExitedWithCode(1), "poisson or mmpp");
    p = openLoopProfile("poisson", 0.0, 1);
    EXPECT_EXIT(ArrivalTraceGenerator(p, 1),
                ::testing::ExitedWithCode(1), "rate");
    p = openLoopProfile("poisson", 8.0, 1);
    p.trafficDiurnalAmp = 1.5;
    EXPECT_EXIT(ArrivalTraceGenerator(p, 1),
                ::testing::ExitedWithCode(1), "diurnal_amp");
}

// -- mid-burst checkpoint byte-identity ----------------------------

TEST(Arrival, GeneratorSaveRestoreMidBurstIsByteIdentical)
{
    const WorkloadProfile p = openLoopProfile("mmpp", 10.0, 4);
    ArrivalTraceGenerator a(p, 77);
    pull(a, 10000, 1000); // advance into the stream, mid-burst

    Serializer s;
    a.saveState(s);
    ArrivalTraceGenerator b(p, 77);
    Deserializer d(s.data());
    b.restoreState(d);

    // Both generators must now produce the identical record sequence.
    for (Cycle c = 10000; c < 30000; ++c) {
        a.observeCycle(c);
        b.observeCycle(c);
        for (;;) {
            const TraceRecord ra = a.next();
            const TraceRecord rb = b.next();
            ASSERT_EQ(ra.issueAt, rb.issueAt) << "cycle " << c;
            ASSERT_EQ(ra.addr, rb.addr);
            ASSERT_EQ(ra.isStore, rb.isStore);
            ASSERT_EQ(ra.gap, rb.gap);
            if (ra.issueAt == kNoCycle)
                break;
        }
    }
}

// -- end-to-end through the harness --------------------------------

namespace {

Config
openLoopConfig(const std::string &scheme)
{
    Config c = defaultConfig();
    c.merge(schemeConfig(scheme));
    c.set("cores", 4);
    c.set("workload", "cloud");
    c.set("traffic.process", "mmpp");
    c.set("traffic.rate", 6.0);
    c.set("traffic.clients", 16);
    c.set("sim.warmup", 2000);
    c.set("sim.measure", 30000);
    return c;
}

} // namespace

TEST(Arrival, ExperimentProducesPerDomainPercentiles)
{
    const ExperimentResult r = runExperiment(openLoopConfig("fs_rp"));
    ASSERT_EQ(r.domainReadLatency.size(), 4u);
    for (unsigned dIdx = 0; dIdx < 4; ++dIdx) {
        const Histogram &h = r.domainReadLatency[dIdx];
        ASSERT_GT(h.totalSamples(), 50u) << "domain " << dIdx;
        const double p50 = h.percentile(0.50);
        const double p99 = h.percentile(0.99);
        const double p999 = h.percentile(0.999);
        EXPECT_GT(p50, 0.0);
        EXPECT_LE(p50, p99);
        EXPECT_LE(p99, p999);
    }
}

TEST(Arrival, ExperimentCheckpointMidBurstIsDigestIdentical)
{
    const Config cfg = openLoopConfig("fs_rp");

    ExperimentSystem straight(cfg);
    while (!straight.done())
        straight.step(kNoCycle);
    const ExperimentResult a = straight.finish();

    // Same run, snapshotted mid-burst and restored into a fresh
    // system built from the same config.
    ExperimentSystem first(cfg);
    first.step(13000);
    Serializer s;
    first.saveState(s);
    ExperimentSystem second(cfg);
    Deserializer d(s.data());
    second.restoreState(d);
    while (!second.done())
        second.step(4000);
    const ExperimentResult b = second.finish();

    EXPECT_EQ(resultDigest(a), resultDigest(b));
}

// -- open-loop load must not reopen the covert channel -------------

TEST(Arrival, OpenLoopLoadKeepsFsAtNoiseFloor)
{
    // The fig_leakage receiver/sender pair with the four remaining
    // cores converted to open-loop cloud tenants (traffic.d<i>.*
    // overrides; the victim and senders stay closed-loop). Under a
    // fixed-service scheduler the decoder must stay at the noise
    // floor no matter what the open-loop background does.
    Config c = defaultConfig();
    c.merge(schemeConfig("fs_rp"));
    c.set("workload", "probe,modsender,modsender,modsender,"
                      "cloud,cloud,cloud,cloud");
    c.set("cores", 8);
    c.set("sim.warmup", 0);
    c.set("sim.measure", 120000);
    c.set("audit.core", 0);
    c.set("leak.window", 1500);
    c.set("leak.secret_seed", 0xC0FFEE);
    c.set("leak.secret_bits", 32);
    c.set("leak.skip_windows", 2);
    for (int i = 4; i < 8; ++i) {
        const std::string pre = "traffic.d" + std::to_string(i) + ".";
        c.set(pre + "process", "mmpp");
        c.set(pre + "rate", 8.0);
        c.set(pre + "clients", 16);
    }
    const ExperimentResult r = runExperiment(c);
    const auto rep = leakage::analyzeLeakage(
        r.timelines.at(0), leakage::ChannelParams::fromConfig(c));
    ASSERT_GT(rep.windows, 30u);
    EXPECT_LT(rep.mi.correctedBits, 0.05);
    EXPECT_GT(rep.rawBer, 0.35);
    EXPECT_LT(rep.rawBer, 0.65);
}
