#include <gtest/gtest.h>

#include <vector>

#include "mem/request.hh"
#include "sim/simulator.hh"

using namespace memsec;

namespace {

class Probe : public Component
{
  public:
    explicit Probe(std::string name, std::vector<int> *log, int id)
        : Component(std::move(name)), log_(log), id_(id)
    {
    }

    void
    tick(Cycle now) override
    {
        lastTick = now;
        ++ticks;
        if (log_)
            log_->push_back(id_);
    }

    Cycle lastTick = 0;
    uint64_t ticks = 0;

  private:
    std::vector<int> *log_;
    int id_;
};

/**
 * A component with a configurable wake hint: wakes at multiples of
 * `stride` (kNoCycle when stride is 0, i.e. purely reactive), and
 * records every fastForward() span it receives.
 */
class IdleProbe : public Component
{
  public:
    explicit IdleProbe(Cycle stride)
        : Component("idle"), stride_(stride)
    {
    }

    void
    tick(Cycle now) override
    {
        lastTick = now;
        ++ticks;
    }

    Cycle
    nextWakeCycle(Cycle now) const override
    {
        if (stride_ == 0)
            return kNoCycle;
        return (now / stride_ + 1) * stride_;
    }

    void
    fastForward(Cycle from, Cycle to) override
    {
        spans.push_back({from, to});
        ffCycles += to - from;
    }

    Cycle lastTick = 0;
    uint64_t ticks = 0;
    uint64_t ffCycles = 0;
    std::vector<std::pair<Cycle, Cycle>> spans;

  private:
    Cycle stride_;
};

} // namespace

TEST(Simulator, RunAdvancesExactCycles)
{
    Simulator sim;
    Probe p("p", nullptr, 0);
    sim.add(&p);
    sim.run(10);
    EXPECT_EQ(sim.now(), 10u);
    EXPECT_EQ(p.ticks, 10u);
    EXPECT_EQ(p.lastTick, 9u);
    sim.run(5);
    EXPECT_EQ(sim.now(), 15u);
    EXPECT_EQ(p.ticks, 15u);
}

TEST(Simulator, ComponentsTickInRegistrationOrder)
{
    Simulator sim;
    std::vector<int> log;
    Probe a("a", &log, 1);
    Probe b("b", &log, 2);
    sim.add(&a);
    sim.add(&b);
    sim.run(2);
    ASSERT_EQ(log.size(), 4u);
    EXPECT_EQ(log[0], 1);
    EXPECT_EQ(log[1], 2);
    EXPECT_EQ(log[2], 1);
    EXPECT_EQ(log[3], 2);
}

TEST(Simulator, RunUntilStopsOnPredicate)
{
    Simulator sim;
    Probe p("p", nullptr, 0);
    sim.add(&p);
    const Cycle ran =
        sim.runUntil([&] { return p.ticks >= 7; }, 100);
    EXPECT_EQ(ran, 7u);
    EXPECT_EQ(sim.now(), 7u);
}

TEST(Simulator, RunUntilRespectsBudget)
{
    Simulator sim;
    Probe p("p", nullptr, 0);
    sim.add(&p);
    const Cycle ran = sim.runUntil([] { return false; }, 25);
    EXPECT_EQ(ran, 25u);
}

TEST(Simulator, AddNullPanics)
{
    Simulator sim;
    EXPECT_THROW(sim.add(nullptr), std::logic_error);
}

TEST(Simulator, RunZeroCyclesIsNoOp)
{
    Simulator sim;
    Probe p("p", nullptr, 0);
    sim.add(&p);
    sim.run(0);
    EXPECT_EQ(sim.now(), 0u);
    EXPECT_EQ(p.ticks, 0u);
    EXPECT_EQ(sim.cyclesExecuted(), 0u);
    EXPECT_EQ(sim.cyclesSkipped(), 0u);
}

TEST(Simulator, RunUntilZeroBudgetReturnsZero)
{
    Simulator sim;
    Probe p("p", nullptr, 0);
    sim.add(&p);
    const Cycle ran = sim.runUntil([] { return false; }, 0);
    EXPECT_EQ(ran, 0u);
    EXPECT_EQ(sim.now(), 0u);
    EXPECT_EQ(p.ticks, 0u);
}

TEST(Simulator, RunUntilPredTrueAtEntryRunsNothing)
{
    Simulator sim;
    Probe p("p", nullptr, 0);
    sim.add(&p);
    const Cycle ran = sim.runUntil([] { return true; }, 100);
    EXPECT_EQ(ran, 0u);
    EXPECT_EQ(sim.now(), 0u);
    EXPECT_EQ(p.ticks, 0u);
}

// -- fast-forward kernel mechanics ---------------------------------

TEST(Simulator, FastForwardSkipsIdleSpans)
{
    Simulator sim;
    IdleProbe p(10); // interesting only at multiples of 10
    sim.add(&p);
    sim.run(100);
    EXPECT_EQ(sim.now(), 100u);
    // Ticked at 0, 10, ..., 90; everything between was skipped.
    EXPECT_EQ(p.ticks, 10u);
    EXPECT_EQ(p.lastTick, 90u);
    EXPECT_EQ(sim.cyclesExecuted(), 10u);
    EXPECT_EQ(sim.cyclesSkipped(), 90u);
    EXPECT_EQ(sim.fastForwardJumps(), 10u);
    EXPECT_EQ(p.ffCycles, 90u);
    // Spans cover (tick+1, next wake) exactly, in order.
    ASSERT_EQ(p.spans.size(), 10u);
    EXPECT_EQ(p.spans.front(), (std::pair<Cycle, Cycle>{1, 10}));
    EXPECT_EQ(p.spans.back(), (std::pair<Cycle, Cycle>{91, 100}));
}

TEST(Simulator, NaiveModeNeverSkips)
{
    Simulator sim;
    sim.setFastForward(false);
    EXPECT_FALSE(sim.fastForwardEnabled());
    IdleProbe p(10);
    sim.add(&p);
    sim.run(100);
    EXPECT_EQ(p.ticks, 100u);
    EXPECT_EQ(sim.cyclesExecuted(), 100u);
    EXPECT_EQ(sim.cyclesSkipped(), 0u);
    EXPECT_EQ(sim.fastForwardJumps(), 0u);
    EXPECT_TRUE(p.spans.empty());
}

TEST(Simulator, ReactiveComponentClampsToRunEnd)
{
    Simulator sim;
    IdleProbe p(0); // kNoCycle: no self-scheduled work
    sim.add(&p);
    sim.run(50);
    EXPECT_EQ(sim.now(), 50u);
    EXPECT_EQ(p.ticks, 1u);
    EXPECT_EQ(sim.cyclesExecuted(), 1u);
    EXPECT_EQ(sim.cyclesSkipped(), 49u);
    ASSERT_EQ(p.spans.size(), 1u);
    EXPECT_EQ(p.spans[0], (std::pair<Cycle, Cycle>{1, 50}));
}

TEST(Simulator, EarliestHintAcrossComponentsWins)
{
    Simulator sim;
    IdleProbe slow(100);
    IdleProbe fast(7);
    sim.add(&slow);
    sim.add(&fast);
    sim.run(100);
    // The 7-stride component's wakes dominate the executed cycles:
    // 0, 7, 14, ..., 98 (15 wakes). The 100-stride component is due
    // only at cycle 0; per-component gating fast-forwards it through
    // every other cycle instead of ticking it alongside.
    EXPECT_EQ(fast.ticks, 15u);
    EXPECT_EQ(slow.ticks, 1u);
    // Tick or fast-forward, both components account all 100 cycles.
    EXPECT_EQ(fast.ticks + fast.ffCycles, 100u);
    EXPECT_EQ(slow.ticks + slow.ffCycles, 100u);
}

TEST(Simulator, RunUntilDoesNotJumpPastSatisfiedPredicate)
{
    Simulator sim;
    IdleProbe p(1000);
    sim.add(&p);
    // Pred becomes true after the first tick; the far wake hint must
    // not drag now() past the stopping cycle.
    const Cycle ran =
        sim.runUntil([&] { return p.ticks >= 1; }, 5000);
    EXPECT_EQ(ran, 1u);
    EXPECT_EQ(sim.now(), 1u);
    EXPECT_EQ(sim.cyclesSkipped(), 0u);
}

TEST(Simulator, RunUntilJumpLandsOnPredicateRecheck)
{
    Simulator sim;
    IdleProbe p(10);
    sim.add(&p);
    const Cycle ran = sim.runUntil([&] { return p.ticks >= 3; }, 5000);
    // Ticks at 0, 10, 20 — pred satisfied after the tick at 20, so
    // the loop stops at cycle 21 having skipped the idle gaps.
    EXPECT_EQ(p.ticks, 3u);
    EXPECT_EQ(ran, 21u);
    EXPECT_EQ(sim.now(), 21u);
    EXPECT_EQ(sim.cyclesSkipped(), 18u);
}

// -- watchdog ------------------------------------------------------

TEST(Simulator, WatchdogDisarmSurvivesStall)
{
    Simulator sim;
    Probe p("p", nullptr, 0);
    sim.add(&p);
    uint64_t progress = 0;
    sim.setWatchdog(10, [&] { return progress; });
    // Disarm before the stall window elapses; the stuck probe must
    // no longer kill the run.
    sim.setWatchdog(0, nullptr);
    sim.run(100);
    EXPECT_EQ(sim.now(), 100u);
}

TEST(Simulator, WatchdogRearmAfterDisarm)
{
    Simulator sim;
    Probe p("p", nullptr, 0);
    sim.add(&p);
    sim.setWatchdog(0, nullptr); // disarm while already disarmed: ok
    uint64_t progress = 0;
    sim.run(30); // stall-free: nothing armed
    sim.setWatchdog(20, [&] { return progress; });
    EXPECT_EXIT(sim.run(1000), ::testing::ExitedWithCode(1),
                "livelock");
}

TEST(Simulator, WatchdogArmedWithoutProbePanics)
{
    Simulator sim;
    EXPECT_THROW(sim.setWatchdog(5, nullptr), std::logic_error);
}

TEST(Simulator, WatchdogFiresAtSameCycleAcrossFastForwardJump)
{
    // A stalled run must die at the identical cycle whether the
    // kernel walked there or jumped there: the jump is capped at the
    // stall deadline and the landing cycle is re-checked.
    const auto stalledRun = [](bool fastForward) {
        Simulator sim;
        sim.setFastForward(fastForward);
        IdleProbe p(0); // wants to sleep forever
        sim.add(&p);
        uint64_t progress = 0;
        sim.setWatchdog(50, [&] { return progress; });
        sim.run(100000);
    };
    EXPECT_EXIT(stalledRun(false), ::testing::ExitedWithCode(1),
                "cycle 0\\.\\.50");
    EXPECT_EXIT(stalledRun(true), ::testing::ExitedWithCode(1),
                "cycle 0\\.\\.50");
}

TEST(Simulator, WatchdogProgressAllowsJumpBeyondWindow)
{
    Simulator sim;
    IdleProbe p(30);
    sim.add(&p);
    // Probe advances whenever the component ticks, so each wake
    // resets the stall clock and the run completes even though each
    // idle gap approaches the window.
    sim.setWatchdog(40, [&] { return p.ticks; });
    sim.run(300);
    EXPECT_EQ(sim.now(), 300u);
    EXPECT_EQ(p.ticks, 10u);
}

TEST(Request, TypeNames)
{
    using mem::ReqType;
    EXPECT_STREQ(mem::reqTypeName(ReqType::Read), "read");
    EXPECT_STREQ(mem::reqTypeName(ReqType::Write), "write");
    EXPECT_STREQ(mem::reqTypeName(ReqType::Prefetch), "prefetch");
    EXPECT_STREQ(mem::reqTypeName(ReqType::Dummy), "dummy");
}

TEST(Request, IsReadClassification)
{
    mem::MemRequest r;
    r.type = mem::ReqType::Read;
    EXPECT_TRUE(r.isRead());
    EXPECT_TRUE(r.isDemand());
    r.type = mem::ReqType::Prefetch;
    EXPECT_TRUE(r.isRead());
    EXPECT_FALSE(r.isDemand());
    r.type = mem::ReqType::Dummy;
    EXPECT_TRUE(r.isRead());
    r.type = mem::ReqType::Write;
    EXPECT_FALSE(r.isRead());
}

TEST(Request, ToStringContainsLocation)
{
    mem::MemRequest r;
    r.id = 7;
    r.domain = 3;
    r.addr = 0x1234;
    r.loc.rank = 2;
    r.loc.bank = 5;
    const std::string s = r.toString();
    EXPECT_NE(s.find("req7"), std::string::npos);
    EXPECT_NE(s.find("dom3"), std::string::npos);
    EXPECT_NE(s.find("r2"), std::string::npos);
    EXPECT_NE(s.find("b5"), std::string::npos);
}
