#include <gtest/gtest.h>

#include <vector>

#include "mem/request.hh"
#include "sim/simulator.hh"

using namespace memsec;

namespace {

class Probe : public Component
{
  public:
    explicit Probe(std::string name, std::vector<int> *log, int id)
        : Component(std::move(name)), log_(log), id_(id)
    {
    }

    void
    tick(Cycle now) override
    {
        lastTick = now;
        ++ticks;
        if (log_)
            log_->push_back(id_);
    }

    Cycle lastTick = 0;
    uint64_t ticks = 0;

  private:
    std::vector<int> *log_;
    int id_;
};

} // namespace

TEST(Simulator, RunAdvancesExactCycles)
{
    Simulator sim;
    Probe p("p", nullptr, 0);
    sim.add(&p);
    sim.run(10);
    EXPECT_EQ(sim.now(), 10u);
    EXPECT_EQ(p.ticks, 10u);
    EXPECT_EQ(p.lastTick, 9u);
    sim.run(5);
    EXPECT_EQ(sim.now(), 15u);
    EXPECT_EQ(p.ticks, 15u);
}

TEST(Simulator, ComponentsTickInRegistrationOrder)
{
    Simulator sim;
    std::vector<int> log;
    Probe a("a", &log, 1);
    Probe b("b", &log, 2);
    sim.add(&a);
    sim.add(&b);
    sim.run(2);
    ASSERT_EQ(log.size(), 4u);
    EXPECT_EQ(log[0], 1);
    EXPECT_EQ(log[1], 2);
    EXPECT_EQ(log[2], 1);
    EXPECT_EQ(log[3], 2);
}

TEST(Simulator, RunUntilStopsOnPredicate)
{
    Simulator sim;
    Probe p("p", nullptr, 0);
    sim.add(&p);
    const Cycle ran =
        sim.runUntil([&] { return p.ticks >= 7; }, 100);
    EXPECT_EQ(ran, 7u);
    EXPECT_EQ(sim.now(), 7u);
}

TEST(Simulator, RunUntilRespectsBudget)
{
    Simulator sim;
    Probe p("p", nullptr, 0);
    sim.add(&p);
    const Cycle ran = sim.runUntil([] { return false; }, 25);
    EXPECT_EQ(ran, 25u);
}

TEST(Simulator, AddNullPanics)
{
    Simulator sim;
    EXPECT_THROW(sim.add(nullptr), std::logic_error);
}

TEST(Request, TypeNames)
{
    using mem::ReqType;
    EXPECT_STREQ(mem::reqTypeName(ReqType::Read), "read");
    EXPECT_STREQ(mem::reqTypeName(ReqType::Write), "write");
    EXPECT_STREQ(mem::reqTypeName(ReqType::Prefetch), "prefetch");
    EXPECT_STREQ(mem::reqTypeName(ReqType::Dummy), "dummy");
}

TEST(Request, IsReadClassification)
{
    mem::MemRequest r;
    r.type = mem::ReqType::Read;
    EXPECT_TRUE(r.isRead());
    EXPECT_TRUE(r.isDemand());
    r.type = mem::ReqType::Prefetch;
    EXPECT_TRUE(r.isRead());
    EXPECT_FALSE(r.isDemand());
    r.type = mem::ReqType::Dummy;
    EXPECT_TRUE(r.isRead());
    r.type = mem::ReqType::Write;
    EXPECT_FALSE(r.isRead());
}

TEST(Request, ToStringContainsLocation)
{
    mem::MemRequest r;
    r.id = 7;
    r.domain = 3;
    r.addr = 0x1234;
    r.loc.rank = 2;
    r.loc.bank = 5;
    const std::string s = r.toString();
    EXPECT_NE(s.find("req7"), std::string::npos);
    EXPECT_NE(s.find("dom3"), std::string::npos);
    EXPECT_NE(s.find("r2"), std::string::npos);
    EXPECT_NE(s.find("b5"), std::string::npos);
}
