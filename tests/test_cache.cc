#include <gtest/gtest.h>

#include "cache/cache.hh"

using namespace memsec;
using namespace memsec::cache;

TEST(Cache, MissThenFillThenHit)
{
    Cache c(64 * 1024, 8);
    EXPECT_FALSE(c.access(0x1000, false).hit);
    c.fill(0x1000, false);
    EXPECT_TRUE(c.access(0x1000, false).hit);
    EXPECT_EQ(c.hits().value(), 1u);
    EXPECT_EQ(c.misses().value(), 1u);
}

TEST(Cache, GeometryDerived)
{
    Cache c(64 * 1024, 8);
    EXPECT_EQ(c.numSets(), 128u); // 1024 lines / 8 ways
    EXPECT_EQ(c.ways(), 8u);
}

TEST(Cache, LruEvictsOldest)
{
    Cache c(8 * kLineBytes, 8); // one set, 8 ways
    for (Addr i = 0; i < 8; ++i)
        c.fill(i * kLineBytes, false);
    // Touch line 0 so line 1 is LRU.
    c.access(0, false);
    const FillResult fr = c.fill(8 * kLineBytes, false);
    EXPECT_FALSE(fr.evictedDirty);
    EXPECT_TRUE(c.contains(0));
    EXPECT_FALSE(c.contains(1 * kLineBytes));
}

TEST(Cache, DirtyEvictionYieldsWritebackAddress)
{
    Cache c(8 * kLineBytes, 8);
    for (Addr i = 0; i < 8; ++i)
        c.fill(i * kLineBytes, false);
    c.access(2 * kLineBytes, true); // dirty line 2
    // Evict down to line 2 (touch everything else first).
    for (Addr i = 0; i < 8; ++i) {
        if (i != 2)
            c.access(i * kLineBytes, false);
    }
    const FillResult fr = c.fill(100 * kLineBytes, false);
    EXPECT_TRUE(fr.evictedDirty);
    EXPECT_EQ(fr.writebackAddr, 2 * kLineBytes);
}

TEST(Cache, StoreMarksDirty)
{
    Cache c(8 * kLineBytes, 8);
    c.fill(0, false);
    c.access(0, true);
    for (Addr i = 1; i < 8; ++i)
        c.fill(i * kLineBytes, false);
    const FillResult fr = c.fill(9 * kLineBytes, false);
    EXPECT_TRUE(fr.evictedDirty);
    EXPECT_EQ(fr.writebackAddr, 0u);
}

TEST(Cache, FillDirtyFlag)
{
    Cache c(8 * kLineBytes, 8);
    c.fill(0, true);
    for (Addr i = 1; i < 8; ++i)
        c.fill(i * kLineBytes, false);
    EXPECT_TRUE(c.fill(9 * kLineBytes, false).evictedDirty);
}

TEST(Cache, DoubleFillMergesDirty)
{
    Cache c(8 * kLineBytes, 8);
    c.fill(0, false);
    const FillResult fr = c.fill(0, true); // already present
    EXPECT_FALSE(fr.evictedDirty);
    for (Addr i = 1; i < 8; ++i)
        c.fill(i * kLineBytes, false);
    EXPECT_TRUE(c.fill(9 * kLineBytes, false).evictedDirty);
}

TEST(Cache, PrefetchedFlagConsumedOnFirstHit)
{
    Cache c(8 * kLineBytes, 8);
    c.fill(0, false, true);
    const AccessResult first = c.access(0, false);
    EXPECT_TRUE(first.hit);
    EXPECT_TRUE(first.prefetchHit);
    const AccessResult second = c.access(0, false);
    EXPECT_TRUE(second.hit);
    EXPECT_FALSE(second.prefetchHit);
}

TEST(Cache, MarkDirtyOnResidentLine)
{
    Cache c(8 * kLineBytes, 8);
    c.fill(0, false);
    c.markDirty(0);
    for (Addr i = 1; i < 8; ++i)
        c.fill(i * kLineBytes, false);
    EXPECT_TRUE(c.fill(9 * kLineBytes, false).evictedDirty);
}

TEST(Cache, SetIndexingSeparatesSets)
{
    Cache c(64 * 1024, 8); // 128 sets
    // Same tag bits, different sets: both resident.
    c.fill(0, false);
    c.fill(kLineBytes, false);
    EXPECT_TRUE(c.contains(0));
    EXPECT_TRUE(c.contains(kLineBytes));
}

TEST(Cache, InvalidGeometryFatal)
{
    EXPECT_EXIT(Cache(100, 8), ::testing::ExitedWithCode(1), "");
    EXPECT_EXIT(Cache(64 * 1024, 0), ::testing::ExitedWithCode(1), "");
}
