/**
 * @file
 * Unit anchors for the closed-form leakage bounds: the Gong–Kiyavash
 * FCFS rate must reproduce the textbook binary-entropy values, and
 * the work-conserving window bound must collapse to exactly zero
 * under a noninterference certificate, cap at the modulated secret
 * entropy, and scale to the 533333 b/s figure fig_leakage prints for
 * the paper's channel shape.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "analysis/leakage_bounds.hh"
#include "leakage/channel.hh"

using namespace memsec;
using namespace memsec::analysis;

TEST(BinaryEntropy, Anchors)
{
    EXPECT_DOUBLE_EQ(binaryEntropy(0.0), 0.0);
    EXPECT_DOUBLE_EQ(binaryEntropy(1.0), 0.0);
    EXPECT_DOUBLE_EQ(binaryEntropy(0.5), 1.0);
    // H_b(1/4) = 2 - (3/4) log2 3.
    EXPECT_NEAR(binaryEntropy(0.25), 2.0 - 0.75 * std::log2(3.0),
                1e-12);
}

TEST(BinaryEntropy, SymmetricAndConcave)
{
    for (double p : {0.1, 0.2, 0.3, 0.4}) {
        EXPECT_NEAR(binaryEntropy(p), binaryEntropy(1.0 - p), 1e-12);
        // Strictly increasing towards 1/2.
        EXPECT_LT(binaryEntropy(p), binaryEntropy(p + 0.05));
        EXPECT_LT(binaryEntropy(p), 1.0);
    }
}

TEST(FcfsRate, EqualsSourceEntropy)
{
    // Gong–Kiyavash: with deterministic unit service the attacker
    // recovers the Bernoulli arrival sequence exactly, so the
    // leakage rate IS the source entropy — maximal at lambda = 1/2.
    EXPECT_DOUBLE_EQ(fcfsLeakageRateBitsPerSlot(0.5), 1.0);
    EXPECT_DOUBLE_EQ(fcfsLeakageRateBitsPerSlot(0.0), 0.0);
    EXPECT_GT(fcfsLeakageRateBitsPerSlot(0.3),
              fcfsLeakageRateBitsPerSlot(0.1));
}

TEST(WindowBound, CertificateCollapsesToExactlyZero)
{
    QueueModel m; // any shape: the certificate wins regardless
    const LeakageBound b = boundFor(m, /*certified=*/true);
    EXPECT_TRUE(b.certified);
    EXPECT_EQ(b.maxDisplacement, 0u);
    EXPECT_EQ(b.bitsPerWindow, 0.0);
    EXPECT_EQ(b.bitsPerSecond, 0.0);
    EXPECT_NE(b.basis.find("certificate"), std::string::npos);
}

TEST(WindowBound, UncertifiedIsStrictlyPositive)
{
    const LeakageBound b = boundFor(QueueModel{}, false);
    EXPECT_FALSE(b.certified);
    EXPECT_GT(b.maxDisplacement, 0u);
    EXPECT_GT(b.bitsPerWindow, 0.0);
    EXPECT_GT(b.bitsPerSecond, 0.0);
}

TEST(WindowBound, SecretEntropyCaps)
{
    // The window admits log2(1+1500) ~ 10.6 state bits, but the
    // harness only modulates 1 bit/window — the bound must not claim
    // more than the secret carries.
    QueueModel m;
    m.windowCycles = 1500;
    m.secretBitsPerWindow = 1.0;
    const LeakageBound b = boundFor(m, false);
    EXPECT_DOUBLE_EQ(b.bitsPerWindow, 1.0);

    m.secretBitsPerWindow = 64.0; // now the state count caps instead
    const LeakageBound wide = boundFor(m, false);
    EXPECT_NEAR(wide.bitsPerWindow,
                std::log2(1.0 + wide.maxDisplacement), 1e-12);
    EXPECT_LT(wide.bitsPerWindow, 64.0);
}

TEST(WindowBound, DisplacementCappedByBacklogAndWindow)
{
    // Tiny queues: the co-runners simply cannot displace a full
    // window, so backlog service becomes the binding cap.
    QueueModel m;
    m.numDomains = 2;
    m.queueCapacity = 4;
    m.serviceCycles = 43;
    m.windowCycles = 1500;
    const LeakageBound b = boundFor(m, false);
    EXPECT_EQ(b.maxDisplacement, 1u * 4u * 43u);

    // Huge queues: the window itself is the cap.
    m.queueCapacity = 1024;
    EXPECT_EQ(boundFor(m, false).maxDisplacement, 1500u);
}

TEST(WindowBound, FigLeakageAnchor533333BitsPerSecond)
{
    // fig_leakage's empirical shape: 8 domains, capacity-16 queues,
    // window 1500 on the 800 MHz bus. Backlog (7*16*43 = 4816)
    // exceeds the window, so D_max = 1500, the secret caps the rate
    // at 1 bit/window, and 1 * 800e6 / 1500 = 533333.3 b/s — the
    // bound column the leaky FR-FCFS rows must sit under.
    QueueModel m;
    m.numDomains = 8;
    m.queueCapacity = 16;
    m.windowCycles = 1500;
    const LeakageBound b = boundFor(m, false);
    EXPECT_EQ(b.maxDisplacement, 1500u);
    EXPECT_DOUBLE_EQ(b.bitsPerWindow, 1.0);
    EXPECT_NEAR(b.bitsPerSecond, leakage::kBusHz / 1500.0, 1e-6);
    EXPECT_NEAR(b.bitsPerSecond, 533333.333, 0.01);
}
