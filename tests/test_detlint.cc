/**
 * @file
 * Each detlint rule must fire on a minimal synthetic reproduction,
 * stay quiet on the deterministic equivalent, and honour the
 * allowlist — including the mandatory-justification format. The last
 * test runs the real linter over the real src/ tree with the real
 * checked-in allowlist: the tier-1 suite itself enforces the
 * determinism gate.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>

#include "detlint.hh"

using namespace memsec::detlint;

namespace {

bool
hasRule(const std::vector<Finding> &fs, const std::string &rule)
{
    return std::any_of(fs.begin(), fs.end(), [&](const Finding &f) {
        return f.rule == rule;
    });
}

unsigned
lineOf(const std::vector<Finding> &fs, const std::string &rule)
{
    for (const Finding &f : fs)
        if (f.rule == rule)
            return f.line;
    return 0;
}

} // namespace

TEST(Detlint, UnorderedIterationFlagsRangeFor)
{
    const std::string src = R"(#include <unordered_map>
void f() {
    std::unordered_map<int, int> m;
    for (const auto &kv : m)
        use(kv);
}
)";
    const auto fs = lintSource("x.cc", src);
    ASSERT_TRUE(hasRule(fs, "unordered-iteration"));
    EXPECT_EQ(lineOf(fs, "unordered-iteration"), 4u);
}

TEST(Detlint, UnorderedIterationFlagsBeginCall)
{
    const std::string src = R"(
struct S {
    std::unordered_set<int> live_;
    void dump() { emit(live_.begin(), live_.end()); }
};
)";
    EXPECT_TRUE(hasRule(lintSource("x.hh", src),
                        "unordered-iteration"));
}

TEST(Detlint, UnorderedLookupWithoutIterationIsClean)
{
    // Lookup and insertion are order-independent; only iteration is
    // hash-seed dependent.
    const std::string src = R"(
std::unordered_map<int, int> m;
void f() { m[3] = 4; if (m.count(5)) m.erase(5); }
)";
    EXPECT_FALSE(hasRule(lintSource("x.cc", src),
                         "unordered-iteration"));
}

TEST(Detlint, OrderedMapIterationIsClean)
{
    const std::string src = R"(
std::map<int, int> m;
void f() { for (const auto &kv : m) use(kv); }
)";
    EXPECT_FALSE(hasRule(lintSource("x.cc", src),
                         "unordered-iteration"));
}

TEST(Detlint, WallClockFlagsChronoNow)
{
    const std::string src =
        "auto t = std::chrono::steady_clock::now();\n";
    const auto fs = lintSource("x.cc", src);
    ASSERT_TRUE(hasRule(fs, "wall-clock"));
    EXPECT_EQ(lineOf(fs, "wall-clock"), 1u);
}

TEST(Detlint, WallClockFlagsPosixClocks)
{
    EXPECT_TRUE(hasRule(
        lintSource("x.cc", "gettimeofday(&tv, nullptr);\n"),
        "wall-clock"));
    EXPECT_TRUE(hasRule(
        lintSource("x.cc", "clock_gettime(CLOCK_MONOTONIC, &ts);\n"),
        "wall-clock"));
}

TEST(Detlint, RawRandomFlagsEnginesOutsideWrapper)
{
    EXPECT_TRUE(
        hasRule(lintSource("src/sched/foo.cc", "int x = rand();\n"),
                "raw-random"));
    EXPECT_TRUE(hasRule(lintSource("src/sched/foo.cc",
                                   "std::random_device rd;\n"),
                        "raw-random"));
    EXPECT_TRUE(hasRule(lintSource("src/sched/foo.cc",
                                   "std::mt19937_64 gen(42);\n"),
                        "raw-random"));
}

TEST(Detlint, RawRandomSanctionedInUtilRandom)
{
    // The seeded wrapper is the one legitimate home for raw engines.
    EXPECT_FALSE(hasRule(lintSource("src/util/random.cc",
                                    "std::mt19937_64 gen_;\n"),
                         "raw-random"));
}

TEST(Detlint, PointerKeyedMapFlagsMapAndSet)
{
    EXPECT_TRUE(hasRule(
        lintSource("x.hh", "std::map<Request *, int> inflight;\n"),
        "pointer-keyed-map"));
    EXPECT_TRUE(hasRule(
        lintSource("x.hh",
                   "std::unordered_map<Node *, Info> info;\n"),
        "pointer-keyed-map"));
    EXPECT_TRUE(
        hasRule(lintSource("x.hh", "std::set<Bank *> busy;\n"),
                "pointer-keyed-map"));
    // Pointer as VALUE is fine: ordering comes from the key.
    EXPECT_FALSE(hasRule(
        lintSource("x.hh", "std::map<int, Request *> byId;\n"),
        "pointer-keyed-map"));
}

TEST(Detlint, UninitMemberFlagsBareScalarInStruct)
{
    const std::string src = R"(
struct SlotState {
    unsigned l;
    Cycle at = 0;
    bool write;
};
)";
    const auto fs = lintSource("x.hh", src);
    ASSERT_TRUE(hasRule(fs, "uninit-member"));
    EXPECT_EQ(std::count_if(fs.begin(), fs.end(),
                            [](const Finding &f) {
                                return f.rule == "uninit-member";
                            }),
              2);
}

TEST(Detlint, UninitMemberIgnoresLocalsAndInitialized)
{
    const std::string src = R"(
struct S {
    unsigned a = 0;
    void f() {
        unsigned local;
        use(local);
    }
};
unsigned fileScope;
)";
    EXPECT_FALSE(hasRule(lintSource("x.hh", src), "uninit-member"));
}

TEST(Detlint, TickWallClockFlagsDirectClockInTickBody)
{
    const std::string src = R"(
struct C : Component {
    void tick(Cycle now) override {
        start_ = std::chrono::steady_clock::now();
    }
};
)";
    const auto fs = lintSource("x.cc", src);
    EXPECT_TRUE(hasRule(fs, "tick-wall-clock"));
    EXPECT_EQ(lineOf(fs, "tick-wall-clock"), 4u);
}

TEST(Detlint, TickWallClockFlagsDerivedValueInTickBody)
{
    // The clock read happens elsewhere; tick() keys state on the
    // derived value. The skipped-tick contract makes this a bug even
    // when the clock call itself lives outside tick().
    const std::string src = R"(
void C::setup() {
    wallStart = std::chrono::steady_clock::now();
}
void C::tick(Cycle now) {
    budget_ = wallStart + grace_;
}
)";
    const auto fs = lintSource("x.cc", src);
    EXPECT_TRUE(hasRule(fs, "tick-wall-clock"));
    EXPECT_EQ(lineOf(fs, "tick-wall-clock"), 6u);
}

TEST(Detlint, TickWallClockIgnoresCleanTickAndCallSites)
{
    // A tick body keyed purely on the simulated cycle is clean, and
    // `c->tick(now)` call sites must not open a tracked body.
    const std::string src = R"(
void C::tick(Cycle now) {
    if (now % l_ == 0)
        issueSlot(now);
}
void Simulator::step() {
    for (Component *c : components_)
        c->tick(now_);
}
)";
    EXPECT_FALSE(hasRule(lintSource("x.cc", src), "tick-wall-clock"));
}

TEST(Detlint, TickWallClockOutsideTickIsOnlyWallClock)
{
    // Clock use outside any tick body stays the generic wall-clock
    // finding; the tick-specific rule must not fire.
    const std::string src = R"(
void report() {
    auto t = std::chrono::steady_clock::now();
}
)";
    const auto fs = lintSource("x.cc", src);
    EXPECT_TRUE(hasRule(fs, "wall-clock"));
    EXPECT_FALSE(hasRule(fs, "tick-wall-clock"));
}

TEST(Detlint, CommentsAndStringsNeverFire)
{
    const std::string src = R"(
// for (auto &kv : someUnorderedThing) — prose, not code
/* std::chrono::steady_clock::now() in a block comment */
const char *msg = "rand() inside a string literal";
)";
    EXPECT_TRUE(lintSource("x.cc", src).empty());
}

TEST(Detlint, FindingsSortedAndFormatted)
{
    const std::string src = "int a = rand();\n"
                            "auto t = std::chrono::steady_clock::now();\n";
    const auto fs = lintSource("x.cc", src);
    ASSERT_EQ(fs.size(), 2u);
    EXPECT_LE(fs[0].line, fs[1].line);
    EXPECT_NE(fs[0].toString().find("x.cc:1: [raw-random]"),
              std::string::npos);
}

// ---- Allowlist semantics. ----

TEST(DetlintAllowlist, SuppressesByPathRuleAndSubstring)
{
    const Allowlist al = Allowlist::fromString(
        "harness/campaign.cc:wall-clock:steady_clock  # narration\n");
    Finding hit{"/repo/src/harness/campaign.cc", 97, "wall-clock",
                "auto t = std::chrono::steady_clock::now();"};
    EXPECT_TRUE(al.allows(hit));

    Finding wrongRule = hit;
    wrongRule.rule = "raw-random";
    EXPECT_FALSE(al.allows(wrongRule));

    Finding wrongFile = hit;
    wrongFile.file = "/repo/src/sched/fs.cc";
    EXPECT_FALSE(al.allows(wrongFile));

    Finding wrongLine = hit;
    wrongLine.excerpt = "gettimeofday(&tv, nullptr);";
    EXPECT_FALSE(al.allows(wrongLine));
}

TEST(DetlintAllowlist, WildcardRuleAndCommentsAndBlanks)
{
    const Allowlist al = Allowlist::fromString(
        "# header comment\n"
        "\n"
        "legacy/gen.cc:*  # generated file, exempt wholesale\n");
    EXPECT_EQ(al.size(), 1u);
    EXPECT_TRUE(al.allows(
        Finding{"x/legacy/gen.cc", 1, "raw-random", "rand()"}));
    EXPECT_TRUE(al.allows(
        Finding{"x/legacy/gen.cc", 2, "wall-clock", "now()"}));
}

TEST(DetlintAllowlist, JustificationIsMandatory)
{
    EXPECT_THROW(Allowlist::fromString("a.cc:wall-clock\n"),
                 std::runtime_error);
    EXPECT_THROW(Allowlist::fromString("a.cc:wall-clock   #   \n"),
                 std::runtime_error);
}

TEST(DetlintAllowlist, UnknownRuleRejected)
{
    EXPECT_THROW(
        Allowlist::fromString("a.cc:no-such-rule  # oops\n"),
        std::runtime_error);
}

TEST(DetlintAllowlist, MalformedEntryRejected)
{
    EXPECT_THROW(Allowlist::fromString("just-a-path  # why\n"),
                 std::runtime_error);
}

// ---- The real gate: src/ is clean under the checked-in allowlist. ----

TEST(DetlintGate, SourceTreeCleanUnderCheckedInAllowlist)
{
    const std::string root = MEMSEC_SOURCE_DIR;
    const Allowlist al =
        Allowlist::fromFile(root + "/tools/detlint/allowlist.txt");
    const auto fs = lintTree(root + "/src", al);
    for (const Finding &f : fs)
        ADD_FAILURE() << f.toString();
    EXPECT_TRUE(fs.empty());
}

TEST(DetlintGate, AllowlistEntriesAreLoadBearing)
{
    // Without the allowlist the tree must NOT be clean — otherwise
    // the checked-in entries are stale and should be deleted.
    const std::string root = MEMSEC_SOURCE_DIR;
    const auto fs = lintTree(root + "/src", Allowlist());
    EXPECT_FALSE(fs.empty());
    EXPECT_TRUE(hasRule(fs, "wall-clock"));
}
