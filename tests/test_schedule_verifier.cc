/**
 * @file
 * The static schedule verifier must independently reproduce every
 * pipeline constant the paper derives — each gap minimal (verify(l)
 * clean, verify(l-1) a concrete conflicting command pair with cycle
 * offsets) — and agree with the PipelineSolver on every (part,
 * reference, partitioning) combination, since both consume the same
 * shared rule table through entirely different checking logic.
 */

#include <gtest/gtest.h>

#include "analysis/schedule_verifier.hh"
#include "core/pipeline_solver.hh"

using namespace memsec;
using analysis::ScheduleVerifier;
using analysis::VerifierConfig;
using analysis::VerifyResult;
using core::PartitionLevel;
using core::PeriodicRef;
using core::PipelineSolver;

namespace {

VerifierConfig
cfgOf(PeriodicRef ref, PartitionLevel level)
{
    VerifierConfig cfg;
    cfg.ref = ref;
    cfg.level = level;
    cfg.numDomains = 8;
    cfg.numRanks = 8;
    return cfg;
}

ScheduleVerifier
paperVerifier(PeriodicRef ref, PartitionLevel level)
{
    return ScheduleVerifier(dram::TimingParams::ddr3_1600_4gb(),
                            cfgOf(ref, level));
}

} // namespace

// ---- The paper's five Table gaps, each proven minimal: the verifier
// accepts l and rejects l-1 with a concrete conflicting pair. ----

struct PaperGap
{
    PeriodicRef ref;
    PartitionLevel level;
    unsigned l;
};

class PaperGaps : public ::testing::TestWithParam<PaperGap>
{
};

TEST_P(PaperGaps, MinimalFeasibleMatchesPaper)
{
    const auto &p = GetParam();
    const ScheduleVerifier v = paperVerifier(p.ref, p.level);
    EXPECT_EQ(v.minimalFeasible(), p.l);
}

TEST_P(PaperGaps, AcceptsLRejectsLMinusOneWithConcretePair)
{
    const auto &p = GetParam();
    const ScheduleVerifier v = paperVerifier(p.ref, p.level);

    const VerifyResult good = v.verify(p.l);
    EXPECT_TRUE(good.ok) << good.summary();
    EXPECT_FALSE(good.hasConflict);
    EXPECT_GT(good.slotsChecked, 0u);
    EXPECT_GT(good.pairsChecked, 0u);

    const VerifyResult bad = v.verify(p.l - 1);
    EXPECT_FALSE(bad.ok);
    ASSERT_TRUE(bad.hasConflict) << bad.summary();
    // The report names a rule and two concrete command cycles.
    const auto &c = bad.conflict;
    EXPECT_LT(c.earlierSlot, c.laterSlot);
    EXPECT_LT(c.gap, c.need);
    EXPECT_NE(std::string(dram::ruleName(c.rule)), "");
    const std::string text = c.toString();
    EXPECT_NE(text.find("violated between slot"), std::string::npos);
    EXPECT_NE(text.find("cycle"), std::string::npos);
}

INSTANTIATE_TEST_SUITE_P(
    AllFiveGaps, PaperGaps,
    ::testing::Values(
        PaperGap{PeriodicRef::Data, PartitionLevel::Rank, 7},
        PaperGap{PeriodicRef::Ras, PartitionLevel::Rank, 12},
        PaperGap{PeriodicRef::Ras, PartitionLevel::Bank, 15},
        PaperGap{PeriodicRef::Data, PartitionLevel::Bank, 21},
        PaperGap{PeriodicRef::Ras, PartitionLevel::None, 43}));

// ---- Cross-validation: solver inequalities vs hyperperiod unroll
// must agree everywhere, for every DRAM part in the repo. ----

struct CrossParam
{
    const char *partName;
    dram::TimingParams (*make)();
};

class CrossValidate : public ::testing::TestWithParam<CrossParam>
{
};

TEST_P(CrossValidate, VerifierAgreesWithSolverEverywhere)
{
    const dram::TimingParams tp = GetParam().make();
    const PipelineSolver solver(tp);
    for (PartitionLevel level :
         {PartitionLevel::Rank, PartitionLevel::Bank,
          PartitionLevel::None}) {
        for (PeriodicRef ref :
             {PeriodicRef::Data, PeriodicRef::Ras, PeriodicRef::Cas}) {
            const auto sol = solver.solve(ref, level);
            const ScheduleVerifier v(tp, cfgOf(ref, level));
            const unsigned lv = v.minimalFeasible();
            ASSERT_TRUE(sol.feasible)
                << GetParam().partName << " "
                << core::periodicRefName(ref);
            EXPECT_EQ(lv, sol.l)
                << GetParam().partName << " "
                << core::periodicRefName(ref) << " "
                << core::partitionLevelName(level);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllParts, CrossValidate,
    ::testing::Values(
        CrossParam{"ddr3_1600", &dram::TimingParams::ddr3_1600_4gb},
        CrossParam{"ddr3_2133", &dram::TimingParams::ddr3_2133},
        CrossParam{"ddr4_2400", &dram::TimingParams::ddr4_2400}));

// ---- Rank-partitioned l=6 collides on the command bus; the report
// carries the exact colliding cycles. ----

TEST(ScheduleVerifier, RankDataSixReportsCommandBusCollision)
{
    const ScheduleVerifier v =
        paperVerifier(PeriodicRef::Data, PartitionLevel::Rank);
    const VerifyResult r = v.verify(6);
    ASSERT_TRUE(r.hasConflict);
    EXPECT_EQ(r.conflict.rule, dram::RuleId::CmdBus);
    EXPECT_EQ(r.conflict.earlierCycle, r.conflict.laterCycle);
    EXPECT_EQ(r.conflict.gap, 0);
    EXPECT_EQ(r.conflict.need, 1);
}

// ---- Hyperperiod structure. ----

TEST(ScheduleVerifier, HyperperiodIsLcmOfFrameAndTurnaround)
{
    const ScheduleVerifier v =
        paperVerifier(PeriodicRef::Data, PartitionLevel::Rank);
    // 8 domains at l=7: frame 56, turnaround period 14, lcm 56.
    EXPECT_EQ(v.hyperperiod(7), 56u);
    // Odd domain count: frame 7*7=49, lcm(49, 14) = 98.
    VerifierConfig cfg = cfgOf(PeriodicRef::Data, PartitionLevel::Rank);
    cfg.numDomains = 7;
    const ScheduleVerifier v7(dram::TimingParams::ddr3_1600_4gb(), cfg);
    EXPECT_EQ(v7.hyperperiod(7), 98u);
}

TEST(ScheduleVerifier, HyperperiodIncludesRefreshInterval)
{
    VerifierConfig cfg = cfgOf(PeriodicRef::Data, PartitionLevel::Rank);
    cfg.refresh = true;
    const ScheduleVerifier v(dram::TimingParams::ddr3_1600_4gb(), cfg);
    // lcm(56, 14, 6240) = 43680.
    EXPECT_EQ(v.hyperperiod(7), 43680u);
}

// ---- Refresh epochs: the deterministic blackout keeps every command
// clear of the REF burst over a whole hyperperiod. ----

TEST(ScheduleVerifier, RefreshEpochsVerifiedOverHyperperiod)
{
    for (PaperGap p :
         {PaperGap{PeriodicRef::Data, PartitionLevel::Rank, 7},
          PaperGap{PeriodicRef::Ras, PartitionLevel::Bank, 15},
          PaperGap{PeriodicRef::Ras, PartitionLevel::None, 43}}) {
        VerifierConfig cfg = cfgOf(p.ref, p.level);
        cfg.refresh = true;
        const ScheduleVerifier v(dram::TimingParams::ddr3_1600_4gb(),
                                 cfg);
        const VerifyResult r = v.verify(p.l);
        EXPECT_TRUE(r.ok) << r.summary();
        EXPECT_GE(r.refreshEpochsChecked, 1u);
    }
}

// ---- Conflict reports are human-readable (regression): each side
// names its owning domain, the rule-anchored command edge, and the
// frame-relative offset, so a collision can be located in the
// repeating template without re-running the verifier. ----

TEST(ConflictReportText, NamesDomainsEdgesAndFrameOffsets)
{
    const ScheduleVerifier v =
        paperVerifier(PeriodicRef::Data, PartitionLevel::Rank);
    const VerifyResult bad = v.verify(6); // one below the l=7 minimum
    ASSERT_TRUE(bad.hasConflict) << bad.summary();
    const auto &c = bad.conflict;

    // Structured fields are populated, not defaulted.
    EXPECT_NE(c.earlierDomain, analysis::ConflictReport::kNoDomain);
    EXPECT_NE(c.laterDomain, analysis::ConflictReport::kNoDomain);
    EXPECT_LE(c.earlierFrameOffset, c.earlierCycle);
    EXPECT_LE(c.laterFrameOffset, c.laterCycle);
    EXPECT_FALSE(c.againstRefreshEpoch);

    const std::string text = c.toString();
    EXPECT_NE(text.find("domain"), std::string::npos) << text;
    EXPECT_NE(text.find("frame offset"), std::string::npos) << text;
    // Both rule-anchored edges are spelled by name (ACT/CAS/DATA).
    EXPECT_NE(text.find(dram::cmdEdgeName(c.fromEdge)),
              std::string::npos)
        << text;
    EXPECT_NE(text.find(dram::cmdEdgeName(c.toEdge)),
              std::string::npos)
        << text;
    // The long-standing substrings older tooling greps for survive.
    EXPECT_NE(text.find("violated between slot"), std::string::npos);
    EXPECT_NE(text.find("gap"), std::string::npos);
}

TEST(ConflictReportText, RefreshConflictNamesTheEpoch)
{
    dram::TimingParams tp = dram::TimingParams::ddr3_1600_4gb();
    tp.refi = 300; // cannot fit pause + margin + one frame
    VerifierConfig cfg = cfgOf(PeriodicRef::Data, PartitionLevel::Rank);
    cfg.refresh = true;
    const ScheduleVerifier v(tp, cfg);
    const VerifyResult r = v.verify(7);
    ASSERT_TRUE(r.hasConflict) << r.summary();
    ASSERT_TRUE(r.conflict.againstRefreshEpoch);
    EXPECT_EQ(r.conflict.laterDomain,
              analysis::ConflictReport::kNoDomain);
    const std::string text = r.conflict.toString();
    EXPECT_NE(text.find("refresh epoch at cycle"), std::string::npos)
        << text;
    // The slot side still carries domain + frame-offset context.
    EXPECT_NE(text.find("domain"), std::string::npos) << text;
    EXPECT_NE(text.find("frame offset"), std::string::npos) << text;
}

TEST(ScheduleVerifier, TooShortRefiIsRejectedAsRetentionConflict)
{
    dram::TimingParams tp = dram::TimingParams::ddr3_1600_4gb();
    // An epoch needs margin + pause + one frame; 300 cycles cannot
    // fit pause = ranks + tRFC = 216 plus margin and a 56-cycle frame.
    tp.refi = 300;
    VerifierConfig cfg = cfgOf(PeriodicRef::Data, PartitionLevel::Rank);
    cfg.refresh = true;
    const ScheduleVerifier v(tp, cfg);
    const VerifyResult r = v.verify(7);
    ASSERT_TRUE(r.hasConflict);
    EXPECT_EQ(r.conflict.rule, dram::RuleId::Refresh);
}

// ---- Triple alternation (Section 4.3): same-group slots are 3l >= 43
// apart, so l = 15 carries unpartitioned banks; a group factor of 2
// (2l = 30 < 43) provably does not. ----

TEST(ScheduleVerifier, TripleAlternationVerifiesStatically)
{
    VerifierConfig cfg = cfgOf(PeriodicRef::Ras, PartitionLevel::Bank);
    cfg.bankGroups = 3;
    const ScheduleVerifier v(dram::TimingParams::ddr3_1600_4gb(), cfg);
    const VerifyResult r = v.verify(15);
    EXPECT_TRUE(r.ok) << r.summary();
}

TEST(ScheduleVerifier, DoubleAlternationFailsSameBankReuse)
{
    VerifierConfig cfg = cfgOf(PeriodicRef::Ras, PartitionLevel::Bank);
    cfg.bankGroups = 2;
    const ScheduleVerifier v(dram::TimingParams::ddr3_1600_4gb(), cfg);
    const VerifyResult r = v.verify(15);
    ASSERT_TRUE(r.hasConflict) << r.summary();
    EXPECT_TRUE(r.conflict.rule == dram::RuleId::ActToActRdA ||
                r.conflict.rule == dram::RuleId::ActToActWrA ||
                r.conflict.rule == dram::RuleId::Rc)
        << r.summary();
}

TEST(ScheduleVerifier, PhantomPadSlotKeepsGroupRotationSound)
{
    // 9 domains x 3 groups: 9 % 3 == 0 forces a phantom pad slot,
    // exactly as FsScheduler inserts one.
    VerifierConfig cfg = cfgOf(PeriodicRef::Ras, PartitionLevel::Bank);
    cfg.numDomains = 9;
    cfg.bankGroups = 3;
    const ScheduleVerifier v(dram::TimingParams::ddr3_1600_4gb(), cfg);
    const VerifyResult r = v.verify(15);
    EXPECT_TRUE(r.ok) << r.summary();
    // Frame is 10 slots, one of them a phantom.
    EXPECT_EQ(r.hyperperiod % (10 * 15), 0u);
}

// ---- The dynamically-guarded hazard boundary matches the solver's
// Section 7 sensitivity analysis. ----

TEST(ScheduleVerifier, DomainReuseHazardMatchesSolver)
{
    const PipelineSolver solver(dram::TimingParams::ddr3_1600_4gb());
    for (unsigned n = 1; n <= 16; ++n) {
        VerifierConfig cfg =
            cfgOf(PeriodicRef::Data, PartitionLevel::Rank);
        cfg.numDomains = n;
        const ScheduleVerifier v(dram::TimingParams::ddr3_1600_4gb(),
                                 cfg);
        EXPECT_EQ(v.domainReuseHazard(7),
                  solver.rankPartSameBankHazard(n, 7))
            << n;
    }
}
