#include <gtest/gtest.h>

#include <stdexcept>

#include "util/logging.hh"

using namespace memsec;

TEST(Logging, FormatSubstitutesPlaceholders)
{
    EXPECT_EQ(detail::format("a {} b {} c", 1, "x"), "a 1 b x c");
    EXPECT_EQ(detail::format("no placeholders"), "no placeholders");
    EXPECT_EQ(detail::format("{}{}", 1, 2), "12");
}

TEST(Logging, FormatExtraPlaceholdersKeptLiteral)
{
    EXPECT_EQ(detail::format("x {} y {}", 5), "x 5 y {}");
}

TEST(Logging, PanicThrowsLogicError)
{
    EXPECT_THROW(panic("boom {}", 42), std::logic_error);
}

TEST(Logging, PanicIfConditionTrue)
{
    EXPECT_THROW(panic_if(1 + 1 == 2, "always"), std::logic_error);
    EXPECT_NO_THROW(panic_if(false, "never"));
}

TEST(Logging, PanicMessageContainsFormattedText)
{
    try {
        panic("value was {}", 99);
        FAIL() << "panic did not throw";
    } catch (const std::logic_error &e) {
        EXPECT_NE(std::string(e.what()).find("value was 99"),
                  std::string::npos);
    }
}

TEST(Logging, FatalExits)
{
    EXPECT_EXIT(fatal("bad config {}", "key"),
                ::testing::ExitedWithCode(1), "bad config key");
}

TEST(Logging, QuietSuppressesNothingFatal)
{
    setQuiet(true);
    EXPECT_TRUE(isQuiet());
    // warn/inform are suppressed silently; panic must still throw.
    warn("hidden {}", 1);
    inform("hidden {}", 2);
    EXPECT_THROW(panic("still fatal"), std::logic_error);
    setQuiet(false);
    EXPECT_FALSE(isQuiet());
}
