/**
 * @file
 * Multi-channel operation (the paper's 32-core / 4-channel target
 * system): domains are spread over channels and rank-partitioned
 * within their channel; each channel runs its own FS pipeline.
 */

#include <gtest/gtest.h>

#include <set>

#include "core/noninterference.hh"
#include "harness/campaign.hh"
#include "harness/experiment.hh"
#include "mem/address_map.hh"

using namespace memsec;
using namespace memsec::harness;
using namespace memsec::mem;

TEST(MultiChannel, RankPartitionSpreadsDomainsOverChannels)
{
    dram::Geometry geo;
    geo.channels = 4;
    AddressMap m(geo, Partition::Rank, Interleave::ClosePage, 32);
    // 8 domains per channel, one private rank each.
    std::set<std::pair<unsigned, unsigned>> seen; // (channel, rank)
    for (DomainId d = 0; d < 32; ++d) {
        EXPECT_EQ(m.channelOf(d), d % 4);
        ASSERT_EQ(m.ranksOf(d).size(), 1u);
        EXPECT_TRUE(
            seen.insert({m.channelOf(d), m.ranksOf(d)[0]}).second)
            << "domain " << d << " shares a (channel, rank)";
    }
    EXPECT_EQ(seen.size(), 32u);
}

TEST(MultiChannel, DecodeStaysOnOwnChannel)
{
    dram::Geometry geo;
    geo.channels = 4;
    AddressMap m(geo, Partition::Rank, Interleave::ClosePage, 32);
    for (DomainId d = 0; d < 32; ++d) {
        for (Addr a : {0ull, 1ull << 20, 123456789ull})
            EXPECT_EQ(m.decode(d, a).channel, d % 4);
    }
}

TEST(MultiChannel, IndivisibleDomainCountFatal)
{
    dram::Geometry geo;
    geo.channels = 4;
    EXPECT_EXIT(AddressMap(geo, Partition::Rank,
                           Interleave::ClosePage, 30),
                ::testing::ExitedWithCode(1), "divisible");
}

namespace {

Config
targetConfig(const std::string &scheme, const std::string &workload)
{
    Config c = defaultConfig();
    c.merge(schemeConfig(scheme));
    c.set("dram.channels", 4);
    c.set("cores", 32);
    c.set("workload", workload);
    c.set("sim.warmup", 2000);
    c.set("sim.measure", 15000);
    return c;
}

} // namespace

TEST(MultiChannel, TargetSystemRunsCleanUnderFs)
{
    // 32 cores, 4 channels, FS per channel; the timing checker panics
    // on any cross-channel bookkeeping error.
    const auto r = runExperiment(targetConfig("fs_rp", "milc"));
    ASSERT_EQ(r.ipc.size(), 32u);
    double total = 0;
    for (double v : r.ipc)
        total += v;
    EXPECT_GT(total, 0.0);
    // Four independent l=7 pipelines: aggregate utilisation can reach
    // 4x one channel's, but the reported value is per-channel.
    EXPECT_LE(r.effectiveBandwidth, 4.0 / 7 + 0.01);
}

TEST(MultiChannel, TargetSystemBaselineRuns)
{
    const auto r = runExperiment(targetConfig("baseline", "mix1"));
    ASSERT_EQ(r.ipc.size(), 32u);
    EXPECT_GT(r.demandReads, 0u);
}

TEST(MultiChannel, NonInterferenceAcrossChannels)
{
    // Victim on core 0 (channel 0); co-runners everywhere, including
    // its own channel. 16 cores over 4 channels keeps runtime down.
    auto run = [](const char *co) {
        Config c = defaultConfig();
        c.merge(schemeConfig("fs_rp"));
        c.set("dram.channels", 4);
        c.set("cores", 16);
        std::string wl = "mcf";
        for (int i = 0; i < 15; ++i)
            wl += std::string(",") + co;
        c.set("workload", wl);
        c.set("sim.warmup", 0);
        c.set("sim.measure", 20000);
        c.set("audit.core", 0);
        return runExperiment(c).timelines.at(0);
    };
    const auto audit = core::compareTimelines(run("idle"), run("hog"));
    EXPECT_TRUE(audit.identical) << audit.detail;
}

TEST(MultiChannel, TpRunsMultiChannel)
{
    // Each channel runs its own turn wheel over every domain; the
    // turns of domains mapped to other channels are simply dead.
    // This used to be rejected with a fatal(); it now has to run and
    // make forward progress on every core.
    const auto r = runExperiment(targetConfig("tp_bp", "mcf"));
    ASSERT_EQ(r.ipc.size(), 32u);
    for (size_t i = 0; i < r.ipc.size(); ++i)
        EXPECT_GT(r.ipc[i], 0.0) << "core " << i << " starved";
    EXPECT_GT(r.demandReads, 0u);
}

TEST(MultiChannel, FsReorderedRunsMultiChannel)
{
    const auto r = runExperiment(targetConfig("fs_reordered_bp", "mcf"));
    ASSERT_EQ(r.ipc.size(), 32u);
    EXPECT_GT(r.demandReads, 0u);
}

TEST(MultiChannel, ChannelPartitionGeometryBumpIsRecordedAndInert)
{
    // Channel partitioning with fewer channels than domains: the
    // harness widens the geometry (with a warn()) instead of
    // failing. The override must be recorded in the result, and the
    // run must be byte-identical to asking for the effective
    // geometry explicitly — the bump is a convenience, not a
    // different system.
    Config bumped = defaultConfig();
    bumped.merge(schemeConfig("channel_part"));
    bumped.set("cores", 8);
    bumped.set("dram.channels", 4);
    bumped.set("workload", "mcf");
    bumped.set("sim.warmup", 1000);
    bumped.set("sim.measure", 10000);
    Config explicit8 = bumped;
    explicit8.set("dram.channels", 8);

    const auto rb = runExperiment(bumped);
    const auto re = runExperiment(explicit8);
    EXPECT_TRUE(rb.geometryOverridden);
    EXPECT_EQ(rb.effectiveChannels, 8u);
    EXPECT_FALSE(re.geometryOverridden);
    EXPECT_EQ(re.effectiveChannels, 8u);
    EXPECT_EQ(resultDigest(rb), resultDigest(re));
}
