#include <gtest/gtest.h>

#include <fstream>

#include "cpu/trace_file.hh"
#include "cpu/workload.hh"
#include "harness/experiment.hh"

using namespace memsec;
using namespace memsec::cpu;

TEST(TraceFile, ParseBasicFormat)
{
    const auto recs = parseTrace("# comment\n"
                                 "3 R 1000\n"
                                 "0 W deadbeef\n"
                                 "\n"
                                 "12 R 40 # inline comment\n");
    ASSERT_EQ(recs.size(), 3u);
    EXPECT_EQ(recs[0].gap, 3u);
    EXPECT_FALSE(recs[0].isStore);
    EXPECT_EQ(recs[0].addr, 0x1000u);
    EXPECT_TRUE(recs[1].isStore);
    EXPECT_EQ(recs[1].addr, 0xdeadbeefu);
    EXPECT_EQ(recs[2].gap, 12u);
    EXPECT_EQ(recs[2].addr, 0x40u);
}

TEST(TraceFile, ParseRejectsBadKind)
{
    EXPECT_EXIT(parseTrace("1 X 40\n"), ::testing::ExitedWithCode(1),
                "kind must be R or W");
}

TEST(TraceFile, ParseRejectsBadAddress)
{
    EXPECT_EXIT(parseTrace("1 R zzz\n"), ::testing::ExitedWithCode(1),
                "bad address");
}

TEST(TraceFile, TryParseReportsLineOfFirstBadRecord)
{
    std::vector<TraceRecord> out;
    TraceParseError err;
    EXPECT_FALSE(tryParseTrace("1 R 40\n"
                               "2 W 80\n"
                               "not a record\n"
                               "3 R c0\n",
                               out, err));
    EXPECT_EQ(err.line, 3);
    EXPECT_NE(err.message.find("expected '<gap> R|W <hex-addr>'"),
              std::string::npos);
    // "1 R 40\n" is 7 bytes, "2 W 80\n" another 7.
    EXPECT_EQ(err.byteOffset, 14u);
    EXPECT_EQ(err.toString(), "trace line 3 (byte 14): " + err.message);
}

TEST(TraceFile, TryParseRejectsTruncatedRecord)
{
    std::vector<TraceRecord> out;
    TraceParseError err;
    // Garbage lines used to be silently skipped; a truncated record
    // (gap but no kind/address) must now be an error.
    EXPECT_FALSE(tryParseTrace("5\n", out, err));
    EXPECT_EQ(err.line, 1);
}

TEST(TraceFile, TryParseRejectsOutOfRangeGap)
{
    std::vector<TraceRecord> out;
    TraceParseError err;
    EXPECT_FALSE(tryParseTrace("99999999999999 R 40\n", out, err));
    EXPECT_EQ(err.line, 1);
    EXPECT_NE(err.message.find("out of range"), std::string::npos);
}

TEST(TraceFile, TruncatedFileFatalNamesFileAndLine)
{
    const std::string path = ::testing::TempDir() + "memsec_trunc.txt";
    {
        std::ofstream f(path);
        f << "1 R 40\n2 W\n";
    }
    EXPECT_EXIT(FileTraceGenerator{path}, ::testing::ExitedWithCode(1),
                "trace line 2");
}

TEST(TraceFile, FormatParsesBackIdentically)
{
    std::vector<TraceRecord> recs = {
        {5, false, 0x40}, {0, true, 0x1000}, {99, false, 0xabcdef00}};
    const auto round = parseTrace(formatTrace(recs));
    ASSERT_EQ(round.size(), recs.size());
    for (size_t i = 0; i < recs.size(); ++i) {
        EXPECT_EQ(round[i].gap, recs[i].gap);
        EXPECT_EQ(round[i].isStore, recs[i].isStore);
        EXPECT_EQ(round[i].addr, recs[i].addr);
    }
}

TEST(TraceFile, GeneratorLoopsAtEof)
{
    FileTraceGenerator g({{1, false, 0x40}, {2, true, 0x80}});
    EXPECT_EQ(g.next().addr, 0x40u);
    EXPECT_EQ(g.next().addr, 0x80u);
    EXPECT_EQ(g.next().addr, 0x40u); // wrapped
    EXPECT_EQ(g.loops(), 1u);
}

TEST(TraceFile, RecordSyntheticAndReplay)
{
    const std::string path = ::testing::TempDir() + "memsec_trace.txt";
    SyntheticTraceGenerator src(profileByName("milc"), 42);
    recordTrace(src, 500, path);

    // Replay matches a fresh instance of the same generator.
    FileTraceGenerator replay(path);
    EXPECT_EQ(replay.size(), 500u);
    SyntheticTraceGenerator ref(profileByName("milc"), 42);
    for (int i = 0; i < 500; ++i) {
        const TraceRecord a = ref.next();
        const TraceRecord b = replay.next();
        EXPECT_EQ(a.gap, b.gap);
        EXPECT_EQ(a.isStore, b.isStore);
        EXPECT_EQ(a.addr, b.addr);
    }
}

TEST(TraceFile, MissingFileFatal)
{
    EXPECT_EXIT(FileTraceGenerator("/no/such/trace.txt"),
                ::testing::ExitedWithCode(1), "cannot open");
}

TEST(TraceFile, WorkloadMixAcceptsTraceEntries)
{
    const auto mix = workloadMix("trace:/tmp/foo.txt,mcf", 4);
    ASSERT_EQ(mix.size(), 4u);
    EXPECT_EQ(mix[0].name, "trace");
    EXPECT_EQ(mix[0].tracePath, "/tmp/foo.txt");
    EXPECT_EQ(mix[1].name, "mcf");
    EXPECT_TRUE(mix[1].tracePath.empty());
}

// -- Binary trace format -------------------------------------------

namespace {

std::vector<TraceRecord>
sampleRecords(size_t n)
{
    SyntheticTraceGenerator g(profileByName("mcf"), 3);
    std::vector<TraceRecord> recs;
    recs.reserve(n);
    for (size_t i = 0; i < n; ++i)
        recs.push_back(g.next());
    return recs;
}

} // namespace

TEST(BinaryTrace, RoundTripsByteIdentically)
{
    // 5000 records spans two CRC blocks (4096 + 904).
    const auto recs = sampleRecords(5000);
    const std::string bytes = formatBinaryTrace(recs);
    ASSERT_TRUE(isBinaryTrace(bytes));

    std::vector<TraceRecord> parsed;
    TraceParseError err;
    ASSERT_TRUE(tryParseBinaryTrace(bytes, parsed, err))
        << err.toString();
    ASSERT_EQ(parsed.size(), recs.size());
    for (size_t i = 0; i < recs.size(); ++i) {
        EXPECT_EQ(parsed[i].gap, recs[i].gap);
        EXPECT_EQ(parsed[i].isStore, recs[i].isStore);
        EXPECT_EQ(parsed[i].addr, recs[i].addr);
    }
    // Re-encoding the parsed records reproduces the input byte for
    // byte, and the text debug view agrees across the round trip.
    EXPECT_EQ(formatBinaryTrace(parsed), bytes);
    EXPECT_EQ(formatTrace(parsed), formatTrace(recs));
}

TEST(BinaryTrace, AnyFlippedBlockBitIsCaught)
{
    const auto recs = sampleRecords(5);
    const std::string bytes = formatBinaryTrace(recs);
    // Header is 24 bytes; everything after is block data (count, CRC,
    // payload). Every single-bit flip there must fail the parse.
    const size_t headerBytes = 24;
    ASSERT_GT(bytes.size(), headerBytes);
    for (size_t byte = headerBytes; byte < bytes.size(); ++byte) {
        for (int bit = 0; bit < 8; ++bit) {
            std::string damaged = bytes;
            damaged[byte] ^= static_cast<char>(1 << bit);
            std::vector<TraceRecord> out;
            TraceParseError err;
            EXPECT_FALSE(tryParseBinaryTrace(damaged, out, err))
                << "flip of byte " << byte << " bit " << bit
                << " went undetected";
        }
    }
}

TEST(BinaryTrace, HeaderCorruptionReportsByteOffset)
{
    const std::string bytes = formatBinaryTrace(sampleRecords(3));
    std::vector<TraceRecord> out;
    TraceParseError err;

    std::string badMagic = bytes;
    badMagic[0] ^= 0x20;
    EXPECT_FALSE(tryParseBinaryTrace(badMagic, out, err));
    EXPECT_EQ(err.byteOffset, 0u);
    EXPECT_EQ(err.line, 0);

    std::string badVersion = bytes;
    badVersion[8] = 9;
    EXPECT_FALSE(tryParseBinaryTrace(badVersion, out, err));
    EXPECT_EQ(err.byteOffset, 8u);
    EXPECT_NE(err.message.find("version"), std::string::npos);
    EXPECT_EQ(err.toString(),
              "trace byte 8: " + err.message);

    EXPECT_FALSE(tryParseBinaryTrace(bytes.substr(0, 10), out, err));
    EXPECT_NE(err.message.find("truncated"), std::string::npos);
}

TEST(BinaryTrace, TruncatedAndTrailingBytesDetected)
{
    const std::string bytes = formatBinaryTrace(sampleRecords(3));
    std::vector<TraceRecord> out;
    TraceParseError err;

    // Cut mid-payload: the block payload check points at the payload.
    EXPECT_FALSE(
        tryParseBinaryTrace(bytes.substr(0, bytes.size() - 5), out, err));
    EXPECT_NE(err.message.find("truncated block payload"),
              std::string::npos);
    EXPECT_EQ(err.byteOffset, 32u); // 24-byte header + 8-byte block head

    out.clear();
    EXPECT_FALSE(tryParseBinaryTrace(bytes + "x", out, err));
    EXPECT_NE(err.message.find("trailing"), std::string::npos);
    EXPECT_EQ(err.byteOffset, bytes.size());
}

TEST(BinaryTrace, GeneratorSniffsBinaryFormat)
{
    const std::string path = ::testing::TempDir() + "memsec_trace.bin";
    SyntheticTraceGenerator src(profileByName("milc"), 42);
    recordTrace(src, 500, path, /*binary=*/true);

    {
        std::ifstream f(path, std::ios::binary);
        std::string head(8, '\0');
        f.read(head.data(), 8);
        EXPECT_EQ(head, "MSTRACE1");
    }

    FileTraceGenerator replay(path);
    EXPECT_EQ(replay.size(), 500u);
    SyntheticTraceGenerator ref(profileByName("milc"), 42);
    for (int i = 0; i < 500; ++i) {
        const TraceRecord a = ref.next();
        const TraceRecord b = replay.next();
        EXPECT_EQ(a.gap, b.gap);
        EXPECT_EQ(a.isStore, b.isStore);
        EXPECT_EQ(a.addr, b.addr);
    }
}

TEST(BinaryTrace, CorruptFileFatalNamesByteOffset)
{
    const std::string path = ::testing::TempDir() + "memsec_corrupt.bin";
    std::string bytes = formatBinaryTrace(sampleRecords(4));
    bytes[bytes.size() - 1] ^= 0x01;
    {
        std::ofstream f(path, std::ios::binary);
        f << bytes;
    }
    EXPECT_EXIT(FileTraceGenerator{path}, ::testing::ExitedWithCode(1),
                "trace byte");
}

TEST(TraceFile, EndToEndExperimentOnRecordedTrace)
{
    // Record a synthetic workload, then run a full experiment that
    // replays it from disk on every core.
    const std::string path = ::testing::TempDir() + "memsec_e2e.txt";
    SyntheticTraceGenerator src(profileByName("zeusmp"), 7);
    recordTrace(src, 20000, path);

    Config c = harness::defaultConfig();
    c.merge(harness::schemeConfig("fs_rp"));
    c.set("workload", "trace:" + path);
    c.set("cores", 4);
    // No functional warmup: the 20k-record trace must generate cold
    // misses during the measured run.
    c.set("core.functional_warmup", 0);
    c.set("sim.warmup", 1000);
    c.set("sim.measure", 15000);
    const auto r = harness::runExperiment(c);
    ASSERT_EQ(r.ipc.size(), 4u);
    for (double v : r.ipc)
        EXPECT_GT(v, 0.0);
    EXPECT_GT(r.demandReads, 0u);
}
