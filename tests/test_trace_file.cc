#include <gtest/gtest.h>

#include <fstream>

#include "cpu/trace_file.hh"
#include "cpu/workload.hh"
#include "harness/experiment.hh"

using namespace memsec;
using namespace memsec::cpu;

TEST(TraceFile, ParseBasicFormat)
{
    const auto recs = parseTrace("# comment\n"
                                 "3 R 1000\n"
                                 "0 W deadbeef\n"
                                 "\n"
                                 "12 R 40 # inline comment\n");
    ASSERT_EQ(recs.size(), 3u);
    EXPECT_EQ(recs[0].gap, 3u);
    EXPECT_FALSE(recs[0].isStore);
    EXPECT_EQ(recs[0].addr, 0x1000u);
    EXPECT_TRUE(recs[1].isStore);
    EXPECT_EQ(recs[1].addr, 0xdeadbeefu);
    EXPECT_EQ(recs[2].gap, 12u);
    EXPECT_EQ(recs[2].addr, 0x40u);
}

TEST(TraceFile, ParseRejectsBadKind)
{
    EXPECT_EXIT(parseTrace("1 X 40\n"), ::testing::ExitedWithCode(1),
                "kind must be R or W");
}

TEST(TraceFile, ParseRejectsBadAddress)
{
    EXPECT_EXIT(parseTrace("1 R zzz\n"), ::testing::ExitedWithCode(1),
                "bad address");
}

TEST(TraceFile, TryParseReportsLineOfFirstBadRecord)
{
    std::vector<TraceRecord> out;
    TraceParseError err;
    EXPECT_FALSE(tryParseTrace("1 R 40\n"
                               "2 W 80\n"
                               "not a record\n"
                               "3 R c0\n",
                               out, err));
    EXPECT_EQ(err.line, 3);
    EXPECT_NE(err.message.find("expected '<gap> R|W <hex-addr>'"),
              std::string::npos);
    EXPECT_EQ(err.toString(), "trace line 3: " + err.message);
}

TEST(TraceFile, TryParseRejectsTruncatedRecord)
{
    std::vector<TraceRecord> out;
    TraceParseError err;
    // Garbage lines used to be silently skipped; a truncated record
    // (gap but no kind/address) must now be an error.
    EXPECT_FALSE(tryParseTrace("5\n", out, err));
    EXPECT_EQ(err.line, 1);
}

TEST(TraceFile, TryParseRejectsOutOfRangeGap)
{
    std::vector<TraceRecord> out;
    TraceParseError err;
    EXPECT_FALSE(tryParseTrace("99999999999999 R 40\n", out, err));
    EXPECT_EQ(err.line, 1);
    EXPECT_NE(err.message.find("out of range"), std::string::npos);
}

TEST(TraceFile, TruncatedFileFatalNamesFileAndLine)
{
    const std::string path = ::testing::TempDir() + "memsec_trunc.txt";
    {
        std::ofstream f(path);
        f << "1 R 40\n2 W\n";
    }
    EXPECT_EXIT(FileTraceGenerator{path}, ::testing::ExitedWithCode(1),
                "trace line 2");
}

TEST(TraceFile, FormatParsesBackIdentically)
{
    std::vector<TraceRecord> recs = {
        {5, false, 0x40}, {0, true, 0x1000}, {99, false, 0xabcdef00}};
    const auto round = parseTrace(formatTrace(recs));
    ASSERT_EQ(round.size(), recs.size());
    for (size_t i = 0; i < recs.size(); ++i) {
        EXPECT_EQ(round[i].gap, recs[i].gap);
        EXPECT_EQ(round[i].isStore, recs[i].isStore);
        EXPECT_EQ(round[i].addr, recs[i].addr);
    }
}

TEST(TraceFile, GeneratorLoopsAtEof)
{
    FileTraceGenerator g({{1, false, 0x40}, {2, true, 0x80}});
    EXPECT_EQ(g.next().addr, 0x40u);
    EXPECT_EQ(g.next().addr, 0x80u);
    EXPECT_EQ(g.next().addr, 0x40u); // wrapped
    EXPECT_EQ(g.loops(), 1u);
}

TEST(TraceFile, RecordSyntheticAndReplay)
{
    const std::string path = ::testing::TempDir() + "memsec_trace.txt";
    SyntheticTraceGenerator src(profileByName("milc"), 42);
    recordTrace(src, 500, path);

    // Replay matches a fresh instance of the same generator.
    FileTraceGenerator replay(path);
    EXPECT_EQ(replay.size(), 500u);
    SyntheticTraceGenerator ref(profileByName("milc"), 42);
    for (int i = 0; i < 500; ++i) {
        const TraceRecord a = ref.next();
        const TraceRecord b = replay.next();
        EXPECT_EQ(a.gap, b.gap);
        EXPECT_EQ(a.isStore, b.isStore);
        EXPECT_EQ(a.addr, b.addr);
    }
}

TEST(TraceFile, MissingFileFatal)
{
    EXPECT_EXIT(FileTraceGenerator("/no/such/trace.txt"),
                ::testing::ExitedWithCode(1), "cannot open");
}

TEST(TraceFile, WorkloadMixAcceptsTraceEntries)
{
    const auto mix = workloadMix("trace:/tmp/foo.txt,mcf", 4);
    ASSERT_EQ(mix.size(), 4u);
    EXPECT_EQ(mix[0].name, "trace");
    EXPECT_EQ(mix[0].tracePath, "/tmp/foo.txt");
    EXPECT_EQ(mix[1].name, "mcf");
    EXPECT_TRUE(mix[1].tracePath.empty());
}

TEST(TraceFile, EndToEndExperimentOnRecordedTrace)
{
    // Record a synthetic workload, then run a full experiment that
    // replays it from disk on every core.
    const std::string path = ::testing::TempDir() + "memsec_e2e.txt";
    SyntheticTraceGenerator src(profileByName("zeusmp"), 7);
    recordTrace(src, 20000, path);

    Config c = harness::defaultConfig();
    c.merge(harness::schemeConfig("fs_rp"));
    c.set("workload", "trace:" + path);
    c.set("cores", 4);
    // No functional warmup: the 20k-record trace must generate cold
    // misses during the measured run.
    c.set("core.functional_warmup", 0);
    c.set("sim.warmup", 1000);
    c.set("sim.measure", 15000);
    const auto r = harness::runExperiment(c);
    ASSERT_EQ(r.ipc.size(), 4u);
    for (double v : r.ipc)
        EXPECT_GT(v, 0.0);
    EXPECT_GT(r.demandReads, 0u);
}
