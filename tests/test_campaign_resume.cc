/**
 * @file
 * Campaign-level crash resume: a killed campaign leaves behind an
 * on-disk journal of completed runs (ckpt.dir/<fingerprint>.done) and
 * possibly a mid-run snapshot; a rerun must serve the completed
 * fingerprints from the journal byte-identically, re-execute only the
 * missing ones, ignore stale or damaged journal entries with a
 * warning, and report all of it distinctly in the summary accounting
 * (executed vs memoized vs journal hits vs snapshot resumes).
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <stdexcept>
#include <string>
#include <vector>

#include "harness/campaign.hh"
#include "harness/experiment.hh"
#include "util/serialize.hh"

using namespace memsec;
using namespace memsec::harness;

namespace {

std::string
makeTempDir()
{
    std::string tmpl = ::testing::TempDir() + "memsec-resume-XXXXXX";
    std::vector<char> buf(tmpl.begin(), tmpl.end());
    buf.push_back('\0');
    EXPECT_NE(mkdtemp(buf.data()), nullptr);
    return std::string(buf.data());
}

Config
smallConfig(const std::string &scheme, const std::string &workload,
            uint64_t seed, const std::string &ckptDir)
{
    Config c = defaultConfig();
    c.merge(schemeConfig(scheme));
    c.set("workload", workload);
    c.set("cores", 2);
    c.set("seed", seed);
    c.set("sim.warmup", 500);
    c.set("sim.measure", 4000);
    c.set("audit.core", 0);
    c.set("audit.progress_interval", 1000);
    if (!ckptDir.empty())
        c.set("ckpt.dir", ckptDir);
    return c;
}

std::vector<std::pair<std::string, Config>>
fourRuns(const std::string &dir)
{
    return {{"fs_rp/mcf", smallConfig("fs_rp", "mcf", 1, dir)},
            {"baseline/mcf", smallConfig("baseline", "mcf", 1, dir)},
            {"tp_bp/mcf", smallConfig("tp_bp", "mcf", 1, dir)},
            {"fs_np/milc", smallConfig("fs_np", "milc", 2, dir)}};
}

} // namespace

// A campaign killed after N runs, then rerun over the same ckpt.dir:
// the N journalled results are served from disk (byte-identically),
// only the remainder re-executes, and the summary says which is which.
TEST(CampaignResume, KilledCampaignSkipsCompletedFingerprints)
{
    const std::string dir = makeTempDir();
    const auto runs = fourRuns(dir);

    // First campaign "dies" after two completed runs. The runner
    // throws for the rest, which Campaign records as failures —
    // failures must NOT be journalled.
    size_t executedFirst = 0;
    Campaign first([&](const Config &cfg) {
        if (executedFirst >= 2)
            throw std::runtime_error("simulated kill");
        ++executedFirst;
        return runExperiment(cfg);
    });
    for (const auto &[label, cfg] : runs)
        first.add(label, cfg);
    const CampaignSummary &s1 = first.run();
    EXPECT_EQ(executedFirst, 2u);
    EXPECT_EQ(s1.journalHits, 0u);
    EXPECT_EQ(s1.failures, 2u);

    // Rerun the full campaign: the two journalled fingerprints are
    // served from disk, only the two missing ones hit the runner.
    size_t executedSecond = 0;
    Campaign second([&](const Config &cfg) {
        ++executedSecond;
        return runExperiment(cfg);
    });
    for (const auto &[label, cfg] : runs)
        second.add(label, cfg);
    const CampaignSummary &s2 = second.run();
    EXPECT_EQ(executedSecond, 2u);
    EXPECT_EQ(s2.journalHits, 2u);
    EXPECT_EQ(s2.executed, 4u);
    EXPECT_EQ(s2.memoHits, 0u);
    EXPECT_EQ(s2.failures, 0u);
    EXPECT_TRUE(second.outcome(0).fromJournal);
    EXPECT_TRUE(second.outcome(1).fromJournal);
    EXPECT_FALSE(second.outcome(2).fromJournal);
    EXPECT_FALSE(second.outcome(3).fromJournal);

    // Journal-served results must be byte-identical to a fresh
    // execution of the same canonical config.
    Config fresh = runs[0].second;
    fresh.erase("ckpt.dir");
    EXPECT_EQ(resultDigest(second.result(0)),
              resultDigest(runExperiment(fresh)));
}

// Journal hits and in-campaign memo hits are different things and
// must be counted separately: a duplicated config is memoized off its
// primary even when that primary came from the journal.
TEST(CampaignResume, JournalAndMemoAccountingAreDistinct)
{
    const std::string dir = makeTempDir();
    const Config cfg = smallConfig("fs_rp", "mcf", 1, dir);

    {
        Campaign seed;
        seed.add("seed", cfg);
        seed.run();
    }

    size_t executed = 0;
    Campaign c([&](const Config &k) {
        ++executed;
        return runExperiment(k);
    });
    c.add("primary", cfg);
    c.add("duplicate", cfg);
    const CampaignSummary &s = c.run();
    EXPECT_EQ(executed, 0u);
    EXPECT_EQ(s.runs, 2u);
    EXPECT_EQ(s.executed, 1u);
    EXPECT_EQ(s.memoHits, 1u);
    EXPECT_EQ(s.journalHits, 1u);
    EXPECT_TRUE(c.outcome(0).fromJournal);
    EXPECT_TRUE(c.outcome(1).memoized);
    EXPECT_EQ(resultDigest(c.result(0)), resultDigest(c.result(1)));
}

// The fingerprint is computed over the config minus ckpt.*/crash.*
// keys, so a resumed rerun with a different snapshot cadence still
// matches the journal entries the killed campaign wrote.
TEST(CampaignResume, DurabilityKeysDoNotChangeRunIdentity)
{
    Config a = smallConfig("fs_rp", "mcf", 1, "/tmp/somewhere");
    Config b = smallConfig("fs_rp", "mcf", 1, "/tmp/elsewhere");
    b.set("ckpt.interval_cycles", 777);
    b.set("crash.dir", "/tmp/crashes");
    EXPECT_EQ(Campaign::fingerprint(a), Campaign::fingerprint(b));

    Config c = b;
    c.set("seed", 2);
    EXPECT_NE(Campaign::fingerprint(a), Campaign::fingerprint(c));
}

// A journal entry whose embedded fingerprint does not match its
// file name (e.g. copied from another sweep's directory) is stale:
// ignored with a warning, and the run re-executes.
TEST(CampaignResume, StaleJournalEntryIgnoredAndReExecuted)
{
    const std::string dir = makeTempDir();
    const Config cfg = smallConfig("fs_rp", "mcf", 1, dir);
    const std::string fp = Campaign::fingerprint(cfg);
    ASSERT_TRUE(writeFileAtomic(
        dir + "/" + fp + ".done",
        encodeSnapshot("fnv64-0000000000000000", "bogus payload")));

    size_t executed = 0;
    Campaign c([&](const Config &k) {
        ++executed;
        return runExperiment(k);
    });
    c.add("run", cfg);
    const CampaignSummary &s = c.run();
    EXPECT_EQ(executed, 1u);
    EXPECT_EQ(s.journalHits, 0u);
    EXPECT_EQ(s.failures, 0u);
    EXPECT_FALSE(c.outcome(0).fromJournal);

    // The re-execution overwrote the stale entry; a fresh campaign
    // now hits the journal.
    Campaign again;
    again.add("run", cfg);
    EXPECT_EQ(again.run().journalHits, 1u);
}

// A bit-damaged journal entry is rejected by the payload CRC and the
// run re-executes rather than reporting corrupt metrics.
TEST(CampaignResume, CorruptJournalEntryIgnoredAndReExecuted)
{
    const std::string dir = makeTempDir();
    const Config cfg = smallConfig("baseline", "mcf", 1, dir);
    {
        Campaign seed;
        seed.add("seed", cfg);
        seed.run();
    }
    const std::string path =
        dir + "/" + Campaign::fingerprint(cfg) + ".done";
    std::string bytes;
    ASSERT_TRUE(readFileBytes(path, bytes));
    bytes[bytes.size() / 2] ^= 0x04;
    ASSERT_TRUE(writeFileAtomic(path, bytes));

    size_t executed = 0;
    Campaign c([&](const Config &k) {
        ++executed;
        return runExperiment(k);
    });
    c.add("run", cfg);
    const CampaignSummary &s = c.run();
    EXPECT_EQ(executed, 1u);
    EXPECT_EQ(s.journalHits, 0u);
    EXPECT_TRUE(c.outcome(0).ok);
}

// A run continued from a mid-flight snapshot is flagged in its result
// and counted in the summary, and still digests identically to an
// uninterrupted run.
TEST(CampaignResume, SnapshotResumeCountedInSummary)
{
    const std::string dir = makeTempDir();
    const Config cfg = smallConfig("fs_rp", "mcf", 1, dir);
    const std::string fp = Campaign::fingerprint(cfg);

    Config plain = cfg;
    plain.erase("ckpt.dir");
    const ExperimentResult uninterrupted = runExperiment(plain);

    {
        ExperimentSystem sys(cfg);
        sys.step(2000);
        ASSERT_FALSE(sys.done());
        Serializer s;
        sys.saveState(s);
        ASSERT_TRUE(writeFileAtomic(dir + "/" + fp + ".snap",
                                    encodeSnapshot(fp, s.data())));
    }

    Campaign c;
    c.add("resumed", cfg);
    const CampaignSummary &s = c.run();
    EXPECT_EQ(s.snapshotResumes, 1u);
    EXPECT_EQ(s.journalHits, 0u);
    EXPECT_TRUE(c.result(0).resumedFromSnapshot);
    EXPECT_EQ(resultDigest(c.result(0)), resultDigest(uninterrupted));
}
