#include <gtest/gtest.h>

#include <set>

#include "mem/address_map.hh"
#include "util/random.hh"

using namespace memsec;
using namespace memsec::mem;

namespace {
dram::Geometry
geo()
{
    return dram::Geometry{};
}
} // namespace

TEST(AddressMap, RankPartitionAssignsDisjointRanks)
{
    AddressMap m(geo(), Partition::Rank, Interleave::ClosePage, 8);
    std::set<unsigned> seen;
    for (DomainId d = 0; d < 8; ++d) {
        const auto &ranks = m.ranksOf(d);
        ASSERT_EQ(ranks.size(), 1u);
        EXPECT_TRUE(seen.insert(ranks[0]).second);
    }
}

TEST(AddressMap, RankPartitionWithFewerDomainsGetsMultipleRanks)
{
    AddressMap m(geo(), Partition::Rank, Interleave::ClosePage, 4);
    for (DomainId d = 0; d < 4; ++d)
        EXPECT_EQ(m.ranksOf(d).size(), 2u);
}

TEST(AddressMap, BankPartitionAssignsDisjointBanks)
{
    AddressMap m(geo(), Partition::Bank, Interleave::ClosePage, 8);
    std::set<unsigned> seen;
    for (DomainId d = 0; d < 8; ++d) {
        const auto &banks = m.banksOf(d);
        ASSERT_EQ(banks.size(), 1u);
        EXPECT_TRUE(seen.insert(banks[0]).second);
        EXPECT_EQ(m.ranksOf(d).size(), 8u);
    }
}

TEST(AddressMap, DecodeConfinedToPartition)
{
    // Property: every decoded location must live inside the domain's
    // allotted resources, for any address.
    for (Partition p : {Partition::Rank, Partition::Bank}) {
        AddressMap m(geo(), p, Interleave::ClosePage, 8);
        Rng rng(99);
        for (DomainId d = 0; d < 8; ++d) {
            const auto &ranks = m.ranksOf(d);
            const auto &banks = m.banksOf(d);
            for (int i = 0; i < 500; ++i) {
                const Addr a = rng.next() & 0x3FFFFFFFFFull;
                const Decoded loc = m.decode(d, a);
                EXPECT_NE(std::find(ranks.begin(), ranks.end(),
                                    loc.rank),
                          ranks.end());
                EXPECT_NE(std::find(banks.begin(), banks.end(),
                                    loc.bank),
                          banks.end());
                EXPECT_LT(loc.row, geo().rowsPerBank);
                EXPECT_LT(loc.col, geo().colsPerRow);
            }
        }
    }
}

TEST(AddressMap, OpenPageKeepsConsecutiveLinesInOneRow)
{
    AddressMap m(geo(), Partition::Rank, Interleave::OpenPage, 8);
    const Decoded first = m.decode(0, 0);
    for (unsigned i = 1; i < geo().colsPerRow; ++i) {
        const Decoded loc = m.decode(0, i * kLineBytes);
        EXPECT_EQ(loc.row, first.row);
        EXPECT_EQ(loc.bank, first.bank);
        EXPECT_EQ(loc.col, i);
    }
    // The next line moves on to another bank.
    const Decoded next = m.decode(0, geo().colsPerRow * kLineBytes);
    EXPECT_NE(next.bank, first.bank);
}

TEST(AddressMap, ClosePageStripesAcrossBanks)
{
    AddressMap m(geo(), Partition::Rank, Interleave::ClosePage, 8);
    std::set<unsigned> banks;
    for (unsigned i = 0; i < geo().banksPerRank; ++i)
        banks.insert(m.decode(0, i * kLineBytes).bank);
    EXPECT_EQ(banks.size(), geo().banksPerRank);
}

TEST(AddressMap, UnpartitionedDomainsDoNotAliasRows)
{
    AddressMap m(geo(), Partition::None, Interleave::ClosePage, 8);
    const Decoded a = m.decode(0, 0);
    const Decoded b = m.decode(1, 0);
    // Same line offset from two domains must not land on the same
    // physical row (the OS never maps two domains to one frame).
    EXPECT_FALSE(a.rank == b.rank && a.bank == b.bank && a.row == b.row);
}

TEST(AddressMap, ChannelPartitionSeparatesChannels)
{
    dram::Geometry g = geo();
    g.channels = 4;
    AddressMap m(g, Partition::Channel, Interleave::ClosePage, 4);
    std::set<unsigned> chans;
    for (DomainId d = 0; d < 4; ++d)
        chans.insert(m.channelOf(d));
    EXPECT_EQ(chans.size(), 4u);
}

TEST(AddressMap, TooManyDomainsForRankPartitionFatal)
{
    EXPECT_EXIT(AddressMap(geo(), Partition::Rank,
                           Interleave::ClosePage, 9),
                ::testing::ExitedWithCode(1), "rank partitioning");
}

TEST(AddressMap, TooManyDomainsForChannelPartitionFatal)
{
    EXPECT_EXIT(AddressMap(geo(), Partition::Channel,
                           Interleave::ClosePage, 2),
                ::testing::ExitedWithCode(1), "channel partitioning");
}

TEST(AddressMap, AddressesWrapWithinDomainCapacity)
{
    AddressMap m(geo(), Partition::Rank, Interleave::ClosePage, 8);
    const uint64_t cap = m.domainLineCapacity();
    const Decoded a = m.decode(3, 5 * kLineBytes);
    const Decoded b = m.decode(3, (cap + 5) * kLineBytes);
    EXPECT_EQ(a.rank, b.rank);
    EXPECT_EQ(a.bank, b.bank);
    EXPECT_EQ(a.row, b.row);
    EXPECT_EQ(a.col, b.col);
}

TEST(AddressMap, DecodeIsDeterministic)
{
    AddressMap m(geo(), Partition::Bank, Interleave::OpenPage, 4);
    for (Addr a : {0ull, 4096ull, 123456789ull}) {
        const Decoded x = m.decode(2, a);
        const Decoded y = m.decode(2, a);
        EXPECT_EQ(x.rank, y.rank);
        EXPECT_EQ(x.bank, y.bank);
        EXPECT_EQ(x.row, y.row);
        EXPECT_EQ(x.col, y.col);
    }
}

TEST(AddressMap, NamesForDiagnostics)
{
    EXPECT_STREQ(partitionName(Partition::Rank), "rank");
    EXPECT_STREQ(partitionName(Partition::None), "none");
    EXPECT_STREQ(interleaveName(Interleave::OpenPage), "open-page");
}
