#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "stats/stats.hh"

using namespace memsec;

TEST(Stats, CounterIncAndReset)
{
    Counter c;
    EXPECT_EQ(c.value(), 0u);
    c.inc();
    c.inc(4);
    EXPECT_EQ(c.value(), 5u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(Stats, AverageMeanMinMax)
{
    Average a;
    EXPECT_DOUBLE_EQ(a.mean(), 0.0);
    a.sample(2.0);
    a.sample(4.0);
    a.sample(9.0);
    EXPECT_DOUBLE_EQ(a.mean(), 5.0);
    EXPECT_DOUBLE_EQ(a.min(), 2.0);
    EXPECT_DOUBLE_EQ(a.max(), 9.0);
    EXPECT_EQ(a.count(), 3u);
    EXPECT_DOUBLE_EQ(a.total(), 15.0);
}

TEST(Stats, HistogramBinning)
{
    Histogram h;
    h.init(0.0, 10.0, 5);
    h.sample(-1.0);       // underflow
    h.sample(0.0);        // bin 0
    h.sample(9.99);       // bin 0
    h.sample(10.0);       // bin 1
    h.sample(49.0);       // bin 4
    h.sample(50.0);       // overflow
    EXPECT_EQ(h.underflow(), 1u);
    EXPECT_EQ(h.overflow(), 1u);
    EXPECT_EQ(h.bins()[0], 2u);
    EXPECT_EQ(h.bins()[1], 1u);
    EXPECT_EQ(h.bins()[4], 1u);
    EXPECT_EQ(h.totalSamples(), 6u);
}

TEST(Stats, HistogramWeightedSamples)
{
    Histogram h;
    h.init(0.0, 1.0, 4);
    h.sample(1.5, 10);
    EXPECT_EQ(h.bins()[1], 10u);
    EXPECT_EQ(h.totalSamples(), 10u);
}

TEST(Stats, HistogramPercentile)
{
    Histogram h;
    h.init(0.0, 1.0, 100);
    for (int i = 0; i < 100; ++i)
        h.sample(i + 0.5);
    EXPECT_NEAR(h.percentile(0.5), 50.0, 1.0);
    EXPECT_NEAR(h.percentile(0.99), 99.0, 1.0);
}

TEST(Stats, HistogramPercentileInterpolatesWithinTheBin)
{
    // Regression: percentile() used to return the crossing bin's top
    // edge, so p50 and p99 of a uniform fill coincided whenever they
    // landed in the same bin — useless for tail gaps in SLA tables.
    // One sample per unit bin: p·samples mass sits exactly at value
    // p·100 under the uniform-within-bin assumption.
    Histogram h;
    h.init(0.0, 1.0, 100);
    for (int i = 0; i < 100; ++i)
        h.sample(i + 0.5);
    EXPECT_DOUBLE_EQ(h.percentile(0.5), 50.0);
    EXPECT_DOUBLE_EQ(h.percentile(0.99), 99.0);
    EXPECT_DOUBLE_EQ(h.percentile(0.999), 99.9);
    EXPECT_DOUBLE_EQ(h.percentile(1.0), 100.0);

    // A single sample interpolates across its whole bin: the mass
    // fraction p lands at lo + p * width.
    Histogram g;
    g.init(0.0, 10.0, 4);
    g.sample(12.0); // bin [10, 20)
    EXPECT_DOUBLE_EQ(g.percentile(0.5), 15.0);
    EXPECT_DOUBLE_EQ(g.percentile(1.0), 20.0);

    // Distinct percentiles inside one heavy bin stay distinct.
    Histogram k;
    k.init(0.0, 100.0, 4);
    for (int i = 0; i < 1000; ++i)
        k.sample(50.0);
    EXPECT_LT(k.percentile(0.5), k.percentile(0.99));
    EXPECT_NEAR(k.percentile(0.5), 50.0, 0.1);
}

TEST(Stats, HistogramPercentileOverflowIsExplicit)
{
    // Regression: overflow mass is part of samples_ but used to be
    // unreachable by the bin walk, so a percentile landing in the
    // overflow silently returned the top bin edge (understating tail
    // latencies). It must now be an explicit +inf.
    Histogram h;
    h.init(0.0, 1.0, 10);
    for (int i = 0; i < 90; ++i)
        h.sample(0.5);
    for (int i = 0; i < 10; ++i)
        h.sample(1e9); // overflow
    // Interpolated: 50 of the 90 in-bin samples' mass, uniformly
    // spread over bin [0, 1).
    EXPECT_DOUBLE_EQ(h.percentile(0.5), 50.0 / 90.0);
    EXPECT_TRUE(std::isinf(h.percentile(0.95)));
    EXPECT_TRUE(std::isinf(h.percentile(1.0)));
    // With no overflow, p=1.0 still lands on a real bin edge.
    Histogram g;
    g.init(0.0, 1.0, 10);
    g.sample(9.5);
    EXPECT_DOUBLE_EQ(g.percentile(1.0), 10.0);
}

TEST(Stats, HistogramPercentileUnderflowClampsToLowEdge)
{
    Histogram h;
    h.init(10.0, 1.0, 4);
    h.sample(0.0);  // underflow
    h.sample(10.5); // bin 0
    EXPECT_DOUBLE_EQ(h.percentile(0.25), 10.0);
    EXPECT_DOUBLE_EQ(h.percentile(1.0), 11.0);
}

TEST(Stats, HistogramMean)
{
    Histogram h;
    h.init(0.0, 1.0, 10);
    h.sample(2.0);
    h.sample(4.0);
    EXPECT_DOUBLE_EQ(h.mean(), 3.0);
}

TEST(Stats, HistogramMergeAccumulatesAllMass)
{
    Histogram a;
    a.init(0.0, 1.0, 10);
    a.sample(-1.0); // underflow
    a.sample(2.5);
    a.sample(3.5);
    Histogram b;
    b.init(0.0, 1.0, 10);
    b.sample(2.5);
    b.sample(100.0); // overflow
    a.merge(b);
    EXPECT_EQ(a.totalSamples(), 5u);
    EXPECT_EQ(a.bins()[2], 2u);
    EXPECT_EQ(a.bins()[3], 1u);
    EXPECT_EQ(a.underflow(), 1u);
    EXPECT_EQ(a.overflow(), 1u);
    EXPECT_DOUBLE_EQ(a.total(), -1.0 + 2.5 + 3.5 + 2.5 + 100.0);
}

TEST(Stats, HistogramMergeRejectsMismatchedLayout)
{
    Histogram a;
    a.init(0.0, 1.0, 10);
    Histogram b;
    b.init(0.0, 2.0, 10);
    EXPECT_THROW(a.merge(b), std::logic_error);
}

TEST(Stats, GroupDumpAndLookup)
{
    Counter c;
    c.inc(3);
    Scalar s;
    s.set(2.5);
    StatGroup g("test");
    g.add("count", &c, "a counter");
    g.add("scalar", &s);
    g.addFormula("twice", [&] { return 2.0 * s.value(); });

    EXPECT_DOUBLE_EQ(g.lookup("count"), 3.0);
    EXPECT_DOUBLE_EQ(g.lookup("scalar"), 2.5);
    EXPECT_DOUBLE_EQ(g.lookup("twice"), 5.0);
    EXPECT_TRUE(std::isnan(g.lookup("missing")));

    std::ostringstream os;
    g.dump(os);
    EXPECT_NE(os.str().find("count"), std::string::npos);
    EXPECT_NE(os.str().find("a counter"), std::string::npos);
}

TEST(Stats, DumpPrintsLargeCountersLosslesslyAndRoundTrips)
{
    // Regression: the sticky std::left manipulator bled into the
    // value column and the default 6-significant-digit formatting
    // truncated large cycle counters (1234567890 printed as
    // 1.23457e+09). Values must round-trip through the dump text.
    Counter big;
    big.inc(1234567890123456ull);
    Scalar frac;
    frac.set(0.30000000000000004);
    StatGroup g("fmt");
    g.add("cycles", &big, "a large counter");
    g.add("ratio", &frac);

    std::ostringstream os;
    g.dump(os);
    const std::string text = os.str();
    EXPECT_NE(text.find("1234567890123456"), std::string::npos)
        << text;
    EXPECT_EQ(text.find("e+"), std::string::npos) << text;

    // Parse each line back: second whitespace-separated token is the
    // value; it must equal the registered value exactly.
    std::istringstream in(text);
    std::string line;
    std::getline(in, line);
    {
        std::istringstream ls(line);
        std::string name, value;
        ls >> name >> value;
        EXPECT_EQ(name, "cycles");
        EXPECT_EQ(std::stod(value), 1234567890123456.0);
    }
    std::getline(in, line);
    {
        std::istringstream ls(line);
        std::string name, value;
        ls >> name >> value;
        EXPECT_EQ(name, "ratio");
        EXPECT_EQ(std::stod(value), 0.30000000000000004);
    }
}

TEST(Stats, DumpValueColumnIsRightAligned)
{
    Counter c;
    c.inc(7);
    StatGroup g("align");
    g.add("small", &c);
    std::ostringstream os;
    g.dump(os);
    const std::string line = os.str();
    // name (44, left) + space + value (16, right): the single digit
    // sits at the END of the value field, i.e. column 44+1+16-1 = 60.
    ASSERT_GE(line.size(), 61u);
    EXPECT_EQ(line[60], '7') << "'" << line << "'";
    for (size_t i = 45; i < 60; ++i)
        EXPECT_EQ(line[i], ' ') << "column " << i;
}

TEST(Stats, DumpSurfacesHistogramOverflow)
{
    Histogram h;
    h.init(0.0, 1.0, 4);
    h.sample(0.5);
    h.sample(100.0); // overflow
    h.sample(-5.0);  // underflow
    StatGroup g("hist");
    g.add("lat", &h, "latency");
    std::ostringstream os;
    g.dump(os);
    EXPECT_NE(os.str().find("[n=3 uf=1 of=1]"), std::string::npos)
        << os.str();
}

TEST(Stats, GroupAdoptPrefixes)
{
    Counter c;
    c.inc(7);
    StatGroup child("child");
    child.add("events", &c);
    StatGroup parent("parent");
    parent.adopt("core0", child);
    EXPECT_DOUBLE_EQ(parent.lookup("core0.events"), 7.0);
}

TEST(Stats, FormulaEvaluatedAtDumpTime)
{
    Counter c;
    StatGroup g;
    g.addFormula("v", [&] { return static_cast<double>(c.value()); });
    EXPECT_DOUBLE_EQ(g.lookup("v"), 0.0);
    c.inc(9);
    EXPECT_DOUBLE_EQ(g.lookup("v"), 9.0);
}
