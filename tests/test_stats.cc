#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "stats/stats.hh"

using namespace memsec;

TEST(Stats, CounterIncAndReset)
{
    Counter c;
    EXPECT_EQ(c.value(), 0u);
    c.inc();
    c.inc(4);
    EXPECT_EQ(c.value(), 5u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(Stats, AverageMeanMinMax)
{
    Average a;
    EXPECT_DOUBLE_EQ(a.mean(), 0.0);
    a.sample(2.0);
    a.sample(4.0);
    a.sample(9.0);
    EXPECT_DOUBLE_EQ(a.mean(), 5.0);
    EXPECT_DOUBLE_EQ(a.min(), 2.0);
    EXPECT_DOUBLE_EQ(a.max(), 9.0);
    EXPECT_EQ(a.count(), 3u);
    EXPECT_DOUBLE_EQ(a.total(), 15.0);
}

TEST(Stats, HistogramBinning)
{
    Histogram h;
    h.init(0.0, 10.0, 5);
    h.sample(-1.0);       // underflow
    h.sample(0.0);        // bin 0
    h.sample(9.99);       // bin 0
    h.sample(10.0);       // bin 1
    h.sample(49.0);       // bin 4
    h.sample(50.0);       // overflow
    EXPECT_EQ(h.underflow(), 1u);
    EXPECT_EQ(h.overflow(), 1u);
    EXPECT_EQ(h.bins()[0], 2u);
    EXPECT_EQ(h.bins()[1], 1u);
    EXPECT_EQ(h.bins()[4], 1u);
    EXPECT_EQ(h.totalSamples(), 6u);
}

TEST(Stats, HistogramWeightedSamples)
{
    Histogram h;
    h.init(0.0, 1.0, 4);
    h.sample(1.5, 10);
    EXPECT_EQ(h.bins()[1], 10u);
    EXPECT_EQ(h.totalSamples(), 10u);
}

TEST(Stats, HistogramPercentile)
{
    Histogram h;
    h.init(0.0, 1.0, 100);
    for (int i = 0; i < 100; ++i)
        h.sample(i + 0.5);
    EXPECT_NEAR(h.percentile(0.5), 50.0, 1.0);
    EXPECT_NEAR(h.percentile(0.99), 99.0, 1.0);
}

TEST(Stats, HistogramMean)
{
    Histogram h;
    h.init(0.0, 1.0, 10);
    h.sample(2.0);
    h.sample(4.0);
    EXPECT_DOUBLE_EQ(h.mean(), 3.0);
}

TEST(Stats, GroupDumpAndLookup)
{
    Counter c;
    c.inc(3);
    Scalar s;
    s.set(2.5);
    StatGroup g("test");
    g.add("count", &c, "a counter");
    g.add("scalar", &s);
    g.addFormula("twice", [&] { return 2.0 * s.value(); });

    EXPECT_DOUBLE_EQ(g.lookup("count"), 3.0);
    EXPECT_DOUBLE_EQ(g.lookup("scalar"), 2.5);
    EXPECT_DOUBLE_EQ(g.lookup("twice"), 5.0);
    EXPECT_TRUE(std::isnan(g.lookup("missing")));

    std::ostringstream os;
    g.dump(os);
    EXPECT_NE(os.str().find("count"), std::string::npos);
    EXPECT_NE(os.str().find("a counter"), std::string::npos);
}

TEST(Stats, GroupAdoptPrefixes)
{
    Counter c;
    c.inc(7);
    StatGroup child("child");
    child.add("events", &c);
    StatGroup parent("parent");
    parent.adopt("core0", child);
    EXPECT_DOUBLE_EQ(parent.lookup("core0.events"), 7.0);
}

TEST(Stats, FormulaEvaluatedAtDumpTime)
{
    Counter c;
    StatGroup g;
    g.addFormula("v", [&] { return static_cast<double>(c.value()); });
    EXPECT_DOUBLE_EQ(g.lookup("v"), 0.0);
    c.inc(9);
    EXPECT_DOUBLE_EQ(g.lookup("v"), 9.0);
}
