/**
 * @file
 * End-to-end non-interference audit (the paper's central security
 * claim, visualised in its Figure 4). A victim (mcf on core 0) runs
 * against maximally different co-runner sets — all-idle vs all-hog —
 * and its externally visible timeline (per-request service history +
 * instruction-progress curve) must be BIT-IDENTICAL under every
 * secure scheduler, and measurably different under the baseline.
 */

#include <gtest/gtest.h>

#include <string>

#include "core/noninterference.hh"
#include "harness/experiment.hh"
#include "leakage/channel.hh"

using namespace memsec;
using namespace memsec::harness;

namespace {

core::VictimTimeline
victimRun(const std::string &scheme, const std::string &corunner)
{
    Config c = defaultConfig();
    c.merge(schemeConfig(scheme));
    // Victim on core 0, seven identical co-runners.
    c.set("workload", "mcf," + corunner + "," + corunner + "," +
                          corunner + "," + corunner + "," + corunner +
                          "," + corunner + "," + corunner);
    c.set("cores", 8);
    c.set("sim.warmup", 0);
    c.set("sim.measure", 40000);
    c.set("audit.core", 0);
    c.set("audit.progress_interval", 1000);
    const ExperimentResult r = runExperiment(c);
    return r.timelines.at(0);
}

} // namespace

class SecureSchemeAudit : public ::testing::TestWithParam<std::string>
{
};

TEST_P(SecureSchemeAudit, VictimTimelineIndependentOfCoRunners)
{
    const std::string scheme = GetParam();
    const auto quiet = victimRun(scheme, "idle");
    const auto noisy = victimRun(scheme, "hog");
    ASSERT_FALSE(quiet.service.empty());
    const auto audit = core::compareTimelines(quiet, noisy);
    EXPECT_TRUE(audit.identical)
        << scheme << " leaked: " << audit.detail;
}

INSTANTIATE_TEST_SUITE_P(AllSecureSchemes, SecureSchemeAudit,
                         ::testing::Values("fs_rp", "fs_bp",
                                           "fs_reordered_bp", "fs_np",
                                           "fs_np_triple", "tp_bp",
                                           "tp_np", "fs_rp_suppress",
                                           "fs_rp_powerdown"));

TEST(LeakageAudit, BaselineLeaksCoRunnerIntensity)
{
    const auto quiet = victimRun("baseline", "idle");
    const auto noisy = victimRun("baseline", "hog");
    const auto audit = core::compareTimelines(quiet, noisy);
    EXPECT_FALSE(audit.identical);
    // The progress curves diverge visibly (Figure 4's red vs blue).
    EXPECT_GT(audit.maxProgressSkewPct, 5.0);
}

TEST(LeakageAudit, FsPrefetchVictimPrefetchesStayPrivate)
{
    // The prefetch optimisation must not reintroduce a channel: the
    // victim's own prefetches ride its own dummy slots only.
    Config c = defaultConfig();
    c.merge(schemeConfig("fs_rp_prefetch"));
    c.set("cores", 8);
    c.set("sim.warmup", 0);
    c.set("sim.measure", 40000);
    c.set("audit.core", 0);

    c.set("workload", "libquantum,idle,idle,idle,idle,idle,idle,idle");
    const auto quiet = runExperiment(c).timelines.at(0);
    c.set("workload", "libquantum,hog,hog,hog,hog,hog,hog,hog");
    const auto noisy = runExperiment(c).timelines.at(0);
    const auto audit = core::compareTimelines(quiet, noisy);
    EXPECT_TRUE(audit.identical) << audit.detail;
}

// -- empirical leakage meter (covert queueing channel) -------------

namespace {

leakage::LeakageReport
covertChannelRun(const std::string &scheme)
{
    Config c = defaultConfig();
    c.merge(schemeConfig(scheme));
    // Receiver probe on the audited core 0, modulated senders on the
    // other seven (same protocol as bench/fig_leakage, shorter run).
    c.set("workload", "probe,modsender,modsender,modsender,modsender,"
                      "modsender,modsender,modsender");
    c.set("cores", 8);
    c.set("sim.warmup", 0);
    c.set("sim.measure", 120000);
    c.set("audit.core", 0);
    c.set("leak.window", 1500);
    c.set("leak.secret_seed", 0xC0FFEE);
    c.set("leak.secret_bits", 32);
    c.set("leak.skip_windows", 2);
    const ExperimentResult r = runExperiment(c);
    return leakage::analyzeLeakage(
        r.timelines.at(0), leakage::ChannelParams::fromConfig(c));
}

} // namespace

TEST(CovertChannel, FrFcfsDecodesTheSecret)
{
    // The attack works against the non-secure baseline: MI clears the
    // shuffle noise band and the blind decoder beats chance soundly.
    const auto rep = covertChannelRun("baseline");
    ASSERT_GT(rep.windows, 30u);
    EXPECT_GT(rep.mi.pluginBits, rep.mi.shuffleMaxBits);
    EXPECT_GT(rep.mi.correctedBits, 0.3);
    EXPECT_LT(rep.rawBer, 0.25);
    EXPECT_LT(rep.votedBer, 0.20);
    EXPECT_GT(rep.bitsPerSecond, 0.0);
}

class CovertChannelSecure : public ::testing::TestWithParam<std::string>
{
};

TEST_P(CovertChannelSecure, SchedulerClosesTheChannel)
{
    // Same attack, secure scheduler: the MI estimate sits within the
    // estimator's noise of zero and the decoder is reduced to a coin
    // flip (its all-equal-latency degenerate decode makes the BER the
    // observed fraction of 1-bits).
    const auto rep = covertChannelRun(GetParam());
    ASSERT_GT(rep.windows, 30u);
    EXPECT_LT(rep.mi.correctedBits, 0.05);
    EXPECT_GT(rep.rawBer, 0.35);
    EXPECT_LT(rep.rawBer, 0.65);
    EXPECT_GT(rep.votedBer, 0.35);
    EXPECT_LT(rep.votedBer, 0.65);
}

INSTANTIATE_TEST_SUITE_P(SecureSchemes, CovertChannelSecure,
                         ::testing::Values("fs_rp", "fs_bp", "fs_np",
                                           "fs_reordered_bp", "tp_bp",
                                           "tp_np"));

// -- trained near-capacity attacker (leak.code.*) ------------------

namespace {

/**
 * The bench/fig_leakage attacker protocol at integration-test scale:
 * balanced secret (source entropy exactly 1 bit/window), 9-pilot
 * preamble (prime 41-window frame), adaptive timing and guard.
 */
leakage::LeakageReport
attackerRun(const std::string &scheme, uint64_t window,
            uint64_t measure)
{
    Config c = defaultConfig();
    c.merge(schemeConfig(scheme));
    c.set("workload", "probe,modsender,modsender,modsender,modsender,"
                      "modsender,modsender,modsender");
    c.set("cores", 8);
    c.set("sim.warmup", 0);
    c.set("sim.measure", measure);
    c.set("audit.core", 0);
    c.set("leak.window", window);
    c.set("leak.secret_seed", 0xC0FFF2);
    c.set("leak.secret_bits", 32);
    c.set("leak.skip_windows", 2);
    c.set("leak.code.preamble", 9);
    const ExperimentResult r = runExperiment(c);
    return leakage::analyzeLeakage(
        r.timelines.at(0), leakage::ChannelParams::fromConfig(c));
}

} // namespace

TEST(NearCapacityAttacker, FrFcfsReaches80PercentOfBound)
{
    // The acceptance gate of the attacker upgrade, as an exit code:
    // against FR-FCFS the trained decoder must realise at least 80%
    // of the Gong-Kiyavash closed-form bound (1 bit/window here —
    // min(source entropy, log2(1 + queue occupancy)) with a balanced
    // 1-bit-per-window secret), where the old blind meter managed as
    // little as ~30% under partitioning.
    const auto rep = attackerRun("baseline", 2000, 480000);
    ASSERT_TRUE(rep.attackerActive);
    ASSERT_GT(rep.windows, 200u);
    EXPECT_TRUE(rep.modelUsable);
    const double boundBitsPerWindow = 1.0;
    EXPECT_GE(rep.attackerBitsPerWindow,
              0.80 * boundBitsPerWindow)
        << rep.toString();
    // And it actually reads the secret, not just the statistic.
    EXPECT_LT(rep.mlVotedBer, 0.05);
    EXPECT_LT(rep.mlRawBer, 0.10);
    EXPECT_GT(rep.attackerBitsPerSecond, 100000.0);
}

class AttackerVsSecure : public ::testing::TestWithParam<std::string>
{
};

TEST_P(AttackerVsSecure, TrainedAttackerStaysAtNoiseFloor)
{
    // The same near-capacity attacker mounted on a certified scheme
    // must be *refused* by its own model-validity gate: pilot
    // separation under the usability floor, both MI meters at the
    // shuffle noise floor, and — because the refused decoder outputs
    // all zeros against a balanced secret — a voted BER of exactly
    // one half. A deterministic coin flip, not a lucky one.
    // (Full fig_leakage run length: the separation statistic needs
    // enough pilots per class for its sampling noise to sit clearly
    // under the usability floor — tp/none completes only ~2 probes
    // per window, the sparsest channel in the sweep.)
    const auto rep = attackerRun(GetParam(), 1500, 480000);
    ASSERT_TRUE(rep.attackerActive);
    ASSERT_GT(rep.windows, 100u);
    EXPECT_FALSE(rep.modelUsable) << "pilot d' "
                                  << rep.pilotSeparation;
    EXPECT_LT(rep.llrMi.correctedBits, 0.05);
    EXPECT_LT(rep.mi.correctedBits, 0.05);
    EXPECT_DOUBLE_EQ(rep.mlVotedBer, 0.5);
    EXPECT_GT(rep.mlRawBer, 0.35);
    EXPECT_LT(rep.mlRawBer, 0.65);
}

INSTANTIATE_TEST_SUITE_P(SecureSchemes, AttackerVsSecure,
                         ::testing::Values("fs_bp", "tp_np"));

TEST(LeakageAudit, VictimSeesSameServiceRegardlessOfOwnPosition)
{
    // Swapping which co-runner profile sits on which core must not
    // change the victim's timeline either (slot assignment is by
    // domain id, not by behaviour).
    Config c = defaultConfig();
    c.merge(schemeConfig("fs_rp"));
    c.set("cores", 8);
    c.set("sim.warmup", 0);
    c.set("sim.measure", 40000);
    c.set("audit.core", 0);
    c.set("workload", "mcf,hog,idle,hog,idle,hog,idle,hog");
    const auto a = runExperiment(c).timelines.at(0);
    c.set("workload", "mcf,idle,hog,idle,hog,idle,hog,idle");
    const auto b = runExperiment(c).timelines.at(0);
    const auto audit = core::compareTimelines(a, b);
    EXPECT_TRUE(audit.identical) << audit.detail;
}
