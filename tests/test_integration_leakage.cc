/**
 * @file
 * End-to-end non-interference audit (the paper's central security
 * claim, visualised in its Figure 4). A victim (mcf on core 0) runs
 * against maximally different co-runner sets — all-idle vs all-hog —
 * and its externally visible timeline (per-request service history +
 * instruction-progress curve) must be BIT-IDENTICAL under every
 * secure scheduler, and measurably different under the baseline.
 */

#include <gtest/gtest.h>

#include <string>

#include "core/noninterference.hh"
#include "harness/experiment.hh"
#include "leakage/channel.hh"

using namespace memsec;
using namespace memsec::harness;

namespace {

core::VictimTimeline
victimRun(const std::string &scheme, const std::string &corunner)
{
    Config c = defaultConfig();
    c.merge(schemeConfig(scheme));
    // Victim on core 0, seven identical co-runners.
    c.set("workload", "mcf," + corunner + "," + corunner + "," +
                          corunner + "," + corunner + "," + corunner +
                          "," + corunner + "," + corunner);
    c.set("cores", 8);
    c.set("sim.warmup", 0);
    c.set("sim.measure", 40000);
    c.set("audit.core", 0);
    c.set("audit.progress_interval", 1000);
    const ExperimentResult r = runExperiment(c);
    return r.timelines.at(0);
}

} // namespace

class SecureSchemeAudit : public ::testing::TestWithParam<std::string>
{
};

TEST_P(SecureSchemeAudit, VictimTimelineIndependentOfCoRunners)
{
    const std::string scheme = GetParam();
    const auto quiet = victimRun(scheme, "idle");
    const auto noisy = victimRun(scheme, "hog");
    ASSERT_FALSE(quiet.service.empty());
    const auto audit = core::compareTimelines(quiet, noisy);
    EXPECT_TRUE(audit.identical)
        << scheme << " leaked: " << audit.detail;
}

INSTANTIATE_TEST_SUITE_P(AllSecureSchemes, SecureSchemeAudit,
                         ::testing::Values("fs_rp", "fs_bp",
                                           "fs_reordered_bp", "fs_np",
                                           "fs_np_triple", "tp_bp",
                                           "tp_np", "fs_rp_suppress",
                                           "fs_rp_powerdown"));

TEST(LeakageAudit, BaselineLeaksCoRunnerIntensity)
{
    const auto quiet = victimRun("baseline", "idle");
    const auto noisy = victimRun("baseline", "hog");
    const auto audit = core::compareTimelines(quiet, noisy);
    EXPECT_FALSE(audit.identical);
    // The progress curves diverge visibly (Figure 4's red vs blue).
    EXPECT_GT(audit.maxProgressSkewPct, 5.0);
}

TEST(LeakageAudit, FsPrefetchVictimPrefetchesStayPrivate)
{
    // The prefetch optimisation must not reintroduce a channel: the
    // victim's own prefetches ride its own dummy slots only.
    Config c = defaultConfig();
    c.merge(schemeConfig("fs_rp_prefetch"));
    c.set("cores", 8);
    c.set("sim.warmup", 0);
    c.set("sim.measure", 40000);
    c.set("audit.core", 0);

    c.set("workload", "libquantum,idle,idle,idle,idle,idle,idle,idle");
    const auto quiet = runExperiment(c).timelines.at(0);
    c.set("workload", "libquantum,hog,hog,hog,hog,hog,hog,hog");
    const auto noisy = runExperiment(c).timelines.at(0);
    const auto audit = core::compareTimelines(quiet, noisy);
    EXPECT_TRUE(audit.identical) << audit.detail;
}

// -- empirical leakage meter (covert queueing channel) -------------

namespace {

leakage::LeakageReport
covertChannelRun(const std::string &scheme)
{
    Config c = defaultConfig();
    c.merge(schemeConfig(scheme));
    // Receiver probe on the audited core 0, modulated senders on the
    // other seven (same protocol as bench/fig_leakage, shorter run).
    c.set("workload", "probe,modsender,modsender,modsender,modsender,"
                      "modsender,modsender,modsender");
    c.set("cores", 8);
    c.set("sim.warmup", 0);
    c.set("sim.measure", 120000);
    c.set("audit.core", 0);
    c.set("leak.window", 1500);
    c.set("leak.secret_seed", 0xC0FFEE);
    c.set("leak.secret_bits", 32);
    c.set("leak.skip_windows", 2);
    const ExperimentResult r = runExperiment(c);
    return leakage::analyzeLeakage(
        r.timelines.at(0), leakage::ChannelParams::fromConfig(c));
}

} // namespace

TEST(CovertChannel, FrFcfsDecodesTheSecret)
{
    // The attack works against the non-secure baseline: MI clears the
    // shuffle noise band and the blind decoder beats chance soundly.
    const auto rep = covertChannelRun("baseline");
    ASSERT_GT(rep.windows, 30u);
    EXPECT_GT(rep.mi.pluginBits, rep.mi.shuffleMaxBits);
    EXPECT_GT(rep.mi.correctedBits, 0.3);
    EXPECT_LT(rep.rawBer, 0.25);
    EXPECT_LT(rep.votedBer, 0.20);
    EXPECT_GT(rep.bitsPerSecond, 0.0);
}

class CovertChannelSecure : public ::testing::TestWithParam<std::string>
{
};

TEST_P(CovertChannelSecure, SchedulerClosesTheChannel)
{
    // Same attack, secure scheduler: the MI estimate sits within the
    // estimator's noise of zero and the decoder is reduced to a coin
    // flip (its all-equal-latency degenerate decode makes the BER the
    // observed fraction of 1-bits).
    const auto rep = covertChannelRun(GetParam());
    ASSERT_GT(rep.windows, 30u);
    EXPECT_LT(rep.mi.correctedBits, 0.05);
    EXPECT_GT(rep.rawBer, 0.35);
    EXPECT_LT(rep.rawBer, 0.65);
    EXPECT_GT(rep.votedBer, 0.35);
    EXPECT_LT(rep.votedBer, 0.65);
}

INSTANTIATE_TEST_SUITE_P(SecureSchemes, CovertChannelSecure,
                         ::testing::Values("fs_rp", "fs_bp", "fs_np",
                                           "fs_reordered_bp", "tp_bp",
                                           "tp_np"));

TEST(LeakageAudit, VictimSeesSameServiceRegardlessOfOwnPosition)
{
    // Swapping which co-runner profile sits on which core must not
    // change the victim's timeline either (slot assignment is by
    // domain id, not by behaviour).
    Config c = defaultConfig();
    c.merge(schemeConfig("fs_rp"));
    c.set("cores", 8);
    c.set("sim.warmup", 0);
    c.set("sim.measure", 40000);
    c.set("audit.core", 0);
    c.set("workload", "mcf,hog,idle,hog,idle,hog,idle,hog");
    const auto a = runExperiment(c).timelines.at(0);
    c.set("workload", "mcf,idle,hog,idle,hog,idle,hog,idle");
    const auto b = runExperiment(c).timelines.at(0);
    const auto audit = core::compareTimelines(a, b);
    EXPECT_TRUE(audit.identical) << audit.detail;
}
