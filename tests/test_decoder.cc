/**
 * @file
 * Unit tests for the near-capacity attacker (src/leakage/codec.hh +
 * decoder.hh): frame encoding and role mapping, the scalar matched
 * filter against its analytic BER, the trained ML decoder against
 * the blind median-threshold decoder on synthetic channels, and
 * adaptive symbol-timing recovery from mis-specified periods.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/noninterference.hh"
#include "leakage/channel.hh"
#include "leakage/codec.hh"
#include "leakage/decoder.hh"
#include "leakage/secret.hh"
#include "util/random.hh"

using namespace memsec;
using namespace memsec::leakage;

namespace {

/** Standard normal via Box-Muller on the seeded Rng. */
double
gauss(Rng &rng)
{
    const double u1 = 1.0 - rng.uniform();
    const double u2 = rng.uniform();
    return std::sqrt(-2.0 * std::log(u1)) *
           std::cos(2.0 * 3.14159265358979323846 * u2);
}

/** Gaussian tail Q(x) = P(N(0,1) > x). */
double
qfunc(double x)
{
    return 0.5 * std::erfc(x / std::sqrt(2.0));
}

std::vector<uint8_t>
randomSecret(Rng &rng, size_t n)
{
    std::vector<uint8_t> s;
    for (size_t i = 0; i < n; ++i)
        s.push_back(static_cast<uint8_t>(rng.next() & 1u));
    return s;
}

} // namespace

// -- codec ---------------------------------------------------------

TEST(Codec, DefaultCodeIsPassThrough)
{
    // No preamble, repeat 1, on-off: the frame *is* the secret, so
    // legacy configurations transmit byte-identical traffic.
    const auto secret = secretBits(0xC0FFEE, 32);
    const SymbolFrame f = encodeFrame(secret, CodeParams{});
    EXPECT_EQ(f.symbols, secret);
    for (size_t w = 0; w < 3 * f.length(); ++w) {
        EXPECT_EQ(f.symbolAt(w), secret[w % secret.size()]);
        const SymbolRole role = f.roleOf(w);
        EXPECT_FALSE(role.pilot);
        EXPECT_EQ(role.bitIndex, w % secret.size());
        EXPECT_FALSE(role.inverted);
    }
}

TEST(Codec, PreambleIsAlternatingPilots)
{
    CodeParams p;
    p.preambleSymbols = 5;
    const SymbolFrame f = encodeFrame({1, 0, 1}, p);
    ASSERT_EQ(f.length(), 8u);
    const std::vector<uint8_t> want = {1, 0, 1, 0, 1, 1, 0, 1};
    EXPECT_EQ(f.symbols, want);
    for (size_t i = 0; i < 5; ++i)
        EXPECT_TRUE(f.roleOf(i).pilot);
    for (size_t i = 5; i < 8; ++i) {
        EXPECT_FALSE(f.roleOf(i).pilot);
        EXPECT_EQ(f.roleOf(i).bitIndex, i - 5);
    }
}

TEST(Codec, ManchesterAndRepetitionExpandEachBit)
{
    CodeParams p;
    p.scheme = CodeParams::Scheme::Manchester;
    p.repeat = 2;
    const SymbolFrame f = encodeFrame({1, 0}, p);
    // Per bit: b b (1-b) (1-b).
    const std::vector<uint8_t> want = {1, 1, 0, 0, 0, 0, 1, 1};
    EXPECT_EQ(f.symbols, want);
    EXPECT_EQ(f.roleOf(0).bitIndex, 0u);
    EXPECT_FALSE(f.roleOf(1).inverted);
    EXPECT_TRUE(f.roleOf(2).inverted);
    EXPECT_TRUE(f.roleOf(3).inverted);
    EXPECT_EQ(f.roleOf(4).bitIndex, 1u);
    EXPECT_DOUBLE_EQ(p.codeRate(2), 2.0 / 8.0);
}

TEST(Codec, HardDecodeRoundTripsCleanDecisions)
{
    Rng rng(0xC0DEC);
    for (int iter = 0; iter < 10; ++iter) {
        CodeParams p;
        p.scheme = (rng.next() & 1) ? CodeParams::Scheme::Manchester
                                    : CodeParams::Scheme::OnOff;
        p.preambleSymbols = rng.below(6);
        p.repeat = 1 + static_cast<unsigned>(rng.below(3));
        const auto secret = randomSecret(rng, 8 + rng.below(16));
        const SymbolFrame f = encodeFrame(secret, p);
        // Two full noiseless frames of per-window decisions.
        std::vector<uint8_t> decisions;
        for (size_t w = 0; w < 2 * f.length(); ++w)
            decisions.push_back(f.symbolAt(w));
        const CodecDecodeResult out = decodeHard(decisions, f);
        ASSERT_EQ(out.bits.size(), secret.size());
        for (size_t b = 0; b < secret.size(); ++b) {
            EXPECT_EQ(out.observed[b], 1u);
            EXPECT_EQ(out.bits[b], secret[b]) << "iter " << iter;
        }
    }
}

// -- matched filter ------------------------------------------------

TEST(MatchedFilter, BerTracksAnalyticAcrossSnrSweep)
{
    // Antipodal signalling through additive white Gaussian noise:
    // with one window per bit and per-window SNR A/sigma, the
    // matched filter's BER is Q(A/sigma). Check the empirical BER
    // against the closed form across an SNR sweep, within binomial
    // noise (4 sigma of sqrt(p(1-p)/n)).
    Rng rng(0x5123);
    CodeParams p;
    // A generous preamble keeps the estimated threshold's own noise
    // (variance sigma^2/16 here) well under the binomial tolerance.
    p.preambleSymbols = 32;
    for (const double snr : {0.5, 1.0, 2.0}) {
        const double expected = qfunc(snr);
        size_t bits = 0, errors = 0;
        for (int trial = 0; trial < 30; ++trial) {
            const auto secret = randomSecret(rng, 192);
            const SymbolFrame f = encodeFrame(secret, p);
            std::vector<double> obs;
            for (size_t w = 0; w < f.length(); ++w)
                obs.push_back((f.symbolAt(w) ? snr : -snr) +
                              gauss(rng));
            const MatchedDecodeResult out = matchedFilterDecode(obs, f);
            for (size_t b = 0; b < secret.size(); ++b) {
                ++bits;
                errors += out.bits[b] != secret[b];
            }
        }
        const double ber =
            static_cast<double>(errors) / static_cast<double>(bits);
        const double tol =
            4.0 * std::sqrt(expected * (1.0 - expected) /
                            static_cast<double>(bits));
        EXPECT_NEAR(ber, expected, tol) << "snr " << snr;
    }
}

TEST(MatchedFilter, RepetitionBuysTheCodingGain)
{
    // Soft-combining R repeated windows multiplies the effective
    // amplitude by sqrt(R): BER falls from Q(s) to Q(s * sqrt(R)).
    Rng rng(0x5124);
    const double snr = 0.75;
    for (const unsigned repeat : {1u, 4u}) {
        CodeParams p;
        p.preambleSymbols = 32;
        p.repeat = repeat;
        const double expected =
            qfunc(snr * std::sqrt(static_cast<double>(repeat)));
        size_t bits = 0, errors = 0;
        for (int trial = 0; trial < 30; ++trial) {
            const auto secret = randomSecret(rng, 96);
            const SymbolFrame f = encodeFrame(secret, p);
            std::vector<double> obs;
            for (size_t w = 0; w < f.length(); ++w)
                obs.push_back((f.symbolAt(w) ? snr : -snr) +
                              gauss(rng));
            const MatchedDecodeResult out = matchedFilterDecode(obs, f);
            for (size_t b = 0; b < secret.size(); ++b) {
                ++bits;
                errors += out.bits[b] != secret[b];
            }
        }
        const double ber =
            static_cast<double>(errors) / static_cast<double>(bits);
        const double tol =
            4.0 * std::sqrt(expected * (1.0 - expected) /
                                static_cast<double>(bits) +
                            1e-8);
        EXPECT_NEAR(ber, expected, tol) << "repeat " << repeat;
    }
}

TEST(MatchedFilter, CorrelationFindsTheTemplate)
{
    const std::vector<uint8_t> symbols = {1, 0, 1, 1, 0, 0, 1, 0};
    std::vector<double> aligned, inverted, flat;
    for (const uint8_t s : symbols) {
        aligned.push_back(s ? 7.0 : 3.0);
        inverted.push_back(s ? 3.0 : 7.0);
        flat.push_back(5.0);
    }
    EXPECT_NEAR(matchedFilterCorrelation(aligned, symbols), 1.0, 1e-9);
    // Polarity is folded into |corr|: an inverted channel is still a
    // perfectly correlated channel.
    EXPECT_NEAR(matchedFilterCorrelation(inverted, symbols), 1.0,
                1e-9);
    EXPECT_EQ(matchedFilterCorrelation(flat, symbols), 0.0);
}

// -- trained ML decoder vs the blind median threshold --------------

namespace {

/**
 * Synthesize a receiver timeline for a channel whose per-window
 * service pattern is `emit(symbol, window, rng)` returning latency
 * samples; windows are 100 cycles, samples spread across the window.
 */
template <typename Emit>
core::VictimTimeline
synthTimeline(const SymbolFrame &frame, size_t windows, Emit emit,
              uint64_t seed)
{
    core::VictimTimeline tl;
    Rng rng(seed);
    for (size_t w = 0; w < windows; ++w) {
        const auto lat = emit(frame.symbolAt(w), rng);
        for (size_t i = 0; i < lat.size(); ++i) {
            const Cycle arrival =
                w * 100 +
                (i * 100) / static_cast<Cycle>(lat.size());
            tl.recordService(arrival, arrival + lat[i]);
        }
    }
    return tl;
}

ChannelParams
synthParams()
{
    ChannelParams p;
    p.windowCycles = 100;
    p.secretSeed = 0xC0FFF2; // balanced 16/32 secret
    p.secretBits = 32;
    p.skipWindows = 1;
    p.code.preambleSymbols = 9; // prime 41-window frame
    p.adaptTiming = false;      // period is exact here
    return p;
}

} // namespace

TEST(MlDecoder, BeatsMedianThresholdOnEverySyntheticChannel)
{
    const ChannelParams params = synthParams();
    const SymbolFrame frame = encodeFrame(
        secretBits(params.secretSeed, params.secretBits), params.code);
    const size_t windows = 6 * frame.length();

    struct Channel
    {
        const char *name;
        std::vector<double> (*emit)(uint8_t, Rng &);
        bool medianShouldFail;
    };
    const std::vector<Channel> channels = {
        // Mean shift: both decoders should read it.
        {"mean-shift",
         [](uint8_t s, Rng &rng) {
             std::vector<double> v;
             for (int i = 0; i < 6; ++i)
                 v.push_back((s ? 60.0 : 30.0) +
                             static_cast<double>(rng.below(10)));
             return v;
         },
         false},
        // Throughput-only: latency is flat, the symbol shows only in
        // how many probe requests complete. The median-threshold
        // decoder is blind to it; the count feature reads it.
        {"count-only",
         [](uint8_t s, Rng &rng) {
             std::vector<double> v;
             for (int i = 0; i < (s ? 3 : 9); ++i)
                 v.push_back(40.0 +
                             static_cast<double>(rng.below(4)));
             return v;
         },
         true},
        // Dispersion-only: identical window means, the symbol lives
        // in the spread — the p90 tail feature reads it.
        {"variance-only",
         [](uint8_t s, Rng &rng) {
             std::vector<double> v;
             for (int i = 0; i < 8; ++i) {
                 const double sign = (i % 2) ? 1.0 : -1.0;
                 v.push_back(100.0 +
                             sign * (s ? 40.0 : 4.0) +
                             static_cast<double>(rng.below(3)));
             }
             return v;
         },
         true},
    };

    for (const auto &ch : channels) {
        const auto tl =
            synthTimeline(frame, windows, ch.emit, 0xFEED);
        const LeakageReport rep = analyzeLeakage(tl, params);
        ASSERT_TRUE(rep.attackerActive);
        EXPECT_TRUE(rep.modelUsable) << ch.name;
        // The trained decoder never loses to the blind one, and wins
        // outright on the channels the median cannot see.
        EXPECT_LE(rep.mlVotedBer, rep.votedBer) << ch.name;
        EXPECT_LT(rep.mlVotedBer, 0.05) << ch.name;
        if (ch.medianShouldFail)
            EXPECT_GT(rep.votedBer, 0.25) << ch.name;
    }
}

TEST(MlDecoder, RefusesToGuessOnAFlatChannel)
{
    const ChannelParams params = synthParams();
    const SymbolFrame frame = encodeFrame(
        secretBits(params.secretSeed, params.secretBits), params.code);
    const auto tl = synthTimeline(
        frame, 6 * frame.length(),
        [](uint8_t, Rng &rng) {
            std::vector<double> v;
            for (int i = 0; i < 6; ++i)
                v.push_back(50.0 + static_cast<double>(rng.below(8)));
            return v;
        },
        0xF1A7);
    const LeakageReport rep = analyzeLeakage(tl, params);
    ASSERT_TRUE(rep.attackerActive);
    EXPECT_FALSE(rep.modelUsable);
    // All-zero fallback decode + balanced secret = BER exactly 1/2.
    EXPECT_DOUBLE_EQ(rep.mlVotedBer, 0.5);
    EXPECT_LT(rep.llrMi.correctedBits, 0.02);
}

// -- adaptive symbol timing ----------------------------------------

TEST(AdaptiveTiming, ConvergesFromMisspecifiedPeriods)
{
    // True period 100 cycles; hints off by -20%..+20% must all lock
    // onto it (the sweep spans hint * [0.75, 1.25]).
    ChannelParams params = synthParams();
    const SymbolFrame frame = encodeFrame(
        secretBits(params.secretSeed, params.secretBits), params.code);
    const auto tl = synthTimeline(
        frame, 8 * frame.length(),
        [](uint8_t s, Rng &rng) {
            std::vector<double> v;
            for (int i = 0; i < 6; ++i)
                v.push_back((s ? 70.0 : 30.0) +
                            static_cast<double>(rng.below(6)));
            return v;
        },
        0x71ED);
    for (const Cycle hint : {80u, 90u, 100u, 120u}) {
        const TimingEstimate est = estimateSymbolTiming(
            tl, frame, hint, params.timingSpan, params.timingSteps,
            params.skipWindows);
        EXPECT_TRUE(est.converged) << "hint " << hint;
        EXPECT_NEAR(static_cast<double>(est.windowCycles), 100.0, 2.0)
            << "hint " << hint;
    }
}

TEST(AdaptiveTiming, FlatChannelDoesNotConverge)
{
    ChannelParams params = synthParams();
    const SymbolFrame frame = encodeFrame(
        secretBits(params.secretSeed, params.secretBits), params.code);
    const auto tl = synthTimeline(
        frame, 8 * frame.length(),
        [](uint8_t, Rng &rng) {
            std::vector<double> v;
            for (int i = 0; i < 6; ++i)
                v.push_back(50.0 + static_cast<double>(rng.below(8)));
            return v;
        },
        0xF1A8);
    const TimingEstimate est = estimateSymbolTiming(
        tl, frame, 100, params.timingSpan, params.timingSteps,
        params.skipWindows);
    EXPECT_FALSE(est.converged);
}

TEST(AdaptiveTiming, EndToEndRecoversFromWrongConfigWindow)
{
    // Full pipeline: config says 90 cycles, the sender really used
    // 100. With adapt_timing the attacker decodes anyway.
    ChannelParams params = synthParams();
    const SymbolFrame frame = encodeFrame(
        secretBits(params.secretSeed, params.secretBits), params.code);
    const auto tl = synthTimeline(
        frame, 8 * frame.length(),
        [](uint8_t s, Rng &rng) {
            std::vector<double> v;
            for (int i = 0; i < 6; ++i)
                v.push_back((s ? 70.0 : 30.0) +
                            static_cast<double>(rng.below(6)));
            return v;
        },
        0x71EE);
    params.windowCycles = 90; // mis-specified
    params.adaptTiming = true;
    const LeakageReport rep = analyzeLeakage(tl, params);
    ASSERT_TRUE(rep.attackerActive);
    EXPECT_NEAR(static_cast<double>(rep.estimatedWindowCycles), 100.0,
                2.0);
    EXPECT_LT(rep.mlVotedBer, 0.05);
}
