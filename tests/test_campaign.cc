/**
 * @file
 * Campaign runner tests. The load-bearing one is the determinism
 * check: a mixed FS/TP/baseline campaign run with --jobs 8 must be
 * byte-identical (per resultDigest, which renders every double in
 * hexfloat and includes the noninterference timelines) to the same
 * campaign run serially. Parallelism that perturbed any run's
 * timeline would silently invalidate the leakage audit, so this is a
 * security property, not a convenience.
 *
 * Also covered: memoization accounting (equal canonical configs run
 * once), failure isolation (a throwing run or an injected
 * queue-overflow fault must not kill or perturb sibling runs), and
 * fingerprint stability.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "harness/campaign.hh"
#include "harness/experiment.hh"
#include "util/logging.hh"

using namespace memsec;
using harness::Campaign;
using harness::CampaignOptions;
using harness::ExperimentResult;

namespace {

/** A small but non-trivial config: 2 cores, timelines captured. */
Config
tinyConfig(const std::string &scheme, const std::string &workload,
           Cycle measure = 3000)
{
    Config c = harness::defaultConfig();
    c.merge(harness::schemeConfig(scheme));
    c.set("cores", 2);
    c.set("workload", workload);
    c.set("sim.warmup", 500);
    c.set("sim.measure", static_cast<int64_t>(measure));
    c.set("audit.core", 0); // capture victim timelines
    return c;
}

/** The mixed campaign both determinism runs submit. */
void
submitMixedCampaign(Campaign &campaign)
{
    campaign.add("baseline/mcf", tinyConfig("baseline", "mcf,mcf"));
    campaign.add("fs_rp/mcf", tinyConfig("fs_rp", "mcf,mcf"));
    campaign.add("fs_rp/milc", tinyConfig("fs_rp", "milc,mcf"));
    campaign.add("tp_bp/mcf", tinyConfig("tp_bp", "mcf,mcf"));
    campaign.add("fs_reordered_bp/lbm",
                 tinyConfig("fs_reordered_bp", "lbm,mcf"));
    campaign.add("baseline/milc", tinyConfig("baseline", "milc,milc"));
}

} // namespace

// ---------------------------------------------------------------------
// Determinism: parallel == serial, byte for byte.
// ---------------------------------------------------------------------

TEST(CampaignDeterminism, ParallelIsByteIdenticalToSerial)
{
    setQuiet(true);

    Campaign serial;
    submitMixedCampaign(serial);
    CampaignOptions serialOpts;
    serialOpts.jobs = 1;
    const auto &ss = serial.run(serialOpts);
    EXPECT_EQ(ss.failures, 0u);

    Campaign par;
    submitMixedCampaign(par);
    CampaignOptions parOpts;
    parOpts.jobs = 8;
    const auto &ps = par.run(parOpts);
    EXPECT_EQ(ps.failures, 0u);

    ASSERT_EQ(serial.size(), par.size());
    for (size_t i = 0; i < serial.size(); ++i) {
        const auto &a = serial.result(i);
        const auto &b = par.result(i);
        // Timelines must actually have been captured, otherwise the
        // digest comparison is vacuous for the audit.
        ASSERT_FALSE(a.timelines.empty()) << "run " << i;
        ASSERT_FALSE(a.timelines[0].service.empty()) << "run " << i;
        EXPECT_EQ(harness::resultDigest(a), harness::resultDigest(b))
            << "run " << i << " ("
            << serial.outcome(i).label << ") diverged under --jobs 8";
    }
}

TEST(CampaignDeterminism, RepeatedParallelRunsAgree)
{
    setQuiet(true);
    std::vector<std::string> digests;
    for (int rep = 0; rep < 2; ++rep) {
        Campaign c;
        c.add("fs_rp/mcf", tinyConfig("fs_rp", "mcf,mcf"));
        c.add("tp_bp/mcf", tinyConfig("tp_bp", "mcf,mcf"));
        CampaignOptions o;
        o.jobs = 4;
        c.run(o);
        std::string d;
        for (size_t i = 0; i < c.size(); ++i)
            d += harness::resultDigest(c.result(i));
        digests.push_back(d);
    }
    EXPECT_EQ(digests[0], digests[1]);
}

// ---------------------------------------------------------------------
// Memoization: equal canonical configs execute once.
// ---------------------------------------------------------------------

TEST(CampaignMemo, EqualConfigsExecuteOnce)
{
    std::atomic<int> invocations{0};
    Campaign c([&invocations](const Config &) {
        ++invocations;
        ExperimentResult r;
        r.scheme = "stub";
        return r;
    });

    Config a;
    a.set("scheme", "fs_rp");
    a.set("workload", "mcf");
    Config b; // same keys, different insertion order
    b.set("workload", "mcf");
    b.set("scheme", "fs_rp");
    Config d;
    d.set("scheme", "fs_rp");
    d.set("workload", "milc");

    c.add("first", a);
    c.add("dup", b);
    c.add("distinct", d);
    c.add("dup2", a);
    const auto &s = c.run();

    EXPECT_EQ(invocations.load(), 2);
    EXPECT_EQ(s.runs, 4u);
    EXPECT_EQ(s.executed, 2u);
    EXPECT_EQ(s.memoHits, 2u);
    EXPECT_FALSE(c.outcome(0).memoized);
    EXPECT_TRUE(c.outcome(1).memoized);
    EXPECT_FALSE(c.outcome(2).memoized);
    EXPECT_TRUE(c.outcome(3).memoized);
    // Memoized runs still expose the shared result.
    EXPECT_EQ(c.result(1).scheme, "stub");
    EXPECT_EQ(c.result(3).scheme, "stub");
}

TEST(CampaignMemo, RealRunsShareResultsByteForByte)
{
    setQuiet(true);
    Campaign c;
    c.add("a", tinyConfig("fs_rp", "mcf,mcf", 2000));
    c.add("b", tinyConfig("fs_rp", "mcf,mcf", 2000));
    CampaignOptions o;
    o.jobs = 2;
    const auto &s = c.run(o);
    EXPECT_EQ(s.executed, 1u);
    EXPECT_EQ(s.memoHits, 1u);
    EXPECT_EQ(harness::resultDigest(c.result(0)),
              harness::resultDigest(c.result(1)));
    EXPECT_EQ(c.outcome(1).wallSeconds, 0.0);
}

TEST(CampaignMemo, FingerprintIsInsertionOrderStable)
{
    Config a;
    a.set("x", 1);
    a.set("y", "two");
    Config b;
    b.set("y", "two");
    b.set("x", 1);
    EXPECT_EQ(Campaign::fingerprint(a), Campaign::fingerprint(b));

    Config d = a;
    d.set("x", 2);
    EXPECT_NE(Campaign::fingerprint(a), Campaign::fingerprint(d));
}

// ---------------------------------------------------------------------
// Failure isolation.
// ---------------------------------------------------------------------

TEST(CampaignFailures, ThrowingRunDoesNotKillSiblings)
{
    Campaign c([](const Config &cfg) {
        if (cfg.getBool("explode", false))
            throw std::runtime_error("boom");
        ExperimentResult r;
        r.scheme = cfg.getString("scheme", "?");
        return r;
    });
    Config good;
    good.set("scheme", "fine");
    Config bad;
    bad.set("scheme", "doomed");
    bad.set("explode", true);

    c.add("ok0", good);
    const size_t badIdx = c.add("bad", bad);
    Config good2 = good;
    good2.set("tag", 2);
    c.add("ok1", good2);

    CampaignOptions o;
    o.jobs = 3;
    const auto &s = c.run(o);

    EXPECT_EQ(s.failures, 1u);
    EXPECT_FALSE(c.outcome(badIdx).ok);
    EXPECT_NE(c.outcome(badIdx).error.find("boom"), std::string::npos);
    EXPECT_TRUE(c.outcome(0).ok);
    EXPECT_TRUE(c.outcome(2).ok);
    EXPECT_EQ(c.result(0).scheme, "fine");
}

TEST(CampaignFailures, QueueOverflowFaultSurfacesInSummary)
{
    setQuiet(true);
    Campaign c;
    Config faulty = tinyConfig("fs_rp", "mcf,mcf", 4000);
    faulty.set("sim.warmup", 0);
    faulty.set("fault.kind", "queue-overflow");
    faulty.set("fault.rate", 1.0);
    const size_t faultIdx = c.add("fs_rp/faulty", faulty);
    const size_t okIdx =
        c.add("fs_rp/clean", tinyConfig("fs_rp", "mcf,mcf", 2000));

    CampaignOptions o;
    o.jobs = 2;
    const auto &s = c.run(o);

    // The fault is recoverable: the run completes, its SimErrors are
    // aggregated in the summary, and the sibling is untouched.
    EXPECT_EQ(s.failures, 0u);
    EXPECT_TRUE(c.outcome(faultIdx).ok);
    EXPECT_TRUE(c.outcome(okIdx).ok);
    EXPECT_GT(s.simErrors, 0u);
    ASSERT_TRUE(s.simErrorsByCategory.count("queue-overflow"));
    EXPECT_GT(s.simErrorsByCategory.at("queue-overflow"), 0u);
    EXPECT_TRUE(c.result(okIdx).simErrors.empty());
    EXPECT_NE(s.toString().find("queue-overflow"), std::string::npos);
}

// ---------------------------------------------------------------------
// Progress narration and accounting.
// ---------------------------------------------------------------------

TEST(CampaignProgress, NarratesEveryExecutedRun)
{
    Campaign c([](const Config &) { return ExperimentResult{}; });
    Config a;
    a.set("k", 1);
    Config b;
    b.set("k", 2);
    c.add("run-one", a);
    c.add("run-two", b);

    std::ostringstream progress;
    CampaignOptions o;
    o.jobs = 2;
    o.progress = true;
    o.progressStream = &progress;
    c.run(o);

    const std::string out = progress.str();
    EXPECT_NE(out.find("run-one"), std::string::npos);
    EXPECT_NE(out.find("run-two"), std::string::npos);
    EXPECT_NE(out.find("/2]"), std::string::npos);
}

TEST(CampaignProgress, SummaryStringAccountsRuns)
{
    Campaign c([](const Config &) { return ExperimentResult{}; });
    Config a;
    a.set("k", 1);
    c.add("one", a);
    c.add("one-again", a);
    const auto &s = c.run();
    const std::string str = s.toString();
    EXPECT_NE(str.find("2 runs"), std::string::npos);
    EXPECT_NE(str.find("1 executed"), std::string::npos);
    EXPECT_NE(str.find("1 memo hits"), std::string::npos);
    EXPECT_NE(str.find("0 failed"), std::string::npos);
}
