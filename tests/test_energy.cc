#include <gtest/gtest.h>

#include "energy/power_model.hh"

using namespace memsec;
using namespace memsec::energy;

namespace {

PowerModel
model()
{
    return PowerModel(DeviceParams::ddr3_1600_4gb(),
                      dram::TimingParams::ddr3_1600_4gb());
}

} // namespace

TEST(Energy, ZeroCountersZeroEnergy)
{
    dram::RankEnergyCounters c;
    EXPECT_DOUBLE_EQ(model().rankEnergy(c).totalNj(), 0.0);
}

TEST(Energy, BackgroundScalesWithCycles)
{
    dram::RankEnergyCounters a;
    a.cyclesPrecharge = 1000;
    dram::RankEnergyCounters b;
    b.cyclesPrecharge = 2000;
    const auto ea = model().rankEnergy(a);
    const auto eb = model().rankEnergy(b);
    EXPECT_NEAR(eb.backgroundNj, 2.0 * ea.backgroundNj, 1e-9);
}

TEST(Energy, ActiveStandbyCostsMoreThanPrecharge)
{
    dram::RankEnergyCounters a;
    a.cyclesActive = 1000;
    dram::RankEnergyCounters p;
    p.cyclesPrecharge = 1000;
    EXPECT_GT(model().rankEnergy(a).backgroundNj,
              model().rankEnergy(p).backgroundNj);
}

TEST(Energy, PowerDownCheaperThanPrechargeStandby)
{
    dram::RankEnergyCounters pd;
    pd.cyclesPowerDown = 1000;
    dram::RankEnergyCounters ps;
    ps.cyclesPrecharge = 1000;
    EXPECT_LT(model().rankEnergy(pd).backgroundNj,
              model().rankEnergy(ps).backgroundNj * 0.5);
}

TEST(Energy, ActivateEnergyPositiveAndLinear)
{
    dram::RankEnergyCounters c;
    c.activates = 10;
    const double e10 = model().rankEnergy(c).activateNj;
    EXPECT_GT(e10, 0.0);
    c.activates = 20;
    EXPECT_NEAR(model().rankEnergy(c).activateNj, 2.0 * e10, 1e-9);
}

TEST(Energy, SuppressedOpsCostNothing)
{
    dram::RankEnergyCounters c;
    c.suppressedActs = 100;
    c.suppressedCas = 100;
    EXPECT_DOUBLE_EQ(model().rankEnergy(c).totalNj(), 0.0);
}

TEST(Energy, ReadWriteBurstEnergy)
{
    dram::RankEnergyCounters c;
    c.reads = 100;
    const double er = model().rankEnergy(c).readWriteNj;
    EXPECT_GT(er, 0.0);
    c.reads = 0;
    c.writes = 100;
    const double ew = model().rankEnergy(c).readWriteNj;
    // IDD4W > IDD4R for this part.
    EXPECT_GT(ew, er);
}

TEST(Energy, RefreshEnergyCounted)
{
    dram::RankEnergyCounters c;
    c.refreshes = 5;
    EXPECT_GT(model().rankEnergy(c).refreshNj, 0.0);
}

TEST(Energy, BreakdownSumsToTotal)
{
    dram::RankEnergyCounters c;
    c.activates = 50;
    c.reads = 40;
    c.writes = 10;
    c.refreshes = 2;
    c.cyclesActive = 500;
    c.cyclesPrecharge = 400;
    c.cyclesPowerDown = 100;
    const auto e = model().rankEnergy(c);
    EXPECT_NEAR(e.totalNj(), e.backgroundNj + e.activateNj +
                                 e.readWriteNj + e.refreshNj,
                1e-9);
}

TEST(Energy, BreakdownAccumulation)
{
    dram::RankEnergyCounters c;
    c.activates = 10;
    c.cyclesActive = 100;
    EnergyBreakdown sum;
    sum += model().rankEnergy(c);
    sum += model().rankEnergy(c);
    EXPECT_NEAR(sum.totalNj(), 2.0 * model().rankEnergy(c).totalNj(),
                1e-9);
}

TEST(Energy, SanityMagnitudeOfActivate)
{
    // A DDR3 activate/precharge pair is on the order of a few nJ per
    // rank (datasheet ballpark); catch unit mistakes of 1000x.
    dram::RankEnergyCounters c;
    c.activates = 1;
    const double nj = model().rankEnergy(c).activateNj;
    EXPECT_GT(nj, 0.1);
    EXPECT_LT(nj, 100.0);
}
