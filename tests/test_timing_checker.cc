/**
 * @file
 * Every JEDEC rule the auditor enforces, violated once on purpose.
 * Non-strict mode records violations instead of panicking, so each
 * test builds a minimal command sequence that breaks exactly one rule
 * and asserts the auditor names it.
 */

#include <gtest/gtest.h>

#include "dram/timing_checker.hh"

using namespace memsec;
using namespace memsec::dram;

namespace {

const TimingParams tp = TimingParams::ddr3_1600_4gb();

Command
act(unsigned rank, unsigned bank, unsigned row)
{
    return Command{CmdType::Act, rank, bank, row, 0, false};
}

Command
cmd(CmdType t, unsigned rank, unsigned bank, unsigned row = 0)
{
    return Command{t, rank, bank, row, 0, false};
}

class CheckerTest : public ::testing::Test
{
  protected:
    CheckerTest() : ck(tp, 8, 8) { ck.setStrict(false); }

    /** Assert some recorded violation names `rule` (one command can
     *  break several rules at once). */
    void
    expectViolation(const std::string &rule)
    {
        ASSERT_FALSE(ck.violations().empty());
        bool found = false;
        for (const auto &v : ck.violations())
            found |= v.rule == rule;
        EXPECT_TRUE(found) << "no violation of rule " << rule
                           << "; last was "
                           << ck.violations().back().rule;
    }

    TimingChecker ck;
};

} // namespace

TEST_F(CheckerTest, CleanReadSequencePasses)
{
    EXPECT_TRUE(ck.observe(act(0, 0, 5), 0));
    EXPECT_TRUE(ck.observe(cmd(CmdType::Rd, 0, 0, 5), tp.rcd));
    EXPECT_TRUE(ck.violations().empty());
}

TEST_F(CheckerTest, CommandBusDoubleOccupancy)
{
    ck.observe(act(0, 0, 5), 10);
    EXPECT_FALSE(ck.observe(act(1, 0, 5), 10));
    expectViolation("cmd-bus");
}

TEST_F(CheckerTest, TrcViolation)
{
    ck.observe(act(0, 0, 5), 0);
    ck.observe(cmd(CmdType::RdA, 0, 0, 5), tp.rcd);
    // tRC = 39; try to re-activate at 38.
    EXPECT_FALSE(ck.observe(act(0, 0, 6), tp.rc - 1));
    expectViolation("tRC");
}

TEST_F(CheckerTest, RowStateActToOpenBank)
{
    ck.observe(act(0, 0, 5), 0);
    EXPECT_FALSE(ck.observe(act(0, 0, 6), 100));
    expectViolation("row-state");
}

TEST_F(CheckerTest, TrrdViolation)
{
    ck.observe(act(0, 0, 5), 0);
    EXPECT_FALSE(ck.observe(act(0, 1, 5), tp.rrd - 1));
    expectViolation("tRRD");
}

TEST_F(CheckerTest, TfawViolation)
{
    ck.observe(act(0, 0, 1), 0);
    ck.observe(act(0, 1, 1), 5);
    ck.observe(act(0, 2, 1), 10);
    ck.observe(act(0, 3, 1), 15);
    EXPECT_FALSE(ck.observe(act(0, 4, 1), tp.faw - 1));
    expectViolation("tFAW");
}

TEST_F(CheckerTest, TfawExactBoundaryPasses)
{
    ck.observe(act(0, 0, 1), 0);
    ck.observe(act(0, 1, 1), 5);
    ck.observe(act(0, 2, 1), 10);
    ck.observe(act(0, 3, 1), 15);
    EXPECT_TRUE(ck.observe(act(0, 4, 1), tp.faw));
}

TEST_F(CheckerTest, TrcdViolation)
{
    ck.observe(act(0, 0, 5), 0);
    EXPECT_FALSE(ck.observe(cmd(CmdType::Rd, 0, 0, 5), tp.rcd - 1));
    expectViolation("tRCD");
}

TEST_F(CheckerTest, ColumnToClosedBank)
{
    EXPECT_FALSE(ck.observe(cmd(CmdType::Rd, 0, 0, 5), 50));
    expectViolation("row-state");
}

TEST_F(CheckerTest, ColumnToWrongRow)
{
    ck.observe(act(0, 0, 5), 0);
    EXPECT_FALSE(ck.observe(cmd(CmdType::Rd, 0, 0, 6), tp.rcd));
    expectViolation("row-state");
}

TEST_F(CheckerTest, TccdViolation)
{
    ck.observe(act(0, 0, 5), 0);
    ck.observe(cmd(CmdType::Rd, 0, 0, 5), tp.rcd);
    EXPECT_FALSE(
        ck.observe(cmd(CmdType::Rd, 0, 0, 5), tp.rcd + tp.ccd - 1));
    expectViolation("tCCD");
}

TEST_F(CheckerTest, WriteToReadTurnaround)
{
    ck.observe(act(0, 0, 5), 0);
    ck.observe(act(0, 1, 6), tp.rrd);
    ck.observe(cmd(CmdType::Wr, 0, 0, 5), 11);
    // wr2rd = 15: a read at +14 to the same rank must fail.
    EXPECT_FALSE(ck.observe(cmd(CmdType::Rd, 0, 1, 6), 11 + 14));
    expectViolation("tWTR");
}

TEST_F(CheckerTest, ReadToWriteTurnaround)
{
    ck.observe(act(0, 0, 5), 0);
    ck.observe(act(0, 1, 6), tp.rrd);
    ck.observe(cmd(CmdType::Rd, 0, 0, 5), 11);
    // rd2wr = 10: a write at +9 must fail (also a data-bus overlap,
    // but the CAS rule fires first).
    EXPECT_FALSE(ck.observe(cmd(CmdType::Wr, 0, 1, 6), 11 + 9));
    expectViolation("rd2wr");
}

TEST_F(CheckerTest, DataBusOverlapAcrossRanks)
{
    ck.observe(act(0, 0, 5), 0);
    ck.observe(act(1, 0, 6), tp.rrd);
    ck.observe(cmd(CmdType::Rd, 0, 0, 5), 11);
    // Reads to different ranks 2 cycles apart: bursts overlap.
    EXPECT_FALSE(ck.observe(cmd(CmdType::Rd, 1, 0, 6), 13));
    expectViolation("data-bus");
}

TEST_F(CheckerTest, TrtrsViolation)
{
    ck.observe(act(0, 0, 5), 0);
    ck.observe(act(1, 0, 6), tp.rrd);
    ck.observe(cmd(CmdType::Rd, 0, 0, 5), 11);
    // Burst gap of exactly tBURST but no tRTRS margin.
    EXPECT_FALSE(ck.observe(cmd(CmdType::Rd, 1, 0, 6), 11 + tp.burst));
    expectViolation("tRTRS");
}

TEST_F(CheckerTest, SameRankBackToBackBurstsPass)
{
    ck.observe(act(0, 0, 5), 0);
    ck.observe(act(0, 1, 6), tp.rrd);
    ck.observe(cmd(CmdType::Rd, 0, 0, 5), 11);
    // Second bank's CAS must respect its own tRCD (5 + 11 = 16),
    // which also satisfies tCCD; same-rank bursts need no tRTRS.
    EXPECT_TRUE(ck.observe(cmd(CmdType::Rd, 0, 1, 6), 16));
}

TEST_F(CheckerTest, PreBeforeTrasFails)
{
    ck.observe(act(0, 0, 5), 0);
    EXPECT_FALSE(ck.observe(cmd(CmdType::Pre, 0, 0, 5), tp.ras - 1));
    expectViolation("tRAS");
}

TEST_F(CheckerTest, PreBeforeTwrFails)
{
    ck.observe(act(0, 0, 5), 0);
    ck.observe(cmd(CmdType::Wr, 0, 0, 5), tp.rcd);
    const Cycle tooSoon = tp.rcd + tp.cwd + tp.burst + tp.wr - 1;
    EXPECT_FALSE(ck.observe(cmd(CmdType::Pre, 0, 0, 5), tooSoon));
    expectViolation("tWR");
}

TEST_F(CheckerTest, PreBeforeTrtpFails)
{
    ck.observe(act(0, 0, 5), 0);
    ck.observe(cmd(CmdType::Rd, 0, 0, 5), tp.rcd + 20);
    EXPECT_FALSE(ck.observe(cmd(CmdType::Pre, 0, 0, 5),
                            tp.rcd + 20 + tp.rtp - 1));
    expectViolation("tRTP");
}

TEST_F(CheckerTest, ActAfterAutoPrechargeBoundary)
{
    // WRA: ACT-to-ACT = 43. ACT at 42 fails, at 43 passes.
    ck.observe(act(0, 0, 5), 0);
    ck.observe(cmd(CmdType::WrA, 0, 0, 5), tp.rcd);
    EXPECT_FALSE(ck.observe(act(0, 0, 6), 42));
    expectViolation("tRP");
    TimingChecker ck2(tp, 8, 8);
    ck2.setStrict(false);
    ck2.observe(act(0, 0, 5), 0);
    ck2.observe(cmd(CmdType::WrA, 0, 0, 5), tp.rcd);
    EXPECT_TRUE(ck2.observe(act(0, 0, 6), 43));
}

TEST_F(CheckerTest, RefreshDuringOpenRowFails)
{
    ck.observe(act(0, 0, 5), 0);
    EXPECT_FALSE(ck.observe(cmd(CmdType::Ref, 0, 0), 100));
    expectViolation("row-state");
}

TEST_F(CheckerTest, CommandDuringRefreshFails)
{
    ck.observe(cmd(CmdType::Ref, 0, 0), 0);
    EXPECT_FALSE(ck.observe(act(0, 0, 5), tp.rfc - 1));
    expectViolation("tRFC");
}

TEST_F(CheckerTest, CommandToPoweredDownRankFails)
{
    ck.observe(cmd(CmdType::PdEnter, 0, 0), 0);
    EXPECT_FALSE(ck.observe(act(0, 0, 5), 2));
    expectViolation("power-down");
}

TEST_F(CheckerTest, PowerDownExitBeforeTckeFails)
{
    ck.observe(cmd(CmdType::PdEnter, 0, 0), 0);
    EXPECT_FALSE(ck.observe(cmd(CmdType::PdExit, 0, 0), tp.cke - 1));
    expectViolation("tCKE");
}

TEST_F(CheckerTest, CommandBeforeTxpAfterExitFails)
{
    ck.observe(cmd(CmdType::PdEnter, 0, 0), 0);
    EXPECT_TRUE(ck.observe(cmd(CmdType::PdExit, 0, 0), tp.cke));
    EXPECT_FALSE(ck.observe(act(0, 0, 5), tp.cke + tp.xp - 1));
    expectViolation("tXP");
    // A fresh checker accepts the same ACT once tXP has elapsed.
    TimingChecker ok(tp, 8, 8);
    ok.setStrict(false);
    ok.observe(cmd(CmdType::PdEnter, 0, 0), 0);
    ok.observe(cmd(CmdType::PdExit, 0, 0), tp.cke);
    EXPECT_TRUE(ok.observe(act(0, 0, 5), tp.cke + tp.xp));
}

TEST_F(CheckerTest, StrictModePanics)
{
    TimingChecker strict(tp, 8, 8);
    strict.observe(act(0, 0, 5), 0);
    EXPECT_THROW(strict.observe(act(0, 0, 6), 100), std::logic_error);
}

TEST_F(CheckerTest, ObservedCountIncrements)
{
    ck.observe(act(0, 0, 5), 0);
    ck.observe(cmd(CmdType::Rd, 0, 0, 5), tp.rcd);
    EXPECT_EQ(ck.observed(), 2u);
}
