/**
 * @file
 * FixedPool: the allocation-free recycler behind the controller's
 * acquireRequest() and (by the same ownership-transfer idiom) the
 * replay event ring. Exhaustion must be a structured, recoverable
 * condition — a null handle plus a categorized SimError — never
 * undefined behaviour.
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "mem/request.hh"
#include "util/fixed_pool.hh"

using namespace memsec;

namespace {

struct Payload
{
    int value = 7;
    std::vector<int> bulk;
};

} // namespace

TEST(FixedPool, AcquireUpToCapacityThenNull)
{
    FixedPool<Payload> pool(3, "payloads");
    EXPECT_EQ(pool.capacity(), 3u);

    std::vector<std::unique_ptr<Payload>> held;
    for (int i = 0; i < 3; ++i) {
        auto p = pool.tryAcquire();
        ASSERT_NE(p, nullptr) << "acquire " << i << " within capacity";
        held.push_back(std::move(p));
    }
    EXPECT_EQ(pool.outstanding(), 3u);
    // The pool is exhausted: a structured decline, not a crash.
    EXPECT_EQ(pool.tryAcquire(), nullptr);
}

TEST(FixedPool, ReleaseMakesRoomAndResetsObject)
{
    FixedPool<Payload> pool(1, "payloads");
    auto p = pool.tryAcquire();
    ASSERT_NE(p, nullptr);
    p->value = 99;
    p->bulk.assign(1000, 5);
    pool.release(std::move(p));
    EXPECT_EQ(pool.outstanding(), 0u);

    // The recycled object must come back default-initialized: stale
    // fields from a previous transaction would corrupt the next one.
    auto q = pool.tryAcquire();
    ASSERT_NE(q, nullptr);
    EXPECT_EQ(q->value, 7);
    EXPECT_TRUE(q->bulk.empty());
}

TEST(FixedPool, OverflowErrorIsStructured)
{
    FixedPool<Payload> pool(2, "mc-requests");
    const SimError err = pool.overflowError(1234, "request burst");
    EXPECT_EQ(err.cycle, 1234u);
    EXPECT_EQ(err.category, "pool-exhausted");
    EXPECT_NE(err.message.find("mc-requests"), std::string::npos);
    EXPECT_NE(err.message.find("request burst"), std::string::npos);
}

TEST(FixedPool, ChurnNeverExceedsCapacity)
{
    FixedPool<Payload> pool(4, "payloads");
    std::vector<std::unique_ptr<Payload>> held;
    // Interleaved acquire/release churn: the invariant
    // outstanding + free <= capacity must hold throughout.
    for (int round = 0; round < 100; ++round) {
        while (auto p = pool.tryAcquire())
            held.push_back(std::move(p));
        EXPECT_EQ(pool.outstanding(), 4u);
        EXPECT_EQ(held.size(), 4u);
        const size_t keep = round % 4;
        while (held.size() > keep) {
            pool.release(std::move(held.back()));
            held.pop_back();
        }
        EXPECT_EQ(pool.outstanding(), keep);
    }
}

// The controller-facing contract: pool requests carry provenance so
// retirement can route them back; heap fallbacks beyond the budget
// stay plain heap objects and must never enter the pool.
TEST(FixedPool, MemRequestProvenanceFlag)
{
    FixedPool<mem::MemRequest> pool(1, "mc-requests");
    auto pooled = pool.tryAcquire();
    ASSERT_NE(pooled, nullptr);
    pooled->pooled = true;

    // Exhausted: the caller's fallback is a plain heap allocation.
    ASSERT_EQ(pool.tryAcquire(), nullptr);
    auto heap = std::make_unique<mem::MemRequest>();
    EXPECT_FALSE(heap->pooled);

    pool.release(std::move(pooled));
    EXPECT_EQ(pool.outstanding(), 0u);
}
