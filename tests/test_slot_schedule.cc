#include <gtest/gtest.h>

#include "core/slot_schedule.hh"

using namespace memsec;
using namespace memsec::core;

namespace {

const dram::TimingParams tp = dram::TimingParams::ddr3_1600_4gb();

SlotSchedule
rankSchedule()
{
    PipelineSolver solver(tp);
    return SlotSchedule(solver.solveBest(PartitionLevel::Rank), 8, tp);
}

} // namespace

TEST(SlotSchedule, LeadCoversEarliestCommand)
{
    const SlotSchedule s = rankSchedule();
    // Fixed periodic data: the read ACT leads the burst by 22 cycles.
    EXPECT_EQ(s.lead(), 22u);
    EXPECT_EQ(s.frameLength(), 56u); // Q = 7 * 8
}

TEST(SlotSchedule, RoundRobinDomains)
{
    const SlotSchedule s = rankSchedule();
    for (uint64_t slot = 0; slot < 32; ++slot)
        EXPECT_EQ(s.domainOf(slot), slot % 8);
}

TEST(SlotSchedule, PlanMatchesFigureOne)
{
    const SlotSchedule s = rankSchedule();
    const SlotPlan read = s.plan(0, false);
    // Slot 0 reference (data) at lead; commands never before cycle 0.
    EXPECT_EQ(read.dataStart, 22u);
    EXPECT_EQ(read.actAt, 0u);
    EXPECT_EQ(read.casAt, 11u);
    EXPECT_EQ(read.dataEnd, 26u);

    const SlotPlan write = s.plan(1, true);
    EXPECT_EQ(write.dataStart, 29u);
    EXPECT_EQ(write.actAt, 13u);
    EXPECT_EQ(write.casAt, 24u);
}

TEST(SlotSchedule, ConsecutiveDataSlotsSevenApart)
{
    const SlotSchedule s = rankSchedule();
    for (uint64_t slot = 0; slot < 16; ++slot) {
        EXPECT_EQ(s.plan(slot + 1, false).dataStart -
                      s.plan(slot, false).dataStart,
                  7u);
    }
}

TEST(SlotSchedule, VerifyWindowAcceptsSolvedPipeline)
{
    const SlotSchedule s = rankSchedule();
    EXPECT_EQ(s.verifyWindow(64, 0xAAAAAAAAAAAAAAAAull), "");
}

TEST(SlotSchedule, VerifyWindowRejectsBogusPipeline)
{
    // Hand-build an l = 6 "solution" — the paper shows gap 6 collides
    // (equation 1a/1f); the verifier must catch it.
    PipelineSolver solver(tp);
    PipelineSolution bogus;
    bogus.feasible = true;
    bogus.l = 6;
    bogus.ref = PeriodicRef::Data;
    bogus.offsets = solver.offsets(PeriodicRef::Data);
    const SlotSchedule s(bogus, 8, tp);
    // A write followed by a read collides on the command bus
    // (equations 1a/1f: gap 6 is forbidden).
    EXPECT_NE(s.verifyWindow(8, 0x1), "");
}

TEST(SlotSchedule, InfeasibleSolutionFatal)
{
    PipelineSolution bad;
    bad.feasible = false;
    EXPECT_EXIT(SlotSchedule(bad, 8, tp),
                ::testing::ExitedWithCode(1), "infeasible");
}
