/**
 * @file
 * Unit tests for the snapshot codec: scalar round trips (doubles are
 * bit-exact), section markers, the snapshot container (magic /
 * version / fingerprint / CRC32C), each structured failure category,
 * and the atomic file helpers. Every corruption mode the durability
 * layer claims to detect is exercised here in isolation.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <limits>
#include <string>

#include "util/serialize.hh"

using namespace memsec;

namespace {

/** Decode expecting a SerializeError of the given category. */
SerializeError
expectDecodeError(const std::string &bytes, const std::string &expected,
                  const std::string &fingerprint = "fp")
{
    try {
        decodeSnapshot(bytes, fingerprint);
    } catch (const SerializeError &e) {
        EXPECT_EQ(e.category, expected) << e.toString();
        return e;
    }
    ADD_FAILURE() << "decodeSnapshot accepted bytes that should fail "
                  << expected;
    return {};
}

} // namespace

TEST(Serialize, ScalarRoundTrip)
{
    Serializer s;
    s.putU8(0xAB);
    s.putU32(0xDEADBEEFu);
    s.putU64(0x0123456789ABCDEFull);
    s.putI64(-42);
    s.putBool(true);
    s.putBool(false);
    s.putString("hello snapshot");
    s.putString("");

    Deserializer d(s.data());
    EXPECT_EQ(d.getU8(), 0xAB);
    EXPECT_EQ(d.getU32(), 0xDEADBEEFu);
    EXPECT_EQ(d.getU64(), 0x0123456789ABCDEFull);
    EXPECT_EQ(d.getI64(), -42);
    EXPECT_TRUE(d.getBool());
    EXPECT_FALSE(d.getBool());
    EXPECT_EQ(d.getString(), "hello snapshot");
    EXPECT_EQ(d.getString(), "");
    EXPECT_TRUE(d.atEnd());
}

TEST(Serialize, DoublesRoundTripBitExactly)
{
    const double values[] = {0.0,
                             -0.0,
                             1.0,
                             -1.0 / 3.0,
                             std::numeric_limits<double>::min(),
                             std::numeric_limits<double>::denorm_min(),
                             std::numeric_limits<double>::max(),
                             std::numeric_limits<double>::infinity()};
    Serializer s;
    for (double v : values)
        s.putDouble(v);
    s.putDouble(std::numeric_limits<double>::quiet_NaN());

    Deserializer d(s.data());
    for (double v : values) {
        const double got = d.getDouble();
        EXPECT_EQ(got, v);
        // 0.0 == -0.0 compares true; pin the sign bit too.
        EXPECT_EQ(std::signbit(got), std::signbit(v));
    }
    EXPECT_TRUE(std::isnan(d.getDouble()));
    EXPECT_TRUE(d.atEnd());
}

TEST(Serialize, SectionMarkerVerifies)
{
    Serializer s;
    s.section("dram");
    s.putU64(7);

    Deserializer ok(s.data());
    ok.section("dram");
    EXPECT_EQ(ok.getU64(), 7u);

    Deserializer bad(s.data());
    try {
        bad.section("core");
        FAIL() << "mismatched section accepted";
    } catch (const SerializeError &e) {
        EXPECT_EQ(e.category, "snapshot-corrupt");
        EXPECT_EQ(e.offset, 0u);
    }
}

TEST(Serialize, TruncatedInputReportsOffset)
{
    Serializer s;
    s.putU64(1);
    s.putU64(2);
    const std::string cut = s.data().substr(0, 11);

    Deserializer d(cut);
    EXPECT_EQ(d.getU64(), 1u);
    try {
        d.getU64();
        FAIL() << "read past the end";
    } catch (const SerializeError &e) {
        EXPECT_EQ(e.category, "snapshot-truncate");
        EXPECT_EQ(e.offset, 8u);
    }
}

TEST(Serialize, StringLengthBeyondInputIsTruncate)
{
    Serializer s;
    s.putString("abcdef");
    const std::string cut = s.data().substr(0, 10);
    Deserializer d(cut);
    try {
        d.getString();
        FAIL() << "oversized string length accepted";
    } catch (const SerializeError &e) {
        EXPECT_EQ(e.category, "snapshot-truncate");
    }
}

TEST(Serialize, BadBoolByteIsCorrupt)
{
    const std::string bytes("\x02", 1);
    Deserializer d(bytes);
    try {
        d.getBool();
        FAIL() << "bool byte 2 accepted";
    } catch (const SerializeError &e) {
        EXPECT_EQ(e.category, "snapshot-corrupt");
    }
}

TEST(Serialize, Crc32cKnownVector)
{
    // The canonical CRC-32C check value (RFC 3720 appendix test).
    EXPECT_EQ(crc32c(std::string_view("123456789")), 0xE3069283u);
    EXPECT_EQ(crc32c(std::string_view("")), 0u);
    // Seed chaining: crc(a+b) == crc(b, seed=crc(a)).
    EXPECT_EQ(crc32c("56789", 5, crc32c("1234", 4)),
              crc32c(std::string_view("123456789")));
}

TEST(Serialize, SnapshotContainerRoundTrip)
{
    const std::string payload("pay\x00load\x01\xFF bytes", 16);
    const std::string bytes = encodeSnapshot("fp", payload);
    EXPECT_EQ(bytes.compare(0, 8, kSnapshotMagic, 8), 0);
    EXPECT_EQ(decodeSnapshot(bytes, "fp"), payload);
    // Empty expected fingerprint skips the staleness check.
    EXPECT_EQ(decodeSnapshot(bytes, ""), payload);
}

TEST(Serialize, ShortMagicIsTruncate)
{
    expectDecodeError("MSEC", "snapshot-truncate");
}

TEST(Serialize, BadMagicIsCorrupt)
{
    std::string bytes = encodeSnapshot("fp", "payload");
    bytes[0] ^= 0x20;
    expectDecodeError(bytes, "snapshot-corrupt");
}

TEST(Serialize, VersionSkewIsVersionError)
{
    std::string bytes = encodeSnapshot("fp", "payload");
    bytes[8] = static_cast<char>(kSnapshotVersion + 1);
    const SerializeError e =
        expectDecodeError(bytes, "snapshot-version");
    EXPECT_EQ(e.offset, 8u);
}

TEST(Serialize, FingerprintMismatchIsStale)
{
    const std::string bytes = encodeSnapshot("fp-old", "payload");
    expectDecodeError(bytes, "snapshot-stale", "fp-new");
}

TEST(Serialize, TruncatedPayloadDetected)
{
    const std::string bytes = encodeSnapshot("fp", "a longer payload");
    expectDecodeError(bytes.substr(0, bytes.size() - 3),
                      "snapshot-truncate");
}

TEST(Serialize, TrailingBytesDetected)
{
    expectDecodeError(encodeSnapshot("fp", "payload") + "x",
                      "snapshot-corrupt");
}

TEST(Serialize, PayloadBitFlipCaughtByCrc)
{
    std::string bytes = encodeSnapshot("fp", "a payload to damage");
    bytes[bytes.size() - 2] ^= 0x01;
    expectDecodeError(bytes, "snapshot-corrupt");
}

TEST(Serialize, AtomicFileRoundTrip)
{
    const std::string path =
        ::testing::TempDir() + "memsec-serialize-file-test.bin";
    const std::string bytes("binary \x00 content", 16);
    ASSERT_TRUE(writeFileAtomic(path, bytes));
    std::string got;
    ASSERT_TRUE(readFileBytes(path, got));
    EXPECT_EQ(got, bytes);
    // No .tmp litter after a successful rename.
    std::string tmp;
    EXPECT_FALSE(readFileBytes(path + ".tmp", tmp));
    std::remove(path.c_str());
}

TEST(Serialize, ReadMissingFileReturnsFalse)
{
    std::string out;
    EXPECT_FALSE(readFileBytes(
        ::testing::TempDir() + "memsec-no-such-file.bin", out));
}
