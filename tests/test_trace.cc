#include <gtest/gtest.h>

#include "cpu/trace.hh"
#include "cpu/workload.hh"

using namespace memsec;
using namespace memsec::cpu;

namespace {

WorkloadProfile
simpleProfile()
{
    WorkloadProfile p;
    p.name = "test";
    p.memRatio = 0.25;
    p.storeFraction = 0.4;
    p.footprintLines = 1 << 12;
    p.streamFraction = 0.5;
    p.numStreams = 2;
    p.strideLines = 1;
    p.reuseFraction = 0.0;
    return p;
}

} // namespace

TEST(Trace, DeterministicForSameSeed)
{
    SyntheticTraceGenerator a(simpleProfile(), 7);
    SyntheticTraceGenerator b(simpleProfile(), 7);
    for (int i = 0; i < 500; ++i) {
        const TraceRecord ra = a.next();
        const TraceRecord rb = b.next();
        EXPECT_EQ(ra.gap, rb.gap);
        EXPECT_EQ(ra.isStore, rb.isStore);
        EXPECT_EQ(ra.addr, rb.addr);
    }
}

TEST(Trace, DifferentSeedsDiverge)
{
    SyntheticTraceGenerator a(simpleProfile(), 1);
    SyntheticTraceGenerator b(simpleProfile(), 2);
    int same = 0;
    for (int i = 0; i < 200; ++i) {
        if (a.next().addr == b.next().addr)
            ++same;
    }
    EXPECT_LT(same, 20);
}

TEST(Trace, GapMeanMatchesMemRatio)
{
    SyntheticTraceGenerator g(simpleProfile(), 3);
    double sum = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        sum += g.next().gap;
    // Geometric mean (1-p)/p = 3 for memRatio 0.25.
    EXPECT_NEAR(sum / n, 3.0, 0.2);
}

TEST(Trace, StoreFractionApproximate)
{
    SyntheticTraceGenerator g(simpleProfile(), 5);
    int stores = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        stores += g.next().isStore ? 1 : 0;
    EXPECT_NEAR(static_cast<double>(stores) / n, 0.4, 0.02);
}

TEST(Trace, AddressesWithinFootprint)
{
    const WorkloadProfile p = simpleProfile();
    SyntheticTraceGenerator g(p, 9);
    for (int i = 0; i < 5000; ++i) {
        const Addr a = g.next().addr;
        EXPECT_LT(a / kLineBytes, p.footprintLines);
        EXPECT_EQ(a % kLineBytes, 0u);
    }
}

TEST(Trace, PureStreamIsSequentialPerStream)
{
    WorkloadProfile p = simpleProfile();
    p.streamFraction = 1.0;
    p.numStreams = 1;
    p.reuseFraction = 0.0;
    SyntheticTraceGenerator g(p, 11);
    Addr prev = g.next().addr;
    for (int i = 0; i < 100; ++i) {
        const Addr cur = g.next().addr;
        const Addr expect =
            (prev / kLineBytes + 1) % p.footprintLines * kLineBytes;
        EXPECT_EQ(cur, expect);
        prev = cur;
    }
}

TEST(Trace, ReuseDrawsFromRecentLines)
{
    WorkloadProfile p = simpleProfile();
    p.reuseFraction = 1.0; // always reuse once history exists
    SyntheticTraceGenerator g(p, 13);
    // With reuse == 1 and an all-zero initial history, every address
    // is line 0 forever.
    for (int i = 0; i < 50; ++i)
        EXPECT_EQ(g.next().addr, 0u);
}

TEST(Trace, InvalidProfileFatal)
{
    WorkloadProfile p = simpleProfile();
    p.memRatio = 0.0;
    EXPECT_EXIT(SyntheticTraceGenerator(p, 1),
                ::testing::ExitedWithCode(1), "memRatio");
    WorkloadProfile p2 = simpleProfile();
    p2.footprintLines = 0;
    EXPECT_EXIT(SyntheticTraceGenerator(p2, 1),
                ::testing::ExitedWithCode(1), "footprint");
}
