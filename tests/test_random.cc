#include <gtest/gtest.h>

#include <stdexcept>

#include "util/random.hh"

using namespace memsec;

TEST(Random, DeterministicForSameSeed)
{
    Rng a(42);
    Rng b(42);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Random, DifferentSeedsDiverge)
{
    Rng a(1);
    Rng b(2);
    int equal = 0;
    for (int i = 0; i < 100; ++i) {
        if (a.next() == b.next())
            ++equal;
    }
    EXPECT_LT(equal, 3);
}

TEST(Random, BelowStaysInRange)
{
    Rng r(7);
    for (uint64_t bound : {1ull, 2ull, 10ull, 1000000007ull}) {
        for (int i = 0; i < 200; ++i)
            EXPECT_LT(r.below(bound), bound);
    }
}

TEST(Random, BelowZeroPanics)
{
    Rng r(7);
    EXPECT_THROW(r.below(0), std::logic_error);
}

TEST(Random, RangeInclusive)
{
    Rng r(9);
    bool sawLo = false;
    bool sawHi = false;
    for (int i = 0; i < 2000; ++i) {
        const uint64_t v = r.range(3, 6);
        EXPECT_GE(v, 3u);
        EXPECT_LE(v, 6u);
        sawLo |= v == 3;
        sawHi |= v == 6;
    }
    EXPECT_TRUE(sawLo);
    EXPECT_TRUE(sawHi);
}

TEST(Random, UniformInUnitInterval)
{
    Rng r(11);
    double sum = 0.0;
    const int n = 10000;
    for (int i = 0; i < n; ++i) {
        const double u = r.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(Random, ChanceExtremes)
{
    Rng r(13);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(r.chance(0.0));
        EXPECT_TRUE(r.chance(1.0));
    }
}

TEST(Random, ChanceFrequency)
{
    Rng r(17);
    int hits = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        hits += r.chance(0.3) ? 1 : 0;
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(Random, GeometricMean)
{
    Rng r(19);
    const double p = 0.25;
    double sum = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        sum += static_cast<double>(r.geometric(p));
    // Mean of geometric (failures before success) is (1-p)/p = 3.
    EXPECT_NEAR(sum / n, 3.0, 0.15);
}

TEST(Random, GeometricPOneIsZero)
{
    Rng r(23);
    for (int i = 0; i < 50; ++i)
        EXPECT_EQ(r.geometric(1.0), 0u);
}
