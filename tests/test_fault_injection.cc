/**
 * @file
 * The auditors must catch what they claim to catch. Every fault kind
 * the injector supports is aimed at a specific safety net — a
 * TimingChecker rule class, the noninterference comparison, the
 * recoverable-error channel, the trace parser, the livelock watchdog
 * — and these tests prove the net actually triggers.
 *
 * The command-stream tests drive a DramSystem with sequences that are
 * LEGAL on the fast path; only the injector's mutation of the audit
 * stream makes the checker see an illegal history.
 */

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "analysis/noninterference_certifier.hh"
#include "core/noninterference.hh"
#include "cpu/trace_file.hh"
#include "dram/dram_system.hh"
#include "fault/fault_injector.hh"
#include "harness/experiment.hh"
#include "sim/simulator.hh"
#include "util/sim_error.hh"

using namespace memsec;
using namespace memsec::dram;
using namespace memsec::fault;

namespace {

const TimingParams tp = TimingParams::ddr3_1600_4gb();

Geometry
smallGeo()
{
    Geometry g;
    g.ranksPerChannel = 2;
    g.banksPerRank = 8;
    return g;
}

Command
act(unsigned rank, unsigned bank, unsigned row)
{
    return Command{CmdType::Act, rank, bank, row, 0, false};
}

Command
cmd(CmdType t, unsigned rank, unsigned bank, unsigned row = 0)
{
    return Command{t, rank, bank, row, 0, false};
}

/** DramSystem + injector wired the way the harness does it. */
struct Rig
{
    explicit Rig(const FaultSpec &spec)
        : injector(spec), dram(tp, smallGeo())
    {
        dram.attachFaultInjector(&injector);
    }

    bool
    sawRule(const std::string &rule) const
    {
        return dram.checker().violationsByRule().count(rule) > 0;
    }

    std::string
    rulesSeen() const
    {
        std::string out;
        for (const auto &kv : dram.checker().violationsByRule())
            out += kv.first + " ";
        return out;
    }

    FaultInjector injector;
    DramSystem dram;
};

FaultSpec
spec(FaultKind kind)
{
    FaultSpec s;
    s.kind = kind;
    return s;
}

} // namespace

// ---------------------------------------------------------------------
// Command-stream mutations vs the TimingChecker rule classes.
// ---------------------------------------------------------------------

TEST(CommandFaults, DroppedActTriggersRowState)
{
    Rig rig(spec(FaultKind::CmdDrop));
    rig.dram.issue(act(0, 0, 5), 0); // vanishes from the audit stream
    rig.dram.issue(cmd(CmdType::Rd, 0, 0, 5), tp.rcd);
    EXPECT_TRUE(rig.sawRule("row-state")) << rig.rulesSeen();
    EXPECT_EQ(rig.injector.injected(), 1u);
}

TEST(CommandFaults, DelayedActTriggersCmdBus)
{
    FaultSpec s = spec(FaultKind::CmdDelay);
    s.magnitude = tp.rcd; // ACT@0 audited at 11, colliding with the CAS
    Rig rig(s);
    rig.dram.issue(act(0, 0, 5), 0);
    rig.dram.issue(cmd(CmdType::Rd, 0, 0, 5), tp.rcd);
    EXPECT_TRUE(rig.sawRule("cmd-bus")) << rig.rulesSeen();
}

TEST(CommandFaults, DuplicatedCasTriggersTccdAndDataBus)
{
    FaultSpec s = spec(FaultKind::CmdDuplicate);
    s.magnitude = 1; // ghost copy one cycle later
    Rig rig(s);
    rig.dram.issue(act(0, 0, 5), 0);
    rig.dram.issue(cmd(CmdType::Rd, 0, 0, 5), tp.rcd);
    EXPECT_TRUE(rig.sawRule("tCCD")) << rig.rulesSeen();
    EXPECT_TRUE(rig.sawRule("data-bus")) << rig.rulesSeen();
}

TEST(CommandFaults, RetargetedCasTriggersRowState)
{
    Rig rig(spec(FaultKind::CmdRetarget));
    rig.dram.issue(act(0, 0, 5), 0);
    // Audited at bank 1, whose row was never opened.
    rig.dram.issue(cmd(CmdType::Rd, 0, 0, 5), tp.rcd);
    EXPECT_TRUE(rig.sawRule("row-state")) << rig.rulesSeen();
}

TEST(CommandFaults, SpuriousPdEnterTriggersPowerDown)
{
    Rig rig(spec(FaultKind::CmdSpurious));
    rig.dram.issue(act(0, 0, 5), 0); // ghost PDE lands with the row open
    EXPECT_TRUE(rig.sawRule("power-down")) << rig.rulesSeen();
}

TEST(CommandFaults, SpuriousPdCycleTriggersTckeAndTxp)
{
    FaultSpec s = spec(FaultKind::CmdSpurious);
    s.param = "pde-pdx"; // PDE at t+1, PDX at t+2: residency violated
    s.windowHi = 1;      // only the first ACT grows the ghost pair
    Rig rig(s);
    rig.dram.issue(act(0, 0, 5), 0);
    rig.dram.issue(cmd(CmdType::Rd, 0, 0, 5), tp.rcd);
    EXPECT_TRUE(rig.sawRule("tCKE")) << rig.rulesSeen();
    // The CAS at 11 lands before the ghost PDX's tXP horizon (2+10).
    EXPECT_TRUE(rig.sawRule("tXP")) << rig.rulesSeen();
}

// ---------------------------------------------------------------------
// Timing-parameter drift: real-legal streams violate the true timing.
// ---------------------------------------------------------------------

TEST(TimingDrift, FawDriftTriggersTfaw)
{
    FaultSpec s = spec(FaultKind::TimingDrift);
    s.param = "faw";
    s.scale = 3.0; // device tFAW drifted 24 -> 72
    Rig rig(s);
    // Five ACTs, nominal-legal: tRRD spacing, fifth at exactly tFAW.
    for (unsigned b = 0; b < 4; ++b)
        rig.dram.issue(act(0, b, 1), b * tp.rrd);
    rig.dram.issue(act(0, 4, 1), tp.faw);
    EXPECT_TRUE(rig.sawRule("tFAW")) << rig.rulesSeen();
    EXPECT_EQ(rig.dram.illegalIssues(), 0u) << "stream must be "
                                               "nominal-legal";
}

TEST(TimingDrift, RrdDriftTriggersTrrd)
{
    FaultSpec s = spec(FaultKind::TimingDrift);
    s.param = "rrd";
    s.scale = 3.0; // 5 -> 15
    Rig rig(s);
    rig.dram.issue(act(0, 0, 1), 0);
    rig.dram.issue(act(0, 1, 1), tp.rrd);
    EXPECT_TRUE(rig.sawRule("tRRD")) << rig.rulesSeen();
}

TEST(TimingDrift, BurstDriftTriggersDataBus)
{
    FaultSpec s = spec(FaultKind::TimingDrift);
    s.param = "burst";
    s.scale = 2.0; // device bursts last 8 cycles, not 4
    Rig rig(s);
    rig.dram.issue(act(0, 0, 1), 0);
    rig.dram.issue(act(0, 1, 1), tp.rrd);
    rig.dram.issue(cmd(CmdType::Rd, 0, 0, 1), tp.rcd);
    rig.dram.issue(cmd(CmdType::Rd, 0, 1, 1), tp.rcd + tp.ccd);
    EXPECT_TRUE(rig.sawRule("data-bus")) << rig.rulesSeen();
}

// ---------------------------------------------------------------------
// Refresh faults.
// ---------------------------------------------------------------------

TEST(RefreshFaults, StormTriggersTrfc)
{
    Rig rig(spec(FaultKind::RefreshStorm));
    rig.dram.issue(cmd(CmdType::Ref, 0, 0), 0); // audited twice
    EXPECT_TRUE(rig.sawRule("tRFC")) << rig.rulesSeen();
}

TEST(RefreshFaults, SuppressionTriggersRetentionRule)
{
    Rig rig(spec(FaultKind::RefreshSuppress));
    rig.dram.checker().expectRefresh(tp.refi);
    rig.dram.issue(cmd(CmdType::Ref, 0, 0), 0); // never reaches the audit
    const Cycle late = 2 * tp.refi + 20;
    rig.dram.issue(act(0, 0, 1), late);
    EXPECT_TRUE(rig.sawRule("refresh")) << rig.rulesSeen();
}

// ---------------------------------------------------------------------
// Violation accounting: cap + totals.
// ---------------------------------------------------------------------

TEST(ViolationAccounting, CapKeepsFirstRecordsButCountsAll)
{
    TimingChecker ck(tp, 2, 8);
    ck.setStrict(false);
    ck.setViolationCap(4);
    // Ten command-bus collisions at the same cycle.
    ck.observe(act(0, 0, 1), 10);
    for (int i = 0; i < 10; ++i)
        ck.observe(act(0, 1, 1), 10);
    EXPECT_EQ(ck.violations().size(), 4u);
    EXPECT_GE(ck.violationCount(), 10u);
    EXPECT_GE(ck.violationsByRule().at("cmd-bus"), 10u);
    // The kept records are the earliest ones.
    EXPECT_EQ(ck.violations().front().cycle, 10u);
}

// ---------------------------------------------------------------------
// Queue overflow: recoverable, recorded, counted.
// ---------------------------------------------------------------------

TEST(QueueOverflow, GhostFloodIsRecordedNotFatal)
{
    Config c = harness::defaultConfig();
    c.merge(harness::schemeConfig("fs_rp"));
    c.set("cores", 2);
    c.set("sim.warmup", 0);
    c.set("sim.measure", 4000);
    c.set("workload", "mcf,mcf");
    c.set("fault.kind", "queue-overflow");
    c.set("fault.rate", 1.0);
    const harness::ExperimentResult r = harness::runExperiment(c);
    ASSERT_FALSE(r.simErrors.empty());
    bool sawOverflow = false;
    for (const auto &e : r.simErrors)
        sawOverflow |= e.category == "queue-overflow";
    EXPECT_TRUE(sawOverflow);
    EXPECT_GT(r.faultsInjected, 0u);
}

// ---------------------------------------------------------------------
// Scheduler slot skew: surfaces as noninterference divergence.
// ---------------------------------------------------------------------

namespace {

core::VictimTimeline
skewedVictimRun(const std::string &corunner)
{
    Config c = harness::defaultConfig();
    c.merge(harness::schemeConfig("fs_rp"));
    c.set("workload", "mcf," + corunner + "," + corunner + "," +
                          corunner + "," + corunner + "," + corunner +
                          "," + corunner + "," + corunner);
    c.set("cores", 8);
    c.set("sim.warmup", 0);
    c.set("sim.measure", 40000);
    c.set("audit.core", 0);
    c.set("audit.progress_interval", 1000);
    c.set("fault.kind", "slot-skew");
    c.set("fault.rate", 0.6);
    c.set("fault.magnitude", 2);
    c.set("fault.window", "5000:15000");
    return harness::runExperiment(c).timelines.at(0);
}

} // namespace

TEST(SlotSkew, InjectedSkewBreaksNoninterference)
{
    // The same fs_rp configuration passes the audit when healthy (see
    // test_integration_leakage); with skew injected into real ops the
    // victim's timeline must depend on its co-runners.
    const auto quiet = skewedVictimRun("idle");
    const auto noisy = skewedVictimRun("hog");
    ASSERT_FALSE(quiet.service.empty());
    const auto audit = core::compareTimelines(quiet, noisy);
    EXPECT_FALSE(audit.identical)
        << "slot-skew injection went undetected by the audit";
}

// ---------------------------------------------------------------------
// Certifier refusal: domain-coupling faults must cost the scheduler
// its noninterference certificate, with a concrete witness.
// ---------------------------------------------------------------------

namespace {

analysis::CertifyResult
certifyUnderFault(FaultKind kind, double rate)
{
    analysis::CertifierConfig cfg =
        analysis::paperCertPoints()[0].cfg;
    cfg.fault.kind = kind;
    cfg.fault.rate = rate;
    cfg.fault.magnitude = 2;
    return analysis::NoninterferenceCertifier(cfg).certify();
}

} // namespace

TEST(CertifierRefusal, SlotSkewRefusesCertificate)
{
    // rate < 1 so the PRNG draw count (and thus the skew pattern)
    // depends on how many real ops the co-runners add; a rate-1.0
    // skew would shift every run identically and prove nothing.
    const auto res = certifyUnderFault(FaultKind::SlotSkew, 0.5);
    ASSERT_FALSE(res.certified)
        << "slot-skew fault went uncaught: " << res.summary();
    ASSERT_TRUE(res.hasWitness);
    EXPECT_FALSE(res.witness.toString().empty());
}

TEST(CertifierRefusal, CrossCouplingRefusesCertificate)
{
    // couplingSkew() keys directly on foreign backlog, so it is dead
    // in the all-idle reference and live in every backlogged run:
    // the purest noninterference break the injector models.
    const auto res = certifyUnderFault(FaultKind::CrossCoupling, 1.0);
    ASSERT_FALSE(res.certified)
        << "cross-coupling fault went uncaught: " << res.summary();
    ASSERT_TRUE(res.hasWitness);
    // One backlogged co-runner is already distinguishable.
    EXPECT_GE(res.witness.assignment, 1u);
}

TEST(CertifierRefusal, HealthyPointStillCertifies)
{
    // Control: the same design point with no fault armed keeps its
    // certificate — refusal above is the fault's doing, not noise.
    const auto res = certifyUnderFault(FaultKind::None, 1.0);
    EXPECT_TRUE(res.certified) << res.summary();
}

// ---------------------------------------------------------------------
// Trace corruption: the parser must reject, with line context.
// ---------------------------------------------------------------------

TEST(TraceCorruption, CorruptedTraceIsRejectedWithLineContext)
{
    std::vector<cpu::TraceRecord> records;
    for (uint32_t i = 0; i < 50; ++i)
        records.push_back({i % 7, i % 3 == 0, 0x1000ull + 64 * i});
    const std::string clean = cpu::formatTrace(records);

    // Clean text round-trips.
    std::vector<cpu::TraceRecord> out;
    cpu::TraceParseError err;
    ASSERT_TRUE(cpu::tryParseTrace(clean, out, err));
    ASSERT_EQ(out.size(), records.size());

    FaultSpec s = spec(FaultKind::TraceCorrupt);
    s.rate = 0.2;
    FaultInjector injector(s);
    const std::string dirty = injector.corruptTraceText(clean);
    ASSERT_GT(injector.injected(), 0u);

    out.clear();
    EXPECT_FALSE(cpu::tryParseTrace(dirty, out, err));
    EXPECT_GT(err.line, 0);
    EXPECT_FALSE(err.message.empty());
    EXPECT_NE(err.toString().find("trace line"), std::string::npos);
}

// ---------------------------------------------------------------------
// Crash snapshot: panic dumps the last-K-commands ring.
// ---------------------------------------------------------------------

TEST(CrashSnapshot, PanicDumpsRecentCommands)
{
    DramSystem dram(tp, smallGeo());
    dram.issue(act(0, 0, 5), 0);
    testing::internal::CaptureStderr();
    // Second command in the same cycle: command bus is busy -> panic.
    EXPECT_THROW(dram.issue(act(0, 1, 6), 0), std::logic_error);
    const std::string err = testing::internal::GetCapturedStderr();
    EXPECT_NE(err.find("issued command"), std::string::npos) << err;
    // Both the victim and the killer command appear in the dump.
    EXPECT_NE(err.find("@0 ACT"), std::string::npos) << err;
    EXPECT_EQ(dram.commandLog().totalRecorded(), 2u);
}

TEST(CrashSnapshot, RingKeepsOnlyLastK)
{
    CommandLog log(4);
    for (unsigned i = 0; i < 10; ++i)
        log.record(act(0, i % 8, i), i * 100);
    EXPECT_EQ(log.size(), 4u);
    EXPECT_EQ(log.totalRecorded(), 10u);
    const std::string snap = log.snapshot();
    EXPECT_NE(snap.find("@600"), std::string::npos) << snap;
    EXPECT_NE(snap.find("@900"), std::string::npos) << snap;
    EXPECT_EQ(snap.find("@500"), std::string::npos) << snap;
}

// ---------------------------------------------------------------------
// Livelock watchdog.
// ---------------------------------------------------------------------

TEST(Watchdog, StalledProgressCounterIsFatal)
{
    EXPECT_EXIT(
        {
            Simulator sim;
            sim.setWatchdog(10, [] { return 42u; });
            sim.run(100);
        },
        ::testing::ExitedWithCode(1), "livelock");
}

TEST(Watchdog, AdvancingProgressCounterIsQuiet)
{
    Simulator sim;
    uint64_t ticks = 0;
    sim.setWatchdog(10, [&ticks] { return ticks++; });
    sim.run(100); // no exit, no throw
    EXPECT_EQ(sim.now(), 100u);
}

// ---------------------------------------------------------------------
// RunReport semantics.
// ---------------------------------------------------------------------

TEST(RunReportTest, CapsStoredErrorsButCountsAll)
{
    RunReport report(3);
    for (Cycle t = 0; t < 10; ++t)
        report.record({t, "queue-overflow", "x"});
    report.record({99, "illegal-issue", "y"});
    EXPECT_EQ(report.total(), 11u);
    EXPECT_EQ(report.errors().size(), 3u);
    EXPECT_EQ(report.count("queue-overflow"), 10u);
    EXPECT_EQ(report.count("illegal-issue"), 1u);
    EXPECT_EQ(report.count("absent"), 0u);
    EXPECT_NE(report.summary().find("queue-overflow: 10"),
              std::string::npos);
}

// ---------------------------------------------------------------------
// Disabled injection is invisible.
// ---------------------------------------------------------------------

TEST(Disabled, NoFaultKindLeavesRunPristine)
{
    Config c = harness::defaultConfig();
    c.merge(harness::schemeConfig("fs_rp"));
    c.set("cores", 2);
    c.set("sim.warmup", 0);
    c.set("sim.measure", 4000);
    c.set("workload", "mcf,mcf");
    const harness::ExperimentResult r = harness::runExperiment(c);
    EXPECT_EQ(r.faultsInjected, 0u);
    EXPECT_EQ(r.timingViolations, 0u);
    EXPECT_EQ(r.illegalIssues, 0u);
    EXPECT_TRUE(r.simErrors.empty());
    EXPECT_TRUE(r.violationRules.empty());
}
