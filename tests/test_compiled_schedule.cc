/**
 * @file
 * Unit tests for the compiled-schedule machinery (docs/PERF.md): the
 * mode parser, the timestamp-sorted ReplayRing, the interval-merging
 * CompiledEnergyAccountant, and ScheduleVerifier::compile() — the
 * only emitter of slot tables, which must refuse to produce one for a
 * design point it cannot prove.
 */

#include <gtest/gtest.h>

#include <vector>

#include "analysis/schedule_verifier.hh"
#include "core/pipeline_solver.hh"
#include "sim/compiled_schedule.hh"

using namespace memsec;
using analysis::ScheduleVerifier;
using analysis::VerifierConfig;
using core::PartitionLevel;
using core::PeriodicRef;

// ---- CompiledMode ------------------------------------------------

TEST(CompiledMode, ParseRoundTrip)
{
    EXPECT_EQ(parseCompiledMode("off"), CompiledMode::Off);
    EXPECT_EQ(parseCompiledMode("on"), CompiledMode::On);
    EXPECT_EQ(parseCompiledMode("verify"), CompiledMode::Verify);
    EXPECT_STREQ(toString(CompiledMode::Off), "off");
    EXPECT_STREQ(toString(CompiledMode::On), "on");
    EXPECT_STREQ(toString(CompiledMode::Verify), "verify");
}

// ---- ReplayRing --------------------------------------------------

namespace {
struct DummyOp
{
    int tag = 0;
};
} // namespace

TEST(ReplayRing, PopsInTimestampOrder)
{
    DummyOp a{1}, b{2}, c{3};
    ReplayRing<DummyOp> ring(8);
    EXPECT_TRUE(ring.push({50, kNoCycle, &a, false}));
    EXPECT_TRUE(ring.push({10, kNoCycle, &b, false}));
    EXPECT_TRUE(ring.push({30, 99, &c, true}));

    EXPECT_EQ(ring.front().at, 10u);
    EXPECT_EQ(ring.front().op->tag, 2);
    ring.pop();
    EXPECT_EQ(ring.front().at, 30u);
    ring.pop();
    EXPECT_EQ(ring.front().at, 50u);
    ring.pop();
    EXPECT_TRUE(ring.empty());
}

TEST(ReplayRing, EqualTimestampsStayFifo)
{
    // An op's ACT and another's CAS may share a cycle; application
    // order must then match insertion (= decision) order, exactly as
    // the interpreted issue loop scans the planned deque.
    DummyOp first{1}, second{2};
    ReplayRing<DummyOp> ring(4);
    EXPECT_TRUE(ring.push({20, kNoCycle, &first, false}));
    EXPECT_TRUE(ring.push({20, kNoCycle, &second, true}));
    EXPECT_EQ(ring.front().op->tag, 1);
    ring.pop();
    EXPECT_EQ(ring.front().op->tag, 2);
}

TEST(ReplayRing, RefusesPushAtCapacity)
{
    DummyOp op;
    ReplayRing<DummyOp> ring(2);
    EXPECT_TRUE(ring.push({1, kNoCycle, &op, false}));
    EXPECT_TRUE(ring.push({2, kNoCycle, &op, true}));
    // Full: the caller must fall back, never silently drop.
    EXPECT_FALSE(ring.push({3, kNoCycle, &op, false}));
    EXPECT_EQ(ring.size(), 2u);
}

TEST(ReplayRing, MinCompletionIgnoresActsAndClientless)
{
    DummyOp op;
    ReplayRing<DummyOp> ring(8);
    EXPECT_EQ(ring.minCompletion(), kNoCycle);
    EXPECT_TRUE(ring.push({5, kNoCycle, &op, false}));  // ACT
    EXPECT_TRUE(ring.push({9, kNoCycle, &op, true}));   // clientless CAS
    EXPECT_EQ(ring.minCompletion(), kNoCycle);
    EXPECT_TRUE(ring.push({7, 120, &op, true}));
    EXPECT_TRUE(ring.push({8, 80, &op, true}));
    EXPECT_EQ(ring.minCompletion(), 80u);
    EXPECT_EQ(ring.minIssue(), 5u);
    ring.clear();
    EXPECT_EQ(ring.minCompletion(), kNoCycle);
}

// ---- CompiledEnergyAccountant ------------------------------------

TEST(CompiledEnergyAccountant, InactiveUntilConfigured)
{
    CompiledEnergyAccountant acct;
    EXPECT_FALSE(acct.active());
    acct.configure(2, 16);
    EXPECT_TRUE(acct.active());
    acct.deactivate();
    EXPECT_FALSE(acct.active());
}

TEST(CompiledEnergyAccountant, CountsOverlapWithinSpan)
{
    CompiledEnergyAccountant acct;
    acct.configure(1, 16);
    acct.addInterval(0, 10, 20);
    acct.addInterval(0, 30, 35);
    // Span [0,50) covers both intervals fully: 10 + 5 active cycles.
    EXPECT_EQ(acct.activeCyclesIn(0, 0, 50), 15u);
    // Consumed: a later span sees nothing.
    EXPECT_EQ(acct.activeCyclesIn(0, 50, 100), 0u);
}

TEST(CompiledEnergyAccountant, MergesOverlapAcrossBanksOfOneRank)
{
    // Two banks of one rank open concurrently must not double-count
    // rank-active cycles.
    CompiledEnergyAccountant acct;
    acct.configure(1, 16);
    acct.addInterval(0, 10, 20);
    acct.addInterval(0, 15, 25); // overlaps the first
    acct.addInterval(0, 25, 30); // adjacent: coalesces
    EXPECT_EQ(acct.activeCyclesIn(0, 0, 100), 20u); // [10,30)
}

TEST(CompiledEnergyAccountant, StraddlingIntervalSplitsAcrossSpans)
{
    CompiledEnergyAccountant acct;
    acct.configure(1, 16);
    acct.addInterval(0, 90, 110);
    // Per-cycle span then a jump, as tick + fastForwardEnergy do.
    EXPECT_EQ(acct.activeCyclesIn(0, 90, 91), 1u);
    EXPECT_EQ(acct.activeCyclesIn(0, 91, 100), 9u);
    EXPECT_EQ(acct.activeCyclesIn(0, 100, 200), 10u);
    EXPECT_EQ(acct.activeCyclesIn(0, 200, 300), 0u);
}

TEST(CompiledEnergyAccountant, RanksAreIndependent)
{
    CompiledEnergyAccountant acct;
    acct.configure(2, 16);
    acct.addInterval(0, 0, 10);
    acct.addInterval(1, 5, 25);
    EXPECT_EQ(acct.activeCyclesIn(0, 0, 30), 10u);
    EXPECT_EQ(acct.activeCyclesIn(1, 0, 30), 20u);
}

// ---- ScheduleVerifier::compile -----------------------------------

namespace {

VerifierConfig
paperConfig(PeriodicRef ref, PartitionLevel level, unsigned domains)
{
    VerifierConfig cfg;
    cfg.ref = ref;
    cfg.level = level;
    cfg.numDomains = domains;
    cfg.numRanks = 8;
    return cfg;
}

} // namespace

TEST(CompileSchedule, EmitsVerifiedTableForRankPartition)
{
    const auto tp = dram::TimingParams::ddr3_1600_4gb();
    const ScheduleVerifier v(
        tp, paperConfig(PeriodicRef::Data, PartitionLevel::Rank, 8));
    const CompiledSchedule table = v.compile(7);

    ASSERT_TRUE(table.valid) << table.note;
    EXPECT_EQ(table.l, 7u);
    EXPECT_EQ(table.slots.size(), 8u);
    EXPECT_GT(table.slotsChecked, 0u);
    EXPECT_GT(table.pairsChecked, 0u);
    EXPECT_FALSE(table.describe().empty());

    for (const CompiledSlot &slot : table.slots) {
        EXPECT_FALSE(slot.phantom);
        // Lead folded in: command order within the slot must hold
        // with every delta relative to the decision cycle.
        EXPECT_LT(slot.actRead, slot.casRead);
        EXPECT_LT(slot.casRead, slot.dataRead);
        EXPECT_LT(slot.actWrite, slot.casWrite);
        EXPECT_LT(slot.casWrite, slot.dataWrite);
        // Completion = data start + burst, the invariant the replay
        // wake hints rely on.
        EXPECT_EQ(slot.completeRead, slot.dataRead + tp.burst);
        EXPECT_EQ(slot.completeWrite, slot.dataWrite + tp.burst);
        EXPECT_EQ(slot.dataRead, slot.casRead + tp.cas);
        EXPECT_EQ(slot.dataWrite, slot.casWrite + tp.cwd);
    }
}

TEST(CompileSchedule, RefusesInfeasibleSlotWidth)
{
    const ScheduleVerifier v(
        dram::TimingParams::ddr3_1600_4gb(),
        paperConfig(PeriodicRef::Data, PartitionLevel::Rank, 8));
    // l = 6 is below the proven minimum of 7; no table may exist.
    const CompiledSchedule table = v.compile(6);
    EXPECT_FALSE(table.valid);
    EXPECT_FALSE(table.note.empty());
}

TEST(CompileSchedule, RefusesRefreshConfigs)
{
    VerifierConfig cfg =
        paperConfig(PeriodicRef::Data, PartitionLevel::Rank, 8);
    cfg.refresh = true;
    const ScheduleVerifier v(dram::TimingParams::ddr3_1600_4gb(), cfg);
    const CompiledSchedule table = v.compile(7);
    EXPECT_FALSE(table.valid)
        << "refresh blackouts are not frame-periodic; a table must "
           "never be emitted";
    EXPECT_FALSE(table.note.empty());
}

TEST(CompileSchedule, TripleAlternationCarriesGroupLanes)
{
    // 6 domains divide evenly by 3 groups, so the frame needs a
    // phantom pad slot — without it the rotation would pin every
    // domain to one group lane forever instead of visiting all three.
    VerifierConfig cfg =
        paperConfig(PeriodicRef::Ras, PartitionLevel::None, 6);
    cfg.bankGroups = 3;
    const ScheduleVerifier v(dram::TimingParams::ddr3_1600_4gb(), cfg);
    const CompiledSchedule table = v.compile(15);
    ASSERT_TRUE(table.valid) << table.note;

    ASSERT_EQ(table.slots.size(), 7u);
    bool sawPhantom = false;
    for (const CompiledSlot &slot : table.slots) {
        sawPhantom = sawPhantom || slot.phantom;
        EXPECT_LT(slot.group, 3u);
    }
    EXPECT_TRUE(sawPhantom);

    // An 8-domain frame already breaks the alignment by itself: no
    // pad, all eight slots real.
    VerifierConfig cfg8 =
        paperConfig(PeriodicRef::Ras, PartitionLevel::None, 8);
    cfg8.bankGroups = 3;
    const ScheduleVerifier v8(dram::TimingParams::ddr3_1600_4gb(), cfg8);
    const CompiledSchedule table8 = v8.compile(15);
    ASSERT_TRUE(table8.valid) << table8.note;
    EXPECT_EQ(table8.slots.size(), 8u);
    for (const CompiledSlot &slot : table8.slots)
        EXPECT_FALSE(slot.phantom);
}
