#include <gtest/gtest.h>

#include <fstream>

#include "harness/experiment.hh"
#include "sim/config.hh"

using namespace memsec;

TEST(Config, SetGetRoundTrip)
{
    Config c;
    c.set("s", "hello").set("i", int64_t{-5}).set("u", uint64_t{7});
    c.set("d", 2.5).set("b", true);
    EXPECT_EQ(c.getString("s"), "hello");
    EXPECT_EQ(c.getInt("i"), -5);
    EXPECT_EQ(c.getUint("u"), 7u);
    EXPECT_DOUBLE_EQ(c.getDouble("d"), 2.5);
    EXPECT_TRUE(c.getBool("b"));
}

TEST(Config, DefaultsWhenAbsent)
{
    Config c;
    EXPECT_EQ(c.getString("nope", "dflt"), "dflt");
    EXPECT_EQ(c.getInt("nope", 42), 42);
    EXPECT_EQ(c.getUint("nope", 9u), 9u);
    EXPECT_DOUBLE_EQ(c.getDouble("nope", 1.5), 1.5);
    EXPECT_TRUE(c.getBool("nope", true));
}

TEST(Config, HasAndErase)
{
    Config c;
    c.set("k", 1);
    EXPECT_TRUE(c.has("k"));
    c.erase("k");
    EXPECT_FALSE(c.has("k"));
}

TEST(Config, BoolSpellings)
{
    Config c;
    for (const char *v : {"true", "1", "yes", "on", "TRUE", "Yes"}) {
        c.set("b", v);
        EXPECT_TRUE(c.getBool("b")) << v;
    }
    for (const char *v : {"false", "0", "no", "off", "False"}) {
        c.set("b", v);
        EXPECT_FALSE(c.getBool("b")) << v;
    }
}

TEST(Config, MergeOverwrites)
{
    Config a;
    a.set("x", 1).set("y", 2);
    Config b;
    b.set("y", 3).set("z", 4);
    a.merge(b);
    EXPECT_EQ(a.getInt("x"), 1);
    EXPECT_EQ(a.getInt("y"), 3);
    EXPECT_EQ(a.getInt("z"), 4);
}

TEST(Config, ParseIniBasics)
{
    const Config c = Config::parseIni(
        "# comment\n"
        "top = 1\n"
        "[dram]\n"
        "ranks = 8  ; trailing comment\n"
        "banks = 8\n"
        "[core]\n"
        "rob = 64\n");
    EXPECT_EQ(c.getInt("top"), 1);
    EXPECT_EQ(c.getInt("dram.ranks"), 8);
    EXPECT_EQ(c.getInt("dram.banks"), 8);
    EXPECT_EQ(c.getInt("core.rob"), 64);
}

TEST(Config, ParseIniMalformedLineFatal)
{
    EXPECT_EXIT(Config::parseIni("this is not a kv line\n"),
                ::testing::ExitedWithCode(1), "expected");
}

TEST(Config, NonNumericValueFatal)
{
    Config c;
    c.set("k", "abc");
    EXPECT_EXIT(c.getInt("k"), ::testing::ExitedWithCode(1),
                "non-integer");
}

TEST(Config, TryParseIniReportsFileAndLine)
{
    Config out;
    ConfigParseError err;
    EXPECT_FALSE(Config::tryParseIni("a = 1\n"
                                     "b = 2\n"
                                     "garbage without equals\n",
                                     out, err, "sys.ini"));
    EXPECT_EQ(err.file, "sys.ini");
    EXPECT_EQ(err.line, 3);
    EXPECT_NE(err.message.find("expected 'key = value'"),
              std::string::npos);
    // "a = 1\n" and "b = 2\n" are 6 bytes each.
    EXPECT_EQ(err.byteOffset, 12u);
    EXPECT_EQ(err.toString(), "sys.ini:3 (byte 12): " + err.message);
}

TEST(Config, TryParseIniUnterminatedSection)
{
    Config out;
    ConfigParseError err;
    EXPECT_FALSE(Config::tryParseIni("[dram\nranks = 8\n", out, err));
    EXPECT_EQ(err.line, 1);
    EXPECT_NE(err.message.find("unterminated section"),
              std::string::npos);
}

TEST(Config, TryParseIniEmptyKey)
{
    Config out;
    ConfigParseError err;
    EXPECT_FALSE(Config::tryParseIni("= 5\n", out, err));
    EXPECT_EQ(err.line, 1);
    EXPECT_NE(err.message.find("empty key"), std::string::npos);
}

TEST(Config, TryParseIniSuccessLeavesErrorUntouched)
{
    Config out;
    ConfigParseError err;
    ASSERT_TRUE(Config::tryParseIni("x = 1\n", out, err));
    EXPECT_EQ(out.getInt("x"), 1);
    EXPECT_EQ(err.line, 0);
}

TEST(Config, TryLoadFileMissingFile)
{
    Config out;
    ConfigParseError err;
    EXPECT_FALSE(Config::tryLoadFile("/nonexistent/nope.ini", out, err));
    EXPECT_EQ(err.line, 0);
    EXPECT_NE(err.message.find("cannot open"), std::string::npos);
    // No "line 0" noise when the failure isn't tied to a line.
    EXPECT_EQ(err.toString().find(":0:"), std::string::npos);
}

TEST(Config, KeysSorted)
{
    Config c;
    c.set("b", 1).set("a", 2).set("c", 3);
    const auto k = c.keys();
    ASSERT_EQ(k.size(), 3u);
    EXPECT_EQ(k[0], "a");
    EXPECT_EQ(k[2], "c");
}

TEST(Config, ToStringRoundTrip)
{
    Config c;
    c.set("x", 5).set("name", "v");
    const Config c2 = Config::parseIni(c.toString());
    EXPECT_EQ(c2.getInt("x"), 5);
    EXPECT_EQ(c2.getString("name"), "v");
}

TEST(Config, LoadFileRoundTrip)
{
    const std::string path = ::testing::TempDir() + "memsec_cfg.ini";
    {
        std::ofstream out(path);
        out << "cores = 32\n[dram]\nchannels = 4\n";
    }
    const Config c = Config::loadFile(path);
    EXPECT_EQ(c.getUint("cores"), 32u);
    EXPECT_EQ(c.getUint("dram.channels"), 4u);
}

TEST(Config, LoadMissingFileFatal)
{
    EXPECT_EXIT(Config::loadFile("/nonexistent/nope.ini"),
                ::testing::ExitedWithCode(1), "cannot open");
}

TEST(Config, ShippedTargetConfigParses)
{
    // The example config shipped in the repository must stay valid.
    const Config c =
        Config::loadFile(std::string(MEMSEC_SOURCE_DIR) +
                         "/examples/configs/target32.ini");
    EXPECT_EQ(c.getUint("cores"), 32u);
    EXPECT_EQ(c.getUint("dram.channels"), 4u);
    EXPECT_GT(c.getUint("sim.measure"), 0u);
}

TEST(Config, DocConsistency)
{
    // docs/CONFIG.md claims to catalogue every knob. Hold it to that:
    // each key defaultConfig() sets, and each scheme name
    // schemeConfig() accepts, must appear in the document (as
    // `backtick-quoted` inline code). Keys only ever read with an
    // inline fallback are not enumerable here, but the defaults cover
    // every subsystem switch a user must know about — including the
    // execution-mode keys (sim.fastforward, sim.compiled*) the perf
    // architecture depends on.
    std::ifstream in(std::string(MEMSEC_SOURCE_DIR) +
                     "/docs/CONFIG.md");
    ASSERT_TRUE(in.is_open()) << "docs/CONFIG.md missing";
    std::string doc((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());

    const Config defaults = harness::defaultConfig();
    for (const std::string &key : defaults.keys()) {
        EXPECT_NE(doc.find("`" + key + "`"), std::string::npos)
            << "config key '" << key
            << "' set by defaultConfig() is not documented in "
               "docs/CONFIG.md";
    }
    for (const std::string &scheme : harness::allSchemes()) {
        EXPECT_NE(doc.find(scheme), std::string::npos)
            << "scheme '" << scheme
            << "' is not mentioned in docs/CONFIG.md";
    }
}
