/**
 * @file
 * Differential proof that channel sharding is invisible: every
 * scheduler x partitioning combination that can run multi-channel is
 * run twice from identical seeds — once serially (sim.shards = 1),
 * once with the channels stepped in parallel on the thread pool —
 * and the full-precision result digests must compare equal byte for
 * byte. Shards share no mutable state by construction; this test is
 * the proof that the construction holds (a shared PRNG, a shared
 * error list, or any cross-shard ordering dependence shows up as a
 * digest mismatch).
 */

#include <gtest/gtest.h>

#include <string>

#include "harness/campaign.hh"
#include "harness/experiment.hh"

using namespace memsec;
using namespace memsec::harness;

namespace {

Config
shardConfig(const std::string &scheme, const std::string &workload,
            unsigned channels, uint64_t seed)
{
    Config c = defaultConfig();
    c.merge(schemeConfig(scheme));
    c.set("dram.channels", channels);
    c.set("cores", 8);
    c.set("workload", workload);
    c.set("seed", seed);
    c.set("sim.warmup", 1500);
    c.set("sim.measure", 12000);
    // Audit one core so the digest covers the noninterference
    // timeline, not just the aggregate metrics.
    c.set("audit.core", 0);
    c.set("audit.progress_interval", 1000);
    return c;
}

void
expectShardedIdentical(Config cfg, unsigned shards)
{
    cfg.set("sim.shards", 1);
    const ExperimentResult serial = runExperiment(cfg);
    cfg.set("sim.shards", shards);
    const ExperimentResult sharded = runExperiment(cfg);
    EXPECT_EQ(resultDigest(serial), resultDigest(sharded))
        << cfg.getString("scheme", "?") << "/"
        << cfg.getString("workload", "?") << " shards=" << shards;
    EXPECT_EQ(serial.shards, 1u);
    EXPECT_EQ(sharded.shards, shards);
}

} // namespace

// -- FS rank partition over 2 and 4 channels -----------------------

TEST(ShardDiff, FsRankPartition)
{
    expectShardedIdentical(shardConfig("fs_rp", "mcf", 2, 1), 2);
    expectShardedIdentical(shardConfig("fs_rp", "milc", 4, 42), 4);
}

TEST(ShardDiff, FsBankPartition)
{
    expectShardedIdentical(shardConfig("fs_bp", "mcf", 2, 1), 2);
}

TEST(ShardDiff, FsReordered)
{
    expectShardedIdentical(shardConfig("fs_reordered_bp", "mcf", 2, 1),
                           2);
}

// -- Temporal partitioning (newly allowed multi-channel) -----------

TEST(ShardDiff, TpBankPartition)
{
    expectShardedIdentical(shardConfig("tp_bp", "mcf", 2, 1), 2);
    expectShardedIdentical(shardConfig("tp_bp", "astar", 4, 7), 4);
}

// -- FR-FCFS baseline and channel partitioning ---------------------

TEST(ShardDiff, FrFcfsBaseline)
{
    expectShardedIdentical(shardConfig("baseline", "mix1", 4, 1), 4);
}

TEST(ShardDiff, ChannelPartition)
{
    // 8 domains, one private channel each; 8 shards of one channel.
    expectShardedIdentical(shardConfig("channel_part", "mcf", 8, 1),
                           8);
}

// -- Shard count not dividing the channel count --------------------

TEST(ShardDiff, UnevenShardCount)
{
    expectShardedIdentical(shardConfig("fs_rp", "mcf", 4, 1), 3);
}

// -- Requesting more shards than channels clamps, still identical --

TEST(ShardDiff, ShardCountClamped)
{
    Config cfg = shardConfig("fs_rp", "mcf", 2, 1);
    cfg.set("sim.shards", 1);
    const ExperimentResult serial = runExperiment(cfg);
    cfg.set("sim.shards", 16);
    const ExperimentResult sharded = runExperiment(cfg);
    EXPECT_EQ(resultDigest(serial), resultDigest(sharded));
    EXPECT_EQ(sharded.shards, 2u) << "clamped to the channel count";
}

// -- Fault injection: per-controller injector streams --------------
//
// Slot-skew injection draws from a PRNG on the fault path. With one
// injector per controller the draw order inside each controller is
// fixed regardless of how shards interleave, so the digest —
// including every recorded SimError and per-rule violation total —
// must still match the serial run.

TEST(ShardDiff, SlotSkewFaultInjection)
{
    Config cfg = shardConfig("fs_rp", "mcf", 2, 1);
    cfg.set("fault.kind", "slot-skew");
    cfg.set("sim.shards", 1);
    const ExperimentResult serial = runExperiment(cfg);
    cfg.set("sim.shards", 2);
    const ExperimentResult sharded = runExperiment(cfg);
    EXPECT_EQ(resultDigest(serial), resultDigest(sharded));
    EXPECT_EQ(serial.violationRules, sharded.violationRules);
    EXPECT_EQ(serial.faultsInjected, sharded.faultsInjected);
    EXPECT_GT(serial.faultsInjected, 0u)
        << "injection never fired, differential is vacuous";
}

// -- Sharding composes with the other kernel fast paths ------------

TEST(ShardDiff, ComposesWithFastForwardAndCompiled)
{
    Config cfg = shardConfig("fs_rp", "mcf", 2, 1);
    cfg.set("sim.fastforward", false);
    cfg.set("sim.shards", 1);
    const ExperimentResult naive = runExperiment(cfg);
    cfg.set("sim.fastforward", true);
    cfg.set("sim.compiled", "on");
    cfg.set("sim.shards", 2);
    const ExperimentResult sharded = runExperiment(cfg);
    EXPECT_EQ(resultDigest(naive), resultDigest(sharded));
}

// -- Open-loop arrivals under sharding -----------------------------

TEST(ShardDiff, OpenLoopTraffic)
{
    Config cfg = shardConfig("fs_rp", "cloud", 2, 1);
    cfg.set("traffic.process", "mmpp");
    cfg.set("traffic.rate", 6.0);
    cfg.set("traffic.clients", 16);
    expectShardedIdentical(cfg, 2);
}

// -- The epoch length is pure scheduling, never observable ---------

TEST(ShardDiff, EpochLengthInvisible)
{
    Config cfg = shardConfig("fs_rp", "mcf", 2, 1);
    cfg.set("sim.shards", 2);
    cfg.set("sim.shard_epoch", 8192);
    const ExperimentResult coarse = runExperiment(cfg);
    cfg.set("sim.shard_epoch", 257);
    const ExperimentResult fine = runExperiment(cfg);
    EXPECT_EQ(resultDigest(coarse), resultDigest(fine));
}
