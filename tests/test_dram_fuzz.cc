/**
 * @file
 * Randomised double-entry validation of the DRAM model.
 *
 * A random agent repeatedly picks an arbitrary command and issues it
 * whenever the fast-path bookkeeping (canIssue) admits it. The
 * independent TimingChecker audits every issued command, so any
 * disagreement between the two implementations of the JEDEC rules —
 * fast path too permissive — panics. A second pass asserts the fast
 * path is not overly conservative either: after long-enough idleness
 * every bank must accept an ACT again.
 */

#include <gtest/gtest.h>

#include "dram/dram_system.hh"
#include "util/random.hh"

using namespace memsec;
using namespace memsec::dram;

namespace {

class DramFuzz : public ::testing::TestWithParam<uint64_t>
{
};

Command
randomCommand(Rng &rng, const Geometry &geo)
{
    static const CmdType kinds[] = {
        CmdType::Act,     CmdType::Act, CmdType::Rd,  CmdType::RdA,
        CmdType::Wr,      CmdType::WrA, CmdType::Pre, CmdType::Ref,
        CmdType::PdEnter, CmdType::PdExit,
    };
    Command c;
    c.type = kinds[rng.below(std::size(kinds))];
    c.rank = static_cast<unsigned>(rng.below(geo.ranksPerChannel));
    c.bank = static_cast<unsigned>(rng.below(geo.banksPerRank));
    c.row = static_cast<unsigned>(rng.below(64));
    return c;
}

} // namespace

TEST_P(DramFuzz, RandomLegalStreamNeverTripsTheAuditor)
{
    const Geometry geo;
    DramSystem sys(TimingParams::ddr3_1600_4gb(), geo);
    Rng rng(GetParam());

    uint64_t issued = 0;
    for (Cycle t = 0; t < 30000; ++t) {
        // A few attempts per cycle; at most one can issue (cmd bus).
        for (int attempt = 0; attempt < 4; ++attempt) {
            Command c = randomCommand(rng, geo);
            // Column commands must target the open row to be legal;
            // steer half the attempts at it.
            if (isColumn(c.type)) {
                const Bank &bk = sys.rank(c.rank).bank(c.bank);
                if (bk.isOpen() && rng.chance(0.8))
                    c.row = bk.openRow();
            }
            if (sys.canIssue(c, t)) {
                // Must not throw: fast path and auditor agree.
                ASSERT_NO_THROW(sys.issue(c, t)) << c.toString()
                                                 << " at " << t;
                ++issued;
                break;
            }
        }
        sys.tick(t);
    }
    // The stream must have made real progress.
    EXPECT_GT(issued, 2000u);
    EXPECT_EQ(sys.checker().observed(), issued);
    EXPECT_TRUE(sys.checker().violations().empty());
}

TEST_P(DramFuzz, FastPathNotOverlyConservative)
{
    const Geometry geo;
    DramSystem sys(TimingParams::ddr3_1600_4gb(), geo);
    Rng rng(GetParam() ^ 0xDEAD);

    Cycle t = 0;
    for (int round = 0; round < 200; ++round) {
        const unsigned rank =
            static_cast<unsigned>(rng.below(geo.ranksPerChannel));
        const unsigned bank =
            static_cast<unsigned>(rng.below(geo.banksPerRank));
        const unsigned row = static_cast<unsigned>(rng.below(1024));

        // A full read transaction must always be issuable within a
        // bounded wait (tRFC is the longest stall in the system).
        Command act{CmdType::Act, rank, bank, row, 0, false};
        Cycle waited = 0;
        while (!sys.canIssue(act, t)) {
            ++t;
            ASSERT_LT(++waited, 600u) << "ACT starved";
        }
        sys.issue(act, t);

        Command rd{CmdType::RdA, rank, bank, row, 0, false};
        waited = 0;
        while (!sys.canIssue(rd, ++t))
            ASSERT_LT(++waited, 600u) << "RDA starved";
        sys.issue(rd, t);
        t += rng.below(8);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DramFuzz,
                         ::testing::Values(1ull, 7ull, 42ull, 1337ull,
                                           0xABCDEFull));
