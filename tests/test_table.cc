#include <gtest/gtest.h>

#include <sstream>

#include "util/table.hh"

using namespace memsec;

TEST(Table, AlignsColumns)
{
    Table t;
    t.header({"name", "value"});
    t.row({"a", "1"});
    t.row({"longer-name", "2"});
    std::ostringstream os;
    t.print(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("name"), std::string::npos);
    EXPECT_NE(out.find("longer-name"), std::string::npos);
    // Header separator line present.
    EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(Table, CsvOutput)
{
    Table t;
    t.header({"w", "x"});
    t.row({"a", "1"});
    std::ostringstream os;
    t.printCsv(os);
    EXPECT_EQ(os.str(), "w,x\na,1\n");
}

TEST(Table, NumericRows)
{
    Table t;
    t.rowNumeric("r", {1.23456, 2.0}, 2);
    std::ostringstream os;
    t.printCsv(os);
    EXPECT_EQ(os.str(), "r,1.23,2.00\n");
}

TEST(Table, NumFormatsPrecision)
{
    EXPECT_EQ(Table::num(3.14159, 2), "3.14");
    EXPECT_EQ(Table::num(2.0, 0), "2");
}

TEST(Table, RaggedRowsHandled)
{
    Table t;
    t.header({"a"});
    t.row({"1", "2", "3"});
    std::ostringstream os;
    t.print(os);
    EXPECT_NE(os.str().find("3"), std::string::npos);
}
