#include <gtest/gtest.h>

#include <sstream>

#include "util/table.hh"

using namespace memsec;

TEST(Table, AlignsColumns)
{
    Table t;
    t.header({"name", "value"});
    t.row({"a", "1"});
    t.row({"longer-name", "2"});
    std::ostringstream os;
    t.print(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("name"), std::string::npos);
    EXPECT_NE(out.find("longer-name"), std::string::npos);
    // Header separator line present.
    EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(Table, CsvOutput)
{
    Table t;
    t.header({"w", "x"});
    t.row({"a", "1"});
    std::ostringstream os;
    t.printCsv(os);
    EXPECT_EQ(os.str(), "w,x\na,1\n");
}

TEST(Table, NumericRows)
{
    Table t;
    t.rowNumeric("r", {1.23456, 2.0}, 2);
    std::ostringstream os;
    t.printCsv(os);
    EXPECT_EQ(os.str(), "r,1.23,2.00\n");
}

TEST(Table, NumFormatsPrecision)
{
    EXPECT_EQ(Table::num(3.14159, 2), "3.14");
    EXPECT_EQ(Table::num(2.0, 0), "2");
}

TEST(Table, RaggedRowsHandled)
{
    Table t;
    t.header({"a"});
    t.row({"1", "2", "3"});
    std::ostringstream os;
    t.print(os);
    EXPECT_NE(os.str().find("3"), std::string::npos);
}

namespace {

std::vector<std::string>
lines(const std::string &s)
{
    std::vector<std::string> out;
    std::istringstream is(s);
    std::string line;
    while (std::getline(is, line))
        out.push_back(line);
    return out;
}

} // namespace

// Regression: numeric columns under a wide header (e.g. a scheme name
// like "fs_reordered_bp") used to left-align, scattering the decimal
// points across the column. Values must right-align to the header.
TEST(Table, NumericColumnsRightAlignUnderWideHeader)
{
    Table t;
    t.header({"workload", "fs_reordered_bp"});
    t.row({"mcf", "0.91"});
    t.row({"libquantum", "12.34"});
    std::ostringstream os;
    t.print(os);
    const auto ls = lines(os.str());
    ASSERT_EQ(ls.size(), 4u); // header, separator, 2 rows
    // Both values end exactly where the header column ends.
    EXPECT_EQ(ls[0].size(), ls[2].size());
    EXPECT_EQ(ls[0].size(), ls[3].size());
    EXPECT_EQ(ls[2].substr(ls[2].size() - 4), "0.91");
    EXPECT_EQ(ls[3].substr(ls[3].size() - 5), "12.34");
    // Decimal points line up: same column index in both rows.
    EXPECT_EQ(ls[2].find('.'), ls[3].find('.'));
}

TEST(Table, TextColumnsStayLeftAligned)
{
    Table t;
    t.header({"scheme", "note"});
    t.row({"fs_rp", "ok"});
    t.row({"baseline_prefetch", "slow"});
    std::ostringstream os;
    t.print(os);
    const auto ls = lines(os.str());
    ASSERT_EQ(ls.size(), 4u);
    EXPECT_EQ(ls[2].rfind("fs_rp", 0), 0u);
    EXPECT_EQ(ls[3].rfind("baseline_prefetch", 0), 0u);
}

TEST(Table, NoTrailingWhitespace)
{
    Table t;
    t.header({"a-wide-header", "v"});
    t.row({"x", "1"});
    t.row({"y", ""});
    std::ostringstream os;
    t.print(os);
    for (const auto &line : lines(os.str())) {
        if (line.empty())
            continue;
        EXPECT_NE(line.back(), ' ') << "line: '" << line << "'";
    }
}

// Suffixed values ("4.5%", "1.9x") and "-" placeholders still count
// as numeric; a column with real text does not.
TEST(Table, NumericDetectionHandlesSuffixesAndPlaceholders)
{
    Table t;
    t.header({"scheme", "overhead-percentage"});
    t.row({"baseline", "3.3%"});
    t.row({"fs_rp", "-"});
    t.row({"tp_bp", "10.5%"});
    std::ostringstream os;
    t.print(os);
    const auto ls = lines(os.str());
    ASSERT_EQ(ls.size(), 5u);
    EXPECT_EQ(ls[2].substr(ls[2].size() - 4), "3.3%");
    EXPECT_EQ(ls[4].substr(ls[4].size() - 5), "10.5%");

    Table u;
    u.header({"k", "mixed"});
    u.row({"a", "1.0"});
    u.row({"b", "n/a really"});
    std::ostringstream os2;
    u.print(os2);
    const auto ls2 = lines(os2.str());
    // Text forces left alignment: "1.0" starts at the column start.
    const size_t col = ls2[0].find("mixed");
    EXPECT_EQ(ls2[2].find("1.0"), col);
}
