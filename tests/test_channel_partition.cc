/**
 * @file
 * Channel partitioning (Section 4.1): with at most one domain per
 * channel nothing is shared, so a per-channel NON-secure scheduler is
 * already leak-free and pays no shaping cost at all — the cheapest
 * point in the paper's design space when thread count permits.
 */

#include <gtest/gtest.h>

#include "core/noninterference.hh"
#include "harness/experiment.hh"

using namespace memsec;
using namespace memsec::harness;

namespace {

Config
base(unsigned cores)
{
    Config c = defaultConfig();
    c.merge(schemeConfig("channel_part"));
    c.set("cores", cores);
    c.set("sim.warmup", 2000);
    c.set("sim.measure", 30000);
    return c;
}

} // namespace

TEST(ChannelPartition, RunsAndServesAllCores)
{
    Config c = base(4);
    c.set("workload", "milc");
    const auto r = runExperiment(c);
    ASSERT_EQ(r.ipc.size(), 4u);
    for (double v : r.ipc)
        EXPECT_GT(v, 0.0);
    EXPECT_GT(r.demandReads, 0u);
}

TEST(ChannelPartition, OutperformsSharedChannelSchemes)
{
    // A private channel per domain beats both the shared-channel
    // baseline (no contention at all) and FS (no shaping tax).
    auto sum = [](const ExperimentResult &r) {
        double s = 0;
        for (double v : r.ipc)
            s += v;
        return s;
    };
    Config cp = base(4);
    cp.set("workload", "lbm");
    const double chan = sum(runExperiment(cp));

    Config shared = defaultConfig();
    shared.merge(schemeConfig("baseline"));
    shared.set("cores", 4);
    shared.set("workload", "lbm");
    shared.set("sim.warmup", 2000);
    shared.set("sim.measure", 30000);
    const double sharedIpc = sum(runExperiment(shared));

    Config fs = defaultConfig();
    fs.merge(schemeConfig("fs_rp"));
    fs.set("cores", 4);
    fs.set("workload", "lbm");
    fs.set("sim.warmup", 2000);
    fs.set("sim.measure", 30000);
    const double fsIpc = sum(runExperiment(fs));

    EXPECT_GT(chan, sharedIpc);
    EXPECT_GT(chan, fsIpc);
}

TEST(ChannelPartition, NonInterferenceWithNonSecureScheduler)
{
    // The paper's Section 4.1 claim, verified end-to-end: a plain
    // FR-FCFS scheduler leaks nothing once channels are private.
    auto run = [](const char *co) {
        Config c = base(4);
        c.set("workload", std::string("mcf,") + co + "," + co + "," +
                              co);
        c.set("sim.warmup", 0);
        c.set("audit.core", 0);
        return runExperiment(c).timelines.at(0);
    };
    const auto audit = core::compareTimelines(run("idle"), run("hog"));
    EXPECT_TRUE(audit.identical) << audit.detail;
}

TEST(ChannelPartition, RequiresBaselineScheduler)
{
    Config c = base(4);
    c.set("sched", "fs");
    c.set("workload", "mcf");
    EXPECT_EXIT(runExperiment(c), ::testing::ExitedWithCode(1),
                "channel partitioning");
}
