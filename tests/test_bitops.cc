#include <gtest/gtest.h>

#include "util/bitops.hh"

using namespace memsec;

TEST(Bitops, IsPowerOf2)
{
    EXPECT_FALSE(isPowerOf2(0));
    EXPECT_TRUE(isPowerOf2(1));
    EXPECT_TRUE(isPowerOf2(2));
    EXPECT_FALSE(isPowerOf2(3));
    EXPECT_TRUE(isPowerOf2(1ull << 63));
    EXPECT_FALSE(isPowerOf2((1ull << 63) + 1));
}

TEST(Bitops, FloorLog2)
{
    EXPECT_EQ(floorLog2(1), 0u);
    EXPECT_EQ(floorLog2(2), 1u);
    EXPECT_EQ(floorLog2(3), 1u);
    EXPECT_EQ(floorLog2(1024), 10u);
    EXPECT_EQ(floorLog2(1025), 10u);
    EXPECT_EQ(floorLog2(~0ull), 63u);
}

TEST(Bitops, CeilLog2)
{
    EXPECT_EQ(ceilLog2(1), 0u);
    EXPECT_EQ(ceilLog2(2), 1u);
    EXPECT_EQ(ceilLog2(3), 2u);
    EXPECT_EQ(ceilLog2(1024), 10u);
    EXPECT_EQ(ceilLog2(1025), 11u);
}

TEST(Bitops, BitsExtraction)
{
    EXPECT_EQ(bits(0xABCD, 0, 4), 0xDu);
    EXPECT_EQ(bits(0xABCD, 4, 4), 0xCu);
    EXPECT_EQ(bits(0xABCD, 8, 8), 0xABu);
    EXPECT_EQ(bits(0xFFFFFFFFFFFFFFFFull, 0, 64), ~0ull);
}

TEST(Bitops, InsertBits)
{
    EXPECT_EQ(insertBits(0, 4, 4, 0xC), 0xC0ull);
    EXPECT_EQ(insertBits(0xD, 4, 4, 0xC), 0xCDull);
    // Values wider than the field are masked.
    EXPECT_EQ(insertBits(0, 0, 4, 0x1F), 0xFull);
}

TEST(Bitops, BitsRoundTrip)
{
    for (unsigned lo : {0u, 3u, 17u, 40u}) {
        for (unsigned w : {1u, 5u, 12u}) {
            const uint64_t v = 0x15u & ((1ull << w) - 1);
            EXPECT_EQ(bits(insertBits(0, lo, w, v), lo, w), v);
        }
    }
}
