/**
 * @file
 * The certifier must prove the provable and refute the refutable:
 * certificates for every paper design point (including refresh-epoch
 * rollovers and reordered-FS interval boundaries), a minimal concrete
 * witness for FR-FCFS, and a witness for a deliberately leaky toy
 * scheduler injected through the makeScheduler test hook — the
 * certifier catching a scheduler it has never seen before.
 */

#include <gtest/gtest.h>

#include <bit>
#include <memory>
#include <string>

#include "analysis/noninterference_certifier.hh"
#include "mem/memory_controller.hh"
#include "mem/transaction_queue.hh"
#include "sched/scheduler.hh"

using namespace memsec;
using namespace memsec::analysis;

namespace {

/** Runs per config: 2 profiles x (1 reference + 7 subsets x 3
 *  backlog scenarios) at 4 domains. */
constexpr uint64_t kExpectedRuns = 2 * (1 + 7 * 3);

/**
 * A deliberately leaky scheduler: service latency depends on the
 * TOTAL backlog across all domains, the classic shared-FCFS coupling
 * the paper's fixed service removes. The certifier has no special
 * knowledge of it — it arrives through the makeScheduler hook — yet
 * must refuse a certificate with a concrete witness.
 */
class LeakyToyScheduler : public sched::Scheduler
{
  public:
    explicit LeakyToyScheduler(mem::MemoryController &mc)
        : Scheduler(mc)
    {
    }

    void
    tick(Cycle now) override
    {
        if (now < busyUntil_)
            return;
        uint64_t backlog = 0;
        for (DomainId d = 0; d < mc_.numDomains(); ++d)
            backlog += mc_.queue(d).size();
        for (DomainId d = 0; d < mc_.numDomains(); ++d) {
            mem::TransactionQueue &q = mc_.queue(d);
            mem::MemRequest *r = q.findOldest(
                [](const mem::MemRequest &) { return true; });
            if (!r)
                continue;
            auto req = q.take(r);
            req->firstCommand = now;
            // Demand-coupled latency: every queued co-runner
            // transaction delays the observer's completion.
            busyUntil_ = now + 20 + backlog;
            mc_.finishRequest(std::move(req), busyUntil_);
            return;
        }
    }

    std::string name() const override { return "leaky-toy"; }

  private:
    Cycle busyUntil_ = 0;
};

} // namespace

TEST(Certifier, AllFivePaperPointsCertify)
{
    for (const PaperCertPoint &p : paperCertPoints()) {
        const NoninterferenceCertifier cert(p.cfg);
        const CertifyResult res = cert.certify();
        EXPECT_TRUE(res.certified)
            << p.label << " (l=" << p.l << "): " << res.summary();
        EXPECT_FALSE(res.hasWitness) << p.label;
        EXPECT_EQ(res.runsChecked, kExpectedRuns) << p.label;
        EXPECT_GT(res.observations, 0u) << p.label;
    }
}

TEST(Certifier, FrFcfsYieldsMinimalWitness)
{
    CertifierConfig cfg;
    cfg.scheme = CertScheme::FrFcfs;
    cfg.horizonFrames = 8;
    const CertifyResult res = NoninterferenceCertifier(cfg).certify();

    ASSERT_FALSE(res.certified);
    ASSERT_TRUE(res.hasWitness);
    // Assignments are swept in popcount-then-value order, so the
    // reported witness is a MINIMAL distinguishing pair: one single
    // backlogged co-runner suffices to shift the observer.
    EXPECT_EQ(std::popcount(res.witness.assignment), 1);
    EXPECT_EQ(res.witness.assignment & (1u << cfg.observer), 0u)
        << "witness must not implicate the observer itself";
    EXPECT_GT(res.witness.firstDivergenceCycle, 0u);

    // The witness must read as a concrete input pair + divergence.
    const std::string w = res.witness.toString();
    EXPECT_NE(w.find("backlogged"), std::string::npos) << w;
    EXPECT_NE(w.find("divergence"), std::string::npos) << w;
}

TEST(Certifier, RefreshEpochRolloverStillCertifies)
{
    // Refresh blackouts are wall-clock-fixed; the certificate must
    // hold across epoch boundaries. The certifier stretches its
    // horizon past multiple tREFI epochs when refresh is modelled —
    // observable as a strictly longer horizon than the plain point.
    CertifierConfig plain = paperCertPoints()[0].cfg;
    CertifierConfig refresh = plain;
    refresh.fs.refresh = true;

    const CertifyResult p = NoninterferenceCertifier(plain).certify();
    const CertifyResult r =
        NoninterferenceCertifier(refresh).certify();
    EXPECT_TRUE(p.certified) << p.summary();
    EXPECT_TRUE(r.certified) << r.summary();
    EXPECT_GT(r.horizonCycles, p.horizonCycles)
        << "refresh horizon must span multiple tREFI epochs";
}

TEST(Certifier, FsReorderedCertifiesAcrossIntervalBoundaries)
{
    // A prime frame count never divides the reordered scheduler's
    // Q-interval grid evenly, so the horizon ends mid-interval and
    // the burst scenario straddles interval boundaries.
    CertifierConfig cfg;
    cfg.scheme = CertScheme::FsReordered;
    cfg.horizonFrames = 13;
    const CertifyResult res = NoninterferenceCertifier(cfg).certify();
    EXPECT_TRUE(res.certified) << res.summary();
    EXPECT_EQ(res.runsChecked, kExpectedRuns);
}

TEST(Certifier, LeakyToySchedulerYieldsWitness)
{
    CertifierConfig cfg;
    cfg.scheme = CertScheme::FrFcfs; // unpartitioned address map
    cfg.horizonFrames = 8;
    cfg.makeScheduler = [](mem::MemoryController &mc) {
        return std::make_unique<LeakyToyScheduler>(mc);
    };
    const CertifyResult res = NoninterferenceCertifier(cfg).certify();

    ASSERT_FALSE(res.certified);
    ASSERT_TRUE(res.hasWitness);
    EXPECT_EQ(res.scheduler, "leaky-toy");
    EXPECT_EQ(std::popcount(res.witness.assignment), 1);
    EXPECT_GT(res.witness.firstDivergenceCycle, 0u);
}

TEST(Certifier, SummaryNamesSchedulerAndVerdict)
{
    const PaperCertPoint &p = paperCertPoints().front();
    const CertifyResult res = NoninterferenceCertifier(p.cfg).certify();
    const std::string s = res.summary();
    EXPECT_NE(s.find(res.scheduler), std::string::npos) << s;
    EXPECT_NE(s.find("CERTIFIED"), std::string::npos) << s;
}

TEST(Certifier, RejectsDegenerateDomainCounts)
{
    CertifierConfig solo;
    solo.numDomains = 1; // no co-runners: nothing to certify against
    EXPECT_EXIT(NoninterferenceCertifier{solo},
                ::testing::ExitedWithCode(1), "domains");
    CertifierConfig outOfRange;
    outOfRange.observer = 4; // numDomains = 4 -> invalid
    EXPECT_EXIT(NoninterferenceCertifier{outOfRange},
                ::testing::ExitedWithCode(1), "observer");
}
