#include <gtest/gtest.h>

#include <memory>

#include "mem/memory_controller.hh"
#include "sched/fs_reordered.hh"

using namespace memsec;
using namespace memsec::mem;
using namespace memsec::sched;

namespace {

class FsReorderedTest : public ::testing::Test, public MemClient
{
  protected:
    void
    build(unsigned domains)
    {
        map = std::make_unique<AddressMap>(dram::Geometry{},
                                           Partition::Bank,
                                           Interleave::ClosePage,
                                           domains);
        MemoryController::Params p;
        p.numDomains = domains;
        p.queueCapacity = 16;
        mc = std::make_unique<MemoryController>("mc", p, *map);
        auto s = std::make_unique<FsReorderedScheduler>(
            *mc, FsReorderedScheduler::Params{});
        fs = s.get();
        mc->setScheduler(std::move(s));
    }

    void memResponse(const MemRequest &req) override
    {
        done.push_back({req.domain, req.completed});
    }

    void
    inject(DomainId d, Addr a, Cycle now, ReqType t = ReqType::Read)
    {
        auto r = std::make_unique<MemRequest>();
        r->domain = d;
        r->type = t;
        r->addr = a;
        r->client = this;
        mc->access(std::move(r), now);
    }

    void
    runTo(Cycle end)
    {
        for (; now < end; ++now)
            mc->tick(now);
    }

    std::unique_ptr<AddressMap> map;
    std::unique_ptr<MemoryController> mc;
    FsReorderedScheduler *fs = nullptr;
    std::vector<std::pair<DomainId, Cycle>> done;
    Cycle now = 0;
};

} // namespace

TEST_F(FsReorderedTest, IntervalLengthMatchesPaper)
{
    build(8);
    EXPECT_EQ(fs->intervalLength(), 63u);
    EXPECT_EQ(fs->solution().spacing, 6u);
}

TEST_F(FsReorderedTest, AllDomainsServedEveryInterval)
{
    build(8);
    runTo(63 * 4);
    // Every interval issues one op per domain (dummies when idle).
    EXPECT_EQ(fs->dummyOps() + fs->realOps(), 8u * 4u);
}

TEST_F(FsReorderedTest, ReadsReturnEnMasseAtIntervalEnd)
{
    build(8);
    // Reads for several domains, all in the same interval.
    inject(0, 0x1000, 0);
    inject(3, 0x1000, 0);
    inject(6, 0x1000, 0);
    runTo(200);
    ASSERT_EQ(done.size(), 3u);
    // All three completions carry the same cycle: the interval end.
    EXPECT_EQ(done[0].second, done[1].second);
    EXPECT_EQ(done[1].second, done[2].second);
}

TEST_F(FsReorderedTest, MixedReadsWritesConflictFree)
{
    build(8);
    for (int i = 0; i < 12; ++i) {
        for (DomainId d = 0; d < 8; ++d) {
            inject(d, 0x4000 + i * 64ull * 8, 0,
                   (i + d) % 2 ? ReqType::Write : ReqType::Read);
        }
    }
    // The DRAM model panics on any conflict; draining cleanly is the
    // assertion.
    runTo(63 * 30);
    EXPECT_GT(fs->realOps(), 90u);
    for (DomainId d = 0; d < 8; ++d)
        EXPECT_EQ(mc->queue(d).size(), 0u);
}

TEST_F(FsReorderedTest, ThroughputOneOpPerDomainPerInterval)
{
    build(8);
    for (int i = 0; i < 10; ++i)
        inject(5, 0x8000 + i * 64ull, 0); // stripe across ranks
    runTo(63 * 13);
    size_t d5 = 0;
    for (const auto &e : done)
        d5 += e.first == 5;
    EXPECT_EQ(d5, 10u);
    // Ten ops need at least ten intervals.
    EXPECT_GE(done.back().second, 10u * 63u);
}

TEST_F(FsReorderedTest, WorksAtOtherDomainCounts)
{
    for (unsigned n : {2u, 4u}) {
        build(n);
        for (DomainId d = 0; d < n; ++d)
            inject(d, 0x2000, 0, d % 2 ? ReqType::Write : ReqType::Read);
        runTo(fs->intervalLength() * 6);
        EXPECT_GT(fs->realOps(), 0u) << n;
        done.clear();
        now = 0;
    }
}

TEST_F(FsReorderedTest, StatsRegistered)
{
    build(8);
    runTo(63 * 2);
    StatGroup g;
    fs->registerStats(g);
    EXPECT_GT(g.lookup("dummy_ops"), 0.0);
}
