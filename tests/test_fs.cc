#include <gtest/gtest.h>

#include <memory>

#include "mem/memory_controller.hh"
#include "sched/fs.hh"

using namespace memsec;
using namespace memsec::mem;
using namespace memsec::sched;

namespace {

class FsTest : public ::testing::Test, public MemClient
{
  protected:
    void
    build(FsMode mode, unsigned domains,
          FsScheduler::Params extra = FsScheduler::Params{})
    {
        const Partition part = mode == FsMode::RankPart
                                   ? Partition::Rank
                                   : (mode == FsMode::BankPart
                                          ? Partition::Bank
                                          : Partition::None);
        map = std::make_unique<AddressMap>(
            dram::Geometry{}, part, Interleave::ClosePage, domains);
        MemoryController::Params p;
        p.numDomains = domains;
        p.queueCapacity = 16;
        mc = std::make_unique<MemoryController>("mc", p, *map);
        extra.mode = mode;
        auto s = std::make_unique<FsScheduler>(*mc, extra);
        fs = s.get();
        mc->setScheduler(std::move(s));
    }

    void memResponse(const MemRequest &req) override
    {
        done.push_back({req.domain, req.completed});
    }

    void
    inject(DomainId d, Addr a, Cycle now, ReqType t = ReqType::Read)
    {
        auto r = std::make_unique<MemRequest>();
        r->domain = d;
        r->type = t;
        r->addr = a;
        r->client = this;
        mc->access(std::move(r), now);
    }

    void
    runTo(Cycle end)
    {
        for (; now < end; ++now)
            mc->tick(now);
    }

    std::unique_ptr<AddressMap> map;
    std::unique_ptr<MemoryController> mc;
    FsScheduler *fs = nullptr;
    std::vector<std::pair<DomainId, Cycle>> done;
    Cycle now = 0;
};

} // namespace

TEST_F(FsTest, RankModeUsesSolvedSpacing)
{
    build(FsMode::RankPart, 8);
    EXPECT_EQ(fs->slotSpacing(), 7u);
    EXPECT_EQ(fs->frameLength(), 56u);
    EXPECT_EQ(fs->name(), "fs-rank");
}

TEST_F(FsTest, BankAndNoPartSpacings)
{
    build(FsMode::BankPart, 8);
    EXPECT_EQ(fs->slotSpacing(), 15u);
    build(FsMode::NoPart, 8);
    EXPECT_EQ(fs->slotSpacing(), 43u);
    build(FsMode::TripleAlt, 8);
    EXPECT_EQ(fs->slotSpacing(), 15u);
}

TEST_F(FsTest, EverySlotProducesAnOperation)
{
    build(FsMode::RankPart, 8);
    runTo(56 * 10); // ten frames
    // All 80 slots decided (all dummies: queues are empty); the last
    // slot's CAS (cycle 79*7+11) is still in flight at cycle 560.
    EXPECT_EQ(fs->dummyOps(), 80u);
    EXPECT_EQ(fs->realOps(), 0u);
    EXPECT_EQ(mc->stats().dummyBursts.value(), 79u);
}

TEST_F(FsTest, ServiceGuaranteeWithinTwoFrames)
{
    build(FsMode::RankPart, 8);
    inject(3, 0x4000, 0);
    runTo(150);
    ASSERT_EQ(done.size(), 1u);
    EXPECT_LE(done[0].second, 2u * fs->frameLength() + 26);
}

TEST_F(FsTest, ConstantInjectionRateUnderLoad)
{
    build(FsMode::RankPart, 8);
    // Saturate domain 0; every domain-0 slot becomes a real op and
    // completions are exactly Q apart once steady.
    for (int i = 0; i < 10; ++i)
        inject(0, 0x10000 + i * 64ull * 8, 0);
    runTo(56 * 12);
    ASSERT_GE(done.size(), 10u);
    for (size_t i = 2; i < done.size(); ++i) {
        const Cycle gap = done[i].second - done[i - 1].second;
        // Footnote 1: 50, 56, or 62 cycles between a thread's ops.
        EXPECT_GE(gap, 50u);
        EXPECT_LE(gap, 62u);
    }
}

TEST_F(FsTest, ReadWriteMixedPipelineConflictFree)
{
    build(FsMode::RankPart, 8);
    for (int i = 0; i < 12; ++i) {
        for (DomainId d = 0; d < 8; ++d) {
            inject(d, 0x8000 + i * 64ull * 8, 0,
                   (i + d) % 3 == 0 ? ReqType::Write : ReqType::Read);
        }
    }
    // Any timing conflict panics inside the DRAM model.
    runTo(3000);
    EXPECT_GT(fs->realOps(), 90u);
}

TEST_F(FsTest, DummiesTargetOwnPartition)
{
    build(FsMode::RankPart, 4);
    runTo(500);
    // With rank partitioning and empty queues all dummy activity per
    // rank must come from its owner; cross-checking energy counters:
    // every rank saw activity (its owner's dummies).
    for (unsigned r = 0; r < 8; ++r) {
        const auto &e = mc->dram().rank(r).energy();
        EXPECT_GT(e.activates, 0u) << "rank " << r;
    }
}

TEST_F(FsTest, LowThreadCountHazardHandled)
{
    // 2 threads, rank partitioning: Q = 14 < 43, so back-to-back
    // same-bank transactions are a hazard the scheduler must dodge
    // (Section 7). Saturating one domain with same-bank requests
    // forces deferrals; the run must stay conflict-free.
    build(FsMode::RankPart, 2);
    for (int i = 0; i < 14; ++i)
        inject(0, 0x100000ull * i, 0); // many rows, one bank
    runTo(4000);
    EXPECT_GT(fs->realOps(), 0u);
    StatGroup g;
    fs->registerStats(g);
    EXPECT_GT(g.lookup("hazard_deferrals"), 0.0);
}

TEST_F(FsTest, TripleAlternationRotatesBankGroups)
{
    build(FsMode::TripleAlt, 8);
    runTo(360 * 4);
    // The phantom pad slot only exists when domains % 3 == 0.
    EXPECT_EQ(fs->frameLength(), 8u * 15u);
    EXPECT_GT(fs->dummyOps(), 0u);
}

TEST_F(FsTest, TripleAlternationPadsWhenDivisibleByThree)
{
    build(FsMode::TripleAlt, 6);
    // 6 domains would pin each domain to one bank group; a phantom
    // slot breaks the alignment: frame = 7 slots.
    EXPECT_EQ(fs->frameLength(), 7u * 15u);
    runTo(2000);
    StatGroup g;
    fs->registerStats(g);
    EXPECT_GT(g.lookup("skipped_slots"), 0.0);
}

TEST_F(FsTest, PrefetchFillsDummySlots)
{
    FsScheduler::Params p;
    p.prefetchInDummies = true;
    build(FsMode::RankPart, 8, p);
    // Queue a prefetch candidate for domain 2.
    auto r = std::make_unique<MemRequest>();
    r->domain = 2;
    r->type = ReqType::Prefetch;
    r->addr = 0x3000;
    r->client = this;
    mc->access(std::move(r), 0);
    runTo(200);
    EXPECT_EQ(fs->prefetchOps(), 1u);
    ASSERT_FALSE(done.empty());
    EXPECT_EQ(done[0].first, 2u);
}

TEST_F(FsTest, SuppressedDummiesKeepTimingSkipEnergy)
{
    FsScheduler::Params p;
    p.suppressDummies = true;
    build(FsMode::RankPart, 8, p);
    runTo(56 * 5);
    uint64_t real = 0;
    uint64_t suppressed = 0;
    for (unsigned r = 0; r < 8; ++r) {
        real += mc->dram().rank(r).energy().activates;
        suppressed += mc->dram().rank(r).energy().suppressedActs;
    }
    EXPECT_EQ(real, 0u);
    EXPECT_GT(suppressed, 0u);
}

TEST_F(FsTest, RowBufferBoostSuppressesRepeatActivates)
{
    FsScheduler::Params p;
    p.suppressDummies = true;
    p.rowBufferBoost = true;
    build(FsMode::RankPart, 8, p);
    // Same row requested repeatedly by domain 0.
    for (int i = 0; i < 6; ++i)
        inject(0, 0x40, 0); // merged? no: reads aren't merged
    runTo(800);
    StatGroup g;
    fs->registerStats(g);
    EXPECT_GT(g.lookup("boosted_acts"), 0.0);
}

TEST_F(FsTest, PowerDownCreditsIdleRanks)
{
    FsScheduler::Params p;
    p.powerDown = true;
    build(FsMode::RankPart, 8, p);
    runTo(56 * 10);
    fs->finalize(now);
    uint64_t pd = 0;
    for (unsigned r = 0; r < 8; ++r)
        pd += mc->dram().rank(r).energy().cyclesPowerDown;
    EXPECT_GT(pd, 0u);
    StatGroup g;
    fs->registerStats(g);
    EXPECT_GT(g.lookup("skipped_slots"), 0.0);
}

TEST_F(FsTest, PowerDownRequiresRankPartitioning)
{
    FsScheduler::Params p;
    p.powerDown = true;
    p.mode = FsMode::BankPart;
    map = std::make_unique<AddressMap>(dram::Geometry{},
                                       Partition::Bank,
                                       Interleave::ClosePage, 8);
    MemoryController::Params mp;
    mp.numDomains = 8;
    mc = std::make_unique<MemoryController>("mc", mp, *map);
    EXPECT_EXIT(FsScheduler(*mc, p), ::testing::ExitedWithCode(1),
                "power-down");
}

TEST_F(FsTest, SlaWeightsGiveProportionalSlots)
{
    FsScheduler::Params p;
    p.slotWeights = {2, 1, 1, 1, 1, 1, 1, 1};
    build(FsMode::RankPart, 8, p);
    // Frame has 9 slots now.
    EXPECT_EQ(fs->frameLength(), 9u * 7u);
    // Load domains 0 and 1 equally; while both stay backlogged,
    // domain 0 completes ~2x as many transactions.
    for (int i = 0; i < 12; ++i) {
        inject(0, 0x100000 + i * 64ull, 0); // stripe across banks
        inject(1, 0x100000 + i * 64ull, 0);
    }
    runTo(9 * 7 * 5);
    size_t d0 = 0;
    size_t d1 = 0;
    for (const auto &e : done) {
        d0 += e.first == 0;
        d1 += e.first == 1;
    }
    EXPECT_GT(d1, 2u);
    EXPECT_GT(d0, d1 + d1 / 2);
}

TEST_F(FsTest, DummyFractionFormula)
{
    build(FsMode::RankPart, 8);
    inject(0, 0x1000, 0);
    runTo(56 * 4);
    StatGroup g;
    fs->registerStats(g);
    const double frac = g.lookup("dummy_fraction");
    EXPECT_GT(frac, 0.9);
    EXPECT_LT(frac, 1.0);
}
