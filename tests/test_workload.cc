#include <gtest/gtest.h>

#include <set>

#include "cpu/workload.hh"

using namespace memsec;
using namespace memsec::cpu;

TEST(Workload, RegistryHasEvaluationSuite)
{
    for (const auto &name : evaluationSuite()) {
        if (name == "mix1" || name == "mix2")
            continue;
        EXPECT_NO_FATAL_FAILURE(profileByName(name)) << name;
    }
}

TEST(Workload, EvaluationSuiteMatchesPaperOrder)
{
    const auto suite = evaluationSuite();
    ASSERT_EQ(suite.size(), 12u);
    EXPECT_EQ(suite.front(), "mix1");
    EXPECT_EQ(suite.back(), "xalancbmk");
}

TEST(Workload, UnknownProfileFatal)
{
    EXPECT_EXIT(profileByName("not-a-benchmark"),
                ::testing::ExitedWithCode(1), "unknown workload");
}

TEST(Workload, RateModeReplicates)
{
    const auto mix = workloadMix("mcf", 8);
    ASSERT_EQ(mix.size(), 8u);
    for (const auto &p : mix)
        EXPECT_EQ(p.name, "mcf");
}

TEST(Workload, Mix1Composition)
{
    // Section 6: two copies each of xalancbmk, soplex, mcf, omnetpp.
    const auto mix = workloadMix("mix1", 8);
    ASSERT_EQ(mix.size(), 8u);
    std::multiset<std::string> names;
    for (const auto &p : mix)
        names.insert(p.name);
    EXPECT_EQ(names.count("xalancbmk"), 2u);
    EXPECT_EQ(names.count("soplex"), 2u);
    EXPECT_EQ(names.count("mcf"), 2u);
    EXPECT_EQ(names.count("omnetpp"), 2u);
}

TEST(Workload, Mix2Composition)
{
    const auto mix = workloadMix("mix2", 8);
    std::multiset<std::string> names;
    for (const auto &p : mix)
        names.insert(p.name);
    EXPECT_EQ(names.count("milc"), 2u);
    EXPECT_EQ(names.count("lbm"), 2u);
    EXPECT_EQ(names.count("xalancbmk"), 2u);
    EXPECT_EQ(names.count("zeusmp"), 2u);
}

TEST(Workload, CommaListMix)
{
    const auto mix = workloadMix("mcf,idle", 4);
    ASSERT_EQ(mix.size(), 4u);
    EXPECT_EQ(mix[0].name, "mcf");
    EXPECT_EQ(mix[1].name, "idle");
    EXPECT_EQ(mix[2].name, "mcf");
    EXPECT_EQ(mix[3].name, "idle");
}

TEST(Workload, FewerCoresTruncate)
{
    const auto mix = workloadMix("mix1", 2);
    ASSERT_EQ(mix.size(), 2u);
    EXPECT_EQ(mix[0].name, "xalancbmk");
    EXPECT_EQ(mix[1].name, "soplex");
}

TEST(Workload, IntensityOrdering)
{
    // The suite's qualitative shape: the attacker profiles bracket
    // the SPEC ones, and xalancbmk has the smallest footprint.
    const auto idle = profileByName("idle");
    const auto hog = profileByName("hog");
    const auto xalanc = profileByName("xalancbmk");
    const auto mcf = profileByName("mcf");
    EXPECT_LT(idle.memRatio, 0.01);
    EXPECT_GT(hog.memRatio, mcf.memRatio);
    // xalancbmk sits just above the 8192-line LLC slice; mcf is far
    // beyond it.
    EXPECT_LT(xalanc.footprintLines, 2 * 8192u);
    EXPECT_GT(mcf.footprintLines, 100 * 8192u);
}

TEST(Workload, LbmIsWriteHeavy)
{
    EXPECT_GT(profileByName("lbm").storeFraction, 0.4);
}

TEST(Workload, McfHasLowMlp)
{
    EXPECT_LT(profileByName("mcf").mshrs,
              profileByName("libquantum").mshrs);
}

TEST(Workload, AllProfileNamesNonEmpty)
{
    const auto names = allProfileNames();
    EXPECT_GE(names.size(), 14u);
}
