#include <gtest/gtest.h>

#include <stdexcept>

#include "mem/transaction_queue.hh"

using namespace memsec;
using namespace memsec::mem;

namespace {

std::unique_ptr<MemRequest>
mk(ReqId id, ReqType type, Addr addr)
{
    auto r = std::make_unique<MemRequest>();
    r->id = id;
    r->type = type;
    r->addr = addr;
    return r;
}

} // namespace

TEST(TransactionQueue, FifoOrder)
{
    TransactionQueue q(4, 4);
    q.push(mk(1, ReqType::Read, 0x100));
    q.push(mk(2, ReqType::Read, 0x200));
    EXPECT_EQ(q.head()->id, 1u);
    EXPECT_EQ(q.popOldest()->id, 1u);
    EXPECT_EQ(q.popOldest()->id, 2u);
    EXPECT_TRUE(q.empty());
}

TEST(TransactionQueue, CapacityEnforcedPerType)
{
    TransactionQueue q(2, 2);
    q.push(mk(1, ReqType::Read, 0));
    q.push(mk(2, ReqType::Read, 64));
    EXPECT_TRUE(q.full(ReqType::Read));
    // Writes budget independently of reads.
    EXPECT_FALSE(q.full(ReqType::Write));
    q.push(mk(3, ReqType::Write, 128));
    q.push(mk(4, ReqType::Write, 192));
    EXPECT_TRUE(q.full(ReqType::Write));
    EXPECT_THROW(q.push(mk(5, ReqType::Read, 256)), std::logic_error);
    EXPECT_THROW(q.push(mk(6, ReqType::Write, 320)), std::logic_error);
}

TEST(TransactionQueue, ReadWriteCounts)
{
    TransactionQueue q(8, 8);
    q.push(mk(1, ReqType::Read, 0));
    q.push(mk(2, ReqType::Write, 64));
    q.push(mk(3, ReqType::Prefetch, 128));
    EXPECT_EQ(q.readCount(), 2u);
    EXPECT_EQ(q.writeCount(), 1u);
    q.popOldest();
    EXPECT_EQ(q.readCount(), 1u);
}

TEST(TransactionQueue, FindOldestRespectsOrder)
{
    TransactionQueue q(8, 8);
    q.push(mk(1, ReqType::Write, 0));
    q.push(mk(2, ReqType::Read, 64));
    q.push(mk(3, ReqType::Read, 128));
    const MemRequest *r = q.findOldest(
        [](const MemRequest &m) { return m.type == ReqType::Read; });
    ASSERT_NE(r, nullptr);
    EXPECT_EQ(r->id, 2u);
}

TEST(TransactionQueue, FindOldestNoMatch)
{
    TransactionQueue q(8, 8);
    q.push(mk(1, ReqType::Write, 0));
    EXPECT_EQ(q.findOldest([](const MemRequest &) { return false; }),
              nullptr);
}

TEST(TransactionQueue, FindOldestIsConstCorrect)
{
    // Regression: the single const findOldest handed out a mutable
    // MemRequest*, so a const queue could be modified through it.
    // The const overload must return a pointer-to-const, the
    // non-const overload a mutable pointer.
    using Pred = const std::function<bool(const MemRequest &)> &;
    static_assert(
        std::is_same_v<decltype(std::declval<const TransactionQueue &>()
                                    .findOldest(std::declval<Pred>())),
                       const MemRequest *>,
        "const queue must hand out const requests");
    static_assert(
        std::is_same_v<decltype(std::declval<TransactionQueue &>()
                                    .findOldest(std::declval<Pred>())),
                       MemRequest *>,
        "mutable queue keeps the mutable overload");

    TransactionQueue q(8, 8);
    q.push(mk(1, ReqType::Read, 0));
    const TransactionQueue &cq = q;
    const MemRequest *r =
        cq.findOldest([](const MemRequest &) { return true; });
    ASSERT_NE(r, nullptr);
    EXPECT_EQ(r->id, 1u);
    MemRequest *m =
        q.findOldest([](const MemRequest &) { return true; });
    EXPECT_EQ(m, r);
}

TEST(TransactionQueue, TakeRemovesSpecificEntry)
{
    TransactionQueue q(8, 8);
    q.push(mk(1, ReqType::Read, 0));
    q.push(mk(2, ReqType::Read, 64));
    q.push(mk(3, ReqType::Read, 128));
    const MemRequest *mid = q.at(1);
    auto taken = q.take(mid);
    EXPECT_EQ(taken->id, 2u);
    EXPECT_EQ(q.size(), 2u);
    EXPECT_EQ(q.at(0)->id, 1u);
    EXPECT_EQ(q.at(1)->id, 3u);
}

TEST(TransactionQueue, TakeMissingPanics)
{
    TransactionQueue q(8, 8);
    q.push(mk(1, ReqType::Read, 0));
    MemRequest stray;
    EXPECT_THROW(q.take(&stray), std::logic_error);
}

TEST(TransactionQueue, HasWriteToMatchesLine)
{
    TransactionQueue q(8, 8);
    q.push(mk(1, ReqType::Write, 0x1000));
    // Same 64B line, different byte offset.
    EXPECT_TRUE(q.hasWriteTo(0x1020));
    EXPECT_FALSE(q.hasWriteTo(0x1040));
    // Reads do not count as writes.
    q.push(mk(2, ReqType::Read, 0x2000));
    EXPECT_FALSE(q.hasWriteTo(0x2000));
    EXPECT_TRUE(q.hasEntryFor(0x2000));
}

TEST(TransactionQueue, ZeroCapacityPanics)
{
    EXPECT_THROW(TransactionQueue(0, 4), std::logic_error);
    EXPECT_THROW(TransactionQueue(4, 0), std::logic_error);
}

TEST(TransactionQueue, PopEmptyPanics)
{
    TransactionQueue q(2, 2);
    EXPECT_THROW(q.popOldest(), std::logic_error);
}
