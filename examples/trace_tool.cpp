/**
 * @file
 * Trace utility: export the synthetic workloads to USIMM-style trace
 * files, or inspect an existing trace.
 *
 *   ./trace_tool record <profile> <count> <out.txt> [seed]
 *   ./trace_tool info <trace.txt>
 *   ./trace_tool list
 *
 * Recorded traces replay bit-identically through the simulator with
 * `workload = trace:<path>`.
 */

#include <cstdlib>
#include <iostream>
#include <string>

#include "cpu/trace_file.hh"
#include "cpu/workload.hh"
#include "util/logging.hh"
#include "util/table.hh"

using namespace memsec;
using namespace memsec::cpu;

namespace {

int
usage()
{
    std::cout << "usage:\n"
                 "  trace_tool record <profile> <count> <out> [seed]\n"
                 "  trace_tool info <trace-file>\n"
                 "  trace_tool list\n";
    return 1;
}

/** Parse a decimal argv token; fatal with context on garbage. */
uint64_t
parseUint(const char *what, const char *text)
{
    char *end = nullptr;
    const uint64_t v = std::strtoull(text, &end, 10);
    fatal_if(end == text || *end != '\0',
             "{} must be a non-negative integer, got '{}'", what, text);
    return v;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        return usage();
    const std::string cmd = argv[1];

    if (cmd == "list") {
        std::cout << "profiles:";
        for (const auto &name : allProfileNames())
            std::cout << " " << name;
        std::cout << "\nmixes: mix1 mix2 (plus comma-separated lists "
                     "and trace:<path>)\n";
        return 0;
    }

    if (cmd == "record") {
        if (argc < 5)
            return usage();
        const auto profile = profileByName(argv[2]);
        const size_t count = parseUint("count", argv[3]);
        const uint64_t seed = argc > 5 ? parseUint("seed", argv[5]) : 1;
        fatal_if(count == 0, "count must be positive");
        SyntheticTraceGenerator gen(profile, seed);
        recordTrace(gen, count, argv[4]);
        std::cout << "wrote " << count << " records of '" << argv[2]
                  << "' (seed " << seed << ") to " << argv[4] << "\n";
        return 0;
    }

    if (cmd == "info") {
        if (argc < 3)
            return usage();
        FileTraceGenerator gen(argv[2]);
        uint64_t instrs = 0;
        uint64_t stores = 0;
        Addr minA = ~0ull;
        Addr maxA = 0;
        const size_t n = gen.size();
        for (size_t i = 0; i < n; ++i) {
            const TraceRecord r = gen.next();
            instrs += r.gap + 1;
            stores += r.isStore;
            minA = std::min(minA, r.addr);
            maxA = std::max(maxA, r.addr);
        }
        Table t;
        t.header({"metric", "value"});
        t.row({"records", std::to_string(n)});
        t.row({"instructions", std::to_string(instrs)});
        t.row({"memory ops / 1k instr",
               Table::num(1000.0 * n / static_cast<double>(instrs), 2)});
        t.row({"store fraction",
               Table::num(static_cast<double>(stores) / n, 3)});
        t.row({"address span (MB)",
               Table::num((maxA - minA) / 1048576.0, 1)});
        t.print(std::cout);
        return 0;
    }

    return usage();
}
