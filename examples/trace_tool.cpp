/**
 * @file
 * Trace utility: export the synthetic workloads to trace files,
 * convert between the text and binary formats, and inspect or verify
 * an existing trace.
 *
 *   ./trace_tool record <profile> <count> <out> [seed] [--binary]
 *   ./trace_tool convert <in> <out>
 *   ./trace_tool inspect <trace-file>
 *   ./trace_tool verify <trace-file>
 *   ./trace_tool list
 *
 * Text is the USIMM-style debug view ("<gap> R|W <hex-addr>");
 * binary is the CRC32C-block format documented in cpu/trace_file.hh
 * and docs/CHECKPOINT.md. convert flips whichever format it is given.
 * verify parses without replaying and reports the first corrupt
 * record/block with its byte offset, exiting nonzero.
 *
 * Recorded traces replay bit-identically through the simulator with
 * `workload = trace:<path>` in either format.
 */

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "cpu/trace_file.hh"
#include "cpu/workload.hh"
#include "util/logging.hh"
#include "util/table.hh"

using namespace memsec;
using namespace memsec::cpu;

namespace {

int
usage()
{
    std::cout << "usage:\n"
                 "  trace_tool record <profile> <count> <out> [seed] "
                 "[--binary]\n"
                 "  trace_tool convert <in> <out>\n"
                 "  trace_tool inspect <trace-file>\n"
                 "  trace_tool verify <trace-file>\n"
                 "  trace_tool list\n";
    return 1;
}

/** Parse a decimal argv token; fatal with context on garbage. */
uint64_t
parseUint(const char *what, const char *text)
{
    char *end = nullptr;
    const uint64_t v = std::strtoull(text, &end, 10);
    fatal_if(end == text || *end != '\0',
             "{} must be a non-negative integer, got '{}'", what, text);
    return v;
}

std::string
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    fatal_if(!in, "cannot open trace file '{}'", path);
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
}

void
writeFile(const std::string &path, const std::string &bytes)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    fatal_if(!out, "cannot open '{}' for writing", path);
    out << bytes;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        return usage();
    const std::string cmd = argv[1];

    if (cmd == "list") {
        std::cout << "profiles:";
        for (const auto &name : allProfileNames())
            std::cout << " " << name;
        std::cout << "\nmixes: mix1 mix2 (plus comma-separated lists "
                     "and trace:<path>)\n";
        return 0;
    }

    if (cmd == "record") {
        if (argc < 5)
            return usage();
        bool binary = false;
        uint64_t seed = 1;
        for (int i = 5; i < argc; ++i) {
            if (std::string(argv[i]) == "--binary")
                binary = true;
            else
                seed = parseUint("seed", argv[i]);
        }
        const auto profile = profileByName(argv[2]);
        const size_t count = parseUint("count", argv[3]);
        fatal_if(count == 0, "count must be positive");
        SyntheticTraceGenerator gen(profile, seed);
        recordTrace(gen, count, argv[4], binary);
        std::cout << "wrote " << count << " records of '" << argv[2]
                  << "' (seed " << seed << ", "
                  << (binary ? "binary" : "text") << ") to " << argv[4]
                  << "\n";
        return 0;
    }

    if (cmd == "convert") {
        if (argc < 4)
            return usage();
        const std::string bytes = readFile(argv[2]);
        const bool fromBinary = isBinaryTrace(bytes);
        std::vector<TraceRecord> records;
        TraceParseError err;
        const bool ok = fromBinary
                            ? tryParseBinaryTrace(bytes, records, err)
                            : tryParseTrace(bytes, records, err);
        fatal_if(!ok, "trace file '{}': {}", argv[2], err.toString());
        writeFile(argv[3], fromBinary ? formatTrace(records)
                                      : formatBinaryTrace(records));
        std::cout << "converted " << records.size() << " records: "
                  << (fromBinary ? "binary -> text" : "text -> binary")
                  << " (" << argv[3] << ")\n";
        return 0;
    }

    if (cmd == "verify") {
        if (argc < 3)
            return usage();
        const std::string bytes = readFile(argv[2]);
        const bool binary = isBinaryTrace(bytes);
        std::vector<TraceRecord> records;
        TraceParseError err;
        const bool ok = binary
                            ? tryParseBinaryTrace(bytes, records, err)
                            : tryParseTrace(bytes, records, err);
        if (!ok) {
            std::cerr << "CORRUPT: " << argv[2] << ": " << err.toString()
                      << "\n";
            return 2;
        }
        std::cout << "OK: " << records.size() << " records ("
                  << (binary ? "binary" : "text") << ", "
                  << bytes.size() << " bytes)\n";
        return 0;
    }

    if (cmd == "inspect" || cmd == "info") {
        if (argc < 3)
            return usage();
        const bool binary = isBinaryTrace(readFile(argv[2]));
        FileTraceGenerator gen(argv[2]);
        uint64_t instrs = 0;
        uint64_t stores = 0;
        Addr minA = ~0ull;
        Addr maxA = 0;
        const size_t n = gen.size();
        for (size_t i = 0; i < n; ++i) {
            const TraceRecord r = gen.next();
            instrs += r.gap + 1;
            stores += r.isStore;
            minA = std::min(minA, r.addr);
            maxA = std::max(maxA, r.addr);
        }
        Table t;
        t.header({"metric", "value"});
        t.row({"format", binary ? "binary (MSTRACE1)" : "text"});
        t.row({"records", std::to_string(n)});
        t.row({"instructions", std::to_string(instrs)});
        t.row({"memory ops / 1k instr",
               Table::num(1000.0 * n / static_cast<double>(instrs), 2)});
        t.row({"store fraction",
               Table::num(static_cast<double>(stores) / n, 3)});
        t.row({"address span (MB)",
               Table::num((maxA - minA) / 1048576.0, 1)});
        t.print(std::cout);
        return 0;
    }

    return usage();
}
