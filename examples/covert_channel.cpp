/**
 * @file
 * Covert-channel demonstration (the attack the paper defends
 * against). A sender VM modulates its memory intensity to transmit a
 * bit string; a receiver VM on the same memory controller measures
 * its own progress per window and decodes the bits from the
 * contention it observes. Under the non-secure baseline the channel
 * works; under Fixed Service the receiver's timing is invariant and
 * the channel capacity collapses to zero.
 *
 * The "sender" is modelled by alternating co-runner intensity per
 * window using two runs (idle vs hog co-runners) and sampling the
 * receiver's per-window progress — the same measurement a real
 * receiver thread would take with rdtsc.
 *
 * This example is the approachable two-run approximation. The real
 * in-run attack — a sender modulating on a secret bitstring inside a
 * single simulation, a latency-probing receiver, shuffle-corrected
 * mutual information and a blind decoder — lives in src/leakage/ and
 * bench/fig_leakage; see docs/LEAKAGE.md.
 */

#include <algorithm>
#include <cmath>
#include <iostream>
#include <string>
#include <vector>

#include "core/noninterference.hh"
#include "harness/experiment.hh"
#include "util/logging.hh"
#include "util/table.hh"

using namespace memsec;

namespace {

/** Receiver progress per fixed instruction window. */
std::vector<uint64_t>
receiverWindows(const std::string &scheme, const std::string &sender)
{
    Config c = harness::defaultConfig();
    c.merge(harness::schemeConfig(scheme));
    std::string wl = "mcf";
    for (int i = 0; i < 7; ++i)
        wl += "," + sender;
    c.set("workload", wl);
    c.set("sim.warmup", 0);
    c.set("sim.measure", 300000);
    c.set("audit.core", 0);
    c.set("audit.progress_interval", 2000);
    const auto prog =
        harness::runExperiment(c).timelines.at(0).progress;
    // Convert cumulative checkpoints into per-window durations.
    std::vector<uint64_t> windows;
    for (size_t i = 1; i < prog.size(); ++i)
        windows.push_back(prog[i] - prog[i - 1]);
    return windows;
}

/** Decode bits: window slower than the idle-calibrated threshold. */
unsigned
decodedBits(const std::vector<uint64_t> &quiet,
            const std::vector<uint64_t> &noisy)
{
    unsigned distinguishable = 0;
    const size_t n = std::min(quiet.size(), noisy.size());
    for (size_t i = 0; i < n; ++i) {
        const double ratio = static_cast<double>(noisy[i]) /
                             static_cast<double>(quiet[i]);
        if (ratio > 1.05 || ratio < 0.95)
            ++distinguishable;
    }
    return distinguishable;
}

/**
 * Capacity estimate: treat each receiver window as one use of a
 * binary symmetric channel whose error rate is the fraction of
 * windows the threshold classifier got wrong, and convert windows
 * per second (at 3.2 GHz) into bits per second:
 *   C = (1 - H(pe)) * windows/s.
 */
double
capacityBitsPerSec(const std::vector<uint64_t> &quiet,
                   const std::vector<uint64_t> &noisy)
{
    const size_t n = std::min(quiet.size(), noisy.size());
    if (n == 0)
        return 0.0;
    // Threshold just above the slowest quiet window: a noisy window
    // below it is a missed '1', a quiet window above it a false '1'.
    uint64_t thr = 0;
    for (size_t i = 0; i < n; ++i)
        thr = std::max(thr, quiet[i]);
    thr += thr / 40; // 2.5% guard band
    double miss = 0;
    double falseAlarm = 0;
    for (size_t i = 0; i < n; ++i) {
        miss += noisy[i] <= thr;
        falseAlarm += quiet[i] > thr;
    }
    double pe = 0.5 * (miss + falseAlarm) / static_cast<double>(n);
    pe = std::min(0.5, pe);
    auto entropy = [](double p) {
        if (p <= 0.0 || p >= 1.0)
            return 0.0;
        return -p * std::log2(p) - (1 - p) * std::log2(1 - p);
    };
    const double perUse = std::max(0.0, 1.0 - entropy(pe));
    double meanWindowCycles = 0.0;
    for (size_t i = 0; i < n; ++i)
        meanWindowCycles +=
            0.5 * static_cast<double>(quiet[i] + noisy[i]);
    meanWindowCycles /= static_cast<double>(n);
    const double windowsPerSec = 3.2e9 / meanWindowCycles;
    return perUse * windowsPerSec;
}

} // namespace

int
main()
{
    setQuiet(true);
    std::cout << "covert channel: sender modulates memory intensity, "
                 "receiver (mcf) times its own windows\n\n";

    Table t;
    t.header({"scheme", "windows", "distinguishable", "channel",
              "est. capacity"});
    for (const char *scheme : {"baseline", "fs_rp", "fs_np_triple"}) {
        std::cerr << "running " << scheme << "...\n";
        const auto quiet = receiverWindows(scheme, "idle");
        const auto noisy = receiverWindows(scheme, "hog");
        const unsigned bits = decodedBits(quiet, noisy);
        const size_t n = std::min(quiet.size(), noisy.size());
        const double cap = capacityBitsPerSec(quiet, noisy);
        t.row({scheme, std::to_string(n), std::to_string(bits),
               bits > n / 2 ? "OPEN (leaks)" : "closed",
               cap >= 1000.0
                   ? Table::num(cap / 1000.0, 1) + " Kbit/s"
                   : Table::num(cap, 1) + " bit/s"});
    }
    t.print(std::cout);
    std::cout << "\n(Hunger et al., cited in Section 2.2, report "
                 ">100 Kbit/s for synchronised senders on real "
                 "hardware; the estimate above is per-window BSC "
                 "capacity at this window size.)\n";

    std::cout
        << "\nunder the baseline the receiver distinguishes sender "
           "intensity per window\n(a working covert channel, cf. Wu "
           "et al. and Hunger et al. cited in the paper);\nunder FS "
           "every window is bit-identical, so the channel is closed."
        << "\n";
    return 0;
}
