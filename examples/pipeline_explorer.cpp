/**
 * @file
 * Interactive pipeline explorer: feed the solver arbitrary DRAM
 * timing parameters and see the FS pipeline it derives — minimum
 * slot spacing per partitioning level, interval lengths, peak
 * utilisation, and an ASCII rendering of the command/data timeline
 * (the paper's Figure 1 for your part).
 *
 *   ./pipeline_explorer                        # paper's DDR3-1600
 *   ./pipeline_explorer --part ddr4            # built-in preset
 *   ./pipeline_explorer --set rcd=14 --set cas=14 ...
 *   ./pipeline_explorer --threads 16
 */

#include <cstring>
#include <iostream>
#include <string>

#include "core/pipeline_solver.hh"
#include "core/slot_schedule.hh"
#include "util/logging.hh"
#include "util/table.hh"

using namespace memsec;
using namespace memsec::core;

namespace {

void
setParam(dram::TimingParams &tp, const std::string &kv)
{
    const auto eq = kv.find('=');
    fatal_if(eq == std::string::npos, "--set expects name=value");
    const std::string key = kv.substr(0, eq);
    const unsigned val =
        static_cast<unsigned>(std::stoul(kv.substr(eq + 1)));
    if (key == "rc") tp.rc = val;
    else if (key == "rcd") tp.rcd = val;
    else if (key == "ras") tp.ras = val;
    else if (key == "rp") tp.rp = val;
    else if (key == "rtp") tp.rtp = val;
    else if (key == "wr") tp.wr = val;
    else if (key == "rrd") tp.rrd = val;
    else if (key == "faw") tp.faw = val;
    else if (key == "cas") tp.cas = val;
    else if (key == "cwd") tp.cwd = val;
    else if (key == "burst") tp.burst = val;
    else if (key == "ccd") tp.ccd = val;
    else if (key == "wtr") tp.wtr = val;
    else if (key == "rtrs") tp.rtrs = val;
    else fatal("unknown timing parameter '{}'", key);
}

void
draw(const PipelineSolution &sol, unsigned threads,
     const dram::TimingParams &tp)
{
    SlotSchedule sched(sol, threads, tp);
    std::cout << "\ntimeline for " << threads
              << " slots (A=ACT, C=COL-RD, W=COL-WR, d=data):\n";
    const Cycle span =
        sched.plan(threads - 1, true).dataEnd + tp.burst;
    for (unsigned s = 0; s < threads; ++s) {
        const bool write = s % 3 == 2; // a representative mix
        const SlotPlan p = sched.plan(s, write);
        std::string line(span, '.');
        line[p.actAt] = 'A';
        line[p.casAt] = write ? 'W' : 'C';
        for (Cycle c = p.dataStart; c < p.dataEnd && c < span; ++c)
            line[c] = 'd';
        std::cout << "T" << s << (write ? " WR " : " RD ") << line
                  << "\n";
    }
}

} // namespace

int
main(int argc, char **argv)
{
    dram::TimingParams tp = dram::TimingParams::ddr3_1600_4gb();
    unsigned threads = 8;
    for (int i = 1; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--part") && i + 1 < argc) {
            const std::string part = argv[++i];
            if (part == "ddr3-1600")
                tp = dram::TimingParams::ddr3_1600_4gb();
            else if (part == "ddr3-2133")
                tp = dram::TimingParams::ddr3_2133();
            else if (part == "ddr4")
                tp = dram::TimingParams::ddr4_2400();
            else
                fatal("unknown part '{}'", part);
        } else if (!std::strcmp(argv[i], "--set") && i + 1 < argc) {
            setParam(tp, argv[++i]);
        } else if (!std::strcmp(argv[i], "--threads") && i + 1 < argc) {
            threads = static_cast<unsigned>(std::stoul(argv[++i]));
        } else {
            std::cout << "usage: pipeline_explorer [--part "
                         "ddr3-1600|ddr3-2133|ddr4] [--set k=v]... "
                         "[--threads N]\n";
            return !std::strcmp(argv[i], "--help") ? 0 : 1;
        }
    }
    tp.validate();

    std::cout << "part: " << tp.toString() << "\n";
    std::cout << "derived: rd2wr=" << tp.rd2wr()
              << " wr2rd=" << tp.wr2rd()
              << " same-bank reuse=" << tp.actToActWrA() << "\n\n";

    PipelineSolver solver(tp);
    Table t;
    t.header({"partitioning", "best reference", "l",
              "Q(" + std::to_string(threads) + ")", "peak util"});
    PipelineSolution rankSol;
    for (PartitionLevel level :
         {PartitionLevel::Rank, PartitionLevel::Bank,
          PartitionLevel::None}) {
        const auto sol = solver.solveBest(level);
        if (level == PartitionLevel::Rank)
            rankSol = sol;
        t.row({partitionLevelName(level),
               sol.feasible ? periodicRefName(sol.ref) : "-",
               sol.feasible ? std::to_string(sol.l) : "none",
               sol.feasible ? std::to_string(sol.intervalQ(threads))
                            : "-",
               sol.feasible
                   ? Table::num(sol.peakUtilisation(tp.burst), 3)
                   : "-"});
    }
    t.print(std::cout);

    const auto re = solver.solveReordered(threads);
    std::cout << "\nreordered bank partitioning: spacing=" << re.spacing
              << " endGap=" << re.endGap << " Q=" << re.q
              << " peak util=" << Table::num(re.peakUtilisation, 3)
              << "\nalternation factor (no partitioning): "
              << solver.alternationFactor() << "\n";

    if (rankSol.feasible)
        draw(rankSol, threads, tp);
    return 0;
}
