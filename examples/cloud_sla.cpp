/**
 * @file
 * Cloud consolidation scenario (Section 5.1's software/SLA story): a
 * hypervisor packs tenant VMs onto one memory system and must answer
 * the operator's question — what request-latency SLA can each tenant
 * class be promised under a secure scheduler, and what does security
 * cost at the tail?
 *
 * Tenants are open-loop: each domain models many independent clients
 * (an MMPP arrival process, cpu/arrival.*) whose offered load does
 * not slow down when the memory system backs up, exactly like
 * front-end requests hitting a consolidated host. The suite sweeps
 *
 *   scheme    x  offered load (traffic.rate, requests / 1000 cycles
 *                 per tenant, swept rising)
 *
 * over a tenant mix declared ONLY by the workload list: consecutive
 * equal tokens form a tenant group (e.g. "mcf,mcf,milc,..." is two
 * premium 'mcf' tenants followed by 'milc' tenants). The report is
 * derived from those groups — no hard-coded per-core indices — and a
 * +inf percentile is an honest "SLA blown": the requested quantile
 * fell beyond the histogram's range.
 *
 * All runs are submitted as one campaign, so `cloud_sla --jobs N`
 * runs them concurrently with byte-identical results to
 * `cloud_sla --serial`; `--shards N` additionally steps each run's
 * memory channels on N threads, also byte-identical (the CI smoke
 * diffs the CSV across shard counts).
 */

#include <cmath>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.hh"
#include "harness/campaign.hh"
#include "harness/experiment.hh"
#include "stats/stats.hh"
#include "util/logging.hh"
#include "util/table.hh"

using namespace memsec;
using memsec::bench::BenchOptions;
using memsec::bench::printTable;

namespace {

/** A maximal run of equal workload tokens: one tenant class. */
struct TenantGroup
{
    std::string name;
    unsigned first = 0; ///< first core index of the run
    unsigned count = 0; ///< cores in the run
};

std::vector<std::string>
splitWorkload(const std::string &wl)
{
    std::vector<std::string> tokens;
    std::istringstream is(wl);
    std::string tok;
    while (std::getline(is, tok, ','))
        tokens.push_back(tok);
    return tokens;
}

/**
 * Derive tenant groups from the workload list itself. The old
 * version indexed r.ipc[1..7] with constants that silently went
 * stale whenever the workload string changed; deriving the groups
 * from the same string the experiment parses cannot drift, and a
 * mismatch against the core count is a configuration error, not a
 * quiet misreport.
 */
std::vector<TenantGroup>
tenantGroups(const std::string &wl, unsigned cores)
{
    const auto tokens = splitWorkload(wl);
    fatal_if(tokens.size() != cores,
             "workload '{}' names {} tenants but the system has {} "
             "cores",
             wl, tokens.size(), cores);
    std::vector<TenantGroup> groups;
    for (unsigned i = 0; i < tokens.size(); ++i) {
        if (groups.empty() || groups.back().name != tokens[i])
            groups.push_back({tokens[i], i, 1});
        else
            ++groups.back().count;
    }
    return groups;
}

std::string
fmtLatency(double v)
{
    return std::isinf(v) ? "blown" : Table::num(v, 1);
}

} // namespace

int
main(int argc, char **argv)
{
    setQuiet(true);
    const BenchOptions opts = BenchOptions::parse(argc, argv);

    // Two premium interactive tenants, then two batch classes.
    const std::string wl = "mcf,mcf,milc,milc,milc,lbm,lbm,lbm";
    constexpr unsigned kCores = 8;
    const std::vector<TenantGroup> groups = tenantGroups(wl, kCores);
    const std::vector<std::string> schemes = {"baseline", "fs_rp",
                                              "tp_bp"};
    const std::vector<double> rates = {4.0, 12.0, 20.0};

    std::cerr << "cloud SLA suite: " << schemes.size()
              << " schemes x " << rates.size()
              << " open-loop intensities over " << groups.size()
              << " tenant classes (--jobs " << opts.jobs
              << ", --shards " << opts.shards << ")\n";

    harness::Campaign campaign;
    std::vector<std::vector<size_t>> idx(schemes.size());
    for (size_t s = 0; s < schemes.size(); ++s) {
        for (double rate : rates) {
            Config c = bench::baseConfig(kCores);
            c.merge(harness::schemeConfig(schemes[s]));
            c.set("workload", wl);
            c.set("dram.channels", 2);
            c.set("sim.shards", opts.shards);
            // Every tenant is open-loop: many clients per domain,
            // bursty (MMPP) arrivals at the swept mean rate.
            c.set("traffic.process", "mmpp");
            c.set("traffic.rate", rate);
            c.set("traffic.clients", 16);
            std::ostringstream name;
            name << schemes[s] << "/rate=" << rate;
            idx[s].push_back(campaign.add(name.str(), std::move(c)));
        }
    }
    const auto &summary = campaign.run(opts.campaignOptions());
    std::cerr << summary.toString() << "\n";

    const Cycle measure = bench::RunScale::fromEnv().measure;
    Table t;
    t.header({"scheme", "rate", "tenant", "p50", "p99", "p99.9",
              "mean", "reads/kcyc"});
    for (size_t s = 0; s < schemes.size(); ++s) {
        for (size_t ri = 0; ri < rates.size(); ++ri) {
            const auto &r = campaign.result(idx[s][ri]);
            fatal_if(r.domainReadLatency.size() != kCores,
                     "expected {} per-domain histograms, got {}",
                     kCores, r.domainReadLatency.size());
            for (const TenantGroup &g : groups) {
                // Pool the class: merge the member domains' read
                // latency histograms (identical layouts by
                // construction).
                Histogram h = r.domainReadLatency[g.first];
                for (unsigned i = 1; i < g.count; ++i)
                    h.merge(r.domainReadLatency[g.first + i]);
                const double perTenant =
                    static_cast<double>(h.totalSamples()) * 1000.0 /
                    static_cast<double>(measure) /
                    static_cast<double>(g.count);
                std::ostringstream tenant;
                tenant << g.name << " x" << g.count;
                t.row({schemes[s], Table::num(rates[ri], 0),
                       tenant.str(), fmtLatency(h.percentile(0.50)),
                       fmtLatency(h.percentile(0.99)),
                       fmtLatency(h.percentile(0.999)),
                       fmtLatency(h.mean()),
                       Table::num(perTenant, 2)});
            }
        }
    }
    printTable("cloud SLA suite: client-observed read latency "
               "(cycles) per tenant class",
               t, opts);
    if (opts.csvOnly)
        return 0;

    std::cout
        << "\nLatency is client-observed (issue to completion, "
           "including queueing behind\nthe tenant's own backlog); "
           "'blown' marks a percentile beyond the histogram\nrange. "
           "The fixed-service schedulers hold each tenant's tail "
           "steady as the\noffered load of the others rises — the "
           "isolation the paper trades peak\nthroughput for — while "
           "the baseline's tails couple all tenants together.\n";
    return 0;
}
