/**
 * @file
 * Cloud consolidation scenario (Section 5.1's software/SLA story):
 * a hypervisor packs security domains with different service-level
 * agreements onto one memory channel. Domain 0 is a premium tenant
 * with a 2-slot SLA; domains 1-3 are standard; domains 4-7 are
 * best-effort batch jobs. The FS controller turns the SLA directly
 * into issue slots, preserving isolation while differentiating
 * bandwidth.
 */

#include <iostream>

#include "harness/experiment.hh"
#include "util/logging.hh"
#include "util/table.hh"

using namespace memsec;

int
main()
{
    setQuiet(true);
    std::cout << "cloud SLA scenario: premium (2 slots) vs standard "
                 "(1 slot) tenants under FS_RP\n\n";

    // Premium tenant runs a latency-sensitive pointer-chaser; the
    // rest run memory-hungry batch work.
    const char *wl = "mcf,milc,milc,milc,lbm,lbm,lbm,lbm";

    Table t;
    t.header({"SLA weights", "mcf IPC", "milc IPC (mean)",
              "lbm IPC (mean)"});
    for (const char *weights :
         {"1,1,1,1,1,1,1,1", "2,1,1,1,1,1,1,1", "3,1,1,1,1,1,1,1"}) {
        std::cerr << "weights " << weights << "...\n";
        Config c = harness::defaultConfig();
        c.merge(harness::schemeConfig("fs_rp"));
        c.set("fs.slot_weights", weights);
        c.set("workload", wl);
        c.set("sim.measure", 100000);
        const auto r = harness::runExperiment(c);
        const double milc =
            (r.ipc[1] + r.ipc[2] + r.ipc[3]) / 3.0;
        const double lbm =
            (r.ipc[4] + r.ipc[5] + r.ipc[6] + r.ipc[7]) / 4.0;
        t.row({weights, Table::num(r.ipc[0], 3), Table::num(milc, 3),
               Table::num(lbm, 3)});
    }
    t.print(std::cout);

    std::cout << "\nthe premium tenant's throughput scales with its "
                 "slot weight; the standard tenants'\nservice is "
                 "unchanged by each other's load (fixed service, "
                 "no interference).\n";
    return 0;
}
