/**
 * @file
 * Cloud consolidation scenario (Section 5.1's software/SLA story):
 * a hypervisor packs security domains with different service-level
 * agreements onto one memory channel. Domain 0 is a premium tenant
 * with a 2-slot SLA; domains 1-3 are standard; domains 4-7 are
 * best-effort batch jobs. The FS controller turns the SLA directly
 * into issue slots, preserving isolation while differentiating
 * bandwidth.
 *
 * The three SLA points are submitted as one campaign, so
 * `cloud_sla --jobs 3` runs them concurrently with bit-identical
 * results to `cloud_sla --serial`.
 */

#include <iostream>

#include "bench_common.hh"
#include "harness/campaign.hh"
#include "harness/experiment.hh"
#include "util/logging.hh"
#include "util/table.hh"

using namespace memsec;
using memsec::bench::BenchOptions;
using memsec::bench::printTable;

int
main(int argc, char **argv)
{
    setQuiet(true);
    const BenchOptions opts = BenchOptions::parse(argc, argv);
    std::cerr << "cloud SLA scenario: premium (2 slots) vs standard "
                 "(1 slot) tenants under FS_RP (--jobs "
              << opts.jobs << ")\n";

    // Premium tenant runs a latency-sensitive pointer-chaser; the
    // rest run memory-hungry batch work.
    const char *wl = "mcf,milc,milc,milc,lbm,lbm,lbm,lbm";
    const std::vector<std::string> weights = {
        "1,1,1,1,1,1,1,1", "2,1,1,1,1,1,1,1", "3,1,1,1,1,1,1,1"};

    harness::Campaign campaign;
    std::vector<size_t> idx;
    for (const auto &w : weights) {
        Config c = harness::defaultConfig();
        c.merge(harness::schemeConfig("fs_rp"));
        c.set("fs.slot_weights", w);
        c.set("workload", wl);
        c.set("sim.measure", 100000);
        idx.push_back(campaign.add("weights " + w, std::move(c)));
    }
    const auto &summary = campaign.run(opts.campaignOptions());
    std::cerr << summary.toString() << "\n";

    Table t;
    t.header({"SLA weights", "mcf IPC", "milc IPC (mean)",
              "lbm IPC (mean)"});
    for (size_t i = 0; i < weights.size(); ++i) {
        const auto &r = campaign.result(idx[i]);
        const double milc = (r.ipc[1] + r.ipc[2] + r.ipc[3]) / 3.0;
        const double lbm =
            (r.ipc[4] + r.ipc[5] + r.ipc[6] + r.ipc[7]) / 4.0;
        t.row({weights[i], Table::num(r.ipc[0], 3),
               Table::num(milc, 3), Table::num(lbm, 3)});
    }
    printTable("cloud SLA scenario: FS_RP slot weights", t, opts);
    if (opts.csvOnly)
        return 0;

    std::cout << "\nthe premium tenant's throughput scales with its "
                 "slot weight; the standard tenants'\nservice is "
                 "unchanged by each other's load (fixed service, "
                 "no interference).\n";
    return 0;
}
