/**
 * @file
 * Quickstart: build a Table-1 system, run the rank-partitioned
 * Fixed-Service controller against the non-secure baseline on one
 * workload, and print the headline metrics.
 *
 *   ./quickstart [workload] [measure-cycles]
 *
 * Workloads: mix1 mix2 CG SP astar lbm libquantum mcf milc zeusmp
 * GemsFDTD xalancbmk, any comma-separated list of profiles, or a
 * config file path via --config <file>.
 */

#include <iostream>
#include <string>

#include "harness/experiment.hh"
#include "util/logging.hh"
#include "util/table.hh"

using namespace memsec;

int
main(int argc, char **argv)
{
    setQuiet(true);
    std::string workload = "mcf";
    uint64_t measure = 120000;
    Config user;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--config" && i + 1 < argc) {
            user = Config::loadFile(argv[++i]);
        } else if (arg == "--help") {
            std::cout << "usage: quickstart [workload] "
                         "[measure-cycles] [--config file]\n";
            return 0;
        } else if (arg.find_first_not_of("0123456789") ==
                   std::string::npos) {
            measure = std::stoull(arg);
        } else {
            workload = arg;
        }
    }

    std::cout << "memsec quickstart: '" << workload << "' on the "
              << "paper's 8-core / 1-channel / 8-rank DDR3-1600 "
                 "system\n\n";

    Table t;
    t.header({"scheme", "IPC sum", "read latency", "bus util",
              "dummy frac", "energy (uJ)"});
    const bool multiChannel = user.getUint("dram.channels", 1) > 1;
    for (const char *scheme : {"baseline", "fs_rp", "tp_bp"}) {
        if (multiChannel && std::string(scheme) == "tp_bp")
            continue; // multi-channel TP is not modelled
        Config cfg = harness::defaultConfig();
        cfg.merge(harness::schemeConfig(scheme));
        cfg.merge(user);
        cfg.set("workload", workload);
        if (!user.has("sim.measure"))
            cfg.set("sim.measure", measure);
        const auto r = harness::runExperiment(cfg);
        double ipc = 0;
        for (double v : r.ipc)
            ipc += v;
        t.row({scheme, Table::num(ipc, 3),
               Table::num(r.meanReadLatency, 1),
               Table::num(r.effectiveBandwidth, 3),
               Table::num(r.dummyFraction, 3),
               Table::num(r.energy.totalNj() / 1000.0, 1)});
    }
    t.print(std::cout);

    std::cout << "\nfs_rp is the paper's best secure design point: "
                 "zero information leakage at a bounded slowdown.\n";
    return 0;
}
