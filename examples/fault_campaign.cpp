/**
 * @file
 * Fault-injection campaign: run every fault kind against the
 * Fixed-Service controller and print which safety net caught it.
 *
 *   ./fault_campaign [seed] [measure-cycles]
 *
 * Each row is one run of the fs_rp scheme with a single fault kind
 * enabled. A healthy repository shows every non-"none" row caught by
 * at least one auditor: the shadow TimingChecker (rule classes), the
 * noninterference audit (slot skew), or the recoverable-error channel
 * (queue overflow). The "none" row is the control: zero injections,
 * zero violations.
 */

#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "core/noninterference.hh"
#include "fault/fault_injector.hh"
#include "harness/campaign.hh"
#include "harness/experiment.hh"
#include "util/logging.hh"
#include "util/serialize.hh"
#include "util/table.hh"

using namespace memsec;

namespace {

/** The kinds that corrupt the checkpoint-load path instead of the
 *  simulation; they need a snapshot on disk to have anything to
 *  damage. */
bool
isDurabilityKind(fault::FaultKind kind)
{
    return kind == fault::FaultKind::SnapshotTruncate ||
           kind == fault::FaultKind::SnapshotBitflip ||
           kind == fault::FaultKind::SnapshotVersion ||
           kind == fault::FaultKind::JournalStale;
}

/**
 * Point cfg's ckpt.dir at a fresh temp directory seeded with a valid
 * mid-run snapshot, so the durability fault has bytes to corrupt and
 * the load-path guard has something to reject.
 */
void
seedSnapshot(Config &cfg)
{
    std::string tmpl = "/tmp/memsec-faultcamp-XXXXXX";
    std::vector<char> buf(tmpl.begin(), tmpl.end());
    buf.push_back('\0');
    fatal_if(mkdtemp(buf.data()) == nullptr, "mkdtemp failed for {}",
             tmpl);
    cfg.set("ckpt.dir", std::string(buf.data()));

    // The durability kinds never attach the injector to the
    // controllers, so this partial run produces a clean snapshot.
    harness::ExperimentSystem sys(cfg);
    sys.step(cfg.getUint("sim.measure") / 3);
    Serializer s;
    sys.saveState(s);
    const std::string fp = harness::Campaign::fingerprint(cfg);
    writeFileAtomic(cfg.getString("ckpt.dir") + "/" + fp + ".snap",
                    encodeSnapshot(fp, s.data()));
}

Config
campaignConfig(const std::string &kind, uint64_t seed, uint64_t measure,
               const std::string &corunner)
{
    // Most kinds perturb a small fraction of events; suppression only
    // bites retention if (nearly) every REF is swallowed.
    const double rate = kind == "refresh-suppress" ? 1.0 : 0.05;
    Config cfg = harness::defaultConfig();
    cfg.merge(harness::schemeConfig("fs_rp"));
    cfg.set("workload", "mcf," + corunner + "," + corunner + "," +
                            corunner + "," + corunner + "," + corunner +
                            "," + corunner + "," + corunner);
    cfg.set("cores", 8);
    cfg.set("sim.warmup", 0);
    cfg.set("sim.measure", measure);
    cfg.set("audit.core", 0);
    cfg.set("audit.progress_interval", 1000);
    cfg.set("fault.kind", kind);
    cfg.set("fault.seed", seed);
    cfg.set("fault.rate", rate);
    // The FS schedule is conservative against most drifted parameters;
    // burst drift is the one it actually runs close to (slot spacing
    // l = 7 vs a 2x burst of 8 on the shared data bus).
    if (kind == "timing-drift")
        cfg.set("fault.param", "burst");
    // Refresh faults need refresh traffic to perturb.
    if (kind == "refresh-suppress" || kind == "refresh-storm")
        cfg.set("dram.refresh", true);
    return cfg;
}

std::string
ruleSummary(const harness::ExperimentResult &r, size_t maxRules)
{
    std::string out;
    size_t n = 0;
    for (const auto &kv : r.violationRules) {
        if (n++ == maxRules) {
            out += "...";
            break;
        }
        if (!out.empty())
            out += " ";
        out += kv.first;
    }
    return out.empty() ? "-" : out;
}

} // namespace

int
main(int argc, char **argv)
{
    setQuiet(true);
    auto parseUint = [](const char *what, const char *text) {
        char *end = nullptr;
        const uint64_t v = std::strtoull(text, &end, 10);
        fatal_if(end == text || *end != '\0',
                 "{} must be a non-negative integer, got '{}'", what,
                 text);
        return v;
    };
    uint64_t seed = 1;
    uint64_t measure = 30000;
    if (argc > 1)
        seed = parseUint("seed", argv[1]);
    if (argc > 2)
        measure = parseUint("measure-cycles", argv[2]);

    std::cout << "memsec fault campaign: fs_rp, seed " << seed << ", "
              << measure << " cycles per run\n\n";

    const fault::FaultKind kinds[] = {
        fault::FaultKind::None,          fault::FaultKind::CmdDrop,
        fault::FaultKind::CmdDelay,      fault::FaultKind::CmdDuplicate,
        fault::FaultKind::CmdRetarget,   fault::FaultKind::CmdSpurious,
        fault::FaultKind::TimingDrift,   fault::FaultKind::RefreshSuppress,
        fault::FaultKind::RefreshStorm,  fault::FaultKind::QueueOverflow,
        fault::FaultKind::SlotSkew,      fault::FaultKind::SnapshotTruncate,
        fault::FaultKind::SnapshotBitflip,
        fault::FaultKind::SnapshotVersion,
        fault::FaultKind::JournalStale,
    };

    Table t;
    t.header({"fault", "injected", "violations", "rule classes",
              "sim errors", "caught by"});
    for (const fault::FaultKind kind : kinds) {
        const std::string name = fault::faultKindName(kind);

        // Quiet/noisy pair so the noninterference audit can weigh in.
        Config cfgQuiet = campaignConfig(name, seed, measure, "idle");
        Config cfgNoisy = campaignConfig(name, seed, measure, "hog");
        if (isDurabilityKind(kind)) {
            seedSnapshot(cfgQuiet);
            seedSnapshot(cfgNoisy);
        }
        const auto quiet = harness::runExperiment(cfgQuiet);
        const auto noisy = harness::runExperiment(cfgNoisy);
        const auto audit = core::compareTimelines(noisy.timelines.at(0),
                                                  quiet.timelines.at(0));

        std::string caught;
        if (noisy.timingViolations > 0)
            caught += "timing-checker ";
        if (!noisy.simErrors.empty())
            caught += "error-channel ";
        if (!audit.identical)
            caught += "noninterference";
        if (caught.empty())
            caught = kind == fault::FaultKind::None ? "(control)"
                                                    : "MISSED";

        t.row({name, std::to_string(noisy.faultsInjected),
               std::to_string(noisy.timingViolations),
               ruleSummary(noisy, 4),
               std::to_string(noisy.simErrors.size()), caught});
    }
    t.print(std::cout);

    std::cout << "\nEvery injected fault kind should be caught by at "
                 "least one auditor; 'none' is the clean control.\n";
    return 0;
}
