/**
 * @file
 * Crash-and-resume demonstration: run a small campaign with an
 * on-disk checkpoint directory, optionally SIGKILL the process partway
 * through, and rerun to completion from the journal and mid-run
 * snapshots.
 *
 *   ./campaign_resume --ckpt-dir DIR [options]
 *
 *   --ckpt-dir DIR             journal/snapshot directory (required
 *                              for resume; omit for a plain run)
 *   --kill-after-runs N        SIGKILL the process before starting
 *                              run N+1 (simulates a crash between runs)
 *   --kill-after-snapshots K   SIGKILL after K mid-run snapshot writes
 *                              (simulates a crash inside a run)
 *   --interval C               snapshot cadence in cycles (default 2000)
 *   --seed S                   base RNG seed (default 1)
 *
 * Every completed run prints a full-precision result digest hash; the
 * final "campaign digest" line hashes all of them in submission
 * order. CI kills a campaign mid-flight, reruns it, and asserts the
 * campaign digest equals an uninterrupted run's — with a nonzero
 * resumed/journalled count, proving the rerun actually skipped work.
 */

#include <csignal>
#include <cstdlib>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "harness/campaign.hh"
#include "harness/experiment.hh"
#include "util/logging.hh"

using namespace memsec;
using namespace memsec::harness;

namespace {

uint64_t
fnv1a64(const std::string &s)
{
    uint64_t h = 0xCBF29CE484222325ull;
    for (unsigned char c : s) {
        h ^= c;
        h *= 0x100000001B3ull;
    }
    return h;
}

std::string
hex16(uint64_t v)
{
    char buf[17];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(v));
    return buf;
}

Config
runConfig(const std::string &scheme, const std::string &workload,
          uint64_t seed, const std::string &ckptDir, uint64_t interval,
          uint64_t killAfterSnapshots)
{
    Config c = defaultConfig();
    c.merge(schemeConfig(scheme));
    c.set("workload", workload);
    c.set("cores", 2);
    c.set("seed", seed);
    c.set("sim.warmup", 500);
    c.set("sim.measure", 8000);
    c.set("audit.core", 0);
    c.set("audit.progress_interval", 1000);
    if (!ckptDir.empty()) {
        c.set("ckpt.dir", ckptDir);
        c.set("ckpt.interval_cycles", interval);
        if (killAfterSnapshots > 0)
            c.set("ckpt.kill_after_snapshots", killAfterSnapshots);
    }
    return c;
}

int
usage()
{
    std::cout << "usage: campaign_resume [--ckpt-dir DIR] "
                 "[--kill-after-runs N]\n"
                 "                       [--kill-after-snapshots K] "
                 "[--interval C] [--seed S]\n";
    return 1;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string ckptDir;
    uint64_t killAfterRuns = 0;
    uint64_t killAfterSnapshots = 0;
    uint64_t interval = 2000;
    uint64_t seed = 1;

    auto parseUint = [](const char *what, const char *text) {
        char *end = nullptr;
        const uint64_t v = std::strtoull(text, &end, 10);
        fatal_if(end == text || *end != '\0',
                 "{} must be a non-negative integer, got '{}'", what,
                 text);
        return v;
    };
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&]() -> const char * {
            fatal_if(i + 1 >= argc, "{} needs a value", arg);
            return argv[++i];
        };
        if (arg == "--ckpt-dir")
            ckptDir = value();
        else if (arg == "--kill-after-runs")
            killAfterRuns = parseUint("--kill-after-runs", value());
        else if (arg == "--kill-after-snapshots")
            killAfterSnapshots =
                parseUint("--kill-after-snapshots", value());
        else if (arg == "--interval")
            interval = parseUint("--interval", value());
        else if (arg == "--seed")
            seed = parseUint("--seed", value());
        else
            return usage();
    }
    setQuiet(true);

    const std::vector<std::pair<std::string, std::string>> points = {
        {"fs_rp", "mcf"},
        {"fs_bp", "milc"},
        {"tp_bp", "mcf"},
        {"baseline", "libquantum"},
        {"fs_reordered_bp", "astar"},
    };

    // The kill-between-runs hook lives in the runner so it fires at a
    // deterministic point: before the (N+1)-th actual execution.
    // Journal hits do not count — a resumed campaign that re-kills
    // after N journal loads would never make progress.
    size_t started = 0;
    Campaign campaign([&](const Config &cfg) {
        if (killAfterRuns > 0 && started >= killAfterRuns) {
            std::cerr << "killing campaign before run " << started + 1
                      << "\n";
            raise(SIGKILL);
        }
        ++started;
        return runExperiment(cfg);
    });

    for (const auto &[scheme, workload] : points) {
        campaign.add(scheme + "/" + workload,
                     runConfig(scheme, workload, seed, ckptDir, interval,
                               killAfterSnapshots));
    }

    CampaignOptions opts;
    opts.progress = true;
    const CampaignSummary &summary = campaign.run(opts);

    uint64_t combined = 0xCBF29CE484222325ull;
    for (size_t i = 0; i < campaign.size(); ++i) {
        const RunOutcome &o = campaign.outcome(i);
        fatal_if(!o.ok, "run '{}' failed: {}", o.label, o.error);
        const std::string digest = resultDigest(o.result);
        const uint64_t h = fnv1a64(digest);
        combined ^= h;
        combined *= 0x100000001B3ull;
        std::cout << "run " << i << " " << o.label << " digest fnv64-"
                  << hex16(h) << " ["
                  << (o.fromJournal ? "journal"
                      : o.result.resumedFromSnapshot ? "resumed"
                                                     : "executed")
                  << "]\n";
    }
    std::cout << "campaign digest fnv64-" << hex16(combined) << "\n";
    std::cout << summary.toString() << "\n";
    return 0;
}
