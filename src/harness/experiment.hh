/**
 * @file
 * Experiment harness: builds a full system (cores + private LLC
 * slices + memory controller + DRAM) from a Config, runs it, and
 * extracts the metrics the paper reports.
 *
 * Schemes are addressed by the names used in Section 6/7:
 *   baseline, baseline_prefetch, fs_rp, fs_rp_prefetch,
 *   fs_reordered_bp, fs_bp, fs_np, fs_np_triple, tp_bp, tp_np
 * plus energy-optimisation variants fs_rp_suppress, fs_rp_boost,
 * fs_rp_powerdown (cumulative, as in Figure 9).
 */

#ifndef MEMSEC_HARNESS_EXPERIMENT_HH
#define MEMSEC_HARNESS_EXPERIMENT_HH

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/noninterference.hh"
#include "energy/power_model.hh"
#include "sim/config.hh"
#include "sim/types.hh"
#include "stats/stats.hh"
#include "util/sim_error.hh"

namespace memsec {
class Serializer;
class Deserializer;
} // namespace memsec

namespace memsec::fault {
class FaultInjector;
} // namespace memsec::fault

namespace memsec::harness {

/** Everything one run produces. */
struct ExperimentResult
{
    std::string scheme;
    std::string workload;
    unsigned cores = 0;
    Cycle cyclesRun = 0;

    std::vector<double> ipc; ///< per core, measured region only
    double meanReadLatency = 0.0; ///< memory cycles
    double effectiveBandwidth = 0.0; ///< real-data bus utilisation
    double dummyFraction = 0.0; ///< dummy bursts / all bursts
    double rowHitRate = 0.0;    ///< baseline/TP only, else 0

    energy::EnergyBreakdown energy; ///< summed over ranks

    uint64_t prefetchIssued = 0;
    uint64_t prefetchUseful = 0;
    uint64_t demandReads = 0;

    /** Captured victim timelines (cores with audit enabled). */
    std::vector<core::VictimTimeline> timelines;

    /**
     * Client-observed read-latency histogram per security domain
     * (memory cycles, measured region only). Open-loop runs account
     * from the arrival stamp so client-side queueing shows up in the
     * p99/p99.9 tails; percentile() returns +inf when the requested
     * mass fell in the overflow bucket (an honest "SLA blown").
     */
    std::vector<Histogram> domainReadLatency;

    // -- fault-injection / failure-path accounting (all zero and
    //    empty when fault.kind is "none", the default) --
    uint64_t faultsInjected = 0;   ///< faults the injector fired
    uint64_t timingViolations = 0; ///< shadow-checker detections
    uint64_t illegalIssues = 0;    ///< illegal issues survived
    /** Violations per TimingChecker rule class ("tFAW", ...). */
    std::map<std::string, uint64_t> violationRules;
    /** Recoverable errors recorded during the run (capped). */
    std::vector<SimError> simErrors;

    // -- kernel accounting (deliberately NOT part of resultDigest():
    //    naive and fast-forward runs differ here by construction
    //    while every simulated observable stays byte-identical) --
    uint64_t cyclesExecuted = 0; ///< cycles the tick loop ran
    uint64_t cyclesSkipped = 0;  ///< cycles skipped by fast-forward
    /** Commands applied via table-driven replay (sim.compiled). */
    uint64_t compiledCommands = 0;
    /** Replay -> interpreted fallbacks (ring exhaustion). */
    uint64_t compiledFallbacks = 0;
    /** True when the run continued from an on-disk checkpoint rather
     *  than starting at cycle 0. Not part of resultDigest(): a
     *  resumed run's observables are byte-identical by contract. */
    bool resumedFromSnapshot = false;
    /** Channel count actually simulated (after the channel-partition
     *  geometry bump). Not part of resultDigest(): a bumped geometry
     *  and the same geometry requested explicitly must digest
     *  identically. */
    unsigned effectiveChannels = 0;
    /** True when the harness widened dram.channels to cover every
     *  domain under channel partitioning (a warn() is emitted). */
    bool geometryOverridden = false;
    /** Channel shards stepped in parallel (sim.shards). Not part of
     *  resultDigest(): sharded and serial runs are byte-identical by
     *  contract (tests/test_shard_diff.cc). */
    unsigned shards = 1;

    /** Sum over cores of ipc[i] / baseIpc[i]. */
    double weightedIpc(const std::vector<double> &baseIpc) const;
};

/** The paper's Table 1 system configuration as a Config. */
Config defaultConfig();

/**
 * Config fragment selecting a named scheme (scheduler + matching
 * partitioning + options). Merge over defaultConfig().
 */
Config schemeConfig(const std::string &scheme);

/** All scheme names schemeConfig() accepts. */
std::vector<std::string> allSchemes();

/** Codec for campaign journal entries (<fp>.done files). */
void serializeResult(Serializer &s, const ExperimentResult &r);
ExperimentResult deserializeResult(Deserializer &d);

/**
 * A fully constructed simulated system (cores + LLC slices + memory
 * controllers + DRAM + fault injector), steppable in chunks so the
 * harness can interleave execution with checkpoint writes.
 *
 * runExperiment() is the convenience wrapper: construct, optionally
 * restore from `ckpt.dir`, step to completion with periodic snapshots,
 * finish(). Long-horizon drivers use the class directly.
 */
class ExperimentSystem
{
  public:
    explicit ExperimentSystem(const Config &cfg);
    ~ExperimentSystem();
    ExperimentSystem(const ExperimentSystem &) = delete;
    ExperimentSystem &operator=(const ExperimentSystem &) = delete;

    /**
     * Advance up to `maxCycles` memory cycles, handling the
     * warmup-to-measurement transition internally. Chunked stepping
     * is observable-identical to one uninterrupted run.
     */
    void step(Cycle maxCycles);

    /** True once warmup + measure cycles have elapsed. */
    bool done() const;

    /** Current simulation time in memory cycles. */
    Cycle now() const;

    /**
     * Finalize schedulers, extract every reported metric, and run the
     * optional stats dump. Call exactly once, after done().
     */
    ExperimentResult finish();

    /**
     * Serialize/restore the complete mutable simulation state: the
     * kernel clock, every component, the fault injector's PRNG, the
     * error report, and the measurement phase flag. A fresh
     * ExperimentSystem built from the identical Config and restored
     * from this stream continues with resultDigest()-byte-identical
     * observables (tests/test_checkpoint_diff.cc).
     */
    void saveState(Serializer &s) const;
    void restoreState(Deserializer &d);

    /** The run's recoverable-error channel. */
    RunReport &report();

    /** The run's fault injector (snapshot corruption hooks). */
    fault::FaultInjector &injector();

  private:
    struct Impl;
    std::unique_ptr<Impl> impl_;
};

/** Build, warm up, run, and summarise one experiment. Honours the
 *  ckpt.* keys (docs/CONFIG.md) for snapshot/resume behaviour. */
ExperimentResult runExperiment(const Config &cfg);

/**
 * Convenience: baseline per-core IPCs for a workload under `base`
 * (used to normalise weighted IPC as in Figures 5/6/7/10).
 */
std::vector<double> baselineIpc(const std::string &workload,
                                const Config &base);

} // namespace memsec::harness

#endif // MEMSEC_HARNESS_EXPERIMENT_HH
