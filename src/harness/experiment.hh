/**
 * @file
 * Experiment harness: builds a full system (cores + private LLC
 * slices + memory controller + DRAM) from a Config, runs it, and
 * extracts the metrics the paper reports.
 *
 * Schemes are addressed by the names used in Section 6/7:
 *   baseline, baseline_prefetch, fs_rp, fs_rp_prefetch,
 *   fs_reordered_bp, fs_bp, fs_np, fs_np_triple, tp_bp, tp_np
 * plus energy-optimisation variants fs_rp_suppress, fs_rp_boost,
 * fs_rp_powerdown (cumulative, as in Figure 9).
 */

#ifndef MEMSEC_HARNESS_EXPERIMENT_HH
#define MEMSEC_HARNESS_EXPERIMENT_HH

#include <map>
#include <string>
#include <vector>

#include "core/noninterference.hh"
#include "energy/power_model.hh"
#include "sim/config.hh"
#include "sim/types.hh"
#include "util/sim_error.hh"

namespace memsec::harness {

/** Everything one run produces. */
struct ExperimentResult
{
    std::string scheme;
    std::string workload;
    unsigned cores = 0;
    Cycle cyclesRun = 0;

    std::vector<double> ipc; ///< per core, measured region only
    double meanReadLatency = 0.0; ///< memory cycles
    double effectiveBandwidth = 0.0; ///< real-data bus utilisation
    double dummyFraction = 0.0; ///< dummy bursts / all bursts
    double rowHitRate = 0.0;    ///< baseline/TP only, else 0

    energy::EnergyBreakdown energy; ///< summed over ranks

    uint64_t prefetchIssued = 0;
    uint64_t prefetchUseful = 0;
    uint64_t demandReads = 0;

    /** Captured victim timelines (cores with audit enabled). */
    std::vector<core::VictimTimeline> timelines;

    // -- fault-injection / failure-path accounting (all zero and
    //    empty when fault.kind is "none", the default) --
    uint64_t faultsInjected = 0;   ///< faults the injector fired
    uint64_t timingViolations = 0; ///< shadow-checker detections
    uint64_t illegalIssues = 0;    ///< illegal issues survived
    /** Violations per TimingChecker rule class ("tFAW", ...). */
    std::map<std::string, uint64_t> violationRules;
    /** Recoverable errors recorded during the run (capped). */
    std::vector<SimError> simErrors;

    // -- kernel accounting (deliberately NOT part of resultDigest():
    //    naive and fast-forward runs differ here by construction
    //    while every simulated observable stays byte-identical) --
    uint64_t cyclesExecuted = 0; ///< cycles the tick loop ran
    uint64_t cyclesSkipped = 0;  ///< cycles skipped by fast-forward

    /** Sum over cores of ipc[i] / baseIpc[i]. */
    double weightedIpc(const std::vector<double> &baseIpc) const;
};

/** The paper's Table 1 system configuration as a Config. */
Config defaultConfig();

/**
 * Config fragment selecting a named scheme (scheduler + matching
 * partitioning + options). Merge over defaultConfig().
 */
Config schemeConfig(const std::string &scheme);

/** All scheme names schemeConfig() accepts. */
std::vector<std::string> allSchemes();

/** Build, warm up, run, and summarise one experiment. */
ExperimentResult runExperiment(const Config &cfg);

/**
 * Convenience: baseline per-core IPCs for a workload under `base`
 * (used to normalise weighted IPC as in Figures 5/6/7/10).
 */
std::vector<double> baselineIpc(const std::string &workload,
                                const Config &base);

} // namespace memsec::harness

#endif // MEMSEC_HARNESS_EXPERIMENT_HH
