#include "harness/experiment.hh"

#include <algorithm>
#include <csignal>
#include <cstdio>
#include <deque>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>

#include "cpu/core_model.hh"
#include "cpu/workload.hh"
#include "fault/fault_injector.hh"
#include "harness/campaign.hh"
#include "leakage/channel.hh"
#include "leakage/secret.hh"
#include "mem/address_map.hh"
#include "mem/memory_controller.hh"
#include "sched/frfcfs.hh"
#include "sched/fs.hh"
#include "sched/fs_reordered.hh"
#include "sched/tp.hh"
#include "sim/compiled_schedule.hh"
#include "sim/simulator.hh"
#include "util/logging.hh"
#include "util/serialize.hh"
#include "util/thread_pool.hh"

namespace memsec::harness {

using mem::AddressMap;
using mem::Interleave;
using mem::MemoryController;
using mem::Partition;

double
ExperimentResult::weightedIpc(const std::vector<double> &baseIpc) const
{
    panic_if(baseIpc.size() != ipc.size(),
             "baseline IPC vector size mismatch");
    double sum = 0.0;
    for (size_t i = 0; i < ipc.size(); ++i)
        sum += baseIpc[i] > 0.0 ? ipc[i] / baseIpc[i] : 0.0;
    return sum;
}

Config
defaultConfig()
{
    Config c;
    c.set("cores", 8);
    c.set("sched", "baseline");
    c.set("workload", "mcf");
    c.set("dram.channels", 1);
    c.set("dram.ranks", 8);
    c.set("dram.banks", 8);
    c.set("dram.rows", 32768);
    c.set("dram.cols", 128);
    c.set("mc.queue_capacity", 16);
    c.set("map.partition", "none");
    c.set("map.interleave", "close");
    c.set("core.rob", 64);
    c.set("core.retire_width", 4);
    c.set("core.cpu_mult", 4);
    c.set("core.llc_kb", 512);
    c.set("core.llc_ways", 8);
    c.set("core.llc_hit_latency", 10);
    c.set("sim.warmup", 20000);
    c.set("sim.measure", 200000);
    c.set("tp.turn", 60);
    c.set("audit.core", -1);
    c.set("audit.progress_interval", 10000);
    c.set("seed", 1);
    // Livelock watchdog window in memory cycles (0 disables). Large
    // enough that any live run — even an idle FS frame between
    // refresh epochs — makes progress well within it.
    c.set("sim.watchdog", 100000);
    // Idle-skip fast forward (byte-identical to the naive loop; see
    // tests/test_fastforward_diff.cc). Off = force the naive loop.
    c.set("sim.fastforward", true);
    // Table-driven schedule replay (docs/PERF.md): off | on | verify.
    // Policies that cannot prove their template decline and keep the
    // interpreted path; "verify" replays with the TimingChecker and
    // completion predictions cross-checked every command.
    c.set("sim.compiled", "off");
    c.set("sim.compiled_ring", 64);
    c.set("sim.compiled_intervals", 4096);
    // Fixed-capacity request pool for scheduler-internal operations
    // (dummies); heap fallback beyond this is a structured SimError,
    // never UB (tests/test_fixed_pool.cc).
    c.set("mc.request_pool", 64);
    // Open-loop arrival process ("none" keeps the closed-loop trace
    // generators). See traffic.* in docs/CONFIG.md for the per-domain
    // rate/burstiness keys layered on top of this switch.
    c.set("traffic.process", "none");
    // Channel shards stepped in parallel on the thread pool. Shards
    // share no mutable state, so any value produces byte-identical
    // digests (tests/test_shard_diff.cc); 1 = serial.
    c.set("sim.shards", 1);
    // Cycles each shard runs between barriers. Purely a scheduling
    // granularity: shards never interact, so the epoch length cannot
    // change observables, only synchronisation overhead.
    c.set("sim.shard_epoch", 8192);
    return c;
}

Config
schemeConfig(const std::string &scheme)
{
    Config c;
    c.set("scheme", scheme);
    auto fsRp = [&] {
        c.set("sched", "fs");
        c.set("fs.mode", "rank");
        c.set("map.partition", "rank");
    };
    if (scheme == "baseline") {
        c.set("sched", "baseline");
        c.set("map.partition", "none");
        c.set("map.interleave", "open");
    } else if (scheme == "baseline_prefetch") {
        c.set("sched", "baseline");
        c.set("map.partition", "none");
        c.set("map.interleave", "open");
        c.set("core.prefetch", true);
    } else if (scheme == "fs_rp") {
        fsRp();
    } else if (scheme == "fs_rp_prefetch") {
        fsRp();
        c.set("core.prefetch", true);
        c.set("fs.prefetch", true);
    } else if (scheme == "fs_rp_suppress") {
        fsRp();
        c.set("fs.suppress", true);
    } else if (scheme == "fs_rp_boost") {
        fsRp();
        c.set("fs.suppress", true);
        c.set("fs.boost", true);
    } else if (scheme == "fs_rp_powerdown") {
        fsRp();
        c.set("fs.suppress", true);
        c.set("fs.boost", true);
        c.set("fs.powerdown", true);
    } else if (scheme == "fs_bp") {
        c.set("sched", "fs");
        c.set("fs.mode", "bank");
        c.set("map.partition", "bank");
    } else if (scheme == "fs_reordered_bp") {
        c.set("sched", "fs_reordered");
        c.set("map.partition", "bank");
    } else if (scheme == "fs_np") {
        c.set("sched", "fs");
        c.set("fs.mode", "none");
        c.set("map.partition", "none");
    } else if (scheme == "fs_np_triple") {
        c.set("sched", "fs");
        c.set("fs.mode", "triple");
        c.set("map.partition", "none");
    } else if (scheme == "tp_bp") {
        c.set("sched", "tp");
        c.set("map.partition", "bank");
        c.set("map.interleave", "open");
        c.set("tp.turn", 60);
    } else if (scheme == "tp_np") {
        c.set("sched", "tp");
        c.set("map.partition", "none");
        c.set("map.interleave", "open");
        c.set("tp.turn", 172);
    } else if (scheme == "channel_part") {
        // Section 4.1: with at most one domain per channel nothing is
        // shared, so the non-secure scheduler is already leak-free.
        c.set("sched", "baseline");
        c.set("map.partition", "channel");
        c.set("map.interleave", "open");
    } else {
        fatal("unknown scheme '{}'", scheme);
    }
    return c;
}

std::vector<std::string>
allSchemes()
{
    return {"baseline",        "baseline_prefetch", "fs_rp",
            "fs_rp_prefetch",  "fs_rp_suppress",    "fs_rp_boost",
            "fs_rp_powerdown", "fs_bp",             "fs_reordered_bp",
            "fs_np",           "fs_np_triple",      "tp_bp",
            "tp_np",           "channel_part"};
}

namespace {

Partition
parsePartition(const std::string &s)
{
    if (s == "none")
        return Partition::None;
    if (s == "channel")
        return Partition::Channel;
    if (s == "rank")
        return Partition::Rank;
    if (s == "bank")
        return Partition::Bank;
    fatal("unknown partition '{}'", s);
}

Interleave
parseInterleave(const std::string &s)
{
    if (s == "open")
        return Interleave::OpenPage;
    if (s == "close")
        return Interleave::ClosePage;
    fatal("unknown interleave '{}'", s);
}

uint64_t
traceSeed(const std::string &profileName, unsigned coreIdx,
          uint64_t baseSeed)
{
    // Seed depends only on the core's own identity so a victim's
    // trace is bit-identical regardless of its co-runners.
    uint64_t h = baseSeed * 0x100000001B3ull;
    for (char ch : profileName)
        h = (h ^ static_cast<uint64_t>(ch)) * 0x100000001B3ull;
    return h ^ (0x9E3779B97F4A7C15ull * (coreIdx + 1));
}

} // namespace

/**
 * Everything one run owns, built in dependency order: the AddressMap
 * must outlive the controllers, the controllers their cores, and the
 * Simulators only hold raw pointers into both.
 *
 * Channel sharding (sim.shards): shard k owns controllers
 * {m : m % shards == k} plus the cores bound to them, each shard in
 * its own Simulator. Shards share no mutable state — a core only
 * talks to its own channel's controller, the AddressMap is immutable,
 * and fault injection/error reporting are per-controller when more
 * than one controller exists — so stepping the shard Simulators in
 * parallel between deterministic epoch barriers is byte-identical to
 * stepping one Simulator serially (tests/test_shard_diff.cc). With
 * shards == 1 everything lands in sims[0] in exactly the historical
 * registration order (cores ascending, then controllers ascending).
 */
struct ExperimentSystem::Impl
{
    Config cfg;
    unsigned cores = 0;
    std::string schedName;
    std::string workload;
    dram::TimingParams tp;
    dram::Geometry geo;
    bool geometryOverridden = false;
    std::unique_ptr<AddressMap> map;
    unsigned numMcs = 0;
    std::vector<std::unique_ptr<MemoryController>> mcs;
    std::unique_ptr<fault::FaultInjector> injector;
    RunReport report;
    /**
     * Per-controller fault plumbing, populated only when numMcs > 1:
     * a shared injector PRNG or error list would make outcomes depend
     * on the order controllers tick, which sharding must not.
     * Single-controller runs keep `injector`/`report` attached
     * directly, bit-identical to the historical wiring.
     */
    std::vector<std::unique_ptr<fault::FaultInjector>> mcInjectors;
    std::deque<RunReport> mcReports;
    int64_t auditCore = -1;
    std::vector<std::unique_ptr<cpu::CoreModel>> coreModels;
    std::vector<std::unique_ptr<Simulator>> sims;
    unsigned shards = 1;
    Cycle shardEpoch = 0;
    std::unique_ptr<ThreadPool> pool; ///< only when shards > 1
    Cycle warmup = 0;
    Cycle measure = 0;
    bool measurementBegun = false;
    bool finished = false;

    Cycle now() const { return sims.front()->now(); }

    /** Advance every shard by `n` cycles. Serial runs call straight
     *  into the single Simulator; sharded runs dispatch one epoch per
     *  shard onto the pool and barrier, so all shards observe the
     *  same sequence of (epoch-aligned) stop points. */
    void run(Cycle n)
    {
        if (sims.size() == 1) {
            sims.front()->run(n);
            return;
        }
        while (n > 0) {
            const Cycle e =
                shardEpoch > 0 ? std::min(n, shardEpoch) : n;
            for (auto &sm : sims) {
                Simulator *sp = sm.get();
                pool->submit([sp, e] { sp->run(e); });
            }
            pool->wait();
            n -= e;
        }
    }
};

ExperimentSystem::ExperimentSystem(const Config &cfg)
    : impl_(std::make_unique<Impl>())
{
    Impl &im = *impl_;
    im.cfg = cfg;
    const unsigned cores =
        static_cast<unsigned>(cfg.getUint("cores", 8));
    const std::string schedName = cfg.getString("sched", "baseline");
    const std::string workload = cfg.getString("workload", "mcf");
    im.cores = cores;
    im.schedName = schedName;
    im.workload = workload;

    dram::TimingParams tp = dram::TimingParams::ddr3_1600_4gb();
    dram::Geometry geo;
    const unsigned requestedChannels =
        static_cast<unsigned>(cfg.getUint("dram.channels", 1));
    geo.channels = requestedChannels;
    // Convenience: channel partitioning needs one channel per domain.
    // Say so out loud — a silently rewritten geometry makes bandwidth
    // and energy figures impossible to interpret — and record the
    // effective value in the result.
    if (cfg.getString("map.partition", "none") == "channel" &&
        geo.channels < cores) {
        geo.channels = cores;
        im.geometryOverridden = true;
        warn("channel partitioning needs one channel per domain: "
             "widening dram.channels {} -> {}",
             requestedChannels, geo.channels);
    }
    geo.ranksPerChannel =
        static_cast<unsigned>(cfg.getUint("dram.ranks", 8));
    geo.banksPerRank = static_cast<unsigned>(cfg.getUint("dram.banks", 8));
    geo.rowsPerBank =
        static_cast<unsigned>(cfg.getUint("dram.rows", 32768));
    geo.colsPerRow = static_cast<unsigned>(cfg.getUint("dram.cols", 128));

    im.tp = tp;
    im.geo = geo;
    im.map = std::make_unique<AddressMap>(
        geo, parsePartition(cfg.getString("map.partition", "none")),
        parseInterleave(cfg.getString("map.interleave", "close")),
        cores);
    AddressMap &map = *im.map;

    MemoryController::Params mcp;
    mcp.timing = tp;
    mcp.geo = geo;
    mcp.numDomains = cores;
    mcp.queueCapacity = cfg.getUint("mc.queue_capacity", 16);
    mcp.requestPoolCapacity = cfg.getUint("mc.request_pool", 64);
    // One controller per channel; all domains' queues exist on each
    // controller, but a core only ever talks to its own channel's.
    const unsigned numMcs = geo.channels;
    fatal_if(numMcs > 1 && map.partition() == Partition::Channel &&
                 schedName != "baseline",
             "channel partitioning runs a per-channel non-secure "
             "scheduler (nothing is shared); got '{}'",
             schedName);
    im.numMcs = numMcs;
    std::vector<std::unique_ptr<MemoryController>> &mcs = im.mcs;
    for (unsigned m = 0; m < numMcs; ++m) {
        mcs.push_back(std::make_unique<MemoryController>(
            "mc" + std::to_string(m), mcp, map));
    }
    // Crash command-log dumps: with a directory configured, parallel
    // campaign workers each write to a distinct fingerprint-tagged,
    // sequence-numbered file instead of racing over stderr.
    const std::string crashDir = cfg.getString("crash.dir", "");
    if (!crashDir.empty()) {
        const std::string tag = Campaign::fingerprint(cfg);
        for (auto &m : mcs)
            m->dram().setCrashDumpDir(crashDir, tag);
    }

    const bool refresh = cfg.getBool("dram.refresh", false);
    if (schedName == "baseline") {
        for (auto &m : mcs) {
            m->setScheduler(std::make_unique<sched::FrFcfsScheduler>(
                *m, cfg.getBool("core.prefetch", false), refresh));
        }
    } else if (schedName == "tp") {
        sched::TpScheduler::Params p;
        p.turnLength = static_cast<unsigned>(cfg.getUint("tp.turn", 60));
        p.extraDead =
            static_cast<unsigned>(cfg.getUint("tp.extra_dead", 0));
        // Each channel runs its own turn wheel over every domain;
        // domains mapped elsewhere simply present empty queues during
        // their turns. Dead turns cost bandwidth, never isolation.
        for (auto &m : mcs)
            m->setScheduler(std::make_unique<sched::TpScheduler>(*m, p));
    } else if (schedName == "fs") {
        sched::FsScheduler::Params p;
        const std::string mode = cfg.getString("fs.mode", "rank");
        if (mode == "rank")
            p.mode = sched::FsMode::RankPart;
        else if (mode == "bank")
            p.mode = sched::FsMode::BankPart;
        else if (mode == "none")
            p.mode = sched::FsMode::NoPart;
        else if (mode == "triple")
            p.mode = sched::FsMode::TripleAlt;
        else
            fatal("unknown fs.mode '{}'", mode);
        p.prefetchInDummies = cfg.getBool("fs.prefetch", false);
        p.suppressDummies = cfg.getBool("fs.suppress", false);
        p.rowBufferBoost = cfg.getBool("fs.boost", false);
        p.powerDown = cfg.getBool("fs.powerdown", false);
        p.refresh = refresh;
        p.rngSeed = cfg.getUint("seed", 1);
        // Pin the periodic reference (fs.ref = data|ras|cas) instead
        // of the per-partition smallest-l winner, so configs can
        // reach all five paper (reference, partition) design points.
        const std::string ref = cfg.getString("fs.ref", "");
        if (!ref.empty()) {
            p.pinRef = true;
            if (ref == "data")
                p.ref = core::PeriodicRef::Data;
            else if (ref == "ras")
                p.ref = core::PeriodicRef::Ras;
            else if (ref == "cas")
                p.ref = core::PeriodicRef::Cas;
            else
                fatal("unknown fs.ref '{}'", ref);
        }
        // SLA issue-slot weights: "2,1,1,..." (one entry per domain).
        const std::string weights = cfg.getString("fs.slot_weights", "");
        if (!weights.empty()) {
            std::istringstream ws(weights);
            std::string tok;
            while (std::getline(ws, tok, ','))
                p.slotWeights.push_back(
                    static_cast<unsigned>(std::stoul(tok)));
        }
        for (unsigned m = 0; m < numMcs; ++m) {
            sched::FsScheduler::Params pm = p;
            if (numMcs > 1 && pm.slotWeights.empty()) {
                pm.slotWeights.assign(cores, 0);
                for (DomainId d = 0; d < cores; ++d) {
                    if (map.channelOf(d) == m)
                        pm.slotWeights[d] = 1;
                }
            }
            mcs[m]->setScheduler(
                std::make_unique<sched::FsScheduler>(*mcs[m], pm));
        }
    } else if (schedName == "fs_reordered") {
        sched::FsReorderedScheduler::Params p;
        p.rngSeed = cfg.getUint("seed", 1);
        for (auto &m : mcs) {
            m->setScheduler(
                std::make_unique<sched::FsReorderedScheduler>(*m, p));
        }
    } else {
        fatal("unknown scheduler '{}'", schedName);
    }

    // Fault injection (fault.kind != "none"): attach the injector and
    // the recoverable-error channel to every controller. Everything
    // stays strict when disabled, so default runs are bit-identical
    // to a build without this block. Snapshot-durability kinds only
    // perturb the checkpoint-load path, never the simulation itself.
    const fault::FaultSpec faultSpec = fault::FaultSpec::fromConfig(cfg);
    im.injector = std::make_unique<fault::FaultInjector>(faultSpec);
    fault::FaultInjector &injector = *im.injector;
    RunReport &report = im.report;
    const bool durabilityFault =
        faultSpec.kind == fault::FaultKind::SnapshotTruncate ||
        faultSpec.kind == fault::FaultKind::SnapshotBitflip ||
        faultSpec.kind == fault::FaultKind::SnapshotVersion ||
        faultSpec.kind == fault::FaultKind::JournalStale;
    if (injector.enabled() && !durabilityFault) {
        if (numMcs == 1) {
            mcs.front()->attachFaultInjector(&injector);
            mcs.front()->setReport(&report);
            if (faultSpec.kind == fault::FaultKind::RefreshSuppress)
                mcs.front()->dram().checker().expectRefresh(tp.refi);
        } else {
            // One injector PRNG and one error list per controller:
            // with a shared stream, which controller draws next would
            // depend on tick interleaving, and channel shards must be
            // free to tick in any order. Controller 0 keeps the
            // configured seed; the others get a fixed per-channel mix
            // so every stream is still reproducible from fault.seed.
            for (unsigned m = 0; m < numMcs; ++m) {
                fault::FaultSpec sm = faultSpec;
                if (m > 0)
                    sm.seed ^= 0x9E3779B97F4A7C15ull * m;
                im.mcInjectors.push_back(
                    std::make_unique<fault::FaultInjector>(sm));
                im.mcReports.emplace_back();
                mcs[m]->attachFaultInjector(im.mcInjectors.back().get());
                mcs[m]->setReport(&im.mcReports.back());
                if (faultSpec.kind == fault::FaultKind::RefreshSuppress)
                    mcs[m]->dram().checker().expectRefresh(tp.refi);
            }
        }
    }

    // Compiled-schedule replay (sim.compiled, docs/PERF.md): decided
    // last so the offer sees the final scheduler/injector wiring.
    // Simulation-perturbing injection always keeps the interpreted
    // path (the schedulers decline independently as well); snapshot-
    // durability kinds never touch the simulation and may replay.
    const CompiledMode compiledMode =
        parseCompiledMode(cfg.getString("sim.compiled", "off"));
    if (compiledMode != CompiledMode::Off &&
        (!injector.enabled() || durabilityFault)) {
        sched::CompiledReplayOptions copts;
        copts.mode = compiledMode;
        copts.ringCapacity = cfg.getUint("sim.compiled_ring", 64);
        const size_t intervalCap =
            cfg.getUint("sim.compiled_intervals", 4096);
        for (auto &m : mcs) {
            if (m->scheduler().enableCompiledReplay(copts))
                m->dram().setCompiledMode(compiledMode, intervalCap);
        }
    }

    auto profiles = cpu::workloadMix(workload, cores);
    // Covert-channel senders: apply the leak.* protocol parameters to
    // every "modsender" profile so the sender and the analysis side
    // (leakage::ChannelParams::fromConfig on this same config) cannot
    // disagree about window length, seed, or duty factors.
    const leakage::ChannelParams leak =
        leakage::ChannelParams::fromConfig(cfg);
    // The symbol frame (leak.code.*: pilot preamble + coded payload)
    // is encoded once here and shared by every sender, exactly the
    // frame the analyzer reconstructs from the same config.
    const leakage::SymbolFrame leakFrame = leakage::encodeFrame(
        leakage::secretBits(leak.secretSeed, leak.secretBits),
        leak.code);
    for (auto &p : profiles) {
        if (p.name != "modsender")
            continue;
        p.modWindowCycles = leak.windowCycles;
        p.modSecretSeed = leak.secretSeed;
        p.modSecretBits = static_cast<unsigned>(leak.secretBits);
        p.modOffFactor = leak.offFactor;
        p.modSymbols = leakFrame.symbols;
    }
    // Open-loop cloud traffic (traffic.*): switch a domain's timing
    // from the closed-loop synthetic generator to an arrival process
    // (Poisson or MMPP, optional diurnal envelope). Global keys set
    // the default; traffic.d<i>.* overrides one domain, so a victim
    // can stay closed-loop while its co-runners model many clients.
    // The profile keeps supplying the address behaviour either way.
    {
        const std::string globalProc =
            cfg.getString("traffic.process", "none");
        for (unsigned i = 0; i < cores; ++i) {
            cpu::WorkloadProfile &p = profiles[i];
            const std::string pre =
                "traffic.d" + std::to_string(i) + ".";
            const std::string proc =
                cfg.getString(pre + "process", globalProc);
            if (proc.empty() || proc == "none")
                continue;
            auto dbl = [&](const char *key, double dflt) {
                return cfg.getDouble(
                    pre + key,
                    cfg.getDouble(std::string("traffic.") + key, dflt));
            };
            auto uns = [&](const char *key, unsigned dflt) {
                return static_cast<unsigned>(cfg.getUint(
                    pre + key,
                    cfg.getUint(std::string("traffic.") + key, dflt)));
            };
            p.trafficProcess = proc;
            p.trafficRate = dbl("rate", p.trafficRate);
            p.trafficClients = uns("clients", p.trafficClients);
            p.trafficBurstFactor =
                dbl("burst_factor", p.trafficBurstFactor);
            p.trafficIdleFactor =
                dbl("idle_factor", p.trafficIdleFactor);
            p.trafficBurstLen = dbl("burst_len", p.trafficBurstLen);
            p.trafficIdleLen = dbl("idle_len", p.trafficIdleLen);
            p.trafficDiurnalPeriod =
                dbl("diurnal_period", p.trafficDiurnalPeriod);
            p.trafficDiurnalAmp =
                dbl("diurnal_amp", p.trafficDiurnalAmp);
            p.storeFraction = dbl("store_fraction", p.storeFraction);
            p.mshrs = uns("mshrs", p.mshrs);
        }
    }
    const int64_t auditCore = cfg.getInt("audit.core", -1);
    im.auditCore = auditCore;

    std::vector<std::unique_ptr<cpu::CoreModel>> &coreModels =
        im.coreModels;
    for (unsigned i = 0; i < cores; ++i) {
        cpu::CoreModel::Params cp;
        cp.robSize = static_cast<unsigned>(cfg.getUint("core.rob", 64));
        cp.retireWidth =
            static_cast<unsigned>(cfg.getUint("core.retire_width", 4));
        cp.cpuMult =
            static_cast<unsigned>(cfg.getUint("core.cpu_mult", 4));
        cp.llcHitLatency = static_cast<unsigned>(
            cfg.getUint("core.llc_hit_latency", 10));
        cp.llcBytes = cfg.getUint("core.llc_kb", 512) * 1024;
        cp.llcWays =
            static_cast<unsigned>(cfg.getUint("core.llc_ways", 8));
        cp.prefetchEnabled = cfg.getBool("core.prefetch", false);
        // Functional warmup must cover the footprint despite the
        // profile's temporal-reuse fraction diluting unique touches.
        // Open-loop domains default to none: pulling records outside
        // simulated time would consume scheduled arrivals, and a cold
        // cache is the right model for a cloud tenant anyway.
        const bool openLoop =
            !profiles[i].trafficProcess.empty() &&
            profiles[i].trafficProcess != "none";
        const double freshFrac =
            std::max(0.05, 1.0 - profiles[i].reuseFraction);
        const auto warmDefault =
            openLoop ? uint64_t{0}
                     : static_cast<uint64_t>(
                           std::min(400000.0,
                                    6.0 * static_cast<double>(
                                              profiles[i]
                                                  .footprintLines) /
                                        freshFrac));
        cp.functionalWarmupRecords =
            cfg.getUint("core.functional_warmup", warmDefault);
        if (auditCore >= 0 && static_cast<unsigned>(auditCore) == i) {
            cp.captureTimeline = true;
            cp.progressInterval =
                cfg.getUint("audit.progress_interval", 10000);
        }
        MemoryController &myMc =
            *mcs[numMcs > 1 ? map.channelOf(i) % numMcs : 0];
        coreModels.push_back(std::make_unique<cpu::CoreModel>(
            "core" + std::to_string(i), i, cp, profiles[i],
            traceSeed(profiles[i].name, i, cfg.getUint("seed", 1)),
            myMc));
    }

    // Channel sharding: one Simulator per shard, shard k owning
    // controllers {m : m % shards == k} and the cores bound to them.
    // Components keep the historical registration order (cores
    // ascending, then controllers ascending) within each shard, so
    // shards == 1 reproduces the single-simulator run byte for byte.
    unsigned shards =
        static_cast<unsigned>(cfg.getUint("sim.shards", 1));
    if (shards < 1)
        shards = 1;
    if (shards > numMcs) {
        warn("sim.shards {} exceeds channel count {}; clamping",
             shards, numMcs);
        shards = numMcs;
    }
    im.shards = shards;
    im.shardEpoch = cfg.getUint("sim.shard_epoch", 8192);
    const bool fastForward = cfg.getBool("sim.fastforward", true);
    for (unsigned k = 0; k < shards; ++k) {
        im.sims.push_back(std::make_unique<Simulator>());
        im.sims.back()->setFastForward(fastForward);
    }
    if (shards > 1)
        im.pool = std::make_unique<ThreadPool>(shards);
    auto mcOfCore = [&](unsigned i) {
        return numMcs > 1 ? map.channelOf(i) % numMcs : 0u;
    };
    for (unsigned i = 0; i < cores; ++i)
        im.sims[mcOfCore(i) % shards]->add(coreModels[i].get());
    for (unsigned m = 0; m < numMcs; ++m)
        im.sims[m % shards]->add(mcs[m].get());

    const Cycle watchdog = cfg.getUint("sim.watchdog", 100000);
    if (watchdog > 0) {
        // Progress = instructions retired + DRAM commands issued; if
        // neither moves for a whole window the run is livelocked.
        // Each shard watches only its own components (a stalled shard
        // must not be masked by progress elsewhere); the captured
        // pointers are owned by the Impl, whose address is stable for
        // the system's lifetime. restoreState() overwrites the
        // watchdogs' last-progress books after this arms.
        for (unsigned k = 0; k < shards; ++k) {
            std::vector<const cpu::CoreModel *> wCores;
            std::vector<const MemoryController *> wMcs;
            for (unsigned i = 0; i < cores; ++i) {
                if (mcOfCore(i) % shards == k)
                    wCores.push_back(coreModels[i].get());
            }
            for (unsigned m = 0; m < numMcs; ++m) {
                if (m % shards == k)
                    wMcs.push_back(mcs[m].get());
            }
            im.sims[k]->setWatchdog(
                watchdog, [wCores, wMcs] {
                    uint64_t v = 0;
                    for (const auto *c : wCores)
                        v += c->retired();
                    for (const auto *m : wMcs)
                        v += m->dram().commandsIssued();
                    return v;
                });
        }
    }

    im.warmup = cfg.getUint("sim.warmup", 20000);
    im.measure = cfg.getUint("sim.measure", 200000);
}

ExperimentSystem::~ExperimentSystem() = default;

void
ExperimentSystem::step(Cycle maxCycles)
{
    Impl &im = *impl_;
    while (maxCycles > 0 && !done()) {
        if (!im.measurementBegun) {
            const Cycle left = im.warmup - im.now();
            const Cycle n = std::min(maxCycles, left);
            im.run(n);
            maxCycles -= n;
            if (im.now() >= im.warmup) {
                for (auto &c : im.coreModels)
                    c->beginMeasurement();
                for (auto &m : im.mcs)
                    m->beginMeasurement();
                im.measurementBegun = true;
            }
        } else {
            const Cycle end = im.warmup + im.measure;
            const Cycle n = std::min(maxCycles, end - im.now());
            im.run(n);
            maxCycles -= n;
        }
    }
}

bool
ExperimentSystem::done() const
{
    const Impl &im = *impl_;
    return im.measurementBegun &&
           im.now() >= im.warmup + im.measure;
}

Cycle
ExperimentSystem::now() const
{
    return impl_->now();
}

RunReport &
ExperimentSystem::report()
{
    return impl_->report;
}

fault::FaultInjector &
ExperimentSystem::injector()
{
    return *impl_->injector;
}

void
ExperimentSystem::saveState(Serializer &s) const
{
    const Impl &im = *impl_;
    s.section("experiment");
    s.putBool(im.measurementBegun);
    im.injector->saveState(s);
    im.report.saveState(s);
    // Per-controller fault plumbing and shard count are functions of
    // the Config, and snapshots are fingerprint-bound to the Config,
    // so the element counts need no encoding.
    for (const auto &inj : im.mcInjectors)
        inj->saveState(s);
    for (const auto &rep : im.mcReports)
        rep.saveState(s);
    for (const auto &sm : im.sims)
        sm->saveState(s);
}

void
ExperimentSystem::restoreState(Deserializer &d)
{
    Impl &im = *impl_;
    d.section("experiment");
    im.measurementBegun = d.getBool();
    im.injector->restoreState(d);
    im.report.restoreState(d);
    for (auto &inj : im.mcInjectors)
        inj->restoreState(d);
    for (auto &rep : im.mcReports)
        rep.restoreState(d);
    for (auto &sm : im.sims)
        sm->restoreState(d);
    if (!d.atEnd())
        d.fail("trailing bytes after experiment state");
}

ExperimentResult
ExperimentSystem::finish()
{
    Impl &im = *impl_;
    panic_if(im.finished, "ExperimentSystem::finish() called twice");
    im.finished = true;
    const Config &cfg = im.cfg;
    auto &coreModels = im.coreModels;
    auto &mcs = im.mcs;
    const unsigned numMcs = im.numMcs;
    const int64_t auditCore = im.auditCore;
    fault::FaultInjector &injector = *im.injector;
    RunReport &report = im.report;
    const Cycle now = im.now();

    for (auto &m : mcs)
        m->scheduler().finalize(now);

    ExperimentResult res;
    res.scheme = cfg.getString("scheme", im.schedName);
    res.workload = im.workload;
    res.cores = im.cores;
    res.cyclesRun = now;
    res.effectiveChannels = im.geo.channels;
    res.geometryOverridden = im.geometryOverridden;
    res.shards = im.shards;
    for (const auto &sm : im.sims) {
        res.cyclesExecuted += sm->cyclesExecuted();
        res.cyclesSkipped += sm->cyclesSkipped();
    }
    for (auto &m : mcs) {
        res.compiledCommands += m->scheduler().compiledCommands();
        res.compiledFallbacks += m->scheduler().compiledFallbacks();
    }
    for (auto &c : coreModels) {
        res.ipc.push_back(c->ipc());
        res.prefetchIssued += c->prefetchIssued();
        res.prefetchUseful += c->prefetchUseful();
        if (auditCore >= 0)
            res.timelines.push_back(c->timeline());
    }
    {
        double latSum = 0.0;
        double latN = 0.0;
        double bw = 0.0;
        double real = 0.0;
        double dummy = 0.0;
        for (auto &m : mcs) {
            const auto &st = m->stats();
            latSum += st.readLatency.mean() *
                      static_cast<double>(st.readLatency.count());
            latN += static_cast<double>(st.readLatency.count());
            bw += m->effectiveBandwidth(now);
            real += static_cast<double>(st.realBursts.value());
            dummy += static_cast<double>(st.dummyBursts.value());
            res.demandReads += st.demandReads.value();
        }
        res.meanReadLatency = latN > 0 ? latSum / latN : 0.0;
        res.effectiveBandwidth = bw / static_cast<double>(numMcs);
        res.dummyFraction =
            real + dummy > 0 ? dummy / (real + dummy) : 0.0;
    }

    // Client-observed per-domain latency, merged across controllers
    // (a domain's requests all land on one channel under channel
    // partitioning, but interleaved maps spread them).
    res.domainReadLatency.resize(im.cores);
    for (auto &h : res.domainReadLatency)
        h.init(0.0, 16.0, 1024);
    for (auto &m : mcs) {
        const auto &per = m->stats().domainReadLatency;
        for (unsigned dIdx = 0;
             dIdx < im.cores && dIdx < per.size(); ++dIdx)
            res.domainReadLatency[dIdx].merge(per[dIdx]);
    }

    res.faultsInjected = injector.injected();
    for (const auto &inj : im.mcInjectors)
        res.faultsInjected += inj->injected();
    for (auto &m : mcs) {
        res.timingViolations += m->dram().checker().violationCount();
        res.illegalIssues += m->dram().illegalIssues();
        for (const auto &kv : m->dram().checker().violationsByRule())
            res.violationRules[kv.first] += kv.second;
    }
    res.simErrors = report.errors();
    if (!im.mcReports.empty()) {
        // Interleave the per-controller error lists back into one
        // global timeline. stable_sort keeps each controller's own
        // arrival order for equal cycles, so the merge is a pure
        // function of the recorded errors — identical however the
        // shards were scheduled.
        for (const auto &rep : im.mcReports) {
            res.simErrors.insert(res.simErrors.end(),
                                 rep.errors().begin(),
                                 rep.errors().end());
        }
        std::stable_sort(res.simErrors.begin(), res.simErrors.end(),
                         [](const SimError &a, const SimError &b) {
                             return a.cycle < b.cycle;
                         });
    }

    {
        uint64_t hits = 0;
        uint64_t casTotal = 0;
        for (auto &m : mcs) {
            if (auto *fr = dynamic_cast<sched::FrFcfsScheduler *>(
                    &m->scheduler())) {
                const auto &e = fr->engine();
                hits += e.rowHits();
                casTotal += e.rowHits() + e.rowMisses();
            }
        }
        res.rowHitRate = casTotal > 0
                             ? static_cast<double>(hits) /
                                   static_cast<double>(casTotal)
                             : 0.0;
    }

    energy::PowerModel pm(energy::DeviceParams::ddr3_1600_4gb(), im.tp);
    for (auto &m : mcs) {
        for (unsigned r = 0; r < m->dram().numRanks(); ++r)
            res.energy += pm.rankEnergy(m->dram().rank(r).energy());
    }

    // Optional full statistics dump ("stats.dump" = file path, or
    // "-" for stdout): every controller, scheduler, and core stat.
    const std::string dump = cfg.getString("stats.dump", "");
    if (!dump.empty()) {
        StatGroup all("experiment");
        std::deque<StatGroup> groups;
        for (size_t m = 0; m < mcs.size(); ++m) {
            groups.emplace_back("mc");
            mcs[m]->registerStats(groups.back());
            all.adopt("mc" + std::to_string(m), groups.back());
            groups.emplace_back("sched");
            mcs[m]->scheduler().registerStats(groups.back());
            all.adopt("mc" + std::to_string(m) + ".sched",
                      groups.back());
        }
        for (size_t i = 0; i < coreModels.size(); ++i) {
            groups.emplace_back("core");
            coreModels[i]->registerStats(groups.back());
            all.adopt("core" + std::to_string(i), groups.back());
        }
        if (dump == "-") {
            all.dump(std::cout);
        } else {
            std::ofstream out(dump);
            fatal_if(!out, "cannot open stats dump file '{}'", dump);
            all.dump(out);
        }
    }

    return res;
}

ExperimentResult
runExperiment(const Config &cfg)
{
    ExperimentSystem sys(cfg);

    // Checkpoint/resume (docs/CHECKPOINT.md). ckpt.dir names the
    // snapshot directory; a valid <fingerprint>.snap continues the
    // run mid-flight, any rejected snapshot is reported as a
    // structured SimError and the run restarts from cycle 0 — never
    // a silent wrong digest.
    const std::string ckptDir = cfg.getString("ckpt.dir", "");
    std::string snapPath;
    std::string fp;
    bool resumed = false;
    if (!ckptDir.empty()) {
        ensureDirectory(ckptDir);
        fp = Campaign::fingerprint(cfg);
        snapPath = ckptDir + "/" + fp + ".snap";
        std::string bytes;
        if (readFileBytes(snapPath, bytes)) {
            sys.injector().corruptSnapshotBytes(bytes);
            try {
                const std::string payload = decodeSnapshot(bytes, fp);
                Deserializer d(payload);
                sys.restoreState(d);
                resumed = true;
            } catch (const SerializeError &e) {
                warn("snapshot {} rejected ({}); restarting run from "
                     "cycle 0",
                     snapPath, e.toString());
                sys.report().record(SimError{
                    sys.now(), e.category,
                    "snapshot rejected: " + e.message});
            }
        }
    }

    const Cycle interval = cfg.getUint("ckpt.interval_cycles", 0);
    // Test/CI hook: SIGKILL the process after K successful snapshot
    // writes, simulating a mid-campaign crash at a torn moment.
    const uint64_t killAfter =
        cfg.getUint("ckpt.kill_after_snapshots", 0);
    if (snapPath.empty() || interval == 0) {
        while (!sys.done())
            sys.step(kNoCycle);
    } else {
        uint64_t written = 0;
        while (!sys.done()) {
            sys.step(interval);
            if (sys.done())
                break;
            Serializer s;
            sys.saveState(s);
            writeFileAtomic(snapPath, encodeSnapshot(fp, s.data()));
            ++written;
            if (killAfter > 0 && written >= killAfter)
                raise(SIGKILL);
        }
    }

    ExperimentResult res = sys.finish();
    res.resumedFromSnapshot = resumed;
    if (!snapPath.empty())
        std::remove(snapPath.c_str());
    return res;
}

void
serializeResult(Serializer &s, const ExperimentResult &r)
{
    s.section("result");
    s.putString(r.scheme);
    s.putString(r.workload);
    s.putU32(r.cores);
    s.putU64(r.cyclesRun);
    s.putU64(r.ipc.size());
    for (double v : r.ipc)
        s.putDouble(v);
    s.putDouble(r.meanReadLatency);
    s.putDouble(r.effectiveBandwidth);
    s.putDouble(r.dummyFraction);
    s.putDouble(r.rowHitRate);
    s.putDouble(r.energy.backgroundNj);
    s.putDouble(r.energy.activateNj);
    s.putDouble(r.energy.readWriteNj);
    s.putDouble(r.energy.refreshNj);
    s.putU64(r.prefetchIssued);
    s.putU64(r.prefetchUseful);
    s.putU64(r.demandReads);
    s.putU64(r.timelines.size());
    for (const auto &tl : r.timelines) {
        s.putU64(tl.service.size());
        for (const auto &ev : tl.service) {
            s.putU64(ev.ordinal);
            s.putU64(ev.arrival);
            s.putU64(ev.completed);
        }
        s.putU64(tl.progress.size());
        for (uint64_t p : tl.progress)
            s.putU64(p);
    }
    s.putU64(r.faultsInjected);
    s.putU64(r.timingViolations);
    s.putU64(r.illegalIssues);
    s.putU64(r.violationRules.size());
    for (const auto &kv : r.violationRules) {
        s.putString(kv.first);
        s.putU64(kv.second);
    }
    s.putU64(r.simErrors.size());
    for (const auto &e : r.simErrors) {
        s.putU64(e.cycle);
        s.putString(e.category);
        s.putString(e.message);
    }
    s.putU64(r.cyclesExecuted);
    s.putU64(r.cyclesSkipped);
    s.putU64(r.compiledCommands);
    s.putU64(r.compiledFallbacks);
    s.putBool(r.resumedFromSnapshot);
    s.putU32(r.effectiveChannels);
    s.putBool(r.geometryOverridden);
    s.putU32(r.shards);
    s.putU64(r.domainReadLatency.size());
    for (const auto &h : r.domainReadLatency) {
        s.putDouble(h.lo());
        s.putDouble(h.binWidth());
        s.putU64(h.bins().size());
        h.saveState(s);
    }
}

ExperimentResult
deserializeResult(Deserializer &d)
{
    d.section("result");
    ExperimentResult r;
    r.scheme = d.getString();
    r.workload = d.getString();
    r.cores = d.getU32();
    r.cyclesRun = d.getU64();
    const uint64_t nIpc = d.getU64();
    for (uint64_t i = 0; i < nIpc; ++i)
        r.ipc.push_back(d.getDouble());
    r.meanReadLatency = d.getDouble();
    r.effectiveBandwidth = d.getDouble();
    r.dummyFraction = d.getDouble();
    r.rowHitRate = d.getDouble();
    r.energy.backgroundNj = d.getDouble();
    r.energy.activateNj = d.getDouble();
    r.energy.readWriteNj = d.getDouble();
    r.energy.refreshNj = d.getDouble();
    r.prefetchIssued = d.getU64();
    r.prefetchUseful = d.getU64();
    r.demandReads = d.getU64();
    const uint64_t nTl = d.getU64();
    for (uint64_t t = 0; t < nTl; ++t) {
        core::VictimTimeline tl;
        const uint64_t nEv = d.getU64();
        for (uint64_t i = 0; i < nEv; ++i) {
            core::ServiceEvent ev;
            ev.ordinal = d.getU64();
            ev.arrival = d.getU64();
            ev.completed = d.getU64();
            tl.service.push_back(ev);
        }
        const uint64_t nPr = d.getU64();
        for (uint64_t i = 0; i < nPr; ++i)
            tl.progress.push_back(d.getU64());
        r.timelines.push_back(std::move(tl));
    }
    r.faultsInjected = d.getU64();
    r.timingViolations = d.getU64();
    r.illegalIssues = d.getU64();
    const uint64_t nRules = d.getU64();
    for (uint64_t i = 0; i < nRules; ++i) {
        const std::string rule = d.getString();
        r.violationRules[rule] = d.getU64();
    }
    const uint64_t nErr = d.getU64();
    for (uint64_t i = 0; i < nErr; ++i) {
        SimError e;
        e.cycle = d.getU64();
        e.category = d.getString();
        e.message = d.getString();
        r.simErrors.push_back(std::move(e));
    }
    r.cyclesExecuted = d.getU64();
    r.cyclesSkipped = d.getU64();
    r.compiledCommands = d.getU64();
    r.compiledFallbacks = d.getU64();
    r.resumedFromSnapshot = d.getBool();
    r.effectiveChannels = d.getU32();
    r.geometryOverridden = d.getBool();
    r.shards = d.getU32();
    const uint64_t nHist = d.getU64();
    for (uint64_t i = 0; i < nHist; ++i) {
        Histogram h;
        const double lo = d.getDouble();
        const double width = d.getDouble();
        const uint64_t nbins = d.getU64();
        h.init(lo, width, static_cast<size_t>(nbins));
        h.restoreState(d);
        r.domainReadLatency.push_back(std::move(h));
    }
    return r;
}

std::vector<double>
baselineIpc(const std::string &workload, const Config &base)
{
    Config cfg = base;
    cfg.merge(schemeConfig("baseline"));
    cfg.set("workload", workload);
    return runExperiment(cfg).ipc;
}

} // namespace memsec::harness
