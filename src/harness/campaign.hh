/**
 * @file
 * Parallel experiment campaign runner.
 *
 * A campaign is an ordered list of fully specified experiment
 * Configs. The runner executes them across N worker threads and
 * guarantees that the per-run results are byte-identical to a serial
 * run: every experiment constructs its own components and RNG streams
 * (isolation is per-Experiment construction, not locks), so the only
 * thing concurrency may change is wall-clock time. That determinism
 * is a security claim, not a convenience — the noninterference audit
 * is only meaningful if the runner cannot perturb a run's timeline —
 * and it is enforced by tests/test_campaign.cc.
 *
 * Runs sharing a canonical config fingerprint are executed once and
 * the result is shared (memoized), so figures re-sweeping the same
 * (scheme, workload, timing) point pay once per campaign.
 *
 * Failure semantics: an experiment that throws (panic() converts
 * invariant violations into exceptions) is recorded as a failed
 * RunOutcome without killing sibling runs; recoverable SimErrors
 * recorded by a run are aggregated into the campaign summary.
 * fatal() still exits the process — it means the campaign itself was
 * misconfigured.
 */

#ifndef MEMSEC_HARNESS_CAMPAIGN_HH
#define MEMSEC_HARNESS_CAMPAIGN_HH

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "harness/experiment.hh"
#include "sim/config.hh"

namespace memsec::harness {

/** How a campaign should execute. */
struct CampaignOptions
{
    /** Worker threads; <= 1 executes in submission order, serially. */
    unsigned jobs = 1;

    /** Stream per-run progress lines ("[3/42] fs_rp/mcf 1.2s"). */
    bool progress = false;

    /** Where progress lines go (defaults to stderr when null). */
    std::ostream *progressStream = nullptr;
};

/** What happened to one submitted run. */
struct RunOutcome
{
    std::string label;
    Config config;
    bool ok = false;
    /** True if this run shared an earlier run's execution. */
    bool memoized = false;
    /** True if the outcome was served from an on-disk journal entry
     *  (ckpt.dir) written by an earlier, possibly killed, campaign. */
    bool fromJournal = false;
    std::string error; ///< exception text when !ok
    double wallSeconds = 0.0;
    ExperimentResult result; ///< valid only when ok
};

/** Aggregate accounting for one executed campaign. */
struct CampaignSummary
{
    size_t runs = 0;     ///< submitted
    size_t executed = 0; ///< actually simulated (unique fingerprints)
    size_t memoHits = 0; ///< runs served from a sibling's execution
    size_t journalHits = 0; ///< runs served from the on-disk journal
    size_t snapshotResumes = 0; ///< executed runs resumed mid-flight
    size_t failures = 0; ///< runs whose experiment threw
    double wallSeconds = 0.0;   ///< whole-campaign wall clock
    double serialSeconds = 0.0; ///< sum of per-run wall clocks
    /** Recoverable SimErrors across all runs, by category. */
    std::map<std::string, uint64_t> simErrorsByCategory;
    uint64_t simErrors = 0;

    /** Human-readable one-paragraph accounting. */
    std::string toString() const;
};

/**
 * An ordered batch of experiments. add() all runs, run() once, then
 * read outcomes/results by submission index.
 */
class Campaign
{
  public:
    /** Executes one Config; swappable for testing. */
    using Runner = std::function<ExperimentResult(const Config &)>;

    /** A campaign over runExperiment(). */
    Campaign();

    /** A campaign over a custom runner (tests, dry runs). */
    explicit Campaign(Runner runner);

    /** Submit a run; returns its index. Rejected after run(). */
    size_t add(std::string label, Config cfg);

    size_t size() const { return outcomes_.size(); }

    /**
     * Execute every submitted run. Call at most once. Returns the
     * summary, which stays accessible via summary() afterwards.
     */
    const CampaignSummary &run(const CampaignOptions &opts = {});

    /** Outcome of run `idx` (valid after run()). */
    const RunOutcome &outcome(size_t idx) const;

    /** Result of run `idx`; fatal if the run failed. */
    const ExperimentResult &result(size_t idx) const;

    const CampaignSummary &summary() const { return summary_; }

    /**
     * Canonical fingerprint of a Config: stable across key insertion
     * order (keys are stored sorted). Runs with equal fingerprints
     * are executed once per campaign. Durability keys (ckpt.*,
     * crash.*) are stripped first — they steer checkpoint plumbing,
     * not simulated behaviour, so a resumed rerun with a different
     * cadence still matches its journal entries.
     */
    static std::string fingerprint(const Config &cfg);

  private:
    void execute(size_t idx, const CampaignOptions &opts,
                 size_t *completed);
    void narrate(const CampaignOptions &opts, const std::string &line);

    Runner runner_;
    std::vector<RunOutcome> outcomes_;
    std::vector<std::string> fingerprints_; ///< parallel to outcomes_
    CampaignSummary summary_;
    bool ran_ = false;
};

/**
 * Canonical full-precision text digest of a result — every metric the
 * paper reports plus the captured noninterference timelines, with
 * doubles rendered in hexfloat so equality is bit-equality. Two runs
 * are byte-identical iff their digests compare equal; the campaign
 * determinism test is EXPECT_EQ over these.
 */
std::string resultDigest(const ExperimentResult &r);

} // namespace memsec::harness

#endif // MEMSEC_HARNESS_CAMPAIGN_HH
