#include "harness/campaign.hh"

#include <chrono>
#include <exception>
#include <iomanip>
#include <iostream>
#include <mutex>
#include <sstream>

#include "util/logging.hh"
#include "util/serialize.hh"
#include "util/thread_pool.hh"

namespace memsec::harness {

namespace {

// Progress lines from concurrent workers are each written as one
// complete string under this lock so they never interleave.
std::mutex narrateMutex;

double
secondsSince(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - start)
        .count();
}

uint64_t
fnv1a64(const std::string &s)
{
    uint64_t h = 0xCBF29CE484222325ull;
    for (unsigned char c : s) {
        h ^= c;
        h *= 0x100000001B3ull;
    }
    return h;
}

// The canonical identity of a run: its config minus durability
// plumbing (checkpoint cadence, crash-dump routing), which affects
// how a run persists, never what it computes.
std::string
canonicalConfigString(const Config &cfg)
{
    Config canon = cfg;
    for (const std::string &key : cfg.keys()) {
        if (key.rfind("ckpt.", 0) == 0 || key.rfind("crash.", 0) == 0)
            canon.erase(key);
    }
    return canon.toString();
}

} // namespace

std::string
CampaignSummary::toString() const
{
    std::ostringstream os;
    os << "campaign: " << runs << " runs, " << executed << " executed, "
       << memoHits << " memo hits, " << journalHits
       << " journal hits, " << snapshotResumes << " snapshot resumes, "
       << failures << " failed; wall " << std::fixed
       << std::setprecision(2) << wallSeconds
       << "s (serial-equivalent " << serialSeconds << "s)";
    if (simErrors > 0) {
        os << "; " << simErrors << " recoverable sim errors (";
        bool first = true;
        for (const auto &kv : simErrorsByCategory) {
            os << (first ? "" : ", ") << kv.first << "=" << kv.second;
            first = false;
        }
        os << ")";
    }
    return os.str();
}

Campaign::Campaign() : runner_(runExperiment) {}

Campaign::Campaign(Runner runner) : runner_(std::move(runner))
{
    panic_if(!runner_, "campaign runner must be callable");
}

size_t
Campaign::add(std::string label, Config cfg)
{
    panic_if(ran_, "cannot add runs to an executed campaign");
    RunOutcome o;
    o.label = std::move(label);
    o.config = std::move(cfg);
    fingerprints_.push_back(canonicalConfigString(o.config));
    outcomes_.push_back(std::move(o));
    return outcomes_.size() - 1;
}

void
Campaign::narrate(const CampaignOptions &opts, const std::string &line)
{
    if (!opts.progress)
        return;
    std::ostream &os =
        opts.progressStream ? *opts.progressStream : std::cerr;
    std::lock_guard<std::mutex> lock(narrateMutex);
    os << line << std::flush;
}

void
Campaign::execute(size_t idx, const CampaignOptions &opts,
                  size_t *completed)
{
    RunOutcome &o = outcomes_[idx];
    const auto start = std::chrono::steady_clock::now();

    // Journal resume: a prior (possibly killed) campaign with the
    // same ckpt.dir already completed this fingerprint — serve the
    // persisted result instead of re-simulating. Stale or corrupt
    // entries are warned about and ignored; the run then executes
    // normally.
    const std::string journalDir = o.config.getString("ckpt.dir", "");
    std::string journalPath;
    std::string fp;
    if (!journalDir.empty()) {
        ensureDirectory(journalDir);
        fp = fingerprint(o.config);
        journalPath = journalDir + "/" + fp + ".done";
        std::string bytes;
        if (readFileBytes(journalPath, bytes)) {
            try {
                const std::string payload = decodeSnapshot(bytes, fp);
                Deserializer d(payload);
                o.result = deserializeResult(d);
                o.ok = true;
                o.fromJournal = true;
            } catch (const SerializeError &e) {
                warn("journal entry {} ignored ({}); re-executing run",
                     journalPath, e.toString());
            }
        }
    }

    if (!o.fromJournal) {
        try {
            o.result = runner_(o.config);
            o.ok = true;
        } catch (const std::exception &e) {
            o.error = e.what();
        } catch (...) {
            o.error = "unknown exception";
        }
        // Persist the outcome atomically so a killed rerun skips this
        // fingerprint. Only successful runs are journalled: failures
        // should re-execute (and re-fail loudly) on resume.
        if (o.ok && !journalPath.empty()) {
            Serializer s;
            serializeResult(s, o.result);
            writeFileAtomic(journalPath, encodeSnapshot(fp, s.data()));
        }
    }
    o.wallSeconds = secondsSince(start);

    size_t done;
    {
        std::lock_guard<std::mutex> lock(narrateMutex);
        done = ++*completed;
    }
    std::ostringstream line;
    line << "  [" << done << "/" << summary_.executed << "] " << o.label
         << " " << std::fixed << std::setprecision(1) << o.wallSeconds
         << "s" << (o.fromJournal ? " (journal)" : "")
         << (o.result.resumedFromSnapshot ? " (resumed)" : "")
         << (o.ok ? "" : " FAILED: " + o.error) << "\n";
    narrate(opts, line.str());
}

const CampaignSummary &
Campaign::run(const CampaignOptions &opts)
{
    panic_if(ran_, "campaign already executed");
    ran_ = true;

    // First submission of each canonical config executes; later ones
    // share its outcome.
    std::map<std::string, size_t> primaryOf;
    std::vector<size_t> primaries;
    std::vector<size_t> shareFrom(outcomes_.size());
    for (size_t i = 0; i < outcomes_.size(); ++i) {
        auto [it, fresh] = primaryOf.emplace(fingerprints_[i], i);
        if (fresh)
            primaries.push_back(i);
        shareFrom[i] = it->second;
    }

    summary_.runs = outcomes_.size();
    summary_.executed = primaries.size();
    summary_.memoHits = outcomes_.size() - primaries.size();

    const auto start = std::chrono::steady_clock::now();
    size_t completed = 0;
    if (opts.jobs <= 1) {
        for (size_t idx : primaries)
            execute(idx, opts, &completed);
    } else {
        ThreadPool pool(opts.jobs);
        for (size_t idx : primaries) {
            pool.submit(
                [this, idx, &opts, &completed] {
                    // execute() catches everything an experiment can
                    // throw, so nothing escapes into the pool.
                    execute(idx, opts, &completed);
                });
        }
        pool.wait();
    }
    summary_.wallSeconds = secondsSince(start);

    for (size_t i = 0; i < outcomes_.size(); ++i) {
        const size_t src = shareFrom[i];
        if (src != i) {
            const RunOutcome &from = outcomes_[src];
            RunOutcome &to = outcomes_[i];
            to.ok = from.ok;
            to.error = from.error;
            to.result = from.result;
            to.memoized = true;
            to.wallSeconds = 0.0;
        }
    }
    for (size_t idx : primaries) {
        const RunOutcome &o = outcomes_[idx];
        summary_.serialSeconds += o.wallSeconds;
        if (o.fromJournal)
            ++summary_.journalHits;
        if (!o.ok) {
            ++summary_.failures;
            continue;
        }
        if (o.result.resumedFromSnapshot)
            ++summary_.snapshotResumes;
        for (const SimError &e : o.result.simErrors) {
            ++summary_.simErrors;
            ++summary_.simErrorsByCategory[e.category];
        }
    }
    // Failures of memoized runs count once per submitted run: the
    // caller asked for that many results and did not get them.
    for (size_t i = 0; i < outcomes_.size(); ++i) {
        if (shareFrom[i] != i && !outcomes_[i].ok)
            ++summary_.failures;
    }
    return summary_;
}

const RunOutcome &
Campaign::outcome(size_t idx) const
{
    panic_if(!ran_, "campaign not executed yet");
    panic_if(idx >= outcomes_.size(), "run index out of range");
    return outcomes_[idx];
}

const ExperimentResult &
Campaign::result(size_t idx) const
{
    const RunOutcome &o = outcome(idx);
    fatal_if(!o.ok, "campaign run '{}' failed: {}", o.label, o.error);
    return o.result;
}

std::string
Campaign::fingerprint(const Config &cfg)
{
    std::ostringstream os;
    os << "fnv64-" << std::hex << std::setw(16) << std::setfill('0')
       << fnv1a64(canonicalConfigString(cfg));
    return os.str();
}

std::string
resultDigest(const ExperimentResult &r)
{
    std::ostringstream os;
    os << std::hexfloat;
    os << "scheme=" << r.scheme << "\nworkload=" << r.workload
       << "\ncores=" << r.cores << "\ncycles=" << r.cyclesRun << "\n";
    os << "ipc=";
    for (double v : r.ipc)
        os << v << ",";
    os << "\nreadLatency=" << r.meanReadLatency
       << "\nbandwidth=" << r.effectiveBandwidth
       << "\ndummyFraction=" << r.dummyFraction
       << "\nrowHitRate=" << r.rowHitRate << "\n";
    os << "energy=" << r.energy.backgroundNj << ","
       << r.energy.activateNj << "," << r.energy.readWriteNj << ","
       << r.energy.refreshNj << "\n";
    os << "prefetch=" << r.prefetchIssued << "/" << r.prefetchUseful
       << " demand=" << r.demandReads << "\n";
    for (size_t t = 0; t < r.timelines.size(); ++t) {
        const auto &tl = r.timelines[t];
        os << "timeline[" << t << "].service=";
        for (const auto &ev : tl.service) {
            os << ev.ordinal << ":" << ev.arrival << ":"
               << ev.completed << ";";
        }
        os << "\ntimeline[" << t << "].progress=";
        for (uint64_t p : tl.progress)
            os << p << ";";
        os << "\n";
    }
    os << "faults=" << r.faultsInjected << " violations="
       << r.timingViolations << " illegal=" << r.illegalIssues << "\n";
    for (const auto &kv : r.violationRules)
        os << "rule." << kv.first << "=" << kv.second << "\n";
    for (const auto &e : r.simErrors) {
        os << "simError@" << e.cycle << " " << e.category << ": "
           << e.message << "\n";
    }
    // Per-domain latency distributions, sparsely (only occupied
    // bins). Deliberately independent of shards/effectiveChannels:
    // the digest must be byte-identical across serial and sharded
    // runs and across an explicit vs. harness-widened geometry.
    for (size_t dIdx = 0; dIdx < r.domainReadLatency.size(); ++dIdx) {
        const auto &h = r.domainReadLatency[dIdx];
        os << "domainLatency[" << dIdx << "]=" << h.totalSamples()
           << ":" << h.underflow() << ":" << h.overflow() << ":"
           << h.total() << ":";
        const auto &bins = h.bins();
        for (size_t b = 0; b < bins.size(); ++b) {
            if (bins[b])
                os << b << ":" << bins[b] << ";";
        }
        os << "\n";
    }
    return os.str();
}

} // namespace memsec::harness
