#include "cpu/workload.hh"

#include <map>
#include <sstream>

#include "util/logging.hh"

namespace memsec::cpu {

namespace {

WorkloadProfile
make(const std::string &name, double memRatio, double storeFrac,
     uint64_t footprintLines, double streamFrac, unsigned streams,
     unsigned stride, double reuse, unsigned mshrs,
     uint64_t phaseLength = 1500)
{
    WorkloadProfile p;
    p.name = name;
    p.memRatio = memRatio;
    p.storeFraction = storeFrac;
    p.footprintLines = footprintLines;
    p.streamFraction = streamFrac;
    p.numStreams = streams;
    p.strideLines = stride;
    p.reuseFraction = reuse;
    p.mshrs = mshrs;
    // Benchmarks are phased: bursts of memory traffic alternate with
    // compute stretches. Phases produce both queueing pressure and
    // the idle slots that become dummy operations under shaping.
    p.phaseLength = phaseLength;
    return p;
}

const std::map<std::string, WorkloadProfile> &
registry()
{
    // Footprints are in 64B lines (1<<14 = 1 MB). The per-core LLC
    // slice is 512 KB (8K lines); footprints well above it produce
    // the benchmark's characteristic miss traffic.
    static const std::map<std::string, WorkloadProfile> reg = {
        // Streaming, extremely memory-intensive, high MLP.
        {"libquantum",
         make("libquantum", 0.25, 0.15, 1 << 19, 0.95, 2, 1, 0.85, 16)},
        // Pointer chasing over a huge footprint; modest MLP.
        {"mcf", make("mcf", 0.30, 0.25, 1 << 20, 0.05, 1, 1, 0.85, 6)},
        // Strided lattice sweeps, memory-intensive.
        {"milc", make("milc", 0.28, 0.30, 1 << 18, 0.80, 4, 2, 0.90, 12)},
        // Stream-heavy stencil with a large write share.
        {"lbm", make("lbm", 0.30, 0.45, 1 << 19, 0.90, 8, 1, 0.90, 12)},
        // FDTD sweeps, strided, memory-intensive.
        {"GemsFDTD",
         make("GemsFDTD", 0.30, 0.30, 1 << 19, 0.80, 6, 4, 0.93, 10)},
        // Path search: mixed random/short streams, moderate traffic.
        {"astar", make("astar", 0.25, 0.25, 1 << 15, 0.40, 2, 1, 0.975, 6)},
        // Structured grid, moderate intensity.
        {"zeusmp",
         make("zeusmp", 0.22, 0.30, 1 << 17, 0.70, 4, 2, 0.972, 8)},
        // Working set just above the LLC slice: mostly hits with a
        // trickle of capacity misses (the paper's 87%-dummy case).
        {"xalancbmk",
         make("xalancbmk", 0.30, 0.30, 8800, 0.30, 2, 1, 0.93, 8)},
        // NPB conjugate gradient: sparse random gathers.
        {"CG", make("CG", 0.30, 0.20, 1 << 17, 0.20, 2, 1, 0.90, 10)},
        // NPB scalar pentadiagonal: multi-stream sweeps.
        {"SP", make("SP", 0.28, 0.35, 1 << 18, 0.85, 6, 1, 0.91, 12)},
        // Mix components.
        {"omnetpp",
         make("omnetpp", 0.25, 0.30, 1 << 16, 0.15, 1, 1, 0.97, 6)},
        {"soplex",
         make("soplex", 0.28, 0.25, 1 << 17, 0.50, 2, 1, 0.955, 8)},
        // Synthetic attacker/co-runner profiles.
        {"idle", make("idle", 0.001, 0.0, 64, 0.0, 1, 1, 0.999, 1, 0)},
        {"hog", make("hog", 0.45, 0.30, 1 << 20, 0.30, 4, 1, 0.30, 16, 0)},
        // Covert-channel receiver: a steady single-outstanding probe
        // stream of LLC misses whose only signal is its own latency.
        {"probe",
         make("probe", 0.08, 0.0, 1 << 16, 1.0, 1, 1, 0.0, 1, 0)},
        // Covert-channel sender: hog-like pressure whose intensity the
        // harness modulates via the leak.* config (experiment.cc).
        {"modsender",
         make("modsender", 0.45, 0.30, 1 << 20, 0.30, 4, 1, 0.30, 16,
              0)},
        // Cloud tenant address behaviour for the open-loop arrival
        // generator (traffic.* keys drive timing, this drives what
        // the arrivals touch): a large, mostly-uncached key-value
        // footprint with a modest sequential-scan share. memRatio is
        // unused in open-loop mode.
        {"cloud",
         make("cloud", 0.30, 0.10, 1 << 20, 0.25, 4, 1, 0.10, 16, 0)},
    };
    return reg;
}

} // namespace

WorkloadProfile
profileByName(const std::string &name)
{
    const auto &reg = registry();
    auto it = reg.find(name);
    fatal_if(it == reg.end(), "unknown workload profile '{}'", name);
    return it->second;
}

std::vector<std::string>
allProfileNames()
{
    std::vector<std::string> out;
    for (const auto &kv : registry())
        out.push_back(kv.first);
    return out;
}

std::vector<WorkloadProfile>
workloadMix(const std::string &name, unsigned cores)
{
    fatal_if(cores == 0, "need at least one core");
    std::vector<std::string> parts;
    if (name == "mix1") {
        parts = {"xalancbmk", "soplex", "mcf", "omnetpp"};
    } else if (name == "mix2") {
        parts = {"milc", "lbm", "xalancbmk", "zeusmp"};
    } else if (name.find(',') != std::string::npos) {
        std::istringstream is(name);
        std::string tok;
        while (std::getline(is, tok, ','))
            parts.push_back(tok);
    } else {
        parts = {name}; // rate mode
    }

    std::vector<WorkloadProfile> out;
    for (unsigned c = 0; c < cores; ++c) {
        const std::string &part = parts[c % parts.size()];
        if (part.rfind("trace:", 0) == 0) {
            WorkloadProfile p;
            p.name = "trace";
            p.tracePath = part.substr(6);
            out.push_back(p);
        } else {
            out.push_back(profileByName(part));
        }
    }
    return out;
}

std::vector<std::string>
evaluationSuite()
{
    return {"mix1", "mix2",  "CG",     "SP",        "astar",
            "lbm",  "libquantum", "mcf", "milc",    "zeusmp",
            "GemsFDTD", "xalancbmk"};
}

} // namespace memsec::cpu
