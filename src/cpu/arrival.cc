#include "cpu/arrival.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"
#include "util/serialize.hh"

namespace memsec::cpu {

namespace {

constexpr double kTwoPi = 6.283185307179586476925286766559;

/** Exponential variate with rate `lam` (> 0), strictly positive. */
double
expoVariate(Rng &rng, double lam)
{
    // uniform() is in [0, 1); 1-u is in (0, 1], so the log is finite.
    const double u = rng.uniform();
    return std::max(1e-9, -std::log(1.0 - u) / lam);
}

} // namespace

ArrivalTraceGenerator::ArrivalTraceGenerator(
    const WorkloadProfile &profile, uint64_t seed)
    : profile_(profile), rng_(seed ^ 0x5EEDCAFE0A11DA7Aull)
{
    const std::string &proc = profile.trafficProcess;
    fatal_if(proc != "poisson" && proc != "mmpp",
             "traffic.process must be poisson or mmpp, got '{}'", proc);
    fatal_if(profile.trafficRate <= 0.0,
             "traffic.rate must be positive, got {}", profile.trafficRate);
    fatal_if(profile.trafficClients == 0,
             "traffic.clients must be >= 1");
    fatal_if(profile.trafficDiurnalAmp < 0.0 ||
                 profile.trafficDiurnalAmp >= 1.0,
             "traffic.diurnal_amp must be in [0,1), got {}",
             profile.trafficDiurnalAmp);
    fatal_if(profile.footprintLines == 0, "footprint must be nonzero");
    mmpp_ = proc == "mmpp";
    if (mmpp_) {
        fatal_if(profile.trafficBurstLen <= 0.0 ||
                     profile.trafficIdleLen <= 0.0,
                 "traffic.burst_len/idle_len must be positive");
        fatal_if(profile.trafficBurstFactor < 0.0 ||
                     profile.trafficIdleFactor < 0.0,
                 "traffic burst/idle factors must be >= 0");
    }

    // Poisson superposition is exact: any client population folds
    // into one aggregate exponential clock. MMPP needs real state
    // machines for burstiness, capped at kMaxMmppSources.
    const unsigned n =
        mmpp_ ? std::min(profile.trafficClients, kMaxMmppSources) : 1;
    // Normalise so traffic.rate is the long-run mean in every
    // process: the MMPP factors shape burstiness around the mean,
    // they do not scale it (the diurnal envelope already averages to
    // one over a period by construction).
    double meanFactor = 1.0;
    if (mmpp_) {
        const double pBurst =
            profile.trafficBurstLen /
            (profile.trafficBurstLen + profile.trafficIdleLen);
        meanFactor = pBurst * profile.trafficBurstFactor +
                     (1.0 - pBurst) * profile.trafficIdleFactor;
        fatal_if(meanFactor <= 0.0,
                 "traffic burst/idle factors average to zero rate");
    }
    perSourceRate_ = profile.trafficRate / 1000.0 /
                     static_cast<double>(n) / meanFactor;

    sources_.resize(n);
    for (auto &src : sources_) {
        if (mmpp_) {
            // Stationary initial state, then an exponential residue.
            const double pBurst =
                profile.trafficBurstLen /
                (profile.trafficBurstLen + profile.trafficIdleLen);
            src.burst = rng_.chance(pBurst);
            const double meanLen = src.burst ? profile.trafficBurstLen
                                             : profile.trafficIdleLen;
            src.nextToggle = 1 + static_cast<Cycle>(
                                     expoVariate(rng_, 1.0 / meanLen));
        }
        src.nextArrival = drawArrival(src, 0);
    }

    const unsigned streams = std::max(1u, profile.numStreams);
    for (unsigned s = 0; s < streams; ++s)
        streamPos_.push_back(rng_.below(profile.footprintLines));
    recent_.assign(64, 0);
}

double
ArrivalTraceGenerator::envelope(double t) const
{
    if (profile_.trafficDiurnalPeriod <= 0.0)
        return 1.0;
    return 1.0 + profile_.trafficDiurnalAmp *
                     std::sin(kTwoPi * t / profile_.trafficDiurnalPeriod);
}

double
ArrivalTraceGenerator::ratePerCycle(const Source &s) const
{
    if (!mmpp_)
        return perSourceRate_;
    return perSourceRate_ * (s.burst ? profile_.trafficBurstFactor
                                     : profile_.trafficIdleFactor);
}

void
ArrivalTraceGenerator::toggle(Source &s)
{
    s.burst = !s.burst;
    const double meanLen =
        s.burst ? profile_.trafficBurstLen : profile_.trafficIdleLen;
    s.nextToggle += 1 + static_cast<Cycle>(
                            expoVariate(rng_, 1.0 / meanLen));
}

Cycle
ArrivalTraceGenerator::drawArrival(Source &s, Cycle from)
{
    // Competing exponentials against the state toggle (memoryless
    // restart at each toggle is exact), with thinning against the
    // diurnal envelope's peak rate.
    const double ampMax = 1.0 + profile_.trafficDiurnalAmp;
    double t = static_cast<double>(from);
    for (;;) {
        const double lamMax = ratePerCycle(s) * ampMax;
        if (lamMax <= 1e-12) {
            // Dead state (factor 0): nothing arrives until the toggle.
            if (s.nextToggle == kNoCycle)
                return kNoCycle;
            t = static_cast<double>(s.nextToggle);
            toggle(s);
            continue;
        }
        t += expoVariate(rng_, lamMax);
        if (s.nextToggle != kNoCycle &&
            t >= static_cast<double>(s.nextToggle)) {
            t = static_cast<double>(s.nextToggle);
            toggle(s);
            continue;
        }
        if (profile_.trafficDiurnalPeriod > 0.0 &&
            rng_.uniform() * ampMax >= envelope(t))
            continue; // thinned candidate: keep walking from t
        const auto at = static_cast<Cycle>(std::ceil(t));
        return std::max(at, from + 1);
    }
}

Addr
ArrivalTraceGenerator::pickLine()
{
    const uint64_t fp = profile_.footprintLines;

    if (!recent_.empty() && rng_.chance(profile_.reuseFraction))
        return recent_[rng_.below(recent_.size())];

    uint64_t line;
    if (rng_.chance(profile_.streamFraction)) {
        const unsigned s = streamRr_++ % streamPos_.size();
        streamPos_[s] = (streamPos_[s] + profile_.strideLines) % fp;
        line = streamPos_[s];
    } else {
        line = rng_.below(fp);
    }
    recent_[recentIdx_++ % recent_.size()] = line * kLineBytes;
    return line * kLineBytes;
}

TraceRecord
ArrivalTraceGenerator::next()
{
    // Earliest due arrival across sources (index breaks ties).
    size_t best = sources_.size();
    Cycle bestAt = kNoCycle;
    for (size_t i = 0; i < sources_.size(); ++i) {
        const Cycle at = sources_[i].nextArrival;
        if (at != kNoCycle && at <= memCycle_ && at < bestAt) {
            best = i;
            bestAt = at;
        }
    }

    TraceRecord rec;
    if (best < sources_.size()) {
        rec.issueAt = bestAt;
        rec.gap = 0;
        rec.isStore = rng_.chance(profile_.storeFraction);
        rec.addr = pickLine();
        sources_[best].nextArrival = drawArrival(sources_[best], bestAt);
        ++arrivals_;
        return rec;
    }

    // Nothing due: filler keeps the ROB retiring so the process is
    // re-polled next cycle. The hot line stays LLC-resident after
    // its first touch, so fillers generate no memory traffic.
    rec.gap = kFillerGap;
    rec.isStore = true;
    rec.addr = 0;
    return rec;
}

void
ArrivalTraceGenerator::saveState(Serializer &s) const
{
    s.section("arrival");
    uint64_t rngState[4];
    rng_.getState(rngState);
    for (uint64_t w : rngState)
        s.putU64(w);
    s.putU64(sources_.size());
    for (const auto &src : sources_) {
        s.putBool(src.burst);
        s.putU64(src.nextToggle);
        s.putU64(src.nextArrival);
    }
    s.putU64(streamPos_.size());
    for (uint64_t p : streamPos_)
        s.putU64(p);
    s.putU32(streamRr_);
    s.putU64(recent_.size());
    for (Addr a : recent_)
        s.putU64(a);
    s.putU64(recentIdx_);
    s.putU64(memCycle_);
    s.putU64(arrivals_);
}

void
ArrivalTraceGenerator::restoreState(Deserializer &d)
{
    d.section("arrival");
    uint64_t rngState[4];
    for (uint64_t &w : rngState)
        w = d.getU64();
    rng_.setState(rngState);
    if (d.getU64() != sources_.size())
        d.fail("arrival source count mismatch");
    for (auto &src : sources_) {
        src.burst = d.getBool();
        src.nextToggle = d.getU64();
        src.nextArrival = d.getU64();
    }
    if (d.getU64() != streamPos_.size())
        d.fail("arrival stream count mismatch");
    for (uint64_t &p : streamPos_)
        p = d.getU64();
    streamRr_ = d.getU32();
    if (d.getU64() != recent_.size())
        d.fail("arrival reuse-ring size mismatch");
    for (Addr &a : recent_)
        a = d.getU64();
    recentIdx_ = d.getU64();
    memCycle_ = d.getU64();
    arrivals_ = d.getU64();
}

} // namespace memsec::cpu
