#include "cpu/prefetcher.hh"

#include <algorithm>

#include "util/logging.hh"
#include "util/serialize.hh"

namespace memsec::cpu {

SandboxPrefetcher::SandboxPrefetcher(const Params &params)
    : params_(params)
{
    fatal_if(params_.candidateOffsets.empty(),
             "prefetcher needs candidate offsets");
    scores_.assign(params_.candidateOffsets.size(), 0);
    recentMisses_.assign(64, ~0ull);
}

std::vector<Addr>
SandboxPrefetcher::onMiss(Addr addr)
{
    const Addr line = addr / kLineBytes;

    // Sandbox evaluation: would candidate offset o have predicted
    // this miss from one of the recent misses?
    for (size_t c = 0; c < params_.candidateOffsets.size(); ++c) {
        const int off = params_.candidateOffsets[c];
        const Addr predictedFrom =
            line - static_cast<Addr>(static_cast<int64_t>(off));
        for (Addr prev : recentMisses_) {
            if (prev == predictedFrom) {
                ++scores_[c];
                break;
            }
        }
    }
    recentMisses_[recentIdx_++ % recentMisses_.size()] = line;

    if (++evalCount_ >= params_.evalPeriod) {
        evalCount_ = 0;
        std::vector<std::pair<unsigned, int>> ranked;
        for (size_t c = 0; c < scores_.size(); ++c) {
            if (scores_[c] >= params_.scoreThreshold)
                ranked.emplace_back(scores_[c],
                                    params_.candidateOffsets[c]);
        }
        std::sort(ranked.begin(), ranked.end(),
                  [](const auto &a, const auto &b) {
                      return a.first > b.first;
                  });
        active_.clear();
        for (size_t i = 0;
             i < ranked.size() && i < params_.degree; ++i)
            active_.push_back(ranked[i].second);
        std::fill(scores_.begin(), scores_.end(), 0u);
    }

    std::vector<Addr> out;
    out.reserve(active_.size());
    for (int off : active_) {
        const int64_t target =
            static_cast<int64_t>(line) + off;
        if (target < 0)
            continue;
        out.push_back(static_cast<Addr>(target) * kLineBytes);
        issued_.inc();
    }
    return out;
}

void
SandboxPrefetcher::saveState(Serializer &s) const
{
    s.section("prefetcher");
    s.putU64(scores_.size());
    for (unsigned v : scores_)
        s.putU32(v);
    s.putU64(recentMisses_.size());
    for (Addr a : recentMisses_)
        s.putU64(a);
    s.putU64(recentIdx_);
    s.putU32(evalCount_);
    s.putU64(active_.size());
    for (int off : active_)
        s.putI64(off);
    issued_.saveState(s);
}

void
SandboxPrefetcher::restoreState(Deserializer &d)
{
    d.section("prefetcher");
    if (d.getU64() != scores_.size())
        d.fail("prefetcher score count mismatch");
    for (unsigned &v : scores_)
        v = d.getU32();
    const uint64_t misses = d.getU64();
    recentMisses_.clear();
    for (uint64_t i = 0; i < misses; ++i)
        recentMisses_.push_back(d.getU64());
    recentIdx_ = d.getU64();
    evalCount_ = d.getU32();
    const uint64_t nactive = d.getU64();
    active_.clear();
    for (uint64_t i = 0; i < nactive; ++i)
        active_.push_back(static_cast<int>(d.getI64()));
    issued_.restoreState(d);
}

} // namespace memsec::cpu
