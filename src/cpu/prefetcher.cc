#include "cpu/prefetcher.hh"

#include <algorithm>

#include "util/logging.hh"

namespace memsec::cpu {

SandboxPrefetcher::SandboxPrefetcher(const Params &params)
    : params_(params)
{
    fatal_if(params_.candidateOffsets.empty(),
             "prefetcher needs candidate offsets");
    scores_.assign(params_.candidateOffsets.size(), 0);
    recentMisses_.assign(64, ~0ull);
}

std::vector<Addr>
SandboxPrefetcher::onMiss(Addr addr)
{
    const Addr line = addr / kLineBytes;

    // Sandbox evaluation: would candidate offset o have predicted
    // this miss from one of the recent misses?
    for (size_t c = 0; c < params_.candidateOffsets.size(); ++c) {
        const int off = params_.candidateOffsets[c];
        const Addr predictedFrom =
            line - static_cast<Addr>(static_cast<int64_t>(off));
        for (Addr prev : recentMisses_) {
            if (prev == predictedFrom) {
                ++scores_[c];
                break;
            }
        }
    }
    recentMisses_[recentIdx_++ % recentMisses_.size()] = line;

    if (++evalCount_ >= params_.evalPeriod) {
        evalCount_ = 0;
        std::vector<std::pair<unsigned, int>> ranked;
        for (size_t c = 0; c < scores_.size(); ++c) {
            if (scores_[c] >= params_.scoreThreshold)
                ranked.emplace_back(scores_[c],
                                    params_.candidateOffsets[c]);
        }
        std::sort(ranked.begin(), ranked.end(),
                  [](const auto &a, const auto &b) {
                      return a.first > b.first;
                  });
        active_.clear();
        for (size_t i = 0;
             i < ranked.size() && i < params_.degree; ++i)
            active_.push_back(ranked[i].second);
        std::fill(scores_.begin(), scores_.end(), 0u);
    }

    std::vector<Addr> out;
    out.reserve(active_.size());
    for (int off : active_) {
        const int64_t target =
            static_cast<int64_t>(line) + off;
        if (target < 0)
            continue;
        out.push_back(static_cast<Addr>(target) * kLineBytes);
        issued_.inc();
    }
    return out;
}

} // namespace memsec::cpu
