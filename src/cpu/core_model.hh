/**
 * @file
 * Trace-driven out-of-order core model.
 *
 * The model captures what the paper's results depend on — the
 * coupling between memory latency and instruction throughput through
 * a finite reorder buffer — without modelling ISA semantics:
 *  - a 64-entry ROB dispatches trace records in order;
 *  - memory operations execute at dispatch (LLC lookup, miss issue);
 *  - retirement is in order, `retireWidth` instructions per CPU
 *    cycle; a load blocks retirement until its data returns, a store
 *    retires through the store buffer;
 *  - memory-level parallelism is bounded by the ROB and the
 *    per-benchmark MSHR count.
 *
 * Each core owns a private LLC slice (the paper's shared L2 must be
 * partitioned for the end-to-end system to be leak-free) and an
 * optional sandbox prefetcher.
 */

#ifndef MEMSEC_CPU_CORE_MODEL_HH
#define MEMSEC_CPU_CORE_MODEL_HH

#include <deque>
#include <map>
#include <memory>
#include <vector>

#include "cache/cache.hh"
#include "core/noninterference.hh"
#include "cpu/prefetcher.hh"
#include "cpu/trace.hh"
#include "mem/memory_controller.hh"
#include "sim/simulator.hh"
#include "stats/stats.hh"

namespace memsec::cpu {

/** One simulated hardware thread / security domain. */
class CoreModel : public Component, public mem::MemClient
{
  public:
    struct Params
    {
        unsigned robSize = 64;
        unsigned retireWidth = 4;
        unsigned cpuMult = kDefaultCpuMult;
        unsigned llcHitLatency = 10; ///< CPU cycles
        uint64_t llcBytes = 512 * 1024;
        unsigned llcWays = 8;
        bool prefetchEnabled = false;
        /** Instructions per progress checkpoint (0 = no capture). */
        uint64_t progressInterval = 0;
        /** Record the per-request service timeline. */
        bool captureTimeline = false;
        /** Trace records replayed functionally (no timing) through
         *  the LLC at construction — the stand-in for the paper's
         *  50-billion-instruction fast-forward. */
        uint64_t functionalWarmupRecords = 0;
    };

    CoreModel(std::string name, DomainId domain, const Params &params,
              const WorkloadProfile &profile, uint64_t traceSeed,
              mem::MemoryController &mc);

    void tick(Cycle now) override;
    Cycle nextWakeCycle(Cycle now) const override;
    void fastForward(Cycle from, Cycle to) override;
    void saveState(Serializer &s) const override;
    void restoreState(Deserializer &d) override;
    void memResponse(const mem::MemRequest &req) override;
    void memDropped(const mem::MemRequest &req) override;

    uint64_t retired() const { return retired_; }
    CpuCycle cpuCycles() const { return cpuCycles_; }
    double ipc() const;

    /** Freeze the IPC measurement start point (end of warmup). */
    void beginMeasurement();

    const core::VictimTimeline &timeline() const { return timeline_; }
    const cache::Cache &llc() const { return llc_; }
    const SandboxPrefetcher &prefetcher() const { return prefetcher_; }

    void registerStats(StatGroup &group) const;

    uint64_t prefetchIssued() const { return prefetchIssued_.value(); }
    uint64_t prefetchUseful() const { return prefetchUseful_.value(); }

  private:
    struct Record
    {
        uint64_t instrs = 1;      ///< gap + the memory op itself
        uint64_t retiredOfThis = 0;
        bool isStore = false;
        Addr addr = 0;
        enum class State : uint8_t
        {
            Done,       ///< retirable
            LlcPending, ///< waiting for the LLC hit latency
            MemPending, ///< waiting for memory data
            NeedsIssue, ///< load miss blocked on MSHR/queue space
        } state = State::Done;
        CpuCycle doneAt = 0; ///< for LlcPending
        /** Open-loop issue stamp (TraceRecord::issueAt), kNoCycle
         *  for closed-loop records. */
        Cycle issueAt = kNoCycle;
    };

    struct MshrEntry
    {
        std::vector<Record *> waiters;
        bool fillDirty = false;
        bool isPrefetch = false;
        bool demandTouched = false; ///< usefulness counted already
    };

    /** Single point of ROB state transition, so the NeedsIssue count
     *  used by the retry/wake fast paths can never drift. */
    void setState(Record &rec, Record::State s);
    /** The full wake computation behind nextWakeCycle(). Controller
     *  acceptability is read through probeAcceptRead/Write(), which
     *  record the consumed answers in the memo so it can revalidate
     *  against exactly the bits the computation depended on. */
    Cycle computeNextWake(Cycle now) const;
    bool probeAcceptRead() const;
    bool probeAcceptWrite() const;
    void cpuCycle();
    void dispatch();
    void retire();
    void executeMemOp(Record &rec);
    void sendRead(Addr addr, Cycle issueAt = kNoCycle);
    bool tryIssueLoad(Record &rec);
    void issueStoreFetch(Addr addr);
    void issuePrefetches(Addr missAddr);
    void drainWritebacks();
    void retryBlocked();
    size_t demandMshrs() const;

    DomainId domain_ = 0;
    Params params_;
    WorkloadProfile profile_;
    std::unique_ptr<TraceGenerator> trace_;
    mem::MemoryController &mc_;
    cache::Cache llc_;
    SandboxPrefetcher prefetcher_;

    std::deque<Record> rob_;
    uint64_t robInstrs_ = 0;
    /** ROB records in NeedsIssue state — derived from rob_, rebuilt
     *  on restore. Zero lets retryBlocked()/nextWakeCycle() skip
     *  their ROB scans, the hot path of a memory-blocked core. */
    size_t needsIssue_ = 0;
    /** Keyed by line addr; ordered so checkpoints serialize it in a
     *  deterministic order. */
    std::map<Addr, MshrEntry> mshr_;
    size_t prefetchInflight_ = 0;
    std::deque<Addr> pendingStoreFetches_;
    std::deque<Addr> writebacks_;
    Cycle memNow_ = 0;

    CpuCycle cpuCycles_ = 0;
    uint64_t retired_ = 0;
    CpuCycle measureStartCycle_ = 0;
    uint64_t measureStartRetired_ = 0;

    core::VictimTimeline timeline_;
    uint64_t nextProgressMark_ = 0;

    /** Memoized nextWakeCycle() result. The computation reads only
     *  core-local state plus the controller's two canAccept() bits;
     *  the memo is therefore valid until this core is ticked or
     *  receives a response/drop, or a consumed bit changes (-1 marks
     *  a bit the computation never read). fastForward() does not
     *  invalidate: it only advances cpuCycles_, under which the
     *  absolute wake value is stable. Derived state, never
     *  serialized. */
    mutable bool wakeMemoValid_ = false;
    mutable Cycle wakeMemo_ = 0;
    mutable int8_t wakeMemoAcceptRead_ = -1;
    mutable int8_t wakeMemoAcceptWrite_ = -1;

    Counter loads_;
    Counter stores_;
    Counter llcMisses_;
    Counter memReads_;
    Counter memWritebacks_;
    Counter prefetchIssued_;
    Counter prefetchUseful_;
    Counter robStallCycles_;
};

} // namespace memsec::cpu

#endif // MEMSEC_CPU_CORE_MODEL_HH
