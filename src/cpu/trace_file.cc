#include "cpu/trace_file.hh"

#include <cctype>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <sstream>

#include "util/logging.hh"

namespace memsec::cpu {

std::string
TraceParseError::toString() const
{
    return "trace line " + std::to_string(line) + ": " + message;
}

bool
tryParseTrace(const std::string &text, std::vector<TraceRecord> &out,
              TraceParseError &err)
{
    auto failAt = [&](int lineno, const std::string &message) {
        err.line = lineno;
        err.message = message;
        return false;
    };

    std::istringstream in(text);
    std::string line;
    int lineno = 0;
    while (std::getline(in, line)) {
        ++lineno;
        const auto hash = line.find('#');
        if (hash != std::string::npos)
            line = line.substr(0, hash);
        // Only genuinely blank lines may be skipped; a line with
        // content that fails to parse is a corrupt record, not noise.
        if (line.find_first_not_of(" \t\r") == std::string::npos)
            continue;
        std::istringstream ls(line);
        uint64_t gap;
        std::string kind;
        std::string addr;
        if (!(ls >> gap) || !(ls >> kind >> addr))
            return failAt(lineno,
                          "expected '<gap> R|W <hex-addr>', got '" +
                              line + "'");
        if (gap > std::numeric_limits<uint32_t>::max())
            return failAt(lineno,
                          "gap " + std::to_string(gap) + " out of range");
        if (kind != "R" && kind != "W")
            return failAt(lineno,
                          "kind must be R or W, got '" + kind + "'");
        TraceRecord rec;
        rec.gap = static_cast<uint32_t>(gap);
        rec.isStore = kind == "W";
        char *end = nullptr;
        rec.addr = std::strtoull(addr.c_str(), &end, 16);
        if (end == addr.c_str() || *end != '\0')
            return failAt(lineno, "bad address '" + addr + "'");
        out.push_back(rec);
    }
    return true;
}

std::vector<TraceRecord>
parseTrace(const std::string &text)
{
    std::vector<TraceRecord> out;
    TraceParseError err;
    if (!tryParseTrace(text, out, err))
        fatal("{}", err.toString());
    return out;
}

std::string
formatTrace(const std::vector<TraceRecord> &records)
{
    std::ostringstream os;
    os << "# memsec trace: <gap> R|W <hex-address>\n";
    for (const auto &r : records) {
        os << r.gap << " " << (r.isStore ? "W" : "R") << " " << std::hex
           << r.addr << std::dec << "\n";
    }
    return os.str();
}

FileTraceGenerator::FileTraceGenerator(const std::string &path)
{
    std::ifstream in(path);
    fatal_if(!in, "cannot open trace file '{}'", path);
    std::ostringstream buf;
    buf << in.rdbuf();
    TraceParseError err;
    if (!tryParseTrace(buf.str(), records_, err))
        fatal("trace file '{}': {}", path, err.toString());
    fatal_if(records_.empty(), "trace file '{}' has no records", path);
}

FileTraceGenerator::FileTraceGenerator(std::vector<TraceRecord> records)
    : records_(std::move(records))
{
    fatal_if(records_.empty(), "empty trace");
}

TraceRecord
FileTraceGenerator::next()
{
    const TraceRecord rec = records_[pos_];
    if (++pos_ == records_.size()) {
        pos_ = 0;
        ++loops_;
    }
    return rec;
}

void
recordTrace(TraceGenerator &gen, size_t count, const std::string &path)
{
    std::vector<TraceRecord> records;
    records.reserve(count);
    for (size_t i = 0; i < count; ++i)
        records.push_back(gen.next());
    std::ofstream out(path);
    fatal_if(!out, "cannot open '{}' for writing", path);
    out << formatTrace(records);
}

} // namespace memsec::cpu
