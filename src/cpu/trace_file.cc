#include "cpu/trace_file.hh"

#include <cctype>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "util/logging.hh"

namespace memsec::cpu {

std::vector<TraceRecord>
parseTrace(const std::string &text)
{
    std::vector<TraceRecord> out;
    std::istringstream in(text);
    std::string line;
    int lineno = 0;
    while (std::getline(in, line)) {
        ++lineno;
        const auto hash = line.find('#');
        if (hash != std::string::npos)
            line = line.substr(0, hash);
        std::istringstream ls(line);
        uint64_t gap;
        std::string kind;
        std::string addr;
        if (!(ls >> gap))
            continue; // blank / comment-only line
        fatal_if(!(ls >> kind >> addr),
                 "trace line {}: expected '<gap> R|W <hex-addr>', "
                 "got '{}'",
                 lineno, line);
        fatal_if(kind != "R" && kind != "W",
                 "trace line {}: kind must be R or W, got '{}'",
                 lineno, kind);
        TraceRecord rec;
        rec.gap = static_cast<uint32_t>(gap);
        rec.isStore = kind == "W";
        char *end = nullptr;
        rec.addr = std::strtoull(addr.c_str(), &end, 16);
        fatal_if(end == addr.c_str() || *end != '\0',
                 "trace line {}: bad address '{}'", lineno, addr);
        out.push_back(rec);
    }
    return out;
}

std::string
formatTrace(const std::vector<TraceRecord> &records)
{
    std::ostringstream os;
    os << "# memsec trace: <gap> R|W <hex-address>\n";
    for (const auto &r : records) {
        os << r.gap << " " << (r.isStore ? "W" : "R") << " " << std::hex
           << r.addr << std::dec << "\n";
    }
    return os.str();
}

FileTraceGenerator::FileTraceGenerator(const std::string &path)
{
    std::ifstream in(path);
    fatal_if(!in, "cannot open trace file '{}'", path);
    std::ostringstream buf;
    buf << in.rdbuf();
    records_ = parseTrace(buf.str());
    fatal_if(records_.empty(), "trace file '{}' has no records", path);
}

FileTraceGenerator::FileTraceGenerator(std::vector<TraceRecord> records)
    : records_(std::move(records))
{
    fatal_if(records_.empty(), "empty trace");
}

TraceRecord
FileTraceGenerator::next()
{
    const TraceRecord rec = records_[pos_];
    if (++pos_ == records_.size()) {
        pos_ = 0;
        ++loops_;
    }
    return rec;
}

void
recordTrace(TraceGenerator &gen, size_t count, const std::string &path)
{
    std::vector<TraceRecord> records;
    records.reserve(count);
    for (size_t i = 0; i < count; ++i)
        records.push_back(gen.next());
    std::ofstream out(path);
    fatal_if(!out, "cannot open '{}' for writing", path);
    out << formatTrace(records);
}

} // namespace memsec::cpu
