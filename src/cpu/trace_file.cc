#include "cpu/trace_file.hh"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <limits>
#include <sstream>

#include "util/logging.hh"
#include "util/serialize.hh"

namespace memsec::cpu {

namespace {

constexpr char kTraceMagic[9] = "MSTRACE1";
constexpr uint32_t kTraceVersion = 1;
constexpr uint32_t kRecordsPerBlock = 4096;
constexpr size_t kRecordBytes = 16;
constexpr size_t kHeaderBytes = 8 + 4 + 4 + 8;

void
appendU32(std::string &out, uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
}

void
appendU64(std::string &out, uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
}

uint32_t
readU32(const std::string &in, size_t at)
{
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
        v |= static_cast<uint32_t>(
                 static_cast<unsigned char>(in[at + i]))
             << (8 * i);
    return v;
}

uint64_t
readU64(const std::string &in, size_t at)
{
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<uint64_t>(
                 static_cast<unsigned char>(in[at + i]))
             << (8 * i);
    return v;
}

} // namespace

std::string
TraceParseError::toString() const
{
    if (line > 0) {
        return "trace line " + std::to_string(line) + " (byte " +
               std::to_string(byteOffset) + "): " + message;
    }
    return "trace byte " + std::to_string(byteOffset) + ": " + message;
}

bool
tryParseTrace(const std::string &text, std::vector<TraceRecord> &out,
              TraceParseError &err)
{
    auto failAt = [&](int lineno, uint64_t offset,
                      const std::string &message) {
        err.line = lineno;
        err.byteOffset = offset;
        err.message = message;
        return false;
    };

    std::istringstream in(text);
    std::string line;
    int lineno = 0;
    uint64_t offset = 0;
    while (std::getline(in, line)) {
        ++lineno;
        const uint64_t lineStart = offset;
        offset += line.size() + 1; // +1 for the consumed '\n'
        const auto hash = line.find('#');
        if (hash != std::string::npos)
            line = line.substr(0, hash);
        // Only genuinely blank lines may be skipped; a line with
        // content that fails to parse is a corrupt record, not noise.
        if (line.find_first_not_of(" \t\r") == std::string::npos)
            continue;
        std::istringstream ls(line);
        uint64_t gap;
        std::string kind;
        std::string addr;
        if (!(ls >> gap) || !(ls >> kind >> addr))
            return failAt(lineno, lineStart,
                          "expected '<gap> R|W <hex-addr>', got '" +
                              line + "'");
        if (gap > std::numeric_limits<uint32_t>::max())
            return failAt(lineno, lineStart,
                          "gap " + std::to_string(gap) + " out of range");
        if (kind != "R" && kind != "W")
            return failAt(lineno, lineStart,
                          "kind must be R or W, got '" + kind + "'");
        TraceRecord rec;
        rec.gap = static_cast<uint32_t>(gap);
        rec.isStore = kind == "W";
        char *end = nullptr;
        rec.addr = std::strtoull(addr.c_str(), &end, 16);
        if (end == addr.c_str() || *end != '\0')
            return failAt(lineno, lineStart, "bad address '" + addr + "'");
        out.push_back(rec);
    }
    return true;
}

std::vector<TraceRecord>
parseTrace(const std::string &text)
{
    std::vector<TraceRecord> out;
    TraceParseError err;
    if (!tryParseTrace(text, out, err))
        fatal("{}", err.toString());
    return out;
}

std::string
formatTrace(const std::vector<TraceRecord> &records)
{
    std::ostringstream os;
    os << "# memsec trace: <gap> R|W <hex-address>\n";
    for (const auto &r : records) {
        os << r.gap << " " << (r.isStore ? "W" : "R") << " " << std::hex
           << r.addr << std::dec << "\n";
    }
    return os.str();
}

bool
isBinaryTrace(const std::string &bytes)
{
    return bytes.size() >= 8 &&
           std::memcmp(bytes.data(), kTraceMagic, 8) == 0;
}

std::string
formatBinaryTrace(const std::vector<TraceRecord> &records)
{
    std::string out;
    out.reserve(kHeaderBytes +
                records.size() * kRecordBytes +
                8 * (records.size() / kRecordsPerBlock + 1));
    out.append(kTraceMagic, 8);
    appendU32(out, kTraceVersion);
    appendU32(out, kRecordsPerBlock);
    appendU64(out, records.size());

    size_t i = 0;
    while (i < records.size()) {
        const size_t n =
            std::min<size_t>(kRecordsPerBlock, records.size() - i);
        std::string payload;
        payload.reserve(n * kRecordBytes);
        for (size_t r = 0; r < n; ++r) {
            const TraceRecord &rec = records[i + r];
            appendU64(payload, rec.addr);
            appendU32(payload, rec.gap);
            payload.push_back(rec.isStore ? 1 : 0);
            payload.append(3, '\0');
        }
        appendU32(out, static_cast<uint32_t>(n));
        appendU32(out, crc32c(payload.data(), payload.size()));
        out += payload;
        i += n;
    }
    return out;
}

bool
tryParseBinaryTrace(const std::string &bytes,
                    std::vector<TraceRecord> &out, TraceParseError &err)
{
    auto failAt = [&](uint64_t offset, const std::string &message) {
        err.line = 0;
        err.byteOffset = offset;
        err.message = message;
        return false;
    };

    if (bytes.size() < kHeaderBytes)
        return failAt(bytes.size(), "truncated binary trace header");
    if (!isBinaryTrace(bytes))
        return failAt(0, "bad binary trace magic");
    const uint32_t version = readU32(bytes, 8);
    if (version != kTraceVersion)
        return failAt(8, "unsupported binary trace version " +
                             std::to_string(version));
    const uint32_t perBlock = readU32(bytes, 12);
    if (perBlock == 0)
        return failAt(12, "recordsPerBlock must be nonzero");
    const uint64_t total = readU64(bytes, 16);

    size_t at = kHeaderBytes;
    out.reserve(out.size() + total);
    uint64_t seen = 0;
    while (seen < total) {
        if (bytes.size() - at < 8)
            return failAt(at, "truncated block header");
        const uint32_t count = readU32(bytes, at);
        const uint32_t crc = readU32(bytes, at + 4);
        if (count == 0 || count > perBlock)
            return failAt(at, "bad block record count " +
                                  std::to_string(count));
        if (count > total - seen)
            return failAt(at, "block overruns declared record count");
        const size_t payloadBytes = size_t{count} * kRecordBytes;
        if (bytes.size() - at - 8 < payloadBytes)
            return failAt(at + 8, "truncated block payload");
        const char *payload = bytes.data() + at + 8;
        const uint32_t actual = crc32c(payload, payloadBytes);
        if (actual != crc)
            return failAt(at + 4, "block CRC mismatch");
        for (uint32_t r = 0; r < count; ++r) {
            const size_t off = at + 8 + size_t{r} * kRecordBytes;
            TraceRecord rec;
            rec.addr = readU64(bytes, off);
            rec.gap = readU32(bytes, off + 8);
            rec.isStore = bytes[off + 12] != 0;
            out.push_back(rec);
        }
        at += 8 + payloadBytes;
        seen += count;
    }
    if (at != bytes.size())
        return failAt(at, "trailing bytes after last block");
    return true;
}

FileTraceGenerator::FileTraceGenerator(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    fatal_if(!in, "cannot open trace file '{}'", path);
    std::ostringstream buf;
    buf << in.rdbuf();
    const std::string bytes = buf.str();
    TraceParseError err;
    const bool ok = isBinaryTrace(bytes)
                        ? tryParseBinaryTrace(bytes, records_, err)
                        : tryParseTrace(bytes, records_, err);
    if (!ok)
        fatal("trace file '{}': {}", path, err.toString());
    fatal_if(records_.empty(), "trace file '{}' has no records", path);
}

FileTraceGenerator::FileTraceGenerator(std::vector<TraceRecord> records)
    : records_(std::move(records))
{
    fatal_if(records_.empty(), "empty trace");
}

TraceRecord
FileTraceGenerator::next()
{
    const TraceRecord rec = records_[pos_];
    if (++pos_ == records_.size()) {
        pos_ = 0;
        ++loops_;
    }
    return rec;
}

void
FileTraceGenerator::saveState(Serializer &s) const
{
    s.section("filetrace");
    s.putU64(records_.size());
    s.putU64(pos_);
    s.putU64(loops_);
}

void
FileTraceGenerator::restoreState(Deserializer &d)
{
    d.section("filetrace");
    if (d.getU64() != records_.size())
        d.fail("trace record count mismatch");
    pos_ = d.getU64();
    if (pos_ >= records_.size())
        d.fail("trace replay position out of range");
    loops_ = d.getU64();
}

void
recordTrace(TraceGenerator &gen, size_t count, const std::string &path,
            bool binary)
{
    std::vector<TraceRecord> records;
    records.reserve(count);
    for (size_t i = 0; i < count; ++i)
        records.push_back(gen.next());
    std::ofstream out(path, std::ios::binary);
    fatal_if(!out, "cannot open '{}' for writing", path);
    out << (binary ? formatBinaryTrace(records) : formatTrace(records));
}

} // namespace memsec::cpu
