#include "cpu/core_model.hh"

#include "cpu/arrival.hh"
#include "cpu/trace_file.hh"

#include <algorithm>

#include "util/logging.hh"
#include "util/serialize.hh"

namespace memsec::cpu {

using mem::MemRequest;
using mem::ReqType;

namespace {

Addr
lineOf(Addr addr)
{
    return addr / kLineBytes * kLineBytes;
}

} // namespace

CoreModel::CoreModel(std::string name, DomainId domain,
                     const Params &params, const WorkloadProfile &profile,
                     uint64_t traceSeed, mem::MemoryController &mc)
    : Component(std::move(name)), domain_(domain), params_(params),
      profile_(profile), mc_(mc), llc_(params.llcBytes, params.llcWays),
      prefetcher_()
{
    if (!profile.trafficProcess.empty() &&
        profile.trafficProcess != "none") {
        trace_ = std::make_unique<ArrivalTraceGenerator>(profile,
                                                         traceSeed);
    } else if (profile.tracePath.empty()) {
        trace_ = std::make_unique<SyntheticTraceGenerator>(profile,
                                                           traceSeed);
    } else {
        trace_ = std::make_unique<FileTraceGenerator>(profile.tracePath);
    }
    fatal_if(params.robSize == 0 || params.retireWidth == 0,
             "core parameters must be nonzero");
    nextProgressMark_ = params.progressInterval;
    // Checkpoint restore rebinds request client pointers through this
    // registry, so every core must be reachable by its domain id.
    mc.registerClient(domain, this);

    // Functional cache warmup: replay a trace prefix through the LLC
    // with no timing so measurement starts from a warm cache, as the
    // paper's fast-forwarded checkpoints do. Writebacks generated
    // here are discarded (they happened "before" the simulation).
    for (uint64_t i = 0; i < params.functionalWarmupRecords; ++i) {
        const TraceRecord tr = trace_->next();
        const Addr line = lineOf(tr.addr);
        if (!llc_.access(line, tr.isStore).hit)
            llc_.fill(line, tr.isStore);
    }
}

double
CoreModel::ipc()
    const
{
    const CpuCycle cycles = cpuCycles_ - measureStartCycle_;
    if (cycles == 0)
        return 0.0;
    return static_cast<double>(retired_ - measureStartRetired_) /
           static_cast<double>(cycles);
}

void
CoreModel::beginMeasurement()
{
    measureStartCycle_ = cpuCycles_;
    measureStartRetired_ = retired_;
}

size_t
CoreModel::demandMshrs() const
{
    return mshr_.size() - prefetchInflight_;
}

void
CoreModel::tick(Cycle now)
{
    wakeMemoValid_ = false;
    memNow_ = now;
    // Time-keyed generators (covert-channel senders) see the bus
    // cycle before dispatch pulls any record of this tick. Skipped
    // ticks never dispatch (nextWakeCycle returns now+1 whenever
    // dispatch could run), so fastforward cannot perturb the feed.
    trace_->observeCycle(now);
    drainWritebacks();
    retryBlocked();
    for (unsigned sub = 0; sub < params_.cpuMult; ++sub)
        cpuCycle();
}

Cycle
CoreModel::nextWakeCycle(Cycle now) const
{
    if (wakeMemoValid_ && wakeMemo_ > now &&
        (wakeMemoAcceptRead_ < 0 ||
         wakeMemoAcceptRead_ == int8_t(mc_.canAccept(domain_))) &&
        (wakeMemoAcceptWrite_ < 0 ||
         wakeMemoAcceptWrite_ ==
             int8_t(mc_.canAccept(domain_, mem::ReqType::Write)))) {
        // Untouched since the last computation and every controller
        // bit the computation consumed still matches: the claim
        // "no-op until wakeMemo_" still holds, now over a shorter
        // suffix of the same span. Bits never consumed (-1) cannot
        // have influenced the result and are not requeried.
        return wakeMemo_;
    }
    wakeMemoAcceptRead_ = -1;
    wakeMemoAcceptWrite_ = -1;
    const Cycle wake = computeNextWake(now);
    wakeMemoValid_ = true;
    wakeMemo_ = wake;
    return wake;
}

bool
CoreModel::probeAcceptRead() const
{
    if (wakeMemoAcceptRead_ < 0)
        wakeMemoAcceptRead_ = mc_.canAccept(domain_) ? 1 : 0;
    return wakeMemoAcceptRead_ != 0;
}

bool
CoreModel::probeAcceptWrite() const
{
    if (wakeMemoAcceptWrite_ < 0)
        wakeMemoAcceptWrite_ =
            mc_.canAccept(domain_, mem::ReqType::Write) ? 1 : 0;
    return wakeMemoAcceptWrite_ != 0;
}

Cycle
CoreModel::computeNextWake(Cycle now) const
{
    const Cycle next = now + 1;
    // Dispatch has ROB space: new trace records enter every cycle.
    if (robInstrs_ < params_.robSize || rob_.empty())
        return next;
    // Writebacks drain whenever the controller has write space.
    if (!writebacks_.empty() && probeAcceptWrite())
        return next;
    // Mirror retryBlocked()'s gating exactly: if its next tick would
    // mutate anything, the cycle cannot be skipped. Entries it would
    // break on are blocked on controller/MSHR state, which is frozen
    // until some component executes a cycle anyway.
    if (!pendingStoreFetches_.empty()) {
        const Addr addr = pendingStoreFetches_.front();
        if (llc_.contains(addr) || mshr_.count(addr) > 0)
            return next;
        if (demandMshrs() < profile_.mshrs && probeAcceptRead())
            return next;
    }
    if (needsIssue_ > 0) {
        for (const auto &rec : rob_) {
            if (rec.state != Record::State::NeedsIssue)
                continue;
            auto it = mshr_.find(rec.addr);
            if (it != mshr_.end()) {
                if (it->second.isPrefetch && !probeAcceptRead())
                    break; // retryBlocked() stops at this entry too
                return next; // it would re-link the waiter / upgrade
            }
            if (llc_.contains(rec.addr))
                return next;
            if (demandMshrs() < profile_.mshrs && probeAcceptRead())
                return next;
            break;
        }
    }
    // Retirement: the ROB head decides. Pending gap instructions or a
    // retirable head mean work next cycle; an LLC fill completes at a
    // computable future cycle; a memory-blocked head sleeps until
    // something else wakes the system.
    const Record &head = rob_.front();
    if (head.instrs > head.retiredOfThis + 1)
        return next;
    const bool ready =
        head.isStore || head.state == Record::State::Done ||
        (head.state == Record::State::LlcPending &&
         head.doneAt <= cpuCycles_);
    if (ready)
        return next;
    if (head.state == Record::State::LlcPending) {
        // First memory cycle whose retire sub-cycles reach doneAt
        // (cpuCycles_ is sampled before each sub-cycle increments it).
        return now + 1 + (head.doneAt - cpuCycles_) / params_.cpuMult;
    }
    return kNoCycle;
}

void
CoreModel::fastForward(Cycle from, Cycle to)
{
    // Only called when nextWakeCycle() proved every cycle in
    // [from, to) a no-op tick: dispatch blocked, retirement stalled
    // on memory. Each skipped sub-cycle would only have advanced the
    // CPU clock and the stall counter.
    const uint64_t subCycles = (to - from) * params_.cpuMult;
    cpuCycles_ += subCycles;
    robStallCycles_.inc(subCycles);
}

void
CoreModel::saveState(Serializer &s) const
{
    s.section("core");
    trace_->saveState(s);
    llc_.saveState(s);
    prefetcher_.saveState(s);

    s.putU64(rob_.size());
    for (const Record &rec : rob_) {
        s.putU64(rec.instrs);
        s.putU64(rec.retiredOfThis);
        s.putBool(rec.isStore);
        s.putU64(rec.addr);
        s.putU8(static_cast<uint8_t>(rec.state));
        s.putU64(rec.doneAt);
        s.putU64(rec.issueAt);
    }
    s.putU64(robInstrs_);

    // MSHR waiters are pointers into rob_; encode them as ROB indices
    // (deque element addresses are stable, so the scan is exact).
    s.putU64(mshr_.size());
    for (const auto &[addr, entry] : mshr_) {
        s.putU64(addr);
        s.putBool(entry.fillDirty);
        s.putBool(entry.isPrefetch);
        s.putBool(entry.demandTouched);
        s.putU64(entry.waiters.size());
        for (const Record *w : entry.waiters) {
            size_t idx = rob_.size();
            for (size_t i = 0; i < rob_.size(); ++i) {
                if (&rob_[i] == w) {
                    idx = i;
                    break;
                }
            }
            panic_if(idx == rob_.size(),
                     "{}: MSHR waiter not found in ROB", name());
            s.putU64(idx);
        }
    }
    s.putU64(prefetchInflight_);

    s.putU64(pendingStoreFetches_.size());
    for (Addr a : pendingStoreFetches_)
        s.putU64(a);
    s.putU64(writebacks_.size());
    for (Addr a : writebacks_)
        s.putU64(a);

    s.putU64(memNow_);
    s.putU64(cpuCycles_);
    s.putU64(retired_);
    s.putU64(measureStartCycle_);
    s.putU64(measureStartRetired_);

    s.putU64(timeline_.service.size());
    for (const auto &ev : timeline_.service) {
        s.putU64(ev.ordinal);
        s.putU64(ev.arrival);
        s.putU64(ev.completed);
    }
    s.putU64(timeline_.progress.size());
    for (uint64_t p : timeline_.progress)
        s.putU64(p);
    s.putU64(nextProgressMark_);

    loads_.saveState(s);
    stores_.saveState(s);
    llcMisses_.saveState(s);
    memReads_.saveState(s);
    memWritebacks_.saveState(s);
    prefetchIssued_.saveState(s);
    prefetchUseful_.saveState(s);
    robStallCycles_.saveState(s);
}

void
CoreModel::restoreState(Deserializer &d)
{
    wakeMemoValid_ = false;
    d.section("core");
    trace_->restoreState(d);
    llc_.restoreState(d);
    prefetcher_.restoreState(d);

    const uint64_t robCount = d.getU64();
    rob_.clear();
    needsIssue_ = 0;
    for (uint64_t i = 0; i < robCount; ++i) {
        Record rec;
        rec.instrs = d.getU64();
        rec.retiredOfThis = d.getU64();
        rec.isStore = d.getBool();
        rec.addr = d.getU64();
        const uint8_t state = d.getU8();
        if (state > static_cast<uint8_t>(Record::State::NeedsIssue))
            d.fail("bad ROB record state");
        rec.state = static_cast<Record::State>(state);
        rec.doneAt = d.getU64();
        rec.issueAt = d.getU64();
        if (rec.state == Record::State::NeedsIssue)
            ++needsIssue_;
        rob_.push_back(rec);
    }
    robInstrs_ = d.getU64();

    const uint64_t mshrCount = d.getU64();
    mshr_.clear();
    for (uint64_t i = 0; i < mshrCount; ++i) {
        const Addr addr = d.getU64();
        MshrEntry &entry = mshr_[addr];
        entry.fillDirty = d.getBool();
        entry.isPrefetch = d.getBool();
        entry.demandTouched = d.getBool();
        const uint64_t waiters = d.getU64();
        for (uint64_t w = 0; w < waiters; ++w) {
            const uint64_t idx = d.getU64();
            if (idx >= rob_.size())
                d.fail("MSHR waiter index out of range");
            entry.waiters.push_back(&rob_[idx]);
        }
    }
    prefetchInflight_ = d.getU64();

    const uint64_t pending = d.getU64();
    pendingStoreFetches_.clear();
    for (uint64_t i = 0; i < pending; ++i)
        pendingStoreFetches_.push_back(d.getU64());
    const uint64_t wbs = d.getU64();
    writebacks_.clear();
    for (uint64_t i = 0; i < wbs; ++i)
        writebacks_.push_back(d.getU64());

    memNow_ = d.getU64();
    cpuCycles_ = d.getU64();
    retired_ = d.getU64();
    measureStartCycle_ = d.getU64();
    measureStartRetired_ = d.getU64();

    const uint64_t events = d.getU64();
    timeline_.service.clear();
    for (uint64_t i = 0; i < events; ++i) {
        core::ServiceEvent ev;
        ev.ordinal = d.getU64();
        ev.arrival = d.getU64();
        ev.completed = d.getU64();
        timeline_.service.push_back(ev);
    }
    const uint64_t marks = d.getU64();
    timeline_.progress.clear();
    for (uint64_t i = 0; i < marks; ++i)
        timeline_.progress.push_back(d.getU64());
    nextProgressMark_ = d.getU64();

    loads_.restoreState(d);
    stores_.restoreState(d);
    llcMisses_.restoreState(d);
    memReads_.restoreState(d);
    memWritebacks_.restoreState(d);
    prefetchIssued_.restoreState(d);
    prefetchUseful_.restoreState(d);
    robStallCycles_.restoreState(d);
}

void
CoreModel::setState(Record &rec, Record::State s)
{
    if (rec.state == Record::State::NeedsIssue)
        --needsIssue_;
    if (s == Record::State::NeedsIssue)
        ++needsIssue_;
    rec.state = s;
}

void
CoreModel::cpuCycle()
{
    retire();
    dispatch();
    ++cpuCycles_;
}

void
CoreModel::dispatch()
{
    while (robInstrs_ < params_.robSize) {
        const TraceRecord tr = trace_->next();
        Record rec;
        rec.instrs = static_cast<uint64_t>(tr.gap) + 1;
        rec.isStore = tr.isStore;
        rec.addr = lineOf(tr.addr);
        rec.issueAt = tr.issueAt;
        rob_.push_back(rec);
        robInstrs_ += rec.instrs;
        executeMemOp(rob_.back());
    }
}

void
CoreModel::executeMemOp(Record &rec)
{
    if (rec.isStore)
        stores_.inc();
    else
        loads_.inc();

    const cache::AccessResult ar = llc_.access(rec.addr, rec.isStore);
    if (ar.prefetchHit)
        prefetchUseful_.inc();
    if (ar.hit) {
        if (rec.isStore) {
            setState(rec, Record::State::Done);
        } else {
            setState(rec, Record::State::LlcPending);
            rec.doneAt = cpuCycles_ + params_.llcHitLatency;
        }
        return;
    }
    llcMisses_.inc();

    // A pending writeback still holds the data: refill locally.
    auto wb = std::find(writebacks_.begin(), writebacks_.end(), rec.addr);
    if (wb != writebacks_.end()) {
        writebacks_.erase(wb);
        const cache::FillResult fr = llc_.fill(rec.addr, true);
        if (fr.evictedDirty)
            writebacks_.push_back(fr.writebackAddr);
        if (rec.isStore) {
            setState(rec, Record::State::Done);
        } else {
            setState(rec, Record::State::LlcPending);
            rec.doneAt = cpuCycles_ + params_.llcHitLatency;
        }
        return;
    }

    auto it = mshr_.find(rec.addr);
    if (it != mshr_.end()) {
        MshrEntry &entry = it->second;
        if (entry.isPrefetch && !entry.demandTouched) {
            prefetchUseful_.inc();
            entry.demandTouched = true;
        }
        // Upgrade a prefetch entry to a demand fetch: the prefetch is
        // only a hint and may wait in the controller's side queue
        // indefinitely (e.g. a saturated FS domain never has a dummy
        // slot). Whichever response arrives first fills the line.
        if (entry.isPrefetch) {
            if (!mc_.canAccept(domain_)) {
                setState(rec, rec.isStore ? Record::State::Done
                                          : Record::State::NeedsIssue);
                if (rec.isStore)
                    pendingStoreFetches_.push_back(rec.addr);
                return;
            }
            entry.isPrefetch = false;
            --prefetchInflight_;
            sendRead(rec.addr, rec.issueAt);
        }
        if (rec.isStore) {
            entry.fillDirty = true;
            setState(rec, Record::State::Done);
        } else {
            entry.waiters.push_back(&rec);
            setState(rec, Record::State::MemPending);
        }
        return;
    }

    if (rec.isStore) {
        // Fetch-for-ownership; the store itself retires via the
        // store buffer.
        setState(rec, Record::State::Done);
        issueStoreFetch(rec.addr);
    } else {
        if (!tryIssueLoad(rec))
            setState(rec, Record::State::NeedsIssue);
    }
    if (params_.prefetchEnabled)
        issuePrefetches(rec.addr);
}

void
CoreModel::sendRead(Addr addr, Cycle issueAt)
{
    memReads_.inc();
    auto req = std::make_unique<MemRequest>();
    req->domain = domain_;
    req->type = ReqType::Read;
    req->addr = addr;
    req->issued = issueAt;
    req->client = this;
    mc_.access(std::move(req), memNow_);
}

bool
CoreModel::tryIssueLoad(Record &rec)
{
    if (demandMshrs() >= profile_.mshrs || !mc_.canAccept(domain_))
        return false;
    MshrEntry &entry = mshr_[rec.addr];
    entry.waiters.push_back(&rec);
    setState(rec, Record::State::MemPending);
    sendRead(rec.addr, rec.issueAt);
    return true;
}

void
CoreModel::issueStoreFetch(Addr addr)
{
    if (demandMshrs() >= profile_.mshrs || !mc_.canAccept(domain_)) {
        pendingStoreFetches_.push_back(addr);
        return;
    }
    MshrEntry &entry = mshr_[addr];
    entry.fillDirty = true;
    sendRead(addr);
}

void
CoreModel::issuePrefetches(Addr missAddr)
{
    const auto candidates = prefetcher_.onMiss(missAddr);
    for (Addr target : candidates) {
        const Addr line = lineOf(target);
        if (llc_.contains(line) || mshr_.count(line))
            continue;
        if (prefetchInflight_ >= 4)
            break;
        MshrEntry &entry = mshr_[line];
        entry.isPrefetch = true;
        ++prefetchInflight_;
        prefetchIssued_.inc();

        auto req = std::make_unique<MemRequest>();
        req->domain = domain_;
        req->type = ReqType::Prefetch;
        req->addr = line;
        req->client = this;
        mc_.access(std::move(req), memNow_);
    }
}

void
CoreModel::retire()
{
    unsigned budget = params_.retireWidth;
    bool stalled = false;
    while (budget > 0 && !rob_.empty()) {
        Record &head = rob_.front();
        // Gap instructions before the memory op retire freely.
        const uint64_t gapLeft =
            head.instrs > head.retiredOfThis + 1
                ? head.instrs - head.retiredOfThis - 1
                : 0;
        const uint64_t take = std::min<uint64_t>(budget, gapLeft);
        head.retiredOfThis += take;
        retired_ += take;
        budget -= static_cast<unsigned>(take);
        if (budget == 0)
            break;

        // The memory op itself.
        const bool ready =
            head.isStore || head.state == Record::State::Done ||
            (head.state == Record::State::LlcPending &&
             head.doneAt <= cpuCycles_);
        if (!ready) {
            stalled = true;
            break;
        }
        ++head.retiredOfThis;
        ++retired_;
        --budget;
        robInstrs_ -= head.instrs;
        if (head.state == Record::State::NeedsIssue)
            --needsIssue_; // defensive: a retirable head is never one
        rob_.pop_front();
    }
    if (stalled)
        robStallCycles_.inc();

    if (params_.progressInterval > 0) {
        while (retired_ >= nextProgressMark_ && nextProgressMark_ > 0) {
            timeline_.progress.push_back(cpuCycles_);
            nextProgressMark_ += params_.progressInterval;
        }
    }
}

void
CoreModel::memResponse(const MemRequest &req)
{
    wakeMemoValid_ = false;
    if (req.type == ReqType::Write)
        return;
    const Addr line = lineOf(req.addr);

    if (params_.captureTimeline && req.type == ReqType::Read)
        timeline_.recordService(req.arrival, req.completed);

    auto it = mshr_.find(line);
    if (it == mshr_.end())
        return; // e.g. a forwarded read that never allocated
    MshrEntry entry = std::move(it->second);
    if (entry.isPrefetch)
        --prefetchInflight_;
    mshr_.erase(it);

    const cache::FillResult fr = llc_.fill(
        line, entry.fillDirty,
        entry.isPrefetch && !entry.demandTouched);
    if (fr.evictedDirty)
        writebacks_.push_back(fr.writebackAddr);
    for (Record *rec : entry.waiters)
        setState(*rec, Record::State::Done);
}

void
CoreModel::memDropped(const MemRequest &req)
{
    wakeMemoValid_ = false;
    // A prefetch hint was discarded: clear its MSHR entry. Any demand
    // loads that merged with it must be re-issued as real reads.
    const Addr line = lineOf(req.addr);
    auto it = mshr_.find(line);
    if (it == mshr_.end())
        return;
    if (!it->second.isPrefetch) {
        // Already upgraded: a real demand read is in flight and will
        // complete this entry.
        return;
    }
    MshrEntry entry = std::move(it->second);
    --prefetchInflight_;
    mshr_.erase(it);
    for (Record *rec : entry.waiters)
        setState(*rec, Record::State::NeedsIssue);
    if (entry.fillDirty)
        pendingStoreFetches_.push_back(line);
}

void
CoreModel::drainWritebacks()
{
    while (!writebacks_.empty() &&
           mc_.canAccept(domain_, ReqType::Write)) {
        auto req = std::make_unique<MemRequest>();
        req->domain = domain_;
        req->type = ReqType::Write;
        req->addr = writebacks_.front();
        req->client = nullptr;
        writebacks_.pop_front();
        memWritebacks_.inc();
        mc_.access(std::move(req), memNow_);
    }
}

void
CoreModel::retryBlocked()
{
    while (!pendingStoreFetches_.empty()) {
        const Addr addr = pendingStoreFetches_.front();
        if (llc_.contains(addr) || mshr_.count(addr)) {
            pendingStoreFetches_.pop_front();
            continue;
        }
        if (demandMshrs() >= profile_.mshrs || !mc_.canAccept(domain_))
            break;
        pendingStoreFetches_.pop_front();
        issueStoreFetch(addr);
    }

    if (needsIssue_ == 0)
        return;
    for (auto &rec : rob_) {
        if (rec.state != Record::State::NeedsIssue)
            continue;
        auto it = mshr_.find(rec.addr);
        if (it != mshr_.end()) {
            if (it->second.isPrefetch) {
                // Still a hint; upgrade once a queue slot frees up.
                if (!mc_.canAccept(domain_))
                    break;
                it->second.isPrefetch = false;
                --prefetchInflight_;
                sendRead(rec.addr, rec.issueAt);
            }
            it->second.waiters.push_back(&rec);
            setState(rec, Record::State::MemPending);
            continue;
        }
        if (llc_.contains(rec.addr)) {
            setState(rec, Record::State::LlcPending);
            rec.doneAt = cpuCycles_ + params_.llcHitLatency;
            continue;
        }
        if (!tryIssueLoad(rec))
            break;
    }
}

void
CoreModel::registerStats(StatGroup &group) const
{
    group.add("loads", &loads_, "load instructions executed");
    group.add("stores", &stores_, "store instructions executed");
    group.add("llc_misses", &llcMisses_, "LLC misses");
    group.add("mem_reads", &memReads_, "memory reads issued");
    group.add("writebacks", &memWritebacks_, "writebacks issued");
    group.add("prefetch_issued", &prefetchIssued_,
              "prefetch requests sent to the controller");
    group.add("prefetch_useful", &prefetchUseful_,
              "prefetched lines touched by demand accesses");
    group.add("rob_stall_cycles", &robStallCycles_,
              "CPU cycles with retirement blocked on memory");
    group.addFormula(
        "ipc", [this] { return ipc(); },
        "instructions per CPU cycle over the measured region");
}

} // namespace memsec::cpu
