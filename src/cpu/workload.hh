/**
 * @file
 * The paper's workload suite as synthetic profiles.
 *
 * Profiles are calibrated to each benchmark's published character
 * (memory intensity, streaming vs pointer chasing, working-set size,
 * write ratio, memory-level parallelism), not to absolute SPEC
 * numbers. Mixes follow Section 6: rate mode for the single
 * benchmarks, mix1 = 2x {xalancbmk, soplex, mcf, omnetpp}, and
 * mix2 = 2x {milc, lbm, xalancbmk, zeusmp}.
 */

#ifndef MEMSEC_CPU_WORKLOAD_HH
#define MEMSEC_CPU_WORKLOAD_HH

#include <string>
#include <vector>

#include "cpu/trace.hh"

namespace memsec::cpu {

/** Look up a benchmark profile by name; fatal on unknown names. */
WorkloadProfile profileByName(const std::string &name);

/** All single-benchmark profile names known to the registry. */
std::vector<std::string> allProfileNames();

/**
 * Expand a workload name (a benchmark in rate mode, "mix1"/"mix2",
 * or a comma-separated list) to exactly `cores` per-core profiles.
 */
std::vector<WorkloadProfile> workloadMix(const std::string &name,
                                         unsigned cores);

/** The 12-entry evaluation suite of Section 6, in figure order. */
std::vector<std::string> evaluationSuite();

} // namespace memsec::cpu

#endif // MEMSEC_CPU_WORKLOAD_HH
