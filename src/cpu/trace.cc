#include "cpu/trace.hh"

#include <algorithm>

#include "leakage/secret.hh"
#include "util/logging.hh"
#include "util/serialize.hh"

namespace memsec::cpu {

SyntheticTraceGenerator::SyntheticTraceGenerator(
    const WorkloadProfile &profile, uint64_t seed)
    : profile_(profile), rng_(seed ^ 0xABCD1234FEED5678ull)
{
    fatal_if(profile.memRatio <= 0.0 || profile.memRatio > 1.0,
             "memRatio must be in (0,1], got {}", profile.memRatio);
    fatal_if(profile.footprintLines == 0, "footprint must be nonzero");
    if (profile.modWindowCycles > 0) {
        fatal_if(profile.modOffFactor <= 0.0 ||
                     profile.modOffFactor > 1.0,
                 "modOffFactor must be in (0,1], got {}",
                 profile.modOffFactor);
        // A pre-encoded symbol frame (leak.code.*) outranks the raw
        // seed-driven secret; both drive the same keying loop below.
        modSecret_ = profile.modSymbols.empty()
                         ? leakage::secretBits(profile.modSecretSeed,
                                               profile.modSecretBits)
                         : profile.modSymbols;
    }
    const unsigned streams = std::max(1u, profile.numStreams);
    // Start streams at seed-dependent offsets: co-scheduled copies of
    // one benchmark run different phases, so their streams must not
    // collide bank-for-bank.
    for (unsigned s = 0; s < streams; ++s)
        streamPos_.push_back(rng_.below(profile.footprintLines));
    recent_.assign(64, 0);
}

Addr
SyntheticTraceGenerator::pickLine()
{
    const uint64_t fp = profile_.footprintLines;

    if (!recent_.empty() && rng_.chance(profile_.reuseFraction)) {
        // Temporal reuse of a recently touched line.
        return recent_[rng_.below(recent_.size())];
    }

    uint64_t line;
    if (rng_.chance(profile_.streamFraction)) {
        const unsigned s = streamRr_++ % streamPos_.size();
        streamPos_[s] =
            (streamPos_[s] + profile_.strideLines) % fp;
        line = streamPos_[s];
    } else {
        line = rng_.below(fp);
    }
    recent_[recentIdx_++ % recent_.size()] = line * kLineBytes;
    return line * kLineBytes;
}

TraceRecord
SyntheticTraceGenerator::next()
{
    double ratio = profile_.memRatio;
    if (!modSecret_.empty()) {
        // Covert-channel sender: key intensity on the secret bit
        // governing the current modulation window. The window index
        // comes from the owning core's observeCycle() feed, so the
        // waveform is locked to simulated time rather than to record
        // count — queueing delays cannot stretch a bit.
        const size_t w = static_cast<size_t>(
            memCycle_ / profile_.modWindowCycles);
        if (modSecret_[w % modSecret_.size()] == 0)
            ratio *= profile_.modOffFactor;
        ratio = std::min(0.95, std::max(1e-6, ratio));
    } else if (profile_.phaseLength > 0) {
        if (phaseLeft_ == 0) {
            busyPhase_ = !busyPhase_;
            phaseLeft_ = 1 + rng_.geometric(
                             1.0 / static_cast<double>(
                                       profile_.phaseLength));
        }
        --phaseLeft_;
        ratio *= busyPhase_ ? profile_.phaseHighFactor
                            : profile_.phaseLowFactor;
        ratio = std::min(0.95, std::max(1e-6, ratio));
    }

    TraceRecord rec;
    rec.gap = static_cast<uint32_t>(
        std::min<uint64_t>(rng_.geometric(ratio), 1u << 20));
    rec.isStore = rng_.chance(profile_.storeFraction);
    rec.addr = pickLine();
    return rec;
}

void
SyntheticTraceGenerator::saveState(Serializer &s) const
{
    s.section("synthtrace");
    uint64_t rngState[4];
    rng_.getState(rngState);
    for (uint64_t w : rngState)
        s.putU64(w);
    s.putU64(streamPos_.size());
    for (uint64_t p : streamPos_)
        s.putU64(p);
    s.putU32(streamRr_);
    s.putU64(recent_.size());
    for (Addr a : recent_)
        s.putU64(a);
    s.putU64(recentIdx_);
    s.putBool(busyPhase_);
    s.putU64(phaseLeft_);
    s.putU64(memCycle_);
}

void
SyntheticTraceGenerator::restoreState(Deserializer &d)
{
    d.section("synthtrace");
    uint64_t rngState[4];
    for (uint64_t &w : rngState)
        w = d.getU64();
    rng_.setState(rngState);
    if (d.getU64() != streamPos_.size())
        d.fail("trace stream count mismatch");
    for (uint64_t &p : streamPos_)
        p = d.getU64();
    streamRr_ = d.getU32();
    if (d.getU64() != recent_.size())
        d.fail("trace reuse-ring size mismatch");
    for (Addr &a : recent_)
        a = d.getU64();
    recentIdx_ = d.getU64();
    busyPhase_ = d.getBool();
    phaseLeft_ = d.getU64();
    memCycle_ = d.getU64();
}

} // namespace memsec::cpu
