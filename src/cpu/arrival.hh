/**
 * @file
 * Open-loop cloud-traffic arrival generator.
 *
 * Closed-loop trace cores issue a new request only when the previous
 * one retires, so controller queueing throttles the offered load and
 * tail latencies self-censor. Cloud front-ends do the opposite: huge
 * client populations issue independently of service, and the SLA
 * metric is the latency *percentile* under that offered load
 * ("Memory Controller Design Under Cloud Workloads", PAPERS.md).
 *
 * ArrivalTraceGenerator models that population behind the existing
 * TraceGenerator interface so the core model, idle-skip kernel,
 * checkpointing, and the leakage harness all keep working unchanged:
 *
 *  - a seeded arrival process schedules request issue times on the
 *    DRAM-bus clock: Poisson (superposition of any client count is
 *    itself Poisson, so one aggregate exponential clock is exact),
 *    or two-state MMPP burst/idle sources (min(clients, 64) state
 *    machines splitting the rate), optionally shaped by a diurnal
 *    sinusoidal intensity envelope sampled by thinning;
 *  - next() returns an arrival record (gap 0, issueAt stamped with
 *    the scheduled cycle) whenever one is due at the last observed
 *    cycle, else a filler record (kFillerGap non-memory instructions
 *    plus a store to one hot line that stays LLC-resident) so the
 *    ROB keeps retiring and re-polls the process roughly once per
 *    bus cycle;
 *  - the issueAt stamp rides through CoreModel into
 *    MemRequest::issued, so per-domain latency histograms measure
 *    client-observed latency including any client-side queueing when
 *    the ROB backs up under overload (the ROB acts as the finite
 *    client buffer; arrivals delayed past their stamp are issued
 *    late but accounted from the stamp).
 *
 * Determinism: all randomness comes from one Rng seeded from
 * (profile, core seed); records depend only on the pull sequence and
 * the observed cycle values, both identical under naive ticking and
 * idle-skip (same argument as the modulated sender, trace.hh).
 */

#ifndef MEMSEC_CPU_ARRIVAL_HH
#define MEMSEC_CPU_ARRIVAL_HH

#include <cstdint>
#include <vector>

#include "cpu/trace.hh"
#include "sim/types.hh"
#include "util/random.hh"

namespace memsec::cpu {

/** Open-loop generator driven by a seeded arrival process. */
class ArrivalTraceGenerator : public TraceGenerator
{
  public:
    /** Filler gap: ~one record consumed per bus cycle at the default
     *  retire width (4) x cpu multiplier (4). Self-regulating for
     *  other core shapes — fillers retire freely, so dispatch always
     *  re-polls within a few cycles. */
    static constexpr uint32_t kFillerGap = 15;

    /** MMPP state machines are capped; beyond this the configured
     *  client count is modelled by splitting the aggregate rate
     *  across the capped set (burstiness of the superposition
     *  saturates well before 64 sources). */
    static constexpr unsigned kMaxMmppSources = 64;

    ArrivalTraceGenerator(const WorkloadProfile &profile, uint64_t seed);

    TraceRecord next() override;
    void observeCycle(Cycle now) override { memCycle_ = now; }

    void saveState(Serializer &s) const override;
    void restoreState(Deserializer &d) override;

    /** Arrival records emitted so far (fillers excluded). */
    uint64_t arrivalsEmitted() const { return arrivals_; }

    const WorkloadProfile &profile() const { return profile_; }

  private:
    /** One independent burst/idle client aggregate. */
    struct Source
    {
        bool burst = true;
        Cycle nextToggle = kNoCycle; ///< kNoCycle: no state machine
        Cycle nextArrival = kNoCycle;
    };

    double envelope(double t) const;
    double ratePerCycle(const Source &s) const;
    void toggle(Source &s);
    /** Next arrival strictly after `from` for this source. */
    Cycle drawArrival(Source &s, Cycle from);
    Addr pickLine();

    WorkloadProfile profile_;
    Rng rng_;
    bool mmpp_ = false;
    double perSourceRate_ = 0.0; ///< base per-cycle rate per source
    std::vector<Source> sources_;
    std::vector<uint64_t> streamPos_;
    unsigned streamRr_ = 0;
    std::vector<Addr> recent_;
    size_t recentIdx_ = 0;
    Cycle memCycle_ = 0;
    uint64_t arrivals_ = 0;
};

} // namespace memsec::cpu

#endif // MEMSEC_CPU_ARRIVAL_HH
