/**
 * @file
 * Trace file I/O.
 *
 * The original evaluation replays SPEC regions; this repository ships
 * synthetic generators, but downstream users will want to feed their
 * own traces. The format is USIMM-flavoured text, one record per
 * line:
 *
 *     <gap> R|W <hex-address>
 *
 * where <gap> is the number of non-memory instructions preceding the
 * operation. '#' starts a comment. A FileTraceGenerator replays a
 * trace (looping at EOF, like USIMM); recordTrace() samples any
 * generator to a file, so synthetic workloads can be exported,
 * inspected, or replayed bit-identically elsewhere.
 */

#ifndef MEMSEC_CPU_TRACE_FILE_HH
#define MEMSEC_CPU_TRACE_FILE_HH

#include <string>
#include <vector>

#include "cpu/trace.hh"

namespace memsec::cpu {

/** Replays a trace file, looping at end-of-file. */
class FileTraceGenerator : public TraceGenerator
{
  public:
    /** Parse the whole file up front; fatal on malformed lines. */
    explicit FileTraceGenerator(const std::string &path);

    /** Build directly from records (testing / programmatic use). */
    explicit FileTraceGenerator(std::vector<TraceRecord> records);

    TraceRecord next() override;

    size_t size() const { return records_.size(); }

    /** Times the trace has wrapped back to the start. */
    uint64_t loops() const { return loops_; }

  private:
    std::vector<TraceRecord> records_;
    size_t pos_ = 0;
    uint64_t loops_ = 0;
};

/** Where and why trace parsing failed (line is 1-based). */
struct TraceParseError
{
    int line = 0;
    std::string message;

    /** "trace line N: message". */
    std::string toString() const;
};

/**
 * Parse trace text (the file format above). Returns false and fills
 * `err` on the first malformed record: truncated lines, bad access
 * kinds, unparsable addresses, and garbage where the gap should be
 * are all rejected rather than silently skipped.
 */
bool tryParseTrace(const std::string &text, std::vector<TraceRecord> &out,
                   TraceParseError &err);

/** tryParseTrace(); fatal on bad input (CLI entry points only). */
std::vector<TraceRecord> parseTrace(const std::string &text);

/** Render records in the file format. */
std::string formatTrace(const std::vector<TraceRecord> &records);

/** Sample `count` records from `gen` and write them to `path`. */
void recordTrace(TraceGenerator &gen, size_t count,
                 const std::string &path);

} // namespace memsec::cpu

#endif // MEMSEC_CPU_TRACE_FILE_HH
