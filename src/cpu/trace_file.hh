/**
 * @file
 * Trace file I/O.
 *
 * The original evaluation replays SPEC regions; this repository ships
 * synthetic generators, but downstream users will want to feed their
 * own traces. The format is USIMM-flavoured text, one record per
 * line:
 *
 *     <gap> R|W <hex-address>
 *
 * where <gap> is the number of non-memory instructions preceding the
 * operation. '#' starts a comment. A FileTraceGenerator replays a
 * trace (looping at EOF, like USIMM); recordTrace() samples any
 * generator to a file, so synthetic workloads can be exported,
 * inspected, or replayed bit-identically elsewhere.
 *
 * Long campaigns replay traces far too large for text parsing, so a
 * binary sibling format exists (see docs/CHECKPOINT.md):
 *
 *     "MSTRACE1"            8-byte magic
 *     u32 version           currently 1
 *     u32 recordsPerBlock   records per CRC block (last may be short)
 *     u64 recordCount       total records in the file
 *     blocks: { u32 count, u32 crc32c(payload),
 *               count x { u64 addr, u32 gap, u8 isStore, u8 pad[3] } }
 *
 * All fields little-endian. Each block's payload is independently
 * CRC32C-checksummed so a single flipped bit is caught at load time
 * and reported with its byte offset. FileTraceGenerator sniffs the
 * magic and accepts either format; text stays the debug view.
 */

#ifndef MEMSEC_CPU_TRACE_FILE_HH
#define MEMSEC_CPU_TRACE_FILE_HH

#include <string>
#include <vector>

#include "cpu/trace.hh"

namespace memsec::cpu {

/** Replays a trace file, looping at end-of-file. */
class FileTraceGenerator : public TraceGenerator
{
  public:
    /** Parse the whole file up front; fatal on malformed lines. */
    explicit FileTraceGenerator(const std::string &path);

    /** Build directly from records (testing / programmatic use). */
    explicit FileTraceGenerator(std::vector<TraceRecord> records);

    TraceRecord next() override;

    void saveState(Serializer &s) const override;
    void restoreState(Deserializer &d) override;

    size_t size() const { return records_.size(); }

    /** Times the trace has wrapped back to the start. */
    uint64_t loops() const { return loops_; }

  private:
    std::vector<TraceRecord> records_;
    size_t pos_ = 0;
    uint64_t loops_ = 0;
};

/** Where and why trace parsing failed (line is 1-based). */
struct TraceParseError
{
    int line = 0;
    /** Byte offset into the input where the bad record starts
     *  (binary traces report the offending block/field here). */
    uint64_t byteOffset = 0;
    std::string message;

    /** "trace line N (byte B): message". */
    std::string toString() const;
};

/**
 * Parse trace text (the file format above). Returns false and fills
 * `err` on the first malformed record: truncated lines, bad access
 * kinds, unparsable addresses, and garbage where the gap should be
 * are all rejected rather than silently skipped.
 */
bool tryParseTrace(const std::string &text, std::vector<TraceRecord> &out,
                   TraceParseError &err);

/** tryParseTrace(); fatal on bad input (CLI entry points only). */
std::vector<TraceRecord> parseTrace(const std::string &text);

/** Render records in the file format. */
std::string formatTrace(const std::vector<TraceRecord> &records);

/** True if `bytes` starts with the binary-trace magic. */
bool isBinaryTrace(const std::string &bytes);

/** Render records in the binary format described above. */
std::string formatBinaryTrace(const std::vector<TraceRecord> &records);

/**
 * Parse a binary trace. Returns false and fills `err` (line stays 0;
 * byteOffset points at the corrupt header field or block) on short
 * reads, version mismatches, record-count disagreements, and CRC
 * failures.
 */
bool tryParseBinaryTrace(const std::string &bytes,
                         std::vector<TraceRecord> &out,
                         TraceParseError &err);

/**
 * Sample `count` records from `gen` and write them to `path`;
 * `binary` selects the binary format over text.
 */
void recordTrace(TraceGenerator &gen, size_t count,
                 const std::string &path, bool binary = false);

} // namespace memsec::cpu

#endif // MEMSEC_CPU_TRACE_FILE_HH
