/**
 * @file
 * Sandbox prefetcher (Pugsley et al., HPCA 2014), as used by the
 * paper's Section 5.2 prefetch optimisation.
 *
 * Candidate offset prefetchers are evaluated in a "sandbox": their
 * would-be prefetches are scored against the subsequent miss stream
 * without issuing anything. Candidates that score above a threshold
 * within an evaluation period are promoted and generate real
 * prefetch requests (up to a configurable degree).
 */

#ifndef MEMSEC_CPU_PREFETCHER_HH
#define MEMSEC_CPU_PREFETCHER_HH

#include <vector>

#include "sim/types.hh"
#include "stats/stats.hh"

namespace memsec {
class Serializer;
class Deserializer;
} // namespace memsec

namespace memsec::cpu {

/** Offset-candidate sandbox prefetcher. */
class SandboxPrefetcher
{
  public:
    struct Params
    {
        std::vector<int> candidateOffsets =
            {1, 2, 3, 4, 6, 8, -1, -2, -3, -4}; ///< in cache lines
        unsigned evalPeriod = 256;  ///< misses per sandbox round
        unsigned scoreThreshold = 96; ///< promote at this score
        unsigned degree = 2;        ///< max prefetches per miss
    };

    explicit SandboxPrefetcher(const Params &params);
    SandboxPrefetcher() : SandboxPrefetcher(Params{}) {}

    /**
     * Observe a demand miss; returns the line addresses to prefetch
     * (empty while no candidate is promoted).
     */
    std::vector<Addr> onMiss(Addr addr);

    /** Currently promoted offsets (for tests/inspection). */
    const std::vector<int> &activeOffsets() const { return active_; }

    const Counter &issuedCandidates() const { return issued_; }

    void saveState(Serializer &s) const;
    void restoreState(Deserializer &d);

  private:
    Params params_;
    std::vector<unsigned> scores_;
    std::vector<Addr> recentMisses_;
    size_t recentIdx_ = 0;
    unsigned evalCount_ = 0;
    std::vector<int> active_;
    Counter issued_;
};

} // namespace memsec::cpu

#endif // MEMSEC_CPU_PREFETCHER_HH
