/**
 * @file
 * Instruction-trace records and synthetic trace generation.
 *
 * The original evaluation replays SPEC CPU2006 / NPB regions under
 * Simics; without those inputs we synthesise per-benchmark traces
 * whose memory behaviour (intensity, spatial streams, working-set
 * size, reuse, store ratio, memory-level parallelism) is set per
 * profile. Generators are deterministic given (profile, seed).
 */

#ifndef MEMSEC_CPU_TRACE_HH
#define MEMSEC_CPU_TRACE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sim/types.hh"
#include "util/random.hh"

namespace memsec {
class Serializer;
class Deserializer;
} // namespace memsec

namespace memsec::cpu {

/** One trace step: `gap` non-memory instructions, then a memory op. */
struct TraceRecord
{
    uint32_t gap = 0;
    bool isStore = false;
    Addr addr = 0;
    /**
     * Open-loop issue stamp: the DRAM-bus cycle at which the
     * arrival process scheduled this request (cpu/arrival.hh), or
     * kNoCycle for closed-loop records. Carried through the core
     * into MemRequest::issued so per-domain latency histograms
     * measure client-observed latency (queueing included) rather
     * than controller-observed latency.
     */
    Cycle issueAt = kNoCycle;
};

/** Abstract instruction/memory trace source. */
class TraceGenerator
{
  public:
    virtual ~TraceGenerator() = default;

    /** Produce the next record. Traces are infinite. */
    virtual TraceRecord next() = 0;

    /**
     * Inform the generator of the current DRAM-bus cycle. Called by
     * the owning core once per executed tick, before any next()
     * pulls of that tick; generators whose behaviour is keyed on
     * simulated time (the covert-channel sender) read the latest
     * observed cycle in next(). The default generator ignores it.
     * Ticks skipped by the idle-skip kernel never dispatch records,
     * so missing their observations cannot change any next() result
     * (proven by tests/test_fastforward_diff.cc).
     */
    virtual void observeCycle(Cycle now) { (void)now; }

    /**
     * Checkpoint the generator's mutable state (RNG streams, replay
     * position, phase machinery). Stateless generators may keep the
     * no-op defaults; stateful ones must override both so a restored
     * run replays the exact same record sequence.
     */
    virtual void saveState(Serializer &s) const { (void)s; }
    virtual void restoreState(Deserializer &d) { (void)d; }
};

/** Tunable memory behaviour of one synthetic benchmark. */
struct WorkloadProfile
{
    std::string name = "unnamed";
    /** Fraction of instructions that are memory operations. */
    double memRatio = 0.2;
    /** Fraction of memory operations that are stores. */
    double storeFraction = 0.3;
    /** Working set in cache lines. */
    uint64_t footprintLines = 1 << 17;
    /** Fraction of accesses following sequential/strided streams. */
    double streamFraction = 0.5;
    /** Number of concurrent streams. */
    unsigned numStreams = 4;
    /** Stream stride in cache lines. */
    unsigned strideLines = 1;
    /** Fraction of accesses that re-touch a recently used line
     *  (drives LLC hits / temporal locality). */
    double reuseFraction = 0.5;
    /** Maximum outstanding misses the core can sustain (MLP). */
    unsigned mshrs = 8;

    /**
     * Phase behaviour: real benchmarks alternate memory-intensive
     * and compute bursts; this is what creates both queueing
     * pressure and idle (dummy) slots under shaping. Mean phase
     * length in trace records; 0 disables phases.
     */
    uint64_t phaseLength = 0;
    /** memRatio multiplier during quiet phases. */
    double phaseLowFactor = 0.1;
    /** memRatio multiplier during busy phases. */
    double phaseHighFactor = 1.6;

    /**
     * Covert-channel sender modulation (the empirical leakage
     * meter, see docs/LEAKAGE.md). When `modWindowCycles` > 0 the
     * generator keys its memory intensity on a seed-driven secret
     * bitstring: during a window whose secret bit is 1 it runs at
     * full `memRatio`; during a 0 window the ratio is multiplied by
     * `modOffFactor`. Windows are `modWindowCycles` DRAM-bus cycles
     * long and the secret repeats cyclically. Modulation replaces
     * the phase behaviour above.
     */
    uint64_t modWindowCycles = 0;
    uint64_t modSecretSeed = 1;
    unsigned modSecretBits = 32;
    double modOffFactor = 0.02;
    /**
     * Encoded symbol frame transmitted cyclically instead of the raw
     * secret (leakage/codec.hh: preamble pilots + coded payload).
     * Empty means the seed-driven secret bits are the symbols — the
     * pre-codec sender. Populated by harness/experiment.cc from the
     * leak.code.* keys so sender and analyzer share one frame.
     */
    std::vector<uint8_t> modSymbols;

    /**
     * Non-empty: replay this trace file (see cpu/trace_file.hh)
     * instead of synthesising; the behavioural fields above are then
     * ignored except `mshrs`.
     */
    std::string tracePath;

    /**
     * Open-loop arrival process ("" or "none" keeps the closed-loop
     * synthetic generator; "poisson"/"mmpp" switch the core to an
     * ArrivalTraceGenerator, cpu/arrival.hh). Populated by
     * harness/experiment.cc from the traffic.* keys; the address-
     * behaviour fields above (footprint, streams, reuse, stores)
     * still shape what the arrivals touch.
     */
    std::string trafficProcess;
    /** Mean request rate per 1000 DRAM-bus cycles (all clients). */
    double trafficRate = 8.0;
    /** Simulated clients multiplexed onto this domain. Poisson
     *  superposes exactly (one aggregate process regardless of
     *  count); MMPP instantiates min(clients, 64) burst/idle state
     *  machines splitting the rate evenly. */
    unsigned trafficClients = 1;
    /** MMPP burst-state rate multiplier (x trafficRate). */
    double trafficBurstFactor = 8.0;
    /** MMPP idle-state rate multiplier (x trafficRate). */
    double trafficIdleFactor = 0.25;
    /** Mean MMPP burst duration in cycles (exponential). */
    double trafficBurstLen = 2000.0;
    /** Mean MMPP idle duration in cycles (exponential). */
    double trafficIdleLen = 6000.0;
    /** Diurnal intensity envelope period in cycles; 0 disables. */
    double trafficDiurnalPeriod = 0.0;
    /** Envelope amplitude in [0, 1): rate x (1 + amp sin(2pi t/T)). */
    double trafficDiurnalAmp = 0.0;
};

/** Profile-driven synthetic generator. */
class SyntheticTraceGenerator : public TraceGenerator
{
  public:
    SyntheticTraceGenerator(const WorkloadProfile &profile, uint64_t seed);

    TraceRecord next() override;
    void observeCycle(Cycle now) override { memCycle_ = now; }

    void saveState(Serializer &s) const override;
    void restoreState(Deserializer &d) override;

    const WorkloadProfile &profile() const { return profile_; }

  private:
    Addr pickLine();

    WorkloadProfile profile_;
    Rng rng_;
    std::vector<uint64_t> streamPos_;
    unsigned streamRr_ = 0;
    std::vector<Addr> recent_;
    size_t recentIdx_ = 0;
    bool busyPhase_ = true;
    uint64_t phaseLeft_ = 0;
    Cycle memCycle_ = 0;
    /** Secret bitstring when the profile modulates (else empty). */
    std::vector<uint8_t> modSecret_;
};

} // namespace memsec::cpu

#endif // MEMSEC_CPU_TRACE_HH
