#include "sched/tp.hh"

#include <algorithm>

#include "util/logging.hh"
#include "util/serialize.hh"

namespace memsec::sched {

using mem::MemRequest;
using mem::ReqType;
using dram::CmdType;
using dram::Command;

TpScheduler::TpScheduler(mem::MemoryController &mc, const Params &params)
    : Scheduler(mc), params_(params)
{
    fatal_if(params_.turnLength == 0, "TP turn length must be nonzero");

    sharedBanks_ =
        mc.addressMap().partition() == mem::Partition::None;
    const core::PipelineSolver solver(dram_.timing());
    sol_ = solver.solveBest(sharedBanks_ ? core::PartitionLevel::None
                                         : core::PartitionLevel::Bank);
    fatal_if(!sol_.feasible, "no feasible in-turn TP pipeline");
    l_ = sol_.l;

    // Per-type footprint: cycles from the slot's ACT until every
    // piece of shared state is clean (and, with shared banks, the
    // bank is precharged again).
    const auto &tp = dram_.timing();
    const unsigned dataReadDone = tp.rcd + tp.cas + tp.burst + tp.rtrs;
    const unsigned dataWriteDone = tp.rcd + tp.cwd + tp.burst + tp.rtrs;
    if (sharedBanks_) {
        const unsigned readPre =
            std::max(tp.rc, tp.rcd + tp.rtp + tp.rp);
        footRead_ = std::max(dataReadDone, readPre);
        footWrite_ = tp.rcd + tp.cwd + tp.burst + tp.wr + tp.rp;
    } else {
        footRead_ = dataReadDone;
        footWrite_ =
            std::max(dataWriteDone, tp.rcd + tp.wr2rd());
    }
    footRead_ += params_.extraDead;
    footWrite_ += params_.extraDead;
    fatal_if(footWrite_ > params_.turnLength ||
                 footRead_ > params_.turnLength,
             "TP turn length {} shorter than a transaction footprint "
             "({}/{})",
             params_.turnLength, footRead_, footWrite_);

    const auto &geo = dram_.geometry();
    plannedBankFree_.assign(
        static_cast<size_t>(geo.ranksPerChannel) * geo.banksPerRank, 0);
}

bool
TpScheduler::enableCompiledReplay(const CompiledReplayOptions &opts)
{
    if (opts.mode == CompiledMode::Off || compiledActive_)
        return false;
    panic_if(!planned_.empty(), "enableCompiledReplay after ticking");
    // Replay computes event cycles as `now + offset`; the solver may
    // legally return a reference with negative offsets, which the
    // interpreted arithmetic never sees for TP but would wrap here.
    const auto &off = sol_.offsets;
    if (off.actRead < 0 || off.casRead < 0 || off.actWrite < 0 ||
        off.casWrite < 0)
        return false;
    const auto &tp = dram_.timing();
    completeReadDelta_ = tp.cas + tp.burst;
    completeWriteDelta_ = tp.cwd + tp.burst;
    ring_ = std::make_unique<ReplayRing<PlannedOp>>(opts.ringCapacity);
    compiledMode_ = opts.mode;
    compiledActive_ = true;
    return true;
}

void
TpScheduler::disableCompiled()
{
    compiledActive_ = false;
    if (ring_)
        ring_->clear();
}

void
TpScheduler::enqueueReplay(PlannedOp &op, Cycle now)
{
    const Cycle completeAt =
        op.req->client
            ? op.casAt +
                  (op.write ? completeWriteDelta_ : completeReadDelta_)
            : kNoCycle;
    if (ring_->push({op.actAt, kNoCycle, &op, false}) &&
        ring_->push({op.casAt, completeAt, &op, true}))
        return;
    // Ring exhausted: structured, recoverable. Drop the pair and let
    // the interpreted issueDue() resume from the planned-op flags.
    ++compiledFallbacks_;
    mc_.recordError(
        {now, "pool-exhausted",
         "compiled replay ring capacity " +
             std::to_string(ring_->capacity()) +
             " exhausted; falling back to interpreted scheduling"});
    disableCompiled();
}

void
TpScheduler::applyUpTo(Cycle now)
{
    if (!compiledActive_)
        return;
    while (!ring_->empty() && ring_->front().at <= now) {
        const ReplayEvent<PlannedOp> ev = ring_->front();
        ring_->pop();
        PlannedOp &op = *ev.op;
        panic_if(!op.req, "compiled replay lost its request");
        if (!ev.cas) {
            Command act{CmdType::Act, op.req->loc.rank,
                        op.req->loc.bank, op.req->loc.row, op.req->id,
                        false};
            dram_.issue(act, ev.at);
            op.actIssued = true;
        } else {
            const CmdType type = op.write ? CmdType::WrA : CmdType::RdA;
            Command cas{type, op.req->loc.rank, op.req->loc.bank,
                        op.req->loc.row, op.req->id, false};
            const dram::IssueResult res = dram_.issue(cas, ev.at);
            panic_if(compiledMode_ == CompiledMode::Verify &&
                         ev.completeAt != kNoCycle &&
                         res.dataEnd != ev.completeAt,
                     "compiled completion mispredicted: device {} vs "
                     "predicted {}",
                     res.dataEnd, ev.completeAt);
            mc_.noteBurst(false);
            mc_.finishRequest(std::move(op.req), res.dataEnd);
        }
        ++compiledCmds_;
    }
}

DomainId
TpScheduler::activeDomain(Cycle now) const
{
    return static_cast<DomainId>((now / params_.turnLength) %
                                 mc_.numDomains());
}

Cycle
TpScheduler::turnEnd(Cycle now) const
{
    return (now / params_.turnLength + 1) * params_.turnLength;
}

bool
TpScheduler::bankFree(unsigned rank, unsigned bank, Cycle actAt) const
{
    const unsigned nb = dram_.geometry().banksPerRank;
    return actAt >=
           plannedBankFree_[static_cast<size_t>(rank) * nb + bank];
}

void
TpScheduler::reserveBank(unsigned rank, unsigned bank, Cycle actAt,
                         Cycle casAt, bool write)
{
    const auto &tp = dram_.timing();
    const Cycle preDone =
        write ? casAt + tp.cwd + tp.burst + tp.wr + tp.rp
              : std::max(casAt + tp.rtp + tp.rp, actAt + tp.rc);
    const unsigned nb = dram_.geometry().banksPerRank;
    plannedBankFree_[static_cast<size_t>(rank) * nb + bank] =
        std::max(actAt + tp.rc, preDone);
}

void
TpScheduler::decideSlot(Cycle now)
{
    const DomainId domain = activeDomain(now);
    const Cycle tE = turnEnd(now);
    const auto &off = sol_.offsets;

    auto eligible = [&](const MemRequest &r) {
        const bool w = r.type == ReqType::Write;
        // The whole transaction must fit before the turn end...
        if (now + (w ? footWrite_ : footRead_) > tE)
            return false;
        // ...and respect same-bank reuse against earlier slots.
        return bankFree(r.loc.rank, r.loc.bank,
                        now + (w ? off.actWrite : off.actRead));
    };

    mem::TransactionQueue &q = mc_.queue(domain);
    MemRequest *r = q.findOldest(eligible);
    if (!r) {
        idleSlots_.inc();
        return;
    }
    const bool w = r->type == ReqType::Write;
    PlannedOp op;
    op.write = w;
    op.actAt = now + (w ? off.actWrite : off.actRead);
    op.casAt = now + (w ? off.casWrite : off.casRead);
    op.req = q.take(r);
    op.req->firstCommand = op.actAt;
    served_.inc();
    reserveBank(op.req->loc.rank, op.req->loc.bank, op.actAt, op.casAt,
                w);
    planned_.push_back(std::move(op));
    PlannedOp &queued = planned_.back();
    // Compiled-energy intervals are fed at decision time for every op
    // whenever the accountant is armed, replay-active or not: after a
    // mid-run fallback the device still derives row residency from
    // these spans.
    if (dram_.compiledEnergy().active())
        dram_.compiledEnergy().addInterval(queued.req->loc.rank,
                                           queued.actAt, queued.casAt);
    if (compiledActive_)
        enqueueReplay(queued, now);
}

void
TpScheduler::issueDue(Cycle now)
{
    for (auto &op : planned_) {
        if (!op.actIssued && op.actAt == now) {
            Command act{CmdType::Act, op.req->loc.rank, op.req->loc.bank,
                        op.req->loc.row, op.req->id, false};
            dram_.issue(act, now);
            op.actIssued = true;
            return;
        }
        if (op.actIssued && op.req && op.casAt == now) {
            const CmdType type = op.write ? CmdType::WrA : CmdType::RdA;
            Command cas{type, op.req->loc.rank, op.req->loc.bank,
                        op.req->loc.row, op.req->id, false};
            const dram::IssueResult res = dram_.issue(cas, now);
            mc_.noteBurst(false);
            mc_.finishRequest(std::move(op.req), res.dataEnd);
            return;
        }
        if (op.actAt > now && op.casAt > now)
            break;
    }
}

void
TpScheduler::tick(Cycle now)
{
    if (now % params_.turnLength == 0)
        turns_.inc();
    // Slots are anchored to the turn start so every turn offers the
    // same deterministic issue opportunities.
    if ((now % params_.turnLength) % l_ == 0)
        decideSlot(now);
    if (compiledActive_)
        applyUpTo(now); // ops this decide may have cycles == now
    else
        issueDue(now);
    while (!planned_.empty() && !planned_.front().req)
        planned_.pop_front();
}

Cycle
TpScheduler::nextWakeCycle(Cycle now) const
{
    const Cycle next = now + 1;
    const Cycle turn = params_.turnLength;
    // Next in-turn slot; the turn boundary is itself a slot (and the
    // turn counter ticks there), so it caps the candidate.
    const Cycle turnStart = next / turn * turn;
    const Cycle inTurn = next - turnStart;
    Cycle wake = turnStart + (inTurn + l_ - 1) / l_ * l_;
    if (wake >= turnStart + turn)
        wake = turnStart + turn;
    if (compiledActive_) {
        // Decisions happen at slot/turn boundaries; queued commands
        // apply lazily, so only a client-visible completion forces an
        // executed cycle in between.
        wake = std::min(wake, ring_->minCompletion());
        return std::max(wake, next);
    }
    for (const auto &op : planned_) {
        if (!op.actIssued) {
            if (op.actAt >= next)
                wake = std::min(wake, op.actAt);
        } else if (op.req && op.casAt >= next) {
            wake = std::min(wake, op.casAt);
        }
    }
    return std::max(wake, next);
}

void
TpScheduler::registerStats(StatGroup &group) const
{
    group.add("turns", &turns_, "TP turns elapsed");
    group.add("served", &served_, "transactions serviced");
    group.add("idle_slots", &idleSlots_,
              "turn slots with no eligible transaction");
}

void
TpScheduler::saveState(Serializer &s) const
{
    s.section("tp");
    s.putU64(planned_.size());
    for (const PlannedOp &op : planned_) {
        s.putBool(op.req != nullptr);
        if (op.req)
            mem::serializeRequest(s, *op.req);
        s.putBool(op.write);
        s.putU64(op.actAt);
        s.putU64(op.casAt);
        s.putBool(op.actIssued);
    }
    s.putU64(plannedBankFree_.size());
    for (Cycle c : plannedBankFree_)
        s.putU64(c);
    turns_.saveState(s);
    served_.saveState(s);
    idleSlots_.saveState(s);
}

void
TpScheduler::restoreState(Deserializer &d)
{
    d.section("tp");
    planned_.clear();
    const uint64_t nops = d.getU64();
    for (uint64_t i = 0; i < nops; ++i) {
        PlannedOp op;
        if (d.getBool()) {
            bool hadClient = false;
            op.req = mem::deserializeRequest(d, &hadClient);
            if (hadClient)
                op.req->client = mc_.clientFor(op.req->domain);
        }
        op.write = d.getBool();
        op.actAt = d.getU64();
        op.casAt = d.getU64();
        op.actIssued = d.getBool();
        planned_.push_back(std::move(op));
    }
    if (d.getU64() != plannedBankFree_.size())
        d.fail("planned bank count mismatch");
    for (Cycle &c : plannedBankFree_)
        c = d.getU64();
    turns_.restoreState(d);
    served_.restoreState(d);
    idleSlots_.restoreState(d);

    // Replay state is derived, never serialized: rebuild the event
    // ring and the energy intervals from the restored plan. This is
    // what makes checkpoints portable across sim.compiled modes.
    if (compiledActive_) {
        ring_->clear();
        if (dram_.compiledEnergy().active())
            dram_.compiledEnergy().clearIntervals();
        bool ok = true;
        for (PlannedOp &op : planned_) {
            if (!op.req)
                continue; // CAS already applied; interval is all past
            if (dram_.compiledEnergy().active())
                dram_.compiledEnergy().addInterval(op.req->loc.rank,
                                                   op.actAt, op.casAt);
            const Cycle completeAt =
                op.req->client
                    ? op.casAt + (op.write ? completeWriteDelta_
                                           : completeReadDelta_)
                    : kNoCycle;
            if (!op.actIssued)
                ok = ok && ring_->push({op.actAt, kNoCycle, &op, false});
            ok = ok && ring_->push({op.casAt, completeAt, &op, true});
        }
        if (!ok) {
            ++compiledFallbacks_;
            disableCompiled();
        }
    }
}

} // namespace memsec::sched
