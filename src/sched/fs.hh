/**
 * @file
 * Fixed-Service (FS) scheduler family — the paper's contribution.
 *
 * Every security domain is shaped to one closed-row transaction per
 * assigned slot; slots recur every l cycles (from the pipeline
 * solver) and cycle round-robin over domains, so the frame length is
 * Q = slots * l. A domain with nothing pending gets a dummy operation
 * (or a prefetch, or a power-down, depending on the enabled
 * optimisations). Because the slot template is fixed, every command
 * lands in a precomputed conflict-free cycle; the DRAM model's
 * independent TimingChecker verifies this on every run.
 *
 * Modes:
 *  - RankPart:  l = 7 (fixed periodic data), adjacent slots in
 *               different ranks (Section 3.1)
 *  - BankPart:  l = 15 (fixed periodic RAS), adjacent slots in
 *               different banks (Section 4.2)
 *  - NoPart:    l = 43, any slot may reuse any bank (Section 4.3)
 *  - TripleAlt: l = 15 with rotating bank-id-mod-3 groups; same-group
 *               slots are >= 3*l >= 45 cycles apart, satisfying the
 *               43-cycle same-bank reuse bound (Section 4.3)
 */

#ifndef MEMSEC_SCHED_FS_HH
#define MEMSEC_SCHED_FS_HH

#include <deque>
#include <vector>

#include "core/pipeline_solver.hh"
#include "sched/scheduler.hh"
#include "util/random.hh"

namespace memsec::sched {

/** Spatial-partitioning mode of the FS pipeline. */
enum class FsMode : uint8_t { RankPart, BankPart, NoPart, TripleAlt };

const char *fsModeName(FsMode m);

/** Slot-table Fixed-Service scheduler. */
class FsScheduler : public Scheduler
{
  public:
    struct Params
    {
        FsMode mode = FsMode::RankPart;
        bool prefetchInDummies = false; ///< Section 5.2 prefetch slots
        bool suppressDummies = false;   ///< energy optimisation 1
        bool rowBufferBoost = false;    ///< energy optimisation 2
        bool powerDown = false;         ///< energy optimisation 3 (RP only)
        /** Issue slots per domain per frame (SLA weights); empty means
         *  one slot each. */
        std::vector<unsigned> slotWeights;
        /**
         * Pin the pipeline's periodic reference instead of taking the
         * smallest-l solution for the partition level (fs.ref). The
         * paper tabulates five (reference, partition) design points,
         * but solveBest() only ever reaches the per-level winners
         * (data/rank l=7, RAS/bank l=15, RAS/none l=43); pinning the
         * reference lets analyses — notably the noninterference
         * certifier's five-point sweep — instantiate rank/RAS (l=12)
         * and bank/data (l=21) through the real scheduler too.
         */
        bool pinRef = false;
        core::PeriodicRef ref = core::PeriodicRef::Data;
        uint64_t rngSeed = 0x5eedf00d;
        /**
         * Deterministic refresh epochs: every tREFI the pipeline
         * pauses at a wall-clock-fixed point, refreshes every rank
         * back-to-back, and resumes. The schedule depends on nothing
         * any domain does, so non-interference is preserved (the
         * paper's analysis ignores refresh; this is the extension a
         * deployable controller needs).
         */
        bool refresh = false;
    };

    FsScheduler(mem::MemoryController &mc, const Params &params);

    void tick(Cycle now) override;
    Cycle nextWakeCycle(Cycle now) const override;
    std::string name() const override;
    void registerStats(StatGroup &group) const override;

    bool enableCompiledReplay(const CompiledReplayOptions &opts) override;
    bool compiledActive() const override { return compiledActive_; }
    void applyUpTo(Cycle now) override;
    uint64_t compiledCommands() const override { return compiledCmds_; }
    uint64_t compiledFallbacks() const override
    {
        return compiledFallbacks_;
    }

    /** The verified table replay runs from (invalid when declined). */
    const CompiledSchedule &compiledTable() const { return table_; }

    /**
     * Slot-skew injection point: real (non-dummy) operations planned
     * while the injector fires get their command cycles shifted,
     * modelling a scheduler that leaks timing by letting transaction
     * content perturb the fixed slot template. The noninterference
     * audit must flag the resulting divergence.
     */
    void attachFaultInjector(fault::FaultInjector *inj) override
    {
        injector_ = inj;
        // Skewed command cycles invalidate the precompiled template;
        // injection runs always take the interpreted path.
        if (inj)
            disableCompiled();
    }

    /** Apply deferred energy accounting (power-down credits). */
    void finalize(Cycle now) override;

    void saveState(Serializer &s) const override;
    void restoreState(Deserializer &d) override;

    unsigned slotSpacing() const { return l_; }
    Cycle frameLength() const { return slotsPerFrame_ * l_; }
    const core::PipelineSolution &solution() const { return sol_; }

    uint64_t realOps() const { return realOps_.value(); }
    uint64_t dummyOps() const { return dummyOps_.value(); }
    uint64_t prefetchOps() const { return prefetchOps_.value(); }

  private:
    struct PlannedOp
    {
        std::unique_ptr<mem::MemRequest> req; ///< null after CAS issue
        bool write = false;
        bool dummy = false;
        bool suppressAct = false;
        bool suppressCas = false;
        Cycle actAt = 0;
        Cycle casAt = 0;
        bool actIssued = false;
    };

    /** Pick and plan the operation for slot `slot` (decided at now). */
    void decideSlot(uint64_t slot, Cycle now);

    /** True if an op on (rank,bank) may plan its ACT at actAt. */
    bool bankFree(unsigned rank, unsigned bank, Cycle actAt) const;

    /**
     * True if rank-level constraints (tRRD, tFAW, CAS turnaround)
     * admit an op with the given command cycles. The solver already
     * guarantees these *between* slots of one frame; this guards the
     * low-thread-count case where a domain's consecutive slots are
     * closer than the turnaround times (Section 7's sensitivity
     * discussion).
     */
    bool rankFree(unsigned rank, Cycle actAt, Cycle casAt,
                  bool write) const;

    /** Record the planned op's bank-reuse horizon. */
    void reserveBank(unsigned rank, unsigned bank, Cycle actAt,
                     Cycle casAt, bool write);

    /** Record the planned op's rank-level footprint. */
    void reserveRank(unsigned rank, Cycle actAt, Cycle casAt,
                     bool write);

    /** Plan the op's commands. */
    void plan(uint64_t slot, std::unique_ptr<mem::MemRequest> req,
              bool write, bool dummy, Cycle ref);

    void issueDue(Cycle now);
    void frameBoundary(uint64_t frame, Cycle now);

    /** Queue the op's ACT/CAS replay events; falls back on overflow. */
    void enqueueReplay(PlannedOp &op, Cycle now);
    /** Leave replay mode mid-run; the interpreted path resumes. */
    void disableCompiled();

    Params params_;
    core::PipelineSolution sol_;
    unsigned l_ = 0;
    Cycle lead_ = 0;
    unsigned groups_ = 1;              ///< alternation factor (1 or 3)
    uint64_t slotsPerFrame_ = 0;       ///< incl. a phantom pad slot if
                                       ///< needed for group rotation
    std::vector<DomainId> slotTable_;  ///< slot index -> domain (or ~0)
    static constexpr DomainId kPhantom = ~0u;

    std::deque<PlannedOp> planned_;
    /** Earliest cycle a new ACT may be planned per (rank, bank),
     *  covering planned-but-unissued auto-precharges. */
    std::vector<Cycle> plannedBankFree_;

    /** Planned rank-level windows, mirroring dram::Rank. */
    struct RankPlan
    {
        Cycle nextRead = 0;
        Cycle nextWrite = 0;
        Cycle nextAct = 0;
        std::deque<Cycle> acts; ///< recent planned ACTs (tFAW)
    };
    std::vector<RankPlan> rankPlan_;
    /** Last row used per (rank, bank), for the row-buffer boost. */
    std::vector<unsigned> lastRow_;

    std::vector<Rng> domainRng_;
    std::vector<size_t> dummyRr_; ///< per-domain dummy placement cursor

    /** Rank is (logically) powered down until this cycle (opt 3). */
    std::vector<Cycle> rankDownUntil_;
    std::vector<uint64_t> pdCreditCycles_;

    /** Next refresh-epoch start (kNoCycle when refresh disabled). */
    Cycle nextRefresh_ = kNoCycle;
    /** Quiet margin before the epoch and pause length after it. */
    Cycle refreshMargin_ = 0;
    Cycle refreshPause_ = 0;
    unsigned refreshRankCursor_ = 0;

    /*
     * Compiled-replay state (docs/PERF.md). All of it is derived:
     * checkpoints serialize only planned_, and the ring and energy
     * intervals are rebuilt on restore, which keeps checkpoint bytes
     * identical across sim.compiled modes.
     */
    CompiledMode compiledMode_ = CompiledMode::Off;
    bool compiledActive_ = false;
    CompiledSchedule table_;
    std::unique_ptr<ReplayRing<PlannedOp>> ring_;
    Cycle completeReadDelta_ = 0;  ///< casAt -> read data-burst end
    Cycle completeWriteDelta_ = 0; ///< casAt -> write data-burst end
    uint64_t compiledCmds_ = 0;      ///< kernel accounting, not digest
    uint64_t compiledFallbacks_ = 0; ///< replay -> interpreted drops

    Counter realOps_;
    Counter dummyOps_;
    Counter prefetchOps_;
    Counter skippedSlots_;
    Counter hazardDeferrals_;
    Counter boostedActs_;
    Counter skewedOps_;

    fault::FaultInjector *injector_ = nullptr;
};

} // namespace memsec::sched

#endif // MEMSEC_SCHED_FS_HH
