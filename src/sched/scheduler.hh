/**
 * @file
 * Scheduling-policy strategy interface.
 *
 * A Scheduler owns all transaction-ordering decisions of one memory
 * controller; it is ticked once per memory cycle and may issue at most
 * one DRAM command per tick (the command bus carries one command per
 * cycle). Concrete policies: FR-FCFS+ (non-secure baseline), Temporal
 * Partitioning (prior work), and the Fixed-Service family (this
 * paper).
 */

#ifndef MEMSEC_SCHED_SCHEDULER_HH
#define MEMSEC_SCHED_SCHEDULER_HH

#include <string>

#include "mem/memory_controller.hh"
#include "sim/types.hh"
#include "stats/stats.hh"

namespace memsec::fault {
class FaultInjector;
}

namespace memsec::sched {

/** Abstract scheduling policy. */
class Scheduler
{
  public:
    explicit Scheduler(mem::MemoryController &mc)
        : mc_(mc), dram_(mc.dram())
    {
    }
    virtual ~Scheduler() = default;

    /** Advance one memory cycle; may issue at most one command. */
    virtual void tick(Cycle now) = 0;

    /**
     * Idle-skip hint (see Component::nextWakeCycle): the earliest
     * cycle > now at which this policy's tick() would do anything
     * observable, queried right after tick(now). The conservative
     * default declares every cycle interesting, so policies without a
     * hint keep the naive per-cycle loop.
     */
    virtual Cycle
    nextWakeCycle(Cycle now) const
    {
        return now + 1;
    }

    /** Policy name for reports. */
    virtual std::string name() const = 0;

    /** Hook called once after the measured run (e.g. to settle
     *  deferred energy accounting). */
    virtual void finalize(Cycle now) { (void)now; }

    /** Export policy-specific statistics. */
    virtual void registerStats(StatGroup &group) const { (void)group; }

    /**
     * Offer a fault injector to the policy. The default ignores it;
     * policies with injectable decision points (FS slot timing)
     * override. Never alters behaviour when the injector's kind does
     * not target the scheduler.
     */
    virtual void attachFaultInjector(fault::FaultInjector *inj)
    {
        (void)inj;
    }

    /**
     * Serialize the policy's evolving state (planned operations,
     * per-domain RNG streams, refresh bookkeeping, counters). Every
     * concrete policy must implement the pair; the restore obligation
     * is the same byte-identical-continuation contract as
     * Component::saveState. The defaults panic so a new policy cannot
     * silently checkpoint nothing.
     */
    virtual void saveState(Serializer &s) const;
    virtual void restoreState(Deserializer &d);

  protected:
    mem::MemoryController &mc_;
    dram::DramSystem &dram_;
};

} // namespace memsec::sched

#endif // MEMSEC_SCHED_SCHEDULER_HH
