/**
 * @file
 * Scheduling-policy strategy interface.
 *
 * A Scheduler owns all transaction-ordering decisions of one memory
 * controller; it is ticked once per memory cycle and may issue at most
 * one DRAM command per tick (the command bus carries one command per
 * cycle). Concrete policies: FR-FCFS+ (non-secure baseline), Temporal
 * Partitioning (prior work), and the Fixed-Service family (this
 * paper).
 */

#ifndef MEMSEC_SCHED_SCHEDULER_HH
#define MEMSEC_SCHED_SCHEDULER_HH

#include <string>

#include "mem/memory_controller.hh"
#include "sim/compiled_schedule.hh"
#include "sim/types.hh"
#include "stats/stats.hh"

namespace memsec::fault {
class FaultInjector;
}

namespace memsec::sched {

/** How a policy should run table-driven replay (docs/PERF.md). */
struct CompiledReplayOptions
{
    CompiledMode mode = CompiledMode::Off;
    /** Pending-command ring capacity (config sim.compiled_ring). */
    size_t ringCapacity = 64;
};

/** Abstract scheduling policy. */
class Scheduler
{
  public:
    explicit Scheduler(mem::MemoryController &mc)
        : mc_(mc), dram_(mc.dram())
    {
    }
    virtual ~Scheduler() = default;

    /** Advance one memory cycle; may issue at most one command. */
    virtual void tick(Cycle now) = 0;

    /**
     * Idle-skip hint (see Component::nextWakeCycle): the earliest
     * cycle > now at which this policy's tick() would do anything
     * observable, queried right after tick(now). The conservative
     * default declares every cycle interesting, so policies without a
     * hint keep the naive per-cycle loop.
     */
    virtual Cycle
    nextWakeCycle(Cycle now) const
    {
        return now + 1;
    }

    /** Policy name for reports. */
    virtual std::string name() const = 0;

    /**
     * Ask the policy to run in table-driven replay mode: commands are
     * enqueued at decision time with precomputed cycles and applied
     * lazily in global timestamp order via applyUpTo(), instead of
     * being rediscovered by per-cycle scanning. Only policies whose
     * schedule is a verified fixed template (the FS family, TP) can
     * accept; the default — and any design point the policy cannot
     * prove (refresh epochs, fault injection) — declines and keeps the
     * interpreted path. Must be called before the first tick.
     */
    virtual bool enableCompiledReplay(const CompiledReplayOptions &opts)
    {
        (void)opts;
        return false;
    }

    /** True while table-driven replay is driving this policy. A
     *  policy may drop back to interpreted mode mid-run (ring
     *  overflow); the controller re-checks every tick. */
    virtual bool compiledActive() const { return false; }

    /**
     * Apply every queued replay command with cycle <= now to the DRAM
     * model, in global timestamp order. Called by the controller at
     * the top of each executed tick and on fast-forward jumps, so the
     * device round-trips through exactly the states the interpreted
     * path would have produced. No-op unless compiledActive().
     */
    virtual void applyUpTo(Cycle now) { (void)now; }

    /** Kernel accounting (never part of the result digest). */
    virtual uint64_t compiledCommands() const { return 0; }
    virtual uint64_t compiledFallbacks() const { return 0; }

    /** Hook called once after the measured run (e.g. to settle
     *  deferred energy accounting). */
    virtual void finalize(Cycle now) { (void)now; }

    /** Export policy-specific statistics. */
    virtual void registerStats(StatGroup &group) const { (void)group; }

    /**
     * Offer a fault injector to the policy. The default ignores it;
     * policies with injectable decision points (FS slot timing)
     * override. Never alters behaviour when the injector's kind does
     * not target the scheduler.
     */
    virtual void attachFaultInjector(fault::FaultInjector *inj)
    {
        (void)inj;
    }

    /**
     * Serialize the policy's evolving state (planned operations,
     * per-domain RNG streams, refresh bookkeeping, counters). Every
     * concrete policy must implement the pair; the restore obligation
     * is the same byte-identical-continuation contract as
     * Component::saveState. The defaults panic so a new policy cannot
     * silently checkpoint nothing.
     */
    virtual void saveState(Serializer &s) const;
    virtual void restoreState(Deserializer &d);

  protected:
    mem::MemoryController &mc_;
    dram::DramSystem &dram_;
};

} // namespace memsec::sched

#endif // MEMSEC_SCHED_SCHEDULER_HH
