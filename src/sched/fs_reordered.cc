#include "sched/fs_reordered.hh"

#include <algorithm>

#include "util/logging.hh"
#include "util/serialize.hh"

namespace memsec::sched {

using mem::MemRequest;
using mem::ReqType;
using dram::CmdType;
using dram::Command;

FsReorderedScheduler::FsReorderedScheduler(mem::MemoryController &mc,
                                           const Params &params)
    : Scheduler(mc), params_(params)
{
    const core::PipelineSolver solver(dram_.timing());
    sol_ = solver.solveReordered(mc.numDomains());
    off_ = solver.offsets(core::PeriodicRef::Data);
    q_ = sol_.q;

    const int minOff = std::min({off_.actRead, off_.actWrite,
                                 off_.casRead, off_.casWrite, 0});
    lead_ = static_cast<Cycle>(-minOff);

    const auto &geo = dram_.geometry();
    plannedBankFree_.assign(
        static_cast<size_t>(geo.ranksPerChannel) * geo.banksPerRank, 0);
    dummyRr_.assign(mc.numDomains(), 0);
    for (DomainId d = 0; d < mc.numDomains(); ++d)
        domainRng_.emplace_back(params.rngSeed * 0x517cc1b7u + d);
}

bool
FsReorderedScheduler::enableCompiledReplay(const CompiledReplayOptions &opts)
{
    if (opts.mode == CompiledMode::Off || compiledActive_)
        return false;
    panic_if(!planned_.empty(), "enableCompiledReplay after ticking");
    ring_ = std::make_unique<ReplayRing<PlannedOp>>(opts.ringCapacity);
    compiledMode_ = opts.mode;
    compiledActive_ = true;
    return true;
}

void
FsReorderedScheduler::disableCompiled()
{
    compiledActive_ = false;
    if (ring_)
        ring_->clear();
}

void
FsReorderedScheduler::enqueueReplay(PlannedOp &op, Cycle now)
{
    // Clientless ops (dummies) retire silently at CAS apply; only a
    // client-visible completion needs an exact wake cycle. Reads use
    // the en-masse interval-end return, already in op.completeAt.
    const Cycle completeAt = op.req->client ? op.completeAt : kNoCycle;
    if (ring_->push({op.actAt, kNoCycle, &op, false}) &&
        ring_->push({op.casAt, completeAt, &op, true}))
        return;
    ++compiledFallbacks_;
    mc_.recordError(
        {now, "pool-exhausted",
         "compiled replay ring capacity " +
             std::to_string(ring_->capacity()) +
             " exhausted; falling back to interpreted scheduling"});
    disableCompiled();
}

void
FsReorderedScheduler::applyUpTo(Cycle now)
{
    if (!compiledActive_)
        return;
    while (!ring_->empty() && ring_->front().at <= now) {
        const ReplayEvent<PlannedOp> ev = ring_->front();
        ring_->pop();
        PlannedOp &op = *ev.op;
        panic_if(!op.req, "compiled replay lost its request");
        if (!ev.cas) {
            Command act{CmdType::Act, op.req->loc.rank,
                        op.req->loc.bank, op.req->loc.row, op.req->id,
                        false};
            dram_.issue(act, ev.at);
            op.actIssued = true;
        } else {
            const CmdType type = op.write ? CmdType::WrA : CmdType::RdA;
            Command cas{type, op.req->loc.rank, op.req->loc.bank,
                        op.req->loc.row, op.req->id, false};
            const dram::IssueResult res = dram_.issue(cas, ev.at);
            // Reads deliberately complete after the data burst (en
            // masse at the interval end), so the device end is only a
            // lower bound there; writes must match exactly.
            panic_if(compiledMode_ == CompiledMode::Verify &&
                         (op.write ? res.dataEnd != op.completeAt
                                   : res.dataEnd > op.completeAt),
                     "compiled completion mispredicted: device {} vs "
                     "planned {}",
                     res.dataEnd, op.completeAt);
            mc_.noteBurst(op.dummy);
            mc_.finishRequest(std::move(op.req), op.completeAt);
        }
        ++compiledCmds_;
    }
}

bool
FsReorderedScheduler::bankFree(unsigned rank, unsigned bank,
                               Cycle actAt) const
{
    const unsigned nb = dram_.geometry().banksPerRank;
    return actAt >=
           plannedBankFree_[static_cast<size_t>(rank) * nb + bank];
}

void
FsReorderedScheduler::reserveBank(unsigned rank, unsigned bank,
                                  Cycle actAt, Cycle casAt, bool write)
{
    const auto &tp = dram_.timing();
    const Cycle preDone =
        write ? casAt + tp.cwd + tp.burst + tp.wr + tp.rp
              : std::max(casAt + tp.rtp + tp.rp, actAt + tp.rc);
    const unsigned nb = dram_.geometry().banksPerRank;
    plannedBankFree_[static_cast<size_t>(rank) * nb + bank] =
        std::max(actAt + tp.rc, preDone);
}

std::unique_ptr<MemRequest>
FsReorderedScheduler::makeDummy(DomainId domain, bool write, Cycle actAt,
                                Cycle now)
{
    const auto &ranks = mc_.addressMap().ranksOf(domain);
    const auto &banks = mc_.addressMap().banksOf(domain);
    const size_t combos = ranks.size() * banks.size();
    for (size_t tries = 0; tries < combos; ++tries) {
        const size_t cursor = (dummyRr_[domain] + tries) % combos;
        const unsigned bank = banks[cursor % banks.size()];
        const unsigned rank = ranks[cursor / banks.size()];
        if (!bankFree(rank, bank, actAt))
            continue;
        dummyRr_[domain] = cursor + 1;
        auto dummy = mc_.acquireRequest();
        dummy->type = write ? ReqType::Write : ReqType::Dummy;
        dummy->domain = domain;
        dummy->arrival = now;
        dummy->loc.rank = rank;
        dummy->loc.bank = bank;
        dummy->loc.row = static_cast<unsigned>(
            domainRng_[domain].below(dram_.geometry().rowsPerBank));
        return dummy;
    }
    panic("reordered FS: no dummy placement for domain {}", domain);
}

void
FsReorderedScheduler::decideInterval(uint64_t interval, Cycle now)
{
    const unsigned n = mc_.numDomains();
    const Cycle base = interval * q_ + lead_;
    const Cycle nextBase = base + q_;

    // Tentative pick per domain: the head of its queue (the shaped
    // one-transaction-per-interval injection); read/write typing of
    // the pick fixes the slot order.
    struct Pick
    {
        DomainId domain = 0;
        bool write = false;
    };
    std::vector<Pick> reads;
    std::vector<Pick> writes;
    for (DomainId d = 0; d < n; ++d) {
        const MemRequest *head = mc_.queue(d).head();
        const bool w = head && head->type == ReqType::Write;
        if (w)
            writes.push_back({d, true});
        else
            reads.push_back({d, false});
    }

    // Assign data slots: reads first, then writes (Section 4.2).
    std::vector<Pick> order = reads;
    order.insert(order.end(), writes.begin(), writes.end());

    // Eligibility is judged at the interval's EARLIEST possible act
    // cycle, not the op's actual slot position: the position depends
    // on the other domains' read/write mix, so a position-sensitive
    // pick would leak it. Under bank partitioning plannedBankFree of
    // a domain's banks is a function of that domain's own history
    // only, so this predicate is leak-free.
    const Cycle earliestAct =
        base + std::min(off_.actRead, off_.actWrite);

    for (unsigned i = 0; i < order.size(); ++i) {
        const Pick &p = order[i];
        const Cycle data = base + static_cast<Cycle>(i) * sol_.spacing;
        const Cycle actAt =
            data + (p.write ? off_.actWrite : off_.actRead);
        const Cycle casAt =
            data + (p.write ? off_.casWrite : off_.casRead);

        // Oldest safe same-type transaction from the domain; falling
        // back to a same-type dummy keeps the read/write split (and
        // hence the whole command template) unchanged.
        mem::TransactionQueue &q = mc_.queue(p.domain);
        MemRequest *r = q.findOldest([&](const MemRequest &cand) {
            return (cand.type == ReqType::Write) == p.write &&
                   bankFree(cand.loc.rank, cand.loc.bank, earliestAct);
        });

        PlannedOp op;
        op.write = p.write;
        op.actAt = actAt;
        op.casAt = casAt;
        if (r) {
            if (r != q.head())
                hazardDeferrals_.inc();
            op.req = q.take(r);
            op.req->firstCommand = actAt;
            op.dummy = false;
            realOps_.inc();
        } else {
            if (!q.empty())
                hazardDeferrals_.inc();
            op.req = makeDummy(p.domain, p.write, earliestAct, now);
            op.dummy = true;
            dummyOps_.inc();
            mc_.noteDummy();
        }
        // Reads return en masse at the end of the interval so the
        // read/write reordering cannot modulate observed latency.
        op.completeAt =
            p.write ? casAt + dram_.timing().cwd + dram_.timing().burst
                    : nextBase;
        // The bank reservation must be position-independent too (the
        // actual position depends on the other domains' mix), so it
        // assumes the op sat in the interval's LAST slot. Together
        // with the earliest-slot eligibility test this brackets every
        // real placement.
        const Cycle worstData =
            base + static_cast<Cycle>(n - 1) * sol_.spacing;
        reserveBank(op.req->loc.rank, op.req->loc.bank,
                    worstData + (p.write ? off_.actWrite : off_.actRead),
                    worstData + (p.write ? off_.casWrite : off_.casRead),
                    p.write);
        planned_.push_back(std::move(op));
        PlannedOp &queued = planned_.back();
        // Compiled-energy intervals are fed at decision time for every
        // op whenever the accountant is armed, replay-active or not:
        // after a mid-run fallback the device still derives row
        // residency from these spans.
        if (dram_.compiledEnergy().active())
            dram_.compiledEnergy().addInterval(queued.req->loc.rank,
                                               queued.actAt,
                                               queued.casAt);
        if (compiledActive_)
            enqueueReplay(queued, now);
    }
}

void
FsReorderedScheduler::issueDue(Cycle now)
{
    for (auto &op : planned_) {
        if (!op.actIssued && op.actAt == now) {
            Command act{CmdType::Act, op.req->loc.rank, op.req->loc.bank,
                        op.req->loc.row, op.req->id, false};
            dram_.issue(act, now);
            op.actIssued = true;
            return;
        }
        if (op.actIssued && op.req && op.casAt == now) {
            const CmdType type = op.write ? CmdType::WrA : CmdType::RdA;
            Command cas{type, op.req->loc.rank, op.req->loc.bank,
                        op.req->loc.row, op.req->id, false};
            dram_.issue(cas, now);
            mc_.noteBurst(op.dummy);
            mc_.finishRequest(std::move(op.req), op.completeAt);
            return;
        }
        if (op.actAt > now && op.casAt > now)
            break;
    }
}

void
FsReorderedScheduler::tick(Cycle now)
{
    if (now % q_ == 0)
        decideInterval(now / q_, now);
    if (compiledActive_)
        applyUpTo(now); // ops this decide may have cycles == now
    else
        issueDue(now);
    while (!planned_.empty() && !planned_.front().req)
        planned_.pop_front();
}

Cycle
FsReorderedScheduler::nextWakeCycle(Cycle now) const
{
    const Cycle next = now + 1;
    // Interval decisions happen at every multiple of q.
    Cycle wake = (next + q_ - 1) / q_ * q_;
    if (compiledActive_) {
        // Queued commands apply lazily; only a client-visible
        // completion forces an executed cycle between intervals.
        wake = std::min(wake, ring_->minCompletion());
        return std::max(wake, next);
    }
    for (const auto &op : planned_) {
        if (!op.actIssued) {
            if (op.actAt >= next)
                wake = std::min(wake, op.actAt);
        } else if (op.req && op.casAt >= next) {
            wake = std::min(wake, op.casAt);
        }
    }
    return std::max(wake, next);
}

void
FsReorderedScheduler::registerStats(StatGroup &group) const
{
    group.add("real_ops", &realOps_, "slots serving real transactions");
    group.add("dummy_ops", &dummyOps_, "slots serving dummy operations");
    group.add("hazard_deferrals", &hazardDeferrals_,
              "head-of-queue passed over for a safe transaction");
}

void
FsReorderedScheduler::saveState(Serializer &s) const
{
    s.section("fs-reordered");
    s.putU64(planned_.size());
    for (const PlannedOp &op : planned_) {
        s.putBool(op.req != nullptr);
        if (op.req)
            mem::serializeRequest(s, *op.req);
        s.putBool(op.write);
        s.putBool(op.dummy);
        s.putU64(op.actAt);
        s.putU64(op.casAt);
        s.putU64(op.completeAt);
        s.putBool(op.actIssued);
    }
    s.putU64(plannedBankFree_.size());
    for (Cycle c : plannedBankFree_)
        s.putU64(c);
    s.putU64(domainRng_.size());
    for (const Rng &rng : domainRng_) {
        uint64_t st[4];
        rng.getState(st);
        for (uint64_t w : st)
            s.putU64(w);
    }
    s.putU64(dummyRr_.size());
    for (size_t c : dummyRr_)
        s.putU64(c);
    realOps_.saveState(s);
    dummyOps_.saveState(s);
    hazardDeferrals_.saveState(s);
}

void
FsReorderedScheduler::restoreState(Deserializer &d)
{
    d.section("fs-reordered");
    planned_.clear();
    const uint64_t nops = d.getU64();
    for (uint64_t i = 0; i < nops; ++i) {
        PlannedOp op;
        if (d.getBool()) {
            bool hadClient = false;
            op.req = mem::deserializeRequest(d, &hadClient);
            if (hadClient)
                op.req->client = mc_.clientFor(op.req->domain);
        }
        op.write = d.getBool();
        op.dummy = d.getBool();
        op.actAt = d.getU64();
        op.casAt = d.getU64();
        op.completeAt = d.getU64();
        op.actIssued = d.getBool();
        planned_.push_back(std::move(op));
    }
    if (d.getU64() != plannedBankFree_.size())
        d.fail("planned bank count mismatch");
    for (Cycle &c : plannedBankFree_)
        c = d.getU64();
    if (d.getU64() != domainRng_.size())
        d.fail("domain RNG count mismatch");
    for (Rng &rng : domainRng_) {
        uint64_t st[4];
        for (uint64_t &w : st)
            w = d.getU64();
        rng.setState(st);
    }
    if (d.getU64() != dummyRr_.size())
        d.fail("dummy cursor count mismatch");
    for (size_t &c : dummyRr_)
        c = d.getU64();
    realOps_.restoreState(d);
    dummyOps_.restoreState(d);
    hazardDeferrals_.restoreState(d);

    // Replay state is derived, never serialized: rebuild the event
    // ring and the energy intervals from the restored plan. This is
    // what makes checkpoints portable across sim.compiled modes.
    if (compiledActive_) {
        ring_->clear();
        if (dram_.compiledEnergy().active())
            dram_.compiledEnergy().clearIntervals();
        bool ok = true;
        for (PlannedOp &op : planned_) {
            if (!op.req)
                continue; // CAS already applied; interval is all past
            if (dram_.compiledEnergy().active())
                dram_.compiledEnergy().addInterval(op.req->loc.rank,
                                                   op.actAt, op.casAt);
            const Cycle completeAt =
                op.req->client ? op.completeAt : kNoCycle;
            if (!op.actIssued)
                ok = ok && ring_->push({op.actAt, kNoCycle, &op, false});
            ok = ok && ring_->push({op.casAt, completeAt, &op, true});
        }
        if (!ok) {
            ++compiledFallbacks_;
            disableCompiled();
        }
    }
}

} // namespace memsec::sched
