/**
 * @file
 * Temporal Partitioning (Wang et al., HPCA 2014) — the prior-work
 * secure scheduler the paper compares against.
 *
 * Time is divided into fixed turns; only the active security domain
 * may issue during its turn. Following the paper's characterisation
 * (Section 4: the TP models "resemble the basic bank-partitioned and
 * no-partitioned pipelines"), transactions issue closed-page at the
 * fixed-service slot spacing of the matching pipeline — l = 15 under
 * bank partitioning (27% peak bus utilisation), l = 43 with no
 * partitioning (9%) — and no transaction may start unless its entire
 * shared-state footprint (data burst, turnarounds, precharge for
 * shared banks) completes inside the turn; the resulting idle tail is
 * the "dead time" (~12 ns bank-partitioned, ~65 ns unpartitioned).
 * Idle slots stay idle: a turn's owner cannot be observed, so TP
 * needs no dummy traffic.
 */

#ifndef MEMSEC_SCHED_TP_HH
#define MEMSEC_SCHED_TP_HH

#include <deque>
#include <vector>

#include "core/pipeline_solver.hh"
#include "sched/scheduler.hh"
#include "util/random.hh"

namespace memsec::sched {

/** Turn-based temporally partitioned scheduler. */
class TpScheduler : public Scheduler
{
  public:
    struct Params
    {
        unsigned turnLength = 60; ///< memory cycles per turn
        /** Extra margin (cycles) added to the derived per-type
         *  footprints; 0 reproduces the paper's models. */
        unsigned extraDead = 0;
    };

    TpScheduler(mem::MemoryController &mc, const Params &params);

    void tick(Cycle now) override;
    Cycle nextWakeCycle(Cycle now) const override;
    std::string name() const override { return "tp"; }
    void registerStats(StatGroup &group) const override;

    /**
     * TP replay has no hyperperiod table to unroll (slots are anchored
     * per turn and gated by the planned bank-reuse horizon), so there
     * is no static proof artifact; replay trusts the same
     * solver-derived in-turn offsets the interpreted path trusts, and
     * `sim.compiled=verify` re-checks every command against the
     * dynamic TimingChecker.
     */
    bool enableCompiledReplay(const CompiledReplayOptions &opts) override;
    bool compiledActive() const override { return compiledActive_; }
    void applyUpTo(Cycle now) override;
    uint64_t compiledCommands() const override { return compiledCmds_; }
    uint64_t compiledFallbacks() const override
    {
        return compiledFallbacks_;
    }

    /** Domain whose turn covers cycle `now`. */
    DomainId activeDomain(Cycle now) const;

    /** First cycle after the turn containing `now`. */
    Cycle turnEnd(Cycle now) const;

    /** In-turn slot spacing (15 bank-partitioned / 43 shared). */
    unsigned slotSpacing() const { return l_; }

    /** Cycles a read/write transaction needs before the turn end. */
    unsigned readFootprint() const { return footRead_; }
    unsigned writeFootprint() const { return footWrite_; }

    const Params &params() const { return params_; }

    void saveState(Serializer &s) const override;
    void restoreState(Deserializer &d) override;

  private:
    struct PlannedOp
    {
        std::unique_ptr<mem::MemRequest> req;
        bool write = false;
        Cycle actAt = 0;
        Cycle casAt = 0;
        bool actIssued = false;
    };

    void decideSlot(Cycle now);
    bool bankFree(unsigned rank, unsigned bank, Cycle actAt) const;
    void reserveBank(unsigned rank, unsigned bank, Cycle actAt,
                     Cycle casAt, bool write);
    void issueDue(Cycle now);

    /** Queue the op's ACT/CAS replay events; falls back on overflow. */
    void enqueueReplay(PlannedOp &op, Cycle now);
    /** Leave replay mode mid-run; the interpreted path resumes. */
    void disableCompiled();

    Params params_;
    bool sharedBanks_ = false;
    core::PipelineSolution sol_;
    unsigned l_ = 0;
    unsigned footRead_ = 0;
    unsigned footWrite_ = 0;

    std::deque<PlannedOp> planned_;
    std::vector<Cycle> plannedBankFree_;

    /*
     * Compiled-replay state (docs/PERF.md). Derived, never serialized:
     * checkpoints carry only planned_, and the event ring plus energy
     * intervals are rebuilt on restore, which keeps checkpoint bytes
     * identical across sim.compiled modes.
     */
    CompiledMode compiledMode_ = CompiledMode::Off;
    bool compiledActive_ = false;
    std::unique_ptr<ReplayRing<PlannedOp>> ring_;
    Cycle completeReadDelta_ = 0;  ///< casAt -> read data-burst end
    Cycle completeWriteDelta_ = 0; ///< casAt -> write data-burst end
    uint64_t compiledCmds_ = 0;      ///< kernel accounting, not digest
    uint64_t compiledFallbacks_ = 0; ///< replay -> interpreted drops

    Counter turns_;
    Counter served_;
    Counter idleSlots_;
};

} // namespace memsec::sched

#endif // MEMSEC_SCHED_TP_HH
