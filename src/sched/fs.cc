#include "sched/fs.hh"

#include <algorithm>

#include "analysis/schedule_verifier.hh"
#include "fault/fault_injector.hh"
#include "util/logging.hh"
#include "util/serialize.hh"

namespace memsec::sched {

using mem::MemRequest;
using mem::ReqType;
using dram::CmdType;
using dram::Command;

const char *
fsModeName(FsMode m)
{
    switch (m) {
      case FsMode::RankPart: return "fs-rank";
      case FsMode::BankPart: return "fs-bank";
      case FsMode::NoPart: return "fs-nopart";
      case FsMode::TripleAlt: return "fs-triple";
    }
    return "???";
}

namespace {

core::PartitionLevel
levelOf(FsMode m)
{
    switch (m) {
      case FsMode::RankPart: return core::PartitionLevel::Rank;
      case FsMode::BankPart:
      case FsMode::TripleAlt: return core::PartitionLevel::Bank;
      case FsMode::NoPart: return core::PartitionLevel::None;
    }
    panic("bad FS mode");
}

} // namespace

FsScheduler::FsScheduler(mem::MemoryController &mc, const Params &params)
    : Scheduler(mc), params_(params)
{
    const core::PipelineSolver solver(dram_.timing());
    sol_ = params.pinRef
               ? solver.solve(params.ref, levelOf(params.mode))
               : solver.solveBest(levelOf(params.mode));
    fatal_if(!sol_.feasible, "no feasible FS pipeline for mode {}",
             fsModeName(params.mode));
    l_ = sol_.l;

    const auto &off = sol_.offsets;
    const int minOff = std::min({off.actRead, off.actWrite, off.casRead,
                                 off.casWrite, 0});
    lead_ = static_cast<Cycle>(-minOff);

    const unsigned n = mc.numDomains();
    groups_ = params.mode == FsMode::TripleAlt ? solver.alternationFactor()
                                               : 1;
    fatal_if(params.mode == FsMode::TripleAlt &&
                 mc.addressMap().partition() != mem::Partition::None,
             "triple alternation is the no-OS-support design point; "
             "use an unpartitioned address map");
    fatal_if(params.powerDown && params.mode != FsMode::RankPart,
             "the power-down optimisation requires rank partitioning "
             "(a shared rank's idleness would leak other domains' "
             "state)");

    // Build the slot table from the SLA weights (default: one slot
    // per domain per frame), interleaving domains round-robin.
    std::vector<unsigned> weights = params.slotWeights;
    if (weights.empty())
        weights.assign(n, 1);
    fatal_if(weights.size() != n, "slotWeights size {} != domains {}",
             weights.size(), n);
    std::vector<unsigned> remaining = weights;
    bool any = true;
    while (any) {
        any = false;
        for (DomainId d = 0; d < n; ++d) {
            if (remaining[d] > 0) {
                --remaining[d];
                slotTable_.push_back(d);
                any = true;
            }
        }
    }
    fatal_if(slotTable_.empty(), "slot table is empty");

    // Bank-group rotation (slot % groups) must visit every group for
    // every domain; pad the frame with a phantom slot when the frame
    // length is a multiple of the group count.
    if (groups_ > 1 && slotTable_.size() % groups_ == 0)
        slotTable_.push_back(kPhantom);
    slotsPerFrame_ = slotTable_.size();

    const auto &geo = dram_.geometry();
    plannedBankFree_.assign(
        static_cast<size_t>(geo.ranksPerChannel) * geo.banksPerRank, 0);
    lastRow_.assign(plannedBankFree_.size(), ~0u);
    rankPlan_.assign(geo.ranksPerChannel, RankPlan{});
    rankDownUntil_.assign(geo.ranksPerChannel, 0);
    pdCreditCycles_.assign(geo.ranksPerChannel, 0);
    dummyRr_.assign(n, 0);
    for (DomainId d = 0; d < n; ++d)
        domainRng_.emplace_back(params.rngSeed * 0x9E3779B9u + d);

    if (params_.refresh) {
        const auto &tp = dram_.timing();
        // No slot may have commands or auto-precharge activity inside
        // the epoch: quiet-down begins one worst-case transaction
        // footprint before the REF burst.
        refreshMargin_ = tp.actToActWrA() + lead_;
        // One REF command per rank back-to-back, then tRFC.
        refreshPause_ = dram_.numRanks() + tp.rfc;
        nextRefresh_ = tp.refi;
        fatal_if(tp.refi < refreshMargin_ + refreshPause_ + frameLength(),
                 "tREFI too short for an FS refresh epoch");
    }
}

std::string
FsScheduler::name() const
{
    return fsModeName(params_.mode);
}

bool
FsScheduler::enableCompiledReplay(const CompiledReplayOptions &opts)
{
    if (opts.mode == CompiledMode::Off || compiledActive_)
        return false;
    // Refresh blackouts are keyed on the absolute slot index (not
    // frame-periodic) and injected skew invalidates the template
    // outright; both keep the interpreted path.
    if (params_.refresh || injector_)
        return false;
    panic_if(!planned_.empty(), "enableCompiledReplay after ticking");

    // Re-prove this exact design point over its hyperperiod before
    // trusting the table. The verifier builds one slot per domain;
    // weighted tables repeat domains, so hand it the structural frame
    // length (non-phantom slot count) — pair legality never depends
    // on domain identity, only on slot distance and group lane.
    unsigned structuralSlots = 0;
    for (DomainId d : slotTable_)
        structuralSlots += d == kPhantom ? 0 : 1;
    analysis::VerifierConfig vcfg;
    vcfg.ref = sol_.ref;
    vcfg.level = levelOf(params_.mode);
    vcfg.numDomains = structuralSlots;
    vcfg.numRanks = dram_.numRanks();
    vcfg.bankGroups = groups_;
    vcfg.refresh = false;
    const analysis::ScheduleVerifier verifier(dram_.timing(), vcfg);
    CompiledSchedule table = verifier.compile(l_);
    if (!table.valid)
        return false;

    // Cross-check the emitted structure against this scheduler's own
    // template: a disagreement means the proof ran over a different
    // schedule than the one we are about to replay.
    fatal_if(table.l != l_ || table.lead != lead_,
             "compiled table geometry mismatch: l {}/{} lead {}/{}",
             table.l, l_, table.lead, lead_);
    fatal_if(table.slots.size() != slotsPerFrame_,
             "compiled table has {} slots, scheduler frame has {}",
             table.slots.size(), slotsPerFrame_);
    const auto &off = sol_.offsets;
    const auto delta = [this](int o) {
        return static_cast<Cycle>(static_cast<long>(lead_) + o);
    };
    for (uint64_t s = 0; s < slotsPerFrame_; ++s) {
        CompiledSlot &slot = table.slots[s];
        fatal_if(slot.phantom != (slotTable_[s] == kPhantom),
                 "compiled table phantom mismatch at slot {}", s);
        fatal_if(slot.actRead != delta(off.actRead) ||
                     slot.casRead != delta(off.casRead) ||
                     slot.actWrite != delta(off.actWrite) ||
                     slot.casWrite != delta(off.casWrite),
                 "compiled table command deltas mismatch at slot {}", s);
        // The verifier numbers domains round-robin; adopt this
        // scheduler's (possibly SLA-weighted) assignment.
        if (!slot.phantom)
            slot.domain = slotTable_[s];
    }

    table_ = std::move(table);
    const auto &tp = dram_.timing();
    completeReadDelta_ = tp.cas + tp.burst;
    completeWriteDelta_ = tp.cwd + tp.burst;
    ring_ = std::make_unique<ReplayRing<PlannedOp>>(opts.ringCapacity);
    compiledMode_ = opts.mode;
    compiledActive_ = true;
    return true;
}

void
FsScheduler::disableCompiled()
{
    compiledActive_ = false;
    if (ring_)
        ring_->clear();
}

void
FsScheduler::enqueueReplay(PlannedOp &op, Cycle now)
{
    // Clientless ops (dummies) retire silently at CAS apply; only
    // client-visible completions need an exact wake cycle.
    const Cycle completeAt =
        op.req->client
            ? op.casAt +
                  (op.write ? completeWriteDelta_ : completeReadDelta_)
            : kNoCycle;
    if (ring_->push({op.actAt, kNoCycle, &op, false}) &&
        ring_->push({op.casAt, completeAt, &op, true}))
        return;
    // Ring exhausted: a structured, recoverable condition. The events
    // are dropped wholesale and the interpreted issueDue() takes over
    // from the planned-op flags — nothing is lost, only speed.
    ++compiledFallbacks_;
    mc_.recordError(
        {now, "pool-exhausted",
         "compiled replay ring capacity " +
             std::to_string(ring_->capacity()) +
             " exhausted; falling back to interpreted scheduling"});
    disableCompiled();
}

void
FsScheduler::applyUpTo(Cycle now)
{
    if (!compiledActive_)
        return;
    while (!ring_->empty() && ring_->front().at <= now) {
        const ReplayEvent<PlannedOp> ev = ring_->front();
        ring_->pop();
        PlannedOp &op = *ev.op;
        panic_if(!op.req, "compiled replay lost its request");
        if (!ev.cas) {
            Command act{CmdType::Act, op.req->loc.rank,
                        op.req->loc.bank, op.req->loc.row, op.req->id,
                        op.suppressAct};
            dram_.issue(act, ev.at);
            op.actIssued = true;
        } else {
            const CmdType type = op.write ? CmdType::WrA : CmdType::RdA;
            Command cas{type, op.req->loc.rank, op.req->loc.bank,
                        op.req->loc.row, op.req->id, op.suppressCas};
            const dram::IssueResult res = dram_.issue(cas, ev.at);
            panic_if(compiledMode_ == CompiledMode::Verify &&
                         ev.completeAt != kNoCycle &&
                         res.dataEnd != ev.completeAt,
                     "compiled completion mispredicted: device {} vs "
                     "table {}",
                     res.dataEnd, ev.completeAt);
            mc_.noteBurst(op.dummy);
            mc_.finishRequest(std::move(op.req), res.dataEnd);
        }
        ++compiledCmds_;
    }
}

bool
FsScheduler::bankFree(unsigned rank, unsigned bank, Cycle actAt) const
{
    const unsigned nb = dram_.geometry().banksPerRank;
    const Cycle free = plannedBankFree_[static_cast<size_t>(rank) * nb +
                                        bank];
    return actAt >= free;
}

bool
FsScheduler::rankFree(unsigned rank, Cycle actAt, Cycle casAt,
                      bool write) const
{
    const auto &tp = dram_.timing();
    const RankPlan &rp = rankPlan_[rank];
    if (actAt < rp.nextAct)
        return false;
    if (rp.acts.size() >= 4 && actAt < rp.acts.front() + tp.faw)
        return false;
    if (casAt < (write ? rp.nextWrite : rp.nextRead))
        return false;
    return true;
}

void
FsScheduler::reserveRank(unsigned rank, Cycle actAt, Cycle casAt,
                         bool write)
{
    const auto &tp = dram_.timing();
    RankPlan &rp = rankPlan_[rank];
    rp.nextAct = actAt + tp.rrd;
    rp.acts.push_back(actAt);
    while (rp.acts.size() > 4)
        rp.acts.pop_front();
    if (write) {
        rp.nextWrite = std::max(rp.nextWrite, casAt + tp.ccd);
        rp.nextRead = std::max(rp.nextRead, casAt + tp.wr2rd());
    } else {
        rp.nextRead = std::max(rp.nextRead, casAt + tp.ccd);
        rp.nextWrite = std::max(rp.nextWrite, casAt + tp.rd2wr());
    }
}

void
FsScheduler::reserveBank(unsigned rank, unsigned bank, Cycle actAt,
                         Cycle casAt, bool write)
{
    const auto &tp = dram_.timing();
    const Cycle preDone =
        write ? casAt + tp.cwd + tp.burst + tp.wr + tp.rp
              : std::max(casAt + tp.rtp + tp.rp, actAt + tp.rc);
    const Cycle readyAt = std::max(actAt + tp.rc, preDone);
    const unsigned nb = dram_.geometry().banksPerRank;
    plannedBankFree_[static_cast<size_t>(rank) * nb + bank] = readyAt;
}

void
FsScheduler::plan(uint64_t slot, std::unique_ptr<MemRequest> req,
                  bool write, bool dummy, Cycle ref)
{
    (void)slot;
    const auto &off = sol_.offsets;
    PlannedOp op;
    op.write = write;
    op.dummy = dummy;
    op.actAt = ref + (write ? off.actWrite : off.actRead);
    op.casAt = ref + (write ? off.casWrite : off.casRead);
    op.suppressCas = dummy && params_.suppressDummies;

    const unsigned rank = req->loc.rank;
    const unsigned bank = req->loc.bank;
    const unsigned nb = dram_.geometry().banksPerRank;
    unsigned &last = lastRow_[static_cast<size_t>(rank) * nb + bank];
    if (params_.rowBufferBoost && req->loc.row == last) {
        op.suppressAct = true;
        boostedActs_.inc();
    } else {
        op.suppressAct = op.suppressCas;
    }
    last = req->loc.row;

    reserveBank(rank, bank, op.actAt, op.casAt, write);
    reserveRank(rank, op.actAt, op.casAt, write);

    // Slot-skew injection: shift a real op's commands *after* the
    // reservations, so the planner's books still assume the nominal
    // template — exactly the kind of content-dependent timing drift
    // the noninterference audit exists to catch. Dummies are never
    // skewed: a fault that fires identically for every slot would
    // cancel out across co-runner sets.
    if (injector_ && !dummy) {
        if (const Cycle skew = injector_->slotSkew(op.actAt)) {
            op.actAt += skew;
            op.casAt += skew;
            skewedOps_.inc();
        }
        // Cross-coupling injection: the op drifts only when *other*
        // domains have work queued, wiring foreign backlog straight
        // into this domain's command timing. The scan below is the
        // exact cross-domain flow isolint forbids in decision paths —
        // it exists so the noninterference certifier can prove it
        // refuses a certificate when such a flow is armed.
        uint64_t foreign = 0;
        for (DomainId d = 0; d < mc_.numDomains(); ++d) {
            if (d != req->domain)
                foreign += mc_.queue(d).size();
        }
        if (const Cycle skew =
                injector_->couplingSkew(op.actAt, foreign)) {
            op.actAt += skew;
            op.casAt += skew;
            skewedOps_.inc();
        }
    }

    op.req = std::move(req);
    planned_.push_back(std::move(op));

    // Compiled-energy intervals are fed at decision time for *every*
    // op (suppressed commands still drive the device's row state), so
    // they stay correct even after a mid-run fallback to interpreted
    // issue. Replay events only while the ring is live.
    PlannedOp &queued = planned_.back();
    if (dram_.compiledEnergy().active())
        dram_.compiledEnergy().addInterval(queued.req->loc.rank,
                                           queued.actAt, queued.casAt);
    if (compiledActive_)
        enqueueReplay(queued, ref);
}

void
FsScheduler::frameBoundary(uint64_t frame, Cycle now)
{
    if (!params_.powerDown)
        return;
    const auto &tp = dram_.timing();
    const Cycle q = frameLength();
    const Cycle frameEnd = (frame + 1) * q + lead_;
    if (q <= tp.xp + tp.cke)
        return;

    // A rank whose owning domains have nothing queued at the frame
    // start is powered down for the whole frame (Section 5.2, energy
    // optimisation 3). Under rank partitioning this depends only on
    // the owner's own state, so it leaks nothing.
    std::vector<bool> used(dram_.numRanks(), false);
    for (DomainId d = 0; d < mc_.numDomains(); ++d) {
        const mem::TransactionQueue &qd = mc_.queue(d);
        for (size_t i = 0; i < qd.size(); ++i)
            used[qd.at(i)->loc.rank] = true;
        for (const auto &p : mc_.prefetchQueue(d))
            used[p->loc.rank] = true;
    }
    for (const auto &op : planned_) {
        if (op.req)
            used[op.req->loc.rank] = true;
    }
    for (unsigned r = 0; r < dram_.numRanks(); ++r) {
        if (!used[r] && rankDownUntil_[r] <= now) {
            rankDownUntil_[r] = frameEnd;
            pdCreditCycles_[r] += q - tp.xp - tp.cke;
        }
    }
}

void
FsScheduler::decideSlot(uint64_t slot, Cycle now)
{
    const uint64_t frame = slot / slotsPerFrame_;
    const uint64_t idx = slot % slotsPerFrame_;
    if (idx == 0)
        frameBoundary(frame, now);

    if (nextRefresh_ != kNoCycle) {
        // The whole-epoch window [nextRefresh_ - margin, +pause) is a
        // deterministic, domain-independent blackout.
        // One-sided: the epoch rolls over only after its pause, so
        // every slot decided during it sees the armed blackout.
        const Cycle ref = slot * l_ + lead_;
        if (ref + refreshMargin_ > nextRefresh_) {
            skippedSlots_.inc();
            return;
        }
    }

    const DomainId domain = slotTable_[idx];
    if (domain == kPhantom) {
        skippedSlots_.inc();
        return;
    }

    const Cycle ref = slot * l_ + lead_;
    const auto &off = sol_.offsets;
    const unsigned group = groups_ > 1
                               ? static_cast<unsigned>(slot % groups_)
                               : 0;

    auto eligible = [&](const MemRequest &r) {
        if (groups_ > 1 && r.loc.bank % groups_ != group)
            return false;
        const bool w = r.type == ReqType::Write;
        const Cycle act = ref + (w ? off.actWrite : off.actRead);
        const Cycle cas = ref + (w ? off.casWrite : off.casRead);
        if (rankDownUntil_[r.loc.rank] > now)
            return false;
        return bankFree(r.loc.rank, r.loc.bank, act) &&
               rankFree(r.loc.rank, act, cas, w);
    };

    // 1. A real transaction from this domain's queue, oldest first.
    mem::TransactionQueue &q = mc_.queue(domain);
    if (MemRequest *r = q.findOldest(eligible)) {
        if (r != q.head())
            hazardDeferrals_.inc();
        const bool w = r->type == ReqType::Write;
        auto owned = q.take(r);
        owned->firstCommand = ref + (w ? off.actWrite : off.actRead);
        realOps_.inc();
        plan(slot, std::move(owned), w, false, ref);
        return;
    }
    if (!q.empty())
        hazardDeferrals_.inc();

    // 2. A prefetch, if the optimisation is enabled (Section 5.2).
    if (params_.prefetchInDummies) {
        auto &pq = mc_.prefetchQueue(domain);
        for (auto it = pq.begin(); it != pq.end(); ++it) {
            if (eligible(**it)) {
                auto owned = std::move(*it);
                pq.erase(it);
                owned->firstCommand = ref + off.actRead;
                prefetchOps_.inc();
                plan(slot, std::move(owned), false, false, ref);
                return;
            }
        }
    }

    // 3. A dummy read to an idle bank the domain owns — or nothing at
    //    all if the rank is powered down for this frame.
    const auto &ranks = mc_.addressMap().ranksOf(domain);
    const auto &banks = mc_.addressMap().banksOf(domain);
    const size_t combos = ranks.size() * banks.size();
    for (size_t tries = 0; tries < combos; ++tries) {
        const size_t cursor = (dummyRr_[domain] + tries) % combos;
        const unsigned bank = banks[cursor % banks.size()];
        const unsigned rank = ranks[cursor / banks.size()];
        if (groups_ > 1 && bank % groups_ != group)
            continue;
        if (rankDownUntil_[rank] > now) {
            // Powered-down rank: the slot is deliberately left empty.
            skippedSlots_.inc();
            return;
        }
        if (!bankFree(rank, bank, ref + off.actRead) ||
            !rankFree(rank, ref + off.actRead, ref + off.casRead,
                      false))
            continue;
        dummyRr_[domain] = cursor + 1;
        auto dummy = mc_.acquireRequest();
        dummy->type = ReqType::Dummy;
        dummy->domain = domain;
        dummy->arrival = now;
        dummy->loc.rank = rank;
        dummy->loc.bank = bank;
        dummy->loc.row = params_.rowBufferBoost
                             ? lastRow_[static_cast<size_t>(rank) *
                                            dram_.geometry().banksPerRank +
                                        bank]
                             : static_cast<unsigned>(
                                   domainRng_[domain].below(
                                       dram_.geometry().rowsPerBank));
        if (dummy->loc.row == ~0u)
            dummy->loc.row = 0;
        dummyOps_.inc();
        mc_.noteDummy();
        plan(slot, std::move(dummy), false, true, ref);
        return;
    }
    // Only reachable at very low thread counts, where rank-level
    // turnaround windows can exclude every placement; the slot is
    // deterministically skipped.
    skippedSlots_.inc();
}

void
FsScheduler::issueDue(Cycle now)
{
    for (auto &op : planned_) {
        if (!op.actIssued && op.actAt == now) {
            panic_if(!op.req, "planned op lost its request");
            Command act{CmdType::Act, op.req->loc.rank, op.req->loc.bank,
                        op.req->loc.row, op.req->id, op.suppressAct};
            dram_.issue(act, now);
            op.actIssued = true;
            return; // one command per cycle
        }
        if (op.actIssued && op.req && op.casAt == now) {
            const CmdType type = op.write ? CmdType::WrA : CmdType::RdA;
            Command cas{type, op.req->loc.rank, op.req->loc.bank,
                        op.req->loc.row, op.req->id, op.suppressCas};
            const dram::IssueResult res = dram_.issue(cas, now);
            mc_.noteBurst(op.dummy);
            mc_.finishRequest(std::move(op.req), res.dataEnd);
            return;
        }
        if (op.actAt > now && op.casAt > now)
            break;
    }
}

void
FsScheduler::tick(Cycle now)
{
    if (nextRefresh_ != kNoCycle && now >= nextRefresh_) {
        // Issue one REF per cycle until every rank is refreshed; the
        // epoch only rolls over once the last rank's tRFC elapsed, so
        // the slot blackout below stays armed throughout.
        if (refreshRankCursor_ < dram_.numRanks()) {
            dram_.issue(Command{CmdType::Ref, refreshRankCursor_, 0, 0,
                                0, false},
                        now);
            ++refreshRankCursor_;
            return;
        }
        if (now >= nextRefresh_ + refreshPause_) {
            nextRefresh_ += dram_.timing().refi;
            refreshRankCursor_ = 0;
        }
    }
    if (now % l_ == 0)
        decideSlot(now / l_, now);
    if (compiledActive_)
        applyUpTo(now); // ops this decide may have cycles == now
    else
        issueDue(now);
    while (!planned_.empty() && !planned_.front().req)
        planned_.pop_front();
}

Cycle
FsScheduler::nextWakeCycle(Cycle now) const
{
    const Cycle next = now + 1;
    if (compiledActive_) {
        // Decisions happen at slot boundaries; queued commands apply
        // lazily, so only a client-visible completion forces an
        // executed cycle between boundaries.
        Cycle wake = (next + l_ - 1) / l_ * l_;
        wake = std::min(wake, ring_->minCompletion());
        return std::max(wake, next);
    }
    Cycle wake = kNoCycle;
    if (nextRefresh_ != kNoCycle) {
        if (next >= nextRefresh_) {
            // Mid-epoch: the REF burst issues one command per cycle,
            // and the epoch rollover must happen at its exact cycle
            // (a slot decided against a stale nextRefresh_ would see
            // the blackout armed when the naive loop would not).
            if (refreshRankCursor_ < dram_.numRanks())
                return next;
            wake = nextRefresh_ + refreshPause_;
        } else {
            wake = nextRefresh_;
        }
    }
    // Every multiple of l is a slot decision, even when it only
    // counts a blacked-out, phantom or powered-down slot.
    wake = std::min(wake, (next + l_ - 1) / l_ * l_);
    // Pending planned commands. issueDue() matches cycles exactly, so
    // an op whose cycle already passed un-issued can never fire and is
    // no reason to wake — the naive loop ignores it identically.
    for (const auto &op : planned_) {
        if (!op.actIssued) {
            if (op.actAt >= next)
                wake = std::min(wake, op.actAt);
        } else if (op.req && op.casAt >= next) {
            wake = std::min(wake, op.casAt);
        }
    }
    return std::max(wake, next);
}

void
FsScheduler::finalize(Cycle now)
{
    (void)now;
    // Move power-down credit cycles from precharge standby to
    // power-down in the energy books (the commands themselves were
    // never simulated; Section 5.2 argues the command bus has free
    // cycles for PDE/PDX in every interval).
    for (unsigned r = 0; r < dram_.numRanks(); ++r) {
        auto &e = dram_.rank(r).energy();
        const uint64_t credit =
            std::min(pdCreditCycles_[r], e.cyclesPrecharge);
        e.cyclesPrecharge -= credit;
        e.cyclesPowerDown += credit;
        pdCreditCycles_[r] = 0;
    }
}

void
FsScheduler::registerStats(StatGroup &group) const
{
    group.add("real_ops", &realOps_, "slots serving real transactions");
    group.add("dummy_ops", &dummyOps_, "slots serving dummy operations");
    group.add("prefetch_ops", &prefetchOps_,
              "slots serving prefetch operations");
    group.add("skipped_slots", &skippedSlots_,
              "phantom or powered-down slots");
    group.add("hazard_deferrals", &hazardDeferrals_,
              "head-of-queue passed over for a safe transaction");
    group.add("boosted_acts", &boostedActs_,
              "activates suppressed by the row-buffer boost");
    group.add("skewed_ops", &skewedOps_,
              "operations shifted by slot-skew fault injection");
    group.addFormula(
        "dummy_fraction",
        [this] {
            const double total = static_cast<double>(
                realOps_.value() + dummyOps_.value() +
                prefetchOps_.value());
            return total > 0 ? dummyOps_.value() / total : 0.0;
        },
        "fraction of issued slots that were dummies");
}

void
FsScheduler::saveState(Serializer &s) const
{
    s.section("fs");
    s.putU64(planned_.size());
    for (const PlannedOp &op : planned_) {
        s.putBool(op.req != nullptr);
        if (op.req)
            mem::serializeRequest(s, *op.req);
        s.putBool(op.write);
        s.putBool(op.dummy);
        s.putBool(op.suppressAct);
        s.putBool(op.suppressCas);
        s.putU64(op.actAt);
        s.putU64(op.casAt);
        s.putBool(op.actIssued);
    }
    s.putU64(plannedBankFree_.size());
    for (Cycle c : plannedBankFree_)
        s.putU64(c);
    s.putU64(rankPlan_.size());
    for (const RankPlan &rp : rankPlan_) {
        s.putU64(rp.nextRead);
        s.putU64(rp.nextWrite);
        s.putU64(rp.nextAct);
        s.putU64(rp.acts.size());
        for (Cycle c : rp.acts)
            s.putU64(c);
    }
    s.putU64(lastRow_.size());
    for (unsigned r : lastRow_)
        s.putU32(r);
    s.putU64(domainRng_.size());
    for (const Rng &rng : domainRng_) {
        uint64_t st[4];
        rng.getState(st);
        for (uint64_t w : st)
            s.putU64(w);
    }
    s.putU64(dummyRr_.size());
    for (size_t c : dummyRr_)
        s.putU64(c);
    s.putU64(rankDownUntil_.size());
    for (Cycle c : rankDownUntil_)
        s.putU64(c);
    s.putU64(pdCreditCycles_.size());
    for (uint64_t c : pdCreditCycles_)
        s.putU64(c);
    s.putU64(nextRefresh_);
    s.putU32(refreshRankCursor_);
    realOps_.saveState(s);
    dummyOps_.saveState(s);
    prefetchOps_.saveState(s);
    skippedSlots_.saveState(s);
    hazardDeferrals_.saveState(s);
    boostedActs_.saveState(s);
    skewedOps_.saveState(s);
}

void
FsScheduler::restoreState(Deserializer &d)
{
    d.section("fs");
    planned_.clear();
    const uint64_t nops = d.getU64();
    for (uint64_t i = 0; i < nops; ++i) {
        PlannedOp op;
        if (d.getBool()) {
            bool hadClient = false;
            op.req = mem::deserializeRequest(d, &hadClient);
            if (hadClient)
                op.req->client = mc_.clientFor(op.req->domain);
        }
        op.write = d.getBool();
        op.dummy = d.getBool();
        op.suppressAct = d.getBool();
        op.suppressCas = d.getBool();
        op.actAt = d.getU64();
        op.casAt = d.getU64();
        op.actIssued = d.getBool();
        planned_.push_back(std::move(op));
    }
    if (d.getU64() != plannedBankFree_.size())
        d.fail("planned bank count mismatch");
    for (Cycle &c : plannedBankFree_)
        c = d.getU64();
    if (d.getU64() != rankPlan_.size())
        d.fail("rank plan count mismatch");
    for (RankPlan &rp : rankPlan_) {
        rp.nextRead = d.getU64();
        rp.nextWrite = d.getU64();
        rp.nextAct = d.getU64();
        const uint64_t acts = d.getU64();
        rp.acts.clear();
        for (uint64_t i = 0; i < acts; ++i)
            rp.acts.push_back(d.getU64());
    }
    if (d.getU64() != lastRow_.size())
        d.fail("last-row table size mismatch");
    for (unsigned &r : lastRow_)
        r = d.getU32();
    if (d.getU64() != domainRng_.size())
        d.fail("domain RNG count mismatch");
    for (Rng &rng : domainRng_) {
        uint64_t st[4];
        for (uint64_t &w : st)
            w = d.getU64();
        rng.setState(st);
    }
    if (d.getU64() != dummyRr_.size())
        d.fail("dummy cursor count mismatch");
    for (size_t &c : dummyRr_)
        c = d.getU64();
    if (d.getU64() != rankDownUntil_.size())
        d.fail("rank power-down count mismatch");
    for (Cycle &c : rankDownUntil_)
        c = d.getU64();
    if (d.getU64() != pdCreditCycles_.size())
        d.fail("power-down credit count mismatch");
    for (uint64_t &c : pdCreditCycles_)
        c = d.getU64();
    nextRefresh_ = d.getU64();
    refreshRankCursor_ = d.getU32();
    realOps_.restoreState(d);
    dummyOps_.restoreState(d);
    prefetchOps_.restoreState(d);
    skippedSlots_.restoreState(d);
    hazardDeferrals_.restoreState(d);
    boostedActs_.restoreState(d);
    skewedOps_.restoreState(d);

    // Replay state is derived, never serialized: rebuild the event
    // ring and the energy intervals from the restored plan. This is
    // what makes checkpoints portable across sim.compiled modes.
    if (compiledActive_) {
        ring_->clear();
        if (dram_.compiledEnergy().active())
            dram_.compiledEnergy().clearIntervals();
        bool ok = true;
        for (PlannedOp &op : planned_) {
            if (!op.req)
                continue; // CAS already applied; interval is all past
            if (dram_.compiledEnergy().active())
                dram_.compiledEnergy().addInterval(op.req->loc.rank,
                                                   op.actAt, op.casAt);
            const Cycle completeAt =
                op.req->client
                    ? op.casAt + (op.write ? completeWriteDelta_
                                           : completeReadDelta_)
                    : kNoCycle;
            if (!op.actIssued)
                ok = ok && ring_->push({op.actAt, kNoCycle, &op, false});
            ok = ok && ring_->push({op.casAt, completeAt, &op, true});
        }
        if (!ok) {
            ++compiledFallbacks_;
            disableCompiled();
        }
    }
}

} // namespace memsec::sched
