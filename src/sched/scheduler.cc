#include "sched/scheduler.hh"

#include "util/logging.hh"

// This translation unit anchors the vtable so every policy links
// against one definition.

namespace memsec::sched {

void
Scheduler::saveState(Serializer &s) const
{
    (void)s;
    panic("scheduler {} does not implement saveState", name());
}

void
Scheduler::restoreState(Deserializer &d)
{
    (void)d;
    panic("scheduler {} does not implement restoreState", name());
}

} // namespace memsec::sched
