#include "sched/scheduler.hh"

// Scheduler is header-only today; this translation unit anchors the
// vtable so every policy links against one definition.

namespace memsec::sched {
} // namespace memsec::sched
