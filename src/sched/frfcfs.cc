#include "sched/frfcfs.hh"

#include <algorithm>

#include "util/logging.hh"
#include "util/serialize.hh"

namespace memsec::sched {

using mem::MemRequest;
using mem::ReqType;
using dram::CmdType;
using dram::Command;

FrFcfsEngine::FrFcfsEngine(mem::MemoryController &mc, const Options &opt)
    : mc_(mc), dram_(mc.dram()), opt_(opt)
{
}

void
FrFcfsEngine::updateDrainMode(const std::vector<DomainId> &domains)
{
    size_t writes = 0;
    size_t reads = 0;
    for (DomainId d : domains) {
        writes += mc_.queue(d).writeCount();
        reads += mc_.queue(d).readCount();
    }
    if (drainingWrites_) {
        if (writes <= opt_.writeLoWatermark)
            drainingWrites_ = false;
    } else if (writes >= opt_.writeHiWatermark ||
               (reads == 0 && writes > 0)) {
        drainingWrites_ = true;
    }
}

bool
FrFcfsEngine::tick(Cycle now, const std::vector<DomainId> &domains,
                   const TurnGate &gate)
{
    updateDrainMode(domains);
    const bool wantWrites = drainingWrites_;

    // Type-aware turn-end gates (see TurnGate): each bound keeps the
    // command's shared-state footprint inside the current turn.
    const auto &tp = dram_.timing();
    bool mayAct = true;
    bool mayCasRead = true;
    bool mayCasWrite = true;
    bool inDeadTime = false;
    if (gate.turnEnd != kNoCycle) {
        const Cycle tE = gate.turnEnd;
        // Reads: burst plus a rank switch must end by tE.
        mayCasRead = now + tp.cas + tp.burst + tp.rtrs <= tE;
        if (gate.sharedBanks) {
            // Writes must also reach precharged state by tE.
            mayCasWrite =
                now + tp.cwd + tp.burst + tp.wr + tp.rp <= tE;
            // An ACT must allow tRAS + tRP before tE.
            mayAct = now + tp.ras + tp.rp <= tE;
        } else {
            // Private banks: rows persist, but the write-to-read
            // turnaround and the tFAW window must not spill.
            mayCasWrite = now + tp.wr2rd() <= tE;
            mayAct = now + (tp.faw - 3 * tp.rrd) + 1 <= tE;
        }
        if (gate.deadTime > 0)
            mayAct = mayAct && now + gate.deadTime <= tE;
        inDeadTime = !mayAct;
    }

    // Single pass over the queues: find the oldest ready row-hit CAS,
    // the oldest ACT for a closed bank, and the oldest PRE candidate
    // for a conflicting open row. Also remember which open rows still
    // have pending hits so PRE never closes a useful row.
    MemRequest *casCand = nullptr;
    MemRequest *actCand = nullptr;
    MemRequest *preCand = nullptr;
    // (rank,bank) pairs whose open row has at least one pending hit.
    std::vector<std::pair<unsigned, unsigned>> usefulRows;

    auto older = [](MemRequest *a, MemRequest *b) {
        return !b || a->arrival < b->arrival ||
               (a->arrival == b->arrival && a->id < b->id);
    };
    // Rank affinity: back-to-back bursts from one rank are gapless,
    // while switching ranks costs tRTRS — prefer CAS candidates on
    // the rank that last owned the data bus.
    const unsigned affineRank = dram_.buses().lastDataRank();
    auto betterCas = [&](MemRequest *a, MemRequest *b) {
        if (!b)
            return true;
        const bool aAff = a->loc.rank == affineRank;
        const bool bAff = b->loc.rank == affineRank;
        if (aAff != bAff)
            return aAff;
        return older(a, b);
    };

    for (DomainId d : domains) {
        const mem::TransactionQueue &q = mc_.queue(d);
        for (size_t i = 0; i < q.size(); ++i) {
            MemRequest *r = const_cast<MemRequest *>(q.at(i));
            const bool isWrite = r->type == ReqType::Write;
            if (isWrite != wantWrites)
                continue;
            if (r->loc.rank == gate.avoidRank)
                continue;
            const dram::Bank &bk = dram_.rank(r->loc.rank).bank(r->loc.bank);
            if (bk.isOpen() && bk.openRow() == r->loc.row) {
                usefulRows.emplace_back(r->loc.rank, r->loc.bank);
                if (isWrite ? !mayCasWrite : !mayCasRead)
                    continue;
                Command cas{isWrite ? CmdType::Wr : CmdType::Rd,
                            r->loc.rank, r->loc.bank, r->loc.row, r->id,
                            false};
                if (dram_.canIssue(cas, now) && betterCas(r, casCand))
                    casCand = r;
            } else if (!bk.isOpen()) {
                if (!mayAct)
                    continue;
                Command act{CmdType::Act, r->loc.rank, r->loc.bank,
                            r->loc.row, r->id, false};
                if (dram_.canIssue(act, now) && older(r, actCand))
                    actCand = r;
            } else {
                if (!mayAct)
                    continue;
                Command pre{CmdType::Pre, r->loc.rank, r->loc.bank,
                            bk.openRow(), r->id, false};
                if (dram_.canIssue(pre, now) && older(r, preCand))
                    preCand = r;
            }
        }
    }

    if (casCand) {
        issueFor(casCand, true, now);
        return true;
    }
    if (actCand) {
        issueFor(actCand, false, now);
        return true;
    }
    if (preCand) {
        // Only close a row nobody still wants.
        const auto key = std::make_pair(preCand->loc.rank,
                                        preCand->loc.bank);
        if (std::find(usefulRows.begin(), usefulRows.end(), key) ==
            usefulRows.end()) {
            const dram::Bank &bk =
                dram_.rank(preCand->loc.rank).bank(preCand->loc.bank);
            Command pre{CmdType::Pre, preCand->loc.rank, preCand->loc.bank,
                        bk.openRow(), preCand->id, false};
            dram_.issue(pre, now);
            ++rowConflicts_;
            return true;
        }
    }

    if (inDeadTime && gate.sharedBanks &&
        now + tp.rp <= gate.turnEnd) {
        // Dead time with shared banks: close any open rows so the
        // next turn starts from a precharged state (TP cleanup).
        for (unsigned r = 0; r < dram_.numRanks(); ++r) {
            for (unsigned b = 0; b < dram_.rank(r).numBanks(); ++b) {
                const dram::Bank &bk = dram_.rank(r).bank(b);
                if (!bk.isOpen())
                    continue;
                Command pre{CmdType::Pre, r, b, bk.openRow(), 0, false};
                if (dram_.canIssue(pre, now)) {
                    dram_.issue(pre, now);
                    return true;
                }
            }
        }
    }

    if (opt_.allowPrefetchPromote && !inDeadTime) {
        // Update the utilisation window every 1024 cycles.
        if (now - utilWindowStart_ >= 1024) {
            const uint64_t busy = dram_.buses().dataBusyCycles();
            prefetchUtilOk_ =
                busy - utilWindowBusy_ < (now - utilWindowStart_) / 2;
            utilWindowBusy_ = busy;
            utilWindowStart_ = now;
        }
        if (prefetchUtilOk_)
            promotePrefetches(domains, now);
    }
    return false;
}

bool
FrFcfsEngine::issueFor(MemRequest *req, bool isCas, Cycle now)
{
    if (!isCas) {
        Command act{CmdType::Act, req->loc.rank, req->loc.bank,
                    req->loc.row, req->id, false};
        dram_.issue(act, now);
        if (req->firstCommand == kNoCycle)
            req->firstCommand = now;
        return true;
    }

    const bool isWrite = req->type == ReqType::Write;
    Command cas{isWrite ? CmdType::Wr : CmdType::Rd, req->loc.rank,
                req->loc.bank, req->loc.row, req->id, false};
    const dram::IssueResult res = dram_.issue(cas, now);
    if (req->firstCommand == kNoCycle) {
        req->firstCommand = now;
        ++rowHits_;
    } else {
        ++rowMisses_;
    }
    mc_.noteBurst(false);
    auto owned = mc_.queue(req->domain).take(req);
    mc_.finishRequest(std::move(owned), res.dataEnd);
    return true;
}

void
FrFcfsEngine::promotePrefetches(const std::vector<DomainId> &domains,
                                Cycle now)
{
    (void)now;
    for (DomainId d : domains) {
        auto &pq = mc_.prefetchQueue(d);
        if (pq.empty())
            continue;
        mem::TransactionQueue &q = mc_.queue(d);
        // Throttle: prefetches only ride along when the domain has
        // little demand waiting, so they never add queueing delay.
        if (q.readCount() > 2)
            continue;
        q.push(std::move(pq.front()));
        pq.pop_front();
    }
}

FrFcfsScheduler::FrFcfsScheduler(mem::MemoryController &mc,
                                 bool enablePrefetch, bool refresh)
    : Scheduler(mc),
      engine_(mc, FrFcfsEngine::Options{24, 8, enablePrefetch}),
      refreshEnabled_(refresh)
{
    for (DomainId d = 0; d < mc.numDomains(); ++d)
        allDomains_.push_back(d);
    // Stagger the per-rank refresh deadlines across tREFI.
    const auto &tp = dram_.timing();
    for (unsigned r = 0; r < dram_.numRanks(); ++r)
        nextRefresh_.push_back(tp.refi * (r + 1) / dram_.numRanks());
}

bool
FrFcfsScheduler::serviceRefresh(Cycle now, unsigned &avoidRank)
{
    for (unsigned r = 0; r < dram_.numRanks(); ++r) {
        if (now < nextRefresh_[r])
            continue;
        Command ref{CmdType::Ref, r, 0, 0, 0, false};
        if (dram_.canIssue(ref, now)) {
            dram_.issue(ref, now);
            nextRefresh_[r] += dram_.timing().refi;
            refreshes_.inc();
            return true;
        }
        // Drain: close this rank's open rows so REF becomes legal.
        avoidRank = r;
        for (unsigned b = 0; b < dram_.rank(r).numBanks(); ++b) {
            const dram::Bank &bk = dram_.rank(r).bank(b);
            if (!bk.isOpen())
                continue;
            Command pre{CmdType::Pre, r, b, bk.openRow(), 0, false};
            if (dram_.canIssue(pre, now)) {
                dram_.issue(pre, now);
                return true;
            }
        }
        return false; // waiting on tRAS/tWR; rank stays avoided
    }
    return false;
}

void
FrFcfsScheduler::tick(Cycle now)
{
    FrFcfsEngine::TurnGate gate;
    if (refreshEnabled_ && serviceRefresh(now, gate.avoidRank))
        return;
    engine_.tick(now, allDomains_, gate);
}

Cycle
FrFcfsScheduler::nextWakeCycle(Cycle now) const
{
    const Cycle next = now + 1;
    // Pending work anywhere needs per-cycle FR-FCFS decisions.
    for (DomainId d : allDomains_) {
        if (!mc_.queue(d).empty())
            return next;
    }
    // Prefetch promotion mutates the utilisation window every 1024
    // cycles and can move prefetch-queue entries into the demand
    // queues even while those are empty: never skip.
    if (engine_.promotesPrefetches())
        return next;
    // An armed drain mode settles (to false) on the next idle tick;
    // skipping that tick would leave it armed when a write arrives.
    if (engine_.drainingWrites())
        return next;
    Cycle wake = kNoCycle;
    if (refreshEnabled_) {
        for (const Cycle r : nextRefresh_) {
            if (next >= r)
                return next; // refresh due (or draining towards it)
            wake = std::min(wake, r);
        }
    }
    return std::max(wake, next);
}

void
FrFcfsScheduler::registerStats(StatGroup &group) const
{
    group.addFormula(
        "row_hits",
        [this] { return static_cast<double>(engine_.rowHits()); },
        "CAS issued to an already-open row");
    group.addFormula(
        "row_misses",
        [this] { return static_cast<double>(engine_.rowMisses()); },
        "CAS that needed its own activate");
    group.addFormula(
        "row_conflicts",
        [this] { return static_cast<double>(engine_.rowConflicts()); },
        "precharges forced by a conflicting open row");
}

void
FrFcfsEngine::saveState(Serializer &s) const
{
    s.section("frfcfs-engine");
    s.putBool(drainingWrites_);
    s.putU64(utilWindowStart_);
    s.putU64(utilWindowBusy_);
    s.putBool(prefetchUtilOk_);
    s.putU64(rowHits_);
    s.putU64(rowMisses_);
    s.putU64(rowConflicts_);
}

void
FrFcfsEngine::restoreState(Deserializer &d)
{
    d.section("frfcfs-engine");
    drainingWrites_ = d.getBool();
    utilWindowStart_ = d.getU64();
    utilWindowBusy_ = d.getU64();
    prefetchUtilOk_ = d.getBool();
    rowHits_ = d.getU64();
    rowMisses_ = d.getU64();
    rowConflicts_ = d.getU64();
}

void
FrFcfsScheduler::saveState(Serializer &s) const
{
    s.section("frfcfs");
    engine_.saveState(s);
    s.putU64(nextRefresh_.size());
    for (Cycle c : nextRefresh_)
        s.putU64(c);
    refreshes_.saveState(s);
}

void
FrFcfsScheduler::restoreState(Deserializer &d)
{
    d.section("frfcfs");
    engine_.restoreState(d);
    if (d.getU64() != nextRefresh_.size())
        d.fail("refresh schedule size mismatch");
    for (Cycle &c : nextRefresh_)
        c = d.getU64();
    refreshes_.restoreState(d);
}

} // namespace memsec::sched
