/**
 * @file
 * FR-FCFS+ engine and the non-secure baseline scheduler.
 *
 * The engine implements first-ready, first-come-first-served
 * scheduling with open-page row management, watermark-based write
 * draining, and optional prefetch promotion. It is reusable: the
 * baseline runs it over all domains with no time horizon; Temporal
 * Partitioning runs it over the single active domain with a
 * turn-end horizon (the dead time).
 */

#ifndef MEMSEC_SCHED_FRFCFS_HH
#define MEMSEC_SCHED_FRFCFS_HH

#include <vector>

#include "sched/scheduler.hh"

namespace memsec::sched {

/**
 * One cycle of FR-FCFS decision-making over a set of domains.
 * Stateless between calls except for the read/write drain mode.
 */
class FrFcfsEngine
{
  public:
    struct Options
    {
        size_t writeHiWatermark = 12; ///< enter drain mode at this many
        size_t writeLoWatermark = 4;  ///< leave drain mode at this many
        bool allowPrefetchPromote = false;
    };

    FrFcfsEngine(mem::MemoryController &mc, const Options &opt);

    /**
     * Turn-end gating for Temporal Partitioning: every command's
     * side effects on shared state (data bus occupancy, rank CAS
     * turnaround windows, tRRD/tFAW, row state for shared banks)
     * must be clean by `turnEnd` so the next domain's service cannot
     * depend on this one's behaviour. Pass turnEnd == kNoCycle for
     * unrestricted operation (the non-secure baseline).
     */
    struct TurnGate
    {
        Cycle turnEnd = kNoCycle;
        /** Extra margin on transaction starts (the configured TP
         *  "dead time"); the effective ACT gate is the larger of
         *  this and the timing-derived bound. */
        unsigned deadTime = 0;
        /** Banks shared between domains (no spatial partitioning):
         *  rows must also be precharged by turn end. */
        bool sharedBanks = false;
        /** Rank being drained for refresh: no new commands to it. */
        unsigned avoidRank = ~0u;
    };

    /**
     * Try to issue one command at `now` for domains in `domains`,
     * honouring the turn gate. Returns true if a command was issued.
     */
    bool tick(Cycle now, const std::vector<DomainId> &domains,
              const TurnGate &gate);

    /** Ungated tick (the non-secure baseline). */
    bool
    tick(Cycle now, const std::vector<DomainId> &domains)
    {
        return tick(now, domains, TurnGate{});
    }

    /** Forget the read/write drain mode (TP calls this at turn
     *  boundaries so one domain's drain state never carries into
     *  another domain's turn — that would be an information leak). */
    void resetDrainState() { drainingWrites_ = false; }

    /** Drain mode still armed (it settles on the next idle tick). */
    bool drainingWrites() const { return drainingWrites_; }

    /** Prefetch promotion enabled: the engine mutates its utilisation
     *  window and may move prefetch-queue entries on any tick. */
    bool promotesPrefetches() const { return opt_.allowPrefetchPromote; }

    uint64_t rowHits() const { return rowHits_; }
    uint64_t rowMisses() const { return rowMisses_; }
    uint64_t rowConflicts() const { return rowConflicts_; }

    void saveState(Serializer &s) const;
    void restoreState(Deserializer &d);

  private:
    struct Candidate
    {
        mem::MemRequest *req = nullptr;
        enum class Action { None, Cas, Act, Pre } action = Action::None;
    };

    bool issueFor(mem::MemRequest *req, bool isCas, Cycle now);
    void updateDrainMode(const std::vector<DomainId> &domains);
    void promotePrefetches(const std::vector<DomainId> &domains,
                           Cycle now);

    mem::MemoryController &mc_;
    dram::DramSystem &dram_;
    Options opt_;
    bool drainingWrites_ = false;
    // Feedback-directed prefetch throttle: promotion is paused while
    // the data bus runs hot (prefetch waste would displace demand).
    Cycle utilWindowStart_ = 0;
    uint64_t utilWindowBusy_ = 0;
    bool prefetchUtilOk_ = true;
    uint64_t rowHits_ = 0;
    uint64_t rowMisses_ = 0;
    uint64_t rowConflicts_ = 0;
};

/** The optimised non-secure baseline (stand-in for the MSC winner). */
class FrFcfsScheduler : public Scheduler
{
  public:
    explicit FrFcfsScheduler(mem::MemoryController &mc,
                             bool enablePrefetch = false,
                             bool refresh = false);

    void tick(Cycle now) override;
    Cycle nextWakeCycle(Cycle now) const override;
    std::string name() const override { return "frfcfs"; }
    void registerStats(StatGroup &group) const override;

    const FrFcfsEngine &engine() const { return engine_; }

    /** Refreshes issued so far (0 when refresh is disabled). */
    uint64_t refreshes() const { return refreshes_.value(); }

    void saveState(Serializer &s) const override;
    void restoreState(Deserializer &d) override;

  private:
    /** Progress the per-rank refresh state machine; returns true if
     *  a command (REF or a draining PRE) was issued this cycle. */
    bool serviceRefresh(Cycle now, unsigned &avoidRank);

    FrFcfsEngine engine_;
    std::vector<DomainId> allDomains_;
    bool refreshEnabled_ = false;
    std::vector<Cycle> nextRefresh_;
    Counter refreshes_;
};

} // namespace memsec::sched

#endif // MEMSEC_SCHED_FRFCFS_HH
