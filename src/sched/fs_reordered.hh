/**
 * @file
 * Fixed-Service with reordered bank partitioning (Section 4.2).
 *
 * All domains inject one transaction at the start of each interval;
 * the scheduler performs every read first, then every write, with a
 * tight uniform data spacing, and ends the interval with a single
 * write-to-read recovery gap. Reordering by type would leak the
 * co-runners' read/write mix through read latency, so all read
 * results are returned to the cores en masse at the end of the
 * interval.
 */

#ifndef MEMSEC_SCHED_FS_REORDERED_HH
#define MEMSEC_SCHED_FS_REORDERED_HH

#include <deque>
#include <vector>

#include "core/pipeline_solver.hh"
#include "sched/scheduler.hh"
#include "util/random.hh"

namespace memsec::sched {

/** Interval-batched, read/write-reordered FS scheduler. */
class FsReorderedScheduler : public Scheduler
{
  public:
    struct Params
    {
        uint64_t rngSeed = 0x5eedf00d;
    };

    FsReorderedScheduler(mem::MemoryController &mc, const Params &params);

    void tick(Cycle now) override;
    Cycle nextWakeCycle(Cycle now) const override;
    std::string name() const override { return "fs-reordered-bank"; }
    void registerStats(StatGroup &group) const override;

    /**
     * Reordered FS has no hyperperiod slot table the verifier can
     * unroll: the interval's command layout depends on the domains'
     * read/write mix, so the template is solver-derived per interval
     * rather than statically enumerable. Replay therefore reuses the
     * decide-time command cycles verbatim (exactly what the
     * interpreted path would issue) and `sim.compiled=verify`
     * re-checks every command against the dynamic TimingChecker.
     */
    bool enableCompiledReplay(const CompiledReplayOptions &opts) override;
    bool compiledActive() const override { return compiledActive_; }
    void applyUpTo(Cycle now) override;
    uint64_t compiledCommands() const override { return compiledCmds_; }
    uint64_t compiledFallbacks() const override
    {
        return compiledFallbacks_;
    }

    Cycle intervalLength() const { return q_; }
    const core::ReorderedSolution &solution() const { return sol_; }

    uint64_t realOps() const { return realOps_.value(); }
    uint64_t dummyOps() const { return dummyOps_.value(); }

    void saveState(Serializer &s) const override;
    void restoreState(Deserializer &d) override;

  private:
    struct PlannedOp
    {
        std::unique_ptr<mem::MemRequest> req;
        bool write = false;
        bool dummy = false;
        Cycle actAt = 0;
        Cycle casAt = 0;
        Cycle completeAt = 0;
        bool actIssued = false;
    };

    void decideInterval(uint64_t interval, Cycle now);
    bool bankFree(unsigned rank, unsigned bank, Cycle actAt) const;
    void reserveBank(unsigned rank, unsigned bank, Cycle actAt,
                     Cycle casAt, bool write);
    std::unique_ptr<mem::MemRequest> makeDummy(DomainId domain, bool write,
                                               Cycle actAt, Cycle now);
    void issueDue(Cycle now);

    /** Queue the op's ACT/CAS replay events; falls back on overflow. */
    void enqueueReplay(PlannedOp &op, Cycle now);
    /** Leave replay mode mid-run; the interpreted path resumes. */
    void disableCompiled();

    Params params_;
    core::ReorderedSolution sol_;
    core::SlotOffsets off_{};
    Cycle q_ = 0;
    Cycle lead_ = 0;

    std::deque<PlannedOp> planned_;
    std::vector<Cycle> plannedBankFree_;
    std::vector<Rng> domainRng_;
    std::vector<size_t> dummyRr_;

    /*
     * Compiled-replay state (docs/PERF.md). Derived, never serialized:
     * checkpoints carry only planned_, and the event ring plus energy
     * intervals are rebuilt on restore, which keeps checkpoint bytes
     * identical across sim.compiled modes.
     */
    CompiledMode compiledMode_ = CompiledMode::Off;
    bool compiledActive_ = false;
    std::unique_ptr<ReplayRing<PlannedOp>> ring_;
    uint64_t compiledCmds_ = 0;      ///< kernel accounting, not digest
    uint64_t compiledFallbacks_ = 0; ///< replay -> interpreted drops

    Counter realOps_;
    Counter dummyOps_;
    Counter hazardDeferrals_;
};

} // namespace memsec::sched

#endif // MEMSEC_SCHED_FS_REORDERED_HH
