#include "util/table.hh"

#include <algorithm>
#include <cctype>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace memsec {

void
Table::header(std::vector<std::string> cells)
{
    header_ = std::move(cells);
}

void
Table::row(std::vector<std::string> cells)
{
    rows_.push_back(std::move(cells));
}

void
Table::rowNumeric(const std::string &label,
                  const std::vector<double> &values, int precision)
{
    std::vector<std::string> cells;
    cells.push_back(label);
    for (double v : values)
        cells.push_back(num(v, precision));
    rows_.push_back(std::move(cells));
}

std::string
Table::num(double v, int precision)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << v;
    return os.str();
}

namespace {

/** "1.23", "-4", "56.7%", "2.0x" — things that should right-align. */
bool
looksNumeric(const std::string &s)
{
    size_t i = 0;
    if (i < s.size() && (s[i] == '+' || s[i] == '-'))
        ++i;
    bool digits = false;
    bool dot = false;
    for (; i < s.size(); ++i) {
        if (std::isdigit(static_cast<unsigned char>(s[i]))) {
            digits = true;
        } else if (s[i] == '.' && !dot) {
            dot = true;
        } else {
            break;
        }
    }
    if (!digits)
        return false;
    if (i < s.size() && (s[i] == '%' || s[i] == 'x'))
        ++i;
    return i == s.size();
}

/** Placeholder cells neither establish nor veto a numeric column. */
bool
neutralCell(const std::string &s)
{
    return s.empty() || s == "-";
}

} // namespace

void
Table::print(std::ostream &os) const
{
    std::vector<size_t> widths;
    auto grow = [&](const std::vector<std::string> &cells) {
        if (widths.size() < cells.size())
            widths.resize(cells.size(), 0);
        for (size_t i = 0; i < cells.size(); ++i)
            widths[i] = std::max(widths[i], cells[i].size());
    };
    grow(header_);
    for (const auto &r : rows_)
        grow(r);

    // A column of values right-aligns (so decimal magnitudes line up
    // even under a header wider than any value, e.g. a long scheme
    // name); a column containing any text left-aligns.
    std::vector<bool> numeric(widths.size(), false);
    for (size_t i = 0; i < widths.size(); ++i) {
        bool sawNumber = false;
        bool sawText = false;
        for (const auto &r : rows_) {
            if (i >= r.size() || neutralCell(r[i]))
                continue;
            (looksNumeric(r[i]) ? sawNumber : sawText) = true;
        }
        numeric[i] = sawNumber && !sawText;
    }

    auto emit = [&](const std::vector<std::string> &cells) {
        std::string line;
        for (size_t i = 0; i < cells.size(); ++i) {
            if (i > 0)
                line += "  ";
            const size_t pad = widths[i] > cells[i].size()
                                   ? widths[i] - cells[i].size()
                                   : 0;
            if (numeric[i])
                line += std::string(pad, ' ') + cells[i];
            else
                line += cells[i] + std::string(pad, ' ');
        }
        while (!line.empty() && line.back() == ' ')
            line.pop_back();
        os << line << "\n";
    };
    if (!header_.empty()) {
        emit(header_);
        size_t total = widths.empty() ? 0 : 2 * (widths.size() - 1);
        for (size_t w : widths)
            total += w;
        os << std::string(total, '-') << "\n";
    }
    for (const auto &r : rows_)
        emit(r);
}

void
Table::printCsv(std::ostream &os) const
{
    auto emit = [&](const std::vector<std::string> &cells) {
        for (size_t i = 0; i < cells.size(); ++i)
            os << (i ? "," : "") << cells[i];
        os << "\n";
    };
    if (!header_.empty())
        emit(header_);
    for (const auto &r : rows_)
        emit(r);
}

} // namespace memsec
