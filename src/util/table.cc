#include "util/table.hh"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace memsec {

void
Table::header(std::vector<std::string> cells)
{
    header_ = std::move(cells);
}

void
Table::row(std::vector<std::string> cells)
{
    rows_.push_back(std::move(cells));
}

void
Table::rowNumeric(const std::string &label,
                  const std::vector<double> &values, int precision)
{
    std::vector<std::string> cells;
    cells.push_back(label);
    for (double v : values)
        cells.push_back(num(v, precision));
    rows_.push_back(std::move(cells));
}

std::string
Table::num(double v, int precision)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << v;
    return os.str();
}

void
Table::print(std::ostream &os) const
{
    std::vector<size_t> widths;
    auto grow = [&](const std::vector<std::string> &cells) {
        if (widths.size() < cells.size())
            widths.resize(cells.size(), 0);
        for (size_t i = 0; i < cells.size(); ++i)
            widths[i] = std::max(widths[i], cells[i].size());
    };
    grow(header_);
    for (const auto &r : rows_)
        grow(r);

    auto emit = [&](const std::vector<std::string> &cells) {
        for (size_t i = 0; i < cells.size(); ++i) {
            os << std::left << std::setw(static_cast<int>(widths[i]) + 2)
               << cells[i];
        }
        os << "\n";
    };
    if (!header_.empty()) {
        emit(header_);
        size_t total = 0;
        for (size_t w : widths)
            total += w + 2;
        os << std::string(total, '-') << "\n";
    }
    for (const auto &r : rows_)
        emit(r);
}

void
Table::printCsv(std::ostream &os) const
{
    auto emit = [&](const std::vector<std::string> &cells) {
        for (size_t i = 0; i < cells.size(); ++i)
            os << (i ? "," : "") << cells[i];
        os << "\n";
    };
    if (!header_.empty())
        emit(header_);
    for (const auto &r : rows_)
        emit(r);
}

} // namespace memsec
