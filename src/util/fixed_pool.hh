/**
 * @file
 * Fixed-capacity object pool for allocation-free steady state.
 *
 * The compiled-replay hot path (docs/PERF.md) must not touch the heap
 * once a run reaches steady state: a slot is decided, its commands are
 * queued, applied, and retired, and every object involved should come
 * from storage that was sized up front. FixedPool provides that
 * storage: objects are constructed lazily up to a hard capacity and
 * recycled through a free list; exhaustion is a *structured*
 * condition (tryAcquire() returns nullptr, overflowError() describes
 * it as a SimError) rather than UB or an unbounded allocation.
 *
 * Ownership transfers with the object: tryAcquire() hands out a
 * unique_ptr, release() takes it back for reuse. Callers that need
 * graceful degradation pair the pool with a heap fallback and route
 * returns by provenance (MemoryController's dummy-request recycling);
 * callers with a hard budget (ReplayRing) surface the SimError and
 * fall back to the interpreted path.
 */

#ifndef MEMSEC_UTIL_FIXED_POOL_HH
#define MEMSEC_UTIL_FIXED_POOL_HH

#include <cstddef>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "util/logging.hh"
#include "util/sim_error.hh"

namespace memsec {

/** Fixed-capacity recycling pool; see file comment. */
template <typename T>
class FixedPool
{
  public:
    explicit FixedPool(size_t capacity, std::string name = "pool")
        : capacity_(capacity), name_(std::move(name))
    {
        free_.reserve(capacity_);
    }

    size_t capacity() const { return capacity_; }
    size_t outstanding() const { return outstanding_; }
    size_t cached() const { return free_.size(); }

    /**
     * Hand out a recycled object (reset to a default-constructed
     * state), or construct a new one while the pool is below
     * capacity. Returns nullptr when `capacity` objects are already
     * live or cached — never allocates past the budget.
     */
    std::unique_ptr<T> tryAcquire()
    {
        if (!free_.empty()) {
            std::unique_ptr<T> obj = std::move(free_.back());
            free_.pop_back();
            *obj = T{};
            ++outstanding_;
            return obj;
        }
        if (outstanding_ >= capacity_)
            return nullptr;
        ++outstanding_;
        return std::make_unique<T>();
    }

    /** Return an object acquired from this pool for reuse. */
    void release(std::unique_ptr<T> obj)
    {
        panic_if(obj == nullptr, "FixedPool[{}]: release(nullptr)",
                 name_);
        panic_if(outstanding_ == 0,
                 "FixedPool[{}]: release with no object outstanding",
                 name_);
        --outstanding_;
        free_.push_back(std::move(obj));
    }

    /** Structured description of an exhaustion at cycle `now`. */
    SimError overflowError(Cycle now, const std::string &what) const
    {
        SimError err;
        err.cycle = now;
        err.category = "pool-exhausted";
        err.message = "FixedPool[" + name_ + "] capacity " +
                      std::to_string(capacity_) + " exhausted: " + what;
        return err;
    }

  private:
    size_t capacity_ = 0;
    std::string name_;
    size_t outstanding_ = 0;              ///< live, not yet released
    std::vector<std::unique_ptr<T>> free_; ///< cached for reuse
};

} // namespace memsec

#endif // MEMSEC_UTIL_FIXED_POOL_HH
