/**
 * @file
 * Versioned binary serialization for deterministic snapshots.
 *
 * Every snapshot is a little-endian byte stream framed in a container
 * with a magic, a format version, the canonical config fingerprint of
 * the run that produced it, and a CRC32C over the payload. Decoding
 * never trusts the input: truncation, bit flips, version skew and
 * fingerprint mismatches all surface as SerializeError with a
 * structured category, so the caller can report a recoverable
 * SimError instead of restoring garbage state.
 *
 * Scalar encodings are fixed-width little-endian regardless of host
 * byte order; doubles are stored as their IEEE-754 bit pattern so a
 * restore round-trips hexfloat-exactly.
 */

#ifndef MEMSEC_UTIL_SERIALIZE_HH
#define MEMSEC_UTIL_SERIALIZE_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace memsec {

/** Snapshot container format version; bump on any layout change. */
constexpr uint32_t kSnapshotVersion = 1;

/** Magic prefix of every snapshot container file. */
constexpr char kSnapshotMagic[9] = "MSECSNAP";

/**
 * Structured decode failure. `category` is one of the stable strings
 * used as SimError categories by the durability layer:
 *  - "snapshot-truncate": input ended before the declared content
 *  - "snapshot-corrupt":  magic/CRC/structure mismatch (bit damage)
 *  - "snapshot-version":  container version != kSnapshotVersion
 *  - "snapshot-stale":    embedded fingerprint != expected fingerprint
 */
struct SerializeError
{
    uint64_t offset = 0;  ///< byte offset where decoding failed
    std::string category; ///< stable machine-readable reason
    std::string message;  ///< human-readable detail

    std::string toString() const;
};

/** Append-only little-endian encoder. */
class Serializer
{
  public:
    void putU8(uint8_t v) { buf_.push_back(static_cast<char>(v)); }
    void putU32(uint32_t v);
    void putU64(uint64_t v);
    void putI64(int64_t v) { putU64(static_cast<uint64_t>(v)); }
    void putBool(bool v) { putU8(v ? 1 : 0); }
    /** IEEE-754 bit pattern; round-trips exactly. */
    void putDouble(double v);
    /** u64 length followed by raw bytes. */
    void putString(std::string_view v);

    /**
     * Emit a named section marker. The matching Deserializer::section
     * call verifies it, so a reader/writer mismatch fails loudly at
     * the boundary that drifted instead of silently mis-decoding
     * everything after it.
     */
    void section(std::string_view tag) { putString(tag); }

    const std::string &data() const { return buf_; }
    std::string take() { return std::move(buf_); }
    size_t size() const { return buf_.size(); }

  private:
    std::string buf_;
};

/** Bounds-checked little-endian decoder; throws SerializeError. */
class Deserializer
{
  public:
    explicit Deserializer(std::string_view data) : data_(data) {}

    uint8_t getU8();
    uint32_t getU32();
    uint64_t getU64();
    int64_t getI64() { return static_cast<int64_t>(getU64()); }
    bool getBool();
    double getDouble();
    std::string getString();

    /** Verify a section marker written by Serializer::section. */
    void section(std::string_view tag);

    uint64_t offset() const { return pos_; }
    size_t remaining() const { return data_.size() - pos_; }
    bool atEnd() const { return pos_ == data_.size(); }

    /** Throw a "snapshot-corrupt" error at the current offset. */
    [[noreturn]] void fail(const std::string &message) const;

  private:
    /** Ensure n more bytes exist; throws "snapshot-truncate". */
    void need(size_t n) const;

    std::string_view data_;
    size_t pos_ = 0;
};

/** CRC32C (Castagnoli, reflected 0x82F63B78), software table. */
uint32_t crc32c(const void *data, size_t len, uint32_t seed = 0);
inline uint32_t
crc32c(std::string_view s, uint32_t seed = 0)
{
    return crc32c(s.data(), s.size(), seed);
}

/**
 * Wrap a payload in the snapshot container:
 *   magic(8) | version u32 | fingerprint string | payload-length u64 |
 *   crc32c(payload) u32 | payload bytes.
 */
std::string encodeSnapshot(std::string_view fingerprint,
                           std::string_view payload);

/**
 * Unwrap a snapshot container, verifying magic, version, fingerprint
 * (when `expectedFingerprint` is nonempty) and payload CRC. Throws
 * SerializeError with the categories documented above.
 */
std::string decodeSnapshot(std::string_view bytes,
                           std::string_view expectedFingerprint);

/**
 * Write bytes to `path` atomically (tmp file + rename) so a crash
 * mid-write can never leave a half-written snapshot under the final
 * name. Returns false (with a warning) on I/O failure — durability is
 * best-effort; the simulation itself must not die because a disk did.
 */
bool writeFileAtomic(const std::string &path, std::string_view bytes);

/** Read a whole file; returns false if it cannot be opened. */
bool readFileBytes(const std::string &path, std::string &out);

/**
 * Create `dir` (and parents) if missing. Returns false (with a
 * warning) on failure; an existing directory is success.
 */
bool ensureDirectory(const std::string &dir);

} // namespace memsec

#endif // MEMSEC_UTIL_SERIALIZE_HH
