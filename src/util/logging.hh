/**
 * @file
 * Status and error reporting helpers in the gem5 tradition.
 *
 * panic()  — an internal invariant was violated (simulator bug); aborts.
 * fatal()  — the user asked for something impossible (bad config); exits.
 * warn()   — something is suspicious but the run can continue.
 * inform() — plain status output.
 */

#ifndef MEMSEC_UTIL_LOGGING_HH
#define MEMSEC_UTIL_LOGGING_HH

#include <cstdio>
#include <cstdlib>
#include <functional>
#include <sstream>
#include <string>

namespace memsec {

/** Severity levels used by the logging backend. */
enum class LogLevel { Inform, Warn, Fatal, Panic };

namespace detail {

/** Emit one formatted log line; terminates for Fatal/Panic. */
[[noreturn]] void logAndDie(LogLevel level, const std::string &msg,
                            const char *file, int line);
void log(LogLevel level, const std::string &msg);

/** Recursive "{}"-style formatter terminal case. */
inline void
formatInto(std::ostringstream &os, const char *fmt)
{
    os << fmt;
}

/** Recursive "{}"-style formatter: each {} consumes one argument. */
template <typename T, typename... Rest>
void
formatInto(std::ostringstream &os, const char *fmt, const T &first,
           const Rest &...rest)
{
    for (; *fmt; ++fmt) {
        if (fmt[0] == '{' && fmt[1] == '}') {
            os << first;
            formatInto(os, fmt + 2, rest...);
            return;
        }
        os << *fmt;
    }
}

template <typename... Args>
std::string
format(const char *fmt, const Args &...args)
{
    std::ostringstream os;
    formatInto(os, fmt, args...);
    return os.str();
}

} // namespace detail

/** Abort with a message; for conditions that indicate a simulator bug. */
template <typename... Args>
[[noreturn]] void
panicImpl(const char *file, int line, const char *fmt, const Args &...args)
{
    detail::logAndDie(LogLevel::Panic, detail::format(fmt, args...),
                      file, line);
}

/** Exit with a message; for conditions caused by user configuration. */
template <typename... Args>
[[noreturn]] void
fatalImpl(const char *file, int line, const char *fmt, const Args &...args)
{
    detail::logAndDie(LogLevel::Fatal, detail::format(fmt, args...),
                      file, line);
}

template <typename... Args>
void
warn(const char *fmt, const Args &...args)
{
    detail::log(LogLevel::Warn, detail::format(fmt, args...));
}

template <typename... Args>
void
inform(const char *fmt, const Args &...args)
{
    detail::log(LogLevel::Inform, detail::format(fmt, args...));
}

/** Silence inform()/warn() output (benches print their own tables). */
void setQuiet(bool quiet);
bool isQuiet();

/**
 * Register a callback run (in registration order) when panic() fires,
 * before the failure propagates — the hook for crash snapshots such
 * as the DRAM command-ring dump. Returns an id for removal; handlers
 * must deregister before their captured state dies. Re-entrant panics
 * inside a handler are suppressed.
 */
int addCrashHandler(std::function<void()> handler);
void removeCrashHandler(int id);

} // namespace memsec

#define panic(...) \
    ::memsec::panicImpl(__FILE__, __LINE__, __VA_ARGS__)
#define fatal(...) \
    ::memsec::fatalImpl(__FILE__, __LINE__, __VA_ARGS__)

/** Assert a simulator invariant with a formatted explanation. */
#define panic_if(cond, ...)                                        \
    do {                                                           \
        if (cond)                                                  \
            ::memsec::panicImpl(__FILE__, __LINE__, __VA_ARGS__);  \
    } while (0)

#define fatal_if(cond, ...)                                        \
    do {                                                           \
        if (cond)                                                  \
            ::memsec::fatalImpl(__FILE__, __LINE__, __VA_ARGS__);  \
    } while (0)

#endif // MEMSEC_UTIL_LOGGING_HH
