#include "util/logging.hh"

#include <atomic>
#include <iostream>
#include <mutex>
#include <stdexcept>
#include <utility>
#include <vector>

namespace memsec {

namespace {

std::atomic<bool> quietFlag{false};

struct CrashHandler
{
    int id = 0;
    std::function<void()> fn;
};

// Every DramSystem registers a crash handler on construction, and the
// campaign runner constructs experiments from worker threads, so the
// registry must be lock-protected.
std::mutex &
crashHandlerMutex()
{
    static std::mutex m;
    return m;
}

std::vector<CrashHandler> &
crashHandlers()
{
    static std::vector<CrashHandler> handlers;
    return handlers;
}

int nextHandlerId = 1;
bool inCrashHandlers = false;

} // namespace

int
addCrashHandler(std::function<void()> handler)
{
    std::lock_guard<std::mutex> lock(crashHandlerMutex());
    const int id = nextHandlerId++;
    crashHandlers().push_back({id, std::move(handler)});
    return id;
}

void
removeCrashHandler(int id)
{
    std::lock_guard<std::mutex> lock(crashHandlerMutex());
    auto &handlers = crashHandlers();
    for (auto it = handlers.begin(); it != handlers.end(); ++it) {
        if (it->id == id) {
            handlers.erase(it);
            return;
        }
    }
}

void
setQuiet(bool quiet)
{
    quietFlag = quiet;
}

bool
isQuiet()
{
    return quietFlag;
}

namespace detail {

void
log(LogLevel level, const std::string &msg)
{
    if (quietFlag && (level == LogLevel::Inform || level == LogLevel::Warn))
        return;
    const char *tag = level == LogLevel::Warn ? "warn: " : "info: ";
    std::cerr << tag << msg << "\n";
}

void
logAndDie(LogLevel level, const std::string &msg, const char *file, int line)
{
    const char *tag = level == LogLevel::Panic ? "panic" : "fatal";
    std::cerr << tag << ": " << msg << " (" << file << ":" << line << ")\n";
    if (level == LogLevel::Panic) {
        // Crash snapshots (e.g. the DRAM command-ring dump) run before
        // the failure propagates so post-mortem state reaches stderr.
        // The registry lock also serialises concurrent panics from
        // different campaign workers.
        std::lock_guard<std::mutex> lock(crashHandlerMutex());
        if (!inCrashHandlers) {
            inCrashHandlers = true;
            for (const auto &h : crashHandlers())
                h.fn();
            inCrashHandlers = false;
        }
    }
    if (level == LogLevel::Panic) {
        // Throw instead of abort() so gtest death/exception tests can
        // observe invariant violations without killing the test binary.
        throw std::logic_error(msg);
    }
    std::exit(1);
}

} // namespace detail
} // namespace memsec
