#include "util/logging.hh"

#include <iostream>
#include <stdexcept>

namespace memsec {

namespace {
bool quietFlag = false;
}

void
setQuiet(bool quiet)
{
    quietFlag = quiet;
}

bool
isQuiet()
{
    return quietFlag;
}

namespace detail {

void
log(LogLevel level, const std::string &msg)
{
    if (quietFlag && (level == LogLevel::Inform || level == LogLevel::Warn))
        return;
    const char *tag = level == LogLevel::Warn ? "warn: " : "info: ";
    std::cerr << tag << msg << "\n";
}

void
logAndDie(LogLevel level, const std::string &msg, const char *file, int line)
{
    const char *tag = level == LogLevel::Panic ? "panic" : "fatal";
    std::cerr << tag << ": " << msg << " (" << file << ":" << line << ")\n";
    if (level == LogLevel::Panic) {
        // Throw instead of abort() so gtest death/exception tests can
        // observe invariant violations without killing the test binary.
        throw std::logic_error(msg);
    }
    std::exit(1);
}

} // namespace detail
} // namespace memsec
