#include "util/thread_pool.hh"

#include <algorithm>

namespace memsec {

ThreadPool::ThreadPool(unsigned workers)
{
    const unsigned n = std::max(1u, workers);
    threads_.reserve(n);
    for (unsigned i = 0; i < n; ++i)
        threads_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    drain(); // swallow any captured exception: destructors must not throw
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    workAvailable_.notify_all();
    for (auto &t : threads_)
        t.join();
}

void
ThreadPool::submit(std::function<void()> job)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        queue_.push_back(std::move(job));
        ++submitted_;
        ++inFlight_;
    }
    workAvailable_.notify_one();
}

void
ThreadPool::wait()
{
    std::unique_lock<std::mutex> lock(mutex_);
    allDone_.wait(lock, [this] { return inFlight_ == 0; });
    if (firstError_) {
        std::exception_ptr e = nullptr;
        std::swap(e, firstError_);
        lock.unlock();
        std::rethrow_exception(e);
    }
}

void
ThreadPool::drain()
{
    std::unique_lock<std::mutex> lock(mutex_);
    allDone_.wait(lock, [this] { return inFlight_ == 0; });
    firstError_ = nullptr;
}

uint64_t
ThreadPool::submitted() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return submitted_;
}

unsigned
ThreadPool::defaultWorkers()
{
    return std::max(1u, std::thread::hardware_concurrency());
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> job;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            workAvailable_.wait(lock, [this] {
                return stopping_ || !queue_.empty();
            });
            if (queue_.empty())
                return; // stopping_ and drained
            job = std::move(queue_.front());
            queue_.pop_front();
        }
        try {
            job();
        } catch (...) {
            std::lock_guard<std::mutex> lock(mutex_);
            if (!firstError_)
                firstError_ = std::current_exception();
        }
        {
            std::lock_guard<std::mutex> lock(mutex_);
            if (--inFlight_ == 0)
                allDone_.notify_all();
        }
    }
}

} // namespace memsec
