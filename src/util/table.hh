/**
 * @file
 * Minimal fixed-width text table printer used by the bench harnesses
 * to emit paper-style result tables.
 */

#ifndef MEMSEC_UTIL_TABLE_HH
#define MEMSEC_UTIL_TABLE_HH

#include <iosfwd>
#include <string>
#include <vector>

namespace memsec {

/**
 * Accumulates rows of cells and prints them with aligned columns.
 * Also supports CSV emission so figures can be re-plotted externally.
 */
class Table
{
  public:
    /** Set the header row. */
    void header(std::vector<std::string> cells);

    /** Append a data row. */
    void row(std::vector<std::string> cells);

    /** Convenience: build a row from a label and doubles. */
    void rowNumeric(const std::string &label,
                    const std::vector<double> &values, int precision = 3);

    /** Render with aligned columns. */
    void print(std::ostream &os) const;

    /** Render as CSV. */
    void printCsv(std::ostream &os) const;

    /** Format a double with fixed precision. */
    static std::string num(double v, int precision = 3);

  private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace memsec

#endif // MEMSEC_UTIL_TABLE_HH
