#include "util/sim_error.hh"

#include <sstream>

namespace memsec {

std::string
SimError::toString() const
{
    std::ostringstream os;
    os << "[" << category << "] cycle " << cycle << ": " << message;
    return os.str();
}

void
RunReport::record(SimError err)
{
    ++total_;
    ++counts_[err.category];
    if (errors_.size() < cap_)
        errors_.push_back(std::move(err));
}

uint64_t
RunReport::count(const std::string &category) const
{
    auto it = counts_.find(category);
    return it == counts_.end() ? 0 : it->second;
}

std::string
RunReport::summary() const
{
    std::ostringstream os;
    os << total_ << " recoverable error(s)\n";
    for (const auto &kv : counts_)
        os << "  " << kv.first << ": " << kv.second << "\n";
    const size_t show = errors_.size() < 5 ? errors_.size() : 5;
    for (size_t i = 0; i < show; ++i)
        os << "  " << errors_[i].toString() << "\n";
    return os.str();
}

} // namespace memsec
