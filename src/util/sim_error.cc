#include "util/sim_error.hh"

#include <sstream>

#include "util/serialize.hh"

namespace memsec {

std::string
SimError::toString() const
{
    std::ostringstream os;
    os << "[" << category << "] cycle " << cycle << ": " << message;
    return os.str();
}

void
RunReport::record(SimError err)
{
    ++total_;
    ++counts_[err.category];
    if (errors_.size() < cap_)
        errors_.push_back(std::move(err));
}

uint64_t
RunReport::count(const std::string &category) const
{
    auto it = counts_.find(category);
    return it == counts_.end() ? 0 : it->second;
}

std::string
RunReport::summary() const
{
    std::ostringstream os;
    os << total_ << " recoverable error(s)\n";
    for (const auto &kv : counts_)
        os << "  " << kv.first << ": " << kv.second << "\n";
    const size_t show = errors_.size() < 5 ? errors_.size() : 5;
    for (size_t i = 0; i < show; ++i)
        os << "  " << errors_[i].toString() << "\n";
    return os.str();
}

void
RunReport::saveState(Serializer &s) const
{
    s.section("report");
    s.putU64(errors_.size());
    for (const SimError &e : errors_) {
        s.putU64(e.cycle);
        s.putString(e.category);
        s.putString(e.message);
    }
    s.putU64(counts_.size());
    for (const auto &kv : counts_) {
        s.putString(kv.first);
        s.putU64(kv.second);
    }
    s.putU64(total_);
}

void
RunReport::restoreState(Deserializer &d)
{
    d.section("report");
    const uint64_t n = d.getU64();
    errors_.clear();
    for (uint64_t i = 0; i < n; ++i) {
        SimError e;
        e.cycle = d.getU64();
        e.category = d.getString();
        e.message = d.getString();
        errors_.push_back(std::move(e));
    }
    const uint64_t cats = d.getU64();
    counts_.clear();
    for (uint64_t i = 0; i < cats; ++i) {
        const std::string cat = d.getString();
        counts_[cat] = d.getU64();
    }
    total_ = d.getU64();
}

} // namespace memsec
