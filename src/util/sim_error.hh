/**
 * @file
 * Structured error reporting for recoverable simulation faults.
 *
 * panic()/fatal() kill the process, which is the right answer for
 * invariant violations in correctness-critical runs but the wrong one
 * for long sweeps and fault-injection campaigns: there a run should
 * degrade gracefully, record what went wrong, and keep going. A
 * RunReport is that channel — components with a report attached record
 * SimErrors (capped, with per-category totals) instead of aborting;
 * components without one keep the strict panic/fatal behaviour.
 */

#ifndef MEMSEC_UTIL_SIM_ERROR_HH
#define MEMSEC_UTIL_SIM_ERROR_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "sim/types.hh"

namespace memsec {

class Serializer;
class Deserializer;

/** One recoverable fault observed during a run. */
struct SimError
{
    Cycle cycle = 0;
    std::string category; ///< e.g. "illegal-issue", "queue-overflow"
    std::string message;

    std::string toString() const;
};

/**
 * Per-run collection of recoverable faults. Stores the first `cap`
 * errors verbatim (diagnosis needs the earliest ones, later errors
 * are usually cascade) and counts everything, so an injection
 * campaign cannot grow memory without bound.
 */
class RunReport
{
  public:
    explicit RunReport(size_t cap = 256) : cap_(cap) {}

    void record(SimError err);

    /** All errors ever recorded (including ones past the cap). */
    uint64_t total() const { return total_; }

    /** Errors recorded under one category. */
    uint64_t count(const std::string &category) const;

    /** Per-category totals, sorted by category. */
    const std::map<std::string, uint64_t> &byCategory() const
    {
        return counts_;
    }

    /** The first `cap` errors, in arrival order. */
    const std::vector<SimError> &errors() const { return errors_; }

    bool empty() const { return total_ == 0; }

    /** "category: count" lines plus the first few messages. */
    std::string summary() const;

    /** Checkpoint recorded errors (they feed the result digest). */
    void saveState(Serializer &s) const;
    void restoreState(Deserializer &d);

  private:
    size_t cap_ = 0;
    std::vector<SimError> errors_;
    std::map<std::string, uint64_t> counts_;
    uint64_t total_ = 0;
};

} // namespace memsec

#endif // MEMSEC_UTIL_SIM_ERROR_HH
