/**
 * @file
 * Deterministic pseudo-random number generator.
 *
 * All stochastic behaviour in the simulator (synthetic traces, dummy
 * read addresses, ...) draws from explicitly seeded Xoshiro256**
 * instances so that every experiment is exactly reproducible.
 */

#ifndef MEMSEC_UTIL_RANDOM_HH
#define MEMSEC_UTIL_RANDOM_HH

#include <cstdint>

namespace memsec {

/**
 * Xoshiro256** PRNG. Small, fast, and good enough statistical quality
 * for workload synthesis; never use std::rand (global state) in the
 * simulator.
 */
class Rng
{
  public:
    /** Construct from a 64-bit seed via SplitMix64 expansion. */
    explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ull);

    /** Next raw 64-bit value. */
    uint64_t next();

    /** Uniform integer in [0, bound); bound must be nonzero. */
    uint64_t below(uint64_t bound);

    /** Uniform integer in [lo, hi] inclusive. */
    uint64_t range(uint64_t lo, uint64_t hi);

    /** Uniform double in [0, 1). */
    double uniform();

    /** Bernoulli draw with probability p of true. */
    bool chance(double p);

    /** Geometric-ish draw: number of failures before success(p). */
    uint64_t geometric(double p);

    /** Copy the raw 256-bit state out (snapshot support). */
    void getState(uint64_t out[4]) const;

    /** Restore state previously captured with getState(). */
    void setState(const uint64_t in[4]);

  private:
    uint64_t s[4];
};

} // namespace memsec

#endif // MEMSEC_UTIL_RANDOM_HH
