#include "util/serialize.hh"

#include <array>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <system_error>

#include "util/logging.hh"

namespace memsec {

std::string
SerializeError::toString() const
{
    std::ostringstream os;
    os << category << " at byte " << offset << ": " << message;
    return os.str();
}

void
Serializer::putU32(uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        buf_.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
}

void
Serializer::putU64(uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        buf_.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
}

void
Serializer::putDouble(double v)
{
    uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(v), "IEEE-754 double expected");
    std::memcpy(&bits, &v, sizeof(bits));
    putU64(bits);
}

void
Serializer::putString(std::string_view v)
{
    putU64(v.size());
    buf_.append(v.data(), v.size());
}

void
Deserializer::need(size_t n) const
{
    if (data_.size() - pos_ < n) {
        throw SerializeError{
            pos_, "snapshot-truncate",
            "need " + std::to_string(n) + " bytes, have " +
                std::to_string(data_.size() - pos_)};
    }
}

void
Deserializer::fail(const std::string &message) const
{
    throw SerializeError{pos_, "snapshot-corrupt", message};
}

uint8_t
Deserializer::getU8()
{
    need(1);
    return static_cast<uint8_t>(data_[pos_++]);
}

uint32_t
Deserializer::getU32()
{
    need(4);
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
        v |= static_cast<uint32_t>(
                 static_cast<uint8_t>(data_[pos_ + i]))
             << (8 * i);
    pos_ += 4;
    return v;
}

uint64_t
Deserializer::getU64()
{
    need(8);
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<uint64_t>(
                 static_cast<uint8_t>(data_[pos_ + i]))
             << (8 * i);
    pos_ += 8;
    return v;
}

bool
Deserializer::getBool()
{
    const uint8_t v = getU8();
    if (v > 1)
        fail("bool byte is " + std::to_string(v));
    return v != 0;
}

double
Deserializer::getDouble()
{
    const uint64_t bits = getU64();
    double v = 0.0;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
}

std::string
Deserializer::getString()
{
    const uint64_t len = getU64();
    need(len);
    std::string s(data_.substr(pos_, len));
    pos_ += len;
    return s;
}

void
Deserializer::section(std::string_view tag)
{
    const uint64_t at = pos_;
    const std::string got = getString();
    if (got != tag) {
        throw SerializeError{
            at, "snapshot-corrupt",
            "expected section '" + std::string(tag) + "', found '" +
                got + "'"};
    }
}

namespace {

std::array<uint32_t, 256>
makeCrc32cTable()
{
    std::array<uint32_t, 256> table{};
    for (uint32_t n = 0; n < 256; ++n) {
        uint32_t c = n;
        for (int k = 0; k < 8; ++k)
            c = (c & 1) ? (0x82F63B78u ^ (c >> 1)) : (c >> 1);
        table[n] = c;
    }
    return table;
}

} // namespace

uint32_t
crc32c(const void *data, size_t len, uint32_t seed)
{
    static const std::array<uint32_t, 256> table = makeCrc32cTable();
    const auto *p = static_cast<const uint8_t *>(data);
    uint32_t c = seed ^ 0xFFFFFFFFu;
    for (size_t i = 0; i < len; ++i)
        c = table[(c ^ p[i]) & 0xFF] ^ (c >> 8);
    return c ^ 0xFFFFFFFFu;
}

std::string
encodeSnapshot(std::string_view fingerprint, std::string_view payload)
{
    Serializer s;
    s.putString(fingerprint);
    std::string container(kSnapshotMagic, 8);
    Serializer head;
    head.putU32(kSnapshotVersion);
    container += head.data();
    container += s.data();
    Serializer tail;
    tail.putU64(payload.size());
    tail.putU32(crc32c(payload));
    container += tail.data();
    container.append(payload.data(), payload.size());
    return container;
}

std::string
decodeSnapshot(std::string_view bytes, std::string_view expectedFingerprint)
{
    if (bytes.size() < 8) {
        throw SerializeError{0, "snapshot-truncate",
                             "file shorter than the 8-byte magic"};
    }
    if (bytes.compare(0, 8, kSnapshotMagic, 8) != 0)
        throw SerializeError{0, "snapshot-corrupt", "bad magic"};

    Deserializer d(bytes.substr(8));
    const uint32_t version = d.getU32();
    if (version != kSnapshotVersion) {
        throw SerializeError{
            8, "snapshot-version",
            "container version " + std::to_string(version) +
                ", expected " + std::to_string(kSnapshotVersion)};
    }
    const uint64_t fpAt = 8 + d.offset();
    const std::string fp = d.getString();
    if (!expectedFingerprint.empty() && fp != expectedFingerprint) {
        throw SerializeError{
            fpAt, "snapshot-stale",
            "snapshot fingerprint '" + fp + "' does not match '" +
                std::string(expectedFingerprint) + "'"};
    }
    const uint64_t len = d.getU64();
    const uint32_t crc = d.getU32();
    if (d.remaining() < len) {
        throw SerializeError{
            8 + d.offset(), "snapshot-truncate",
            "payload declares " + std::to_string(len) + " bytes, " +
                std::to_string(d.remaining()) + " present"};
    }
    if (d.remaining() > len) {
        throw SerializeError{8 + d.offset() + len, "snapshot-corrupt",
                             "trailing bytes after payload"};
    }
    std::string payload(
        bytes.substr(8 + static_cast<size_t>(d.offset()), len));
    const uint32_t got = crc32c(payload);
    if (got != crc) {
        throw SerializeError{8 + d.offset(), "snapshot-corrupt",
                             "payload CRC mismatch"};
    }
    return payload;
}

bool
writeFileAtomic(const std::string &path, std::string_view bytes)
{
    const std::string tmp = path + ".tmp";
    {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        if (!out) {
            warn("cannot open {} for writing", tmp);
            return false;
        }
        out.write(bytes.data(),
                  static_cast<std::streamsize>(bytes.size()));
        out.flush();
        if (!out) {
            warn("short write to {}", tmp);
            std::remove(tmp.c_str());
            return false;
        }
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        warn("cannot rename {} to {}", tmp, path);
        std::remove(tmp.c_str());
        return false;
    }
    return true;
}

bool
ensureDirectory(const std::string &dir)
{
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    if (ec) {
        warn("cannot create directory {}: {}", dir, ec.message());
        return false;
    }
    return true;
}

bool
readFileBytes(const std::string &path, std::string &out)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return false;
    std::ostringstream ss;
    ss << in.rdbuf();
    out = ss.str();
    return true;
}

} // namespace memsec
