/**
 * @file
 * Small bit-manipulation helpers used by address mapping.
 */

#ifndef MEMSEC_UTIL_BITOPS_HH
#define MEMSEC_UTIL_BITOPS_HH

#include <cstdint>

namespace memsec {

/** True iff x is a power of two (0 is not). */
constexpr bool
isPowerOf2(uint64_t x)
{
    return x != 0 && (x & (x - 1)) == 0;
}

/** floor(log2(x)); x must be nonzero. */
constexpr unsigned
floorLog2(uint64_t x)
{
    unsigned r = 0;
    while (x >>= 1)
        ++r;
    return r;
}

/** ceil(log2(x)); x must be nonzero. */
constexpr unsigned
ceilLog2(uint64_t x)
{
    return x <= 1 ? 0 : floorLog2(x - 1) + 1;
}

/** Extract bits [lo, lo+width) of addr. */
constexpr uint64_t
bits(uint64_t addr, unsigned lo, unsigned width)
{
    return (addr >> lo) & ((width >= 64) ? ~0ull : ((1ull << width) - 1));
}

/** Insert value into bits [lo, lo+width) of addr (bits must be clear). */
constexpr uint64_t
insertBits(uint64_t addr, unsigned lo, unsigned width, uint64_t value)
{
    const uint64_t mask = (width >= 64) ? ~0ull : ((1ull << width) - 1);
    return addr | ((value & mask) << lo);
}

} // namespace memsec

#endif // MEMSEC_UTIL_BITOPS_HH
