#include "util/random.hh"

#include <cmath>

#include "util/logging.hh"

namespace memsec {

namespace {

uint64_t
splitMix64(uint64_t &x)
{
    x += 0x9E3779B97F4A7C15ull;
    uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
}

uint64_t
rotl(uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(uint64_t seed)
{
    uint64_t sm = seed;
    for (auto &word : s)
        word = splitMix64(sm);
}

uint64_t
Rng::next()
{
    const uint64_t result = rotl(s[1] * 5, 7) * 9;
    const uint64_t t = s[1] << 17;
    s[2] ^= s[0];
    s[3] ^= s[1];
    s[1] ^= s[2];
    s[0] ^= s[3];
    s[2] ^= t;
    s[3] = rotl(s[3], 45);
    return result;
}

uint64_t
Rng::below(uint64_t bound)
{
    panic_if(bound == 0, "Rng::below(0)");
    // Rejection-free Lemire reduction is overkill here; modulo bias is
    // negligible for bounds << 2^64 used in workload synthesis.
    return next() % bound;
}

uint64_t
Rng::range(uint64_t lo, uint64_t hi)
{
    panic_if(lo > hi, "Rng::range with lo {} > hi {}", lo, hi);
    return lo + below(hi - lo + 1);
}

double
Rng::uniform()
{
    return (next() >> 11) * 0x1.0p-53;
}

bool
Rng::chance(double p)
{
    if (p <= 0.0)
        return false;
    if (p >= 1.0)
        return true;
    return uniform() < p;
}

void
Rng::getState(uint64_t out[4]) const
{
    for (int i = 0; i < 4; ++i)
        out[i] = s[i];
}

void
Rng::setState(const uint64_t in[4])
{
    for (int i = 0; i < 4; ++i)
        s[i] = in[i];
}

uint64_t
Rng::geometric(double p)
{
    panic_if(p <= 0.0 || p > 1.0, "Rng::geometric with p = {}", p);
    if (p >= 1.0)
        return 0;
    double u = uniform();
    // Avoid log(0).
    if (u <= 0.0)
        u = 0x1.0p-53;
    return static_cast<uint64_t>(std::log(u) / std::log(1.0 - p));
}

} // namespace memsec
