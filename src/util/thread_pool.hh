/**
 * @file
 * Fixed-size worker-thread pool for embarrassingly parallel jobs.
 *
 * The campaign runner executes independent experiments concurrently;
 * each job owns all of its state, so the pool needs no result
 * plumbing — submit closures, then wait(). A job that throws no
 * longer tears down the process: the worker captures the exception
 * via std::exception_ptr and wait() rethrows the first one on the
 * calling thread, where the submitting layer can convert it into a
 * per-run error record (the campaign runner turns it into a
 * SimError). Sibling jobs keep running to completion either way.
 */

#ifndef MEMSEC_UTIL_THREAD_POOL_HH
#define MEMSEC_UTIL_THREAD_POOL_HH

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace memsec {

/**
 * N worker threads draining a FIFO job queue. Construction spawns the
 * workers; the destructor drains outstanding jobs and joins. A pool
 * of one worker still runs jobs on the worker thread (not the
 * caller's), so the execution environment is identical at any width.
 */
class ThreadPool
{
  public:
    /** Spawn `workers` threads (clamped to >= 1). */
    explicit ThreadPool(unsigned workers);

    /** Waits for all submitted jobs, then joins the workers. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Enqueue one job. A throwing job is captured, not fatal. */
    void submit(std::function<void()> job);

    /**
     * Block until every submitted job has finished. If any job threw,
     * rethrows the first captured exception on the calling thread
     * (later ones are dropped; every job still ran). The pool is
     * reusable afterwards — the captured exception is cleared.
     */
    void wait();

    unsigned workers() const
    {
        return static_cast<unsigned>(threads_.size());
    }

    /** Jobs submitted over the pool's lifetime. */
    uint64_t submitted() const;

    /**
     * The machine's available hardware concurrency (>= 1).
     * hardware_concurrency() may return 0 on exotic platforms.
     */
    static unsigned defaultWorkers();

  private:
    void workerLoop();
    /** wait() minus the rethrow — the destructor must not throw. */
    void drain();

    mutable std::mutex mutex_;
    std::condition_variable workAvailable_;
    std::condition_variable allDone_;
    std::deque<std::function<void()>> queue_;
    std::vector<std::thread> threads_;
    uint64_t submitted_ = 0;
    size_t inFlight_ = 0; ///< queued + currently executing
    bool stopping_ = false;
    std::exception_ptr firstError_; ///< first job exception, if any
};

} // namespace memsec

#endif // MEMSEC_UTIL_THREAD_POOL_HH
