/**
 * @file
 * Fixed-size worker-thread pool for embarrassingly parallel jobs.
 *
 * The campaign runner executes independent experiments concurrently;
 * each job owns all of its state, so the pool needs no result
 * plumbing — submit closures, then wait(). Jobs must not throw: a
 * leaked exception would tear down the process from a worker thread,
 * so the submitting layer is responsible for catching (the campaign
 * runner converts exceptions into per-run error records).
 */

#ifndef MEMSEC_UTIL_THREAD_POOL_HH
#define MEMSEC_UTIL_THREAD_POOL_HH

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace memsec {

/**
 * N worker threads draining a FIFO job queue. Construction spawns the
 * workers; the destructor drains outstanding jobs and joins. A pool
 * of one worker still runs jobs on the worker thread (not the
 * caller's), so the execution environment is identical at any width.
 */
class ThreadPool
{
  public:
    /** Spawn `workers` threads (clamped to >= 1). */
    explicit ThreadPool(unsigned workers);

    /** Waits for all submitted jobs, then joins the workers. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Enqueue one job. Jobs must not throw. */
    void submit(std::function<void()> job);

    /** Block until every submitted job has finished. */
    void wait();

    unsigned workers() const
    {
        return static_cast<unsigned>(threads_.size());
    }

    /** Jobs submitted over the pool's lifetime. */
    uint64_t submitted() const;

    /**
     * The machine's available hardware concurrency (>= 1).
     * hardware_concurrency() may return 0 on exotic platforms.
     */
    static unsigned defaultWorkers();

  private:
    void workerLoop();

    mutable std::mutex mutex_;
    std::condition_variable workAvailable_;
    std::condition_variable allDone_;
    std::deque<std::function<void()>> queue_;
    std::vector<std::thread> threads_;
    uint64_t submitted_ = 0;
    size_t inFlight_ = 0; ///< queued + currently executing
    bool stopping_ = false;
};

} // namespace memsec

#endif // MEMSEC_UTIL_THREAD_POOL_HH
