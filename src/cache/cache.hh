/**
 * @file
 * Set-associative writeback last-level cache.
 *
 * One instance per core: the paper's shared L2 must itself be
 * partitioned for the end-to-end system to be leak-free (cache side
 * channels are out of scope and assumed handled, Section 2.2), so we
 * model the per-core partition directly: 4 MB / 8 cores = 512 KB,
 * 8-way, LRU, write-allocate, writeback.
 */

#ifndef MEMSEC_CACHE_CACHE_HH
#define MEMSEC_CACHE_CACHE_HH

#include <cstdint>
#include <vector>

#include "sim/types.hh"
#include "stats/stats.hh"

namespace memsec {
class Serializer;
class Deserializer;
} // namespace memsec

namespace memsec::cache {

/** Result of a cache access. */
struct AccessResult
{
    bool hit = false;
    bool prefetchHit = false; ///< first demand touch of a prefetched line
};

/** Result of a line fill. */
struct FillResult
{
    bool evictedDirty = false;
    Addr writebackAddr = 0;
};

/** Simple blocking-free LRU cache model. */
class Cache
{
  public:
    /**
     * @param sizeBytes total capacity
     * @param ways associativity
     */
    Cache(uint64_t sizeBytes, unsigned ways);

    /**
     * Look up (and touch) a line. On a store hit the line is marked
     * dirty. Misses do NOT allocate; the owner fetches the line and
     * calls fill() when data returns.
     */
    AccessResult access(Addr addr, bool isStore);

    /** True if the line is present (no LRU update). */
    bool contains(Addr addr) const;

    /** Install a line; returns any dirty victim to write back.
     *  `prefetched` marks the line for usefulness accounting. */
    FillResult fill(Addr addr, bool dirty, bool prefetched = false);

    /** Mark a resident line dirty (store completing after fill). */
    void markDirty(Addr addr);

    unsigned numSets() const { return static_cast<unsigned>(sets_.size()); }
    unsigned ways() const { return ways_; }

    const Counter &hits() const { return hits_; }
    const Counter &misses() const { return misses_; }

    void saveState(Serializer &s) const;
    void restoreState(Deserializer &d);

  private:
    struct Line
    {
        Addr tag = 0;
        bool valid = false;
        bool dirty = false;
        bool prefetched = false;
        uint64_t lruStamp = 0;
    };

    struct Set
    {
        std::vector<Line> ways;
    };

    Line *find(Addr addr);
    const Line *find(Addr addr) const;
    unsigned setIndex(Addr addr) const;
    Addr tagOf(Addr addr) const;

    unsigned ways_ = 0;
    std::vector<Set> sets_;
    uint64_t stamp_ = 0;
    Counter hits_;
    Counter misses_;
};

} // namespace memsec::cache

#endif // MEMSEC_CACHE_CACHE_HH
