#include "cache/cache.hh"

#include "util/bitops.hh"
#include "util/logging.hh"
#include "util/serialize.hh"

namespace memsec::cache {

Cache::Cache(uint64_t sizeBytes, unsigned ways) : ways_(ways)
{
    fatal_if(ways == 0, "cache needs at least one way");
    const uint64_t lines = sizeBytes / kLineBytes;
    fatal_if(lines < ways || lines % ways != 0,
             "cache size {} not divisible into {} ways", sizeBytes, ways);
    const uint64_t nsets = lines / ways;
    fatal_if(!isPowerOf2(nsets), "cache set count must be a power of two");
    sets_.resize(nsets);
    for (auto &s : sets_)
        s.ways.resize(ways);
}

unsigned
Cache::setIndex(Addr addr) const
{
    return static_cast<unsigned>((addr / kLineBytes) %
                                 sets_.size());
}

Addr
Cache::tagOf(Addr addr) const
{
    return (addr / kLineBytes) / sets_.size();
}

Cache::Line *
Cache::find(Addr addr)
{
    Set &set = sets_[setIndex(addr)];
    const Addr tag = tagOf(addr);
    for (auto &line : set.ways) {
        if (line.valid && line.tag == tag)
            return &line;
    }
    return nullptr;
}

const Cache::Line *
Cache::find(Addr addr) const
{
    return const_cast<Cache *>(this)->find(addr);
}

AccessResult
Cache::access(Addr addr, bool isStore)
{
    AccessResult res;
    if (Line *line = find(addr)) {
        line->lruStamp = ++stamp_;
        if (isStore)
            line->dirty = true;
        if (line->prefetched) {
            res.prefetchHit = true;
            line->prefetched = false;
        }
        hits_.inc();
        res.hit = true;
        return res;
    }
    misses_.inc();
    return res;
}

bool
Cache::contains(Addr addr) const
{
    return find(addr) != nullptr;
}

FillResult
Cache::fill(Addr addr, bool dirty, bool prefetched)
{
    FillResult res;
    if (Line *line = find(addr)) {
        // Already present (e.g. prefetch raced a demand fill).
        line->dirty = line->dirty || dirty;
        return res;
    }
    Set &set = sets_[setIndex(addr)];
    Line *victim = &set.ways[0];
    for (auto &line : set.ways) {
        if (!line.valid) {
            victim = &line;
            break;
        }
        if (line.lruStamp < victim->lruStamp)
            victim = &line;
    }
    if (victim->valid && victim->dirty) {
        res.evictedDirty = true;
        res.writebackAddr =
            (victim->tag * sets_.size() + setIndex(addr)) * kLineBytes;
    }
    victim->valid = true;
    victim->dirty = dirty;
    victim->prefetched = prefetched;
    victim->tag = tagOf(addr);
    victim->lruStamp = ++stamp_;
    return res;
}

void
Cache::markDirty(Addr addr)
{
    if (Line *line = find(addr))
        line->dirty = true;
}

void
Cache::saveState(Serializer &s) const
{
    s.section("cache");
    s.putU64(sets_.size());
    for (const Set &set : sets_) {
        for (const Line &line : set.ways) {
            s.putU64(line.tag);
            s.putBool(line.valid);
            s.putBool(line.dirty);
            s.putBool(line.prefetched);
            s.putU64(line.lruStamp);
        }
    }
    s.putU64(stamp_);
    hits_.saveState(s);
    misses_.saveState(s);
}

void
Cache::restoreState(Deserializer &d)
{
    d.section("cache");
    if (d.getU64() != sets_.size())
        d.fail("cache set count mismatch");
    for (Set &set : sets_) {
        for (Line &line : set.ways) {
            line.tag = d.getU64();
            line.valid = d.getBool();
            line.dirty = d.getBool();
            line.prefetched = d.getBool();
            line.lruStamp = d.getU64();
        }
    }
    stamp_ = d.getU64();
    hits_.restoreState(d);
    misses_.restoreState(d);
}

} // namespace memsec::cache
