#include "mem/address_map.hh"

#include <algorithm>
#include <set>

#include "util/logging.hh"

namespace memsec::mem {

const char *
partitionName(Partition p)
{
    switch (p) {
      case Partition::None: return "none";
      case Partition::Channel: return "channel";
      case Partition::Rank: return "rank";
      case Partition::Bank: return "bank";
    }
    return "???";
}

const char *
interleaveName(Interleave i)
{
    return i == Interleave::OpenPage ? "open-page" : "close-page";
}

AddressMap::AddressMap(const dram::Geometry &geo, Partition part,
                       Interleave style, unsigned numDomains)
    : geo_(geo), part_(part), style_(style), numDomains_(numDomains)
{
    geo_.validate();
    fatal_if(numDomains == 0, "address map needs at least one domain");

    domainRanks_.resize(numDomains);
    domainBanks_.resize(numDomains);
    domainChannel_.assign(numDomains, 0);

    const unsigned R = geo.ranksPerChannel;
    const unsigned B = geo.banksPerRank;

    auto allRanks = [&] {
        std::vector<unsigned> v(R);
        for (unsigned r = 0; r < R; ++r)
            v[r] = r;
        return v;
    };
    auto allBanks = [&] {
        std::vector<unsigned> v(B);
        for (unsigned b = 0; b < B; ++b)
            v[b] = b;
        return v;
    };

    switch (part) {
      case Partition::Channel:
        fatal_if(numDomains > geo.channels,
                 "channel partitioning needs >= 1 channel per domain "
                 "({} domains, {} channels)",
                 numDomains, geo.channels);
        for (DomainId d = 0; d < numDomains; ++d) {
            domainChannel_[d] = d % geo.channels;
            domainRanks_[d] = allRanks();
            domainBanks_[d] = allBanks();
        }
        break;
      case Partition::Rank: {
        // With several channels, domains are first spread over the
        // channels (the paper's 32-core / 4-channel target system:
        // 8 domains per channel, one rank each) and rank-partitioned
        // within their channel.
        fatal_if(numDomains % geo.channels != 0,
                 "rank partitioning over {} channels needs a domain "
                 "count divisible by the channel count (got {})",
                 geo.channels, numDomains);
        const unsigned perChannel = numDomains / geo.channels;
        fatal_if(perChannel > R,
                 "rank partitioning needs >= 1 rank per domain "
                 "({} domains/channel, {} ranks)",
                 perChannel, R);
        for (DomainId d = 0; d < numDomains; ++d) {
            domainChannel_[d] = d % geo.channels;
            const unsigned dc = d / geo.channels;
            for (unsigned r = dc; r < R; r += perChannel)
                domainRanks_[d].push_back(r);
            domainBanks_[d] = allBanks();
        }
        break;
      }
      case Partition::Bank: {
        fatal_if(numDomains % geo.channels != 0,
                 "bank partitioning over {} channels needs a domain "
                 "count divisible by the channel count (got {})",
                 geo.channels, numDomains);
        const unsigned perChannel = numDomains / geo.channels;
        fatal_if(perChannel > B,
                 "per-rank-uniform bank partitioning supports at most "
                 "{} domains per channel, got {}",
                 B, perChannel);
        for (DomainId d = 0; d < numDomains; ++d) {
            domainChannel_[d] = d % geo.channels;
            const unsigned dc = d / geo.channels;
            domainRanks_[d] = allRanks();
            for (unsigned b = dc; b < B; b += perChannel)
                domainBanks_[d].push_back(b);
        }
        break;
      }
      case Partition::None:
        for (DomainId d = 0; d < numDomains; ++d) {
            domainChannel_[d] = d % geo.channels;
            domainRanks_[d] = allRanks();
            domainBanks_[d] = allBanks();
        }
        break;
    }
}

const std::vector<unsigned> &
AddressMap::ranksOf(DomainId domain) const
{
    return domainRanks_.at(domain);
}

const std::vector<unsigned> &
AddressMap::banksOf(DomainId domain) const
{
    return domainBanks_.at(domain);
}

unsigned
AddressMap::channelOf(DomainId domain) const
{
    return domainChannel_.at(domain);
}

uint64_t
AddressMap::domainLineCapacity() const
{
    // Sized from domain 0; all domains get equal allotments.
    const uint64_t slots = static_cast<uint64_t>(domainRanks_[0].size()) *
                           domainBanks_[0].size();
    return slots * geo_.rowsPerBank * geo_.colsPerRow;
}

Decoded
AddressMap::decode(DomainId domain, Addr addr) const
{
    const auto &ranks = domainRanks_.at(domain);
    const auto &banks = domainBanks_.at(domain);
    const uint64_t nslots =
        static_cast<uint64_t>(ranks.size()) * banks.size();
    const uint64_t cols = geo_.colsPerRow;
    const uint64_t rows = geo_.rowsPerBank;

    uint64_t line = (addr / kLineBytes) % (nslots * rows * cols);

    uint64_t col, slot, row;
    if (style_ == Interleave::OpenPage) {
        col = line % cols;
        slot = (line / cols) % nslots;
        row = line / (cols * nslots);
    } else {
        slot = line % nslots;
        col = (line / nslots) % cols;
        row = line / (nslots * cols);
    }

    // Under shared (non-partitioned) policies, offset each domain's
    // rows so distinct domains never alias onto the same physical
    // rows — the OS would never map two security domains to the same
    // frames.
    if (part_ == Partition::None && numDomains_ > 1) {
        const unsigned perChannel =
            (numDomains_ + geo_.channels - 1) / geo_.channels;
        const unsigned dc = domain / geo_.channels;
        row = (row + dc * (rows / std::max(1u, perChannel))) % rows;
    }

    Decoded out;
    out.channel = domainChannel_.at(domain);
    // Order slots bank-fastest: consecutive lines spread over banks,
    // which keeps bank-group rotation (triple alternation) and
    // bank-level parallelism fed by sequential streams.
    out.bank = banks[slot % banks.size()];
    out.rank = ranks[(slot / banks.size()) % ranks.size()];
    out.row = static_cast<unsigned>(row);
    out.col = static_cast<unsigned>(col);
    return out;
}

} // namespace memsec::mem
