#include "mem/transaction_queue.hh"

#include "util/logging.hh"
#include "util/serialize.hh"

namespace memsec::mem {

void
TransactionQueue::saveState(Serializer &s) const
{
    s.section("txq");
    s.putU64(entries_.size());
    for (const auto &e : entries_)
        serializeRequest(s, *e);
}

void
TransactionQueue::restoreState(
    Deserializer &d,
    const std::function<MemClient *(const MemRequest &)> &clientOf)
{
    d.section("txq");
    const uint64_t n = d.getU64();
    entries_.clear();
    reads_ = 0;
    for (uint64_t i = 0; i < n; ++i) {
        bool hadClient = false;
        auto req = deserializeRequest(d, &hadClient);
        if (hadClient)
            req->client = clientOf(*req);
        if (req->isRead())
            ++reads_;
        entries_.push_back(std::move(req));
    }
}

TransactionQueue::TransactionQueue(size_t readCapacity,
                                   size_t writeCapacity)
    : readCap_(readCapacity), writeCap_(writeCapacity)
{
    panic_if(readCapacity == 0 || writeCapacity == 0,
             "transaction queue capacities must be nonzero");
}

void
TransactionQueue::push(std::unique_ptr<MemRequest> req)
{
    panic_if(full(req->type),
             "push to full transaction queue (domain {})", req->domain);
    if (req->isRead())
        ++reads_;
    entries_.push_back(std::move(req));
}

const MemRequest *
TransactionQueue::head() const
{
    return entries_.empty() ? nullptr : entries_.front().get();
}

MemRequest *
TransactionQueue::findOldest(
    const std::function<bool(const MemRequest &)> &pred)
{
    for (const auto &e : entries_) {
        if (pred(*e))
            return e.get();
    }
    return nullptr;
}

const MemRequest *
TransactionQueue::findOldest(
    const std::function<bool(const MemRequest &)> &pred) const
{
    for (const auto &e : entries_) {
        if (pred(*e))
            return e.get();
    }
    return nullptr;
}

std::unique_ptr<MemRequest>
TransactionQueue::popOldest()
{
    panic_if(entries_.empty(), "popOldest on empty queue");
    auto req = std::move(entries_.front());
    entries_.pop_front();
    if (req->isRead())
        --reads_;
    return req;
}

std::unique_ptr<MemRequest>
TransactionQueue::take(const MemRequest *req)
{
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
        if (it->get() == req) {
            auto out = std::move(*it);
            entries_.erase(it);
            if (out->isRead())
                --reads_;
            return out;
        }
    }
    panic("take: request not in queue");
}

bool
TransactionQueue::hasWriteTo(Addr lineAddr) const
{
    const Addr line = lineAddr / kLineBytes;
    for (const auto &e : entries_) {
        if (e->type == ReqType::Write && e->addr / kLineBytes == line)
            return true;
    }
    return false;
}

bool
TransactionQueue::hasEntryFor(Addr lineAddr) const
{
    const Addr line = lineAddr / kLineBytes;
    for (const auto &e : entries_) {
        if (e->addr / kLineBytes == line)
            return true;
    }
    return false;
}

} // namespace memsec::mem
