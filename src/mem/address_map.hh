/**
 * @file
 * Physical address decoding with OS-style spatial partitioning.
 *
 * The paper's spatial-partitioning levels (Section 4) are realised
 * here as page-colouring policies: the map confines each security
 * domain's lines to its assigned channel / rank / bank set, so the
 * same workload trace can be replayed under any partitioning without
 * regenerating it.
 *
 * Two interleaving styles model the "page mapping policies" whose
 * throughput impact the paper calls out:
 *  - OpenPage:  consecutive lines fill a row before moving on
 *               (maximises row-buffer hits for the baseline);
 *  - ClosePage: consecutive lines stripe across banks (maximises
 *               bank-level parallelism, minimises same-bank
 *               back-to-back hazards for FS at low thread counts).
 */

#ifndef MEMSEC_MEM_ADDRESS_MAP_HH
#define MEMSEC_MEM_ADDRESS_MAP_HH

#include <vector>

#include "dram/timing.hh"
#include "mem/request.hh"
#include "sim/types.hh"

namespace memsec::mem {

/** Spatial partitioning level (Section 4.1 of the paper). */
enum class Partition : uint8_t
{
    None,    ///< all domains share all banks
    Channel, ///< each domain owns one or more channels
    Rank,    ///< each domain owns one or more ranks
    Bank,    ///< each domain owns a disjoint set of banks
};

const char *partitionName(Partition p);

/** Line interleaving style within a domain's allotted resources. */
enum class Interleave : uint8_t
{
    OpenPage,  ///< row-major: line, col, bank, rank, row
    ClosePage, ///< bank-stripe: line, bank, rank, col, row
};

const char *interleaveName(Interleave i);

/**
 * Decodes (domain, address) to a physical DRAM location under a given
 * partitioning. Addresses are cache-line granular internally.
 */
class AddressMap
{
  public:
    AddressMap(const dram::Geometry &geo, Partition part,
               Interleave style, unsigned numDomains);

    /** Decode a byte address issued by `domain`. */
    Decoded decode(DomainId domain, Addr addr) const;

    /** Ranks (within the domain's channel) usable by `domain`. */
    const std::vector<unsigned> &ranksOf(DomainId domain) const;

    /** Banks (per rank) usable by `domain`. */
    const std::vector<unsigned> &banksOf(DomainId domain) const;

    /** Channel owning `domain` (always 0 unless channel-partitioned). */
    unsigned channelOf(DomainId domain) const;

    Partition partition() const { return part_; }
    Interleave interleave() const { return style_; }
    unsigned numDomains() const { return numDomains_; }
    const dram::Geometry &geometry() const { return geo_; }

    /**
     * Capacity (in lines) addressable by one domain; decode() wraps
     * addresses beyond it so any trace is valid under any partition.
     */
    uint64_t domainLineCapacity() const;

  private:
    dram::Geometry geo_;
    Partition part_;
    Interleave style_;
    unsigned numDomains_ = 0;

    // Per-domain resource sets, precomputed at construction.
    std::vector<std::vector<unsigned>> domainRanks_;
    std::vector<std::vector<unsigned>> domainBanks_;
    std::vector<unsigned> domainChannel_;
};

} // namespace memsec::mem

#endif // MEMSEC_MEM_ADDRESS_MAP_HH
