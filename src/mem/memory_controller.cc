#include "mem/memory_controller.hh"

#include <algorithm>

#include "fault/fault_injector.hh"
#include "sched/scheduler.hh"
#include "util/logging.hh"
#include "util/serialize.hh"
#include "util/sim_error.hh"

namespace memsec::mem {

MemoryController::MemoryController(std::string name, const Params &params,
                                   const AddressMap &map)
    : Component(std::move(name)), map_(map),
      dram_(params.timing, params.geo),
      requestPool_(params.requestPoolCapacity, "mc-requests")
{
    fatal_if(params.numDomains == 0, "controller needs >= 1 domain");
    for (unsigned d = 0; d < params.numDomains; ++d)
        queues_.emplace_back(params.queueCapacity,
                             params.queueCapacity);
    prefetchQueues_.resize(params.numDomains);
    clients_.assign(params.numDomains, nullptr);
    stats_.readLatencyHist.init(0.0, 32.0, 64);
    // Fine bins and a deep range: p99.9 needs resolution, and an
    // overloaded open-loop tail beyond 16k cycles should report +inf
    // (SLA blown) rather than clamp.
    stats_.domainReadLatency.resize(params.numDomains);
    for (auto &h : stats_.domainReadLatency)
        h.init(0.0, 16.0, 1024);
}

MemoryController::~MemoryController() = default;

void
MemoryController::registerClient(DomainId domain, MemClient *client)
{
    panic_if(domain >= clients_.size(), "bad domain {}", domain);
    clients_[domain] = client;
}

MemClient *
MemoryController::clientFor(DomainId domain) const
{
    return domain < clients_.size() ? clients_[domain] : nullptr;
}

void
MemoryController::setScheduler(std::unique_ptr<sched::Scheduler> sched)
{
    sched_ = std::move(sched);
    if (sched_ && injector_)
        sched_->attachFaultInjector(injector_);
}

void
MemoryController::setReport(RunReport *report)
{
    report_ = report;
    dram_.setReport(report);
}

void
MemoryController::attachFaultInjector(fault::FaultInjector *inj)
{
    injector_ = inj;
    dram_.attachFaultInjector(inj);
    if (sched_)
        sched_->attachFaultInjector(inj);
}

sched::Scheduler &
MemoryController::scheduler()
{
    panic_if(!sched_, "no scheduler installed");
    return *sched_;
}

void
MemoryController::beginMeasurement()
{
    for (Histogram &h : stats_.domainReadLatency)
        h.reset();
}

bool
MemoryController::canAccept(DomainId domain, ReqType type) const
{
    return !queues_.at(domain).full(type);
}

void
MemoryController::access(std::unique_ptr<MemRequest> req, Cycle now)
{
    panic_if(req->domain >= queues_.size(), "bad domain {}", req->domain);
    TransactionQueue &q = queues_[req->domain];
    if (req->type != ReqType::Prefetch && q.full(req->type)) {
        // Without a report this is a caller bug (canAccept was not
        // checked); with one it is a survivable overflow: drop the
        // transaction, record it, tell the client.
        panic_if(!report_,
                 "access() with full queue; check canAccept first");
        stats_.overflowDrops.inc();
        report_->record({now, "queue-overflow",
                         req->toString() + " dropped: domain " +
                             std::to_string(req->domain) +
                             " queue full"});
        if (req->client)
            req->client->memDropped(*req);
        return;
    }

    req->arrival = now;
    if (req->id == 0)
        req->id = ++reqIdSeq_;
    req->loc = map_.decode(req->domain, req->addr);

    switch (req->type) {
      case ReqType::Prefetch: {
        // Prefetches are hints: they wait in a side queue and are
        // dropped rather than ever exerting backpressure.
        if (q.hasEntryFor(req->addr))
            return;
        auto &pq = prefetchQueues_[req->domain];
        stats_.prefetches.inc();
        pq.push_back(std::move(req));
        if (pq.size() > kPrefetchQueueCap) {
            auto dropped = std::move(pq.front());
            pq.pop_front();
            if (dropped->client)
                dropped->client->memDropped(*dropped);
        }
        return;
      }
      case ReqType::Read: {
        // Store-to-load bypass: a queued write to the same line can
        // service the read without a DRAM access.
        if (q.hasWriteTo(req->addr)) {
            stats_.forwarded.inc();
            req->completed = now;
            if (req->client)
                req->client->memResponse(*req);
            return;
        }
        // A demand read supersedes a same-line prefetch hint...
        auto &pq = prefetchQueues_[req->domain];
        for (auto it = pq.begin(); it != pq.end(); ++it) {
            if ((*it)->addr / kLineBytes == req->addr / kLineBytes) {
                pq.erase(it);
                break;
            }
        }
        // ...and rides a same-line prefetch already in the queue
        // (same client, same line: one response completes both).
        const Addr line = req->addr / kLineBytes;
        if (q.findOldest([line](const MemRequest &e) {
                return e.type == ReqType::Prefetch &&
                       e.addr / kLineBytes == line;
            })) {
            stats_.mergedWithPrefetch.inc();
            return;
        }
        stats_.demandReads.inc();
        break;
      }
      case ReqType::Write:
        // Write merging: a second writeback to a queued line is
        // absorbed by the queue entry.
        if (q.hasWriteTo(req->addr)) {
            stats_.mergedWrites.inc();
            return;
        }
        stats_.writes.inc();
        break;
      case ReqType::Dummy:
        panic("dummy requests are scheduler-internal, not access()-ed");
    }
    q.push(std::move(req));
}

TransactionQueue &
MemoryController::queue(DomainId domain)
{
    return queues_.at(domain);
}

const TransactionQueue &
MemoryController::queue(DomainId domain) const
{
    return queues_.at(domain);
}

std::deque<std::unique_ptr<MemRequest>> &
MemoryController::prefetchQueue(DomainId d)
{
    return prefetchQueues_.at(d);
}

std::unique_ptr<MemRequest>
MemoryController::acquireRequest()
{
    if (auto req = requestPool_.tryAcquire()) {
        req->pooled = true;
        return req;
    }
    return std::make_unique<MemRequest>();
}

void
MemoryController::recordError(const SimError &err)
{
    if (report_)
        report_->record(err);
}

void
MemoryController::finishRequest(std::unique_ptr<MemRequest> req,
                                Cycle completeAt)
{
    // A clientless non-read has no observer left: delivering it would
    // touch no stats and notify no one (clientless *reads* — injector
    // ghosts — still sample read latency, so they stay). Retire the
    // storage immediately instead of round-tripping the completion
    // queue; pooled objects go back for reuse.
    if (!req->client && req->type != ReqType::Read) {
        if (req->pooled)
            requestPool_.release(std::move(req));
        return;
    }
    completions_.push(PendingCompletion{
        completeAt, completionSeq_++,
        std::shared_ptr<MemRequest>(std::move(req))});
}

void
MemoryController::noteBurst(bool dummy)
{
    if (dummy)
        stats_.dummyBursts.inc();
    else
        stats_.realBursts.inc();
}

void
MemoryController::tick(Cycle now)
{
    panic_if(!sched_, "MemoryController ticked without a scheduler");

    // Compiled replay: apply every precomputed command with cycle <=
    // now before delivering completions, so a CAS whose data burst
    // ends this very cycle has pushed its completion in time.
    if (sched_->compiledActive())
        sched_->applyUpTo(now);

    // Queue-overflow injection: flood the queues with ghost reads
    // (no client, rotating domain) until one hits a full queue and
    // exercises the overflow path above.
    if (injector_ && injector_->overflowFires(now)) {
        auto ghost = std::make_unique<MemRequest>();
        ghost->domain = static_cast<DomainId>(now % queues_.size());
        ghost->type = ReqType::Read;
        ghost->addr = (now % 4096) * kLineBytes;
        access(std::move(ghost), now);
    }

    // Deliver completions due this cycle before scheduling, so cores
    // observe data at the earliest consistent time.
    while (!completions_.empty() && completions_.top().at <= now) {
        auto pc = completions_.top();
        completions_.pop();
        MemRequest &req = *pc.req;
        req.completed = pc.at;
        if (req.type == ReqType::Read) {
            const double lat =
                static_cast<double>(req.completed - req.arrival);
            stats_.readLatency.sample(lat);
            stats_.readLatencyHist.sample(lat);
            if (req.domain < stats_.domainReadLatency.size()) {
                const Cycle from = req.issued != kNoCycle
                                       ? req.issued
                                       : req.arrival;
                stats_.domainReadLatency[req.domain].sample(
                    static_cast<double>(req.completed - from));
            }
        }
        if (req.client)
            req.client->memResponse(req);
    }

    sched_->tick(now);
    dram_.tick(now);
}

Cycle
MemoryController::nextWakeCycle(Cycle now) const
{
    // A fault injector probes every cycle (overflow floods, skew
    // schedules keyed on the raw cycle number): never skip under
    // injection.
    if (injector_ || !sched_)
        return now + 1;
    Cycle wake = sched_->nextWakeCycle(now);
    if (!completions_.empty())
        wake = std::min(wake, completions_.top().at);
    return std::max(wake, now + 1);
}

void
MemoryController::fastForward(Cycle from, Cycle to)
{
    // Under compiled replay the span may hold precomputed commands
    // (the wake hints only guarantee no *decisions* and no
    // *completions* inside it); apply them now so a run ending on a
    // jump still retires every command an interpreted run would have
    // issued before `to`.
    if (sched_ && sched_->compiledActive())
        sched_->applyUpTo(to - 1);
    // Beyond that the span is quiet; only the per-cycle energy state
    // residency needs catching up.
    dram_.fastForwardEnergy(from, to);
}

void
MemoryController::saveState(Serializer &s) const
{
    s.section("mc");
    dram_.saveState(s);
    s.putU64(queues_.size());
    for (const TransactionQueue &q : queues_)
        q.saveState(s);
    s.putU64(prefetchQueues_.size());
    for (const auto &pq : prefetchQueues_) {
        s.putU64(pq.size());
        for (const auto &req : pq)
            serializeRequest(s, *req);
    }
    // A priority_queue exposes only its top; drain a by-value copy to
    // walk the pending completions in delivery order.
    auto copy = completions_;
    s.putU64(copy.size());
    while (!copy.empty()) {
        const PendingCompletion &pc = copy.top();
        s.putU64(pc.at);
        s.putU64(pc.seq);
        serializeRequest(s, *pc.req);
        copy.pop();
    }
    s.putU64(completionSeq_);
    s.putU64(reqIdSeq_);
    stats_.demandReads.saveState(s);
    stats_.writes.saveState(s);
    stats_.prefetches.saveState(s);
    stats_.dummies.saveState(s);
    stats_.forwarded.saveState(s);
    stats_.mergedWrites.saveState(s);
    stats_.mergedWithPrefetch.saveState(s);
    stats_.realBursts.saveState(s);
    stats_.dummyBursts.saveState(s);
    stats_.overflowDrops.saveState(s);
    stats_.readLatency.saveState(s);
    stats_.readLatencyHist.saveState(s);
    s.putU64(stats_.domainReadLatency.size());
    for (const Histogram &h : stats_.domainReadLatency)
        h.saveState(s);
    panic_if(!sched_, "saveState without a scheduler");
    sched_->saveState(s);
}

void
MemoryController::restoreState(Deserializer &d)
{
    d.section("mc");
    dram_.restoreState(d);
    if (d.getU64() != queues_.size())
        d.fail("transaction queue count mismatch");
    const auto clientOf = [this](const MemRequest &req) {
        return clientFor(req.domain);
    };
    for (TransactionQueue &q : queues_)
        q.restoreState(d, clientOf);
    if (d.getU64() != prefetchQueues_.size())
        d.fail("prefetch queue count mismatch");
    for (auto &pq : prefetchQueues_) {
        pq.clear();
        const uint64_t n = d.getU64();
        for (uint64_t i = 0; i < n; ++i) {
            bool hadClient = false;
            auto req = deserializeRequest(d, &hadClient);
            if (hadClient)
                req->client = clientOf(*req);
            pq.push_back(std::move(req));
        }
    }
    completions_ = {};
    const uint64_t pending = d.getU64();
    for (uint64_t i = 0; i < pending; ++i) {
        PendingCompletion pc;
        pc.at = d.getU64();
        pc.seq = d.getU64();
        bool hadClient = false;
        auto req = deserializeRequest(d, &hadClient);
        if (hadClient)
            req->client = clientOf(*req);
        pc.req = std::shared_ptr<MemRequest>(std::move(req));
        completions_.push(std::move(pc));
    }
    completionSeq_ = d.getU64();
    reqIdSeq_ = d.getU64();
    stats_.demandReads.restoreState(d);
    stats_.writes.restoreState(d);
    stats_.prefetches.restoreState(d);
    stats_.dummies.restoreState(d);
    stats_.forwarded.restoreState(d);
    stats_.mergedWrites.restoreState(d);
    stats_.mergedWithPrefetch.restoreState(d);
    stats_.realBursts.restoreState(d);
    stats_.dummyBursts.restoreState(d);
    stats_.overflowDrops.restoreState(d);
    stats_.readLatency.restoreState(d);
    stats_.readLatencyHist.restoreState(d);
    if (d.getU64() != stats_.domainReadLatency.size())
        d.fail("domain latency histogram count mismatch");
    for (Histogram &h : stats_.domainReadLatency)
        h.restoreState(d);
    panic_if(!sched_, "restoreState without a scheduler");
    sched_->restoreState(d);
}

void
MemoryController::registerStats(StatGroup &group) const
{
    group.add("demand_reads", &stats_.demandReads,
              "demand reads accepted");
    group.add("writes", &stats_.writes, "writebacks accepted");
    group.add("prefetches", &stats_.prefetches, "prefetch reads accepted");
    group.add("dummies", &stats_.dummies, "dummy operations inserted");
    group.add("forwarded", &stats_.forwarded, "store-to-load forwards");
    group.add("merged_writes", &stats_.mergedWrites, "write merges");
    group.add("read_latency", &stats_.readLatency,
              "mean demand-read latency (memory cycles)");
    group.add("real_bursts", &stats_.realBursts, "real data bursts");
    group.add("dummy_bursts", &stats_.dummyBursts, "dummy data bursts");
    group.add("overflow_drops", &stats_.overflowDrops,
              "transactions dropped on queue overflow");
    group.addFormula(
        "timing_violations",
        [this] {
            return static_cast<double>(dram_.checker().violationCount());
        },
        "timing-rule violations detected by the shadow checker");
    group.addFormula(
        "illegal_issues",
        [this] { return static_cast<double>(dram_.illegalIssues()); },
        "illegal command issues survived in non-strict mode");
    group.addFormula(
        "injected_faults",
        [this] {
            return injector_ ? static_cast<double>(injector_->injected())
                             : 0.0;
        },
        "faults injected into this controller");
}

double
MemoryController::effectiveBandwidth(Cycle elapsed) const
{
    if (elapsed == 0)
        return 0.0;
    const double realCycles = static_cast<double>(
        stats_.realBursts.value() * dram_.timing().burst);
    return realCycles / static_cast<double>(elapsed);
}

} // namespace memsec::mem
