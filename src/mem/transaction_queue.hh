/**
 * @file
 * Per-security-domain transaction queue.
 *
 * The proposed microarchitecture (Section 5.1) keeps one queue per
 * domain so the arriving transaction's domain tag selects a queue and
 * no cross-domain state is shared. The same structure doubles as the
 * baseline's transaction queue (the baseline scheduler simply scans
 * all queues).
 */

#ifndef MEMSEC_MEM_TRANSACTION_QUEUE_HH
#define MEMSEC_MEM_TRANSACTION_QUEUE_HH

#include <deque>
#include <functional>
#include <memory>

#include "mem/request.hh"

namespace memsec::mem {

/**
 * FIFO of pending transactions with predicate-based extraction.
 * Reads and writes have separate capacity budgets (the physical
 * design has distinct read and write queues; a burst of writebacks
 * must not crowd out demand loads).
 */
class TransactionQueue
{
  public:
    TransactionQueue(size_t readCapacity, size_t writeCapacity);

    size_t readCapacity() const { return readCap_; }
    size_t writeCapacity() const { return writeCap_; }
    size_t size() const { return entries_.size(); }
    bool empty() const { return entries_.empty(); }

    /** True if a request of the given type cannot be accepted. */
    bool full(ReqType type) const
    {
        return type == ReqType::Write ? writeCount() >= writeCap_
                                      : readCount() >= readCap_;
    }

    /** Number of queued reads (incl. prefetches). */
    size_t readCount() const { return reads_; }
    /** Number of queued writes. */
    size_t writeCount() const { return size() - reads_; }

    /** Enqueue; panics if full (callers must check full() first). */
    void push(std::unique_ptr<MemRequest> req);

    /** Oldest entry or nullptr. */
    const MemRequest *head() const;

    /** Entry at position i (0 = oldest). */
    const MemRequest *at(size_t i) const { return entries_.at(i).get(); }

    /** Oldest entry satisfying pred, or nullptr. A const queue hands
     *  out a const pointer — the old single const method returned a
     *  mutable MemRequest*, silently laundering away constness. */
    MemRequest *
    findOldest(const std::function<bool(const MemRequest &)> &pred);
    const MemRequest *
    findOldest(const std::function<bool(const MemRequest &)> &pred) const;

    /** Remove and return the oldest entry; queue must be non-empty. */
    std::unique_ptr<MemRequest> popOldest();

    /** Remove and return the given entry (must be present). */
    std::unique_ptr<MemRequest> take(const MemRequest *req);

    /** True if a queued write covers the same line address. */
    bool hasWriteTo(Addr lineAddr) const;

    /** True if a queued entry of any type covers the line. */
    bool hasEntryFor(Addr lineAddr) const;

    void saveState(Serializer &s) const;

    /**
     * Restore entries; `clientOf` maps each restored request (by
     * domain) back to a live completion sink for requests that had a
     * client when saved.
     */
    void restoreState(
        Deserializer &d,
        const std::function<MemClient *(const MemRequest &)> &clientOf);

  private:
    size_t readCap_ = 0;
    size_t writeCap_ = 0;
    size_t reads_ = 0;
    std::deque<std::unique_ptr<MemRequest>> entries_;
};

} // namespace memsec::mem

#endif // MEMSEC_MEM_TRANSACTION_QUEUE_HH
