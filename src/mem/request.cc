#include "mem/request.hh"

#include <sstream>

namespace memsec::mem {

const char *
reqTypeName(ReqType t)
{
    switch (t) {
      case ReqType::Read: return "read";
      case ReqType::Write: return "write";
      case ReqType::Prefetch: return "prefetch";
      case ReqType::Dummy: return "dummy";
    }
    return "???";
}

std::string
MemRequest::toString() const
{
    std::ostringstream os;
    os << reqTypeName(type) << " req" << id << " dom" << domain << " @0x"
       << std::hex << addr << std::dec << " (ch" << loc.channel << " r"
       << loc.rank << " b" << loc.bank << " row" << loc.row << " col"
       << loc.col << ")";
    return os.str();
}

} // namespace memsec::mem
