#include "mem/request.hh"

#include <sstream>

#include "util/serialize.hh"

namespace memsec::mem {

void
serializeRequest(Serializer &s, const MemRequest &req)
{
    s.putU64(req.id);
    s.putU32(req.domain);
    s.putU8(static_cast<uint8_t>(req.type));
    s.putU64(req.addr);
    s.putU32(req.loc.channel);
    s.putU32(req.loc.rank);
    s.putU32(req.loc.bank);
    s.putU32(req.loc.row);
    s.putU32(req.loc.col);
    s.putU64(req.arrival);
    s.putU64(req.firstCommand);
    s.putU64(req.completed);
    s.putU64(req.issued);
    s.putBool(req.client != nullptr);
}

std::unique_ptr<MemRequest>
deserializeRequest(Deserializer &d, bool *hadClient)
{
    auto req = std::make_unique<MemRequest>();
    req->id = d.getU64();
    req->domain = d.getU32();
    const uint8_t type = d.getU8();
    if (type > static_cast<uint8_t>(ReqType::Dummy))
        d.fail("request type byte out of range");
    req->type = static_cast<ReqType>(type);
    req->addr = d.getU64();
    req->loc.channel = d.getU32();
    req->loc.rank = d.getU32();
    req->loc.bank = d.getU32();
    req->loc.row = d.getU32();
    req->loc.col = d.getU32();
    req->arrival = d.getU64();
    req->firstCommand = d.getU64();
    req->completed = d.getU64();
    req->issued = d.getU64();
    const bool had = d.getBool();
    if (hadClient)
        *hadClient = had;
    return req;
}

const char *
reqTypeName(ReqType t)
{
    switch (t) {
      case ReqType::Read: return "read";
      case ReqType::Write: return "write";
      case ReqType::Prefetch: return "prefetch";
      case ReqType::Dummy: return "dummy";
    }
    return "???";
}

std::string
MemRequest::toString() const
{
    std::ostringstream os;
    os << reqTypeName(type) << " req" << id << " dom" << domain << " @0x"
       << std::hex << addr << std::dec << " (ch" << loc.channel << " r"
       << loc.rank << " b" << loc.bank << " row" << loc.row << " col"
       << loc.col << ")";
    return os.str();
}

} // namespace memsec::mem
