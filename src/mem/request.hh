/**
 * @file
 * Memory transaction representation and the client callback interface.
 */

#ifndef MEMSEC_MEM_REQUEST_HH
#define MEMSEC_MEM_REQUEST_HH

#include <memory>
#include <string>

#include "sim/types.hh"

namespace memsec {
class Serializer;
class Deserializer;
} // namespace memsec

namespace memsec::mem {

/** Kind of transaction entering the controller. */
enum class ReqType : uint8_t
{
    Read,     ///< demand load (LLC miss)
    Write,    ///< writeback from the LLC
    Prefetch, ///< prefetcher-generated read
    Dummy,    ///< scheduler-inserted shaping access (never from a core)
};

const char *reqTypeName(ReqType t);

/** Decoded physical location of one cache line. */
struct Decoded
{
    unsigned channel = 0;
    unsigned rank = 0;
    unsigned bank = 0;
    unsigned row = 0;
    unsigned col = 0;
};

struct MemRequest;

/** Receiver of request completions (a core model or the LLC). */
class MemClient
{
  public:
    virtual ~MemClient() = default;

    /** Called when req's data has fully returned / been accepted. */
    virtual void memResponse(const MemRequest &req) = 0;

    /**
     * Called when a prefetch hint was discarded by the controller
     * (side-queue overflow). The client must clear any tracking
     * state — no memResponse will ever arrive for this request.
     */
    virtual void memDropped(const MemRequest &req) { (void)req; }
};

/** One cache-line transaction flowing through the controller. */
struct MemRequest
{
    ReqId id = 0;
    DomainId domain = 0;
    ReqType type = ReqType::Read;
    Addr addr = 0;
    Decoded loc;

    Cycle arrival = 0;          ///< cycle enqueued at the controller
    Cycle firstCommand = kNoCycle; ///< cycle of first DRAM command
    Cycle completed = kNoCycle; ///< cycle data finished / write accepted
    /** Open-loop client issue stamp (kNoCycle for closed-loop
     *  requests). When set, per-domain latency histograms account
     *  from this cycle instead of `arrival`, so client-side queueing
     *  under overload is not hidden from the tail percentiles. */
    Cycle issued = kNoCycle;

    MemClient *client = nullptr; ///< completion sink (null for dummies)

    /**
     * Came from the controller's fixed-capacity request pool; routes
     * the object back there on retirement. Pure provenance — never
     * serialized (a restored request is heap-owned again).
     */
    bool pooled = false;

    bool isRead() const
    {
        return type == ReqType::Read || type == ReqType::Prefetch ||
               type == ReqType::Dummy;
    }
    bool isDemand() const { return type == ReqType::Read; }

    std::string toString() const;
};

/**
 * Serialize one request. The client pointer is encoded as a presence
 * bit only; the restoring controller rebinds it to the client
 * registered for the request's domain (pointer identity cannot cross
 * a process boundary).
 */
void serializeRequest(Serializer &s, const MemRequest &req);

/** Inverse of serializeRequest; *hadClient reports the presence bit. */
std::unique_ptr<MemRequest> deserializeRequest(Deserializer &d,
                                               bool *hadClient);

} // namespace memsec::mem

#endif // MEMSEC_MEM_REQUEST_HH
