/**
 * @file
 * The memory-controller shell: per-domain transaction queues, a
 * pluggable scheduling policy, the DRAM device model, and the
 * completion path back to the cores.
 *
 * The controller is policy-free; all ordering decisions live in the
 * Scheduler strategy object (src/sched). This mirrors the paper's
 * observation that only the transaction scheduler changes between the
 * baseline and FS designs.
 */

#ifndef MEMSEC_MEM_MEMORY_CONTROLLER_HH
#define MEMSEC_MEM_MEMORY_CONTROLLER_HH

#include <deque>
#include <memory>
#include <queue>
#include <vector>

#include "dram/dram_system.hh"
#include "mem/address_map.hh"
#include "mem/request.hh"
#include "mem/transaction_queue.hh"
#include "sim/simulator.hh"
#include "sim/types.hh"
#include "stats/stats.hh"
#include "util/fixed_pool.hh"

namespace memsec::sched {
class Scheduler;
}

namespace memsec::mem {

/** Controller-wide statistics. */
struct ControllerStats
{
    Counter demandReads;     ///< demand reads accepted
    Counter writes;          ///< writebacks accepted
    Counter prefetches;      ///< prefetch reads accepted
    Counter dummies;         ///< dummy operations issued by the scheduler
    Counter forwarded;       ///< reads served by store-to-load forwarding
    Counter mergedWrites;    ///< writes merged with a queued write
    Counter mergedWithPrefetch; ///< demand reads riding a queued prefetch
    Counter realBursts;      ///< data bursts carrying real data
    Counter dummyBursts;     ///< data bursts carrying dummy data
    Counter overflowDrops;   ///< transactions dropped on queue overflow
    Average readLatency;     ///< demand-read latency, memory cycles
    Histogram readLatencyHist;
    /**
     * Client-observed read latency per security domain, for the
     * p50/p99/p99.9 SLA tables. Accounted from MemRequest::issued
     * (the open-loop arrival stamp) when present, else from
     * controller arrival; reset at beginMeasurement() so warmup
     * transients stay out of the percentiles.
     */
    std::vector<Histogram> domainReadLatency;
};

/** One channel's memory controller. */
class MemoryController : public Component
{
  public:
    struct Params
    {
        dram::TimingParams timing;
        dram::Geometry geo;
        unsigned numDomains = 8;
        size_t queueCapacity = 32;
        /** acquireRequest() pool budget (config mc.request_pool). */
        size_t requestPoolCapacity = 64;
    };

    MemoryController(std::string name, const Params &params,
                     const AddressMap &map);
    ~MemoryController() override;

    /** Install the scheduling policy; must happen before ticking. */
    void setScheduler(std::unique_ptr<sched::Scheduler> sched);

    // ---- core-facing interface ----

    /**
     * Register the completion sink serving `domain`. Serialized
     * requests store only a has-client bit; restoreState() rebinds
     * them to the client registered here, so every client must
     * register before restore (CoreModel does so in its constructor).
     */
    void registerClient(DomainId domain, MemClient *client);

    /** Registered client for a domain, or null. */
    MemClient *clientFor(DomainId domain) const;

    /** True if a new request of this type from `domain` can be
     *  queued this cycle (reads and writes budget separately). */
    bool canAccept(DomainId domain, ReqType type = ReqType::Read) const;

    /**
     * Accept a transaction. Decodes the address, performs store-to-
     * load forwarding and write merging, then enqueues. now = current
     * memory cycle.
     */
    void access(std::unique_ptr<MemRequest> req, Cycle now);

    // ---- scheduler-facing interface ----

    TransactionQueue &queue(DomainId domain);
    const TransactionQueue &queue(DomainId domain) const;

    /**
     * Per-domain prefetch candidate queue (Section 5.2: "a few-entry
     * prefetch queue beside each transaction queue"). Bounded; the
     * oldest candidate is dropped on overflow. FS consumes these in
     * dummy slots; the baseline converts them to transactions when
     * the queue has spare service.
     */
    std::deque<std::unique_ptr<MemRequest>> &prefetchQueue(DomainId d);
    unsigned numDomains() const
    {
        return static_cast<unsigned>(queues_.size());
    }

    dram::DramSystem &dram() { return dram_; }
    const dram::DramSystem &dram() const { return dram_; }
    const AddressMap &addressMap() const { return map_; }

    /**
     * Hand a request whose final CAS has issued to the completion
     * pipeline. completeAt is normally the data-burst end; secure
     * schedulers may defer it (e.g. en-masse return at interval end).
     */
    void finishRequest(std::unique_ptr<MemRequest> req, Cycle completeAt);

    /** Count a data burst for bandwidth stats. */
    void noteBurst(bool dummy);

    /** Count a dummy operation. */
    void noteDummy() { stats_.dummies.inc(); }

    /**
     * Fresh request storage for scheduler-internal operations
     * (dummies). Served from a fixed-capacity pool so steady-state
     * slot shaping allocates nothing; falls back to the heap if the
     * pool is ever exhausted (provenance travels in req->pooled).
     * Clientless non-read requests hand their storage back through
     * finishRequest(), closing the recycle loop.
     */
    std::unique_ptr<MemRequest> acquireRequest();

    /** Record a recoverable fault if a report is attached. */
    void recordError(const SimError &err);

    // ---- simulation ----

    void tick(Cycle now) override;
    Cycle nextWakeCycle(Cycle now) const override;
    void fastForward(Cycle from, Cycle to) override;
    void saveState(Serializer &s) const override;
    void restoreState(Deserializer &d) override;

    const ControllerStats &stats() const { return stats_; }
    sched::Scheduler &scheduler();

    /** Reset the per-domain latency histograms at the warmup/measure
     *  boundary (called by the harness alongside the cores'
     *  beginMeasurement). Aggregate stats are untouched. */
    void beginMeasurement();

    /** Register this controller's stats into a group. */
    void registerStats(StatGroup &group) const;

    // ---- failure-path hardening ----

    /**
     * Route recoverable faults (queue overflow, illegal issues) here
     * instead of panicking; forwarded to the DRAM system too.
     */
    void setReport(RunReport *report);

    /**
     * Attach a fault injector to this controller, its DRAM system and
     * (if already installed) its scheduler.
     */
    void attachFaultInjector(fault::FaultInjector *inj);

    /** Effective (real-data) bus utilisation over elapsed cycles. */
    double effectiveBandwidth(Cycle elapsed) const;

  private:
    struct PendingCompletion
    {
        Cycle at = 0;
        uint64_t seq = 0; ///< tie-break to keep completion order stable
        std::shared_ptr<MemRequest> req;
        bool operator>(const PendingCompletion &o) const
        {
            return at != o.at ? at > o.at : seq > o.seq;
        }
    };

    static constexpr size_t kPrefetchQueueCap = 8;

    const AddressMap &map_;
    dram::DramSystem dram_;
    // deque: TransactionQueue is move-only and constructed in place.
    std::deque<TransactionQueue> queues_;
    std::vector<std::deque<std::unique_ptr<MemRequest>>> prefetchQueues_;
    std::unique_ptr<sched::Scheduler> sched_;
    std::priority_queue<PendingCompletion,
                        std::vector<PendingCompletion>,
                        std::greater<PendingCompletion>>
        completions_;
    uint64_t completionSeq_ = 0;
    ReqId reqIdSeq_ = 0;
    std::vector<MemClient *> clients_; ///< completion sink per domain
    FixedPool<MemRequest> requestPool_;
    ControllerStats stats_;
    RunReport *report_ = nullptr;
    fault::FaultInjector *injector_ = nullptr;
};

} // namespace memsec::mem

#endif // MEMSEC_MEM_MEMORY_CONTROLLER_HH
