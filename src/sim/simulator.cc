#include "sim/simulator.hh"

#include <algorithm>

#include "util/logging.hh"
#include "util/serialize.hh"

namespace memsec {

void
Simulator::saveState(Serializer &s) const
{
    s.section("simulator");
    s.putU64(now_);
    s.putU64(cyclesExecuted_);
    s.putU64(cyclesSkipped_);
    s.putU64(jumps_);
    s.putU64(watchdogLastValue_);
    s.putU64(watchdogLastProgress_);
    s.putU64(components_.size());
    for (const Component *c : components_) {
        s.section(c->name());
        c->saveState(s);
    }
}

void
Simulator::restoreState(Deserializer &d)
{
    d.section("simulator");
    now_ = d.getU64();
    cyclesExecuted_ = d.getU64();
    cyclesSkipped_ = d.getU64();
    jumps_ = d.getU64();
    watchdogLastValue_ = d.getU64();
    watchdogLastProgress_ = d.getU64();
    const uint64_t n = d.getU64();
    if (n != components_.size())
        d.fail("component count mismatch");
    for (Component *c : components_) {
        d.section(c->name());
        c->restoreState(d);
    }
}

void
Simulator::add(Component *c)
{
    panic_if(c == nullptr, "Simulator::add(nullptr)");
    components_.push_back(c);
}

void
Simulator::setWatchdog(Cycle window, std::function<uint64_t()> probe)
{
    panic_if(window > 0 && !probe, "watchdog armed without a probe");
    watchdogWindow_ = window;
    watchdogProbe_ = std::move(probe);
    if (window > 0) {
        watchdogLastValue_ = watchdogProbe_();
        watchdogLastProgress_ = now_;
    }
}

void
Simulator::checkWatchdog()
{
    if (watchdogWindow_ == 0)
        return;
    const uint64_t value = watchdogProbe_();
    if (value != watchdogLastValue_) {
        watchdogLastValue_ = value;
        watchdogLastProgress_ = now_;
        return;
    }
    if (now_ - watchdogLastProgress_ >= watchdogWindow_) {
        fatal("livelock: no progress for {} cycles (cycle {}..{}, "
              "progress counter stuck at {})",
              now_ - watchdogLastProgress_, watchdogLastProgress_, now_,
              value);
    }
}

void
Simulator::tickDue()
{
    // A component whose cached wake lies in the future declared this
    // cycle a no-op; give it the equivalent fastForward() catch-up
    // instead of a full tick. This is the same contract the global
    // jump relies on, applied per component: blocked cores skip their
    // ROB scans while the controller executes a slot, and vice versa.
    //
    // The cached hint was computed after the previous cycle, so a
    // component ticked earlier THIS cycle may have invalidated it (a
    // core enqueuing into an idle FR-FCFS controller, whose hint
    // depends on queue emptiness). The global jump never faced this —
    // it only fired when every component slept at once — so before
    // trusting a stale hint, revalidate against live state: re-asking
    // with the previous cycle as the anchor answers "is tick(now_)
    // still a no-op given everything that already happened this
    // cycle?". Mutations by LATER-ordered components need no such
    // care: in the naive loop this component's turn precedes them
    // within the cycle, and refreshWakes() sees them before the next.
    for (size_t i = 0; i < components_.size(); ++i) {
        if (wakes_[i] <= now_ ||
            components_[i]->nextWakeCycle(now_ - 1) <= now_)
            components_[i]->tick(now_);
        else
            components_[i]->fastForward(now_, now_ + 1);
    }
}

Cycle
Simulator::refreshWakes(Cycle end)
{
    // Requery every component after the tick phase, exactly as the
    // pre-gating kernel did: cross-component mutations during this
    // cycle (a completion delivered into a sleeping core, a request
    // enqueued into an idle controller) are visible here, so a cached
    // wake can never outlive the state it was computed from. No early
    // exit: a stale conservative hint would make an idle component
    // tick spuriously on every busy cycle, which costs far more than
    // the (memoized) queries saved.
    Cycle wake = end;
    for (size_t i = 0; i < components_.size(); ++i) {
        const Cycle w =
            std::max(components_[i]->nextWakeCycle(now_), now_ + 1);
        wakes_[i] = w;
        if (w < wake)
            wake = w;
    }
    return std::max(wake, now_ + 1);
}

void
Simulator::jumpTo(Cycle wake)
{
    // The watchdog must fire at the identical cycle in both modes: a
    // jump never overshoots the stall deadline, and the landing cycle
    // is re-checked (component state is frozen across the span, so
    // the probe cannot have advanced).
    if (watchdogWindow_ > 0)
        wake = std::min(wake, watchdogLastProgress_ + watchdogWindow_);
    if (wake <= now_)
        return;
    for (Component *c : components_)
        c->fastForward(now_, wake);
    cyclesSkipped_ += wake - now_;
    ++jumps_;
    now_ = wake;
    checkWatchdog();
}

void
Simulator::run(Cycle n)
{
    const Cycle end = now_ + n;
    if (!fastForward_) {
        // Naive mode: the digest anchor. Every component ticks every
        // cycle; no hints are consulted at all.
        while (now_ < end) {
            for (Component *c : components_)
                c->tick(now_);
            ++now_;
            ++cyclesExecuted_;
            checkWatchdog();
        }
        return;
    }
    // Harness code may mutate components between run() calls (fault
    // injection, measurement boundaries); start each entry with every
    // component due, which is always safe.
    wakes_.assign(components_.size(), now_);
    while (now_ < end) {
        tickDue();
        const Cycle wake = refreshWakes(end);
        ++now_;
        ++cyclesExecuted_;
        checkWatchdog();
        if (wake > now_)
            jumpTo(wake);
    }
}

Cycle
Simulator::runUntil(const std::function<bool()> &pred, Cycle maxCycles)
{
    const Cycle start = now_;
    const Cycle end = now_ + maxCycles;
    if (!fastForward_) {
        while (now_ < end && !pred()) {
            for (Component *c : components_)
                c->tick(now_);
            ++now_;
            ++cyclesExecuted_;
            checkWatchdog();
        }
        return now_ - start;
    }
    wakes_.assign(components_.size(), now_);
    while (now_ < end && !pred()) {
        tickDue();
        const Cycle wake = refreshWakes(end);
        ++now_;
        ++cyclesExecuted_;
        checkWatchdog();
        // Component state is frozen across a skip, so pred() is too —
        // but a predicate already true here must stop the loop at this
        // exact cycle, as the naive loop would.
        if (wake > now_ && !pred())
            jumpTo(wake);
    }
    return now_ - start;
}

} // namespace memsec
