#include "sim/simulator.hh"

#include <algorithm>

#include "util/logging.hh"
#include "util/serialize.hh"

namespace memsec {

void
Simulator::saveState(Serializer &s) const
{
    s.section("simulator");
    s.putU64(now_);
    s.putU64(cyclesExecuted_);
    s.putU64(cyclesSkipped_);
    s.putU64(jumps_);
    s.putU64(watchdogLastValue_);
    s.putU64(watchdogLastProgress_);
    s.putU64(components_.size());
    for (const Component *c : components_) {
        s.section(c->name());
        c->saveState(s);
    }
}

void
Simulator::restoreState(Deserializer &d)
{
    d.section("simulator");
    now_ = d.getU64();
    cyclesExecuted_ = d.getU64();
    cyclesSkipped_ = d.getU64();
    jumps_ = d.getU64();
    watchdogLastValue_ = d.getU64();
    watchdogLastProgress_ = d.getU64();
    const uint64_t n = d.getU64();
    if (n != components_.size())
        d.fail("component count mismatch");
    for (Component *c : components_) {
        d.section(c->name());
        c->restoreState(d);
    }
}

void
Simulator::add(Component *c)
{
    panic_if(c == nullptr, "Simulator::add(nullptr)");
    components_.push_back(c);
}

void
Simulator::setWatchdog(Cycle window, std::function<uint64_t()> probe)
{
    panic_if(window > 0 && !probe, "watchdog armed without a probe");
    watchdogWindow_ = window;
    watchdogProbe_ = std::move(probe);
    if (window > 0) {
        watchdogLastValue_ = watchdogProbe_();
        watchdogLastProgress_ = now_;
    }
}

void
Simulator::checkWatchdog()
{
    if (watchdogWindow_ == 0)
        return;
    const uint64_t value = watchdogProbe_();
    if (value != watchdogLastValue_) {
        watchdogLastValue_ = value;
        watchdogLastProgress_ = now_;
        return;
    }
    if (now_ - watchdogLastProgress_ >= watchdogWindow_) {
        fatal("livelock: no progress for {} cycles (cycle {}..{}, "
              "progress counter stuck at {})",
              now_ - watchdogLastProgress_, watchdogLastProgress_, now_,
              value);
    }
}

Cycle
Simulator::wakeTarget(Cycle now, Cycle end) const
{
    Cycle wake = end;
    for (const Component *c : components_) {
        const Cycle w = c->nextWakeCycle(now);
        if (w < wake)
            wake = w;
        if (wake <= now + 1)
            return now + 1;
    }
    return std::max(wake, now + 1);
}

void
Simulator::jumpTo(Cycle wake)
{
    // The watchdog must fire at the identical cycle in both modes: a
    // jump never overshoots the stall deadline, and the landing cycle
    // is re-checked (component state is frozen across the span, so
    // the probe cannot have advanced).
    if (watchdogWindow_ > 0)
        wake = std::min(wake, watchdogLastProgress_ + watchdogWindow_);
    if (wake <= now_)
        return;
    for (Component *c : components_)
        c->fastForward(now_, wake);
    cyclesSkipped_ += wake - now_;
    ++jumps_;
    now_ = wake;
    checkWatchdog();
}

void
Simulator::run(Cycle n)
{
    const Cycle end = now_ + n;
    while (now_ < end) {
        for (Component *c : components_)
            c->tick(now_);
        const Cycle wake =
            fastForward_ ? wakeTarget(now_, end) : now_ + 1;
        ++now_;
        ++cyclesExecuted_;
        checkWatchdog();
        if (wake > now_)
            jumpTo(wake);
    }
}

Cycle
Simulator::runUntil(const std::function<bool()> &pred, Cycle maxCycles)
{
    const Cycle start = now_;
    const Cycle end = now_ + maxCycles;
    while (now_ < end && !pred()) {
        for (Component *c : components_)
            c->tick(now_);
        const Cycle wake =
            fastForward_ ? wakeTarget(now_, end) : now_ + 1;
        ++now_;
        ++cyclesExecuted_;
        checkWatchdog();
        // Component state is frozen across a skip, so pred() is too —
        // but a predicate already true here must stop the loop at this
        // exact cycle, as the naive loop would.
        if (wake > now_ && !pred())
            jumpTo(wake);
    }
    return now_ - start;
}

} // namespace memsec
