#include "sim/simulator.hh"

#include "util/logging.hh"

namespace memsec {

void
Simulator::add(Component *c)
{
    panic_if(c == nullptr, "Simulator::add(nullptr)");
    components_.push_back(c);
}

void
Simulator::setWatchdog(Cycle window, std::function<uint64_t()> probe)
{
    panic_if(window > 0 && !probe, "watchdog armed without a probe");
    watchdogWindow_ = window;
    watchdogProbe_ = std::move(probe);
    if (window > 0) {
        watchdogLastValue_ = watchdogProbe_();
        watchdogLastProgress_ = now_;
    }
}

void
Simulator::checkWatchdog()
{
    if (watchdogWindow_ == 0)
        return;
    const uint64_t value = watchdogProbe_();
    if (value != watchdogLastValue_) {
        watchdogLastValue_ = value;
        watchdogLastProgress_ = now_;
        return;
    }
    if (now_ - watchdogLastProgress_ >= watchdogWindow_) {
        fatal("livelock: no progress for {} cycles (cycle {}..{}, "
              "progress counter stuck at {})",
              now_ - watchdogLastProgress_, watchdogLastProgress_, now_,
              value);
    }
}

void
Simulator::run(Cycle n)
{
    const Cycle end = now_ + n;
    while (now_ < end) {
        for (Component *c : components_)
            c->tick(now_);
        ++now_;
        checkWatchdog();
    }
}

Cycle
Simulator::runUntil(const std::function<bool()> &pred, Cycle maxCycles)
{
    const Cycle start = now_;
    const Cycle end = now_ + maxCycles;
    while (now_ < end && !pred()) {
        for (Component *c : components_)
            c->tick(now_);
        ++now_;
        checkWatchdog();
    }
    return now_ - start;
}

} // namespace memsec
