#include "sim/simulator.hh"

#include "util/logging.hh"

namespace memsec {

void
Simulator::add(Component *c)
{
    panic_if(c == nullptr, "Simulator::add(nullptr)");
    components_.push_back(c);
}

void
Simulator::run(Cycle n)
{
    const Cycle end = now_ + n;
    while (now_ < end) {
        for (Component *c : components_)
            c->tick(now_);
        ++now_;
    }
}

Cycle
Simulator::runUntil(const std::function<bool()> &pred, Cycle maxCycles)
{
    const Cycle start = now_;
    const Cycle end = now_ + maxCycles;
    while (now_ < end && !pred()) {
        for (Component *c : components_)
            c->tick(now_);
        ++now_;
    }
    return now_ - start;
}

} // namespace memsec
