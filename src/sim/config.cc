#include "sim/config.hh"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "util/logging.hh"

namespace memsec {

namespace {

std::string
trim(const std::string &s)
{
    size_t b = 0;
    size_t e = s.size();
    while (b < e && std::isspace(static_cast<unsigned char>(s[b])))
        ++b;
    while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])))
        --e;
    return s.substr(b, e - b);
}

} // namespace

Config &
Config::set(const std::string &key, const std::string &value)
{
    values_[key] = value;
    return *this;
}

Config &
Config::set(const std::string &key, const char *value)
{
    values_[key] = value;
    return *this;
}

Config &
Config::set(const std::string &key, int64_t value)
{
    values_[key] = std::to_string(value);
    return *this;
}

Config &
Config::set(const std::string &key, uint64_t value)
{
    values_[key] = std::to_string(value);
    return *this;
}

Config &
Config::set(const std::string &key, int value)
{
    return set(key, static_cast<int64_t>(value));
}

Config &
Config::set(const std::string &key, unsigned value)
{
    return set(key, static_cast<uint64_t>(value));
}

Config &
Config::set(const std::string &key, double value)
{
    std::ostringstream os;
    os << value;
    values_[key] = os.str();
    return *this;
}

Config &
Config::set(const std::string &key, bool value)
{
    values_[key] = value ? "true" : "false";
    return *this;
}

bool
Config::has(const std::string &key) const
{
    return values_.count(key) != 0;
}

void
Config::erase(const std::string &key)
{
    values_.erase(key);
}

std::string
Config::getString(const std::string &key, const std::string &dflt) const
{
    auto it = values_.find(key);
    return it == values_.end() ? dflt : it->second;
}

int64_t
Config::getInt(const std::string &key, int64_t dflt) const
{
    auto it = values_.find(key);
    if (it == values_.end())
        return dflt;
    char *end = nullptr;
    int64_t v = std::strtoll(it->second.c_str(), &end, 0);
    fatal_if(end == it->second.c_str() || *end != '\0',
             "config key '{}' has non-integer value '{}'", key, it->second);
    return v;
}

uint64_t
Config::getUint(const std::string &key, uint64_t dflt) const
{
    auto it = values_.find(key);
    if (it == values_.end())
        return dflt;
    char *end = nullptr;
    uint64_t v = std::strtoull(it->second.c_str(), &end, 0);
    fatal_if(end == it->second.c_str() || *end != '\0',
             "config key '{}' has non-integer value '{}'", key, it->second);
    return v;
}

double
Config::getDouble(const std::string &key, double dflt) const
{
    auto it = values_.find(key);
    if (it == values_.end())
        return dflt;
    char *end = nullptr;
    double v = std::strtod(it->second.c_str(), &end);
    fatal_if(end == it->second.c_str() || *end != '\0',
             "config key '{}' has non-numeric value '{}'", key, it->second);
    return v;
}

bool
Config::getBool(const std::string &key, bool dflt) const
{
    auto it = values_.find(key);
    if (it == values_.end())
        return dflt;
    std::string v = it->second;
    std::transform(v.begin(), v.end(), v.begin(),
                   [](unsigned char c) { return std::tolower(c); });
    if (v == "true" || v == "1" || v == "yes" || v == "on")
        return true;
    if (v == "false" || v == "0" || v == "no" || v == "off")
        return false;
    fatal("config key '{}' has non-boolean value '{}'", key, it->second);
}

std::vector<std::string>
Config::keys() const
{
    std::vector<std::string> out;
    out.reserve(values_.size());
    for (const auto &kv : values_)
        out.push_back(kv.first);
    return out;
}

void
Config::merge(const Config &other)
{
    for (const auto &kv : other.values_)
        values_[kv.first] = kv.second;
}

std::string
ConfigParseError::toString() const
{
    std::ostringstream os;
    os << file;
    if (line > 0)
        os << ":" << line << " (byte " << byteOffset << ")";
    os << ": " << message;
    return os.str();
}

bool
Config::tryParseIni(const std::string &text, Config &out,
                    ConfigParseError &err, const std::string &file)
{
    auto failAt = [&](int lineno, uint64_t offset,
                      const std::string &message) {
        err.file = file;
        err.line = lineno;
        err.byteOffset = offset;
        err.message = message;
        return false;
    };

    std::istringstream in(text);
    std::string line;
    std::string section;
    int lineno = 0;
    uint64_t offset = 0;
    while (std::getline(in, line)) {
        ++lineno;
        const uint64_t lineStart = offset;
        offset += line.size() + 1; // +1 for the consumed '\n'
        auto hash = line.find_first_of("#;");
        if (hash != std::string::npos)
            line = line.substr(0, hash);
        line = trim(line);
        if (line.empty())
            continue;
        if (line.front() == '[') {
            if (line.back() != ']')
                return failAt(lineno, lineStart,
                              "unterminated section '" + line + "'");
            section = trim(line.substr(1, line.size() - 2));
            continue;
        }
        auto eq = line.find('=');
        if (eq == std::string::npos)
            return failAt(lineno, lineStart,
                          "expected 'key = value', got '" + line + "'");
        std::string key = trim(line.substr(0, eq));
        std::string value = trim(line.substr(eq + 1));
        if (key.empty())
            return failAt(lineno, lineStart, "empty key");
        if (!section.empty())
            key = section + "." + key;
        out.set(key, value);
    }
    return true;
}

bool
Config::tryLoadFile(const std::string &path, Config &out,
                    ConfigParseError &err)
{
    std::ifstream in(path);
    if (!in) {
        err.file = path;
        err.line = 0;
        err.message = "cannot open config file '" + path + "'";
        return false;
    }
    std::ostringstream os;
    os << in.rdbuf();
    return tryParseIni(os.str(), out, err, path);
}

Config
Config::parseIni(const std::string &text)
{
    Config cfg;
    ConfigParseError err;
    if (!tryParseIni(text, cfg, err))
        fatal("config line {}: {}", err.line, err.message);
    return cfg;
}

Config
Config::loadFile(const std::string &path)
{
    Config cfg;
    ConfigParseError err;
    if (!tryLoadFile(path, cfg, err)) {
        if (err.line == 0)
            fatal("{}", err.message);
        fatal("{}: config line {}: {}", err.file, err.line, err.message);
    }
    return cfg;
}

std::string
Config::toString() const
{
    std::ostringstream os;
    for (const auto &kv : values_)
        os << kv.first << " = " << kv.second << "\n";
    return os.str();
}

} // namespace memsec
