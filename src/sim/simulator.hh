/**
 * @file
 * Cycle-driven simulation kernel with an idle-skip fast path.
 *
 * The simulator owns a list of components and advances a global DRAM
 * bus clock. Each component is ticked once per memory cycle; CPU-side
 * components internally iterate their CPU-clock sub-cycles. A simple
 * tick loop (rather than an event queue) is the right tool here: the
 * memory controller does work nearly every cycle under load, so
 * event-queue overhead would dominate without reducing work.
 *
 * Fixed service policies make the complementary case common too: the
 * next interesting cycle is statically known (the next slot boundary,
 * the next planned command, the next refresh epoch), so long idle
 * stretches can be skipped wholesale. After ticking a cycle the
 * kernel asks every component for its next wake cycle and, when all
 * of them agree the immediate future is dead time, jumps the clock —
 * with a fastForward() catch-up call so per-cycle accounting (CPU
 * clocks, stall counters, energy state residency) stays byte-
 * identical to the naive loop.
 *
 * The same hint gates ticks per component: on an executed cycle, only
 * components whose wake hint is due tick; the rest revalidate the
 * hint against live state (an earlier-ordered component may have
 * mutated them within this very cycle) and, if still asleep, get the
 * one-cycle fastForward() equivalent. A memory-blocked core therefore
 * never rescans its ROB just because the controller executed a slot.
 * Hints are requeried for every component after every tick phase, so
 * a cross-component mutation (a completion delivered into a sleeping
 * core) invalidates the stale hint before the next cycle begins. See
 * docs/PERF.md for the contract and tests/test_fastforward_diff.cc
 * for the proof obligations.
 */

#ifndef MEMSEC_SIM_SIMULATOR_HH
#define MEMSEC_SIM_SIMULATOR_HH

#include <functional>
#include <string>
#include <vector>

#include "sim/types.hh"

namespace memsec {

class Serializer;
class Deserializer;

/**
 * Base class for everything that participates in the tick loop.
 * Components are ticked in registration order each memory cycle.
 */
class Component
{
  public:
    explicit Component(std::string name) : name_(std::move(name)) {}
    virtual ~Component() = default;

    /** Advance this component by one DRAM bus cycle. */
    virtual void tick(Cycle now) = 0;

    /**
     * Fast-forward hint, queried right after tick(now): the earliest
     * cycle > now at which this component's tick() would do anything
     * observable. Returning kNoCycle means "no self-scheduled work; I
     * only react to other components". The contract: for every cycle
     * c in (now, nextWakeCycle(now)), tick(c) must be a no-op except
     * for per-cycle accounting that fastForward() reproduces exactly.
     * The default (now + 1) declares every cycle interesting and
     * preserves the naive loop for components without a hint.
     */
    virtual Cycle
    nextWakeCycle(Cycle now) const
    {
        return now + 1;
    }

    /**
     * Catch up over the skipped span [from, to): called once per
     * kernel jump on every component, in registration order, before
     * the clock moves. Must reproduce byte-for-byte the per-cycle
     * accounting tick() would have performed over those cycles (CPU
     * clock advance, stall counters, energy state residency); the
     * default assumes tick() keeps no per-cycle books.
     */
    virtual void
    fastForward(Cycle from, Cycle to)
    {
        (void)from;
        (void)to;
    }

    /**
     * Serialize this component's evolving state. The obligation is
     * exhaustive: a fresh instance built from the identical config,
     * restored from this stream, must continue the run with every
     * simulated observable byte-identical to an uninterrupted run
     * (tests/test_checkpoint_diff.cc). Config-derived state (slot
     * tables, pipeline solutions, geometry) is rebuilt by the
     * constructor and must not be serialized. Default: stateless.
     */
    virtual void
    saveState(Serializer &s) const
    {
        (void)s;
    }

    /** Restore state written by saveState() on an identically
     *  configured fresh instance. */
    virtual void
    restoreState(Deserializer &d)
    {
        (void)d;
    }

    /** Component instance name (for stats and diagnostics). */
    const std::string &name() const { return name_; }

  private:
    std::string name_;
};

/**
 * The global tick loop. Does not own the components; the harness does.
 */
class Simulator
{
  public:
    Simulator() = default;

    /** Register a component; ticked in registration order. */
    void add(Component *c);

    /** Current time in memory cycles. */
    Cycle now() const { return now_; }

    /** Advance the simulation by exactly n memory cycles. */
    void run(Cycle n);

    /**
     * Advance until pred() returns true (checked once per cycle) or
     * maxCycles elapse. Returns the number of cycles actually run.
     */
    Cycle runUntil(const std::function<bool()> &pred, Cycle maxCycles);

    /**
     * Arm the livelock watchdog: `probe` must return a monotone
     * progress counter (e.g. instructions retired + DRAM commands
     * issued). If it fails to advance for `window` cycles the run is
     * fatally terminated with a diagnostic naming the stall interval —
     * a wedged scheduler otherwise spins silently to the cycle limit.
     * window = 0 disarms.
     */
    void setWatchdog(Cycle window, std::function<uint64_t()> probe);

    /**
     * Enable/disable the idle-skip fast path (default on). Forced-
     * naive mode exists for the differential tests, which require the
     * two modes byte-identical in every simulated observable.
     */
    void setFastForward(bool on) { fastForward_ = on; }
    bool fastForwardEnabled() const { return fastForward_; }

    /** Cycles actually ticked (component loops executed). */
    uint64_t cyclesExecuted() const { return cyclesExecuted_; }
    /** Cycles skipped by fast-forward jumps. */
    uint64_t cyclesSkipped() const { return cyclesSkipped_; }
    /** Number of fast-forward jumps taken. */
    uint64_t fastForwardJumps() const { return jumps_; }

    /**
     * Serialize the kernel clock plus every registered component (in
     * registration order, each under a section named after it).
     * Watchdog config and the fast-forward flag are not serialized;
     * the harness re-arms them before restoreState().
     */
    void saveState(Serializer &s) const;
    void restoreState(Deserializer &d);

  private:
    /** Per-cycle watchdog check; fatal on a stall. */
    void checkWatchdog();

    /**
     * Tick phase of one executed cycle: components whose cached wake
     * hint is due tick normally; the rest revalidate their hint
     * against live state (an earlier-ordered component may have
     * mutated them this very cycle) and, if still asleep, receive a
     * one-cycle fastForward() catch-up, which the hint contract
     * guarantees is byte-identical to the tick they skipped.
     */
    void tickDue();

    /**
     * Requery every component's wake hint after a tick phase and
     * cache them in wakes_, returning their minimum clamped into
     * [now + 1, end].
     */
    Cycle refreshWakes(Cycle end);

    /**
     * Jump now_ forward to `wake` if the watchdog deadline allows:
     * calls fastForward() on every component, advances the clock and
     * re-checks the watchdog at the landing cycle (so a stalled run
     * dies at the identical cycle in both modes).
     */
    void jumpTo(Cycle wake);

    std::vector<Component *> components_;
    /** Cached per-component wake hints, refreshed every executed
     *  cycle; derived state, reset on every run() entry. */
    std::vector<Cycle> wakes_;
    Cycle now_ = 0;

    bool fastForward_ = true;
    uint64_t cyclesExecuted_ = 0;
    uint64_t cyclesSkipped_ = 0;
    uint64_t jumps_ = 0;

    Cycle watchdogWindow_ = 0; ///< 0 = disarmed
    std::function<uint64_t()> watchdogProbe_;
    uint64_t watchdogLastValue_ = 0;
    Cycle watchdogLastProgress_ = 0;
};

} // namespace memsec

#endif // MEMSEC_SIM_SIMULATOR_HH
