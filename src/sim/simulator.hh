/**
 * @file
 * Cycle-driven simulation kernel.
 *
 * The simulator owns a list of components and advances a global DRAM
 * bus clock. Each component is ticked once per memory cycle; CPU-side
 * components internally iterate their CPU-clock sub-cycles. A simple
 * tick loop (rather than an event queue) is the right tool here: the
 * memory controller does work nearly every cycle, so event-queue
 * overhead would dominate without reducing work.
 */

#ifndef MEMSEC_SIM_SIMULATOR_HH
#define MEMSEC_SIM_SIMULATOR_HH

#include <functional>
#include <string>
#include <vector>

#include "sim/types.hh"

namespace memsec {

/**
 * Base class for everything that participates in the tick loop.
 * Components are ticked in registration order each memory cycle.
 */
class Component
{
  public:
    explicit Component(std::string name) : name_(std::move(name)) {}
    virtual ~Component() = default;

    /** Advance this component by one DRAM bus cycle. */
    virtual void tick(Cycle now) = 0;

    /** Component instance name (for stats and diagnostics). */
    const std::string &name() const { return name_; }

  private:
    std::string name_;
};

/**
 * The global tick loop. Does not own the components; the harness does.
 */
class Simulator
{
  public:
    Simulator() = default;

    /** Register a component; ticked in registration order. */
    void add(Component *c);

    /** Current time in memory cycles. */
    Cycle now() const { return now_; }

    /** Advance the simulation by exactly n memory cycles. */
    void run(Cycle n);

    /**
     * Advance until pred() returns true (checked once per cycle) or
     * maxCycles elapse. Returns the number of cycles actually run.
     */
    Cycle runUntil(const std::function<bool()> &pred, Cycle maxCycles);

    /**
     * Arm the livelock watchdog: `probe` must return a monotone
     * progress counter (e.g. instructions retired + DRAM commands
     * issued). If it fails to advance for `window` cycles the run is
     * fatally terminated with a diagnostic naming the stall interval —
     * a wedged scheduler otherwise spins silently to the cycle limit.
     * window = 0 disarms.
     */
    void setWatchdog(Cycle window, std::function<uint64_t()> probe);

  private:
    /** Per-cycle watchdog check; fatal on a stall. */
    void checkWatchdog();

    std::vector<Component *> components_;
    Cycle now_ = 0;

    Cycle watchdogWindow_ = 0; ///< 0 = disarmed
    std::function<uint64_t()> watchdogProbe_;
    uint64_t watchdogLastValue_ = 0;
    Cycle watchdogLastProgress_ = 0;
};

} // namespace memsec

#endif // MEMSEC_SIM_SIMULATOR_HH
