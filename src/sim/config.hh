/**
 * @file
 * Typed key/value configuration store.
 *
 * Experiments are assembled from a flat Config: keys are dotted names
 * ("dram.ranks", "sched.policy"). Values are stored as strings and
 * converted on read; unknown keys fall back to the supplied default so
 * benches only set what they vary. An INI-style parser is provided so
 * the example programs can load configs from files.
 */

#ifndef MEMSEC_SIM_CONFIG_HH
#define MEMSEC_SIM_CONFIG_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace memsec {

/**
 * Where and why a config parse failed. `line` is 1-based; 0 means the
 * failure was not line-specific (e.g. an unreadable file).
 */
struct ConfigParseError
{
    std::string file; ///< "<string>" when parsing in-memory text
    int line = 0;
    /** Byte offset into the input where the bad line starts. */
    uint64_t byteOffset = 0;
    std::string message;

    /** "file:line (byte B): message" ("file: message" if line == 0). */
    std::string toString() const;
};

/** Flat string-keyed configuration with typed accessors. */
class Config
{
  public:
    Config() = default;

    /** Set (or overwrite) a key. */
    Config &set(const std::string &key, const std::string &value);
    Config &set(const std::string &key, const char *value);
    Config &set(const std::string &key, int64_t value);
    Config &set(const std::string &key, uint64_t value);
    Config &set(const std::string &key, int value);
    Config &set(const std::string &key, unsigned value);
    Config &set(const std::string &key, double value);
    Config &set(const std::string &key, bool value);

    /** True if key is present. */
    bool has(const std::string &key) const;

    /** Remove a key if present. */
    void erase(const std::string &key);

    /** Typed getters; return dflt when the key is absent. */
    std::string getString(const std::string &key,
                          const std::string &dflt = "") const;
    int64_t getInt(const std::string &key, int64_t dflt = 0) const;
    uint64_t getUint(const std::string &key, uint64_t dflt = 0) const;
    double getDouble(const std::string &key, double dflt = 0.0) const;
    bool getBool(const std::string &key, bool dflt = false) const;

    /** All keys in sorted order (for dumping). */
    std::vector<std::string> keys() const;

    /** Merge other into this; other's values win on conflict. */
    void merge(const Config &other);

    /**
     * Parse INI-style text: "key = value" lines, optional [section]
     * headers that prefix subsequent keys with "section.", '#' or ';'
     * comments. Returns false and fills `err` (with file/line context)
     * on the first malformed line, leaving `out` partially filled.
     */
    static bool tryParseIni(const std::string &text, Config &out,
                            ConfigParseError &err,
                            const std::string &file = "<string>");

    /** tryParseIni() on a file's contents; false with err.line == 0 if
     *  the file cannot be read. */
    static bool tryLoadFile(const std::string &path, Config &out,
                            ConfigParseError &err);

    /**
     * Parse INI-style text; malformed lines are a fatal error. Only
     * appropriate at top-level CLI entry points — library code should
     * use tryParseIni() and propagate the structured error.
     */
    static Config parseIni(const std::string &text);

    /** Load parseIni() from a file; fatal if unreadable. */
    static Config loadFile(const std::string &path);

    /** Render as sorted "key = value" lines. */
    std::string toString() const;

  private:
    std::map<std::string, std::string> values_;
};

} // namespace memsec

#endif // MEMSEC_SIM_CONFIG_HH
