#include "sim/compiled_schedule.hh"

#include <sstream>

namespace memsec {

CompiledMode
parseCompiledMode(const std::string &text)
{
    if (text == "off")
        return CompiledMode::Off;
    if (text == "on")
        return CompiledMode::On;
    if (text == "verify")
        return CompiledMode::Verify;
    fatal("sim.compiled: unknown mode '{}' (expected off|on|verify)",
          text);
}

const char *
toString(CompiledMode mode)
{
    switch (mode) {
      case CompiledMode::Off:
        return "off";
      case CompiledMode::On:
        return "on";
      case CompiledMode::Verify:
        return "verify";
    }
    return "?";
}

std::string
CompiledSchedule::describe() const
{
    std::ostringstream os;
    if (!valid) {
        os << "compiled-schedule: invalid (" << note << ")";
        return os.str();
    }
    unsigned phantoms = 0;
    for (const auto &slot : slots)
        phantoms += slot.phantom ? 1 : 0;
    os << "compiled-schedule: l=" << l << " lead=" << lead << " slots="
       << slots.size() << " (phantom " << phantoms << ") frame="
       << frameCycles() << " hyperperiod=" << hyperperiod
       << " pairsChecked=" << pairsChecked;
    return os.str();
}

void
CompiledEnergyAccountant::configure(unsigned ranks, size_t capacityPerRank)
{
    capacityPerRank_ = capacityPerRank;
    lanes_.assign(ranks, {});
    for (auto &lane : lanes_)
        lane.reserve(capacityPerRank_ + 1);
}

void
CompiledEnergyAccountant::deactivate()
{
    lanes_.clear();
    capacityPerRank_ = 0;
}

void
CompiledEnergyAccountant::addInterval(unsigned rank, Cycle from, Cycle to)
{
    panic_if(rank >= lanes_.size(),
             "CompiledEnergyAccountant: rank {} out of range", rank);
    panic_if(from >= to,
             "CompiledEnergyAccountant: empty interval [{}, {})", from,
             to);
    auto &lane = lanes_[rank];

    // Insert keeping the lane sorted by start cycle.
    auto pos = std::upper_bound(
        lane.begin(), lane.end(), from,
        [](Cycle f, const Interval &iv) { return f < iv.from; });

    // Merge with the predecessor if it touches [from, to).
    bool merged = false;
    if (pos != lane.begin()) {
        auto prev = std::prev(pos);
        if (prev->to >= from) {
            if (to > prev->to)
                prev->to = to;
            pos = prev;
            merged = true;
        }
    }
    if (!merged) {
        fatal_if(lane.size() >= capacityPerRank_,
                 "CompiledEnergyAccountant: rank {} interval backlog "
                 "exceeds {}; raise sim.compiled_intervals or set "
                 "sim.compiled=off",
                 rank, capacityPerRank_);
        pos = lane.insert(pos, Interval{from, to});
    }

    // Swallow successors the (possibly grown) interval now reaches.
    auto next = std::next(pos);
    while (next != lane.end() && next->from <= pos->to) {
        if (next->to > pos->to)
            pos->to = next->to;
        next = lane.erase(next);
    }
}

uint64_t
CompiledEnergyAccountant::activeCyclesIn(unsigned rank, Cycle spanFrom,
                                         Cycle spanTo)
{
    panic_if(rank >= lanes_.size(),
             "CompiledEnergyAccountant: rank {} out of range", rank);
    auto &lane = lanes_[rank];
    uint64_t active = 0;
    size_t consumed = 0;
    for (const auto &iv : lane) {
        if (iv.from >= spanTo)
            break;
        if (iv.to > spanFrom)
            active += std::min(iv.to, spanTo) -
                      std::max(iv.from, spanFrom);
        if (iv.to <= spanTo)
            ++consumed; // fully behind the span frontier: retire it
        else
            break; // straddles spanTo; later spans take the rest
    }
    if (consumed > 0)
        lane.erase(lane.begin(), lane.begin() + consumed);
    return active;
}

void
CompiledEnergyAccountant::clearIntervals()
{
    for (auto &lane : lanes_)
        lane.clear();
}

} // namespace memsec
