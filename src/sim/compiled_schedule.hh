/**
 * @file
 * Precompiled slot tables and replay machinery for the FS fast path.
 *
 * The paper's central observation — a fixed service schedule is a
 * *fixed per-cycle template over a known hyperperiod* — means an FS/TP
 * run does not need to rediscover its command timing cycle by cycle.
 * This file holds the pieces that exploit that (docs/PERF.md):
 *
 *  - CompiledSchedule / CompiledSlot: one frame of the template,
 *    flattened to per-slot command-cycle deltas. Emitted by
 *    analysis::ScheduleVerifier::compile(), which first re-proves the
 *    template conflict-free over the hyperperiod, so a table is only
 *    ever produced from a verified schedule.
 *  - ReplayRing: a fixed-capacity, timestamp-sorted queue of pending
 *    command occurrences. Schedulers enqueue at decision time and the
 *    controller drains lazily in global timestamp order, so device
 *    state at every apply is identical to the interpreted path.
 *  - CompiledEnergyAccountant: per-rank active-residency intervals
 *    ([actAt, casAt) under closed-row auto-precharge), fed at decision
 *    time and consumed by contiguous spans, replacing per-cycle
 *    power-state sampling with interval arithmetic.
 *
 * All of this is derived state: checkpoints serialize only the
 * interpreted representation (the planned-op deque), and replay state
 * is rebuilt on restore, which is what makes checkpoints portable
 * across sim.compiled modes.
 */

#ifndef MEMSEC_SIM_COMPILED_SCHEDULE_HH
#define MEMSEC_SIM_COMPILED_SCHEDULE_HH

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "sim/types.hh"
#include "util/logging.hh"

namespace memsec {

/** How a run uses the compiled table (config key sim.compiled). */
enum class CompiledMode : uint8_t
{
    Off,    ///< interpreted scheduling only
    On,     ///< table-driven replay; TimingChecker not consulted
    Verify, ///< replay, but every command still audited + predictions
            ///  asserted against the device model
};

/** Parse "off" | "on" | "verify"; fatal on anything else. */
CompiledMode parseCompiledMode(const std::string &text);

const char *toString(CompiledMode mode);

/**
 * One slot of the compiled frame. All cycle fields are deltas from the
 * slot's decision cycle (slot * l); the verifier's lead term is folded
 * in, so every delta is non-negative.
 */
struct CompiledSlot
{
    DomainId domain = 0;   ///< owning security domain (round-robin)
    unsigned group = 0;    ///< bank-group lane (triple alternation)
    bool phantom = false;  ///< padding slot: never decided, no commands

    Cycle actRead = 0;     ///< ACT delta for a read transaction
    Cycle casRead = 0;     ///< RdA delta
    Cycle dataRead = 0;    ///< data-burst start delta
    Cycle completeRead = 0;  ///< data-burst end delta (request done)
    Cycle actWrite = 0;
    Cycle casWrite = 0;
    Cycle dataWrite = 0;
    Cycle completeWrite = 0;
};

/**
 * A verified, flattened frame of the FS template plus the proof
 * provenance it was emitted under. `valid` is false when verification
 * failed (callers must then stay on the interpreted path).
 */
struct CompiledSchedule
{
    bool valid = false;
    unsigned l = 0;          ///< slot width in DRAM cycles
    Cycle lead = 0;          ///< -min(offset): shift making deltas >= 0
    std::vector<CompiledSlot> slots; ///< one frame, phantom pads included

    /* Provenance from the ScheduleVerifier run that emitted this. */
    Cycle hyperperiod = 0;
    uint64_t slotsChecked = 0;
    uint64_t pairsChecked = 0;
    std::string note;        ///< human-readable failure reason if !valid

    Cycle frameCycles() const { return Cycle{slots.size()} * l; }

    /** One-line summary for logs and docs. */
    std::string describe() const;
};

/** One pending command occurrence in a ReplayRing. */
template <typename Op>
struct ReplayEvent
{
    Cycle at = 0;               ///< issue cycle
    Cycle completeAt = kNoCycle; ///< CAS only: predicted request done
    Op *op = nullptr;           ///< planned op this belongs to
    bool cas = false;           ///< false = ACT, true = CAS
};

/**
 * Fixed-capacity queue of ReplayEvents kept sorted by issue cycle.
 * Storage is reserved once at construction; steady-state push/pop do
 * not allocate. push() refuses (returns false) at capacity — the
 * caller falls back to interpreted scheduling, it never loses events.
 *
 * Op pointers must stay stable while queued; std::deque elements
 * (the schedulers' planned-op queues) satisfy that under push_back /
 * pop_front.
 */
template <typename Op>
class ReplayRing
{
  public:
    explicit ReplayRing(size_t capacity) : capacity_(capacity)
    {
        events_.reserve(capacity_ + 1);
    }

    size_t capacity() const { return capacity_; }
    size_t size() const { return events_.size(); }
    bool empty() const { return events_.empty(); }

    /** Sorted insert (stable for equal cycles); false when full. */
    bool push(const ReplayEvent<Op> &ev)
    {
        if (events_.size() >= capacity_)
            return false;
        auto pos = std::upper_bound(
            events_.begin(), events_.end(), ev,
            [](const ReplayEvent<Op> &a, const ReplayEvent<Op> &b) {
                return a.at < b.at;
            });
        events_.insert(pos, ev);
        return true;
    }

    const ReplayEvent<Op> &front() const
    {
        panic_if(events_.empty(), "ReplayRing::front on empty ring");
        return events_.front();
    }

    void pop()
    {
        panic_if(events_.empty(), "ReplayRing::pop on empty ring");
        events_.erase(events_.begin());
    }

    /** Earliest predicted completion over queued CAS events. */
    Cycle minCompletion() const
    {
        Cycle best = kNoCycle;
        for (const auto &ev : events_)
            if (ev.cas && ev.completeAt < best)
                best = ev.completeAt;
        return best;
    }

    /** Earliest queued issue cycle (kNoCycle when empty). */
    Cycle minIssue() const
    {
        return events_.empty() ? kNoCycle : events_.front().at;
    }

    void clear() { events_.clear(); }

  private:
    size_t capacity_ = 0;
    std::vector<ReplayEvent<Op>> events_; ///< ascending by `at`
};

/**
 * Per-rank active-residency intervals for compiled energy accounting.
 *
 * Under FS closed-row policy a bank is open exactly over [actAt,
 * casAt) — the ACT opens the row at issue, the auto-precharge CAS
 * closes it at issue — so rank power state is derivable at decision
 * time, before any command touches the device. Schedulers add one
 * interval per planned op; the controller consumes the timeline in
 * contiguous ascending spans (one per executed cycle or fast-forward
 * jump) and splits each span into active vs precharge-standby cycles.
 *
 * Overlapping and adjacent intervals merge on insert (multiple banks
 * of one rank active at once must not double-count), so the per-rank
 * backlog stays at most a handful of entries; capacity overflow is a
 * hard error rather than a silent approximation.
 */
class CompiledEnergyAccountant
{
  public:
    /** Inactive until configured. */
    CompiledEnergyAccountant() = default;

    void configure(unsigned ranks, size_t capacityPerRank);
    void deactivate();
    bool active() const { return !lanes_.empty(); }

    /** Record rank active over [from, to); merges into the timeline. */
    void addInterval(unsigned rank, Cycle from, Cycle to);

    /**
     * Account the span [spanFrom, spanTo) against rank's timeline:
     * returns the number of active cycles inside the span and drops
     * intervals that end within it. Spans must arrive in ascending,
     * non-overlapping order (the simulator's executed-cycle / jump
     * sequence provides exactly that).
     */
    uint64_t activeCyclesIn(unsigned rank, Cycle spanFrom, Cycle spanTo);

    /** Drop all recorded intervals (checkpoint restore rebuilds). */
    void clearIntervals();

  private:
    struct Interval
    {
        Cycle from = 0;
        Cycle to = 0;
    };

    size_t capacityPerRank_ = 0;
    std::vector<std::vector<Interval>> lanes_; ///< ascending, disjoint
};

} // namespace memsec

#endif // MEMSEC_SIM_COMPILED_SCHEDULE_HH
