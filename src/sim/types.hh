/**
 * @file
 * Fundamental simulation types and clock-ratio constants.
 *
 * The master clock of the simulator is the DRAM bus clock (800 MHz for
 * DDR3-1600). CPU cores run at an integer multiple of it (4x = 3.2 GHz
 * in the paper's Table 1 configuration).
 */

#ifndef MEMSEC_SIM_TYPES_HH
#define MEMSEC_SIM_TYPES_HH

#include <cstdint>
#include <limits>

namespace memsec {

/** Absolute time in DRAM bus cycles. */
using Cycle = uint64_t;

/** Absolute time in CPU cycles (cpuClockMultiplier x DRAM cycles). */
using CpuCycle = uint64_t;

/** Sentinel for "no cycle / not yet scheduled". */
constexpr Cycle kNoCycle = std::numeric_limits<Cycle>::max();

/** Identifier of a security domain (== hardware thread in this model). */
using DomainId = uint32_t;

/** Physical byte address. */
using Addr = uint64_t;

/** Unique id assigned to each memory request. */
using ReqId = uint64_t;

/** CPU cycles per DRAM bus cycle for the default configuration. */
constexpr unsigned kDefaultCpuMult = 4;

/** Cache line size in bytes (64B throughout, as in the paper). */
constexpr unsigned kLineBytes = 64;

} // namespace memsec

#endif // MEMSEC_SIM_TYPES_HH
