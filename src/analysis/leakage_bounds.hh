/**
 * @file
 * Closed-form leakage-rate bounds for shared memory schedulers.
 *
 * The empirical meter (src/leakage, bench/fig_leakage) estimates how
 * many bits one concrete attack extracts; this module supplies the
 * matching analytical ceiling, so the benchmark can print a
 * bound-vs-measured column and gate on measured <= bound.
 *
 * Two results are encoded:
 *
 *  1. The Gong–Kiyavash rate for a shared two-user FCFS queue with a
 *     memoryless Bernoulli(lambda) co-runner: the attacker, by timing
 *     its own departures, learns the co-runner's arrival process
 *     exactly, i.e. H_b(lambda) bits per queue slot (maximised at 1
 *     bit/slot for lambda = 1/2). This is the unit anchor the tests
 *     pin the implementation to.
 *
 *  2. A window bound for deterministic work-conserving schedulers
 *     over this repo's queue model. Within an observation window of
 *     W cycles, co-runner demand can displace the observer's service
 *     by at most D_max cycles (capped by the window itself and by
 *     the backlog the co-runners can physically enqueue and have
 *     serviced). With cycle-accurate timing (resolution delta = 1
 *     cycle) the observer distinguishes at most 1 + D_max/delta
 *     interference states, so the channel carries at most
 *     log2(1 + D_max) bits/window — and never more than the secret
 *     entropy actually modulated per window (the on-off keying
 *     harness encodes 1 bit/window). A noninterference certificate
 *     (analysis/noninterference_certifier.hh) proves D_max = 0, so
 *     the bound collapses to exactly zero — the "prove the channel
 *     closed" half of the story.
 */

#ifndef MEMSEC_ANALYSIS_LEAKAGE_BOUNDS_HH
#define MEMSEC_ANALYSIS_LEAKAGE_BOUNDS_HH

#include <string>

#include "sim/types.hh"

namespace memsec::analysis {

/** Binary entropy H_b(p) in bits; 0 at p = 0 and p = 1. */
double binaryEntropy(double p);

/**
 * Gong–Kiyavash two-user FCFS leakage rate: an attacker sharing a
 * deterministic-service FCFS queue with a Bernoulli(lambda) source
 * learns H_b(lambda) bits per slot about the source's arrivals.
 */
double fcfsLeakageRateBitsPerSlot(double lambda);

/** The shared-queue system as the bound sees it. */
struct QueueModel
{
    unsigned numDomains = 8;
    /** Per-domain transaction-queue capacity (controller config). */
    size_t queueCapacity = 32;
    /** Worst-case service footprint of one transaction, in cycles
     *  (closed-row ACT..precharge; bounds how much backlog service
     *  can displace the observer inside one window). */
    Cycle serviceCycles = 43;
    /** Attacker observation window, in cycles (leak.window). */
    Cycle windowCycles = 1500;
    /** Secret entropy actually modulated per window by the harness
     *  (fig_leakage's on-off keying encodes 1 bit/window). */
    double secretBitsPerWindow = 1.0;
};

/** Closed-form ceiling for one (scheduler, window) point. */
struct LeakageBound
{
    /** A zero-leakage certificate backs this bound (bound == 0). */
    bool certified = false;
    /** Worst-case displacement of observer service, cycles/window. */
    Cycle maxDisplacement = 0;
    double bitsPerWindow = 0.0;
    double bitsPerSecond = 0.0;
    /** Human-readable derivation, for tables and reports. */
    std::string basis;
};

/**
 * Bound the leakage of a deterministic work-conserving scheduler
 * under `m`, or report the exact-zero bound when a noninterference
 * certificate exists. bitsPerSecond uses the leakage meter's bus
 * clock (leakage/channel.hh kBusHz).
 */
LeakageBound boundFor(const QueueModel &m, bool certified);

} // namespace memsec::analysis

#endif // MEMSEC_ANALYSIS_LEAKAGE_BOUNDS_HH
