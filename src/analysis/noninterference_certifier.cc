#include "analysis/noninterference_certifier.hh"

#include <algorithm>
#include <bit>
#include <sstream>

#include "mem/address_map.hh"
#include "mem/memory_controller.hh"
#include "sched/frfcfs.hh"
#include "sched/fs_reordered.hh"
#include "sched/tp.hh"
#include "util/logging.hh"
#include "util/sim_error.hh"

namespace memsec::analysis {

namespace {

/** Queue depth of the modelled controller (mirrors the test rigs). */
constexpr size_t kQueueCap = 16;

/** Probe-profile injection period; prime, so it never locks to a
 *  slot frame and the probes sample many frame phases. */
constexpr Cycle kProbePeriod = 97;

/** Records the observer's service timeline (the audit observable). */
struct Recorder : mem::MemClient
{
    std::vector<core::ServiceEvent> events;

    void
    memResponse(const mem::MemRequest &req) override
    {
        events.push_back(
            core::ServiceEvent{events.size(), req.arrival,
                               req.completed});
    }
};

/** Absorbs co-runner completions (their view is not the observable). */
struct Sink : mem::MemClient
{
    void memResponse(const mem::MemRequest &req) override { (void)req; }
};

mem::Partition
partitionFor(const CertifierConfig &cfg)
{
    switch (cfg.scheme) {
      case CertScheme::Fs:
        switch (cfg.fs.mode) {
          case sched::FsMode::RankPart: return mem::Partition::Rank;
          case sched::FsMode::BankPart: return mem::Partition::Bank;
          case sched::FsMode::NoPart:
          case sched::FsMode::TripleAlt: return mem::Partition::None;
        }
        break;
      case CertScheme::FsReordered: return mem::Partition::Bank;
      case CertScheme::Tp: return mem::Partition::Bank;
      case CertScheme::FrFcfs: return mem::Partition::None;
    }
    return mem::Partition::None;
}

struct BuiltSched
{
    std::unique_ptr<sched::Scheduler> s;
    /** Frame-equivalent used to size the horizon (FS frame, reordered
     *  interval, TP round; a fixed budget for schedulers without a
     *  natural period). */
    Cycle frameLen = 512;
};

BuiltSched
buildScheduler(const CertifierConfig &cfg, mem::MemoryController &mc)
{
    BuiltSched b;
    if (cfg.makeScheduler) {
        b.s = cfg.makeScheduler(mc);
        return b;
    }
    switch (cfg.scheme) {
      case CertScheme::Fs: {
        auto fs = std::make_unique<sched::FsScheduler>(mc, cfg.fs);
        b.frameLen = fs->frameLength();
        b.s = std::move(fs);
        break;
      }
      case CertScheme::FsReordered: {
        auto s = std::make_unique<sched::FsReorderedScheduler>(
            mc, sched::FsReorderedScheduler::Params{});
        b.frameLen = s->intervalLength();
        b.s = std::move(s);
        break;
      }
      case CertScheme::Tp: {
        b.frameLen =
            static_cast<Cycle>(cfg.tpTurnLength) * cfg.numDomains;
        b.s = std::make_unique<sched::TpScheduler>(
            mc, sched::TpScheduler::Params{cfg.tpTurnLength, 0});
        break;
      }
      case CertScheme::FrFcfs:
        b.s = std::make_unique<sched::FrFcfsScheduler>(mc);
        break;
    }
    return b;
}

std::string
domainSet(uint32_t assignment)
{
    std::ostringstream os;
    os << "{";
    bool first = true;
    for (unsigned d = 0; d < 32; ++d) {
        if (!(assignment & (1u << d)))
            continue;
        if (!first)
            os << ",";
        os << d;
        first = false;
    }
    os << "}";
    return os.str();
}

} // namespace

const char *
certSchemeName(CertScheme s)
{
    switch (s) {
      case CertScheme::Fs: return "fs";
      case CertScheme::FsReordered: return "fs-reordered";
      case CertScheme::Tp: return "tp";
      case CertScheme::FrFcfs: return "frfcfs";
    }
    panic("bad cert scheme {}", static_cast<int>(s));
}

const char *
observerProfileName(ObserverProfile p)
{
    switch (p) {
      case ObserverProfile::Probe: return "probe";
      case ObserverProfile::Backlogged: return "backlogged";
    }
    panic("bad observer profile {}", static_cast<int>(p));
}

const char *
scenarioName(unsigned scenario)
{
    switch (scenario) {
      case 0: return "sustained";
      case 1: return "phase-shifted";
      case 2: return "burst";
    }
    return "unknown";
}

std::string
CertWitness::toString() const
{
    std::ostringstream os;
    os << "co-runners " << domainSet(assignment) << " backlogged ("
       << scenarioName(scenario) << ") vs all idle, observer profile "
       << observerProfileName(profile) << ": ";
    if (errorMismatch) {
        os << "recoverable-error counts diverge after " << index
           << " identical observations";
        return os.str();
    }
    if (countMismatch) {
        os << "service timelines diverge in length at observation #"
           << index;
    } else {
        os << "observation #" << index << " expected (arrival "
           << expected.arrival << ", completed " << expected.completed
           << ") got (arrival " << observed.arrival << ", completed "
           << observed.completed << ")";
    }
    os << "; first divergence at cycle " << firstDivergenceCycle;
    return os.str();
}

std::string
CertifyResult::summary() const
{
    std::ostringstream os;
    os << scheduler << ": ";
    if (certified) {
        os << "CERTIFIED — observer timeline invariant over "
           << assignmentsChecked << " (profile, co-runner-subset) "
           << "points x " << kCertScenarios << " backlog phasings ("
           << runsChecked << " runs, horizon " << horizonCycles
           << " cycles, " << observations
           << " probe observations per run)";
    } else {
        os << "NOT CERTIFIED (witness after " << runsChecked
           << " runs): " << (hasWitness ? witness.toString() : "");
    }
    return os.str();
}

NoninterferenceCertifier::NoninterferenceCertifier(
    const CertifierConfig &cfg)
    : cfg_(cfg)
{
    fatal_if(cfg_.numDomains < 2, "certifier needs >= 2 domains");
    fatal_if(cfg_.numDomains > 16,
             "lattice of 2^{} co-runner subsets is unreasonable",
             cfg_.numDomains - 1);
    fatal_if(cfg_.observer >= cfg_.numDomains,
             "observer domain {} out of range", cfg_.observer);
}

Cycle
NoninterferenceCertifier::horizon() const
{
    mem::AddressMap map(dram::Geometry{}, partitionFor(cfg_),
                        mem::Interleave::ClosePage, cfg_.numDomains);
    mem::MemoryController::Params p;
    p.numDomains = cfg_.numDomains;
    p.queueCapacity = kQueueCap;
    mem::MemoryController mc("cert-scratch", p, map);
    const BuiltSched b = buildScheduler(cfg_, mc);

    Cycle h = static_cast<Cycle>(cfg_.horizonFrames) * b.frameLen;
    // Refresh epochs recur every tREFI; the horizon must contain
    // several whole epochs (including the rollover from one to the
    // next) or the blackout boundary states would go unexplored.
    if (cfg_.scheme == CertScheme::Fs && cfg_.fs.refresh)
        h = std::max<Cycle>(h, 2 * p.timing.refi + 4 * b.frameLen);
    return std::max<Cycle>(h, 2000);
}

NoninterferenceCertifier::Trace
NoninterferenceCertifier::run(ObserverProfile profile, unsigned scenario,
                              uint32_t assignment, Cycle horizon) const
{
    mem::AddressMap map(dram::Geometry{}, partitionFor(cfg_),
                        mem::Interleave::ClosePage, cfg_.numDomains);
    mem::MemoryController::Params p;
    p.numDomains = cfg_.numDomains;
    p.queueCapacity = kQueueCap;
    mem::MemoryController mc("cert", p, map);

    // Timing violations under an armed fault must surface as
    // recoverable errors in the trace, not kill the certifier.
    RunReport report;
    mc.setReport(&report);

    BuiltSched built = buildScheduler(cfg_, mc);
    const Cycle drainTail = 4 * built.frameLen + 2048;
    Trace t;
    t.schedName = built.s->name();
    mc.setScheduler(std::move(built.s));

    std::unique_ptr<fault::FaultInjector> inj;
    if (cfg_.fault.kind != fault::FaultKind::None) {
        inj = std::make_unique<fault::FaultInjector>(cfg_.fault);
        mc.attachFaultInjector(inj.get());
    }

    Recorder obs;
    Sink sink;
    for (DomainId d = 0; d < cfg_.numDomains; ++d) {
        mc.registerClient(d, d == cfg_.observer
                                 ? static_cast<mem::MemClient *>(&obs)
                                 : static_cast<mem::MemClient *>(&sink));
    }

    std::vector<uint64_t> seq(cfg_.numDomains, 0);
    auto inject = [&](DomainId d, mem::ReqType type, Cycle now) {
        auto r = std::make_unique<mem::MemRequest>();
        r->domain = d;
        r->type = type;
        r->addr = 0x4000 + seq[d]++ * (64ull * 8);
        r->client = d == cfg_.observer
                        ? static_cast<mem::MemClient *>(&obs)
                        : static_cast<mem::MemClient *>(&sink);
        mc.access(std::move(r), now);
    };

    // Backlog phasing: sustained pressure, a phase-shifted start, and
    // a mid-run burst whose end lets the queues drain back to empty —
    // together they cross every queue-occupancy boundary (empty ->
    // full -> empty) at several alignments against the slot frame.
    auto backlogOn = [&](Cycle now) {
        switch (scenario) {
          case 0: return true;
          case 1: return now >= horizon / 3;
          default: return now >= horizon / 4 && now < horizon / 2;
        }
    };

    const Cycle end = horizon + drainTail;
    for (Cycle now = 0; now < end; ++now) {
        if (now < horizon) {
            if (profile == ObserverProfile::Probe) {
                if (now % kProbePeriod == 0 &&
                    mc.canAccept(cfg_.observer, mem::ReqType::Read))
                    inject(cfg_.observer, mem::ReqType::Read, now);
            } else {
                while (mc.canAccept(cfg_.observer, mem::ReqType::Read))
                    inject(cfg_.observer, mem::ReqType::Read, now);
            }
            if (backlogOn(now)) {
                for (DomainId d = 0; d < cfg_.numDomains; ++d) {
                    if (d == cfg_.observer ||
                        !(assignment & (1u << d)))
                        continue;
                    for (;;) {
                        const mem::ReqType ty =
                            seq[d] % 3 == 2 ? mem::ReqType::Write
                                            : mem::ReqType::Read;
                        if (!mc.canAccept(d, ty))
                            break;
                        inject(d, ty, now);
                    }
                }
            }
        }
        mc.tick(now);
    }

    t.errors = report.total();
    t.events = std::move(obs.events);
    return t;
}

namespace {

/** Compare a run against the reference; fill the witness on the
 *  first divergence. */
bool
diverges(const std::vector<core::ServiceEvent> &ref, uint64_t refErrors,
         const std::vector<core::ServiceEvent> &got, uint64_t gotErrors,
         CertWitness &w)
{
    const size_t n = std::min(ref.size(), got.size());
    for (size_t i = 0; i < n; ++i) {
        if (ref[i] == got[i])
            continue;
        w.index = i;
        w.expected = ref[i];
        w.observed = got[i];
        w.firstDivergenceCycle =
            ref[i].arrival != got[i].arrival
                ? std::min(ref[i].arrival, got[i].arrival)
                : std::min(ref[i].completed, got[i].completed);
        return true;
    }
    if (ref.size() != got.size()) {
        w.index = n;
        w.countMismatch = true;
        const core::ServiceEvent &next =
            ref.size() > n ? ref[n] : got[n];
        if (ref.size() > n)
            w.expected = next;
        else
            w.observed = next;
        w.firstDivergenceCycle = next.arrival;
        return true;
    }
    if (refErrors != gotErrors) {
        w.index = n;
        w.errorMismatch = true;
        return true;
    }
    return false;
}

} // namespace

CertifyResult
NoninterferenceCertifier::certify() const
{
    CertifyResult res;
    res.numDomains = cfg_.numDomains;
    const Cycle h = horizon();
    res.horizonCycles = h;

    // Non-observer demand lattice, swept in (popcount, value) order
    // so the first witness found is a *minimal* distinguishing pair.
    std::vector<uint32_t> masks;
    for (uint32_t m = 1; m < (1u << cfg_.numDomains); ++m) {
        if (!(m & (1u << cfg_.observer)))
            masks.push_back(m);
    }
    std::stable_sort(masks.begin(), masks.end(),
                     [](uint32_t a, uint32_t b) {
                         const int pa = std::popcount(a);
                         const int pb = std::popcount(b);
                         return pa != pb ? pa < pb : a < b;
                     });

    for (const ObserverProfile profile :
         {ObserverProfile::Probe, ObserverProfile::Backlogged}) {
        const Trace ref = run(profile, 0, 0, h);
        ++res.runsChecked;
        if (profile == ObserverProfile::Probe) {
            res.observations = ref.events.size();
            res.scheduler = ref.schedName;
        }
        for (const uint32_t m : masks) {
            ++res.assignmentsChecked;
            for (unsigned sc = 0; sc < kCertScenarios; ++sc) {
                const Trace t = run(profile, sc, m, h);
                ++res.runsChecked;
                if (diverges(ref.events, ref.errors, t.events,
                             t.errors, res.witness)) {
                    res.witness.assignment = m;
                    res.witness.scenario = sc;
                    res.witness.profile = profile;
                    res.hasWitness = true;
                    return res;
                }
            }
        }
    }
    res.certified = true;
    return res;
}

std::vector<PaperCertPoint>
paperCertPoints(unsigned numDomains)
{
    auto mk = [&](sched::FsMode mode, core::PeriodicRef ref) {
        CertifierConfig c;
        c.scheme = CertScheme::Fs;
        c.fs.mode = mode;
        c.fs.pinRef = true;
        c.fs.ref = ref;
        c.numDomains = numDomains;
        return c;
    };
    using sched::FsMode;
    using core::PeriodicRef;
    return {
        {"fs data/rank", 7,
         mk(FsMode::RankPart, PeriodicRef::Data)},
        {"fs ras/rank", 12, mk(FsMode::RankPart, PeriodicRef::Ras)},
        {"fs ras/bank", 15, mk(FsMode::BankPart, PeriodicRef::Ras)},
        {"fs data/bank", 21, mk(FsMode::BankPart, PeriodicRef::Data)},
        {"fs ras/none", 43, mk(FsMode::NoPart, PeriodicRef::Ras)},
    };
}

} // namespace memsec::analysis
