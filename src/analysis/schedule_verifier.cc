#include "analysis/schedule_verifier.hh"

#include <algorithm>
#include <numeric>
#include <sstream>

#include "util/logging.hh"

namespace memsec::analysis {

using dram::CmdEdge;
using dram::PairRule;
using dram::RuleId;
using dram::RuleScope;

std::string
ConflictReport::toString() const
{
    // One self-contained sentence per side: slot, owning domain, type,
    // the rule-anchored command edge, the absolute unrolled cycle and
    // its frame-relative offset — enough to find the collision in the
    // template without re-running the verifier.
    const auto side = [](std::ostringstream &os, uint64_t slot,
                         DomainId domain, bool write, dram::CmdEdge edge,
                         Cycle cycle, Cycle frameOffset) {
        os << "slot " << slot << " (domain ";
        if (domain == kNoDomain)
            os << "-";
        else
            os << domain;
        os << ", " << (write ? "W" : "R") << " "
           << dram::cmdEdgeName(edge) << ", cycle " << cycle
           << " = frame offset " << frameOffset << ")";
    };
    std::ostringstream os;
    os << dram::ruleName(rule) << " violated between ";
    side(os, earlierSlot, earlierDomain, earlierWrite, fromEdge,
         earlierCycle, earlierFrameOffset);
    if (againstRefreshEpoch) {
        os << " and the refresh epoch at cycle " << laterCycle;
    } else {
        os << " and ";
        side(os, laterSlot, laterDomain, laterWrite, toEdge, laterCycle,
             laterFrameOffset);
    }
    os << ": gap " << gap << " < " << need;
    return os.str();
}

std::string
VerifyResult::summary() const
{
    std::ostringstream os;
    os << (ok ? "conflict-free" : "CONFLICT") << " at l=" << l
       << " over hyperperiod " << hyperperiod << " (" << slotsChecked
       << " slots, " << pairsChecked << " pairs";
    if (refreshEpochsChecked)
        os << ", " << refreshEpochsChecked << " refresh epochs";
    os << ")";
    if (hasConflict)
        os << ": " << conflict.toString();
    return os.str();
}

ScheduleVerifier::ScheduleVerifier(const dram::TimingParams &tp,
                                   const VerifierConfig &cfg)
    : tp_(tp), rules_(tp), cfg_(cfg)
{
    tp_.validate();
    fatal_if(cfg_.numDomains == 0, "verifier needs >= 1 domain");
    fatal_if(cfg_.numRanks == 0, "verifier needs >= 1 rank");
    fatal_if(cfg_.bankGroups == 0, "bank group count must be >= 1");

    // Offsets are definitional (the paper's Figure 1 geometry), so
    // they are shared with the solver; all *checking* below is an
    // independent implementation.
    off_ = core::PipelineSolver(tp_).offsets(cfg_.ref);
    const int minOff = std::min({off_.actRead, off_.actWrite,
                                 off_.casRead, off_.casWrite, 0});
    lead_ = static_cast<Cycle>(-minOff);

    // Mirror FsScheduler's slot table: one slot per domain round-robin
    // plus a phantom pad slot when group rotation would not visit
    // every group for every domain.
    for (DomainId d = 0; d < cfg_.numDomains; ++d)
        slotTable_.push_back(d);
    if (cfg_.bankGroups > 1 && slotTable_.size() % cfg_.bankGroups == 0)
        slotTable_.push_back(kPhantom);
    slotsPerFrame_ = static_cast<unsigned>(slotTable_.size());

    if (cfg_.refresh) {
        refreshMargin_ = tp_.actToActWrA() + lead_;
        refreshPause_ = cfg_.numRanks + tp_.rfc;
    }
}

DomainId
ScheduleVerifier::domainOf(uint64_t slot) const
{
    return slotTable_[slot % slotsPerFrame_];
}

Cycle
ScheduleVerifier::refCycleOf(uint64_t slot, unsigned l) const
{
    return slot * l + lead_;
}

Cycle
ScheduleVerifier::actOf(uint64_t slot, unsigned l, bool write) const
{
    return refCycleOf(slot, l) + (write ? off_.actWrite : off_.actRead);
}

Cycle
ScheduleVerifier::casOf(uint64_t slot, unsigned l, bool write) const
{
    return refCycleOf(slot, l) + (write ? off_.casWrite : off_.casRead);
}

Cycle
ScheduleVerifier::dataStartOf(uint64_t slot, unsigned l, bool write) const
{
    return refCycleOf(slot, l) + (write ? off_.dataWrite : off_.dataRead);
}

Cycle
ScheduleVerifier::armedEpoch(Cycle decisionCycle) const
{
    // FsScheduler arms the first epoch at tREFI and advances only
    // once the current epoch's pause has elapsed: the armed epoch at
    // cycle t is the smallest k*tREFI with t < k*tREFI + pause.
    const Cycle refi = tp_.refi;
    if (decisionCycle < refreshPause_)
        return refi;
    return ((decisionCycle - refreshPause_) / refi + 1) * refi;
}

bool
ScheduleVerifier::skipped(uint64_t slot, unsigned l) const
{
    if (domainOf(slot) == kPhantom)
        return true;
    if (!cfg_.refresh)
        return false;
    const Cycle decision = slot * l;
    const Cycle ref = refCycleOf(slot, l);
    return ref + refreshMargin_ > armedEpoch(decision);
}

bool
ScheduleVerifier::canShareRank(uint64_t a, uint64_t b) const
{
    (void)a;
    (void)b;
    if (cfg_.bankGroups > 1)
        return true; // triple alternation runs unpartitioned
    return cfg_.level != core::PartitionLevel::Rank;
}

bool
ScheduleVerifier::canShareBank(uint64_t a, uint64_t b) const
{
    if (cfg_.bankGroups > 1)
        return a % cfg_.bankGroups == b % cfg_.bankGroups;
    return cfg_.level == core::PartitionLevel::None;
}

Cycle
ScheduleVerifier::hyperperiod(unsigned l) const
{
    fatal_if(l == 0, "slot spacing must be positive");
    const uint64_t frame = static_cast<uint64_t>(slotsPerFrame_) * l;
    uint64_t h = std::lcm(frame, static_cast<uint64_t>(2) * l);
    if (cfg_.refresh)
        h = std::lcm(h, tp_.refi);
    fatal_if(h / l > 20'000'000,
             "hyperperiod {} is unreasonably large for l={}", h, l);
    return h;
}

bool
ScheduleVerifier::checkPair(uint64_t si, uint64_t sj, bool wi, bool wj,
                            unsigned l, ConflictReport *out) const
{
    const long actI = static_cast<long>(actOf(si, l, wi));
    const long casI = static_cast<long>(casOf(si, l, wi));
    const long actJ = static_cast<long>(actOf(sj, l, wj));
    const long casJ = static_cast<long>(casOf(sj, l, wj));

    const Cycle frame = static_cast<Cycle>(slotsPerFrame_) * l;
    auto conflict = [&](RuleId id, CmdEdge from, CmdEdge to, long cycI,
                        long cycJ, long gap, long need) {
        if (out) {
            out->rule = id;
            out->earlierSlot = si;
            out->laterSlot = sj;
            out->earlierWrite = wi;
            out->laterWrite = wj;
            out->earlierCycle = static_cast<Cycle>(cycI);
            out->laterCycle = static_cast<Cycle>(cycJ);
            out->gap = gap;
            out->need = need;
            out->earlierDomain = domainOf(si);
            out->laterDomain = domainOf(sj);
            out->fromEdge = from;
            out->toEdge = to;
            out->earlierFrameOffset = static_cast<Cycle>(cycI) % frame;
            out->laterFrameOffset = static_cast<Cycle>(cycJ) % frame;
            out->againstRefreshEpoch = false;
        }
        return false;
    };

    // Shared command bus: one command per cycle, exact collision.
    for (const auto &[ei, ci] :
         {std::pair{CmdEdge::Act, actI}, std::pair{CmdEdge::Cas, casI}}) {
        for (const auto &[ej, cj] :
             {std::pair{CmdEdge::Act, actJ},
              std::pair{CmdEdge::Cas, casJ}}) {
            if (ci == cj)
                return conflict(RuleId::CmdBus, ei, ej, ci, cj, 0, 1);
        }
    }

    for (const PairRule &r : rules_.pairRules()) {
        if (r.actWindow > 1)
            continue; // tFAW: sliding-window check, not pairwise
        switch (r.scope) {
          case RuleScope::AnyPair:
            break;
          case RuleScope::SameRank:
            if (!canShareRank(si, sj))
                continue;
            break;
          case RuleScope::SameBank:
            if (!canShareBank(si, sj))
                continue;
            break;
        }
        if (!dram::typeMatches(r.earlier, wi) ||
            !dram::typeMatches(r.later, wj))
            continue;
        auto edge = [&](uint64_t s, bool w, CmdEdge e) {
            switch (e) {
              case CmdEdge::Act: return static_cast<long>(actOf(s, l, w));
              case CmdEdge::Cas: return static_cast<long>(casOf(s, l, w));
              case CmdEdge::Data:
                return static_cast<long>(dataStartOf(s, l, w));
            }
            panic("bad command edge");
        };
        const long from = edge(si, wi, r.from);
        const long to = edge(sj, wj, r.to);
        if (to - from < r.minGap)
            return conflict(r.id, r.from, r.to, from, to, to - from,
                            r.minGap);
    }
    return true;
}

bool
ScheduleVerifier::checkFawWindows(unsigned l, uint64_t slots,
                                  ConflictReport *out) const
{
    const long faw = rules_.gap(RuleId::Faw);

    // Worst-case same-rank ACT sequences. Under rank partitioning a
    // rank's ACTs come from one domain's slots; otherwise every slot
    // may land in a single rank. The window rule binds a sequence
    // element and the element four positions later.
    std::vector<std::vector<uint64_t>> seqs;
    const bool perDomain =
        cfg_.level == core::PartitionLevel::Rank && cfg_.bankGroups == 1;
    if (perDomain)
        seqs.resize(cfg_.numDomains);
    else
        seqs.resize(1);

    // Extend past the hyperperiod so windows that straddle the wrap
    // are also checked (the schedule is periodic).
    const uint64_t tail = 5ull * slotsPerFrame_ + 8;
    for (uint64_t s = 0; s < slots + tail; ++s) {
        if (skipped(s, l))
            continue;
        const DomainId d = domainOf(s);
        seqs[perDomain ? d : 0].push_back(s);
    }

    for (const auto &seq : seqs) {
        for (size_t k = 0; k + 4 < seq.size(); ++k) {
            const uint64_t si = seq[k];
            const uint64_t sj = seq[k + 4];
            if (si >= slots)
                break; // window starts beyond one hyperperiod
            for (bool wi : {false, true}) {
                for (bool wj : {false, true}) {
                    const long from = static_cast<long>(actOf(si, l, wi));
                    const long to = static_cast<long>(actOf(sj, l, wj));
                    if (to - from < faw) {
                        if (out) {
                            const Cycle frame =
                                static_cast<Cycle>(slotsPerFrame_) * l;
                            out->rule = RuleId::Faw;
                            out->earlierSlot = si;
                            out->laterSlot = sj;
                            out->earlierWrite = wi;
                            out->laterWrite = wj;
                            out->earlierCycle = static_cast<Cycle>(from);
                            out->laterCycle = static_cast<Cycle>(to);
                            out->gap = to - from;
                            out->need = faw;
                            out->earlierDomain = domainOf(si);
                            out->laterDomain = domainOf(sj);
                            out->fromEdge = CmdEdge::Act;
                            out->toEdge = CmdEdge::Act;
                            out->earlierFrameOffset =
                                static_cast<Cycle>(from) % frame;
                            out->laterFrameOffset =
                                static_cast<Cycle>(to) % frame;
                            out->againstRefreshEpoch = false;
                        }
                        return false;
                    }
                }
            }
        }
    }
    return true;
}

bool
ScheduleVerifier::checkRefresh(unsigned l, uint64_t slots,
                               ConflictReport *out,
                               uint64_t *epochs) const
{
    const Cycle refi = tp_.refi;
    const Cycle frame = static_cast<Cycle>(slotsPerFrame_) * l;

    auto conflict = [&](RuleId id, uint64_t slot, bool w, Cycle slotCyc,
                        Cycle epochCyc, long gap, long need) {
        if (out) {
            out->rule = id;
            out->earlierSlot = slot;
            out->laterSlot = slot;
            out->earlierWrite = w;
            out->laterWrite = w;
            out->earlierCycle = slotCyc;
            out->laterCycle = epochCyc;
            out->gap = gap;
            out->need = need;
            out->earlierDomain = domainOf(slot);
            out->laterDomain = ConflictReport::kNoDomain;
            // The epoch conflicts anchor the slot's nearest command
            // edge; ACT is the earliest and is what the Rp/Rfc gaps
            // are measured against.
            out->fromEdge = CmdEdge::Act;
            out->toEdge = CmdEdge::Act;
            out->earlierFrameOffset = slotCyc % frame;
            out->laterFrameOffset = epochCyc % frame;
            out->againstRefreshEpoch = true;
        }
        return false;
    };

    // The epoch must fit: quiet-down margin + REF burst + tRFC must
    // leave at least one whole frame of useful slots per interval,
    // mirroring the constructor check in FsScheduler.
    if (refi < refreshMargin_ + refreshPause_ + frame) {
        return conflict(RuleId::Refresh, 0, false, 0, refi,
                        static_cast<long>(refi),
                        static_cast<long>(refreshMargin_ +
                                          refreshPause_ + frame));
    }

    const Cycle h = hyperperiod(l);
    const long reuseRd = rules_.gap(RuleId::ActToActRdA);
    const long reuseWr = rules_.gap(RuleId::ActToActWrA);

    for (Cycle e = refi; e <= h; e += refi) {
        if (epochs)
            ++(*epochs);
        // Slots whose footprint could reach the window [e, e+pause).
        const uint64_t lo =
            e > refreshMargin_ + frame
                ? (e - refreshMargin_ - frame) / l
                : 0;
        const uint64_t hi =
            std::min<uint64_t>(slots + slotsPerFrame_,
                               (e + refreshPause_ + frame) / l + 2);
        for (uint64_t s = lo; s < hi; ++s) {
            if (skipped(s, l))
                continue;
            for (bool w : {false, true}) {
                const Cycle act = actOf(s, l, w);
                const Cycle cas = casOf(s, l, w);
                const Cycle dat = dataStartOf(s, l, w);
                // No command may land while the device refreshes
                // (command bus is driving REFs; ranks are busy tRFC).
                for (Cycle c : {act, cas}) {
                    if (c >= e && c < e + refreshPause_) {
                        return conflict(RuleId::Rfc, s, w, c, e,
                                        static_cast<long>(c - e),
                                        static_cast<long>(refreshPause_));
                    }
                }
                // Data bursts must clear the window too.
                if (dat + tp_.burst > e && dat < e + refreshPause_) {
                    return conflict(RuleId::DataBus, s, w, dat, e,
                                    static_cast<long>(dat) -
                                        static_cast<long>(e),
                                    static_cast<long>(refreshPause_));
                }
                // REF requires every bank precharged: a slot issued
                // before the epoch must have completed its
                // auto-precharge by the REF cycle.
                if (act < e) {
                    const long reuse = w ? reuseWr : reuseRd;
                    const long quietAt = static_cast<long>(act) + reuse;
                    if (quietAt > static_cast<long>(e)) {
                        return conflict(RuleId::Rp, s, w, act, e,
                                        static_cast<long>(e - act),
                                        reuse);
                    }
                }
            }
        }
    }
    return true;
}

VerifyResult
ScheduleVerifier::verify(unsigned l) const
{
    VerifyResult res;
    res.l = l;
    if (l == 0)
        return res;

    res.hyperperiod = hyperperiod(l);
    const uint64_t slots = res.hyperperiod / l;

    // Constraints only bind while the slot distance is within the
    // largest rule constant plus the command-offset span.
    const long span =
        std::max({std::abs(off_.actRead), std::abs(off_.actWrite),
                  std::abs(off_.casRead), std::abs(off_.casWrite),
                  std::abs(off_.dataRead), std::abs(off_.dataWrite)});
    long maxConst = 1;
    for (const PairRule &r : rules_.pairRules())
        maxConst = std::max(maxConst, r.minGap);
    const uint64_t dMax =
        static_cast<uint64_t>((maxConst + 2 * span) / l + 2);

    for (uint64_t i = 0; i < slots; ++i) {
        if (skipped(i, l))
            continue;
        ++res.slotsChecked;
        for (uint64_t d = 1; d <= dMax; ++d) {
            const uint64_t j = i + d;
            if (skipped(j, l))
                continue;
            ++res.pairsChecked;
            for (bool wi : {false, true}) {
                for (bool wj : {false, true}) {
                    if (!checkPair(i, j, wi, wj, l, &res.conflict)) {
                        res.hasConflict = true;
                        return res;
                    }
                }
            }
        }
    }

    if (!checkFawWindows(l, slots, &res.conflict)) {
        res.hasConflict = true;
        return res;
    }
    if (cfg_.refresh &&
        !checkRefresh(l, slots, &res.conflict,
                      &res.refreshEpochsChecked)) {
        res.hasConflict = true;
        return res;
    }

    res.ok = true;
    return res;
}

CompiledSchedule
ScheduleVerifier::compile(unsigned l) const
{
    CompiledSchedule cs;
    cs.l = l;
    cs.lead = lead_;

    if (cfg_.refresh) {
        cs.note = "refresh blackouts depend on the absolute slot index "
                  "and are not frame-periodic";
        return cs;
    }

    const VerifyResult res = verify(l);
    cs.hyperperiod = res.hyperperiod;
    cs.slotsChecked = res.slotsChecked;
    cs.pairsChecked = res.pairsChecked;
    if (!res.ok) {
        cs.note = res.summary();
        return cs;
    }

    for (uint64_t s = 0; s < slotsPerFrame_; ++s) {
        CompiledSlot slot;
        const DomainId d = domainOf(s);
        slot.phantom = d == kPhantom;
        slot.domain = slot.phantom ? 0 : d;
        slot.group = static_cast<unsigned>(s % cfg_.bankGroups);

        // All deltas are relative to the slot's decision cycle s*l;
        // lead_ keeps them non-negative by construction.
        const Cycle decision = s * l;
        slot.actRead = actOf(s, l, false) - decision;
        slot.casRead = casOf(s, l, false) - decision;
        slot.dataRead = dataStartOf(s, l, false) - decision;
        slot.actWrite = actOf(s, l, true) - decision;
        slot.casWrite = casOf(s, l, true) - decision;
        slot.dataWrite = dataStartOf(s, l, true) - decision;

        // Completion prediction leans on data = cas + CL/CWL; if the
        // offset geometry ever diverged from that identity the replay
        // path would mispredict silently, so pin it here.
        fatal_if(slot.dataRead != slot.casRead + tp_.cas,
                 "compiled slot {}: dataRead != casRead + CL", s);
        fatal_if(slot.dataWrite != slot.casWrite + tp_.cwd,
                 "compiled slot {}: dataWrite != casWrite + CWL", s);
        slot.completeRead = slot.dataRead + tp_.burst;
        slot.completeWrite = slot.dataWrite + tp_.burst;

        cs.slots.push_back(slot);
    }

    cs.valid = true;
    return cs;
}

unsigned
ScheduleVerifier::minimalFeasible(unsigned maxL) const
{
    for (unsigned l = 1; l <= maxL; ++l) {
        if (verify(l).ok)
            return l;
    }
    return 0;
}

bool
ScheduleVerifier::domainReuseHazard(unsigned l) const
{
    // A domain's consecutive slots are one frame apart at the
    // reference point; command skew between a write and a read slot
    // shrinks the worst-case ACT-to-ACT gap.
    const long skew = std::abs(static_cast<long>(off_.actRead) -
                               static_cast<long>(off_.actWrite));
    const long worstGap =
        static_cast<long>(cfg_.numDomains) * l - skew;
    return worstGap < rules_.gap(RuleId::ActToActWrA);
}

} // namespace memsec::analysis
