/**
 * @file
 * Static model-checker for FS slot schedules.
 *
 * The paper's security argument is *static*: the derived slot spacing
 * l makes the command stream conflict-free by construction, before a
 * single cycle is simulated. The dynamic TimingChecker can only
 * confirm this for the transactions one run happens to issue; this
 * verifier proves it for *every* run by unrolling the fixed per-cycle
 * command template over one full hyperperiod — the lcm of the slot
 * frame (Q = slots x l), the densest read/write alternation period
 * (2l), and, when refresh epochs are modelled, the refresh interval
 * tREFI — and exhaustively checking every pair of in-flight
 * transactions under every read/write type combination against the
 * shared timing-rule table (dram/timing_rules.hh).
 *
 * The verifier is deliberately a second, independent implementation
 * of the constraints the PipelineSolver encodes as inequalities: the
 * solver reasons over abstract slot distances, the verifier over
 * concrete unrolled cycles. Tests cross-validate the two — the
 * paper's Table gaps (l = 7, 12, 15, 21, 43) must fall out of both,
 * with verify(l-1) producing a concrete conflicting command pair.
 *
 * Scope note: under rank partitioning, a domain's *own* consecutive
 * slots (one frame apart) may reuse a bank; like the solver, the
 * verifier treats that as dynamically guarded (the scheduler's
 * bankFree/rankFree hazard deferrals, Section 7) and exposes the
 * boundary separately via domainReuseHazard().
 */

#ifndef MEMSEC_ANALYSIS_SCHEDULE_VERIFIER_HH
#define MEMSEC_ANALYSIS_SCHEDULE_VERIFIER_HH

#include <string>
#include <vector>

#include "core/pipeline_solver.hh"
#include "dram/timing_rules.hh"
#include "sim/compiled_schedule.hh"
#include "sim/types.hh"

namespace memsec::analysis {

/** What to verify: one FS design point plus the modelled context. */
struct VerifierConfig
{
    core::PeriodicRef ref = core::PeriodicRef::Data;
    core::PartitionLevel level = core::PartitionLevel::Rank;
    /** Security domains = slots per frame (before group padding). */
    unsigned numDomains = 8;
    /** Ranks refreshed back-to-back in one epoch (refresh model). */
    unsigned numRanks = 8;
    /**
     * Bank-group alternation factor (Section 4.3's triple
     * alternation). 1 = plain partitioning; >1 = banks are
     * unpartitioned and slot s may only touch banks with
     * bank % groups == s % groups, so only same-group slots can
     * collide on a bank. Mirrors FsScheduler's TripleAlt mode,
     * including the phantom pad slot when the frame length would
     * otherwise be a multiple of the group count.
     */
    unsigned bankGroups = 1;
    /** Model the deterministic refresh-epoch blackout (fs.cc). */
    bool refresh = false;
};

/** A concrete violated constraint between two unrolled slots. */
struct ConflictReport
{
    /** Domain field value for a phantom pad slot / the refresh epoch. */
    static constexpr DomainId kNoDomain = ~0u;

    dram::RuleId rule = dram::RuleId::CmdBus;
    uint64_t earlierSlot = 0;
    uint64_t laterSlot = 0;
    bool earlierWrite = false;
    bool laterWrite = false;
    /** Offending command cycles in the unrolled schedule. */
    Cycle earlierCycle = 0;
    Cycle laterCycle = 0;
    long gap = 0;  ///< separation the schedule achieves
    long need = 0; ///< separation the rule demands

    /** Domains owning the two slots (kNoDomain: phantom / epoch). */
    DomainId earlierDomain = kNoDomain;
    DomainId laterDomain = kNoDomain;
    /** Command edges the violated rule anchors (ACT / CAS / DATA). */
    dram::CmdEdge fromEdge = dram::CmdEdge::Act;
    dram::CmdEdge toEdge = dram::CmdEdge::Act;
    /** Offending cycles reduced modulo the slot frame (Q = slots*l):
     *  where inside the repeating template the pair collides. */
    Cycle earlierFrameOffset = 0;
    Cycle laterFrameOffset = 0;
    /** The "later" side is a refresh epoch, not a slot. */
    bool againstRefreshEpoch = false;

    std::string toString() const;
};

/** Outcome of model-checking one slot spacing. */
struct VerifyResult
{
    bool ok = false;
    unsigned l = 0;
    Cycle hyperperiod = 0;
    uint64_t slotsChecked = 0;
    uint64_t pairsChecked = 0;
    uint64_t refreshEpochsChecked = 0;
    bool hasConflict = false;
    ConflictReport conflict; ///< first conflict found (when !ok)

    std::string summary() const;
};

/** Exhaustive hyperperiod verifier for one (device, config) pair. */
class ScheduleVerifier
{
  public:
    ScheduleVerifier(const dram::TimingParams &tp,
                     const VerifierConfig &cfg);

    /**
     * lcm(slot frame, r/w turnaround period, refresh interval when
     * modelled) — the period after which the command template and
     * every modelled context repeat exactly.
     */
    Cycle hyperperiod(unsigned l) const;

    /** Model-check slot spacing l over one hyperperiod. */
    VerifyResult verify(unsigned l) const;

    /**
     * Verify spacing l, then flatten one frame of the proven template
     * into a CompiledSchedule for table-driven replay (docs/PERF.md).
     * The result carries the verification provenance; it is marked
     * invalid (with a reason) when verification fails or when the
     * config models refresh epochs, whose blackouts depend on the
     * absolute slot index and therefore do not repeat per frame.
     */
    CompiledSchedule compile(unsigned l) const;

    /** Smallest l in [1, maxL] with verify(l).ok; 0 if none. */
    unsigned minimalFeasible(unsigned maxL = 512) const;

    /**
     * True if a single domain's consecutive slots (one frame apart at
     * spacing l) can violate the same-bank reuse bound — the hazard
     * the scheduler must guard dynamically (Section 7). Cross-checks
     * PipelineSolver::rankPartSameBankHazard.
     */
    bool domainReuseHazard(unsigned l) const;

    const VerifierConfig &config() const { return cfg_; }
    const dram::TimingRuleTable &rules() const { return rules_; }

  private:
    /** Domain owning slot s, or kPhantom for a group pad slot. */
    static constexpr DomainId kPhantom = ~0u;
    DomainId domainOf(uint64_t slot) const;

    /** True if the slot issues no commands (phantom / blackout). */
    bool skipped(uint64_t slot, unsigned l) const;

    bool canShareRank(uint64_t a, uint64_t b) const;
    bool canShareBank(uint64_t a, uint64_t b) const;

    /** Check one ordered pair under one type combo; false = conflict. */
    bool checkPair(uint64_t si, uint64_t sj, bool wi, bool wj,
                   unsigned l, ConflictReport *out) const;

    /** tFAW sliding-window check over worst-case same-rank ACTs. */
    bool checkFawWindows(unsigned l, uint64_t slots,
                         ConflictReport *out) const;

    /** Refresh-epoch blackout and retention checks. */
    bool checkRefresh(unsigned l, uint64_t slots, ConflictReport *out,
                      uint64_t *epochs) const;

    Cycle refCycleOf(uint64_t slot, unsigned l) const;
    Cycle actOf(uint64_t slot, unsigned l, bool write) const;
    Cycle casOf(uint64_t slot, unsigned l, bool write) const;
    Cycle dataStartOf(uint64_t slot, unsigned l, bool write) const;

    /** Armed refresh epoch at the slot's decision cycle. */
    Cycle armedEpoch(Cycle decisionCycle) const;

    dram::TimingParams tp_;
    dram::TimingRuleTable rules_;
    VerifierConfig cfg_;
    core::SlotOffsets off_;
    Cycle lead_ = 0;
    std::vector<DomainId> slotTable_;
    unsigned slotsPerFrame_ = 0;
    Cycle refreshMargin_ = 0;
    Cycle refreshPause_ = 0;
};

} // namespace memsec::analysis

#endif // MEMSEC_ANALYSIS_SCHEDULE_VERIFIER_HH
