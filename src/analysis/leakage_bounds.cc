#include "analysis/leakage_bounds.hh"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "leakage/channel.hh"
#include "util/logging.hh"

namespace memsec::analysis {

double
binaryEntropy(double p)
{
    fatal_if(p < 0.0 || p > 1.0, "H_b needs p in [0,1], got {}", p);
    if (p <= 0.0 || p >= 1.0)
        return 0.0;
    return -p * std::log2(p) - (1.0 - p) * std::log2(1.0 - p);
}

double
fcfsLeakageRateBitsPerSlot(double lambda)
{
    // Gong–Kiyavash: with deterministic unit service, the attacker's
    // inter-departure times reveal the co-runner's Bernoulli arrival
    // sequence exactly, so the rate equals the source entropy.
    return binaryEntropy(lambda);
}

LeakageBound
boundFor(const QueueModel &m, bool certified)
{
    LeakageBound b;
    b.certified = certified;

    if (certified) {
        b.maxDisplacement = 0;
        b.bitsPerWindow = 0.0;
        b.bitsPerSecond = 0.0;
        b.basis = "noninterference certificate: observer timeline "
                  "invariant over the co-runner demand lattice, so "
                  "D_max = 0 and the bound is exactly zero";
        return b;
    }

    fatal_if(m.windowCycles == 0, "bound needs a non-empty window");

    // Work conservation caps displacement three ways: the window
    // itself (a probe cannot be displaced past the window), and the
    // backlog the co-runners can have serviced ahead of the observer
    // (their queued transactions times the worst-case footprint).
    const uint64_t backlogService =
        static_cast<uint64_t>(m.numDomains > 0 ? m.numDomains - 1 : 0) *
        m.queueCapacity * m.serviceCycles;
    b.maxDisplacement = std::min<uint64_t>(m.windowCycles, backlogService);

    const double stateBits =
        std::log2(1.0 + static_cast<double>(b.maxDisplacement));
    b.bitsPerWindow = std::min(m.secretBitsPerWindow, stateBits);
    b.bitsPerSecond = b.bitsPerWindow * leakage::kBusHz /
                      static_cast<double>(m.windowCycles);

    std::ostringstream os;
    os << "work-conserving bound: D_max = min(window " << m.windowCycles
       << ", backlog " << backlogService << ") = " << b.maxDisplacement
       << " cycles -> min(secret " << m.secretBitsPerWindow
       << " bit, log2(1+D_max) = " << stateBits << " bits) = "
       << b.bitsPerWindow << " bits/window";
    b.basis = os.str();
    return b;
}

} // namespace memsec::analysis
