/**
 * @file
 * Self-composition noninterference certifier.
 *
 * The ScheduleVerifier proves the FS command *template* conflict-free;
 * the empirical leakage meter (bench/fig_leakage) measures how many
 * bits actually cross; this certifier closes the gap between the two:
 * it proves, by exhaustive self-composition over a bounded input
 * lattice, that the *implemented* scheduler's observer-visible
 * behaviour is invariant in everything the other domains do.
 *
 * Self-composition: fix one observer domain and one deterministic
 * observer workload, then drive a fresh controller + scheduler + DRAM
 * instance once per point of the non-observer demand lattice — every
 * subset of co-runner domains backlogged, under several backlog
 * phasings (sustained from cycle 0, phase-shifted start, mid-run
 * burst that empties the queues again) — and require the observer's
 * service timeline (the same arrival/completion observable the
 * noninterference audit layer compares) to be byte-identical to the
 * all-idle reference run. Refresh-epoch boundaries are covered by
 * sizing the horizon past multiple tREFI epochs when refresh is
 * modelled; queue-occupancy boundaries by the Backlogged observer
 * profile, which keeps the observer's own queue saturated so
 * admission (canAccept) timing is part of the observable.
 *
 * The contract mirrors ScheduleVerifier::verify: either a certificate
 * (every lattice point matched the reference) or a concrete witness —
 * the minimal-popcount co-runner set, scenario and observer profile
 * that diverged, with the first divergent observation and cycle.
 * FR-FCFS yields a witness within a handful of slots; the FS family
 * and TP must certify at every paper design point.
 */

#ifndef MEMSEC_ANALYSIS_NONINTERFERENCE_CERTIFIER_HH
#define MEMSEC_ANALYSIS_NONINTERFERENCE_CERTIFIER_HH

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/noninterference.hh"
#include "fault/fault_injector.hh"
#include "sched/fs.hh"
#include "sim/types.hh"

namespace memsec::mem {
class MemoryController;
}

namespace memsec::analysis {

/** Scheduling scheme the certifier instantiates. */
enum class CertScheme : uint8_t { Fs, FsReordered, Tp, FrFcfs };

const char *certSchemeName(CertScheme s);

/**
 * How the observer drives its own demand. Probe: one open-loop read
 * every fixed period (latency observable). Backlogged: the queue is
 * topped up whenever the controller accepts (admission + throughput
 * observable — this is the profile that exposes queue-occupancy
 * coupling a sparse probe would miss).
 */
enum class ObserverProfile : uint8_t { Probe, Backlogged };

const char *observerProfileName(ObserverProfile p);

/** One certification target: scheme, shape, and modelled context. */
struct CertifierConfig
{
    CertScheme scheme = CertScheme::Fs;

    /** FS design point (mode, pinned reference, refresh). Only read
     *  when scheme == Fs. */
    sched::FsScheduler::Params fs;

    /** TP turn length in memory cycles (scheme == Tp). */
    unsigned tpTurnLength = 60;

    /** Security domains in the modelled system. The lattice has
     *  2^(numDomains-1) co-runner subsets, so keep this small; 4
     *  (8 subsets) exercises every sharing structure. */
    unsigned numDomains = 4;

    /** The domain whose view must be invariant. */
    DomainId observer = 0;

    /** Horizon in frame-equivalents (FS frames / reordered intervals
     *  / TP rounds); stretched automatically past several refresh
     *  epochs when refresh is modelled. */
    unsigned horizonFrames = 40;

    /** Optional fault campaign armed on every run. A certificate must
     *  be refused when the fault couples domains (slot-skew,
     *  cross-coupling) — the certifier proving it can catch the
     *  schedulers it is meant to catch. */
    fault::FaultSpec fault;

    /**
     * Test hook: build the scheduler yourself instead of by scheme
     * (used to certify deliberately leaky toy schedulers). The
     * spatial partition is still chosen by `scheme`.
     */
    std::function<std::unique_ptr<sched::Scheduler>(
        mem::MemoryController &)>
        makeScheduler;
};

/** A concrete distinguishing input pair (the non-certificate proof). */
struct CertWitness
{
    /** Bit d set = domain d backlogged; the reference run is the
     *  all-idle assignment 0, so this IS the minimal distinguishing
     *  pair (assignments are swept in popcount-then-value order). */
    uint32_t assignment = 0;
    unsigned scenario = 0; ///< backlog phasing index (see scenarioName)
    ObserverProfile profile = ObserverProfile::Probe;

    /** First divergent observation (index into the service timeline);
     *  == the common length when one run serviced more requests. */
    uint64_t index = 0;
    bool countMismatch = false; ///< timelines differ in length
    bool errorMismatch = false; ///< recoverable-error counts differ
    core::ServiceEvent expected; ///< reference run's observation
    core::ServiceEvent observed; ///< diverging run's observation
    Cycle firstDivergenceCycle = 0;

    std::string toString() const;
};

/** Human-readable name of a backlog-phasing scenario. */
const char *scenarioName(unsigned scenario);

/** Number of backlog-phasing scenarios swept per assignment. */
inline constexpr unsigned kCertScenarios = 3;

/** Outcome of certifying one config: proof or counterexample. */
struct CertifyResult
{
    bool certified = false;
    unsigned numDomains = 0;
    uint64_t assignmentsChecked = 0; ///< (profile, subset) pairs
    uint64_t runsChecked = 0;        ///< full simulations executed
    Cycle horizonCycles = 0;         ///< injection horizon per run
    uint64_t observations = 0;       ///< reference Probe-run events
    std::string scheduler;           ///< scheduler name() under test
    bool hasWitness = false;
    CertWitness witness;

    std::string summary() const;
};

/** Exhaustive self-composition checker for one scheduler config. */
class NoninterferenceCertifier
{
  public:
    explicit NoninterferenceCertifier(const CertifierConfig &cfg);

    /** Run the full (profile x assignment x scenario) sweep. */
    CertifyResult certify() const;

    const CertifierConfig &config() const { return cfg_; }

  private:
    /** Observer-visible outcome of one simulation. */
    struct Trace
    {
        std::vector<core::ServiceEvent> events;
        uint64_t errors = 0;
        std::string schedName;
    };

    Trace run(ObserverProfile profile, unsigned scenario,
              uint32_t assignment, Cycle horizon) const;

    /** Injection horizon: horizonFrames frame-equivalents, stretched
     *  past several refresh epochs when refresh is modelled. */
    Cycle horizon() const;

    CertifierConfig cfg_;
};

/** One of the paper's five (reference, partition) design points. */
struct PaperCertPoint
{
    const char *label;  ///< e.g. "fs data/rank"
    unsigned l = 0;     ///< the paper's slot spacing for this point
    CertifierConfig cfg;
};

/**
 * The paper's five FS design points (l = 7, 12, 15, 21, 43) as
 * ready-to-run certifier configs, pinning the periodic reference so
 * the non-winning points (rank/RAS l=12, bank/data l=21) instantiate
 * through the real scheduler too.
 */
std::vector<PaperCertPoint> paperCertPoints(unsigned numDomains = 4);

} // namespace memsec::analysis

#endif // MEMSEC_ANALYSIS_NONINTERFERENCE_CERTIFIER_HH
