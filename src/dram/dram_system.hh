/**
 * @file
 * Single-channel DRAM device model.
 *
 * DramSystem is the authority on DRAM state for one channel: it owns
 * the ranks/banks, the shared buses, and the independent
 * TimingChecker. Schedulers ask canIssue() and then issue(); issue()
 * both updates the fast-path state and feeds the auditor, so an
 * inconsistent scheduler is caught immediately.
 */

#ifndef MEMSEC_DRAM_DRAM_SYSTEM_HH
#define MEMSEC_DRAM_DRAM_SYSTEM_HH

#include <memory>
#include <string>
#include <vector>

#include "dram/channel.hh"
#include "dram/command.hh"
#include "dram/rank.hh"
#include "dram/timing.hh"
#include "dram/timing_checker.hh"
#include "sim/types.hh"

namespace memsec::dram {

/** Result of a column command: when its data burst completes. */
struct IssueResult
{
    Cycle dataStart = 0; ///< first cycle of the data burst (column cmds)
    Cycle dataEnd = 0;   ///< one past the last burst cycle
};

/** One memory channel's worth of DRAM devices. */
class DramSystem
{
  public:
    DramSystem(const TimingParams &tp, const Geometry &geo);

    /** True if `cmd` may legally issue at cycle `now`; optionally
     *  reports the blocking rule. */
    bool canIssue(const Command &cmd, Cycle now,
                  std::string *why = nullptr) const;

    /**
     * Issue a command at cycle `now`. Panics if illegal. For column
     * commands the returned IssueResult carries the data-burst window;
     * for others it is zero.
     */
    IssueResult issue(const Command &cmd, Cycle now);

    /** Per-cycle housekeeping (energy state accounting). */
    void tick(Cycle now);

    Rank &rank(unsigned r) { return ranks_.at(r); }
    const Rank &rank(unsigned r) const { return ranks_.at(r); }
    unsigned numRanks() const { return static_cast<unsigned>(ranks_.size()); }

    ChannelBuses &buses() { return buses_; }
    const ChannelBuses &buses() const { return buses_; }

    const TimingParams &timing() const { return tp_; }
    const Geometry &geometry() const { return geo_; }
    TimingChecker &checker() { return checker_; }

    /** Total commands issued. */
    uint64_t commandsIssued() const { return commandsIssued_; }

  private:
    TimingParams tp_;
    Geometry geo_;
    std::vector<Rank> ranks_;
    ChannelBuses buses_;
    TimingChecker checker_;
    uint64_t commandsIssued_ = 0;
};

} // namespace memsec::dram

#endif // MEMSEC_DRAM_DRAM_SYSTEM_HH
