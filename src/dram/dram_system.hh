/**
 * @file
 * Single-channel DRAM device model.
 *
 * DramSystem is the authority on DRAM state for one channel: it owns
 * the ranks/banks, the shared buses, and the independent
 * TimingChecker. Schedulers ask canIssue() and then issue(); issue()
 * both updates the fast-path state and feeds the auditor, so an
 * inconsistent scheduler is caught immediately.
 */

#ifndef MEMSEC_DRAM_DRAM_SYSTEM_HH
#define MEMSEC_DRAM_DRAM_SYSTEM_HH

#include <memory>
#include <string>
#include <vector>

#include "dram/channel.hh"
#include "dram/command.hh"
#include "dram/rank.hh"
#include "dram/timing.hh"
#include "dram/timing_checker.hh"
#include "fault/command_log.hh"
#include "sim/compiled_schedule.hh"
#include "sim/types.hh"

namespace memsec {
class RunReport;
class Serializer;
class Deserializer;
namespace fault {
class FaultInjector;
} // namespace fault
} // namespace memsec

namespace memsec::dram {

/** Result of a column command: when its data burst completes. */
struct IssueResult
{
    Cycle dataStart = 0; ///< first cycle of the data burst (column cmds)
    Cycle dataEnd = 0;   ///< one past the last burst cycle
};

/** One memory channel's worth of DRAM devices. */
class DramSystem
{
  public:
    DramSystem(const TimingParams &tp, const Geometry &geo);
    ~DramSystem();

    // The registered crash handler captures `this`; moving or copying
    // the object would leave the handler dangling.
    DramSystem(const DramSystem &) = delete;
    DramSystem &operator=(const DramSystem &) = delete;

    /** True if `cmd` may legally issue at cycle `now`; optionally
     *  reports the blocking rule. */
    bool canIssue(const Command &cmd, Cycle now,
                  std::string *why = nullptr) const;

    /**
     * Issue a command at cycle `now`. Panics if illegal. For column
     * commands the returned IssueResult carries the data-burst window;
     * for others it is zero.
     */
    IssueResult issue(const Command &cmd, Cycle now);

    /** Per-cycle housekeeping (energy state accounting). */
    void tick(Cycle now);

    /**
     * Closed-form tick() over a skipped span [from, to): legal only
     * when no command issues inside the span, so each rank's power
     * state is constant except for a refresh completing mid-span.
     */
    void fastForwardEnergy(Cycle from, Cycle to);

    Rank &rank(unsigned r) { return ranks_.at(r); }
    const Rank &rank(unsigned r) const { return ranks_.at(r); }
    unsigned numRanks() const { return static_cast<unsigned>(ranks_.size()); }

    ChannelBuses &buses() { return buses_; }
    const ChannelBuses &buses() const { return buses_; }

    const TimingParams &timing() const { return tp_; }
    const Geometry &geometry() const { return geo_; }
    TimingChecker &checker() { return checker_; }
    const TimingChecker &checker() const { return checker_; }

    /** Total commands issued. */
    uint64_t commandsIssued() const { return commandsIssued_; }

    /**
     * Compiled-replay integration (docs/PERF.md). In On mode the
     * shadow TimingChecker is not consulted on issue() — legality is
     * carried by the ScheduleVerifier's static hyperperiod proof — and
     * rank energy residency comes from decision-time [ACT, CAS)
     * intervals instead of per-cycle power-state sampling. Verify
     * keeps the full audit. Incompatible with a fault injector (the
     * audit stream is the whole point of an injection run).
     */
    void setCompiledMode(CompiledMode mode, size_t intervalCapacity);
    CompiledMode compiledMode() const { return compiledMode_; }
    CompiledEnergyAccountant &compiledEnergy() { return compiledEnergy_; }

    /**
     * Attach a fault injector: the checker observes the injector's
     * mutated audit stream instead of the real command stream. Puts
     * this system and the checker into record-and-continue mode (an
     * injection campaign must survive its own faults); for
     * timing-drift kinds the checker is rebuilt against the drifted
     * parameter set.
     */
    void attachFaultInjector(fault::FaultInjector *inj);

    /** Route recoverable faults here instead of panicking. */
    void setReport(RunReport *report) { report_ = report; }

    /**
     * Strict (default): an illegal issue() is a panic. Non-strict: it
     * is recorded (to the attached report, if any), the command is
     * still audited, and the fast-path state is left untouched.
     */
    void setStrict(bool strict);

    /** Illegal issues survived in non-strict mode. */
    uint64_t illegalIssues() const { return illegalIssues_; }

    /** Last-K-commands ring dumped as a crash snapshot on panic. */
    const fault::CommandLog &commandLog() const { return cmdLog_; }

    /**
     * Write the crash-time command-log dump to a file
     * `<dir>/cmdlog-<tag>-<N>.log` instead of stderr. N comes from a
     * process-wide attempt counter, so parallel campaign workers — or
     * repeated attempts at the same config — can never overwrite each
     * other's post-mortems even when they share a tag. The campaign
     * harness passes the run's config fingerprint as the tag.
     */
    void setCrashDumpDir(const std::string &dir, const std::string &tag);

    /** Device + bus + auditor state (timing params are config). */
    void saveState(Serializer &s) const;
    void restoreState(Deserializer &d);

  private:
    TimingParams tp_;
    Geometry geo_;
    std::vector<Rank> ranks_;
    ChannelBuses buses_;
    TimingChecker checker_;
    uint64_t commandsIssued_ = 0;

    CompiledMode compiledMode_ = CompiledMode::Off;
    CompiledEnergyAccountant compiledEnergy_;

    /** tick()/fastForwardEnergy() via the interval accountant. */
    void accountCompiledSpan(Cycle from, Cycle to);

    fault::FaultInjector *injector_ = nullptr;
    RunReport *report_ = nullptr;
    bool strict_ = true;
    uint64_t illegalIssues_ = 0;
    fault::CommandLog cmdLog_{32};
    int crashHandlerId_ = -1;
    std::string crashDir_; ///< empty = dump to stderr
    std::string crashTag_;
};

} // namespace memsec::dram

#endif // MEMSEC_DRAM_DRAM_SYSTEM_HH
