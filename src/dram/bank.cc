#include "dram/bank.hh"

#include <algorithm>

#include "util/logging.hh"
#include "util/serialize.hh"

namespace memsec::dram {

void
Bank::saveState(Serializer &s) const
{
    s.putU32(openRow_);
    s.putU64(nextAct_);
    s.putU64(nextRead_);
    s.putU64(nextWrite_);
    s.putU64(nextPre_);
}

void
Bank::restoreState(Deserializer &d)
{
    openRow_ = d.getU32();
    nextAct_ = d.getU64();
    nextRead_ = d.getU64();
    nextWrite_ = d.getU64();
    nextPre_ = d.getU64();
}

void
Bank::doActivate(Cycle t, unsigned row, const TimingParams &tp)
{
    panic_if(isOpen(), "ACT to bank with open row {}", openRow_);
    panic_if(t < nextAct_, "ACT at {} before nextAct {}", t, nextAct_);
    openRow_ = row;
    nextRead_ = t + tp.rcd;
    nextWrite_ = t + tp.rcd;
    nextPre_ = t + tp.ras;
    nextAct_ = t + tp.rc;
}

void
Bank::doRead(Cycle t, bool autoPre, const TimingParams &tp)
{
    panic_if(!isOpen(), "column read to closed bank");
    panic_if(t < nextRead_, "RD at {} before nextRead {}", t, nextRead_);
    // A later CAS to the same open row only needs tCCD, which is a
    // rank-level constraint; bank-level nextRead stays as set by ACT.
    nextPre_ = std::max(nextPre_, t + tp.rtp);
    if (autoPre) {
        openRow_ = kNoRow;
        nextAct_ = std::max(nextAct_, t + tp.rtp + tp.rp);
    }
}

void
Bank::doWrite(Cycle t, bool autoPre, const TimingParams &tp)
{
    panic_if(!isOpen(), "column write to closed bank");
    panic_if(t < nextWrite_, "WR at {} before nextWrite {}", t, nextWrite_);
    nextPre_ = std::max(nextPre_, t + tp.cwd + tp.burst + tp.wr);
    if (autoPre) {
        openRow_ = kNoRow;
        nextAct_ = std::max(nextAct_,
                            t + tp.cwd + tp.burst + tp.wr + tp.rp);
    }
}

void
Bank::doPrecharge(Cycle t, const TimingParams &tp)
{
    panic_if(!isOpen(), "PRE to closed bank");
    panic_if(t < nextPre_, "PRE at {} before nextPre {}", t, nextPre_);
    openRow_ = kNoRow;
    nextAct_ = std::max(nextAct_, t + tp.rp);
}

void
Bank::blockUntil(Cycle t)
{
    nextAct_ = std::max(nextAct_, t);
    nextRead_ = std::max(nextRead_, t);
    nextWrite_ = std::max(nextWrite_, t);
    nextPre_ = std::max(nextPre_, t);
}

void
Bank::reset()
{
    openRow_ = kNoRow;
    nextAct_ = nextRead_ = nextWrite_ = nextPre_ = 0;
}

} // namespace memsec::dram
