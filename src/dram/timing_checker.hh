/**
 * @file
 * Independent JEDEC timing auditor.
 *
 * The checker maintains its own shadow of DRAM state, derived purely
 * from the command stream it is fed, and verifies every constraint the
 * paper's pipeline equations encode (plus row-management legality).
 * It deliberately duplicates the fast-path bookkeeping in Bank/Rank/
 * ChannelBuses: a bug in either implementation surfaces as a
 * disagreement, so the FS schedules are *demonstrated* conflict-free
 * rather than assumed so.
 *
 * Every violation is reported through a Violation record; in strict
 * mode (the default everywhere) a violation is a panic.
 */

#ifndef MEMSEC_DRAM_TIMING_CHECKER_HH
#define MEMSEC_DRAM_TIMING_CHECKER_HH

#include <deque>
#include <map>
#include <string>
#include <vector>

#include "dram/command.hh"
#include "dram/timing.hh"
#include "dram/timing_rules.hh"
#include "sim/types.hh"

namespace memsec {
class Serializer;
class Deserializer;
} // namespace memsec

namespace memsec::dram {

/** One detected rule violation. */
struct Violation
{
    Cycle cycle = 0;
    std::string rule;   ///< e.g. "tFAW", "cmd-bus", "row-state"
    std::string detail;
};

/** Shadow-model timing auditor for a single channel. */
class TimingChecker
{
  public:
    TimingChecker(const TimingParams &tp, unsigned ranks, unsigned banks);

    /**
     * Observe a command issued at cycle t. Returns true if legal.
     * In strict mode an illegal command panics instead of returning.
     */
    bool observe(const Command &cmd, Cycle t);

    /**
     * The first violationCap() violations, verbatim (non-strict mode
     * only). Later violations are still *counted* — see
     * violationCount() / violationsByRule() — but their records are
     * dropped so a fault campaign cannot grow memory without bound.
     */
    const std::vector<Violation> &violations() const { return violations_; }

    /** All violations ever detected, including ones past the cap. */
    uint64_t violationCount() const { return violationTotal_; }

    /** Per-rule-class violation totals (uncapped). */
    const std::map<std::string, uint64_t> &violationsByRule() const
    {
        return violationsByRule_;
    }

    /** Records kept verbatim before capping (default 128). */
    size_t violationCap() const { return violationCap_; }
    void setViolationCap(size_t cap) { violationCap_ = cap; }

    /** Number of commands checked. */
    uint64_t observed() const { return observed_; }

    /** Panic on violation (default) vs record-and-continue. */
    void setStrict(bool strict) { strict_ = strict; }

    /**
     * Arm the retention audit: once set, any non-REF command to a rank
     * that has not been refreshed for more than 2x refi cycles raises
     * a "refresh" violation (refresh suppression threatens data
     * retention even though no inter-command constraint is broken).
     */
    void expectRefresh(uint64_t refi) { expectedRefi_ = refi; }

    /** Shadow state + violation history (config/rule table excluded). */
    void saveState(Serializer &s) const;
    void restoreState(Deserializer &d);

  private:
    /** Sentinel for "no open row" (independent of Bank's). */
    static constexpr unsigned kNoRow = ~0u;

    struct BankShadow
    {
        unsigned openRow = kNoRow;
        Cycle lastAct = kNoCycle;      ///< issue cycle of last ACT
        Cycle lastRdCas = kNoCycle;    ///< last column-read to this bank
        Cycle lastWrCas = kNoCycle;    ///< last column-write to this bank
        Cycle preReadyAt = 0;          ///< cycle bank became precharged
    };

    struct RankShadow
    {
        std::deque<Cycle> actHistory;  ///< recent ACTs for tRRD/tFAW
        Cycle lastRdCas = kNoCycle;
        Cycle lastWrCas = kNoCycle;
        Cycle refreshEnd = 0;
        Cycle lastRefSeen = 0;         ///< for the retention audit
        bool poweredDown = false;
        Cycle pdEnteredAt = 0;
        Cycle pdExitReadyAt = 0;       ///< tXP horizon after PDX
    };

    void fail(Cycle t, const std::string &rule, const std::string &detail);
    void require(bool ok, Cycle t, RuleId rule, const std::string &detail);

    /** Shared-table minimum gap, as a Cycle for horizon arithmetic. */
    Cycle need(RuleId id) const
    {
        return static_cast<Cycle>(rules_.gap(id));
    }

    void checkAct(const Command &cmd, Cycle t);
    void checkColumn(const Command &cmd, Cycle t);
    void checkPre(const Command &cmd, Cycle t);
    void checkRef(const Command &cmd, Cycle t);
    void checkPd(const Command &cmd, Cycle t);

    BankShadow &bankOf(const Command &cmd);
    RankShadow &rankOf(const Command &cmd);

    TimingParams tp_; ///< non-const so drifted params can be swapped in
    TimingRuleTable rules_; ///< shared rule table resolved against tp_
    unsigned nbanks_ = 0;
    std::vector<BankShadow> banks_;  ///< [rank * nbanks + bank]
    std::vector<RankShadow> ranks_;

    Cycle lastCmdCycle_ = kNoCycle;
    Cycle lastDataStart_ = kNoCycle;
    Cycle lastDataEnd_ = 0;
    unsigned lastDataRank_ = ~0u;

    bool strict_ = true;
    bool currentOk_ = true;
    uint64_t observed_ = 0;
    uint64_t expectedRefi_ = 0; ///< 0 = retention audit disarmed
    std::vector<Violation> violations_;
    size_t violationCap_ = 128;
    uint64_t violationTotal_ = 0;
    std::map<std::string, uint64_t> violationsByRule_;
};

} // namespace memsec::dram

#endif // MEMSEC_DRAM_TIMING_CHECKER_HH
