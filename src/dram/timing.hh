/**
 * @file
 * DRAM timing parameters.
 *
 * All values are in DRAM bus cycles (800 MHz for DDR3-1600, i.e.
 * 1.25 ns per cycle) and follow the paper's Table 1. Derived values
 * used by both the schedulers and the pipeline solver (read-to-write
 * and write-to-read column-command gaps, command offsets relative to
 * the data burst) are computed here so every consumer agrees on them.
 */

#ifndef MEMSEC_DRAM_TIMING_HH
#define MEMSEC_DRAM_TIMING_HH

#include <cstdint>
#include <string>

namespace memsec::dram {

/**
 * JEDEC-style timing parameter set. Field names mirror the datasheet
 * names (t prefix dropped: tRCD -> rcd).
 */
struct TimingParams
{
    // -- Bank / row timing --
    unsigned rc = 39;    ///< ACT to ACT, same bank (tRC)
    unsigned rcd = 11;   ///< ACT to column command, same bank (tRCD)
    unsigned ras = 28;   ///< ACT to PRE, same bank (tRAS)
    unsigned rp = 11;    ///< PRE to ACT, same bank (tRP)
    unsigned rtp = 6;    ///< column-read to PRE (tRTP)
    unsigned wr = 12;    ///< end of write burst to PRE (tWR)

    // -- Rank-level activation limits --
    unsigned rrd = 5;    ///< ACT to ACT, different banks same rank (tRRD)
    unsigned faw = 24;   ///< window for at most four ACTs per rank (tFAW)

    // -- Column / bus timing --
    unsigned cas = 11;   ///< column-read to data (CL / tCAS)
    unsigned cwd = 5;    ///< column-write to data (CWL / tCWD)
    unsigned burst = 4;  ///< data burst length on the bus (tBURST)
    unsigned ccd = 4;    ///< column command to column command (tCCD)
    unsigned wtr = 6;    ///< end of write burst to column-read (tWTR)
    unsigned rtrs = 2;   ///< rank-to-rank data-bus switch (tRTRS)

    // -- Refresh --
    uint64_t refi = 6240; ///< average refresh interval (tREFI, 7.8 us)
    unsigned rfc = 208;   ///< refresh cycle time (tRFC, 260 ns)

    // -- Power-down --
    unsigned xp = 10;    ///< power-down exit to first command (tXP)
    unsigned cke = 4;    ///< minimum power-down residency (tCKE)

    /**
     * Column-read to column-write, same rank:
     * the read burst must clear the bus before the write burst starts.
     * rd2wr = cas + burst - cwd (paper: 11 + 4 - 5 = 10).
     */
    unsigned rd2wr() const { return cas + burst - cwd; }

    /**
     * Column-write to column-read, same rank:
     * wr2rd = cwd + burst + wtr (paper: 5 + 4 + 6 = 15).
     */
    unsigned wr2rd() const { return cwd + burst + wtr; }

    /**
     * ACT to next ACT on the same bank when the access is a write with
     * auto-precharge: rcd + cwd + burst + wr + rp (paper: 43). This is
     * the binding constraint for the unpartitioned FS pipeline.
     */
    unsigned actToActWrA() const { return rcd + cwd + burst + wr + rp; }

    /** ACT to next ACT, same bank, read with auto-precharge. */
    unsigned actToActRdA() const
    {
        const unsigned via_rtp = rcd + rtp + rp;
        return via_rtp > rc ? via_rtp : rc;
    }

    /** Validate internal consistency; fatal on nonsense values. */
    void validate() const;

    /** Human-readable multi-line dump. */
    std::string toString() const;

    /** The paper's Table 1 DDR3-1600 4Gb part. */
    static TimingParams ddr3_1600_4gb();

    /** A faster DDR3-2133-like part (solver generality tests). */
    static TimingParams ddr3_2133();

    /** A DDR4-2400-like part (solver generality tests). */
    static TimingParams ddr4_2400();
};

/** Geometry of the simulated memory system. */
struct Geometry
{
    unsigned channels = 1;
    unsigned ranksPerChannel = 8;
    unsigned banksPerRank = 8;
    unsigned rowsPerBank = 32768;
    unsigned colsPerRow = 128;   ///< cache lines per row (8 KB row / 64 B)

    unsigned ranksTotal() const { return channels * ranksPerChannel; }
    unsigned banksTotal() const { return ranksTotal() * banksPerRank; }
    uint64_t lineCapacity() const
    {
        return static_cast<uint64_t>(banksTotal()) * rowsPerBank *
               colsPerRow;
    }
    void validate() const;
};

} // namespace memsec::dram

#endif // MEMSEC_DRAM_TIMING_HH
