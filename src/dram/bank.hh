/**
 * @file
 * Per-bank DRAM state machine and timing bookkeeping.
 *
 * The bank tracks which row (if any) is open and the earliest cycle at
 * which each command class may next be issued to it. The bookkeeping
 * here is the scheduler-facing "fast path"; the independent
 * TimingChecker re-derives the same constraints from command history.
 */

#ifndef MEMSEC_DRAM_BANK_HH
#define MEMSEC_DRAM_BANK_HH

#include "dram/timing.hh"
#include "sim/types.hh"

namespace memsec {
class Serializer;
class Deserializer;
} // namespace memsec

namespace memsec::dram {

/** State and timing windows of one DRAM bank. */
class Bank
{
  public:
    static constexpr unsigned kNoRow = ~0u;

    /** True if a row is currently open in this bank. */
    bool isOpen() const { return openRow_ != kNoRow; }

    /** Row currently open, or kNoRow. */
    unsigned openRow() const { return openRow_; }

    /** Earliest cycle an ACT may issue. */
    Cycle nextAct() const { return nextAct_; }
    /** Earliest cycle a column-read may issue (row must be open). */
    Cycle nextRead() const { return nextRead_; }
    /** Earliest cycle a column-write may issue (row must be open). */
    Cycle nextWrite() const { return nextWrite_; }
    /** Earliest cycle a PRE may issue. */
    Cycle nextPre() const { return nextPre_; }

    /** Apply an ACT issued at cycle t opening row. */
    void doActivate(Cycle t, unsigned row, const TimingParams &tp);

    /** Apply a column read (optionally auto-precharging) at cycle t. */
    void doRead(Cycle t, bool autoPre, const TimingParams &tp);

    /** Apply a column write (optionally auto-precharging) at cycle t. */
    void doWrite(Cycle t, bool autoPre, const TimingParams &tp);

    /** Apply an explicit PRE at cycle t. */
    void doPrecharge(Cycle t, const TimingParams &tp);

    /** Push nextAct out to at least cycle t (refresh / power-down). */
    void blockUntil(Cycle t);

    /** Reset to the power-on state. */
    void reset();

    void saveState(Serializer &s) const;
    void restoreState(Deserializer &d);

  private:
    unsigned openRow_ = kNoRow;
    Cycle nextAct_ = 0;
    Cycle nextRead_ = 0;
    Cycle nextWrite_ = 0;
    Cycle nextPre_ = 0;
};

} // namespace memsec::dram

#endif // MEMSEC_DRAM_BANK_HH
