#include "dram/channel.hh"

#include "util/logging.hh"

namespace memsec::dram {

void
ChannelBuses::useCmdBus(Cycle t)
{
    panic_if(lastCmdCycle_ != kNoCycle && t < lastCmdCycle_,
             "command bus time went backwards: {} after {}", t,
             lastCmdCycle_);
    panic_if(!cmdBusFree(t), "command bus conflict at cycle {}", t);
    lastCmdCycle_ = t;
    ++commandCount_;
}

Cycle
ChannelBuses::earliestDataStart(unsigned rank) const
{
    if (lastDataRank_ == ~0u)
        return 0;
    Cycle e = dataBusyUntil_;
    if (rank != lastDataRank_)
        e += tp_.rtrs;
    return e;
}

void
ChannelBuses::reserveData(Cycle start, unsigned rank)
{
    panic_if(!dataBusFree(start, rank),
             "data bus conflict: burst at {} (rank {}) but bus busy "
             "until {} (last rank {})",
             start, rank, dataBusyUntil_, lastDataRank_);
    dataBusyUntil_ = start + tp_.burst;
    lastDataRank_ = rank;
    dataBusyCycles_ += tp_.burst;
}

} // namespace memsec::dram
