#include "dram/channel.hh"

#include "util/logging.hh"
#include "util/serialize.hh"

namespace memsec::dram {

void
ChannelBuses::saveState(Serializer &s) const
{
    s.putU64(lastCmdCycle_);
    s.putU64(dataBusyUntil_);
    s.putU32(lastDataRank_);
    s.putU64(dataBusyCycles_);
    s.putU64(commandCount_);
}

void
ChannelBuses::restoreState(Deserializer &d)
{
    lastCmdCycle_ = d.getU64();
    dataBusyUntil_ = d.getU64();
    lastDataRank_ = d.getU32();
    dataBusyCycles_ = d.getU64();
    commandCount_ = d.getU64();
}

void
ChannelBuses::useCmdBus(Cycle t)
{
    panic_if(lastCmdCycle_ != kNoCycle && t < lastCmdCycle_,
             "command bus time went backwards: {} after {}", t,
             lastCmdCycle_);
    panic_if(!cmdBusFree(t), "command bus conflict at cycle {}", t);
    lastCmdCycle_ = t;
    ++commandCount_;
}

Cycle
ChannelBuses::earliestDataStart(unsigned rank) const
{
    if (lastDataRank_ == ~0u)
        return 0;
    Cycle e = dataBusyUntil_;
    if (rank != lastDataRank_)
        e += tp_.rtrs;
    return e;
}

void
ChannelBuses::reserveData(Cycle start, unsigned rank)
{
    panic_if(!dataBusFree(start, rank),
             "data bus conflict: burst at {} (rank {}) but bus busy "
             "until {} (last rank {})",
             start, rank, dataBusyUntil_, lastDataRank_);
    dataBusyUntil_ = start + tp_.burst;
    lastDataRank_ = rank;
    dataBusyCycles_ += tp_.burst;
}

} // namespace memsec::dram
