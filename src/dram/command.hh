/**
 * @file
 * DRAM command representation.
 */

#ifndef MEMSEC_DRAM_COMMAND_HH
#define MEMSEC_DRAM_COMMAND_HH

#include <string>

#include "sim/types.hh"

namespace memsec::dram {

/** The command vocabulary of the model. */
enum class CmdType : uint8_t
{
    Act,    ///< Activate: open a row
    Pre,    ///< Precharge: close the open row
    Rd,     ///< Column read
    RdA,    ///< Column read with auto-precharge
    Wr,     ///< Column write
    WrA,    ///< Column write with auto-precharge
    Ref,    ///< Per-rank refresh
    PdEnter, ///< Enter (precharge) power-down
    PdExit,  ///< Exit power-down
};

/** Name string for diagnostics. */
const char *cmdName(CmdType t);

/** True for Rd/RdA/Wr/WrA. */
bool isColumn(CmdType t);

/** True for Rd/RdA. */
bool isRead(CmdType t);

/** True for Wr/WrA. */
bool isWrite(CmdType t);

/** True for RdA/WrA. */
bool isAutoPrecharge(CmdType t);

/**
 * A single DRAM command addressed to one bank (or rank for
 * Ref/PdEnter/PdExit, where bank is ignored).
 */
struct Command
{
    CmdType type = CmdType::Act;
    unsigned rank = 0;
    unsigned bank = 0;
    unsigned row = 0;       ///< meaningful for Act and column commands
    ReqId req = 0;          ///< owning request, 0 = none (dummy/refresh)
    bool suppressed = false; ///< energy-opt 1: timing kept, no real access

    std::string toString() const;
};

} // namespace memsec::dram

#endif // MEMSEC_DRAM_COMMAND_HH
