/**
 * @file
 * The single source of truth for DRAM timing rules.
 *
 * Three independent consumers enforce the same JEDEC constraints:
 * the dynamic TimingChecker (audits every simulated command), the
 * PipelineSolver (derives the paper's minimum slot spacings), and the
 * static ScheduleVerifier (model-checks a whole hyperperiod offline).
 * Before this table existed each kept its own copy of the rule
 * constants and names, which could drift apart silently; now all
 * three consume TimingRuleTable, so a disagreement between them can
 * only be a logic bug, never a constant mismatch.
 *
 * Two views are provided:
 *  - gap(RuleId): the scalar minimum-separation (or duration) each
 *    rule demands, derived from TimingParams;
 *  - pairRules(): the subset expressible as "command X of an earlier
 *    transaction and command Y of a later one must be at least G
 *    cycles apart under sharing scope S", which is exactly the form
 *    the solver's inequalities and the verifier's pair checks need.
 */

#ifndef MEMSEC_DRAM_TIMING_RULES_HH
#define MEMSEC_DRAM_TIMING_RULES_HH

#include <vector>

#include "dram/timing.hh"

namespace memsec::dram {

/**
 * Stable identifier for every timing / legality rule the model
 * enforces. ruleName() returns the exact strings used in Violation
 * records, verifier conflict reports, and test assertions.
 */
enum class RuleId : uint8_t
{
    CmdBus,      ///< one command per cycle on the shared command bus
    DataBus,     ///< data bursts must not overlap (incl. tRTRS slack)
    Rtrs,        ///< rank-to-rank data-bus switch penalty
    Rrd,         ///< ACT-to-ACT, same rank (tRRD)
    Faw,         ///< at most four ACTs per rank per tFAW window
    Ccd,         ///< column-to-column, same type, same rank (tCCD)
    Rd2Wr,       ///< column-read to column-write turnaround (tRTW)
    Wr2Rd,       ///< column-write to column-read turnaround (tWTR-bound)
    Rc,          ///< ACT-to-ACT, same bank (tRC)
    Rcd,         ///< ACT to column command, same bank (tRCD)
    Ras,         ///< ACT to PRE, same bank (tRAS)
    Rp,          ///< PRE to ACT, same bank (tRP)
    Rtp,         ///< column-read to PRE (tRTP)
    Wr,          ///< end of write burst to PRE (tWR)
    Rfc,         ///< refresh cycle time (tRFC)
    Refresh,     ///< retention: every rank refreshed within 2x tREFI
    Xp,          ///< power-down exit to first command (tXP)
    Cke,         ///< minimum power-down residency (tCKE)
    ActToActRdA, ///< same-bank reuse after read + auto-precharge
    ActToActWrA, ///< same-bank reuse after write + auto-precharge
    RowState,    ///< row open/close legality (not a gap)
    PowerDown,   ///< power-down state legality (not a gap)
};

const char *ruleName(RuleId id);

/** Which command of a closed-row transaction a pairwise rule anchors. */
enum class CmdEdge : uint8_t { Act, Cas, Data };

/** Human-readable edge name ("ACT", "CAS", "DATA") for reports. */
const char *cmdEdgeName(CmdEdge e);

/**
 * Resource sharing under which a pairwise rule binds. AnyPair rules
 * constrain every transaction pair (shared buses); SameRank /
 * SameBank rules bind only pairs that may target one rank / bank.
 */
enum class RuleScope : uint8_t { AnyPair, SameRank, SameBank };

/** Transaction-type predicate for one side of a pairwise rule. */
enum class TypePred : uint8_t { Any, Read, Write };

inline bool
typeMatches(TypePred p, bool write)
{
    return p == TypePred::Any || (p == TypePred::Write) == write;
}

/**
 * One "minimum separation between commands of two transactions"
 * rule: `to`-edge of the later transaction must trail the `from`-edge
 * of the earlier one by at least minGap cycles, whenever the pair's
 * types match and the pair can share the rule's scope.
 *
 * actWindow == 1 for adjacent-pair rules. actWindow == 4 marks the
 * tFAW window rule, which binds a transaction and the fourth-previous
 * ACT in the same rank rather than an adjacent pair; both the solver
 * and the verifier special-case it on this field.
 */
struct PairRule
{
    RuleId id;
    RuleScope scope;
    CmdEdge from;
    CmdEdge to;
    TypePred earlier;
    TypePred later;
    unsigned actWindow = 1;
    long minGap = 0;
};

/** All rules, with gaps resolved against one TimingParams. */
class TimingRuleTable
{
  public:
    explicit TimingRuleTable(const TimingParams &tp);

    /** Minimum separation (or duration) the rule demands, in cycles. */
    long gap(RuleId id) const;

    /** The pairwise-expressible subset, for solver/verifier loops. */
    const std::vector<PairRule> &pairRules() const { return pair_; }

    const TimingParams &timing() const { return tp_; }

  private:
    TimingParams tp_;
    std::vector<PairRule> pair_;
};

} // namespace memsec::dram

#endif // MEMSEC_DRAM_TIMING_RULES_HH
