#include "dram/dram_system.hh"

#include <algorithm>
#include <atomic>
#include <fstream>
#include <iostream>

#include "fault/fault_injector.hh"
#include "util/logging.hh"
#include "util/serialize.hh"
#include "util/sim_error.hh"

namespace memsec::dram {

namespace {

/**
 * Process-wide crash-dump attempt counter: every dump gets a unique
 * suffix no matter which worker thread (or which retry of the same
 * fingerprint) produced it.
 */
std::atomic<uint64_t> &
crashDumpSeq()
{
    static std::atomic<uint64_t> seq{0};
    return seq;
}

} // namespace

DramSystem::DramSystem(const TimingParams &tp, const Geometry &geo)
    : tp_(tp), geo_(geo), buses_(tp_),
      checker_(tp_, geo.ranksPerChannel, geo.banksPerRank)
{
    tp_.validate();
    geo_.validate();
    ranks_.reserve(geo.ranksPerChannel);
    for (unsigned r = 0; r < geo.ranksPerChannel; ++r)
        ranks_.emplace_back(geo.banksPerRank, tp_);
    crashHandlerId_ = addCrashHandler([this] {
        // Straight to stderr: this runs on the panic path, where the
        // quiet flag must not eat the post-mortem.
        const std::string dump = cmdLog_.snapshot();
        if (crashDir_.empty()) {
            std::cerr << dump;
            return;
        }
        const uint64_t n = crashDumpSeq()++;
        const std::string path = crashDir_ + "/cmdlog-" + crashTag_ +
                                 "-" + std::to_string(n) + ".log";
        std::ofstream out(path, std::ios::trunc);
        if (!out) {
            std::cerr << dump;
            return;
        }
        out << dump;
        std::cerr << "crash command log written to " << path << "\n";
    });
}

void
DramSystem::setCrashDumpDir(const std::string &dir, const std::string &tag)
{
    crashDir_ = dir;
    crashTag_ = tag;
}

void
DramSystem::saveState(Serializer &s) const
{
    s.section("dram");
    s.putU64(ranks_.size());
    for (const Rank &rk : ranks_)
        rk.saveState(s);
    buses_.saveState(s);
    checker_.saveState(s);
    s.putU64(commandsIssued_);
    s.putU64(illegalIssues_);
    cmdLog_.saveState(s);
}

void
DramSystem::restoreState(Deserializer &d)
{
    d.section("dram");
    if (d.getU64() != ranks_.size())
        d.fail("rank count mismatch");
    for (Rank &rk : ranks_)
        rk.restoreState(d);
    buses_.restoreState(d);
    checker_.restoreState(d);
    commandsIssued_ = d.getU64();
    illegalIssues_ = d.getU64();
    cmdLog_.restoreState(d);
}

DramSystem::~DramSystem()
{
    removeCrashHandler(crashHandlerId_);
}

void
DramSystem::setStrict(bool strict)
{
    strict_ = strict;
    checker_.setStrict(strict);
}

void
DramSystem::attachFaultInjector(fault::FaultInjector *inj)
{
    injector_ = inj;
    if (!inj)
        return;
    setStrict(false);
    if (inj->spec().kind == fault::FaultKind::TimingDrift) {
        // The device's true timing has drifted; audit against it while
        // the fast path keeps scheduling with the nominal parameters.
        checker_ = TimingChecker(inj->driftTimings(tp_),
                                 geo_.ranksPerChannel, geo_.banksPerRank);
        checker_.setStrict(false);
    }
}

bool
DramSystem::canIssue(const Command &cmd, Cycle now, std::string *why) const
{
    auto blocked = [&](const char *reason) {
        if (why)
            *why = reason;
        return false;
    };

    if (!buses_.cmdBusFree(now))
        return blocked("command bus busy");

    fatal_if(cmd.rank >= ranks_.size(), "rank {} out of range", cmd.rank);
    const Rank &rk = ranks_[cmd.rank];
    if (cmd.type != CmdType::PdExit) {
        if (now < rk.refreshEndsAt())
            return blocked("rank refreshing");
        if (rk.isPoweredDown())
            return blocked("rank powered down");
    }

    switch (cmd.type) {
      case CmdType::Act: {
        const Bank &bk = rk.bank(cmd.bank);
        if (bk.isOpen())
            return blocked("bank has open row");
        if (now < bk.nextAct())
            return blocked("bank tRC/tRP");
        if (now < rk.nextActRankLimit())
            return blocked("rank tRRD/tFAW");
        return true;
      }
      case CmdType::Rd:
      case CmdType::RdA:
      case CmdType::Wr:
      case CmdType::WrA: {
        const Bank &bk = rk.bank(cmd.bank);
        const bool rd = isRead(cmd.type);
        if (!bk.isOpen() || bk.openRow() != cmd.row)
            return blocked("row not open");
        if (rd && now < bk.nextRead())
            return blocked("bank tRCD (read)");
        if (!rd && now < bk.nextWrite())
            return blocked("bank tRCD (write)");
        if (rd && now < rk.nextRead())
            return blocked("rank CAS turnaround (read)");
        if (!rd && now < rk.nextWrite())
            return blocked("rank CAS turnaround (write)");
        const Cycle dataStart = now + (rd ? tp_.cas : tp_.cwd);
        if (!buses_.dataBusFree(dataStart, cmd.rank))
            return blocked("data bus / tRTRS");
        return true;
      }
      case CmdType::Pre: {
        const Bank &bk = rk.bank(cmd.bank);
        if (!bk.isOpen())
            return blocked("bank already closed");
        if (now < bk.nextPre())
            return blocked("bank tRAS/tRTP/tWR");
        return true;
      }
      case CmdType::Ref:
        if (!rk.allBanksIdleBy(now))
            return blocked("banks not precharged for REF");
        return true;
      case CmdType::PdEnter:
        if (rk.anyBankOpen())
            return blocked("open rows prevent power-down");
        if (now < rk.pdExitReadyAt())
            return blocked("tXP after power-down exit");
        return true;
      case CmdType::PdExit:
        if (!rk.isPoweredDown())
            return blocked("rank not powered down");
        if (now < rk.earliestPdExit())
            return blocked("tCKE residency");
        return true;
    }
    return blocked("unknown command");
}

IssueResult
DramSystem::issue(const Command &cmd, Cycle now)
{
    std::string why;
    const bool legal = canIssue(cmd, now, &why);
    // Record before any panic so the crash snapshot includes the
    // command that killed the run.
    cmdLog_.record(cmd, now);
    panic_if(!legal && strict_, "illegal issue of {} at {}: {}",
             cmd.toString(), now, why);

    // Independent audit first, so a fast-path bug cannot mask a real
    // constraint violation. With an injector attached the checker
    // observes the mutated audit stream instead of the real command.
    // Under sim.compiled=on the audit is skipped outright: legality of
    // the replayed template is carried by the ScheduleVerifier's
    // static hyperperiod proof (canIssue() above still enforces the
    // fast-path state machine).
    if (injector_) {
        for (const auto &[acmd, at] : injector_->auditView(cmd, now))
            checker_.observe(acmd, at);
    } else if (compiledMode_ != CompiledMode::On) {
        checker_.observe(cmd, now);
    }
    ++commandsIssued_;

    if (!legal) {
        // Record-and-continue: don't apply an illegal transition to
        // the device state machine, but report a nominal burst window
        // so the owning request still completes.
        ++illegalIssues_;
        if (report_)
            report_->record(
                {now, "illegal-issue", cmd.toString() + ": " + why});
        IssueResult res;
        if (isColumn(cmd.type)) {
            res.dataStart = now + (isRead(cmd.type) ? tp_.cas : tp_.cwd);
            res.dataEnd = res.dataStart + tp_.burst;
        }
        return res;
    }

    buses_.useCmdBus(now);

    Rank &rk = ranks_[cmd.rank];
    IssueResult res;

    switch (cmd.type) {
      case CmdType::Act:
        rk.bank(cmd.bank).doActivate(now, cmd.row, tp_);
        rk.recordActivate(now, cmd.suppressed);
        break;
      case CmdType::Rd:
      case CmdType::RdA: {
        rk.bank(cmd.bank).doRead(now, isAutoPrecharge(cmd.type), tp_);
        rk.recordRead(now);
        res.dataStart = now + tp_.cas;
        res.dataEnd = res.dataStart + tp_.burst;
        buses_.reserveData(res.dataStart, cmd.rank);
        if (cmd.suppressed)
            ++rk.energy().suppressedCas;
        else
            ++rk.energy().reads;
        break;
      }
      case CmdType::Wr:
      case CmdType::WrA: {
        rk.bank(cmd.bank).doWrite(now, isAutoPrecharge(cmd.type), tp_);
        rk.recordWrite(now);
        res.dataStart = now + tp_.cwd;
        res.dataEnd = res.dataStart + tp_.burst;
        buses_.reserveData(res.dataStart, cmd.rank);
        if (cmd.suppressed)
            ++rk.energy().suppressedCas;
        else
            ++rk.energy().writes;
        break;
      }
      case CmdType::Pre:
        rk.bank(cmd.bank).doPrecharge(now, tp_);
        break;
      case CmdType::Ref:
        rk.startRefresh(now);
        break;
      case CmdType::PdEnter:
        rk.enterPowerDown(now);
        break;
      case CmdType::PdExit:
        rk.exitPowerDown(now);
        break;
    }
    return res;
}

void
DramSystem::setCompiledMode(CompiledMode mode, size_t intervalCapacity)
{
    fatal_if(mode != CompiledMode::Off && injector_,
             "sim.compiled requires fault injection to be off");
    compiledMode_ = mode;
    if (mode == CompiledMode::Off)
        compiledEnergy_.deactivate();
    else
        compiledEnergy_.configure(numRanks(), intervalCapacity);
}

void
DramSystem::accountCompiledSpan(Cycle from, Cycle to)
{
    // Refresh and power-down are excluded from compiled eligibility
    // (scheduler side), so the only states to split are active vs
    // precharge standby; the accountant's decision-time intervals are
    // exactly the cycles some bank holds a row open.
    const uint64_t span = to - from;
    for (unsigned r = 0; r < ranks_.size(); ++r) {
        const uint64_t act = compiledEnergy_.activeCyclesIn(r, from, to);
        RankEnergyCounters &e = ranks_[r].energy();
        e.cyclesActive += act;
        e.cyclesPrecharge += span - act;
    }
}

void
DramSystem::tick(Cycle now)
{
    if (compiledEnergy_.active()) {
        accountCompiledSpan(now, now + 1);
        return;
    }
    for (auto &rk : ranks_)
        rk.tickEnergy(now);
}

void
DramSystem::fastForwardEnergy(Cycle from, Cycle to)
{
    if (compiledEnergy_.active()) {
        accountCompiledSpan(from, to);
        return;
    }
    for (auto &rk : ranks_)
        rk.accountEnergySpan(from, to);
}

} // namespace memsec::dram
