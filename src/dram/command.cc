#include "dram/command.hh"

#include <sstream>

namespace memsec::dram {

const char *
cmdName(CmdType t)
{
    switch (t) {
      case CmdType::Act: return "ACT";
      case CmdType::Pre: return "PRE";
      case CmdType::Rd: return "RD";
      case CmdType::RdA: return "RDA";
      case CmdType::Wr: return "WR";
      case CmdType::WrA: return "WRA";
      case CmdType::Ref: return "REF";
      case CmdType::PdEnter: return "PDE";
      case CmdType::PdExit: return "PDX";
    }
    return "???";
}

bool
isColumn(CmdType t)
{
    return t == CmdType::Rd || t == CmdType::RdA || t == CmdType::Wr ||
           t == CmdType::WrA;
}

bool
isRead(CmdType t)
{
    return t == CmdType::Rd || t == CmdType::RdA;
}

bool
isWrite(CmdType t)
{
    return t == CmdType::Wr || t == CmdType::WrA;
}

bool
isAutoPrecharge(CmdType t)
{
    return t == CmdType::RdA || t == CmdType::WrA;
}

std::string
Command::toString() const
{
    std::ostringstream os;
    os << cmdName(type) << " r" << rank << " b" << bank << " row" << row;
    if (req)
        os << " req" << req;
    if (suppressed)
        os << " (suppressed)";
    return os.str();
}

} // namespace memsec::dram
