#include "dram/rank.hh"

#include <algorithm>

#include "util/logging.hh"

namespace memsec::dram {

Rank::Rank(unsigned banks, const TimingParams &tp)
    : tp_(tp), banks_(banks)
{
}

Cycle
Rank::nextActRankLimit() const
{
    Cycle limit = nextActRrd_;
    if (actWindow_.size() >= 4)
        limit = std::max(limit, actWindow_.front() + tp_.faw);
    return limit;
}

void
Rank::recordActivate(Cycle t, bool suppressed)
{
    panic_if(t < nextActRankLimit(),
             "rank ACT at {} violates tRRD/tFAW limit {}", t,
             nextActRankLimit());
    nextActRrd_ = t + tp_.rrd;
    actWindow_.push_back(t);
    while (actWindow_.size() > 4)
        actWindow_.pop_front();
    if (suppressed)
        ++energy_.suppressedActs;
    else
        ++energy_.activates;
}

void
Rank::recordRead(Cycle t)
{
    panic_if(t < nextRead_, "rank RD at {} before nextRead {}", t,
             nextRead_);
    nextRead_ = t + tp_.ccd;
    nextWrite_ = std::max(nextWrite_, t + tp_.rd2wr());
}

void
Rank::recordWrite(Cycle t)
{
    panic_if(t < nextWrite_, "rank WR at {} before nextWrite {}", t,
             nextWrite_);
    nextWrite_ = t + tp_.ccd;
    nextRead_ = std::max(nextRead_, t + tp_.wr2rd());
}

bool
Rank::anyBankOpen() const
{
    for (const auto &b : banks_) {
        if (b.isOpen())
            return true;
    }
    return false;
}

bool
Rank::allBanksIdleBy(Cycle t) const
{
    for (const auto &b : banks_) {
        if (b.isOpen() || b.nextAct() > t)
            return false;
    }
    return true;
}

void
Rank::startRefresh(Cycle t)
{
    panic_if(anyBankOpen(), "REF with open rows");
    panic_if(poweredDown_, "REF while powered down");
    refreshEnd_ = t + tp_.rfc;
    for (auto &b : banks_)
        b.blockUntil(refreshEnd_);
    nextRead_ = std::max(nextRead_, refreshEnd_);
    nextWrite_ = std::max(nextWrite_, refreshEnd_);
    nextActRrd_ = std::max(nextActRrd_, refreshEnd_);
    ++energy_.refreshes;
}

void
Rank::enterPowerDown(Cycle t)
{
    panic_if(anyBankOpen(), "precharge power-down with open rows");
    panic_if(poweredDown_, "PDE while already powered down");
    panic_if(t < refreshEnd_, "PDE during refresh");
    panic_if(t < pdExitReadyAt_, "PDE before tXP after the last exit");
    poweredDown_ = true;
    pdEnteredAt_ = t;
}

void
Rank::exitPowerDown(Cycle t)
{
    panic_if(!poweredDown_, "PDX while not powered down");
    panic_if(t < earliestPdExit(),
             "PDX at {} before minimum residency end {}", t,
             earliestPdExit());
    poweredDown_ = false;
    pdExitReadyAt_ = t + tp_.xp;
    const Cycle ready = t + tp_.xp;
    for (auto &b : banks_)
        b.blockUntil(ready);
    nextRead_ = std::max(nextRead_, ready);
    nextWrite_ = std::max(nextWrite_, ready);
    nextActRrd_ = std::max(nextActRrd_, ready);
}

PowerState
Rank::powerState(Cycle now) const
{
    if (poweredDown_)
        return PowerState::PowerDown;
    if (now < refreshEnd_)
        return PowerState::Refreshing;
    return anyBankOpen() ? PowerState::ActiveStandby
                         : PowerState::PrechargeStandby;
}

void
Rank::tickEnergy(Cycle now)
{
    switch (powerState(now)) {
      case PowerState::PowerDown:
        ++energy_.cyclesPowerDown;
        break;
      case PowerState::Refreshing:
        ++energy_.cyclesRefreshing;
        break;
      case PowerState::ActiveStandby:
        ++energy_.cyclesActive;
        break;
      case PowerState::PrechargeStandby:
        ++energy_.cyclesPrecharge;
        break;
    }
}

void
Rank::accountEnergySpan(Cycle from, Cycle to)
{
    uint64_t span = to - from;
    if (poweredDown_) {
        energy_.cyclesPowerDown += span;
        return;
    }
    if (from < refreshEnd_) {
        const uint64_t refreshing =
            std::min<Cycle>(to, refreshEnd_) - from;
        energy_.cyclesRefreshing += refreshing;
        span -= refreshing;
    }
    if (span == 0)
        return;
    if (anyBankOpen())
        energy_.cyclesActive += span;
    else
        energy_.cyclesPrecharge += span;
}

} // namespace memsec::dram
