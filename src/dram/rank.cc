#include "dram/rank.hh"

#include <algorithm>

#include "util/logging.hh"
#include "util/serialize.hh"

namespace memsec::dram {

void
Rank::saveState(Serializer &s) const
{
    s.section("rank");
    for (const auto &b : banks_)
        b.saveState(s);
    s.putU64(nextActRrd_);
    s.putU64(actWindow_.size());
    for (Cycle c : actWindow_)
        s.putU64(c);
    s.putU64(nextRead_);
    s.putU64(nextWrite_);
    s.putU64(refreshEnd_);
    s.putBool(poweredDown_);
    s.putU64(pdEnteredAt_);
    s.putU64(pdExitReadyAt_);
    s.putU64(energy_.activates);
    s.putU64(energy_.reads);
    s.putU64(energy_.writes);
    s.putU64(energy_.suppressedActs);
    s.putU64(energy_.suppressedCas);
    s.putU64(energy_.refreshes);
    s.putU64(energy_.cyclesActive);
    s.putU64(energy_.cyclesPrecharge);
    s.putU64(energy_.cyclesPowerDown);
    s.putU64(energy_.cyclesRefreshing);
}

void
Rank::restoreState(Deserializer &d)
{
    d.section("rank");
    for (auto &b : banks_)
        b.restoreState(d);
    nextActRrd_ = d.getU64();
    const uint64_t acts = d.getU64();
    actWindow_.clear();
    for (uint64_t i = 0; i < acts; ++i)
        actWindow_.push_back(d.getU64());
    nextRead_ = d.getU64();
    nextWrite_ = d.getU64();
    refreshEnd_ = d.getU64();
    poweredDown_ = d.getBool();
    pdEnteredAt_ = d.getU64();
    pdExitReadyAt_ = d.getU64();
    energy_.activates = d.getU64();
    energy_.reads = d.getU64();
    energy_.writes = d.getU64();
    energy_.suppressedActs = d.getU64();
    energy_.suppressedCas = d.getU64();
    energy_.refreshes = d.getU64();
    energy_.cyclesActive = d.getU64();
    energy_.cyclesPrecharge = d.getU64();
    energy_.cyclesPowerDown = d.getU64();
    energy_.cyclesRefreshing = d.getU64();
}

Rank::Rank(unsigned banks, const TimingParams &tp)
    : tp_(tp), banks_(banks)
{
}

Cycle
Rank::nextActRankLimit() const
{
    Cycle limit = nextActRrd_;
    if (actWindow_.size() >= 4)
        limit = std::max(limit, actWindow_.front() + tp_.faw);
    return limit;
}

void
Rank::recordActivate(Cycle t, bool suppressed)
{
    panic_if(t < nextActRankLimit(),
             "rank ACT at {} violates tRRD/tFAW limit {}", t,
             nextActRankLimit());
    nextActRrd_ = t + tp_.rrd;
    actWindow_.push_back(t);
    while (actWindow_.size() > 4)
        actWindow_.pop_front();
    if (suppressed)
        ++energy_.suppressedActs;
    else
        ++energy_.activates;
}

void
Rank::recordRead(Cycle t)
{
    panic_if(t < nextRead_, "rank RD at {} before nextRead {}", t,
             nextRead_);
    nextRead_ = t + tp_.ccd;
    nextWrite_ = std::max(nextWrite_, t + tp_.rd2wr());
}

void
Rank::recordWrite(Cycle t)
{
    panic_if(t < nextWrite_, "rank WR at {} before nextWrite {}", t,
             nextWrite_);
    nextWrite_ = t + tp_.ccd;
    nextRead_ = std::max(nextRead_, t + tp_.wr2rd());
}

bool
Rank::anyBankOpen() const
{
    for (const auto &b : banks_) {
        if (b.isOpen())
            return true;
    }
    return false;
}

bool
Rank::allBanksIdleBy(Cycle t) const
{
    for (const auto &b : banks_) {
        if (b.isOpen() || b.nextAct() > t)
            return false;
    }
    return true;
}

void
Rank::startRefresh(Cycle t)
{
    panic_if(anyBankOpen(), "REF with open rows");
    panic_if(poweredDown_, "REF while powered down");
    refreshEnd_ = t + tp_.rfc;
    for (auto &b : banks_)
        b.blockUntil(refreshEnd_);
    nextRead_ = std::max(nextRead_, refreshEnd_);
    nextWrite_ = std::max(nextWrite_, refreshEnd_);
    nextActRrd_ = std::max(nextActRrd_, refreshEnd_);
    ++energy_.refreshes;
}

void
Rank::enterPowerDown(Cycle t)
{
    panic_if(anyBankOpen(), "precharge power-down with open rows");
    panic_if(poweredDown_, "PDE while already powered down");
    panic_if(t < refreshEnd_, "PDE during refresh");
    panic_if(t < pdExitReadyAt_, "PDE before tXP after the last exit");
    poweredDown_ = true;
    pdEnteredAt_ = t;
}

void
Rank::exitPowerDown(Cycle t)
{
    panic_if(!poweredDown_, "PDX while not powered down");
    panic_if(t < earliestPdExit(),
             "PDX at {} before minimum residency end {}", t,
             earliestPdExit());
    poweredDown_ = false;
    pdExitReadyAt_ = t + tp_.xp;
    const Cycle ready = t + tp_.xp;
    for (auto &b : banks_)
        b.blockUntil(ready);
    nextRead_ = std::max(nextRead_, ready);
    nextWrite_ = std::max(nextWrite_, ready);
    nextActRrd_ = std::max(nextActRrd_, ready);
}

PowerState
Rank::powerState(Cycle now) const
{
    if (poweredDown_)
        return PowerState::PowerDown;
    if (now < refreshEnd_)
        return PowerState::Refreshing;
    return anyBankOpen() ? PowerState::ActiveStandby
                         : PowerState::PrechargeStandby;
}

void
Rank::tickEnergy(Cycle now)
{
    switch (powerState(now)) {
      case PowerState::PowerDown:
        ++energy_.cyclesPowerDown;
        break;
      case PowerState::Refreshing:
        ++energy_.cyclesRefreshing;
        break;
      case PowerState::ActiveStandby:
        ++energy_.cyclesActive;
        break;
      case PowerState::PrechargeStandby:
        ++energy_.cyclesPrecharge;
        break;
    }
}

void
Rank::accountEnergySpan(Cycle from, Cycle to)
{
    uint64_t span = to - from;
    if (poweredDown_) {
        energy_.cyclesPowerDown += span;
        return;
    }
    if (from < refreshEnd_) {
        const uint64_t refreshing =
            std::min<Cycle>(to, refreshEnd_) - from;
        energy_.cyclesRefreshing += refreshing;
        span -= refreshing;
    }
    if (span == 0)
        return;
    if (anyBankOpen())
        energy_.cyclesActive += span;
    else
        energy_.cyclesPrecharge += span;
}

} // namespace memsec::dram
