/**
 * @file
 * Channel-level shared buses: the command bus (one command per cycle)
 * and the data bus (burst occupancy with rank-to-rank switch gaps).
 */

#ifndef MEMSEC_DRAM_CHANNEL_HH
#define MEMSEC_DRAM_CHANNEL_HH

#include "dram/timing.hh"
#include "sim/types.hh"

namespace memsec {
class Serializer;
class Deserializer;
} // namespace memsec

namespace memsec::dram {

/** Shared address/command and data buses of one channel. */
class ChannelBuses
{
  public:
    explicit ChannelBuses(const TimingParams &tp) : tp_(tp) {}

    /** True if the command bus is free at cycle t. */
    bool cmdBusFree(Cycle t) const
    {
        return lastCmdCycle_ == kNoCycle || t != lastCmdCycle_;
    }

    /** Occupy the command bus at cycle t; panics on double occupancy
     *  or time going backwards. */
    void useCmdBus(Cycle t);

    /**
     * Earliest start cycle for a data burst from `rank`, given the
     * previous reservation: back-to-back same-rank bursts may be
     * gapless; different ranks need tRTRS idle between bursts.
     */
    Cycle earliestDataStart(unsigned rank) const;

    /** True if a burst [start, start+tBURST) from rank is legal. */
    bool dataBusFree(Cycle start, unsigned rank) const
    {
        return start >= earliestDataStart(rank);
    }

    /** Reserve the data bus for a burst starting at `start`. */
    void reserveData(Cycle start, unsigned rank);

    /** Cycle the bus becomes free after the last reservation. */
    Cycle dataBusyUntil() const { return dataBusyUntil_; }

    /** Rank of the most recent data burst (~0u if none yet). */
    unsigned lastDataRank() const { return lastDataRank_; }

    /** Total busy data-bus cycles (for utilisation stats). */
    uint64_t dataBusyCycles() const { return dataBusyCycles_; }

    /** Total commands carried (for command-bus utilisation). */
    uint64_t commandCount() const { return commandCount_; }

    void saveState(Serializer &s) const;
    void restoreState(Deserializer &d);

  private:
    const TimingParams &tp_;
    Cycle lastCmdCycle_ = kNoCycle;
    Cycle dataBusyUntil_ = 0;
    unsigned lastDataRank_ = ~0u;
    uint64_t dataBusyCycles_ = 0;
    uint64_t commandCount_ = 0;
};

} // namespace memsec::dram

#endif // MEMSEC_DRAM_CHANNEL_HH
