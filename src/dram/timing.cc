#include "dram/timing.hh"

#include <sstream>

#include "util/bitops.hh"
#include "util/logging.hh"

namespace memsec::dram {

void
TimingParams::validate() const
{
    fatal_if(burst == 0, "tBURST must be nonzero");
    fatal_if(ccd < burst, "tCCD ({}) below tBURST ({})", ccd, burst);
    fatal_if(ras + rp > rc + 1, "tRAS + tRP ({}) inconsistent with tRC ({})",
             ras + rp, rc);
    fatal_if(cas < cwd, "tCAS ({}) below tCWD ({}): unsupported part",
             cas, cwd);
    fatal_if(faw < rrd, "tFAW ({}) below tRRD ({})", faw, rrd);
    fatal_if(rfc == 0 || refi == 0, "refresh parameters must be nonzero");
}

std::string
TimingParams::toString() const
{
    std::ostringstream os;
    os << "tRC=" << rc << " tRCD=" << rcd << " tRAS=" << ras
       << " tRP=" << rp << " tRTP=" << rtp << " tWR=" << wr
       << " tRRD=" << rrd << " tFAW=" << faw << " tCAS=" << cas
       << " tCWD=" << cwd << " tBURST=" << burst << " tCCD=" << ccd
       << " tWTR=" << wtr << " tRTRS=" << rtrs << " tREFI=" << refi
       << " tRFC=" << rfc << " tXP=" << xp;
    return os.str();
}

TimingParams
TimingParams::ddr3_1600_4gb()
{
    // Exactly the paper's Table 1; defaults already encode it.
    return TimingParams{};
}

TimingParams
TimingParams::ddr3_2133()
{
    TimingParams t;
    t.rc = 50;
    t.rcd = 14;
    t.ras = 36;
    t.rp = 14;
    t.rtp = 8;
    t.wr = 16;
    t.rrd = 6;
    t.faw = 27;
    t.cas = 14;
    t.cwd = 7;
    t.burst = 4;
    t.ccd = 4;
    t.wtr = 8;
    t.rtrs = 2;
    t.refi = 8320;
    t.rfc = 278;
    return t;
}

TimingParams
TimingParams::ddr4_2400()
{
    TimingParams t;
    t.rc = 55;
    t.rcd = 16;
    t.ras = 39;
    t.rp = 16;
    t.rtp = 9;
    t.wr = 18;
    t.rrd = 7;   // tRRD_L
    t.faw = 26;
    t.cas = 16;
    t.cwd = 12;
    t.burst = 4;
    t.ccd = 6;   // tCCD_L
    t.wtr = 9;   // tWTR_L
    t.rtrs = 3;
    t.refi = 9360;
    t.rfc = 420;
    return t;
}

void
Geometry::validate() const
{
    fatal_if(channels == 0 || ranksPerChannel == 0 || banksPerRank == 0 ||
             rowsPerBank == 0 || colsPerRow == 0,
             "geometry fields must all be nonzero");
    fatal_if(!isPowerOf2(ranksPerChannel) || !isPowerOf2(banksPerRank) ||
             !isPowerOf2(rowsPerBank) || !isPowerOf2(colsPerRow) ||
             !isPowerOf2(channels),
             "geometry fields must be powers of two for address mapping");
}

} // namespace memsec::dram
